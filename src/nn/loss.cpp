#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dkfac::nn {

Tensor softmax(const Tensor& logits) {
  DKFAC_CHECK(logits.ndim() == 2) << "softmax expects [N, C], got " << logits.shape();
  const int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor probs(logits.shape());
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    float* out = probs.data() + i * c;
    const float m = *std::max_element(row, row + c);
    double denom = 0.0;
    for (int64_t j = 0; j < c; ++j) {
      out[j] = std::exp(row[j] - m);
      denom += out[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (int64_t j = 0; j < c; ++j) out[j] *= inv;
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 float label_smoothing) {
  DKFAC_CHECK(logits.ndim() == 2) << "loss expects [N, C], got " << logits.shape();
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DKFAC_CHECK(static_cast<int64_t>(labels.size()) == n)
      << "label count " << labels.size() << " vs batch " << n;
  DKFAC_CHECK(label_smoothing >= 0.0f && label_smoothing < 1.0f);
  DKFAC_CHECK(n > 0) << "empty batch";

  Tensor probs = softmax(logits);
  const float off_target = label_smoothing / static_cast<float>(c);
  const float on_target = 1.0f - label_smoothing + off_target;

  double total = 0.0;
  Tensor grad = probs;  // start from softmax; subtract target distribution
  const float inv_n = 1.0f / static_cast<float>(n);
  for (int64_t i = 0; i < n; ++i) {
    const int64_t y = labels[static_cast<size_t>(i)];
    DKFAC_CHECK(y >= 0 && y < c) << "label " << y << " out of range [0, " << c << ")";
    const float* p = probs.data() + i * c;
    float* g = grad.data() + i * c;
    for (int64_t j = 0; j < c; ++j) {
      const float target = (j == y) ? on_target : off_target;
      if (target > 0.0f) {
        total -= target * std::log(std::max(p[j], 1e-12f));
      }
      g[j] = (p[j] - target) * inv_n;
    }
  }
  return {static_cast<float>(total / n), std::move(grad)};
}

int64_t correct_predictions(const Tensor& logits,
                            const std::vector<int64_t>& labels) {
  DKFAC_CHECK(logits.ndim() == 2);
  const int64_t n = logits.dim(0), c = logits.dim(1);
  DKFAC_CHECK(static_cast<int64_t>(labels.size()) == n);
  int64_t correct = 0;
  for (int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const int64_t pred = std::max_element(row, row + c) - row;
    correct += (pred == labels[static_cast<size_t>(i)]);
  }
  return correct;
}

float accuracy(const Tensor& logits, const std::vector<int64_t>& labels) {
  DKFAC_CHECK(logits.ndim() == 2);
  const int64_t n = logits.dim(0);
  if (n == 0) return 0.0f;
  return static_cast<float>(correct_predictions(logits, labels)) /
         static_cast<float>(n);
}

}  // namespace dkfac::nn
