#include "nn/init.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dkfac::nn {

void kaiming_normal(Tensor& w, int64_t fan_in, Rng& rng) {
  DKFAC_CHECK(fan_in > 0);
  const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  rng.fill_normal(w.span(), 0.0f, stddev);
}

void fan_in_uniform(Tensor& w, int64_t fan_in, Rng& rng) {
  DKFAC_CHECK(fan_in > 0);
  const float bound = 1.0f / std::sqrt(static_cast<float>(fan_in));
  rng.fill_uniform(w.span(), -bound, bound);
}

}  // namespace dkfac::nn
