#include "nn/pooling.hpp"

#include <limits>

#include "common/error.hpp"
#include "nn/conv2d.hpp"  // conv_out_size

namespace dkfac::nn {

MaxPool2d::MaxPool2d(int64_t kernel, int64_t stride, int64_t padding,
                     std::string name)
    : kernel_(kernel), stride_(stride), padding_(padding), name_(std::move(name)) {
  DKFAC_CHECK(kernel >= 1 && stride >= 1 && padding >= 0);
}

Tensor MaxPool2d::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 4) << name_ << ": expects NCHW, got " << x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = conv_out_size(h, kernel_, stride_, padding_);
  const int64_t ow = conv_out_size(w, kernel_, stride_, padding_);
  input_shape_ = x.shape();

  Tensor y(Shape{n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(y.numel()), -1);
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (b * c + ch) * h * w;
      for (int64_t r = 0; r < oh; ++r) {
        for (int64_t col = 0; col < ow; ++col) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = -1;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t hh = r * stride_ - padding_ + kh;
            if (hh < 0 || hh >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t ww = col * stride_ - padding_ + kw;
              if (ww < 0 || ww >= w) continue;
              const float v = src[hh * w + ww];
              if (v > best) {
                best = v;
                best_idx = (b * c + ch) * h * w + hh * w + ww;
              }
            }
          }
          const int64_t out_idx = ((b * c + ch) * oh + r) * ow + col;
          // A window fully inside padding has no valid element; emit 0.
          y[out_idx] = best_idx >= 0 ? best : 0.0f;
          argmax_[static_cast<size_t>(out_idx)] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(static_cast<size_t>(grad_output.numel()) == argmax_.size())
      << name_ << ": backward before forward";
  Tensor dx(input_shape_);
  for (int64_t i = 0; i < grad_output.numel(); ++i) {
    const int64_t src = argmax_[static_cast<size_t>(i)];
    if (src >= 0) dx[src] += grad_output[i];
  }
  return dx;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 4) << name_ << ": expects NCHW, got " << x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  input_shape_ = x.shape();
  Tensor y(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (b * c + ch) * h * w;
      double sum = 0.0;
      for (int64_t i = 0; i < h * w; ++i) sum += src[i];
      y.at(b, ch) = static_cast<float>(sum) * inv;
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(input_shape_.ndim() == 4) << name_ << ": backward before forward";
  const int64_t n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
                w = input_shape_[3];
  DKFAC_CHECK(grad_output.shape() == Shape({n, c}))
      << name_ << ": grad shape " << grad_output.shape();
  Tensor dx(input_shape_);
  const float inv = 1.0f / static_cast<float>(h * w);
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_output.at(b, ch) * inv;
      float* dst = dx.data() + (b * c + ch) * h * w;
      for (int64_t i = 0; i < h * w; ++i) dst[i] = g;
    }
  }
  return dx;
}

}  // namespace dkfac::nn
