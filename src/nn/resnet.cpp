#include "nn/resnet.hpp"

#include <string>
#include <vector>

#include "common/error.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv2d.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/residual.hpp"
#include "nn/sequential.hpp"

namespace dkfac::nn {

namespace {

LayerPtr conv_bn(int64_t in, int64_t out, int64_t kernel, int64_t stride,
                 int64_t padding, Rng& rng, const std::string& name) {
  auto seq = std::make_unique<Sequential>(name);
  seq->emplace<Conv2d>(
      Conv2dSpec{.in_channels = in, .out_channels = out, .kernel = kernel,
                 .stride = stride, .padding = padding, .bias = false},
      rng, name + ".conv");
  seq->emplace<BatchNorm2d>(out, name + ".bn");
  return seq;
}

LayerPtr projection_shortcut(int64_t in, int64_t out, int64_t stride, Rng& rng,
                             const std::string& name) {
  if (stride == 1 && in == out) return nullptr;  // identity skip
  return conv_bn(in, out, /*kernel=*/1, stride, /*padding=*/0, rng, name + ".down");
}

LayerPtr basic_block(int64_t in, int64_t out, int64_t stride, Rng& rng,
                     const std::string& name) {
  auto main = std::make_unique<Sequential>(name + ".main");
  main->emplace<Conv2d>(
      Conv2dSpec{.in_channels = in, .out_channels = out, .kernel = 3,
                 .stride = stride, .padding = 1, .bias = false},
      rng, name + ".conv1");
  main->emplace<BatchNorm2d>(out, name + ".bn1");
  main->emplace<ReLU>(name + ".relu1");
  main->emplace<Conv2d>(
      Conv2dSpec{.in_channels = out, .out_channels = out, .kernel = 3,
                 .stride = 1, .padding = 1, .bias = false},
      rng, name + ".conv2");
  main->emplace<BatchNorm2d>(out, name + ".bn2");
  return std::make_unique<ResidualBlock>(
      std::move(main), projection_shortcut(in, out, stride, rng, name), name);
}

LayerPtr bottleneck_block(int64_t in, int64_t mid, int64_t stride, Rng& rng,
                          const std::string& name) {
  const int64_t out = mid * 4;
  auto main = std::make_unique<Sequential>(name + ".main");
  main->emplace<Conv2d>(
      Conv2dSpec{.in_channels = in, .out_channels = mid, .kernel = 1,
                 .stride = 1, .padding = 0, .bias = false},
      rng, name + ".conv1");
  main->emplace<BatchNorm2d>(mid, name + ".bn1");
  main->emplace<ReLU>(name + ".relu1");
  main->emplace<Conv2d>(
      Conv2dSpec{.in_channels = mid, .out_channels = mid, .kernel = 3,
                 .stride = stride, .padding = 1, .bias = false},
      rng, name + ".conv2");
  main->emplace<BatchNorm2d>(mid, name + ".bn2");
  main->emplace<ReLU>(name + ".relu2");
  main->emplace<Conv2d>(
      Conv2dSpec{.in_channels = mid, .out_channels = out, .kernel = 1,
                 .stride = 1, .padding = 0, .bias = false},
      rng, name + ".conv3");
  main->emplace<BatchNorm2d>(out, name + ".bn3");
  return std::make_unique<ResidualBlock>(
      std::move(main), projection_shortcut(in, out, stride, rng, name), name);
}

}  // namespace

LayerPtr resnet_cifar(int depth, int64_t num_classes, Rng& rng,
                      int64_t base_width, int64_t in_channels) {
  DKFAC_CHECK(depth >= 8 && (depth - 2) % 6 == 0)
      << "CIFAR ResNet depth must be 6n+2 with n>=1, got " << depth;
  const int n = (depth - 2) / 6;
  const std::string tag = "resnet" + std::to_string(depth);

  auto net = std::make_unique<Sequential>(tag);
  net->add(conv_bn(in_channels, base_width, 3, 1, 1, rng, tag + ".stem"));
  net->emplace<ReLU>(tag + ".stem.relu");

  int64_t channels = base_width;
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out = base_width << stage;
    for (int block = 0; block < n; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string name =
          tag + ".s" + std::to_string(stage + 1) + ".b" + std::to_string(block + 1);
      net->add(basic_block(channels, out, stride, rng, name));
      channels = out;
    }
  }
  net->emplace<GlobalAvgPool>(tag + ".gap");
  net->emplace<Linear>(channels, num_classes, /*bias=*/true, rng, tag + ".fc");
  return net;
}

LayerPtr resnet_imagenet(int depth, int64_t num_classes, Rng& rng,
                         int64_t base_width, int64_t in_channels) {
  std::vector<int> blocks;
  bool bottleneck = false;
  switch (depth) {
    case 18: blocks = {2, 2, 2, 2}; break;
    case 34: blocks = {3, 4, 6, 3}; break;
    case 50: blocks = {3, 4, 6, 3}; bottleneck = true; break;
    case 101: blocks = {3, 4, 23, 3}; bottleneck = true; break;
    case 152: blocks = {3, 8, 36, 3}; bottleneck = true; break;
    default:
      DKFAC_CHECK(false) << "unsupported ImageNet ResNet depth " << depth;
  }
  const std::string tag = "resnet" + std::to_string(depth);

  auto net = std::make_unique<Sequential>(tag);
  net->add(conv_bn(in_channels, base_width, 7, 2, 3, rng, tag + ".stem"));
  net->emplace<ReLU>(tag + ".stem.relu");
  net->emplace<MaxPool2d>(3, 2, 1, tag + ".stem.pool");

  int64_t channels = base_width;
  for (int stage = 0; stage < 4; ++stage) {
    const int64_t mid = base_width << stage;
    const int64_t out = bottleneck ? mid * 4 : mid;
    for (int block = 0; block < blocks[static_cast<size_t>(stage)]; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string name =
          tag + ".s" + std::to_string(stage + 1) + ".b" + std::to_string(block + 1);
      net->add(bottleneck ? bottleneck_block(channels, mid, stride, rng, name)
                          : basic_block(channels, mid, stride, rng, name));
      channels = out;
    }
  }
  net->emplace<GlobalAvgPool>(tag + ".gap");
  net->emplace<Linear>(channels, num_classes, /*bias=*/true, rng, tag + ".fc");
  return net;
}

LayerPtr mlp(int64_t in_features, int64_t hidden, int64_t num_classes, Rng& rng) {
  auto net = std::make_unique<Sequential>("mlp");
  net->emplace<Linear>(in_features, hidden, true, rng, "mlp.fc1");
  net->emplace<ReLU>("mlp.relu1");
  net->emplace<Linear>(hidden, hidden, true, rng, "mlp.fc2");
  net->emplace<ReLU>("mlp.relu2");
  net->emplace<Linear>(hidden, num_classes, true, rng, "mlp.fc3");
  return net;
}

LayerPtr simple_cnn(int64_t in_channels, int64_t num_classes, Rng& rng,
                    int64_t width) {
  auto net = std::make_unique<Sequential>("cnn");
  net->emplace<Conv2d>(
      Conv2dSpec{.in_channels = in_channels, .out_channels = width, .kernel = 3,
                 .stride = 1, .padding = 1, .bias = true},
      rng, "cnn.conv1");
  net->emplace<BatchNorm2d>(width, "cnn.bn1");
  net->emplace<ReLU>("cnn.relu1");
  net->emplace<MaxPool2d>(2, 2, 0, "cnn.pool1");
  net->emplace<Conv2d>(
      Conv2dSpec{.in_channels = width, .out_channels = 2 * width, .kernel = 3,
                 .stride = 1, .padding = 1, .bias = true},
      rng, "cnn.conv2");
  net->emplace<BatchNorm2d>(2 * width, "cnn.bn2");
  net->emplace<ReLU>("cnn.relu2");
  net->emplace<GlobalAvgPool>("cnn.gap");
  net->emplace<Linear>(2 * width, num_classes, true, rng, "cnn.fc");
  return net;
}

}  // namespace dkfac::nn
