#include "nn/linear.hpp"

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "nn/init.hpp"

namespace dkfac::nn {

using linalg::gemm;
using linalg::matmul;
using linalg::syrk;
using linalg::Trans;

Linear::Linear(int64_t in_features, int64_t out_features, bool bias, Rng& rng,
               std::string name)
    : in_features_(in_features),
      out_features_(out_features),
      bias_(bias),
      name_(std::move(name)),
      weight_(name_ + ".weight", Tensor(Shape{out_features, in_features})) {
  DKFAC_CHECK(in_features > 0 && out_features > 0)
      << "invalid Linear dims " << in_features << "x" << out_features;
  fan_in_uniform(weight_.value, in_features_, rng);
  if (bias_) {
    bias_param_.emplace(name_ + ".bias", Tensor(Shape{out_features}));
    fan_in_uniform(bias_param_->value, in_features_, rng);
  }
}

Tensor Linear::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 2 && x.dim(1) == in_features_)
      << name_ << ": input shape " << x.shape() << " expected [N, "
      << in_features_ << "]";
  input_ = x;
  has_batch_ = true;
  has_grad_ = false;

  Tensor y = matmul(x, weight_.value, Trans::kNo, Trans::kYes);
  if (bias_) {
    const int64_t n = y.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      float* row = y.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) row[j] += bias_param_->value[j];
    }
  }
  return y;
}

Tensor Linear::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(has_batch_) << name_ << ": backward before forward";
  DKFAC_CHECK(grad_output.ndim() == 2 && grad_output.dim(0) == input_.dim(0) &&
              grad_output.dim(1) == out_features_)
      << name_ << ": grad shape " << grad_output.shape();
  grad_output_ = grad_output;
  has_grad_ = true;

  // dW += gᵀ·x ; db += Σ_n g ; dx = g·W.
  gemm(1.0f, grad_output, Trans::kYes, input_, Trans::kNo, 1.0f, weight_.grad);
  if (bias_) {
    const int64_t n = grad_output.dim(0);
    for (int64_t i = 0; i < n; ++i) {
      const float* row = grad_output.data() + i * out_features_;
      for (int64_t j = 0; j < out_features_; ++j) bias_param_->grad[j] += row[j];
    }
  }
  return matmul(grad_output, weight_.value);
}

std::vector<Parameter*> Linear::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (bias_) out.push_back(&*bias_param_);
  return out;
}

Tensor Linear::kfac_a_factor() const {
  DKFAC_CHECK(has_batch_) << name_ << ": no forward pass captured for A factor";
  const int64_t n = input_.dim(0);
  const int64_t d = kfac_a_dim();
  // A = E[ã ãᵀ] over the batch, ã = [x, 1] when the layer has a bias — a
  // Gram matrix, so syrk computes only the upper triangle and mirrors.
  Tensor a(Shape{d, d});
  if (!bias_) {
    syrk(1.0f / static_cast<float>(n), input_, Trans::kYes, 0.0f, a);
    return a;
  }
  Tensor augmented(Shape{n, d});
  for (int64_t i = 0; i < n; ++i) {
    const float* src = input_.data() + i * in_features_;
    float* dst = augmented.data() + i * d;
    std::copy(src, src + in_features_, dst);
    dst[in_features_] = 1.0f;
  }
  syrk(1.0f / static_cast<float>(n), augmented, Trans::kYes, 0.0f, a);
  return a;
}

Tensor Linear::kfac_g_factor() const {
  DKFAC_CHECK(has_grad_) << name_ << ": no backward pass captured for G factor";
  const int64_t n = grad_output_.dim(0);
  // The loss is a batch mean, so per-sample output gradients are N·g_i;
  // G = E[(N·g)(N·g)ᵀ] = N · gᵀg  (matching kfac_pytorch's scaling).
  Tensor g(Shape{out_features_, out_features_});
  syrk(static_cast<float>(n), grad_output_, Trans::kYes, 0.0f, g);
  return g;
}

Tensor Linear::kfac_grad() const {
  if (!bias_) return weight_.grad;
  Tensor combined(Shape{out_features_, in_features_ + 1});
  for (int64_t i = 0; i < out_features_; ++i) {
    const float* src = weight_.grad.data() + i * in_features_;
    float* dst = combined.data() + i * (in_features_ + 1);
    std::copy(src, src + in_features_, dst);
    dst[in_features_] = bias_param_->grad[i];
  }
  return combined;
}

void Linear::set_kfac_grad(const Tensor& grad) {
  DKFAC_CHECK(grad.ndim() == 2 && grad.dim(0) == kfac_g_dim() &&
              grad.dim(1) == kfac_a_dim())
      << name_ << ": preconditioned grad shape " << grad.shape();
  if (!bias_) {
    weight_.grad = grad;
    return;
  }
  for (int64_t i = 0; i < out_features_; ++i) {
    const float* src = grad.data() + i * (in_features_ + 1);
    float* dst = weight_.grad.data() + i * in_features_;
    std::copy(src, src + in_features_, dst);
    bias_param_->grad[i] = src[in_features_];
  }
}

}  // namespace dkfac::nn
