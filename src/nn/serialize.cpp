#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "nn/batchnorm.hpp"

namespace dkfac::nn {

namespace {

constexpr char kMagic[4] = {'D', 'K', 'F', 'C'};
constexpr uint32_t kVersion = 1;

struct Entry {
  std::string name;
  const Tensor* tensor;       // save path
  Tensor* mutable_tensor;     // load path
};

/// Every named tensor of the model: parameters + BatchNorm running stats.
std::vector<Entry> collect_entries(Layer& model) {
  std::vector<Entry> entries;
  for (Parameter* p : model.parameters()) {
    entries.push_back({p->name, &p->value, &p->value});
  }
  for (Layer* m : model.modules()) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(m)) {
      // running_mean()/running_var() expose const refs; the stats live in
      // the layer, so the const_cast writes back into the same storage.
      entries.push_back({bn->name() + ".running_mean", &bn->running_mean(),
                         const_cast<Tensor*>(&bn->running_mean())});
      entries.push_back({bn->name() + ".running_var", &bn->running_var(),
                         const_cast<Tensor*>(&bn->running_var())});
    }
  }
  return entries;
}

void write_u64(std::ostream& out, uint64_t v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

uint64_t read_u64(std::istream& in) {
  uint64_t v = 0;
  in.read(reinterpret_cast<char*>(&v), sizeof(v));
  DKFAC_CHECK(in.good()) << "checkpoint truncated";
  return v;
}

}  // namespace

void save_checkpoint(Layer& model, std::ostream& out) {
  const std::vector<Entry> entries = collect_entries(model);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));
  write_u64(out, entries.size());
  for (const Entry& e : entries) {
    write_u64(out, e.name.size());
    out.write(e.name.data(), static_cast<std::streamsize>(e.name.size()));
    const auto& dims = e.tensor->shape().dims();
    write_u64(out, dims.size());
    for (int64_t d : dims) write_u64(out, static_cast<uint64_t>(d));
    out.write(reinterpret_cast<const char*>(e.tensor->data()),
              static_cast<std::streamsize>(e.tensor->numel() * sizeof(float)));
  }
  DKFAC_CHECK(out.good()) << "checkpoint write failed";
}

void save_checkpoint(Layer& model, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  DKFAC_CHECK(out.is_open()) << "cannot open " << path << " for writing";
  save_checkpoint(model, out);
}

void load_checkpoint(Layer& model, std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  DKFAC_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
      << "not a dkfac checkpoint";
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  DKFAC_CHECK(version == kVersion)
      << "unsupported checkpoint version " << version;

  std::map<std::string, Tensor*> targets;
  for (Entry& e : collect_entries(model)) {
    DKFAC_CHECK(targets.emplace(e.name, e.mutable_tensor).second)
        << "duplicate tensor name in model: " << e.name;
  }

  const uint64_t count = read_u64(in);
  size_t restored = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t name_len = read_u64(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    const uint64_t ndim = read_u64(in);
    std::vector<int64_t> dims(ndim);
    for (uint64_t d = 0; d < ndim; ++d) {
      dims[d] = static_cast<int64_t>(read_u64(in));
    }
    const Shape shape{std::move(dims)};
    const int64_t numel = shape.numel();

    const auto it = targets.find(name);
    DKFAC_CHECK(it != targets.end())
        << "checkpoint tensor '" << name << "' not present in the model";
    DKFAC_CHECK(it->second->shape() == shape)
        << "shape mismatch for '" << name << "': checkpoint " << shape
        << " vs model " << it->second->shape();
    in.read(reinterpret_cast<char*>(it->second->data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    DKFAC_CHECK(in.good()) << "checkpoint truncated in tensor '" << name << "'";
    ++restored;
  }
  DKFAC_CHECK(restored == targets.size())
      << "checkpoint restored " << restored << " of " << targets.size()
      << " model tensors";
}

void load_checkpoint(Layer& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DKFAC_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  load_checkpoint(model, in);
}

}  // namespace dkfac::nn
