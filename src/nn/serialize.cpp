#include "nn/serialize.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "nn/batchnorm.hpp"

namespace dkfac::nn {

namespace {

constexpr char kMagic[4] = {'D', 'K', 'F', 'C'};
constexpr uint32_t kVersion = 2;
// Footer: magic + u64 byte length of everything before the footer. A file
// cut anywhere — even exactly at an entry boundary — fails the footer
// check, so a crash mid-write can never masquerade as a valid checkpoint.
constexpr char kFooterMagic[4] = {'D', 'K', 'F', 'E'};

struct Entry {
  std::string name;
  const Tensor* tensor;       // save path
  Tensor* mutable_tensor;     // load path
};

/// Every named tensor of the model: parameters + BatchNorm running stats.
std::vector<Entry> collect_entries(Layer& model) {
  std::vector<Entry> entries;
  for (Parameter* p : model.parameters()) {
    entries.push_back({p->name, &p->value, &p->value});
  }
  for (Layer* m : model.modules()) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(m)) {
      // running_mean()/running_var() expose const refs; the stats live in
      // the layer, so the const_cast writes back into the same storage.
      entries.push_back({bn->name() + ".running_mean", &bn->running_mean(),
                         const_cast<Tensor*>(&bn->running_mean())});
      entries.push_back({bn->name() + ".running_var", &bn->running_var(),
                         const_cast<Tensor*>(&bn->running_var())});
    }
  }
  return entries;
}

/// Byte-counting writer: the footer needs the exact payload length, and
/// counting as we go works on non-seekable streams too.
struct CountingWriter {
  std::ostream& out;
  uint64_t written = 0;
  void write(const void* p, size_t n) {
    out.write(static_cast<const char*>(p), static_cast<std::streamsize>(n));
    written += n;
  }
  void u64(uint64_t v) { write(&v, sizeof(v)); }
};

struct CountingReader {
  std::istream& in;
  uint64_t consumed = 0;
  void read(void* p, size_t n) {
    in.read(static_cast<char*>(p), static_cast<std::streamsize>(n));
    DKFAC_CHECK(in.good()) << "checkpoint truncated";
    consumed += n;
  }
  uint64_t u64() {
    uint64_t v = 0;
    read(&v, sizeof(v));
    return v;
  }
};

}  // namespace

void save_checkpoint(Layer& model, std::ostream& out) {
  const std::vector<Entry> entries = collect_entries(model);
  CountingWriter w{out};
  w.write(kMagic, sizeof(kMagic));
  w.write(&kVersion, sizeof(kVersion));
  w.u64(entries.size());
  for (const Entry& e : entries) {
    w.u64(e.name.size());
    w.write(e.name.data(), e.name.size());
    const auto& dims = e.tensor->shape().dims();
    w.u64(dims.size());
    for (int64_t d : dims) w.u64(static_cast<uint64_t>(d));
    w.write(e.tensor->data(), e.tensor->numel() * sizeof(float));
  }
  out.write(kFooterMagic, sizeof(kFooterMagic));
  const uint64_t payload = w.written;
  out.write(reinterpret_cast<const char*>(&payload), sizeof(payload));
  DKFAC_CHECK(out.good()) << "checkpoint write failed";
}

void save_checkpoint(Layer& model, const std::string& path) {
  // Write-to-temp + fsync + atomic rename: a crash (or full disk) at any
  // point leaves either the previous checkpoint or a stray .tmp — never a
  // truncated file under the real name that a rejoining rank would load.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DKFAC_CHECK(out.is_open()) << "cannot open " << tmp << " for writing";
    save_checkpoint(model, out);
    out.flush();
    DKFAC_CHECK(out.good()) << "checkpoint write failed: " << tmp;
  }
  const int fd = ::open(tmp.c_str(), O_WRONLY);
  DKFAC_CHECK(fd >= 0) << "cannot reopen " << tmp << " for fsync";
  const int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint fsync failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint rename failed: " + tmp + " -> " + path);
  }
  // Durability of the rename itself: sync the containing directory
  // (best-effort — some filesystems refuse directory fsync).
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

void load_checkpoint(Layer& model, std::istream& in) {
  CountingReader r{in};
  char magic[4];
  in.read(magic, sizeof(magic));
  DKFAC_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0)
      << "not a dkfac checkpoint";
  r.consumed += sizeof(magic);
  uint32_t version = 0;
  r.read(&version, sizeof(version));
  DKFAC_CHECK(version == kVersion)
      << "unsupported checkpoint version " << version;

  std::map<std::string, Tensor*> targets;
  for (Entry& e : collect_entries(model)) {
    DKFAC_CHECK(targets.emplace(e.name, e.mutable_tensor).second)
        << "duplicate tensor name in model: " << e.name;
  }

  const uint64_t count = r.u64();
  size_t restored = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t name_len = r.u64();
    DKFAC_CHECK(name_len < (1u << 16)) << "checkpoint name length corrupt";
    std::string name(name_len, '\0');
    r.read(name.data(), name_len);
    const uint64_t ndim = r.u64();
    DKFAC_CHECK(ndim <= 8) << "checkpoint tensor rank corrupt";
    std::vector<int64_t> dims(ndim);
    for (uint64_t d = 0; d < ndim; ++d) {
      dims[d] = static_cast<int64_t>(r.u64());
    }
    const Shape shape{std::move(dims)};
    const int64_t numel = shape.numel();

    const auto it = targets.find(name);
    DKFAC_CHECK(it != targets.end())
        << "checkpoint tensor '" << name << "' not present in the model";
    DKFAC_CHECK(it->second->shape() == shape)
        << "shape mismatch for '" << name << "': checkpoint " << shape
        << " vs model " << it->second->shape();
    r.read(it->second->data(), static_cast<size_t>(numel) * sizeof(float));
    ++restored;
  }
  DKFAC_CHECK(restored == targets.size())
      << "checkpoint restored " << restored << " of " << targets.size()
      << " model tensors";

  // Footer: confirms the writer got all the way to the end AND that the
  // byte count matches what we just consumed.
  char footer[4];
  in.read(footer, sizeof(footer));
  DKFAC_CHECK(in.good() &&
              std::memcmp(footer, kFooterMagic, sizeof(kFooterMagic)) == 0)
      << "checkpoint footer missing (truncated write?)";
  uint64_t payload = 0;
  in.read(reinterpret_cast<char*>(&payload), sizeof(payload));
  DKFAC_CHECK(in.good() && payload == r.consumed)
      << "checkpoint length footer mismatch: footer says " << payload
      << " bytes, stream held " << r.consumed;
}

void load_checkpoint(Layer& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DKFAC_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  load_checkpoint(model, in);
}

}  // namespace dkfac::nn
