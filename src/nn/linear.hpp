// Fully-connected layer with K-FAC factor capture.
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace dkfac::nn {

/// y = x·Wᵀ + b with x of shape [N, in_features].
///
/// K-FAC treats weight and bias jointly via the homogeneous-coordinate
/// trick: A is the covariance of [x, 1] (dim in+1) and the combined
/// gradient matrix is [out, in+1] with the bias gradient as last column.
class Linear final : public Layer, public KfacCapturable {
 public:
  Linear(int64_t in_features, int64_t out_features, bool bias, Rng& rng,
         std::string name = "linear");

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;

  std::vector<Parameter*> local_parameters() override;
  std::string name() const override { return name_; }

  // KfacCapturable ----------------------------------------------------------
  Tensor kfac_a_factor() const override;
  Tensor kfac_g_factor() const override;
  Tensor kfac_grad() const override;
  void set_kfac_grad(const Tensor& grad) override;
  int64_t kfac_a_dim() const override { return in_features_ + (bias_ ? 1 : 0); }
  int64_t kfac_g_dim() const override { return out_features_; }
  std::string kfac_name() const override { return name_; }

  Parameter& weight() { return weight_; }
  Parameter* bias() { return bias_ ? &*bias_param_ : nullptr; }
  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool bias_;
  std::string name_;
  Parameter weight_;                      // [out, in]
  std::optional<Parameter> bias_param_;   // [out]

  // Cached batch state (forward input, backward output-grad).
  Tensor input_;        // [N, in]
  Tensor grad_output_;  // [N, out]
  bool has_batch_ = false;
  bool has_grad_ = false;
};

}  // namespace dkfac::nn
