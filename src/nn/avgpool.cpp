#include "nn/avgpool.hpp"

#include "common/error.hpp"
#include "nn/conv2d.hpp"  // conv_out_size

namespace dkfac::nn {

AvgPool2d::AvgPool2d(int64_t kernel, int64_t stride, int64_t padding,
                     std::string name)
    : kernel_(kernel), stride_(stride), padding_(padding), name_(std::move(name)) {
  DKFAC_CHECK(kernel >= 1 && stride >= 1 && padding >= 0);
}

Tensor AvgPool2d::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 4) << name_ << ": expects NCHW, got " << x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = conv_out_size(h, kernel_, stride_, padding_);
  const int64_t ow = conv_out_size(w, kernel_, stride_, padding_);
  input_shape_ = x.shape();

  // PyTorch's count_include_pad=True convention: divide by kernel².
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor y(Shape{n, c, oh, ow});
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      const float* src = x.data() + (b * c + ch) * h * w;
      for (int64_t r = 0; r < oh; ++r) {
        for (int64_t col = 0; col < ow; ++col) {
          double sum = 0.0;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t hh = r * stride_ - padding_ + kh;
            if (hh < 0 || hh >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t ww = col * stride_ - padding_ + kw;
              if (ww < 0 || ww >= w) continue;
              sum += src[hh * w + ww];
            }
          }
          y.data()[((b * c + ch) * oh + r) * ow + col] =
              static_cast<float>(sum) * inv;
        }
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(input_shape_.ndim() == 4) << name_ << ": backward before forward";
  const int64_t n = input_shape_[0], c = input_shape_[1], h = input_shape_[2],
                w = input_shape_[3];
  const int64_t oh = conv_out_size(h, kernel_, stride_, padding_);
  const int64_t ow = conv_out_size(w, kernel_, stride_, padding_);
  DKFAC_CHECK(grad_output.shape() == Shape({n, c, oh, ow}))
      << name_ << ": grad shape " << grad_output.shape();

  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  Tensor dx(input_shape_);
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t ch = 0; ch < c; ++ch) {
      float* dst = dx.data() + (b * c + ch) * h * w;
      for (int64_t r = 0; r < oh; ++r) {
        for (int64_t col = 0; col < ow; ++col) {
          const float g =
              grad_output.data()[((b * c + ch) * oh + r) * ow + col] * inv;
          for (int64_t kh = 0; kh < kernel_; ++kh) {
            const int64_t hh = r * stride_ - padding_ + kh;
            if (hh < 0 || hh >= h) continue;
            for (int64_t kw = 0; kw < kernel_; ++kw) {
              const int64_t ww = col * stride_ - padding_ + kw;
              if (ww < 0 || ww >= w) continue;
              dst[hh * w + ww] += g;
            }
          }
        }
      }
    }
  }
  return dx;
}

}  // namespace dkfac::nn
