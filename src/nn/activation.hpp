// Elementwise activations.
#pragma once

#include "nn/layer.hpp"

namespace dkfac::nn {

class ReLU final : public Layer {
 public:
  explicit ReLU(std::string name = "relu") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override {
    mask_.assign(static_cast<size_t>(x.numel()), 0);
    Tensor y = x;
    for (int64_t i = 0; i < y.numel(); ++i) {
      if (y[i] > 0.0f) {
        mask_[static_cast<size_t>(i)] = 1;
      } else {
        y[i] = 0.0f;
      }
    }
    return y;
  }

  Tensor backward_impl(const Tensor& grad_output) override;

  std::string name() const override { return name_; }

 private:
  std::string name_;
  std::vector<uint8_t> mask_;
};

}  // namespace dkfac::nn
