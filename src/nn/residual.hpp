// Residual blocks (He et al.): the skip connection is the one non-chain
// piece of ResNet topology, so it gets its own composite layer that routes
// gradients to both branches explicitly.
#pragma once

#include <optional>

#include "nn/activation.hpp"
#include "nn/sequential.hpp"

namespace dkfac::nn {

/// y = ReLU(main(x) + shortcut(x)) where shortcut is identity or a
/// projection (1×1 conv + BN) when shape changes. Covers both the
/// BasicBlock and Bottleneck main-branch structures — the factory functions
/// in resnet.hpp build the appropriate `main`.
class ResidualBlock final : public Layer {
 public:
  ResidualBlock(LayerPtr main, LayerPtr shortcut, std::string name = "block")
      : name_(std::move(name)),
        main_(std::move(main)),
        shortcut_(std::move(shortcut)),
        relu_(name_ + ".relu") {}

  Tensor forward(const Tensor& x) override {
    Tensor out = main_->forward(x);
    if (shortcut_) {
      out.add_(shortcut_->forward(x));
    } else {
      out.add_(x);
    }
    return relu_.forward(out);
  }

  Tensor backward_impl(const Tensor& grad_output) override {
    Tensor g = relu_.backward(grad_output);
    Tensor dx = main_->backward(g);
    if (shortcut_) {
      dx.add_(shortcut_->backward(g));
    } else {
      dx.add_(g);
    }
    return dx;
  }

  std::vector<Layer*> children() override {
    std::vector<Layer*> out{main_.get()};
    if (shortcut_) out.push_back(shortcut_.get());
    out.push_back(&relu_);
    return out;
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  LayerPtr main_;
  LayerPtr shortcut_;  // null → identity skip
  ReLU relu_;
};

}  // namespace dkfac::nn
