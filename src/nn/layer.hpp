// Layer interface for the dkfac neural network library.
//
// Layers are stateful: forward() caches whatever backward() needs (inputs,
// masks, im2col patches), so a layer instance appears exactly once in a
// network. Composite layers (Sequential, residual blocks) route gradients
// explicitly — there is no tape; the network topology *is* the autograd
// graph, mirroring how the original PyTorch implementation registers
// forward/backward hooks per layer (paper §IV-B).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace dkfac::nn {

class Layer;

/// Fired by Layer::backward the moment a layer (and all its children)
/// has finished accumulating gradients — the readiness signal the
/// overlapped communication pipeline keys off (Horovod's per-tensor
/// backward hooks, paper §IV-B).
using BackwardHook = std::function<void(Layer&)>;

/// A trainable tensor with its accumulated gradient.
struct Parameter {
  std::string name;
  Tensor value;
  Tensor grad;

  Parameter(std::string name, Tensor value)
      : name(std::move(name)), value(std::move(value)), grad(this->value.shape()) {}
};

/// Interface implemented by K-FAC-eligible layers (Linear, Conv2d). The
/// preconditioner talks to layers exclusively through this surface: it
/// reads the Kronecker factors and rewrites the combined gradient matrix.
/// All other layer types are ignored by K-FAC and updated normally by the
/// inner optimizer (paper §V).
class KfacCapturable {
 public:
  virtual ~KfacCapturable() = default;

  /// Factor A_{i-1}: mean outer product of this layer's (augmented) inputs
  /// from the most recent forward pass (Eq 5; KFC expansion for conv).
  /// Shape [a_dim, a_dim] where a_dim = fan-in (+1 when the layer has bias).
  virtual Tensor kfac_a_factor() const = 0;

  /// Factor G_i: mean outer product of per-sample gradients of the loss
  /// w.r.t. this layer's pre-activation outputs, from the most recent
  /// backward pass. Shape [g_dim, g_dim] where g_dim = fan-out.
  virtual Tensor kfac_g_factor() const = 0;

  /// Combined weight(+bias) gradient as a [g_dim, a_dim] matrix.
  virtual Tensor kfac_grad() const = 0;

  /// Writes a preconditioned [g_dim, a_dim] matrix back into the layer's
  /// weight (and bias) gradients.
  virtual void set_kfac_grad(const Tensor& grad) = 0;

  virtual int64_t kfac_a_dim() const = 0;
  virtual int64_t kfac_g_dim() const = 0;
  virtual std::string kfac_name() const = 0;
};

class Layer {
 public:
  virtual ~Layer() = default;
  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes outputs, caching anything backward() will need.
  virtual Tensor forward(const Tensor& x) = 0;

  /// Consumes dL/d(output), accumulates parameter gradients, and returns
  /// dL/d(input). Must be called after forward() on the same batch.
  /// Non-virtual: runs backward_impl(), then fires the readiness hook so
  /// gradient communication can start while earlier layers still compute.
  Tensor backward(const Tensor& grad_output) {
    Tensor grad_input = backward_impl(grad_output);
    if (backward_hook_ && *backward_hook_) (*backward_hook_)(*this);
    return grad_input;
  }

  /// Installs `hook` on this layer and (recursively) every sublayer.
  /// Composite layers fire after their children, so hooks observe layers
  /// in completion order. Pass nullptr to clear.
  void set_backward_hook(std::shared_ptr<const BackwardHook> hook) {
    backward_hook_ = hook;
    for (Layer* child : children()) child->set_backward_hook(hook);
  }

  /// Directly-owned trainable parameters (not recursive).
  virtual std::vector<Parameter*> local_parameters() { return {}; }

  /// Directly-owned sublayers (not recursive).
  virtual std::vector<Layer*> children() { return {}; }

  virtual std::string name() const = 0;

  /// Switches train/eval behaviour (BatchNorm statistics) recursively.
  void set_training(bool training) {
    training_ = training;
    for (Layer* child : children()) child->set_training(training);
  }
  bool training() const { return training_; }

  // ---- recursive helpers --------------------------------------------------

  /// All parameters in definition order, depth first.
  std::vector<Parameter*> parameters() {
    std::vector<Parameter*> out;
    collect_parameters(out);
    return out;
  }

  /// All layers (self included), depth first.
  std::vector<Layer*> modules() {
    std::vector<Layer*> out;
    collect_modules(out);
    return out;
  }

  /// All K-FAC-eligible layers in definition order.
  std::vector<KfacCapturable*> kfac_layers() {
    std::vector<KfacCapturable*> out;
    for (Layer* m : modules()) {
      if (auto* k = dynamic_cast<KfacCapturable*>(m)) out.push_back(k);
    }
    return out;
  }

  void zero_grad() {
    for (Parameter* p : parameters()) p->grad.zero_();
  }

  int64_t parameter_count() {
    int64_t total = 0;
    for (Parameter* p : parameters()) total += p->value.numel();
    return total;
  }

 protected:
  /// Layer-specific backward pass — see backward() for the contract.
  virtual Tensor backward_impl(const Tensor& grad_output) = 0;

 private:
  void collect_parameters(std::vector<Parameter*>& out) {
    for (Parameter* p : local_parameters()) out.push_back(p);
    for (Layer* child : children()) child->collect_parameters(out);
  }

  void collect_modules(std::vector<Layer*>& out) {
    out.push_back(this);
    for (Layer* child : children()) child->collect_modules(out);
  }

  bool training_ = true;
  std::shared_ptr<const BackwardHook> backward_hook_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace dkfac::nn
