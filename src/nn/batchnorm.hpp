// Batch normalisation over NCHW channels.
//
// Not K-FAC-eligible — the paper's implementation preconditions only
// Linear and Conv2D layers; BatchNorm parameters take the plain optimizer
// update (§V). Training mode normalises with batch statistics and updates
// running estimates; eval mode uses the running estimates.
#pragma once

#include "nn/layer.hpp"

namespace dkfac::nn {

class BatchNorm2d final : public Layer {
 public:
  BatchNorm2d(int64_t channels, std::string name = "bn", float momentum = 0.1f,
              float epsilon = 1e-5f);

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;

  std::vector<Parameter*> local_parameters() override { return {&gamma_, &beta_}; }
  std::string name() const override { return name_; }

  const Tensor& running_mean() const { return running_mean_; }
  const Tensor& running_var() const { return running_var_; }
  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }

 private:
  int64_t channels_;
  std::string name_;
  float momentum_;
  float epsilon_;
  Parameter gamma_;  // scale, initialised to 1
  Parameter beta_;   // shift, initialised to 0
  Tensor running_mean_;
  Tensor running_var_;

  // Cached batch state for backward.
  Tensor input_;
  Tensor xhat_;
  Tensor batch_mean_;
  Tensor batch_inv_std_;
  bool has_batch_ = false;
};

}  // namespace dkfac::nn
