// Inverted dropout: active in training mode, identity in eval mode.
// Not K-FAC-eligible (no trainable parameters).
#pragma once

#include "nn/layer.hpp"

namespace dkfac::nn {

class Dropout final : public Layer {
 public:
  /// `p` = drop probability; survivors are scaled by 1/(1-p) so eval-mode
  /// activations need no rescaling. The mask stream is deterministic per
  /// (seed, forward-call index).
  explicit Dropout(float p, uint64_t seed = 1234, std::string name = "dropout");

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  float p_;
  uint64_t seed_;
  uint64_t calls_ = 0;
  std::string name_;
  std::vector<uint8_t> mask_;  // 1 = kept
};

}  // namespace dkfac::nn
