// Weight initialisation (Kaiming / He schemes used by ResNet).
#pragma once

#include "tensor/random.hpp"
#include "tensor/tensor.hpp"

namespace dkfac::nn {

/// Kaiming-normal: N(0, sqrt(2/fan_in)) — the ResNet conv initialiser.
void kaiming_normal(Tensor& w, int64_t fan_in, Rng& rng);

/// Uniform in ±1/sqrt(fan_in) — the classic Linear default.
void fan_in_uniform(Tensor& w, int64_t fan_in, Rng& rng);

}  // namespace dkfac::nn
