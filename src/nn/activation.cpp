#include "nn/activation.hpp"

#include "common/error.hpp"

namespace dkfac::nn {

Tensor ReLU::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(static_cast<size_t>(grad_output.numel()) == mask_.size())
      << name_ << ": backward before forward or shape changed";
  Tensor dx = grad_output;
  for (int64_t i = 0; i < dx.numel(); ++i) {
    if (!mask_[static_cast<size_t>(i)]) dx[i] = 0.0f;
  }
  return dx;
}

}  // namespace dkfac::nn
