// Softmax cross-entropy with label smoothing (paper §VI-C1 smooths labels
// by 0.1 for the ImageNet runs), plus classification metrics.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dkfac::nn {

struct LossResult {
  float loss;   // mean over the batch
  Tensor grad;  // dL/dlogits, shape [N, C], already includes the 1/N
};

/// Numerically-stable softmax cross-entropy. `labels` are class indices.
/// With label_smoothing ε the target is (1-ε)·onehot + ε/C.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int64_t>& labels,
                                 float label_smoothing = 0.0f);

/// Row-wise softmax probabilities.
Tensor softmax(const Tensor& logits);

/// Top-1 accuracy in [0, 1].
float accuracy(const Tensor& logits, const std::vector<int64_t>& labels);

/// Number of rows whose argmax equals the label — the exact integer count
/// behind accuracy(). Use this when accumulating across batches: summing
/// integer counts is drift-free, whereas re-scaling per-batch accuracies
/// rounds on every batch.
int64_t correct_predictions(const Tensor& logits,
                            const std::vector<int64_t>& labels);

}  // namespace dkfac::nn
