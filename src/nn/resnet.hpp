// ResNet model factory (He et al. 2016), both the CIFAR family
// (6n+2-layer: ResNet-8/14/20/32/...) and the ImageNet family
// (ResNet-18/34/50/101/152), plus small MLP/CNN builders used by tests
// and the quickstart example.
//
// `base_width` scales every stage's channel count, which lets benches run
// faithfully-shaped but laptop-sized models (see DESIGN.md substitutions).
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace dkfac::nn {

/// CIFAR-style ResNet of depth 6n+2 with basic blocks.
/// depth ∈ {8, 14, 20, 26, 32, ...}; stages use widths {w, 2w, 4w}.
LayerPtr resnet_cifar(int depth, int64_t num_classes, Rng& rng,
                      int64_t base_width = 16, int64_t in_channels = 3);

/// ImageNet-style ResNet. depth ∈ {18, 34, 50, 101, 152}; 50+ use
/// bottleneck blocks with expansion 4.
LayerPtr resnet_imagenet(int depth, int64_t num_classes, Rng& rng,
                         int64_t base_width = 64, int64_t in_channels = 3);

/// Two-hidden-layer MLP for unit tests and the quickstart.
LayerPtr mlp(int64_t in_features, int64_t hidden, int64_t num_classes, Rng& rng);

/// Conv → BN → ReLU → pool → conv → BN → ReLU → GAP → FC. A minimal CNN
/// exercising every layer type.
LayerPtr simple_cnn(int64_t in_channels, int64_t num_classes, Rng& rng,
                    int64_t width = 8);

}  // namespace dkfac::nn
