// Windowed average pooling (NCHW). Complements MaxPool2d/GlobalAvgPool.
#pragma once

#include "nn/layer.hpp"

namespace dkfac::nn {

class AvgPool2d final : public Layer {
 public:
  AvgPool2d(int64_t kernel, int64_t stride, int64_t padding = 0,
            std::string name = "avgpool");

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  std::string name_;
  Shape input_shape_{0};
};

}  // namespace dkfac::nn
