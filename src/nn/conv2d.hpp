// 2-D convolution (NCHW) via im2col + GEMM, with K-FAC factor capture.
//
// Factor shapes follow the KFC expansion (Grosse & Martens) the paper
// builds on: A is the covariance of im2col patches (dim C_in·k_h·k_w, +1
// with bias) averaged over batch and spatial positions; G is the
// covariance of per-position output gradients (dim C_out).
#pragma once

#include <optional>

#include "nn/layer.hpp"

namespace dkfac::nn {

struct Conv2dSpec {
  int64_t in_channels;
  int64_t out_channels;
  int64_t kernel = 3;
  int64_t stride = 1;
  int64_t padding = 0;
  bool bias = false;  // ResNet convs carry no bias (BatchNorm follows)
};

/// Unfolds x [N,C,H,W] into patch rows [N·OH·OW, C·k·k].
Tensor im2col(const Tensor& x, int64_t kernel, int64_t stride, int64_t padding);

/// Adjoint of im2col: folds patch-row gradients back into image gradients.
Tensor col2im(const Tensor& cols, Shape image_shape, int64_t kernel,
              int64_t stride, int64_t padding);

/// Output spatial size for one dimension.
int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t padding);

class Conv2d final : public Layer, public KfacCapturable {
 public:
  Conv2d(Conv2dSpec spec, Rng& rng, std::string name = "conv");

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;

  std::vector<Parameter*> local_parameters() override;
  std::string name() const override { return name_; }

  // KfacCapturable ----------------------------------------------------------
  Tensor kfac_a_factor() const override;
  Tensor kfac_g_factor() const override;
  Tensor kfac_grad() const override;
  void set_kfac_grad(const Tensor& grad) override;
  int64_t kfac_a_dim() const override { return patch_dim_ + (spec_.bias ? 1 : 0); }
  int64_t kfac_g_dim() const override { return spec_.out_channels; }
  std::string kfac_name() const override { return name_; }

  const Conv2dSpec& spec() const { return spec_; }
  Parameter& weight() { return weight_; }
  Parameter* bias() { return spec_.bias ? &*bias_param_ : nullptr; }

 private:
  Conv2dSpec spec_;
  int64_t patch_dim_;  // C_in · k · k
  std::string name_;
  Parameter weight_;                     // [out_channels, patch_dim]
  std::optional<Parameter> bias_param_;  // [out_channels]

  // Cached batch state.
  Shape input_shape_{0};
  Tensor patches_;      // [N·OH·OW, patch_dim] from the last forward
  Tensor grad_rows_;    // [N·OH·OW, out_channels] from the last backward
  bool has_batch_ = false;
  bool has_grad_ = false;
};

}  // namespace dkfac::nn
