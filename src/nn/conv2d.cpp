#include "nn/conv2d.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "nn/init.hpp"

namespace dkfac::nn {

using linalg::gemm;
using linalg::matmul;
using linalg::syrk;
using linalg::Trans;

int64_t conv_out_size(int64_t in, int64_t kernel, int64_t stride, int64_t padding) {
  DKFAC_CHECK(kernel >= 1 && stride >= 1 && padding >= 0);
  const int64_t out = (in + 2 * padding - kernel) / stride + 1;
  DKFAC_CHECK(out >= 1) << "conv output collapses: in=" << in << " k=" << kernel
                        << " s=" << stride << " p=" << padding;
  return out;
}

Tensor im2col(const Tensor& x, int64_t kernel, int64_t stride, int64_t padding) {
  DKFAC_CHECK(x.ndim() == 4) << "im2col expects NCHW, got " << x.shape();
  const int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const int64_t oh = conv_out_size(h, kernel, stride, padding);
  const int64_t ow = conv_out_size(w, kernel, stride, padding);
  const int64_t patch_dim = c * kernel * kernel;

  Tensor cols(Shape{n * oh * ow, patch_dim});
#pragma omp parallel for schedule(static)
  for (int64_t img = 0; img < n; ++img) {
    const float* src = x.data() + img * c * h * w;
    for (int64_t r = 0; r < oh; ++r) {
      for (int64_t col = 0; col < ow; ++col) {
        float* dst = cols.data() + ((img * oh + r) * ow + col) * patch_dim;
        const int64_t h0 = r * stride - padding;
        const int64_t w0 = col * stride - padding;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t kh = 0; kh < kernel; ++kh) {
            const int64_t hh = h0 + kh;
            for (int64_t kw = 0; kw < kernel; ++kw) {
              const int64_t ww = w0 + kw;
              const bool inside = hh >= 0 && hh < h && ww >= 0 && ww < w;
              *dst++ = inside ? src[(ch * h + hh) * w + ww] : 0.0f;
            }
          }
        }
      }
    }
  }
  return cols;
}

Tensor col2im(const Tensor& cols, Shape image_shape, int64_t kernel,
              int64_t stride, int64_t padding) {
  DKFAC_CHECK(image_shape.ndim() == 4) << "col2im target must be NCHW";
  const int64_t n = image_shape[0], c = image_shape[1], h = image_shape[2],
                w = image_shape[3];
  const int64_t oh = conv_out_size(h, kernel, stride, padding);
  const int64_t ow = conv_out_size(w, kernel, stride, padding);
  const int64_t patch_dim = c * kernel * kernel;
  DKFAC_CHECK(cols.ndim() == 2 && cols.dim(0) == n * oh * ow &&
              cols.dim(1) == patch_dim)
      << "col2im input shape " << cols.shape() << " inconsistent with image "
      << image_shape;

  Tensor img(image_shape);
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    float* dst = img.data() + b * c * h * w;
    for (int64_t r = 0; r < oh; ++r) {
      for (int64_t col = 0; col < ow; ++col) {
        const float* src = cols.data() + ((b * oh + r) * ow + col) * patch_dim;
        const int64_t h0 = r * stride - padding;
        const int64_t w0 = col * stride - padding;
        for (int64_t ch = 0; ch < c; ++ch) {
          for (int64_t kh = 0; kh < kernel; ++kh) {
            const int64_t hh = h0 + kh;
            for (int64_t kw = 0; kw < kernel; ++kw) {
              const int64_t ww = w0 + kw;
              if (hh >= 0 && hh < h && ww >= 0 && ww < w) {
                dst[(ch * h + hh) * w + ww] += src[(ch * kernel + kh) * kernel + kw];
              }
            }
          }
        }
      }
    }
  }
  return img;
}

Conv2d::Conv2d(Conv2dSpec spec, Rng& rng, std::string name)
    : spec_(spec),
      patch_dim_(spec.in_channels * spec.kernel * spec.kernel),
      name_(std::move(name)),
      weight_(name_ + ".weight", Tensor(Shape{spec.out_channels, patch_dim_})) {
  DKFAC_CHECK(spec.in_channels > 0 && spec.out_channels > 0)
      << name_ << ": invalid channel counts";
  kaiming_normal(weight_.value, patch_dim_, rng);
  if (spec_.bias) {
    bias_param_.emplace(name_ + ".bias", Tensor(Shape{spec.out_channels}));
  }
}

Tensor Conv2d::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 4 && x.dim(1) == spec_.in_channels)
      << name_ << ": input " << x.shape() << " expected [N, " << spec_.in_channels
      << ", H, W]";
  input_shape_ = x.shape();
  patches_ = im2col(x, spec_.kernel, spec_.stride, spec_.padding);
  has_batch_ = true;
  has_grad_ = false;

  const int64_t n = x.dim(0);
  const int64_t oh = conv_out_size(x.dim(2), spec_.kernel, spec_.stride, spec_.padding);
  const int64_t ow = conv_out_size(x.dim(3), spec_.kernel, spec_.stride, spec_.padding);
  const int64_t oc = spec_.out_channels;

  // rows [N·OH·OW, OC] = patches · Wᵀ, then permute into NCHW.
  Tensor rows = matmul(patches_, weight_.value, Trans::kNo, Trans::kYes);
  Tensor y(Shape{n, oc, oh, ow});
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t r = 0; r < oh; ++r) {
      for (int64_t col = 0; col < ow; ++col) {
        const float* src = rows.data() + ((b * oh + r) * ow + col) * oc;
        for (int64_t ch = 0; ch < oc; ++ch) {
          y.data()[((b * oc + ch) * oh + r) * ow + col] =
              src[ch] + (spec_.bias ? bias_param_->value[ch] : 0.0f);
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(has_batch_) << name_ << ": backward before forward";
  const int64_t n = input_shape_[0];
  const int64_t oh = conv_out_size(input_shape_[2], spec_.kernel, spec_.stride,
                                   spec_.padding);
  const int64_t ow = conv_out_size(input_shape_[3], spec_.kernel, spec_.stride,
                                   spec_.padding);
  const int64_t oc = spec_.out_channels;
  DKFAC_CHECK(grad_output.shape() == Shape({n, oc, oh, ow}))
      << name_ << ": grad shape " << grad_output.shape();

  // Permute NCHW grad into row layout matching the forward GEMM.
  grad_rows_ = Tensor(Shape{n * oh * ow, oc});
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t r = 0; r < oh; ++r) {
      for (int64_t col = 0; col < ow; ++col) {
        float* dst = grad_rows_.data() + ((b * oh + r) * ow + col) * oc;
        for (int64_t ch = 0; ch < oc; ++ch) {
          dst[ch] = grad_output.data()[((b * oc + ch) * oh + r) * ow + col];
        }
      }
    }
  }
  has_grad_ = true;

  // dW += rowsᵀ·patches ; db += column sums ; dx = col2im(rows·W).
  gemm(1.0f, grad_rows_, Trans::kYes, patches_, Trans::kNo, 1.0f, weight_.grad);
  if (spec_.bias) {
    const int64_t rows_n = grad_rows_.dim(0);
    for (int64_t i = 0; i < rows_n; ++i) {
      const float* row = grad_rows_.data() + i * oc;
      for (int64_t ch = 0; ch < oc; ++ch) bias_param_->grad[ch] += row[ch];
    }
  }
  Tensor grad_patches = matmul(grad_rows_, weight_.value);
  return col2im(grad_patches, input_shape_, spec_.kernel, spec_.stride,
                spec_.padding);
}

std::vector<Parameter*> Conv2d::local_parameters() {
  std::vector<Parameter*> out{&weight_};
  if (spec_.bias) out.push_back(&*bias_param_);
  return out;
}

Tensor Conv2d::kfac_a_factor() const {
  DKFAC_CHECK(has_batch_) << name_ << ": no forward pass captured for A factor";
  const int64_t rows = patches_.dim(0);  // N·OH·OW
  const int64_t d = kfac_a_dim();
  // A = E[ã ãᵀ] is a Gram matrix — syrk computes the upper triangle only
  // (~half the flops) and mirrors, so the factor is exactly symmetric.
  Tensor a(Shape{d, d});
  if (!spec_.bias) {
    syrk(1.0f / static_cast<float>(rows), patches_, Trans::kYes, 0.0f, a);
    return a;
  }
  Tensor augmented(Shape{rows, d});
  for (int64_t i = 0; i < rows; ++i) {
    const float* src = patches_.data() + i * patch_dim_;
    float* dst = augmented.data() + i * d;
    std::copy(src, src + patch_dim_, dst);
    dst[patch_dim_] = 1.0f;
  }
  syrk(1.0f / static_cast<float>(rows), augmented, Trans::kYes, 0.0f, a);
  return a;
}

Tensor Conv2d::kfac_g_factor() const {
  DKFAC_CHECK(has_grad_) << name_ << ": no backward pass captured for G factor";
  const int64_t rows = grad_rows_.dim(0);  // N·OH·OW
  const int64_t n = input_shape_[0];
  const int64_t oc = spec_.out_channels;
  // Per-sample output grads are N·g (mean loss); average the outer product
  // over batch and spatial positions: G = N²/(N·OH·OW) · rowsᵀ·rows.
  const float scale = static_cast<float>(n) * static_cast<float>(n) /
                      static_cast<float>(rows);
  Tensor g(Shape{oc, oc});
  syrk(scale, grad_rows_, Trans::kYes, 0.0f, g);
  return g;
}

Tensor Conv2d::kfac_grad() const {
  if (!spec_.bias) return weight_.grad;
  const int64_t oc = spec_.out_channels;
  Tensor combined(Shape{oc, patch_dim_ + 1});
  for (int64_t i = 0; i < oc; ++i) {
    const float* src = weight_.grad.data() + i * patch_dim_;
    float* dst = combined.data() + i * (patch_dim_ + 1);
    std::copy(src, src + patch_dim_, dst);
    dst[patch_dim_] = bias_param_->grad[i];
  }
  return combined;
}

void Conv2d::set_kfac_grad(const Tensor& grad) {
  DKFAC_CHECK(grad.ndim() == 2 && grad.dim(0) == kfac_g_dim() &&
              grad.dim(1) == kfac_a_dim())
      << name_ << ": preconditioned grad shape " << grad.shape();
  if (!spec_.bias) {
    weight_.grad = grad;
    return;
  }
  const int64_t oc = spec_.out_channels;
  for (int64_t i = 0; i < oc; ++i) {
    const float* src = grad.data() + i * (patch_dim_ + 1);
    float* dst = weight_.grad.data() + i * patch_dim_;
    std::copy(src, src + patch_dim_, dst);
    bias_param_->grad[i] = src[patch_dim_];
  }
}

}  // namespace dkfac::nn
