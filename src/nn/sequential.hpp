// Sequential container: forward chains children, backward runs in reverse.
#pragma once

#include <algorithm>
#include <utility>

#include "nn/layer.hpp"

namespace dkfac::nn {

class Sequential final : public Layer {
 public:
  explicit Sequential(std::string name = "seq") : name_(std::move(name)) {}

  /// Appends a layer; returns a reference for inline construction.
  Sequential& add(LayerPtr layer) {
    layers_.push_back(std::move(layer));
    return *this;
  }

  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    layers_.push_back(std::make_unique<L>(std::forward<Args>(args)...));
    return *this;
  }

  Tensor forward(const Tensor& x) override {
    Tensor h = x;
    for (auto& layer : layers_) h = layer->forward(h);
    return h;
  }

  Tensor backward_impl(const Tensor& grad_output) override {
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  std::vector<Layer*> children() override {
    std::vector<Layer*> out;
    out.reserve(layers_.size());
    for (auto& l : layers_) out.push_back(l.get());
    return out;
  }

  std::string name() const override { return name_; }
  size_t size() const { return layers_.size(); }

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

/// Flattens [N, ...] to [N, prod(...)]; restores shape on backward.
class Flatten final : public Layer {
 public:
  explicit Flatten(std::string name = "flatten") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override {
    input_shape_ = x.shape();
    const int64_t n = x.dim(0);
    return x.reshaped(Shape{n, x.numel() / std::max<int64_t>(n, 1)});
  }

  Tensor backward_impl(const Tensor& grad_output) override {
    return grad_output.reshaped(input_shape_);
  }

  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape input_shape_{0};
};

}  // namespace dkfac::nn
