// Spatial pooling layers (NCHW).
#pragma once

#include "nn/layer.hpp"

namespace dkfac::nn {

/// Max pooling with square window. Stores argmax indices for backward.
class MaxPool2d final : public Layer {
 public:
  MaxPool2d(int64_t kernel, int64_t stride, int64_t padding = 0,
            std::string name = "maxpool");

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  int64_t kernel_;
  int64_t stride_;
  int64_t padding_;
  std::string name_;
  Shape input_shape_{0};
  std::vector<int64_t> argmax_;  // flat input index per output element
};

/// Global average pooling: [N, C, H, W] → [N, C].
class GlobalAvgPool final : public Layer {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : name_(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward_impl(const Tensor& grad_output) override;
  std::string name() const override { return name_; }

 private:
  std::string name_;
  Shape input_shape_{0};
};

}  // namespace dkfac::nn
