// Checkpointing: save/load model parameters (and BatchNorm running
// statistics) to a simple self-describing binary format.
//
// Format (little-endian):
//   magic "DKFC" | u32 version | u64 entry_count |
//   per entry: u64 name_len | name bytes | u64 ndim | u64 dims[ndim] |
//              f32 data[numel]
//   footer: magic "DKFE" | u64 payload_bytes (everything before the footer)
//
// Entries are keyed by parameter name, so checkpoints survive refactors
// that reorder layers but not ones that rename them. BatchNorm running
// stats are stored under "<bn-name>.running_{mean,var}".
//
// Durability: the path-taking save writes `<path>.tmp`, fsyncs, and
// atomically renames — a crash mid-write leaves the previous checkpoint
// (or a stray .tmp), never a truncated file under the real name. The
// footer makes truncation detectable on load even when the cut lands on
// an entry boundary.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/layer.hpp"

namespace dkfac::nn {

/// Serialises every parameter and BatchNorm running statistic of `model`.
void save_checkpoint(Layer& model, std::ostream& out);
void save_checkpoint(Layer& model, const std::string& path);

/// Restores a checkpoint saved by save_checkpoint. Throws dkfac::Error on
/// magic/version mismatch, missing entries, or shape mismatches.
void load_checkpoint(Layer& model, std::istream& in);
void load_checkpoint(Layer& model, const std::string& path);

}  // namespace dkfac::nn
