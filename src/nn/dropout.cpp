#include "nn/dropout.hpp"

#include "common/error.hpp"

namespace dkfac::nn {

Dropout::Dropout(float p, uint64_t seed, std::string name)
    : p_(p), seed_(seed), name_(std::move(name)) {
  DKFAC_CHECK(p >= 0.0f && p < 1.0f) << name_ << ": drop probability " << p;
}

Tensor Dropout::forward(const Tensor& x) {
  if (!training() || p_ == 0.0f) {
    mask_.clear();
    return x;
  }
  Rng rng(seed_, ++calls_);
  const float scale = 1.0f / (1.0f - p_);
  mask_.assign(static_cast<size_t>(x.numel()), 0);
  Tensor y = x;
  for (int64_t i = 0; i < y.numel(); ++i) {
    if (rng.uniform() >= p_) {
      mask_[static_cast<size_t>(i)] = 1;
      y[i] *= scale;
    } else {
      y[i] = 0.0f;
    }
  }
  return y;
}

Tensor Dropout::backward_impl(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;  // eval mode or p == 0
  DKFAC_CHECK(static_cast<size_t>(grad_output.numel()) == mask_.size())
      << name_ << ": backward shape mismatch";
  const float scale = 1.0f / (1.0f - p_);
  Tensor dx = grad_output;
  for (int64_t i = 0; i < dx.numel(); ++i) {
    dx[i] = mask_[static_cast<size_t>(i)] ? dx[i] * scale : 0.0f;
  }
  return dx;
}

}  // namespace dkfac::nn
