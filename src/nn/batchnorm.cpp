#include "nn/batchnorm.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dkfac::nn {

BatchNorm2d::BatchNorm2d(int64_t channels, std::string name, float momentum,
                         float epsilon)
    : channels_(channels),
      name_(std::move(name)),
      momentum_(momentum),
      epsilon_(epsilon),
      gamma_(name_ + ".gamma", Tensor::ones(Shape{channels})),
      beta_(name_ + ".beta", Tensor(Shape{channels})),
      running_mean_(Shape{channels}),
      running_var_(Tensor::ones(Shape{channels})) {
  DKFAC_CHECK(channels > 0);
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  DKFAC_CHECK(x.ndim() == 4 && x.dim(1) == channels_)
      << name_ << ": input " << x.shape() << " expected [N, " << channels_
      << ", H, W]";
  const int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const int64_t count = n * h * w;
  DKFAC_CHECK(count > 0) << name_ << ": empty batch";

  Tensor mean(Shape{channels_});
  Tensor var(Shape{channels_});
  if (training()) {
    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* src = x.data() + (b * channels_ + c) * h * w;
        for (int64_t i = 0; i < h * w; ++i) sum += src[i];
      }
      mean[c] = static_cast<float>(sum / count);
    }
    for (int64_t c = 0; c < channels_; ++c) {
      double sum = 0.0;
      for (int64_t b = 0; b < n; ++b) {
        const float* src = x.data() + (b * channels_ + c) * h * w;
        for (int64_t i = 0; i < h * w; ++i) {
          const double d = src[i] - mean[c];
          sum += d * d;
        }
      }
      var[c] = static_cast<float>(sum / count);  // biased, as PyTorch normalises
    }
    // Running estimates use the unbiased variance, matching PyTorch.
    const float unbias = count > 1 ? static_cast<float>(count) / (count - 1) : 1.0f;
    for (int64_t c = 0; c < channels_; ++c) {
      running_mean_[c] = (1.0f - momentum_) * running_mean_[c] + momentum_ * mean[c];
      running_var_[c] =
          (1.0f - momentum_) * running_var_[c] + momentum_ * var[c] * unbias;
    }
  } else {
    mean = running_mean_;
    var = running_var_;
  }

  Tensor inv_std(Shape{channels_});
  for (int64_t c = 0; c < channels_; ++c) {
    inv_std[c] = 1.0f / std::sqrt(var[c] + epsilon_);
  }

  Tensor y(x.shape());
  Tensor xhat(x.shape());
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* src = x.data() + (b * channels_ + c) * h * w;
      float* xh = xhat.data() + (b * channels_ + c) * h * w;
      float* dst = y.data() + (b * channels_ + c) * h * w;
      const float m = mean[c], is = inv_std[c], g = gamma_.value[c],
                  bt = beta_.value[c];
      for (int64_t i = 0; i < h * w; ++i) {
        xh[i] = (src[i] - m) * is;
        dst[i] = g * xh[i] + bt;
      }
    }
  }

  if (training()) {
    input_ = x;
    xhat_ = std::move(xhat);
    batch_mean_ = std::move(mean);
    batch_inv_std_ = std::move(inv_std);
    has_batch_ = true;
  }
  return y;
}

Tensor BatchNorm2d::backward_impl(const Tensor& grad_output) {
  DKFAC_CHECK(has_batch_) << name_ << ": backward before training forward";
  DKFAC_CHECK(grad_output.shape() == input_.shape())
      << name_ << ": grad shape " << grad_output.shape();
  const int64_t n = input_.dim(0), h = input_.dim(2), w = input_.dim(3);
  const int64_t count = n * h * w;

  // Per-channel reductions: dγ = Σ dy·x̂, dβ = Σ dy.
  Tensor sum_dy(Shape{channels_});
  Tensor sum_dy_xhat(Shape{channels_});
  for (int64_t c = 0; c < channels_; ++c) {
    double s1 = 0.0, s2 = 0.0;
    for (int64_t b = 0; b < n; ++b) {
      const float* dy = grad_output.data() + (b * channels_ + c) * h * w;
      const float* xh = xhat_.data() + (b * channels_ + c) * h * w;
      for (int64_t i = 0; i < h * w; ++i) {
        s1 += dy[i];
        s2 += static_cast<double>(dy[i]) * xh[i];
      }
    }
    sum_dy[c] = static_cast<float>(s1);
    sum_dy_xhat[c] = static_cast<float>(s2);
    gamma_.grad[c] += sum_dy_xhat[c];
    beta_.grad[c] += sum_dy[c];
  }

  // dx = γ·inv_std/count · (count·dy − Σdy − x̂·Σ(dy·x̂)).
  Tensor dx(input_.shape());
  const float inv_count = 1.0f / static_cast<float>(count);
#pragma omp parallel for schedule(static)
  for (int64_t b = 0; b < n; ++b) {
    for (int64_t c = 0; c < channels_; ++c) {
      const float* dy = grad_output.data() + (b * channels_ + c) * h * w;
      const float* xh = xhat_.data() + (b * channels_ + c) * h * w;
      float* out = dx.data() + (b * channels_ + c) * h * w;
      const float k = gamma_.value[c] * batch_inv_std_[c] * inv_count;
      const float s1 = sum_dy[c], s2 = sum_dy_xhat[c];
      for (int64_t i = 0; i < h * w; ++i) {
        out[i] = k * (static_cast<float>(count) * dy[i] - s1 - xh[i] * s2);
      }
    }
  }
  return dx;
}

}  // namespace dkfac::nn
