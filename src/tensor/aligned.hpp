// AlignedAllocator — cache-line-aligned storage for hot numeric buffers.
//
// Tensor storage and the comm::Arena both hand their memory to SIMD
// micro-kernels (linalg) and to collectives that slice buffers at
// arbitrary offsets. Aligning every base pointer to one cache line
// (64 bytes = one AVX-512 vector, two AVX2 vectors) makes the aligned
// fast paths in those kernels eligible without per-call checks, and keeps
// concurrently-reduced neighbouring buffers from false-sharing a line.
//
// Standard allocator contract: stateless, so every instance compares
// equal and containers can steal each other's memory on move/swap.
#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace dkfac {

template <typename T, std::size_t Alignment = 64>
struct AlignedAllocator {
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0, "alignment not a power of two");

  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    if (n == 0) return nullptr;
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }

  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// The storage type of every Tensor: a float vector whose base pointer is
/// cache-line aligned.
using AlignedFloatVector = std::vector<float, AlignedAllocator<float, 64>>;

}  // namespace dkfac
