// Tensor: dense row-major FP32 tensor with value semantics.
//
// This is the storage type shared by every dkfac library. It is
// deliberately simple — contiguous storage, deep-copy semantics, explicit
// element accessors — because K-FAC's hot paths (GEMM, eigensolve, im2col)
// live in dkfac_linalg / dkfac_nn and operate on raw spans.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/aligned.hpp"
#include "tensor/random.hpp"
#include "tensor/shape.hpp"

namespace dkfac {

class Tensor {
 public:
  /// Empty rank-1 tensor with zero elements.
  Tensor() : shape_({0}) {}

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<size_t>(shape_.numel()), 0.0f) {}

  /// Tensor holding a copy of `values` (re-homed into aligned storage);
  /// must match shape.numel().
  Tensor(Shape shape, std::vector<float> values);

  // ---- factories -------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return full(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float value);
  /// Identity matrix of size n×n.
  static Tensor eye(int64_t n);
  static Tensor randn(Shape shape, Rng& rng, float mean = 0.0f, float stddev = 1.0f);
  static Tensor rand(Shape shape, Rng& rng, float lo = 0.0f, float hi = 1.0f);
  /// 1-D tensor with the given values.
  static Tensor from(std::vector<float> values);

  // ---- structure -------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int64_t ndim() const { return shape_.ndim(); }
  int64_t dim(int64_t i) const { return shape_.dim(i); }
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  /// Same data, new shape; numel must be preserved.
  Tensor reshaped(Shape new_shape) const;

  // ---- element access --------------------------------------------------

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return data_; }
  std::span<const float> span() const { return data_; }

  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Bounds-checked 2-D accessor (matrix convention: row, col).
  float& at(int64_t r, int64_t c);
  float at(int64_t r, int64_t c) const;
  /// Bounds-checked 4-D accessor (NCHW convention).
  float& at(int64_t n, int64_t c, int64_t h, int64_t w);
  float at(int64_t n, int64_t c, int64_t h, int64_t w) const;

  // ---- in-place arithmetic ----------------------------------------------

  Tensor& fill_(float value);
  Tensor& zero_() { return fill_(0.0f); }
  Tensor& scale_(float alpha);
  /// this += alpha * other (shapes must match).
  Tensor& axpy_(float alpha, const Tensor& other);
  Tensor& add_(const Tensor& other) { return axpy_(1.0f, other); }
  Tensor& sub_(const Tensor& other) { return axpy_(-1.0f, other); }
  /// Elementwise product in place.
  Tensor& mul_(const Tensor& other);
  /// Elementwise: this = alpha*this + beta*other (running averages, Eq 16–17).
  Tensor& lerp_(float alpha, float beta, const Tensor& other);
  Tensor& add_scalar_(float value);
  Tensor& clamp_min_(float lo);

  // ---- value-returning arithmetic ---------------------------------------

  Tensor operator+(const Tensor& other) const;
  Tensor operator-(const Tensor& other) const;
  Tensor operator*(float alpha) const;

  // ---- reductions --------------------------------------------------------

  float sum() const;
  float mean() const;
  float max() const;
  float min() const;
  float abs_max() const;
  /// Euclidean norm of the flattened tensor.
  float norm() const;
  /// Sum of elementwise products with `other` (Frobenius inner product).
  float dot(const Tensor& other) const;

  bool operator==(const Tensor& other) const {
    return shape_ == other.shape_ && data_ == other.data_;
  }

 private:
  Shape shape_;
  // Cache-line-aligned so collectives and SIMD kernels slicing this
  // storage (the zero-copy dense fp32 factor path reduces it in place)
  // start from an aligned base.
  AlignedFloatVector data_;
};

/// True when every element differs by at most `atol + rtol*|b|`.
bool allclose(const Tensor& a, const Tensor& b, float rtol = 1e-5f, float atol = 1e-6f);

}  // namespace dkfac
