#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dkfac {

Tensor::Tensor(Shape shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(values.begin(), values.end()) {
  DKFAC_CHECK(static_cast<int64_t>(data_.size()) == shape_.numel())
      << "value count " << data_.size() << " does not match shape " << shape_;
}

Tensor Tensor::full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.fill_(value);
  return t;
}

Tensor Tensor::eye(int64_t n) {
  DKFAC_CHECK(n >= 0);
  Tensor t(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) t.at(i, i) = 1.0f;
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, float mean, float stddev) {
  Tensor t(std::move(shape));
  rng.fill_normal(t.span(), mean, stddev);
  return t;
}

Tensor Tensor::rand(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  rng.fill_uniform(t.span(), lo, hi);
  return t;
}

Tensor Tensor::from(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return Tensor(Shape{n}, std::move(values));
}

Tensor Tensor::reshaped(Shape new_shape) const {
  DKFAC_CHECK(new_shape.numel() == numel())
      << "cannot reshape " << shape_ << " (numel " << numel() << ") to "
      << new_shape << " (numel " << new_shape.numel() << ")";
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  return out;
}

float& Tensor::at(int64_t r, int64_t c) {
  DKFAC_CHECK(ndim() == 2) << "2-D accessor on tensor of shape " << shape_;
  DKFAC_CHECK(r >= 0 && r < dim(0) && c >= 0 && c < dim(1))
      << "index (" << r << ", " << c << ") out of range for " << shape_;
  return data_[static_cast<size_t>(r * dim(1) + c)];
}

float Tensor::at(int64_t r, int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

float& Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) {
  DKFAC_CHECK(ndim() == 4) << "4-D accessor on tensor of shape " << shape_;
  DKFAC_CHECK(n >= 0 && n < dim(0) && c >= 0 && c < dim(1) && h >= 0 &&
              h < dim(2) && w >= 0 && w < dim(3))
      << "index (" << n << ", " << c << ", " << h << ", " << w
      << ") out of range for " << shape_;
  return data_[static_cast<size_t>(((n * dim(1) + c) * dim(2) + h) * dim(3) + w)];
}

float Tensor::at(int64_t n, int64_t c, int64_t h, int64_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

Tensor& Tensor::fill_(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  for (float& v : data_) v *= alpha;
  return *this;
}

Tensor& Tensor::axpy_(float alpha, const Tensor& other) {
  DKFAC_CHECK(shape_ == other.shape_)
      << "axpy_ shape mismatch " << shape_ << " vs " << other.shape_;
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  DKFAC_CHECK(shape_ == other.shape_)
      << "mul_ shape mismatch " << shape_ << " vs " << other.shape_;
  for (size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::lerp_(float alpha, float beta, const Tensor& other) {
  DKFAC_CHECK(shape_ == other.shape_)
      << "lerp_ shape mismatch " << shape_ << " vs " << other.shape_;
  for (size_t i = 0; i < data_.size(); ++i) {
    data_[i] = alpha * data_[i] + beta * other.data_[i];
  }
  return *this;
}

Tensor& Tensor::add_scalar_(float value) {
  for (float& v : data_) v += value;
  return *this;
}

Tensor& Tensor::clamp_min_(float lo) {
  for (float& v : data_) v = std::max(v, lo);
  return *this;
}

Tensor Tensor::operator+(const Tensor& other) const {
  Tensor out = *this;
  out.add_(other);
  return out;
}

Tensor Tensor::operator-(const Tensor& other) const {
  Tensor out = *this;
  out.sub_(other);
  return out;
}

Tensor Tensor::operator*(float alpha) const {
  Tensor out = *this;
  out.scale_(alpha);
  return out;
}

float Tensor::sum() const {
  // Kahan summation keeps large-tensor reductions stable in FP32.
  float total = 0.0f;
  float carry = 0.0f;
  for (float v : data_) {
    const float y = v - carry;
    const float t = total + y;
    carry = (t - total) - y;
    total = t;
  }
  return total;
}

float Tensor::mean() const {
  DKFAC_CHECK(!data_.empty()) << "mean of empty tensor";
  return sum() / static_cast<float>(data_.size());
}

float Tensor::max() const {
  DKFAC_CHECK(!data_.empty()) << "max of empty tensor";
  return *std::max_element(data_.begin(), data_.end());
}

float Tensor::min() const {
  DKFAC_CHECK(!data_.empty()) << "min of empty tensor";
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::norm() const {
  // Accumulate in double: gradient norms feed the KL clip (Eq 18) and must
  // not underflow/overflow in FP32 for large parameter counts.
  double total = 0.0;
  for (float v : data_) total += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(total));
}

float Tensor::dot(const Tensor& other) const {
  DKFAC_CHECK(shape_ == other.shape_)
      << "dot shape mismatch " << shape_ << " vs " << other.shape_;
  double total = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    total += static_cast<double>(data_[i]) * other.data_[i];
  }
  return static_cast<float>(total);
}

bool allclose(const Tensor& a, const Tensor& b, float rtol, float atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const float tol = atol + rtol * std::abs(b[i]);
    if (std::abs(a[i] - b[i]) > tol) return false;
    if (std::isnan(a[i]) != std::isnan(b[i])) return false;
  }
  return true;
}

}  // namespace dkfac
