// Shape: dimension vector for dense row-major tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <numeric>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dkfac {

/// Dimensions of a dense row-major tensor. Immutable value type.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) { validate(); }

  /// Number of dimensions (rank) of the tensor.
  int64_t ndim() const { return static_cast<int64_t>(dims_.size()); }

  /// Size along dimension `i`; negative `i` counts from the end.
  int64_t dim(int64_t i) const {
    const int64_t n = ndim();
    if (i < 0) i += n;
    DKFAC_CHECK(i >= 0 && i < n) << "dim index " << i << " out of range for rank " << n;
    return dims_[static_cast<size_t>(i)];
  }

  int64_t operator[](int64_t i) const { return dim(i); }

  /// Total number of elements (1 for a rank-0 scalar shape).
  int64_t numel() const {
    return std::accumulate(dims_.begin(), dims_.end(), int64_t{1},
                           [](int64_t a, int64_t b) { return a * b; });
  }

  const std::vector<int64_t>& dims() const { return dims_; }

  /// Row-major strides (in elements) matching this shape.
  std::vector<int64_t> strides() const {
    std::vector<int64_t> s(dims_.size(), 1);
    for (int64_t i = ndim() - 2; i >= 0; --i) {
      s[static_cast<size_t>(i)] =
          s[static_cast<size_t>(i + 1)] * dims_[static_cast<size_t>(i + 1)];
    }
    return s;
  }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  std::string to_string() const {
    std::string out = "[";
    for (size_t i = 0; i < dims_.size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(dims_[i]);
    }
    return out + "]";
  }

 private:
  void validate() const {
    for (int64_t d : dims_) {
      DKFAC_CHECK(d >= 0) << "negative dimension in shape " << to_string();
    }
  }

  std::vector<int64_t> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.to_string();
}

}  // namespace dkfac
