#include "tensor/random.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace dkfac {

namespace {

/// SplitMix64 finalizer — full-avalanche mix of a 64-bit word.
uint64_t mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed, uint64_t stream)
    : state_(mix(seed ^ mix(stream * 0x9e3779b97f4a7c15ULL + 1))) {}

uint64_t Rng::next_u64() {
  state_ += 0x9e3779b97f4a7c15ULL;
  return mix(state_);
}

float Rng::uniform() {
  // 24 high bits -> float in [0, 1) with full float mantissa coverage.
  return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
}

float Rng::uniform(float lo, float hi) { return lo + (hi - lo) * uniform(); }

uint64_t Rng::uniform_int(uint64_t n) {
  DKFAC_CHECK(n > 0) << "uniform_int needs a positive bound";
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

float Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero so the log is finite.
  float u1 = uniform();
  while (u1 <= 1e-12f) u1 = uniform();
  const float u2 = uniform();
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float angle = 2.0f * std::numbers::pi_v<float> * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

float Rng::normal(float mean, float stddev) { return mean + stddev * normal(); }

void Rng::fill_normal(std::span<float> out, float mean, float stddev) {
  for (float& v : out) v = normal(mean, stddev);
}

void Rng::fill_uniform(std::span<float> out, float lo, float hi) {
  for (float& v : out) v = uniform(lo, hi);
}

void Rng::shuffle(std::span<int64_t> values) {
  for (size_t i = values.size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(uniform_int(i));
    std::swap(values[i - 1], values[j]);
  }
}

}  // namespace dkfac
