// Deterministic counter-based random number generation.
//
// Every stochastic component in dkfac (init, data synthesis, shuffling)
// takes an explicit Rng so that distributed runs are bit-reproducible:
// the same (seed, stream) pair yields the same sequence on every rank.
#pragma once

#include <cstdint>
#include <span>

namespace dkfac {

/// SplitMix64-based generator. Cheap to construct, no global state.
/// Distinct `stream` values give statistically independent sequences
/// from one seed (used to give each rank / epoch its own stream).
class Rng {
 public:
  explicit Rng(uint64_t seed, uint64_t stream = 0);

  /// Next raw 64-bit value.
  uint64_t next_u64();

  /// Uniform in [0, 1).
  float uniform();

  /// Uniform in [lo, hi).
  float uniform(float lo, float hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t uniform_int(uint64_t n);

  /// Standard normal via Box–Muller (caches the second variate).
  float normal();

  /// Normal with the given mean and standard deviation.
  float normal(float mean, float stddev);

  /// Fill `out` with standard normal samples.
  void fill_normal(std::span<float> out, float mean = 0.0f, float stddev = 1.0f);

  /// Fill `out` with uniform samples in [lo, hi).
  void fill_uniform(std::span<float> out, float lo = 0.0f, float hi = 1.0f);

  /// Fisher–Yates shuffle of an index permutation.
  void shuffle(std::span<int64_t> values);

 private:
  uint64_t state_;
  bool has_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace dkfac
