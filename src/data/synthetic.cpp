#include "data/synthetic.hpp"

#include <cmath>

#include "common/error.hpp"
#include "tensor/random.hpp"

namespace dkfac::data {

void SyntheticSpec::validate() const {
  DKFAC_CHECK(num_classes >= 2);
  DKFAC_CHECK(channels >= 1 && height >= 1 && width >= 1);
  DKFAC_CHECK(train_size >= num_classes && val_size >= num_classes);
  DKFAC_CHECK(noise >= 0.0f);
  DKFAC_CHECK(grid >= 1 && grid <= height && grid <= width);
}

SyntheticSpec cifar10_like() {
  SyntheticSpec spec;
  spec.num_classes = 10;
  spec.channels = 3;
  spec.height = spec.width = 32;
  spec.train_size = 5120;
  spec.val_size = 1024;
  spec.seed = 0xC1FA;
  return spec;
}

SyntheticSpec imagenet_like() {
  SyntheticSpec spec;
  spec.num_classes = 100;
  spec.channels = 3;
  spec.height = spec.width = 32;
  spec.train_size = 12800;
  spec.val_size = 2560;
  spec.noise = 1.0f;  // harder: more classes, more overlap
  spec.seed = 0x1000;
  return spec;
}

namespace {

/// Bilinear upsample of a [C, g, g] grid to [C, H, W], written into
/// `dst` (contiguous C·H·W floats).
void upsample_grid(const std::vector<float>& grid, int64_t c, int64_t g,
                   int64_t h, int64_t w, float* dst) {
  for (int64_t ch = 0; ch < c; ++ch) {
    const float* src = grid.data() + ch * g * g;
    for (int64_t y = 0; y < h; ++y) {
      // Map pixel centre into grid coordinates.
      const float gy = (static_cast<float>(y) + 0.5f) / static_cast<float>(h) *
                           static_cast<float>(g) - 0.5f;
      const int64_t y0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(gy)));
      const int64_t y1 = std::min(g - 1, y0 + 1);
      const float fy = std::min(1.0f, std::max(0.0f, gy - static_cast<float>(y0)));
      for (int64_t x = 0; x < w; ++x) {
        const float gx = (static_cast<float>(x) + 0.5f) / static_cast<float>(w) *
                             static_cast<float>(g) - 0.5f;
        const int64_t x0 = std::max<int64_t>(0, static_cast<int64_t>(std::floor(gx)));
        const int64_t x1 = std::min(g - 1, x0 + 1);
        const float fx = std::min(1.0f, std::max(0.0f, gx - static_cast<float>(x0)));
        const float top = src[y0 * g + x0] * (1.0f - fx) + src[y0 * g + x1] * fx;
        const float bot = src[y1 * g + x0] * (1.0f - fx) + src[y1 * g + x1] * fx;
        dst[(ch * h + y) * w + x] = top * (1.0f - fy) + bot * fy;
      }
    }
  }
}

}  // namespace

SyntheticImageDataset::SyntheticImageDataset(SyntheticSpec spec, Split split)
    : spec_(spec),
      split_(split),
      size_(split == Split::kTrain ? spec.train_size : spec.val_size),
      prototypes_(Shape{spec.num_classes, spec.channels, spec.height, spec.width}) {
  spec_.validate();
  const int64_t c = spec_.channels, h = spec_.height, w = spec_.width,
                g = spec_.grid;
  std::vector<float> grid(static_cast<size_t>(c * g * g));
  for (int64_t cls = 0; cls < spec_.num_classes; ++cls) {
    // One RNG stream per class — prototypes are split-independent, so the
    // validation set measures true generalisation over the noise.
    Rng rng(spec_.seed, 0x9000 + static_cast<uint64_t>(cls));
    rng.fill_normal(grid);
    upsample_grid(grid, c, g, h, w,
                  prototypes_.data() + cls * c * h * w);
  }
}

int64_t SyntheticImageDataset::generate(int64_t index, Tensor& out,
                                        int64_t slot) const {
  DKFAC_CHECK(index >= 0 && index < size_)
      << "sample index " << index << " out of range [0, " << size_ << ")";
  const int64_t c = spec_.channels, h = spec_.height, w = spec_.width;
  DKFAC_CHECK(out.ndim() == 4 && out.dim(1) == c && out.dim(2) == h &&
              out.dim(3) == w && slot >= 0 && slot < out.dim(0))
      << "bad output batch shape " << out.shape();

  // Balanced labels; noise stream disambiguated by split so train and val
  // draws never overlap.
  const int64_t label = index % spec_.num_classes;
  const uint64_t split_tag = split_ == Split::kTrain ? 0x1111 : 0x2222;
  Rng rng(spec_.seed, split_tag * 0x10000 + static_cast<uint64_t>(index));

  const float* proto = prototypes_.data() + label * c * h * w;
  float* dst = out.data() + slot * c * h * w;
  for (int64_t i = 0; i < c * h * w; ++i) {
    dst[i] = proto[i] + spec_.noise * rng.normal();
  }
  return label;
}

Batch SyntheticImageDataset::get(const std::vector<int64_t>& indices) const {
  const int64_t n = static_cast<int64_t>(indices.size());
  Batch batch;
  batch.images = Tensor(Shape{n, spec_.channels, spec_.height, spec_.width});
  batch.labels.resize(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    batch.labels[static_cast<size_t>(i)] =
        generate(indices[static_cast<size_t>(i)], batch.images, i);
  }
  return batch;
}

}  // namespace dkfac::data
