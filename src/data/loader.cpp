#include "data/loader.hpp"

#include <numeric>

#include "common/error.hpp"
#include "obs/trace.hpp"
#include "tensor/random.hpp"

namespace dkfac::data {

ShardedLoader::ShardedLoader(const SyntheticImageDataset& dataset,
                             int64_t local_batch, int rank, int world_size,
                             uint64_t seed)
    : dataset_(dataset),
      local_batch_(local_batch),
      rank_(rank),
      world_size_(world_size),
      seed_(seed) {
  DKFAC_CHECK(local_batch >= 1);
  DKFAC_CHECK(world_size >= 1 && rank >= 0 && rank < world_size);
  batches_per_epoch_ = dataset.size() / (local_batch * world_size);
  DKFAC_CHECK(batches_per_epoch_ >= 1)
      << "dataset of " << dataset.size() << " samples too small for global batch "
      << local_batch * world_size;
}

Batch ShardedLoader::batch(int64_t epoch, int64_t batch_index) const {
  DKFAC_TRACE_SCOPE_NAMED(span, "data.load");
  if (span.active()) {
    span.set_arg("samples", static_cast<uint64_t>(local_batch_));
  }
  DKFAC_CHECK(batch_index >= 0 && batch_index < batches_per_epoch_)
      << "batch index " << batch_index << " out of range";

  // Epoch permutation shared by all ranks (same seed ⊕ epoch stream).
  std::vector<int64_t> perm(static_cast<size_t>(dataset_.size()));
  std::iota(perm.begin(), perm.end(), int64_t{0});
  Rng rng(seed_, static_cast<uint64_t>(epoch) + 1);
  rng.shuffle(perm);

  // Global batch b occupies perm[b·G, (b+1)·G); this rank takes its
  // contiguous local_batch slice.
  const int64_t global = global_batch();
  const int64_t start = batch_index * global + rank_ * local_batch_;
  std::vector<int64_t> indices(perm.begin() + start,
                               perm.begin() + start + local_batch_);
  return dataset_.get(indices);
}

std::vector<Batch> ShardedLoader::sequential_batches(
    const SyntheticImageDataset& dataset, int64_t batch_size) {
  DKFAC_CHECK(batch_size >= 1);
  std::vector<Batch> out;
  for (int64_t start = 0; start < dataset.size(); start += batch_size) {
    const int64_t end = std::min(start + batch_size, dataset.size());
    std::vector<int64_t> indices(static_cast<size_t>(end - start));
    std::iota(indices.begin(), indices.end(), start);
    out.push_back(dataset.get(indices));
  }
  return out;
}

}  // namespace dkfac::data
