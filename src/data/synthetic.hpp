// Synthetic class-conditional image datasets.
//
// Stand-in for CIFAR-10 / ImageNet-1k (see DESIGN.md substitution table):
// each class has a fixed low-frequency prototype image (coarse random grid,
// bilinearly upsampled, so neighbouring pixels are strongly correlated —
// deliberately producing the ill-conditioned input covariances where
// second-order methods earn their keep); samples are prototype + Gaussian
// noise. Samples are generated deterministically on the fly from
// (seed, split, index), so datasets of any size cost no memory and every
// rank sees bit-identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace dkfac::data {

struct Batch {
  Tensor images;  // [N, C, H, W]
  std::vector<int64_t> labels;

  int64_t size() const { return static_cast<int64_t>(labels.size()); }
};

struct SyntheticSpec {
  int64_t num_classes = 10;
  int64_t channels = 3;
  int64_t height = 32;
  int64_t width = 32;
  int64_t train_size = 5120;
  int64_t val_size = 1024;
  /// Within-class noise stddev relative to unit-amplitude prototypes.
  float noise = 0.8f;
  /// Prototype coarse-grid resolution (lower = smoother = more correlated).
  int64_t grid = 4;
  uint64_t seed = 1234;

  void validate() const;
};

/// CIFAR-10-like: 3×32×32, 10 classes.
SyntheticSpec cifar10_like();

/// ImageNet-like stand-in at laptop scale: 3×32×32, 100 classes, larger
/// train split. The paper's ImageNet-1k experiments run on this dataset
/// (documented substitution — convergence *shape*, not absolute accuracy).
SyntheticSpec imagenet_like();

class SyntheticImageDataset {
 public:
  enum class Split { kTrain, kVal };

  SyntheticImageDataset(SyntheticSpec spec, Split split);

  int64_t size() const { return size_; }
  const SyntheticSpec& spec() const { return spec_; }

  /// Deterministically generates sample `index` (image written into `out`
  /// at batch position `slot`). Returns the label.
  int64_t generate(int64_t index, Tensor& out, int64_t slot) const;

  /// Materialises a batch for the given sample indices.
  Batch get(const std::vector<int64_t>& indices) const;

 private:
  SyntheticSpec spec_;
  Split split_;
  int64_t size_;
  Tensor prototypes_;  // [num_classes, C, H, W]
};

}  // namespace dkfac::data
