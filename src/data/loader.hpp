// Sharded data loading: the data-parallel contract (paper §II-A) — every
// rank sees a disjoint shard of a globally-shuffled epoch permutation, so
// the global batch is local_batch × world_size.
#pragma once

#include <cstdint>
#include <vector>

#include "data/synthetic.hpp"

namespace dkfac::data {

class ShardedLoader {
 public:
  /// `seed` must match across ranks so all ranks draw the same epoch
  /// permutation (and then take rank-strided slices of it).
  ShardedLoader(const SyntheticImageDataset& dataset, int64_t local_batch,
                int rank, int world_size, uint64_t seed = 7);

  /// Number of batches each rank sees per epoch (drop-last semantics on
  /// the global batch).
  int64_t batches_per_epoch() const { return batches_per_epoch_; }
  int64_t local_batch() const { return local_batch_; }
  int64_t global_batch() const { return local_batch_ * world_size_; }

  /// Pure function of (epoch, batch index) — stateless, deterministic, and
  /// identical shard layout on every rank.
  Batch batch(int64_t epoch, int64_t batch_index) const;

  /// The full validation-style sequential batch (no shuffle, no shard).
  static std::vector<Batch> sequential_batches(const SyntheticImageDataset& dataset,
                                               int64_t batch_size);

 private:
  const SyntheticImageDataset& dataset_;
  int64_t local_batch_;
  int rank_;
  int world_size_;
  uint64_t seed_;
  int64_t batches_per_epoch_;
};

}  // namespace dkfac::data
