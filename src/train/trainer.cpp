#include "train/trainer.hpp"

#include <omp.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <optional>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "comm/arena.hpp"
#include "comm/async_executor.hpp"
#include "comm/cost_model.hpp"
#include "comm/net/faultnet.hpp"
#include "comm/thread_comm.hpp"
#include "core/preconditioner.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "optim/adam.hpp"
#include "optim/lars.hpp"
#include "optim/sgd.hpp"

namespace dkfac::train {

namespace {

/// Scripted-fault phase probe — one relaxed load when no plan is armed.
inline void faultnet_phase(comm::net::faultnet::Phase phase) {
  if (comm::net::faultnet::active()) comm::net::faultnet::at_phase(phase);
}

/// Type-erased inner optimizer so the loop is optimizer-agnostic.
class AnyOptimizer {
 public:
  virtual ~AnyOptimizer() = default;
  virtual void step() = 0;
  virtual void set_lr(float lr) = 0;
};

std::unique_ptr<AnyOptimizer> make_optimizer(const TrainConfig& config,
                                             std::vector<nn::Parameter*> params,
                                             float initial_lr) {
  struct SgdBox final : AnyOptimizer {
    optim::Sgd inner;
    explicit SgdBox(optim::Sgd o) : inner(std::move(o)) {}
    void step() override { inner.step(); }
    void set_lr(float lr) override { inner.set_lr(lr); }
  };
  struct AdamBox final : AnyOptimizer {
    optim::Adam inner;
    explicit AdamBox(optim::Adam o) : inner(std::move(o)) {}
    void step() override { inner.step(); }
    void set_lr(float lr) override { inner.set_lr(lr); }
  };
  struct LarsBox final : AnyOptimizer {
    optim::Lars inner;
    explicit LarsBox(optim::Lars o) : inner(std::move(o)) {}
    void step() override { inner.step(); }
    void set_lr(float lr) override { inner.set_lr(lr); }
  };
  switch (config.optimizer) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdBox>(
          optim::Sgd(std::move(params), {.lr = initial_lr,
                                         .momentum = config.momentum,
                                         .weight_decay = config.weight_decay}));
    case OptimizerKind::kAdam:
      return std::make_unique<AdamBox>(
          optim::Adam(std::move(params),
                      {.lr = initial_lr, .weight_decay = config.weight_decay}));
    case OptimizerKind::kLars:
      return std::make_unique<LarsBox>(
          optim::Lars(std::move(params), {.lr = initial_lr,
                                          .momentum = config.momentum,
                                          .weight_decay = config.weight_decay}));
  }
  DKFAC_CHECK(false) << "unknown optimizer kind";
  return nullptr;
}

}  // namespace

float evaluate(nn::Layer& model, const data::SyntheticImageDataset& val,
               comm::Communicator& comm, int64_t eval_batch) {
  DKFAC_TRACE_SCOPE("train.eval");
  model.set_training(false);
  // Rank-strided shard of the validation set.
  int64_t correct = 0;
  int64_t seen = 0;
  std::vector<int64_t> indices;
  for (int64_t start = comm.rank() * eval_batch; start < val.size();
       start += static_cast<int64_t>(comm.size()) * eval_batch) {
    const int64_t end = std::min(start + eval_batch, val.size());
    indices.resize(static_cast<size_t>(end - start));
    for (int64_t i = start; i < end; ++i) {
      indices[static_cast<size_t>(i - start)] = i;
    }
    data::Batch batch = val.get(indices);
    Tensor logits = model.forward(batch.images);
    correct += nn::correct_predictions(logits, batch.labels);
    seen += batch.size();
  }
  // Integer counts ride the float collective exactly (FP32 is lossless for
  // counts below 2^24 — far beyond any validation split here).
  std::vector<float> counts{static_cast<float>(correct), static_cast<float>(seen)};
  comm.allreduce(counts, comm::ReduceOp::kSum);
  model.set_training(true);
  DKFAC_CHECK(counts[1] > 0.0f) << "validation split empty";
  return counts[0] / counts[1];
}

float decayed_damping(const TrainConfig& config, int epoch) {
  float d = config.kfac.damping;
  for (float de : config.damping_decay_epochs) {
    if (static_cast<float>(epoch) >= de) d *= config.damping_decay_factor;
  }
  return d;
}

UpdateFreqs decayed_update_freqs(const TrainConfig& config, int epoch) {
  float interval = static_cast<float>(config.kfac.inv_update_freq);
  for (float fe : config.freq_decay_epochs) {
    if (static_cast<float>(epoch) >= fe) interval *= config.freq_decay_factor;
  }
  const int inv = std::max(1, static_cast<int>(interval + 0.5f));
  int fac = std::max(1, inv / 10);
  if (inv % fac != 0) fac = 1;  // keep the divisibility contract
  return {fac, inv};
}

TrainResult train_with_comm(const ModelFactory& factory,
                            const data::SyntheticSpec& data_spec,
                            const TrainConfig& config,
                            comm::Communicator& comm) {
  const data::SyntheticImageDataset train_set(
      data_spec, data::SyntheticImageDataset::Split::kTrain);
  const data::SyntheticImageDataset val_set(
      data_spec, data::SyntheticImageDataset::Split::kVal);
  const data::ShardedLoader loader(train_set, config.local_batch, comm.rank(),
                                   comm.size(), config.data_seed);

  // Identical seed → identical replicas; the broadcast in Listing 1 is a
  // no-op here but we keep it for semantic fidelity.
  Rng model_rng(config.model_seed);
  nn::LayerPtr model = factory(model_rng);
  std::vector<nn::Parameter*> params = model->parameters();
  for (nn::Parameter* p : params) comm.broadcast(p->value, /*root=*/0);
  // Rejoin hook: a re-formed elastic group restores the last durable
  // checkpoint over the fresh replicas (every rank loads the same file).
  if (config.on_model_init) config.on_model_init(*model);
  comm.reset_stats();

  const optim::LrSchedule schedule(config.lr);
  std::unique_ptr<AnyOptimizer> optimizer =
      make_optimizer(config, params, schedule.lr_at(0.0f));

  // Overlapped communication pipeline (Horovod §II-D): a background worker
  // fuses and reduces whatever the readiness hooks submit while this
  // thread keeps computing. The only protocol rule: wait() before issuing
  // a collective directly on `comm` (the preconditioner and the epoch-end
  // reductions below follow it). Both thresholds come from the backend's
  // own fabric model: shared-memory collectives launch eagerly after tens
  // of KB, the TCP backend holds batches until they are bandwidth-
  // dominated at its much higher per-frame latency.
  const comm::CostModel& cost = comm.cost_model();
  std::optional<comm::AsyncExecutor> executor;
  if (config.overlap_comm) {
    executor.emplace(comm, cost.recommended_fusion_bytes(comm.size()),
                     cost.recommended_eager_bytes(comm.size()));
  }
  // Synchronous path: the fused gradient allreduce goes through the same
  // capacity-chunked FusionBuffer the factor exchange uses, instead of
  // materialising one monolithic all-parameter buffer per iteration —
  // same bits (chunking never changes an elementwise reduction), bounded
  // staging memory.
  std::optional<comm::FusionBuffer> grad_fusion;
  if (!executor && comm.size() > 1) {
    grad_fusion.emplace(comm, cost.recommended_fusion_bytes(comm.size()));
  }

  std::optional<kfac::KfacPreconditioner> kfac;
  float damping = config.kfac.damping;
  if (config.use_kfac) {
    kfac::KfacOptions opts = config.kfac;
    opts.lr = schedule.lr_at(0.0f);
    opts.overlap_comm = opts.overlap_comm || config.overlap_comm;
    kfac.emplace(*model, comm, opts);
    if (executor) kfac->set_async_executor(&*executor);
  }

  // Per-layer readiness hook: the moment a layer finishes backprop, its
  // parameter gradients enter the pipeline — gradient communication
  // overlaps the backprop of the layers that come before it. Every rank
  // walks the same model in the same order, so submission sequences (and
  // therefore collective sequences) match across ranks.
  std::shared_ptr<const nn::BackwardHook> ready_hook;
  if (executor && comm.size() > 1) {
    ready_hook = std::make_shared<const nn::BackwardHook>(
        [&executor](nn::Layer& layer) {
          for (nn::Parameter* p : layer.local_parameters()) {
            executor->submit(p->grad.span(), comm::ReduceOp::kAverage);
          }
        });
    model->set_backward_hook(ready_hook);
  }

  TrainResult result;
  const auto run_start = Clock::now();
  const int64_t batches = loader.batches_per_epoch();

  // Per-step metrics stream (--metrics). Observability-only: the sample
  // timings below are taken only when the logger exists, the CommStats /
  // ArenaStats snapshot is copied at the gradient-sync point — the one
  // spot where the async worker is provably idle, so reading the shared
  // counters races nothing — and no collective is added or moved.
  // Rank 0 only: thread ranks share one config (and one filesystem), so a
  // single writer keeps the JSONL coherent; rank 0's view is the same one
  // train_distributed already reports.
  std::optional<obs::StepMetricsLogger> metrics_logger;
  if (!config.metrics_path.empty() && comm.rank() == 0) {
    metrics_logger.emplace(config.metrics_path);
  }
  uint64_t global_step = 0;

  DKFAC_CHECK(config.start_epoch >= 0) << "start_epoch must be non-negative";
  for (int epoch = config.start_epoch; epoch < config.epochs; ++epoch) {
    const auto epoch_start = Clock::now();
    DKFAC_TRACE_SCOPE("train.epoch");

    // Damping and update-frequency decay at epoch boundaries (paper §V-C).
    if (kfac) {
      const float d = decayed_damping(config, epoch);
      if (d != damping) {
        damping = d;
        kfac->set_damping(damping);
      }
      if (!config.freq_decay_epochs.empty()) {
        const UpdateFreqs freqs = decayed_update_freqs(config, epoch);
        kfac->set_update_freqs(freqs.factor_update_freq, freqs.inv_update_freq);
      }
    }

    double loss_sum = 0.0;
    double acc_sum = 0.0;
    for (int64_t b = 0; b < batches; ++b) {
      DKFAC_TRACE_SCOPE_NAMED(step_span, "train.step");
      if (step_span.active()) {
        step_span.set_arg("epoch", static_cast<uint64_t>(epoch));
        step_span.set_arg("batch", static_cast<uint64_t>(b));
      }
      if (config.step_probe) config.step_probe(epoch, b);
      // Cooperative regrow: the supervisor signalled that a joiner is
      // parked at the rendezvous. Leave BEFORE any collective of this step
      // — every rank polls the same signal, so the group departs together.
      if (config.reform_poll && config.reform_poll()) {
        throw comm::RegrowRequest(
            "elastic: regrow requested — re-forming at the next generation");
      }
      // Scripted faults: publish the (epoch, step) context for epoch=/step=
      // rule matching and fire phase=step rules.
      if (comm::net::faultnet::active()) {
        comm::net::faultnet::set_step(epoch, b);
      }
      const auto step_start = Clock::now();
      const float frac_epoch =
          static_cast<float>(epoch) +
          static_cast<float>(b) / static_cast<float>(batches);
      const float lr = schedule.lr_at(frac_epoch);
      optimizer->set_lr(lr);
      if (kfac) kfac->set_lr(lr);

      data::Batch batch = loader.batch(epoch, b);
      const auto t_data = Clock::now();
      model->zero_grad();
      Tensor logits;
      {
        DKFAC_TRACE_SCOPE("train.forward");
        faultnet_phase(comm::net::faultnet::Phase::kForward);
        logits = model->forward(batch.images);
      }
      const auto t_forward = Clock::now();
      nn::LossResult loss =
          nn::softmax_cross_entropy(logits, batch.labels, config.label_smoothing);
      // With overlap on, the readiness hooks stream per-layer gradient
      // allreduces into the executor DURING this call.
      {
        DKFAC_TRACE_SCOPE("train.backward");
        faultnet_phase(comm::net::faultnet::Phase::kBackward);
        model->backward(loss.grad);
      }
      const auto t_backward = Clock::now();

      {
        DKFAC_TRACE_SCOPE("train.grad_comm");
        faultnet_phase(comm::net::faultnet::Phase::kGradComm);
        if (executor) {
          executor->wait();  // optimizer.synchronize(): grads now averaged
        } else if (grad_fusion) {
          // Horovod's DistributedOptimizer.synchronize(): every parameter
          // gradient rides one fused, capacity-chunked allreduce.
          for (nn::Parameter* p : params) grad_fusion->add(p->grad);
          grad_fusion->execute(comm::ReduceOp::kAverage);
        }
      }
      const auto t_grad = Clock::now();
      // The async worker is provably idle here (wait() above drained it, or
      // there is no worker): the one race-free spot to copy the shared
      // counters. Factor comm submitted by kfac->step() below is in flight
      // past this point and lands in the NEXT step's snapshot.
      comm::CommStats stats_snapshot;
      comm::ArenaStats arena_snapshot;
      if (metrics_logger) {
        stats_snapshot = comm.stats();
        if (executor) stats_snapshot.async = executor->stats();
        if (kfac) arena_snapshot += kfac->arena_stats();
        if (executor) arena_snapshot += executor->arena_stats();
        if (grad_fusion) arena_snapshot += grad_fusion->arena_stats();
      }
      // Warm-up ends after the first full iteration: every comm-path arena
      // has seen its peak payload (gradients, factors, staging chunks), so
      // any later block allocation is a zero-copy regression — counted in
      // steady_state_allocs and asserted zero by the integration tests.
      if (epoch == config.start_epoch && b == 1) {
        if (kfac) kfac->mark_steady_state();
        if (executor) executor->mark_steady_state();
        if (grad_fusion) grad_fusion->mark_steady_state();
      }
      // Straggler slack (elastic training): on factor-update steps, vote
      // on the compute-time spread across ranks. The ranks are already
      // synchronised at this point (the gradient allreduce above), so the
      // 2-float kMax vote adds negligible latency; `max − min > slack`
      // means some rank fell behind, and ALL ranks shed this step's factor
      // update (the paper's update-frequency-decay semantics) instead of
      // stalling the exchange behind it. The decision is collective — one
      // vote, one outcome — so collective sequences stay aligned.
      // (Not at step 0: the first factor update can never be shed — there
      // is no previous decomposition to fall back on.)
      if (kfac && config.straggler_slack_s > 0.0 && comm.size() > 1 &&
          global_step > 0 && kfac->factor_update_due()) {
        DKFAC_TRACE_SCOPE("elastic.straggler_vote");
        double mine =
            std::chrono::duration<double>(t_backward - step_start).count();
        if (config.straggler_lag_hook) {
          mine += config.straggler_lag_hook(comm.rank(),
                                            static_cast<int64_t>(global_step));
        }
        if (executor) executor->wait();  // vote runs directly on `comm`
        float vote[2] = {static_cast<float>(mine),
                         static_cast<float>(-mine)};
        comm.allreduce(std::span<float>(vote, 2), comm::ReduceOp::kMax);
        const double spread =
            static_cast<double>(vote[0]) + static_cast<double>(vote[1]);
        if (spread > config.straggler_slack_s) {
          kfac->skip_factor_update_once();
          ++result.skipped_factor_steps;
        }
      }
      {
        DKFAC_TRACE_SCOPE("train.apply");
        faultnet_phase(comm::net::faultnet::Phase::kApply);
        if (kfac) kfac->step();                 // preconditioner.step()
        optimizer->step();                      // optimizer.step()
      }
      const auto t_apply = Clock::now();

      loss_sum += loss.loss;
      acc_sum += nn::accuracy(logits, batch.labels);
      ++result.iterations;
      ++global_step;

      if (metrics_logger) {
        const auto secs = [](Clock::time_point a, Clock::time_point z) {
          return std::chrono::duration<double>(z - a).count();
        };
        obs::StepSample sample;
        sample.step = global_step;
        sample.epoch = static_cast<uint64_t>(epoch);
        sample.loss = loss.loss;
        sample.accuracy = acc_sum / static_cast<double>(b + 1);
        sample.lr = lr;
        sample.step_seconds = secs(step_start, t_apply);
        sample.data_seconds = secs(step_start, t_data);
        sample.forward_seconds = secs(t_data, t_forward);
        sample.backward_seconds = secs(t_forward, t_backward);
        sample.grad_comm_seconds = secs(t_backward, t_grad);
        sample.apply_seconds = secs(t_grad, t_apply);
        sample.elastic_reformations = config.elastic_reformations;
        sample.elastic_skipped_factor_steps =
            config.skipped_factor_steps_baseline + result.skipped_factor_steps;
        sample.elastic_joins = config.elastic_joins;
        sample.elastic_respawns = config.elastic_respawns;
        metrics_logger->record(sample, stats_snapshot,
                               kfac ? &kfac->last_report() : nullptr,
                               arena_snapshot);
      }
    }

    EpochMetrics metrics;
    metrics.epoch = epoch + 1;
    // Drain the pipeline (the last step's factor exchange may still be in
    // flight) before touching the communicator directly.
    if (executor) executor->wait();
    // Average the per-rank training loss so the curve reflects the global
    // batch (cheap: one 2-float allreduce per epoch).
    std::vector<float> stats{static_cast<float>(loss_sum / batches),
                             static_cast<float>(acc_sum / batches)};
    comm.allreduce(stats, comm::ReduceOp::kAverage);
    metrics.train_loss = stats[0];
    metrics.train_accuracy = stats[1];
    metrics.val_accuracy = evaluate(*model, val_set, comm, config.eval_batch);
    metrics.seconds = std::chrono::duration<double>(Clock::now() - epoch_start).count();
    result.epochs.push_back(metrics);
    result.best_val_accuracy = std::max(result.best_val_accuracy, metrics.val_accuracy);
    // Durable elastic checkpoint: rank 0 persists the epoch's weights so a
    // re-formed group can rejoin at this exact boundary.
    if (comm.rank() == 0 && config.on_epoch_checkpoint) {
      config.on_epoch_checkpoint(epoch, *model);
    }
  }

  result.final_val_accuracy =
      result.epochs.empty() ? 0.0f : result.epochs.back().val_accuracy;
  result.total_seconds = std::chrono::duration<double>(Clock::now() - run_start).count();
  model->set_backward_hook(nullptr);
  result.comm_stats = comm.stats();
  if (executor) result.comm_stats.async = executor->stats();
  // Comm-arena allocator traffic, summed over every arena on the per-step
  // path (factor exchange slot + each fusion staging arena). After the
  // warm-up mark above, steady_state_allocs must stay 0 — the zero-copy
  // transport's contract.
  comm::ArenaStats arenas;
  if (kfac) arenas += kfac->arena_stats();
  if (executor) arenas += executor->arena_stats();
  if (grad_fusion) arenas += grad_fusion->arena_stats();
  result.comm_stats.arena_bytes_reserved = arenas.bytes_reserved;
  result.comm_stats.steady_state_allocs = arenas.steady_state_allocs;
  if (comm.rank() == 0 && config.on_trained_model) {
    config.on_trained_model(*model);
  }
  return result;
}

TrainResult train_distributed(const ModelFactory& factory,
                              const data::SyntheticSpec& data_spec,
                              const TrainConfig& config, int world_size) {
  DKFAC_CHECK(world_size >= 1);
  if (world_size == 1) return train_single(factory, data_spec, config);

  comm::LocalGroup group(world_size);
  std::vector<TrainResult> results(static_cast<size_t>(world_size));
  // Divide the machine's cores between ranks so nested OpenMP GEMMs do not
  // oversubscribe (each rank thread gets its own OpenMP team).
  const int omp_threads = omp_threads_per_rank(world_size);
  group.run([&](int rank, comm::Communicator& comm) {
    omp_set_num_threads(omp_threads);
    results[static_cast<size_t>(rank)] =
        train_with_comm(factory, data_spec, config, comm);
  });

  // All ranks compute identical training metrics (collectives are
  // deterministic). CommStats are per-rank contribution counters —
  // broadcast bytes land on the root, allgather bytes on the sender — so
  // rank 0's view is one rank's share of the traffic, not the group total.
  return results[0];
}

int omp_threads_per_rank(int world_size) {
  DKFAC_CHECK(world_size >= 1);
  return std::max(1, omp_get_num_procs() / world_size);
}

TrainResult train_single(const ModelFactory& factory,
                         const data::SyntheticSpec& data_spec,
                         const TrainConfig& config) {
  comm::SelfComm comm;
  return train_with_comm(factory, data_spec, config, comm);
}

}  // namespace dkfac::train
