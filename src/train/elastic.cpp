#include "train/elastic.hpp"

#include <fcntl.h>
#include <omp.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <span>
#include <sstream>
#include <vector>

#include "comm/net/rendezvous.hpp"
#include "comm/net/socket_comm.hpp"
#include "comm/net/wire.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"

namespace dkfac::train::elastic {

namespace {

constexpr char kElasticMagic[4] = {'D', 'K', 'E', 'L'};
constexpr char kElasticFooterMagic[4] = {'D', 'K', 'E', 'F'};
constexpr uint32_t kElasticVersion = 2;
constexpr size_t kHeaderBytes = 4 + sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kFooterBytes = 4 + sizeof(uint32_t);

/// SIGTERM → SIGKILL grace when the supervisor gives up on a group.
constexpr double kTermGraceSeconds = 2.0;

/// Runaway guard on cooperative regrow re-formations per child: the
/// supervisor only nudges while a joiner is actually parked, so a healthy
/// run sees at most a handful; an endless nudge loop is a supervisor bug
/// this converts from a livelock into a clean failure.
constexpr int kMaxRegrows = 64;

/// SIGUSR1 from the supervisor: "a joiner is waiting — re-form at your
/// next step". Read (and cleared) by TrainConfig::reform_poll.
volatile std::sig_atomic_t g_regrow_requested = 0;

void on_sigusr1(int) { g_regrow_requested = 1; }

/// fsync(tmp) + rename(tmp, path) + best-effort directory fsync — the same
/// durability discipline as nn::save_checkpoint(path).
void commit_atomically(const std::string& tmp, const std::string& path) {
  const int fd = ::open(tmp.c_str(), O_WRONLY);
  DKFAC_CHECK(fd >= 0) << "cannot reopen " << tmp << " for fsync";
  const int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    std::remove(tmp.c_str());
    throw Error("elastic checkpoint fsync failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("elastic checkpoint rename failed: " + tmp + " -> " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

/// Slurps `path`; empty optional when it cannot be opened.
std::optional<std::string> slurp_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) return std::nullopt;
  return buf.str();
}

/// Validates a whole checkpoint image end to end: DKEL header, DKEF footer
/// and the CRC-32 of everything before the footer. Returns the epoch tag,
/// or nullopt for anything torn, truncated or bit-flipped.
std::optional<int> validate_image(const std::string& bytes) {
  if (bytes.size() < kHeaderBytes + kFooterBytes) return std::nullopt;
  if (std::memcmp(bytes.data(), kElasticMagic, sizeof(kElasticMagic)) != 0) {
    return std::nullopt;
  }
  uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 4, sizeof(version));
  if (version != kElasticVersion) return std::nullopt;
  uint64_t epoch = 0;
  std::memcpy(&epoch, bytes.data() + 8, sizeof(epoch));
  if (epoch > (1u << 30)) return std::nullopt;
  const size_t footer_at = bytes.size() - kFooterBytes;
  if (std::memcmp(bytes.data() + footer_at, kElasticFooterMagic,
                  sizeof(kElasticFooterMagic)) != 0) {
    return std::nullopt;
  }
  uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + footer_at + 4, sizeof(stored_crc));
  const uint32_t actual_crc = comm::net::crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), footer_at));
  if (stored_crc != actual_crc) return std::nullopt;
  return static_cast<int>(epoch);
}

/// The machine-readable summary rank 0 of the finishing generation
/// publishes for the supervisor (key=value lines, written atomically so a
/// child dying mid-publish can never leave a half-truth).
void publish_result(const std::string& result_path, const TrainResult& result,
                    int generation, int world, uint64_t total_skips) {
  std::ostringstream body;
  body << std::setprecision(9);
  body << "train_loss="
       << (result.epochs.empty() ? 0.0f : result.epochs.back().train_loss)
       << "\n";
  body << "val_accuracy=" << result.final_val_accuracy << "\n";
  body << "reformations=" << generation << "\n";
  body << "skipped_factor_steps=" << total_skips << "\n";
  body << "world=" << world << "\n";
  const std::string tmp = result_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    DKFAC_CHECK(out.is_open()) << "cannot open " << tmp << " for writing";
    out << body.str();
    out.flush();
    DKFAC_CHECK(out.good()) << "elastic result write failed: " << tmp;
  }
  commit_atomically(tmp, result_path);
}

/// The child's lifetime: (re-)rendezvous, (re-)train, until the job
/// completes or recovery is exhausted. Exit codes: 0 success, 1 training
/// error, 2 re-formations exhausted, 3 rendezvous unreachable.
int elastic_worker(int child_index, bool is_respawn, uint16_t rendezvous_port,
                   const ModelFactory& factory,
                   const data::SyntheticSpec& data_spec,
                   const TrainConfig& base, const ElasticOptions& opts) {
  int attempts = 0;  // peer-failure re-formations (bounded by the options)
  int regrows = 0;   // cooperative regrow re-formations (runaway-guarded)
  uint64_t carried_skips = 0;
  uint64_t joins = 0;
  int prev_world = -1;
  bool lost_a_peer = false;     // last teardown was a PeerFailure
  bool regrow_rebuild = false;  // last teardown was a RegrowRequest
  while (true) {
    std::unique_ptr<comm::net::SocketComm> comm;
    auto build_comm = [&] {
      comm::net::SocketOptions sopts;
      sopts.rendezvous_port = rendezvous_port;
      sopts.elastic = true;
      sopts.requested_rank = child_index;
      sopts.timeout_s = opts.comm_timeout_s;
      // A re-registration must outwait every survivor's in-flight
      // collective timing out before the shrunk group can assemble.
      sopts.rendezvous_timeout_s =
          std::max(opts.rendezvous_timeout_s, 2.0 * opts.comm_timeout_s + 5.0);
      sopts.cost = opts.cost;
      comm = std::make_unique<comm::net::SocketComm>(sopts);
    };
    try {
      if (regrow_rebuild) {
        DKFAC_TRACE_SCOPE("elastic.regrow");
        build_comm();
      } else if (attempts > 0) {
        DKFAC_TRACE_SCOPE("elastic.reformation");
        build_comm();
      } else {
        build_comm();
      }
    } catch (const Error& e) {
      // The supervisor is gone or the group can no longer assemble —
      // there is nothing left to retry against.
      std::fprintf(stderr, "[elastic child %d] rendezvous failed: %s\n",
                   child_index, e.what());
      return 3;
    }
    // This generation starts clean: a nudge consumed by the rendezvous we
    // just completed is satisfied, and the supervisor re-nudges every
    // second while a joiner is still parked, so a cleared flag that was
    // actually still needed self-corrects.
    g_regrow_requested = 0;
    regrow_rebuild = false;

    const int generation = comm->generation();
    const int rank = comm->rank();
    const int world = comm->size();
    // A world larger than the one we expected after the last teardown
    // (previous size, minus the casualty if we left on a peer failure)
    // means joiners were admitted at this generation boundary.
    if (prev_world >= 0) {
      const int expected = prev_world - (lost_a_peer ? 1 : 0);
      if (world > expected) joins += static_cast<uint64_t>(world - expected);
    }
    prev_world = world;
    lost_a_peer = false;

    // Re-divide the cores among however many ranks remain — a shrunk
    // group gets bigger per-rank OpenMP teams.
    omp_set_num_threads(omp_threads_per_rank(world));
    TrainConfig config = base;
    config.elastic_reformations = static_cast<uint64_t>(generation);
    config.skipped_factor_steps_baseline = carried_skips;
    config.elastic_joins = joins;
    config.elastic_respawns = is_respawn ? 1 : 0;
    config.on_epoch_checkpoint = [&opts](int epoch, nn::Layer& model) {
      save_elastic_checkpoint(model, epoch, opts.checkpoint_path);
    };
    config.reform_poll = [] {
      if (g_regrow_requested == 0) return false;
      g_regrow_requested = 0;
      return true;
    };
    // A corrupt newest checkpoint with no intact `.prev` throws a typed
    // Error here, which exits this child with code 1 — never a silent
    // restart from random weights.
    if (const std::optional<ResolvedCheckpoint> resolved =
            resolve_elastic_checkpoint(opts.checkpoint_path)) {
      config.start_epoch = resolved->epoch + 1;
      const std::string checkpoint_file = resolved->file;
      config.on_model_init = [checkpoint_file](nn::Layer& model) {
        DKFAC_TRACE_SCOPE("elastic.rejoin");
        (void)load_elastic_checkpoint(model, checkpoint_file);
      };
    }
    if (opts.kill && generation == 0 && rank == opts.kill->rank) {
      const KillSpec kill = *opts.kill;
      config.step_probe = [kill](int epoch, int64_t step) {
        if (epoch == kill.epoch && step == kill.step) {
          ::kill(::getpid(), SIGKILL);
        }
      };
    }

    try {
      const TrainResult result =
          train_with_comm(factory, data_spec, config, *comm);
      carried_skips += result.skipped_factor_steps;
      if (rank == 0) {
        publish_result(opts.checkpoint_path + ".result", result, generation,
                       comm->size(), carried_skips);
      }
      return 0;
    } catch (const comm::RegrowRequest& e) {
      ++regrows;
      DKFAC_LOG_INFO << "elastic: rank " << rank << " (generation "
                     << generation << ") " << e.what();
      if (regrows > kMaxRegrows) {
        DKFAC_LOG_ERROR << "elastic: rank " << rank
                        << " exceeded " << kMaxRegrows
                        << " regrow re-formations — giving up";
        return 2;
      }
      regrow_rebuild = true;
      comm.reset();
    } catch (const comm::PeerFailure& e) {
      ++attempts;
      DKFAC_LOG_WARN << "elastic: rank " << rank << " (generation "
                     << generation << ") lost a peer: " << e.what()
                     << (attempts <= opts.max_reformations
                             ? " — re-forming"
                             : " — re-formations exhausted");
      if (attempts > opts.max_reformations) return 2;
      lost_a_peer = true;
      // Tear the mesh down NOW: closing our sockets cascades the failure
      // to peers still blocked in a collective, so the whole group reaches
      // the rendezvous within one comm deadline instead of serially.
      comm.reset();
    }
  }
}

[[noreturn]] void elastic_child_main(int child_index, bool is_respawn,
                                     uint16_t rendezvous_port,
                                     const ModelFactory& factory,
                                     const data::SyntheticSpec& data_spec,
                                     const TrainConfig& config,
                                     const ElasticOptions& opts) {
  // Regrow nudges arrive as SIGUSR1. SA_RESTART keeps in-flight syscalls
  // (the poll-driven socket layer) undisturbed; the trainer notices the
  // flag at the next step top.
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_sigusr1;
  sa.sa_flags = SA_RESTART;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGUSR1, &sa, nullptr);

  int code = 1;
  try {
    code = elastic_worker(child_index, is_respawn, rendezvous_port, factory,
                          data_spec, config, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[elastic child %d] error: %s\n", child_index,
                 e.what());
    code = 1;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  _exit(code);
}

}  // namespace

void save_elastic_checkpoint(nn::Layer& model, int epoch,
                             const std::string& path) {
  DKFAC_CHECK(epoch >= 0) << "elastic checkpoint epoch must be non-negative";
  // Serialize in memory so the CRC footer covers the exact bytes written.
  std::ostringstream image;
  image.write(kElasticMagic, sizeof(kElasticMagic));
  image.write(reinterpret_cast<const char*>(&kElasticVersion),
              sizeof(kElasticVersion));
  const uint64_t tagged = static_cast<uint64_t>(epoch);
  image.write(reinterpret_cast<const char*>(&tagged), sizeof(tagged));
  nn::save_checkpoint(model, image);
  std::string bytes = std::move(image).str();
  const uint32_t crc = comm::net::crc32(std::span<const uint8_t>(
      reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size()));
  bytes.append(kElasticFooterMagic, sizeof(kElasticFooterMagic));
  bytes.append(reinterpret_cast<const char*>(&crc), sizeof(crc));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DKFAC_CHECK(out.is_open()) << "cannot open " << tmp << " for writing";
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out.flush();
    DKFAC_CHECK(out.good()) << "elastic checkpoint write failed: " << tmp;
  }
  // Rotate the current file to `.prev` via link(2) so `path` itself is
  // never absent: a crash in this window leaves the old checkpoint intact
  // under both names, and resolve() treats a missing `path` as "no
  // checkpoint at all". With no current file, drop any stale `.prev` from
  // an earlier run instead — it predates this training run's history.
  const std::string prev = path + ".prev";
  (void)::unlink(prev.c_str());
  (void)::link(path.c_str(), prev.c_str());  // no-op (ENOENT) on first save
  commit_atomically(tmp, path);
}

std::optional<ResolvedCheckpoint> resolve_elastic_checkpoint(
    const std::string& path) {
  const std::optional<std::string> newest = slurp_file(path);
  if (!newest.has_value()) return std::nullopt;  // fresh start
  if (const std::optional<int> epoch = validate_image(*newest)) {
    return ResolvedCheckpoint{path, *epoch, /*fell_back=*/false};
  }
  const std::string prev_path = path + ".prev";
  if (const std::optional<std::string> prev = slurp_file(prev_path)) {
    if (const std::optional<int> epoch = validate_image(*prev)) {
      DKFAC_LOG_WARN << "elastic: checkpoint " << path
                     << " failed validation (torn write or corruption) — "
                        "falling back to epoch "
                     << *epoch << " from " << prev_path;
      return ResolvedCheckpoint{prev_path, *epoch, /*fell_back=*/true};
    }
  }
  throw Error("elastic: checkpoint " + path +
              " is corrupt and no intact previous epoch exists at " +
              prev_path);
}

std::optional<int> read_elastic_epoch_tag(const std::string& path) {
  const std::optional<std::string> bytes = slurp_file(path);
  if (!bytes.has_value()) return std::nullopt;
  return validate_image(*bytes);
}

int load_elastic_checkpoint(nn::Layer& model, const std::string& path) {
  const std::optional<std::string> bytes = slurp_file(path);
  DKFAC_CHECK(bytes.has_value()) << "cannot open " << path << " for reading";
  const std::optional<int> epoch = validate_image(*bytes);
  DKFAC_CHECK(epoch.has_value())
      << path << " is not an intact elastic checkpoint (bad header or CRC)";
  std::istringstream in(bytes->substr(
      kHeaderBytes, bytes->size() - kHeaderBytes - kFooterBytes));
  nn::load_checkpoint(model, in);
  return *epoch;
}

ElasticResult run_elastic(const ModelFactory& factory,
                          const data::SyntheticSpec& data_spec,
                          const TrainConfig& config,
                          const ElasticOptions& options) {
  DKFAC_CHECK(!options.checkpoint_path.empty())
      << "elastic training needs a durable checkpoint path";
  DKFAC_CHECK(options.initial_ranks >= 1) << "need at least one rank";
  DKFAC_CHECK(options.min_ranks >= 1 &&
              options.min_ranks <= options.initial_ranks)
      << "min_ranks must be in [1, initial_ranks]";
  DKFAC_CHECK(options.max_ranks == 0 ||
              (options.max_ranks >= options.min_ranks &&
               options.max_ranks <= options.initial_ranks))
      << "max_ranks must be 0 (= initial_ranks) or in "
         "[min_ranks, initial_ranks]";
  DKFAC_CHECK(options.respawns_per_rank >= 0)
      << "respawns_per_rank must be non-negative";
  const int effective_max =
      options.max_ranks == 0 ? options.initial_ranks : options.max_ranks;

  const std::string result_path = options.checkpoint_path + ".result";
  std::remove(result_path.c_str());

  comm::net::RendezvousServer server;

  // One slot per initial child; a respawned replacement reuses its slot
  // (same child_index, so rank hints stay stable across generations).
  struct Slot {
    pid_t pid = -1;
    int respawns_used = 0;
    bool pending = false;  // replacement scheduled, waiting out the backoff
    Clock::time_point respawn_at{};
    std::unique_ptr<comm::net::Backoff> backoff;
  };
  std::vector<Slot> slots(static_cast<size_t>(options.initial_ranks));

  auto fork_child = [&](int index, bool is_respawn) -> pid_t {
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid == 0) {
      server.close();  // only the supervisor accepts rendezvous connections
      elastic_child_main(index, is_respawn, server.port(), factory, data_spec,
                         config, options);
    }
    return pid;
  };

  for (int i = 0; i < options.initial_ranks; ++i) {
    const pid_t pid = fork_child(i, /*is_respawn=*/false);
    if (pid < 0) {
      for (const Slot& slot : slots) {
        if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
      }
      for (const Slot& slot : slots) {
        if (slot.pid > 0) ::waitpid(slot.pid, nullptr, 0);
      }
      throw Error("run_elastic: fork failed");
    }
    slots[static_cast<size_t>(i)].pid = pid;
  }

  // Supervision pump: reap deaths, fork due respawns, keep the rendezvous
  // warm so survivors and joiners can (re-)form, nudge a running group
  // when a joiner is parked, and give up once the group can no longer
  // satisfy min_ranks.
  int first_failure = 0;
  bool job_completed = false;
  int total_respawns = 0;
  int total_joins = 0;
  // Supervisor-side join accounting: the world size the next generation is
  // expected to form at given the casualties so far; a formed world above
  // it means joiners were admitted.
  int expected_world = options.initial_ranks;

  auto alive_count = [&] {
    int n = 0;
    for (const Slot& slot : slots) n += slot.pid > 0 ? 1 : 0;
    return n;
  };
  auto pending_count = [&] {
    int n = 0;
    for (const Slot& slot : slots) n += slot.pending ? 1 : 0;
    return n;
  };
  // Pending respawns due within roughly one serve tick. These count toward
  // the formation target (the group about to form should wait a beat and
  // admit them); ones further out do not — a long backoff must not stall
  // the survivors, who re-form without the replacement and get nudged when
  // it eventually arrives.
  auto pending_soon_count = [&] {
    const auto horizon = Clock::now() + std::chrono::milliseconds(500);
    int n = 0;
    for (const Slot& slot : slots) {
      n += (slot.pending && slot.respawn_at <= horizon) ? 1 : 0;
    }
    return n;
  };

  auto reap = [&] {
    for (size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (slot.pid <= 0) continue;
      int status = 0;
      const pid_t r = ::waitpid(slot.pid, &status, WNOHANG);
      if (r == 0) continue;
      int code = 1;  // waitpid error: the child is unaccountably gone
      if (r > 0) {
        code = 0;
        if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          code = 128 + WTERMSIG(status);
        }
      }
      slot.pid = -1;
      if (code == 0) {
        // One clean exit means the job published (or is about to publish)
        // its result — stop growing the world back.
        job_completed = true;
        continue;
      }
      // A killed rank is an expected casualty as long as a shrunk group
      // finishes the job; remember the first failure anyway — if no
      // generation ever publishes a result, this is the diagnosis.
      if (first_failure == 0) first_failure = code;
      if (expected_world > 0) --expected_world;
      // Schedule a replacement within this slot's budget, after a
      // jittered exponential backoff (a crash-looping child must not spin
      // the supervisor).
      if (!job_completed && slot.respawns_used < options.respawns_per_rank) {
        if (!slot.backoff) {
          slot.backoff = std::make_unique<comm::net::Backoff>(
              options.seed ^ (0x9E3779B97F4A7C15ull * (i + 1)),
              options.respawn_backoff_s,
              std::max(options.respawn_backoff_s * 8.0, 1.0));
        }
        const double delay_s = slot.backoff->next_s();
        slot.pending = true;
        slot.respawn_at =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(delay_s));
        DKFAC_LOG_INFO << "elastic: slot " << i << " died (code " << code
                       << ") — respawning replacement in " << delay_s
                       << "s (" << slot.respawns_used + 1 << "/"
                       << options.respawns_per_rank << ")";
      }
    }
  };

  auto spawn_due = [&] {
    if (job_completed) {
      for (Slot& slot : slots) slot.pending = false;
      return;
    }
    for (size_t i = 0; i < slots.size(); ++i) {
      Slot& slot = slots[i];
      if (!slot.pending || Clock::now() < slot.respawn_at) continue;
      if (alive_count() >= effective_max) continue;  // ceiling reached
      slot.pending = false;
      const pid_t pid = fork_child(static_cast<int>(i), /*is_respawn=*/true);
      if (pid < 0) {
        DKFAC_LOG_ERROR << "elastic: respawn fork failed for slot " << i;
        continue;
      }
      slot.pid = pid;
      ++slot.respawns_used;
      ++total_respawns;
      DKFAC_TRACE_INSTANT("elastic.respawn");
    }
  };

  int last_formed_world = 0;
  auto last_nudge = Clock::now();
  while (true) {
    reap();
    spawn_due();
    if (alive_count() == 0 && pending_count() == 0) break;
    if (alive_count() + pending_count() < options.min_ranks) {
      DKFAC_LOG_WARN << "elastic: only " << alive_count()
                     << " ranks remain (min " << options.min_ranks
                     << ", no respawn budget left) — terminating the job";
      for (const Slot& slot : slots) {
        if (slot.pid > 0) ::kill(slot.pid, SIGTERM);
      }
      const auto term_at = Clock::now();
      while (alive_count() > 0 && seconds_since(term_at) < kTermGraceSeconds) {
        reap();
        if (alive_count() > 0) ::usleep(10000);
      }
      for (const Slot& slot : slots) {
        if (slot.pid > 0) ::kill(slot.pid, SIGKILL);
      }
      while (alive_count() > 0) {
        reap();
        if (alive_count() > 0) ::usleep(10000);
      }
      break;
    }
    try {
      const int formed = server.serve_generation(
          [&] {
            // Count imminent respawns toward the formation target: a
            // replacement due in a fraction of a second must be admitted
            // into the group being formed, not parked behind it — without
            // this, survivors racing the respawn fork would re-form at the
            // shrunk size and the regrown world would be timing-dependent.
            reap();
            spawn_due();
            return std::min(alive_count() + pending_soon_count(),
                            effective_max);
          },
          options.min_ranks,
          /*timeout_s=*/0.25);
      if (formed > expected_world) total_joins += formed - expected_world;
      expected_world = formed;
      last_formed_world = formed;
    } catch (const Error&) {
      // Pump tick: nobody (or not everybody) is re-registering right now.
      // Half-finished registrations stay parked for the next tick, and a
      // group that shrank below min_ranks is handled at the top of the
      // loop. A COMPLETE parked registration while the running group sits
      // below target is a joiner waiting on a generation boundary — nudge
      // the group (SIGUSR1 → RegrowRequest at each rank's next step) so it
      // re-forms and admits the joiner. Re-nudge every second until it
      // lands; ranks already waiting at the rendezvous just ignore it.
      if (!job_completed && server.parked_complete() > 0 &&
          last_formed_world > 0 &&
          last_formed_world < std::min(alive_count(), effective_max) &&
          seconds_since(last_nudge) > 1.0) {
        DKFAC_LOG_INFO << "elastic: joiner parked while world is "
                       << last_formed_world << " — nudging the group to "
                          "re-form";
        for (const Slot& slot : slots) {
          if (slot.pid > 0) ::kill(slot.pid, SIGUSR1);
        }
        last_nudge = Clock::now();
      }
    }
  }

  ElasticResult res;
  res.respawns = total_respawns;
  res.joins = total_joins;
  std::ifstream in(result_path);
  if (in.is_open()) {
    std::string line;
    while (std::getline(in, line)) {
      const size_t eq = line.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = line.substr(0, eq);
      const std::string value = line.substr(eq + 1);
      try {
        if (key == "train_loss") {
          res.final_train_loss = std::stof(value);
        } else if (key == "val_accuracy") {
          res.final_val_accuracy = std::stof(value);
        } else if (key == "reformations") {
          res.reformations = std::stoi(value);
        } else if (key == "skipped_factor_steps") {
          res.skipped_factor_steps = std::stoull(value);
        } else if (key == "world") {
          res.final_world = std::stoi(value);
        }
      } catch (const std::exception&) {
        // Unparseable line in a hand-edited file: skip it.
      }
    }
    res.completed = true;
  } else {
    res.exit_code = first_failure != 0 ? first_failure : 1;
  }
  return res;
}

}  // namespace dkfac::train::elastic
