#include "train/elastic.hpp"

#include <fcntl.h>
#include <omp.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <sstream>
#include <vector>

#include "comm/net/rendezvous.hpp"
#include "comm/net/socket_comm.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "nn/serialize.hpp"
#include "obs/trace.hpp"

namespace dkfac::train::elastic {

namespace {

constexpr char kElasticMagic[4] = {'D', 'K', 'E', 'L'};
constexpr uint32_t kElasticVersion = 1;

/// SIGTERM → SIGKILL grace when the supervisor gives up on a group.
constexpr double kTermGraceSeconds = 2.0;

/// fsync(tmp) + rename(tmp, path) + best-effort directory fsync — the same
/// durability discipline as nn::save_checkpoint(path).
void commit_atomically(const std::string& tmp, const std::string& path) {
  const int fd = ::open(tmp.c_str(), O_WRONLY);
  DKFAC_CHECK(fd >= 0) << "cannot reopen " << tmp << " for fsync";
  const int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    std::remove(tmp.c_str());
    throw Error("elastic checkpoint fsync failed: " + tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("elastic checkpoint rename failed: " + tmp + " -> " + path);
  }
  const size_t slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

/// Reads the DKEL header off `in`; returns the epoch tag or nullopt.
std::optional<int> read_header(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kElasticMagic, sizeof(magic)) != 0) {
    return std::nullopt;
  }
  uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in.good() || version != kElasticVersion) return std::nullopt;
  uint64_t epoch = 0;
  in.read(reinterpret_cast<char*>(&epoch), sizeof(epoch));
  if (!in.good() || epoch > (1u << 30)) return std::nullopt;
  return static_cast<int>(epoch);
}

/// The machine-readable summary rank 0 of the finishing generation
/// publishes for the supervisor (key=value lines, written atomically so a
/// child dying mid-publish can never leave a half-truth).
void publish_result(const std::string& result_path, const TrainResult& result,
                    int generation, int world, uint64_t total_skips) {
  std::ostringstream body;
  body << std::setprecision(9);
  body << "train_loss="
       << (result.epochs.empty() ? 0.0f : result.epochs.back().train_loss)
       << "\n";
  body << "val_accuracy=" << result.final_val_accuracy << "\n";
  body << "reformations=" << generation << "\n";
  body << "skipped_factor_steps=" << total_skips << "\n";
  body << "world=" << world << "\n";
  const std::string tmp = result_path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    DKFAC_CHECK(out.is_open()) << "cannot open " << tmp << " for writing";
    out << body.str();
    out.flush();
    DKFAC_CHECK(out.good()) << "elastic result write failed: " << tmp;
  }
  commit_atomically(tmp, result_path);
}

/// The child's lifetime: (re-)rendezvous, (re-)train, until the job
/// completes or recovery is exhausted. Exit codes: 0 success, 1 training
/// error, 2 re-formations exhausted, 3 rendezvous unreachable.
int elastic_worker(int child_index, uint16_t rendezvous_port,
                   const ModelFactory& factory,
                   const data::SyntheticSpec& data_spec,
                   const TrainConfig& base, const ElasticOptions& opts) {
  int attempts = 0;
  uint64_t carried_skips = 0;
  while (true) {
    std::unique_ptr<comm::net::SocketComm> comm;
    auto build_comm = [&] {
      comm::net::SocketOptions sopts;
      sopts.rendezvous_port = rendezvous_port;
      sopts.elastic = true;
      sopts.requested_rank = child_index;
      sopts.timeout_s = opts.comm_timeout_s;
      // A re-registration must outwait every survivor's in-flight
      // collective timing out before the shrunk group can assemble.
      sopts.rendezvous_timeout_s =
          std::max(opts.rendezvous_timeout_s, 2.0 * opts.comm_timeout_s + 5.0);
      sopts.cost = opts.cost;
      comm = std::make_unique<comm::net::SocketComm>(sopts);
    };
    try {
      if (attempts > 0) {
        DKFAC_TRACE_SCOPE("elastic.reformation");
        build_comm();
      } else {
        build_comm();
      }
    } catch (const Error& e) {
      // The supervisor is gone or the group can no longer assemble —
      // there is nothing left to retry against.
      std::fprintf(stderr, "[elastic child %d] rendezvous failed: %s\n",
                   child_index, e.what());
      return 3;
    }

    const int generation = comm->generation();
    const int rank = comm->rank();
    // Re-divide the cores among however many ranks remain — a shrunk
    // group gets bigger per-rank OpenMP teams.
    omp_set_num_threads(omp_threads_per_rank(comm->size()));
    TrainConfig config = base;
    config.elastic_reformations = static_cast<uint64_t>(generation);
    config.skipped_factor_steps_baseline = carried_skips;
    config.on_epoch_checkpoint = [&opts](int epoch, nn::Layer& model) {
      save_elastic_checkpoint(model, epoch, opts.checkpoint_path);
    };
    if (const std::optional<int> tag =
            read_elastic_epoch_tag(opts.checkpoint_path)) {
      config.start_epoch = *tag + 1;
      config.on_model_init = [&opts](nn::Layer& model) {
        DKFAC_TRACE_SCOPE("elastic.rejoin");
        (void)load_elastic_checkpoint(model, opts.checkpoint_path);
      };
    }
    if (opts.kill && generation == 0 && rank == opts.kill->rank) {
      const KillSpec kill = *opts.kill;
      config.step_probe = [kill](int epoch, int64_t step) {
        if (epoch == kill.epoch && step == kill.step) {
          ::kill(::getpid(), SIGKILL);
        }
      };
    }

    try {
      const TrainResult result =
          train_with_comm(factory, data_spec, config, *comm);
      carried_skips += result.skipped_factor_steps;
      if (rank == 0) {
        publish_result(opts.checkpoint_path + ".result", result, generation,
                       comm->size(), carried_skips);
      }
      return 0;
    } catch (const comm::PeerFailure& e) {
      ++attempts;
      DKFAC_LOG_WARN << "elastic: rank " << rank << " (generation "
                     << generation << ") lost a peer: " << e.what()
                     << (attempts <= opts.max_reformations
                             ? " — re-forming"
                             : " — re-formations exhausted");
      if (attempts > opts.max_reformations) return 2;
      // Tear the mesh down NOW: closing our sockets cascades the failure
      // to peers still blocked in a collective, so the whole group reaches
      // the rendezvous within one comm deadline instead of serially.
      comm.reset();
    }
  }
}

[[noreturn]] void elastic_child_main(int child_index, uint16_t rendezvous_port,
                                     const ModelFactory& factory,
                                     const data::SyntheticSpec& data_spec,
                                     const TrainConfig& config,
                                     const ElasticOptions& opts) {
  int code = 1;
  try {
    code = elastic_worker(child_index, rendezvous_port, factory, data_spec,
                          config, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[elastic child %d] error: %s\n", child_index,
                 e.what());
    code = 1;
  }
  std::fflush(stdout);
  std::fflush(stderr);
  _exit(code);
}

}  // namespace

void save_elastic_checkpoint(nn::Layer& model, int epoch,
                             const std::string& path) {
  DKFAC_CHECK(epoch >= 0) << "elastic checkpoint epoch must be non-negative";
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    DKFAC_CHECK(out.is_open()) << "cannot open " << tmp << " for writing";
    out.write(kElasticMagic, sizeof(kElasticMagic));
    out.write(reinterpret_cast<const char*>(&kElasticVersion),
              sizeof(kElasticVersion));
    const uint64_t tagged = static_cast<uint64_t>(epoch);
    out.write(reinterpret_cast<const char*>(&tagged), sizeof(tagged));
    nn::save_checkpoint(model, out);
    out.flush();
    DKFAC_CHECK(out.good()) << "elastic checkpoint write failed: " << tmp;
  }
  commit_atomically(tmp, path);
}

std::optional<int> read_elastic_epoch_tag(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return std::nullopt;
  return read_header(in);
}

int load_elastic_checkpoint(nn::Layer& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DKFAC_CHECK(in.is_open()) << "cannot open " << path << " for reading";
  const std::optional<int> epoch = read_header(in);
  DKFAC_CHECK(epoch.has_value()) << path << " is not an elastic checkpoint";
  nn::load_checkpoint(model, in);
  return *epoch;
}

ElasticResult run_elastic(const ModelFactory& factory,
                          const data::SyntheticSpec& data_spec,
                          const TrainConfig& config,
                          const ElasticOptions& options) {
  DKFAC_CHECK(!options.checkpoint_path.empty())
      << "elastic training needs a durable checkpoint path";
  DKFAC_CHECK(options.initial_ranks >= 1) << "need at least one rank";
  DKFAC_CHECK(options.min_ranks >= 1 &&
              options.min_ranks <= options.initial_ranks)
      << "min_ranks must be in [1, initial_ranks]";

  const std::string result_path = options.checkpoint_path + ".result";
  std::remove(result_path.c_str());

  comm::net::RendezvousServer server;
  std::fflush(stdout);
  std::fflush(stderr);
  std::vector<pid_t> children;
  children.reserve(static_cast<size_t>(options.initial_ranks));
  for (int i = 0; i < options.initial_ranks; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t child : children) ::kill(child, SIGKILL);
      for (pid_t child : children) ::waitpid(child, nullptr, 0);
      throw Error("run_elastic: fork failed");
    }
    if (pid == 0) {
      server.close();  // only the supervisor accepts rendezvous connections
      elastic_child_main(i, server.port(), factory, data_spec, config,
                         options);
    }
    children.push_back(pid);
  }

  // Supervision pump: reap deaths, keep the rendezvous warm so survivors
  // can re-form (parked registrations persist across the short serve
  // calls), and give up once the group can no longer satisfy min_ranks.
  int first_failure = 0;
  std::vector<pid_t> alive = children;
  auto reap = [&] {
    for (auto it = alive.begin(); it != alive.end();) {
      int status = 0;
      const pid_t r = ::waitpid(*it, &status, WNOHANG);
      if (r == 0) {
        ++it;
        continue;
      }
      int code = 1;  // waitpid error: the child is unaccountably gone
      if (r > 0) {
        code = 0;
        if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          code = 128 + WTERMSIG(status);
        }
      }
      // A killed rank is an expected casualty as long as a shrunk group
      // finishes the job; remember the first failure anyway — if no
      // generation ever publishes a result, this is the diagnosis.
      if (code != 0 && first_failure == 0) first_failure = code;
      it = alive.erase(it);
    }
  };

  while (true) {
    reap();
    if (alive.empty()) break;
    if (static_cast<int>(alive.size()) < options.min_ranks) {
      DKFAC_LOG_WARN << "elastic: only " << alive.size()
                     << " ranks remain (min " << options.min_ranks
                     << ") — terminating the job";
      for (pid_t child : alive) ::kill(child, SIGTERM);
      const auto term_at = Clock::now();
      while (!alive.empty() && seconds_since(term_at) < kTermGraceSeconds) {
        reap();
        if (!alive.empty()) ::usleep(10000);
      }
      for (pid_t child : alive) ::kill(child, SIGKILL);
      while (!alive.empty()) {
        reap();
        if (!alive.empty()) ::usleep(10000);
      }
      break;
    }
    try {
      server.serve_generation([&] { reap(); return static_cast<int>(alive.size()); },
                              options.min_ranks,
                              /*timeout_s=*/0.25);
    } catch (const Error&) {
      // Pump tick: nobody (or not everybody) is re-registering right now.
      // Half-finished registrations stay parked for the next tick, and a
      // group that shrank below min_ranks is handled at the top of the
      // loop.
    }
  }

  ElasticResult res;
  std::ifstream in(result_path);
  if (in.is_open()) {
    std::string line;
    while (std::getline(in, line)) {
      const size_t eq = line.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = line.substr(0, eq);
      const std::string value = line.substr(eq + 1);
      try {
        if (key == "train_loss") {
          res.final_train_loss = std::stof(value);
        } else if (key == "val_accuracy") {
          res.final_val_accuracy = std::stof(value);
        } else if (key == "reformations") {
          res.reformations = std::stoi(value);
        } else if (key == "skipped_factor_steps") {
          res.skipped_factor_steps = std::stoull(value);
        } else if (key == "world") {
          res.final_world = std::stoi(value);
        }
      } catch (const std::exception&) {
        // Unparseable line in a hand-edited file: skip it.
      }
    }
    res.completed = true;
  } else {
    res.exit_code = first_failure != 0 ? first_failure : 1;
  }
  return res;
}

}  // namespace dkfac::train::elastic
