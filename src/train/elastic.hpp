// Elastic fault-tolerant training: survive rank death mid-run, then grow
// the world back.
//
// run_elastic() supervises a multi-process socket-backend training job the
// way net::run_ranks supervises a fixed one, except that a rank dying
// mid-training shrinks the group instead of failing the job:
//
//   1. DETECTION — the dead peer's sockets close; every survivor's next
//      collective on that link throws comm::PeerFailure (a typed Error
//      naming the rank) within one comm deadline. The supervisor reaps the
//      corpse with WNOHANG in its pump loop.
//   2. RE-FORMATION — survivors tear down their mesh (closing their own
//      sockets cascades the failure to peers still blocked in a
//      collective) and re-register with the persistent RendezvousServer
//      under elastic membership (world = kElasticWorld). The supervisor's
//      serve_generation() forms a group of exactly the surviving-child
//      count and stamps it with the next generation; stale connections
//      from the old mesh are rejected by the generation tag in every
//      data-plane hello.
//   3. REJOIN — the new group restores the last durable epoch-tagged
//      checkpoint (written atomically at every epoch boundary by rank 0)
//      and resumes at that epoch + 1. Factor ownership redistributes
//      automatically: KfacPreconditioner derives its assignment from the
//      communicator size at construction.
//   4. REGROW — with a respawn budget (`respawns_per_rank` > 0) the
//      supervisor forks a replacement child for each non-zero-exit death
//      after a jittered exponential backoff, bounded by `max_ranks` (never
//      above the initial world). The replacement registers as an elastic
//      joiner; if the shrunk group has already re-formed without it, the
//      supervisor nudges every running child with SIGUSR1 — the trainer
//      polls TrainConfig::reform_poll at the top of each step and throws
//      comm::RegrowRequest, a cooperative "tear down and re-rendezvous"
//      that admits the joiner at the next generation boundary. Joiners
//      restore the durable checkpoint like any re-formed rank, completing
//      shrink → recover → regrow.
//   5. STRAGGLER SLACK — orthogonal to death: a rank that is merely slow
//      on a factor-update step triggers a collective vote that sheds the
//      step's factor update for ALL ranks (the paper's update-frequency-
//      decay semantics) instead of stalling the group. See
//      TrainConfig::straggler_slack_s.
//
// Counters surface in the metrics stream as `elastic.reformations`,
// `elastic.skipped_factor_steps`, `elastic.joins` and `elastic.respawns`;
// recovery phases emit trace spans (`elastic.reformation`,
// `elastic.rejoin`, `elastic.regrow`, `elastic.straggler_vote`).
//
// What is survivable: any number of rank deaths over time, as long as at
// least `min_ranks` children (counting pending respawns) remain and
// re-formations stay within `max_reformations`. What is not: the
// supervisor process dying, loss of BOTH checkpoint copies (the newest and
// its `.prev` rotation), and deaths before the first epoch's checkpoint
// exists (the group re-forms but restarts from epoch 0).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "comm/cost_model.hpp"
#include "train/trainer.hpp"

namespace dkfac::train::elastic {

/// Fault injection: the child whose generation-0 rank is `rank` SIGKILLs
/// itself at the top of (epoch, step), before any collective of that step.
/// Only fires in generation 0 — re-formed groups run undisturbed.
/// (Prefer the scriptable faultnet plans — see comm/net/faultnet.hpp — for
/// anything beyond this single canned kill.)
struct KillSpec {
  int rank = 0;
  int epoch = 0;
  int64_t step = 0;
};

struct ElasticOptions {
  /// Children forked at launch (generation 0's world size).
  int initial_ranks = 4;
  /// The job fails once fewer than this many children (alive + pending
  /// respawns) remain.
  int min_ranks = 1;
  /// Bound on how many times any child may re-rendezvous after a peer
  /// failure before giving up. Cooperative regrow re-formations
  /// (comm::RegrowRequest) do not count against this.
  int max_reformations = 3;
  /// Ceiling on the regrown world size. 0 = initial_ranks. Never exceeds
  /// initial_ranks (data sharding and LR schedule are sized for it).
  int max_ranks = 0;
  /// Respawn budget per child slot: how many replacement processes the
  /// supervisor may fork for one slot after non-zero-exit deaths.
  /// 0 (default) disables regrow — deaths only shrink, exactly the
  /// pre-scale-up behavior.
  int respawns_per_rank = 0;
  /// Base delay before a replacement is forked; doubles per respawn of the
  /// same slot with deterministic jitter (seeded from `seed`).
  double respawn_backoff_s = 0.25;
  /// Seed for respawn-backoff jitter.
  uint64_t seed = 1;
  /// Per-operation network deadline inside each child's SocketComm — the
  /// detection latency bound for a dead peer.
  double comm_timeout_s = 20.0;
  /// How long the initial group may take to assemble.
  double rendezvous_timeout_s = 30.0;
  /// Durable epoch-tagged checkpoint path (required). Written atomically
  /// by rank 0 at every epoch boundary; the previous epoch's file is kept
  /// as `<path>.prev` so a torn/corrupted newest entry falls back one
  /// epoch. Re-formed groups resume from it. The supervisor's
  /// machine-readable summary lands at `<path>.result`.
  std::string checkpoint_path;
  /// Optional chaos injection (tests).
  std::optional<KillSpec> kill;
  comm::CostModel cost = comm::CostModel::loopback_tcp();
};

struct ElasticResult {
  /// True iff a group ran training to completion and published its result.
  bool completed = false;
  /// First failing child's exit code when !completed (0 otherwise).
  int exit_code = 0;
  float final_train_loss = 0.0f;
  float final_val_accuracy = 0.0f;
  /// Re-formations the surviving group went through (== final generation).
  int reformations = 0;
  /// Factor updates shed as straggler slack across all generations.
  uint64_t skipped_factor_steps = 0;
  /// World size of the group that finished.
  int final_world = 0;
  /// Replacement children the supervisor forked (regrow).
  int respawns = 0;
  /// Ranks observed joining across generation boundaries — a world that
  /// grew from one generation to the next counts the growth here.
  int joins = 0;
};

/// Supervises an elastic training job: forks `initial_ranks` children,
/// pumps the rendezvous for re-formations, reaps deaths, respawns
/// replacements within budget, and returns the published result of
/// whichever generation ran to completion. Throws dkfac::Error only for
/// setup errors (bad options, fork failure) — rank deaths and failed runs
/// are reported through the result.
ElasticResult run_elastic(const ModelFactory& factory,
                          const data::SyntheticSpec& data_spec,
                          const TrainConfig& config,
                          const ElasticOptions& options);

// ---- epoch-tagged checkpoint container ------------------------------------
//
// A plain nn::save_checkpoint stream wrapped as
//   magic "DKEL" | u32 version | u64 epoch | <nn stream> | "DKEF" | u32 crc
// where crc is the CRC-32 of every preceding byte, written with the same
// tmp + fsync + rename discipline as the weights themselves. Each save
// first rotates the existing file to `<path>.prev`, so the newest entry
// failing its footer/CRC check (torn write, bit rot, truncation) falls
// back to the previous intact epoch instead of poisoning the rejoin.

/// Atomically writes `model` tagged with `epoch` to `path`, rotating any
/// existing file to `<path>.prev` first.
void save_elastic_checkpoint(nn::Layer& model, int epoch,
                             const std::string& path);

/// Which checkpoint file a rejoining group should restore.
struct ResolvedCheckpoint {
  std::string file;        ///< the file that validated (path or path.prev)
  int epoch = 0;           ///< its epoch tag
  bool fell_back = false;  ///< true when the newest entry was corrupt
};

/// Validates the newest checkpoint (full header + CRC-32 footer) and falls
/// back to `<path>.prev` when it is corrupt or truncated. Returns nullopt
/// when `path` does not exist at all (fresh start — a stale `.prev` alone
/// is ignored). Throws dkfac::Error when the newest entry is corrupt and
/// no intact previous epoch exists.
std::optional<ResolvedCheckpoint> resolve_elastic_checkpoint(
    const std::string& path);

/// The epoch tag of the checkpoint at `path` if it validates end to end
/// (header + CRC), else nullopt. Never throws; no `.prev` fallback.
std::optional<int> read_elastic_epoch_tag(const std::string& path);

/// Restores `model` from an elastic checkpoint and returns its epoch tag.
/// Throws dkfac::Error on a missing/corrupt/CRC-failing file or mismatched
/// model — never restores from a payload whose checksum does not match.
int load_elastic_checkpoint(nn::Layer& model, const std::string& path);

}  // namespace dkfac::train::elastic
