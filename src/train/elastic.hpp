// Elastic fault-tolerant training: survive rank death mid-run.
//
// run_elastic() supervises a multi-process socket-backend training job the
// way net::run_ranks supervises a fixed one, except that a rank dying
// mid-training shrinks the group instead of failing the job:
//
//   1. DETECTION — the dead peer's sockets close; every survivor's next
//      collective on that link throws comm::PeerFailure (a typed Error
//      naming the rank) within one comm deadline. The supervisor reaps the
//      corpse with WNOHANG in its pump loop.
//   2. RE-FORMATION — survivors tear down their mesh (closing their own
//      sockets cascades the failure to peers still blocked in a
//      collective) and re-register with the persistent RendezvousServer
//      under elastic membership (world = kElasticWorld). The supervisor's
//      serve_generation() forms a group of exactly the surviving-child
//      count and stamps it with the next generation; stale connections
//      from the old mesh are rejected by the generation tag in every
//      data-plane hello.
//   3. REJOIN — the new group restores the last durable epoch-tagged
//      checkpoint (written atomically at every epoch boundary by rank 0)
//      and resumes at that epoch + 1. Factor ownership redistributes
//      automatically: KfacPreconditioner derives its assignment from the
//      communicator size at construction.
//   4. STRAGGLER SLACK — orthogonal to death: a rank that is merely slow
//      on a factor-update step triggers a collective vote that sheds the
//      step's factor update for ALL ranks (the paper's update-frequency-
//      decay semantics) instead of stalling the group. See
//      TrainConfig::straggler_slack_s.
//
// Counters surface in the metrics stream as `elastic.reformations` and
// `elastic.skipped_factor_steps`; recovery phases emit trace spans
// (`elastic.reformation`, `elastic.rejoin`, `elastic.straggler_vote`).
//
// What is survivable: any number of rank deaths over time, as long as at
// least `min_ranks` children remain and re-formations stay within
// `max_reformations`. What is not: the supervisor process dying, loss of
// the checkpoint file, and deaths before the first epoch's checkpoint
// exists (the group re-forms but restarts from epoch 0).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "comm/cost_model.hpp"
#include "train/trainer.hpp"

namespace dkfac::train::elastic {

/// Fault injection: the child whose generation-0 rank is `rank` SIGKILLs
/// itself at the top of (epoch, step), before any collective of that step.
/// Only fires in generation 0 — re-formed groups run undisturbed.
struct KillSpec {
  int rank = 0;
  int epoch = 0;
  int64_t step = 0;
};

struct ElasticOptions {
  /// Children forked at launch (generation 0's world size).
  int initial_ranks = 4;
  /// The job fails once fewer than this many children survive.
  int min_ranks = 1;
  /// Bound on how many times any child may re-rendezvous before giving up.
  int max_reformations = 3;
  /// Per-operation network deadline inside each child's SocketComm — the
  /// detection latency bound for a dead peer.
  double comm_timeout_s = 20.0;
  /// How long the initial group may take to assemble.
  double rendezvous_timeout_s = 30.0;
  /// Durable epoch-tagged checkpoint path (required). Written atomically
  /// by rank 0 at every epoch boundary; re-formed groups resume from it.
  /// The supervisor's machine-readable summary lands at `<path>.result`.
  std::string checkpoint_path;
  /// Optional chaos injection (tests).
  std::optional<KillSpec> kill;
  comm::CostModel cost = comm::CostModel::loopback_tcp();
};

struct ElasticResult {
  /// True iff a group ran training to completion and published its result.
  bool completed = false;
  /// First failing child's exit code when !completed (0 otherwise).
  int exit_code = 0;
  float final_train_loss = 0.0f;
  float final_val_accuracy = 0.0f;
  /// Re-formations the surviving group went through (== final generation).
  int reformations = 0;
  /// Factor updates shed as straggler slack across all generations.
  uint64_t skipped_factor_steps = 0;
  /// World size of the group that finished.
  int final_world = 0;
};

/// Supervises an elastic training job: forks `initial_ranks` children,
/// pumps the rendezvous for re-formations, reaps deaths, and returns the
/// published result of whichever generation ran to completion. Throws
/// dkfac::Error only for setup errors (bad options, fork failure) — rank
/// deaths and failed runs are reported through the result.
ElasticResult run_elastic(const ModelFactory& factory,
                          const data::SyntheticSpec& data_spec,
                          const TrainConfig& config,
                          const ElasticOptions& options);

// ---- epoch-tagged checkpoint container ------------------------------------
//
// A plain nn::save_checkpoint stream prefixed with
//   magic "DKEL" | u32 version | u64 epoch
// and written with the same tmp + fsync + rename discipline, so "which
// epoch does this checkpoint hold" survives crashes with the same atomicity
// as the weights themselves.

/// Atomically writes `model` tagged with `epoch` to `path`.
void save_elastic_checkpoint(nn::Layer& model, int epoch,
                             const std::string& path);

/// The epoch tag of the checkpoint at `path`, or nullopt if the file is
/// missing or not an elastic checkpoint. Never throws.
std::optional<int> read_elastic_epoch_tag(const std::string& path);

/// Restores `model` from an elastic checkpoint and returns its epoch tag.
/// Throws dkfac::Error on a missing/corrupt file or mismatched model.
int load_elastic_checkpoint(nn::Layer& model, const std::string& path);

}  // namespace dkfac::train::elastic
