// Distributed training harness — the C++ equivalent of the paper's
// Listing 1 loop, run SPMD over thread ranks:
//
//     output = model(data);  loss = criterion(output, target);
//     loss.backward();
//     optimizer.synchronize();        -> fused gradient allreduce
//     preconditioner.step();          -> KfacPreconditioner::step()
//     optimizer.step();               -> Sgd::step()
//
// Every rank builds an identical model replica (same seed), consumes its
// shard of the global batch, and participates in the collectives. Shared
// by all examples and benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "core/options.hpp"
#include "data/loader.hpp"
#include "data/synthetic.hpp"
#include "nn/layer.hpp"
#include "optim/lr_schedule.hpp"

namespace dkfac::train {

using ModelFactory = std::function<nn::LayerPtr(Rng&)>;

/// Inner optimizer the (optional) K-FAC preconditioner runs in front of —
/// the paper's §IV composability: "K-FAC can be used in-place with any
/// standard optimizer, such as Adam, LARS, or SGD".
enum class OptimizerKind { kSgd, kAdam, kLars };

struct TrainConfig {
  int64_t local_batch = 32;
  int epochs = 10;
  /// First epoch to run (training covers [start_epoch, epochs)). A
  /// re-formed elastic group restores a checkpoint tagged with epoch e and
  /// resumes at start_epoch = e: the LR schedule and K-FAC decays are
  /// functions of the absolute epoch, so the resumed trajectory matches
  /// where the undisturbed run would be.
  int start_epoch = 0;
  OptimizerKind optimizer = OptimizerKind::kSgd;
  optim::LrSchedule::Options lr;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  float label_smoothing = 0.0f;

  /// Overlap communication with compute (Horovod §II-D): per-layer
  /// gradient allreduces are submitted to a background comm::AsyncExecutor
  /// the moment each layer finishes backprop, and K-FAC factor exchanges
  /// ride the same pipeline. Off → the synchronous fused allreduce.
  /// Results are bitwise identical either way (deterministic collectives,
  /// elementwise reductions).
  bool overlap_comm = false;

  /// Enable the K-FAC preconditioner in front of SGD.
  bool use_kfac = false;
  kfac::KfacOptions kfac;
  /// Damping decay (paper §V-C): γ multiplied by `damping_decay_factor`
  /// at each listed epoch.
  std::vector<float> damping_decay_epochs;
  float damping_decay_factor = 0.5f;
  /// Update-frequency decay (paper §V-C): the K-FAC update interval is
  /// multiplied by `freq_decay_factor` at each listed epoch (factor
  /// interval scales with it, preserving the 10× relationship).
  std::vector<float> freq_decay_epochs;
  float freq_decay_factor = 0.5f;

  uint64_t model_seed = 42;
  uint64_t data_seed = 7;
  int64_t eval_batch = 256;

  /// Per-step metrics as JSONL (one obs::Registry record per step) to this
  /// path; empty = off. Observability only — enabling it never changes
  /// training results (stats are snapshotted at the existing gradient
  /// synchronisation point, so no extra barriers or collectives appear).
  std::string metrics_path;

  /// Invoked with rank 0's trained model before the workers tear down —
  /// use it to checkpoint or inspect the final weights.
  std::function<void(nn::Layer&)> on_trained_model;

  // ---- elastic fault tolerance (see train/elastic.hpp) ---------------------

  /// Invoked on rank 0 at the end of every epoch with (epoch, model) — the
  /// elastic trainer writes its durable epoch-tagged checkpoint here.
  std::function<void(int, nn::Layer&)> on_epoch_checkpoint;

  /// Invoked on EVERY rank right after the replicas are built and
  /// broadcast, before the first step — the rejoin hook: a re-formed group
  /// overwrites the fresh weights with the last durable checkpoint here.
  /// Must leave all ranks identical (e.g. every rank loads the same file).
  std::function<void(nn::Layer&)> on_model_init;

  /// K-FAC straggler slack: on steps where a factor update is due, ranks
  /// vote (one tiny kMax allreduce at the already-synchronised gradient
  /// point) on their per-step compute-time spread; if max − min exceeds
  /// this many seconds, ALL ranks shed the step's factor update — the
  /// paper's update-frequency-decay semantics instead of stalling the
  /// collective behind the slow rank. 0 = off (no vote, no extra
  /// collective — existing runs are byte-for-byte unchanged).
  double straggler_slack_s = 0.0;

  /// Test hook: extra seconds of simulated compute lag `rank` reports into
  /// the straggler vote at a given (rank, global step). Null = none.
  std::function<double(int, int64_t)> straggler_lag_hook;

  /// Fault-injection hook, called on every rank at the top of each step
  /// with (epoch, batch) BEFORE any collective of that step. Chaos tests
  /// use it to self-SIGKILL a rank at an exact, reproducible point.
  std::function<void(int, int64_t)> step_probe;

  /// Elastic scale-up: polled at the top of every step, BEFORE any
  /// collective. Returning true makes the trainer throw comm::RegrowRequest
  /// — the cooperative "tear down and re-rendezvous so a waiting joiner can
  /// be admitted" signal. All ranks must poll the same external condition
  /// (the supervisor signals everyone), so the group leaves together
  /// within one step. Null = never.
  std::function<bool()> reform_poll;

  /// Elastic counters carried across re-formations, surfaced verbatim in
  /// the metrics stream (elastic.reformations) and added to this run's
  /// shed-step count (elastic.skipped_factor_steps).
  uint64_t elastic_reformations = 0;
  uint64_t skipped_factor_steps_baseline = 0;
  /// Elastic scale-up counters for the metrics stream: ranks observed
  /// joining the group across this process's re-formations
  /// (elastic.joins), and whether this process itself is a respawned
  /// replacement (elastic.respawns).
  uint64_t elastic_joins = 0;
  uint64_t elastic_respawns = 0;
};

struct EpochMetrics {
  int epoch = 0;
  float train_loss = 0.0f;
  float train_accuracy = 0.0f;
  float val_accuracy = 0.0f;
  double seconds = 0.0;
};

struct TrainResult {
  std::vector<EpochMetrics> epochs;
  float final_val_accuracy = 0.0f;
  float best_val_accuracy = 0.0f;
  int64_t iterations = 0;
  double total_seconds = 0.0;
  /// K-FAC factor updates shed as straggler slack during this run (not
  /// including the config's carried-over baseline).
  uint64_t skipped_factor_steps = 0;
  /// Rank-0 communication counters over the whole run.
  comm::CommStats comm_stats;

  /// First epoch (1-based) whose validation accuracy reaches `target`,
  /// or -1 if never reached.
  int epochs_to_reach(float target) const {
    for (const EpochMetrics& m : epochs) {
      if (m.val_accuracy >= target) return m.epoch;
    }
    return -1;
  }
};

/// Runs the full distributed training job on `world_size` thread ranks.
/// Deterministic: the same inputs give the same result bit-for-bit.
TrainResult train_distributed(const ModelFactory& factory,
                              const data::SyntheticSpec& data_spec,
                              const TrainConfig& config, int world_size);

/// Single-rank convenience wrapper.
TrainResult train_single(const ModelFactory& factory,
                         const data::SyntheticSpec& data_spec,
                         const TrainConfig& config);

/// Per-rank SPMD entry point on an existing communicator endpoint — the
/// backend-agnostic core train_distributed (thread ranks) and the socket
/// launcher (`net::run_ranks`, one process per rank) both drive. All ranks
/// of the group must call it collectively with identical config. Results
/// are bitwise identical across backends: both reduce in rank order.
TrainResult train_with_comm(const ModelFactory& factory,
                            const data::SyntheticSpec& data_spec,
                            const TrainConfig& config,
                            comm::Communicator& comm);

/// OpenMP team size for one of `world_size` ranks sharing this machine
/// (cores divided evenly, at least 1). The single definition every
/// launcher must use — train_distributed applies it to thread ranks, and
/// socket-rank callers apply it in each forked process — so both backends
/// run identical per-rank parallelism.
int omp_threads_per_rank(int world_size);

/// Evaluates top-1 accuracy of `model` over the validation split, sharded
/// across ranks and allreduced (every rank returns the global number).
/// Counts correct predictions directly (argmax == label) and reduces
/// integer counts, so the result carries no per-batch rounding drift.
float evaluate(nn::Layer& model, const data::SyntheticImageDataset& val,
               comm::Communicator& comm, int64_t eval_batch);

// ---- epoch-boundary K-FAC schedule decay (paper §V-C) ---------------------
//
// Exposed as pure functions of (config, epoch) so the once-per-threshold
// contract is testable without running training: each listed epoch
// threshold contributes exactly one decay factor, recomputed from the base
// value every epoch (crossing a threshold twice is impossible).

/// Damping γ for `epoch`: base damping times `damping_decay_factor` once
/// per crossed threshold in `damping_decay_epochs`.
float decayed_damping(const TrainConfig& config, int epoch);

struct UpdateFreqs {
  int factor_update_freq = 1;
  int inv_update_freq = 1;
};

/// K-FAC update intervals for `epoch`: the inverse interval scaled by
/// `freq_decay_factor` once per crossed threshold, the factor interval
/// re-derived as inv/10 (min 1) and snapped so inv % fac == 0 — the
/// divisibility contract KfacOptions::validate() enforces.
UpdateFreqs decayed_update_freqs(const TrainConfig& config, int epoch);

}  // namespace dkfac::train
