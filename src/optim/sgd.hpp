// SGD with momentum and weight decay — the inner optimizer the paper's
// K-FAC preconditioner wraps (Eq 1; §VI uses momentum 0.9).
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dkfac::optim {

struct SgdOptions {
  float lr = 0.1f;
  float momentum = 0.0f;
  float weight_decay = 0.0f;
  bool nesterov = false;
};

class Sgd {
 public:
  Sgd(std::vector<nn::Parameter*> params, SgdOptions options);

  /// Applies one update from the gradients currently stored in the
  /// parameters. Gradients are NOT zeroed — call zero_grad() on the model.
  void step();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }
  const SgdOptions& options() const { return options_; }

 private:
  std::vector<nn::Parameter*> params_;
  SgdOptions options_;
  std::vector<Tensor> velocity_;  // one buffer per parameter
};

}  // namespace dkfac::optim
