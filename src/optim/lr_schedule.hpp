// Learning-rate schedules: the paper composes linear warmup over the first
// five epochs with multi-step decay (×0.1 at fixed epochs) for both SGD
// and K-FAC runs (§VI-C).
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace dkfac::optim {

/// Piecewise schedule over fractional epochs. Produces the multiplier to
/// apply to a base LR; compose with Sgd via set_lr(base * factor(epoch)).
class LrSchedule {
 public:
  struct Options {
    float base_lr = 0.1f;
    /// Linear warmup from warmup_start_factor·base to base over this many
    /// epochs; 0 disables warmup.
    float warmup_epochs = 0.0f;
    float warmup_start_factor = 0.1f;
    /// Epochs at which LR is multiplied by `decay_factor`.
    std::vector<float> decay_epochs;
    float decay_factor = 0.1f;
  };

  explicit LrSchedule(Options options) : options_(std::move(options)) {
    DKFAC_CHECK(options_.base_lr > 0.0f);
    DKFAC_CHECK(options_.warmup_epochs >= 0.0f);
    DKFAC_CHECK(options_.decay_factor > 0.0f && options_.decay_factor <= 1.0f);
    for (size_t i = 1; i < options_.decay_epochs.size(); ++i) {
      DKFAC_CHECK(options_.decay_epochs[i - 1] < options_.decay_epochs[i])
          << "decay epochs must be strictly increasing";
    }
  }

  /// Learning rate at a fractional epoch (e.g. 2.5 = halfway through epoch 2).
  float lr_at(float epoch) const {
    DKFAC_CHECK(epoch >= 0.0f);
    float factor = 1.0f;
    if (options_.warmup_epochs > 0.0f && epoch < options_.warmup_epochs) {
      const float t = epoch / options_.warmup_epochs;
      factor = options_.warmup_start_factor + (1.0f - options_.warmup_start_factor) * t;
    }
    for (float de : options_.decay_epochs) {
      if (epoch >= de) factor *= options_.decay_factor;
    }
    return options_.base_lr * factor;
  }

  const Options& options() const { return options_; }

 private:
  Options options_;
};

/// The paper's K-FAC update-frequency decay (§V-C): the interval between
/// K-FAC eigendecomposition refreshes, reduced at fixed epochs.
class UpdateFreqSchedule {
 public:
  struct Options {
    int base_interval = 10;  // iterations between K-FAC updates
    std::vector<float> decay_epochs;
    float decay_factor = 0.5f;  // interval multiplied by this at each epoch
    int min_interval = 1;
  };

  explicit UpdateFreqSchedule(Options options) : options_(std::move(options)) {
    DKFAC_CHECK(options_.base_interval >= 1);
    DKFAC_CHECK(options_.min_interval >= 1);
    DKFAC_CHECK(options_.decay_factor > 0.0f);
  }

  int interval_at(float epoch) const {
    float interval = static_cast<float>(options_.base_interval);
    for (float de : options_.decay_epochs) {
      if (epoch >= de) interval *= options_.decay_factor;
    }
    const int rounded = static_cast<int>(interval + 0.5f);
    return rounded < options_.min_interval ? options_.min_interval : rounded;
  }

 private:
  Options options_;
};

}  // namespace dkfac::optim
