// LARS — layer-wise adaptive rate scaling (You, Gitman, Keutzer), the
// large-batch SGD variant the paper compares against in §III-A. Each
// parameter tensor's update is rescaled by trust · ||w|| / ||g + λw|| so
// layers with small weights are not swamped by large global LRs.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dkfac::optim {

struct LarsOptions {
  float lr = 0.1f;
  float momentum = 0.9f;
  float weight_decay = 0.0f;
  /// Trust coefficient η; the LARS paper uses ~0.001.
  float trust = 0.001f;
  float epsilon = 1e-9f;
};

class Lars {
 public:
  Lars(std::vector<nn::Parameter*> params, LarsOptions options);

  void step();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }

  /// The adaptive ratio used for parameter `i` in the last step (exposed
  /// for tests and diagnostics).
  float last_ratio(size_t i) const { return last_ratio_[i]; }

 private:
  std::vector<nn::Parameter*> params_;
  LarsOptions options_;
  std::vector<Tensor> velocity_;
  std::vector<float> last_ratio_;
};

}  // namespace dkfac::optim
