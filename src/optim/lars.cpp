#include "optim/lars.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dkfac::optim {

Lars::Lars(std::vector<nn::Parameter*> params, LarsOptions options)
    : params_(std::move(params)), options_(options) {
  DKFAC_CHECK(options_.lr > 0.0f);
  DKFAC_CHECK(options_.momentum >= 0.0f && options_.momentum < 1.0f);
  DKFAC_CHECK(options_.trust > 0.0f);
  velocity_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
  last_ratio_.assign(params_.size(), 1.0f);
}

void Lars::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const int64_t n = p.value.numel();

    // Layer-wise norms of w and of (g + λw).
    double w_norm_sq = 0.0;
    double u_norm_sq = 0.0;
    for (int64_t j = 0; j < n; ++j) {
      const double w = p.value[j];
      const double u = p.grad[j] + options_.weight_decay * w;
      w_norm_sq += w * w;
      u_norm_sq += u * u;
    }
    const float w_norm = static_cast<float>(std::sqrt(w_norm_sq));
    const float u_norm = static_cast<float>(std::sqrt(u_norm_sq));
    // Freshly-initialised (or bias-like) tensors with tiny norms fall back
    // to the plain update, as in reference implementations.
    const float ratio = (w_norm > options_.epsilon && u_norm > options_.epsilon)
                            ? options_.trust * w_norm / u_norm
                            : 1.0f;
    last_ratio_[i] = ratio;

    for (int64_t j = 0; j < n; ++j) {
      const float u = p.grad[j] + options_.weight_decay * p.value[j];
      v[j] = options_.momentum * v[j] + options_.lr * ratio * u;
      p.value[j] -= v[j];
    }
  }
}

}  // namespace dkfac::optim
