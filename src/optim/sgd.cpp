#include "optim/sgd.hpp"

#include "common/error.hpp"

namespace dkfac::optim {

Sgd::Sgd(std::vector<nn::Parameter*> params, SgdOptions options)
    : params_(std::move(params)), options_(options) {
  DKFAC_CHECK(options_.lr > 0.0f) << "learning rate must be positive";
  DKFAC_CHECK(options_.momentum >= 0.0f && options_.momentum < 1.0f);
  DKFAC_CHECK(!options_.nesterov || options_.momentum > 0.0f)
      << "nesterov requires momentum";
  velocity_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    velocity_.emplace_back(p->value.shape());
  }
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& v = velocity_[i];
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = p.grad[j];
      if (options_.weight_decay != 0.0f) g += options_.weight_decay * p.value[j];
      if (options_.momentum != 0.0f) {
        v[j] = options_.momentum * v[j] + g;
        g = options_.nesterov ? g + options_.momentum * v[j] : v[j];
      }
      p.value[j] -= options_.lr * g;
    }
  }
}

}  // namespace dkfac::optim
