#include "optim/adam.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dkfac::optim {

Adam::Adam(std::vector<nn::Parameter*> params, AdamOptions options)
    : params_(std::move(params)), options_(options) {
  DKFAC_CHECK(options_.lr > 0.0f);
  DKFAC_CHECK(options_.beta1 >= 0.0f && options_.beta1 < 1.0f);
  DKFAC_CHECK(options_.beta2 >= 0.0f && options_.beta2 < 1.0f);
  DKFAC_CHECK(options_.epsilon > 0.0f);
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const nn::Parameter* p : params_) {
    m_.emplace_back(p->value.shape());
    v_.emplace_back(p->value.shape());
  }
}

void Adam::step() {
  ++step_;
  const float bias1 = 1.0f - std::pow(options_.beta1, static_cast<float>(step_));
  const float bias2 = 1.0f - std::pow(options_.beta2, static_cast<float>(step_));
  for (size_t i = 0; i < params_.size(); ++i) {
    nn::Parameter& p = *params_[i];
    Tensor& m = m_[i];
    Tensor& v = v_[i];
    const int64_t n = p.value.numel();
    for (int64_t j = 0; j < n; ++j) {
      float g = p.grad[j];
      if (options_.weight_decay != 0.0f) g += options_.weight_decay * p.value[j];
      m[j] = options_.beta1 * m[j] + (1.0f - options_.beta1) * g;
      v[j] = options_.beta2 * v[j] + (1.0f - options_.beta2) * g * g;
      const float m_hat = m[j] / bias1;
      const float v_hat = v[j] / bias2;
      p.value[j] -= options_.lr * m_hat / (std::sqrt(v_hat) + options_.epsilon);
    }
  }
}

}  // namespace dkfac::optim
