// Adam (Kingma & Ba). The paper positions K-FAC as a preconditioner usable
// "in-place with any standard optimizer, such as Adam, LARS, or SGD"
// (§IV) — this is the Adam of that sentence.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace dkfac::optim {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float epsilon = 1e-8f;
  float weight_decay = 0.0f;
};

class Adam {
 public:
  Adam(std::vector<nn::Parameter*> params, AdamOptions options);

  /// One update from the gradients currently stored in the parameters.
  void step();

  float lr() const { return options_.lr; }
  void set_lr(float lr) { options_.lr = lr; }
  int64_t step_count() const { return step_; }

 private:
  std::vector<nn::Parameter*> params_;
  AdamOptions options_;
  std::vector<Tensor> m_;  // first-moment estimates
  std::vector<Tensor> v_;  // second-moment estimates
  int64_t step_ = 0;
};

}  // namespace dkfac::optim
