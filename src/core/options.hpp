// Configuration surface of the distributed K-FAC preconditioner.
#pragma once

#include <algorithm>
#include <vector>

#include "comm/codec.hpp"
#include "common/error.hpp"

namespace dkfac::kfac {

/// How (F̂ + γI)⁻¹∇L is evaluated (paper §IV-A, Table I).
enum class InverseMethod {
  /// Implicit eigendecomposition path, Eqs 13–15 — the paper's choice.
  kEigenDecomposition,
  /// Explicit (A+γI)⁻¹, (G+γI)⁻¹ via Cholesky, Eq 11 — kept for the
  /// Table I comparison; degrades at large batch sizes.
  kExplicitInverse,
};

/// How K-FAC work is spread across workers (paper §VI-C3).
enum class DistributionStrategy {
  /// K-FAC-lw: each layer's whole update (both factors + preconditioning)
  /// on one worker; preconditioned gradients exchanged every iteration.
  kLayerWise,
  /// K-FAC-opt (Algorithm 1): each *factor* round-robin to a worker;
  /// eigendecompositions allgathered only on update iterations and
  /// gradients preconditioned locally everywhere.
  kFactorWise,
  /// The placement policy the paper proposes as future work (§VI-C4):
  /// factors greedily assigned largest-cost-first to the least-loaded
  /// worker, balancing the eigendecomposition stage.
  kSizeBalanced,
};

struct KfacOptions {
  /// Learning rate of the wrapped optimizer — enters the ν rescale (Eq 18).
  float lr = 0.1f;
  /// Tikhonov damping γ (Eq 11). The paper uses 0.001 for ImageNet runs.
  float damping = 0.001f;
  /// Running-average weight ξ for factor accumulation (Eqs 16–17).
  float factor_decay = 0.95f;
  /// κ in the gradient rescaling (Eq 18).
  float kl_clip = 0.001f;

  /// Iterations between factor computation + allreduce. The paper finds
  /// factors can refresh 10× more often than eigendecompositions (§V-C).
  int factor_update_freq = 1;
  /// Iterations between eigendecomposition refresh + allgather — the
  /// paper's `kfac-update-freq`.
  int inv_update_freq = 10;

  InverseMethod inverse_method = InverseMethod::kEigenDecomposition;
  DistributionStrategy strategy = DistributionStrategy::kFactorWise;

  /// π-corrected damping split for the explicit-inverse path (Martens &
  /// Grosse; used by the paper's reference [6]): instead of adding γ to
  /// each factor, add π·√γ to A and √γ/π to G with
  /// π = sqrt( (tr(A)/dim_A) / (tr(G)/dim_G) ), which matches the norm of
  /// the damped Kronecker product to γ·I much more closely. No effect on
  /// the eigendecomposition path (which damps the product spectrum
  /// directly and needs no split).
  bool pi_damping = false;

  /// Communication-reduction extension (the paper's §VII future work):
  /// keep only the top ⌈fraction·n⌉ eigenpairs of each factor. Dropped
  /// directions are treated as zero-eigenvalue, which Eqs 13–15 absorb
  /// into a 1/γ correction; payload per factor shrinks from n²+n to
  /// k·n+k. 1.0 = exact (default).
  float eigen_rank_fraction = 1.0f;

  /// Ship only the upper triangle of each (symmetric) Kronecker factor in
  /// the fused allreduce — n(n+1)/2 instead of n² elements per factor, at
  /// most ~55% of the dense payload for real layer sizes. The unpack step
  /// mirrors the triangle, so factors also stay exactly symmetric.
  bool symmetric_comm = true;

  /// Wire precision of the factor exchange and decomposition allgather
  /// (lossy-compression extension, the paper's §VII future work): fp16 or
  /// bf16 payloads halve the bytes SymmetricPacker/rank-truncation leave,
  /// at the cost of quantising each rank's contribution once before the
  /// fp32 rank-order reduction (comm::Codec's encode-once contract). fp32
  /// (default) is a zero-cost identity passthrough. Thread and socket
  /// backends remain bitwise identical to each other at every setting;
  /// only the fp32-vs-compressed comparison is approximate. Note the
  /// encoded allreduce transports contributions (allgather-style) to keep
  /// the encode-once contract, so its wire advantage holds for small
  /// worlds (p ≲ 4) and shrinking decomposition allgathers at any p —
  /// see Communicator::allreduce_encoded for the cost analysis.
  comm::Precision factor_precision = comm::Precision::kFp32;

  /// Fusion-buffer capacity for the factor allreduce, in bytes.
  /// 0 (default) derives the capacity from comm::CostModel so each chunk
  /// stays bandwidth-dominated at the current world size.
  size_t fusion_capacity_bytes = 0;

  /// Route the factor allreduce through the trainer's comm::AsyncExecutor
  /// (when one is attached via set_async_executor) instead of a blocking
  /// fused allreduce, so factor exchange overlaps the tail of backprop and
  /// the preconditioning GEMMs. Falls back to the synchronous path when no
  /// executor is attached. Results are bitwise identical either way.
  bool overlap_comm = false;

  /// Sets both frequencies from the paper's single knob: eigendecompositions
  /// every `freq`, factors every `freq/10` (min 1).
  KfacOptions& with_update_freq(int freq) {
    DKFAC_CHECK(freq >= 1);
    inv_update_freq = freq;
    factor_update_freq = std::max(1, freq / 10);
    return *this;
  }

  void validate() const {
    DKFAC_CHECK(lr > 0.0f);
    DKFAC_CHECK(damping > 0.0f) << "K-FAC requires positive damping";
    DKFAC_CHECK(factor_decay > 0.0f && factor_decay <= 1.0f);
    DKFAC_CHECK(kl_clip > 0.0f);
    DKFAC_CHECK(factor_update_freq >= 1 && inv_update_freq >= 1);
    DKFAC_CHECK(eigen_rank_fraction > 0.0f && eigen_rank_fraction <= 1.0f)
        << "eigen_rank_fraction must be in (0, 1]";
    DKFAC_CHECK(fusion_capacity_bytes == 0 ||
                fusion_capacity_bytes >= sizeof(float))
        << "fusion_capacity_bytes must be 0 (cost-model derived) or hold at "
           "least one transport element";
    DKFAC_CHECK(factor_precision == comm::Precision::kFp32 ||
                factor_precision == comm::Precision::kFp16 ||
                factor_precision == comm::Precision::kBf16)
        << "factor_precision must be fp32, fp16, or bf16";
    DKFAC_CHECK(inv_update_freq % factor_update_freq == 0)
        << "eigendecomposition interval (" << inv_update_freq
        << ") must be a multiple of the factor interval (" << factor_update_freq
        << ") so updates always see fresh factors";
  }
};

}  // namespace dkfac::kfac
