#include "core/assignment.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.hpp"

namespace dkfac::kfac {

double WorkAssignment::load_of(int rank, const std::vector<int64_t>& dims) const {
  DKFAC_CHECK(dims.size() == owner.size());
  double load = 0.0;
  for (size_t f = 0; f < owner.size(); ++f) {
    if (owner[f] == rank) load += eig_cost(dims[f]);
  }
  return load;
}

double WorkAssignment::imbalance(const std::vector<int64_t>& dims) const {
  DKFAC_CHECK(workers >= 1);
  double total = 0.0;
  double worst = 0.0;
  for (int r = 0; r < workers; ++r) {
    const double load = load_of(r, dims);
    total += load;
    worst = std::max(worst, load);
  }
  if (total == 0.0) return 1.0;
  return worst / (total / workers);
}

WorkAssignment assign_round_robin(const std::vector<int64_t>& dims, int workers) {
  DKFAC_CHECK(workers >= 1);
  WorkAssignment a;
  a.workers = workers;
  a.owner.resize(dims.size());
  for (size_t f = 0; f < dims.size(); ++f) {
    a.owner[f] = static_cast<int>(f % static_cast<size_t>(workers));
  }
  return a;
}

WorkAssignment assign_layer_wise(const std::vector<int64_t>& dims, int workers) {
  DKFAC_CHECK(workers >= 1);
  DKFAC_CHECK(dims.size() % 2 == 0)
      << "layer-wise assignment expects two factors per layer";
  WorkAssignment a;
  a.workers = workers;
  a.owner.resize(dims.size());
  for (size_t f = 0; f < dims.size(); ++f) {
    const size_t layer = f / 2;
    a.owner[f] = static_cast<int>(layer % static_cast<size_t>(workers));
  }
  return a;
}

WorkAssignment assign_size_balanced(const std::vector<int64_t>& dims, int workers) {
  DKFAC_CHECK(workers >= 1);
  WorkAssignment a;
  a.workers = workers;
  a.owner.assign(dims.size(), 0);

  // Largest-first greedy: stable order (cost desc, then index asc) keeps
  // the result deterministic across ranks.
  std::vector<size_t> order(dims.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    const double cx = eig_cost(dims[x]);
    const double cy = eig_cost(dims[y]);
    if (cx != cy) return cx > cy;
    return x < y;
  });

  std::vector<double> load(static_cast<size_t>(workers), 0.0);
  for (size_t f : order) {
    const auto lightest =
        std::min_element(load.begin(), load.end()) - load.begin();
    a.owner[f] = static_cast<int>(lightest);
    load[static_cast<size_t>(lightest)] += eig_cost(dims[f]);
  }
  return a;
}

WorkAssignment make_assignment(DistributionStrategy strategy,
                               const std::vector<int64_t>& dims, int workers) {
  switch (strategy) {
    case DistributionStrategy::kLayerWise:
      return assign_layer_wise(dims, workers);
    case DistributionStrategy::kFactorWise:
      return assign_round_robin(dims, workers);
    case DistributionStrategy::kSizeBalanced:
      return assign_size_balanced(dims, workers);
  }
  DKFAC_CHECK(false) << "unknown distribution strategy";
  return {};
}

}  // namespace dkfac::kfac
