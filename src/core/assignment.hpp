// Factor → worker placement policies.
//
// Every rank computes the identical assignment from the (globally known)
// factor dimensions, so no coordination is needed — exactly how the paper
// assigns "factors to unique workers in a round-robin fashion" (Alg. 1,
// step 1) and how it proposes balancing by size as future work (§VI-C4).
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"

namespace dkfac::kfac {

/// Cost proxy for eigendecomposing an n×n factor: n³ (dense symmetric eig).
inline double eig_cost(int64_t dim) {
  return static_cast<double>(dim) * static_cast<double>(dim) *
         static_cast<double>(dim);
}

/// owner[f] = worker that eigendecomposes factor f.
struct WorkAssignment {
  std::vector<int> owner;
  int workers = 1;

  /// Indices owned by `rank`, in ascending order (the canonical packing
  /// order for the eigendecomposition allgather).
  std::vector<int64_t> owned_by(int rank) const {
    std::vector<int64_t> out;
    for (size_t f = 0; f < owner.size(); ++f) {
      if (owner[f] == rank) out.push_back(static_cast<int64_t>(f));
    }
    return out;
  }

  /// Σ eig_cost over the factors owned by `rank`.
  double load_of(int rank, const std::vector<int64_t>& dims) const;

  /// max load / mean load — 1.0 is perfectly balanced.
  double imbalance(const std::vector<int64_t>& dims) const;
};

/// Paper's greedy round-robin: factor f → rank f mod workers.
WorkAssignment assign_round_robin(const std::vector<int64_t>& dims, int workers);

/// Layer-wise (K-FAC-lw): layer i → rank i mod workers; both of a layer's
/// factors (indices 2i, 2i+1 in the flattened factor list) share an owner.
WorkAssignment assign_layer_wise(const std::vector<int64_t>& dims, int workers);

/// Largest-first greedy bin packing on eig_cost — the future-work policy.
WorkAssignment assign_size_balanced(const std::vector<int64_t>& dims, int workers);

/// Dispatch on strategy. `dims` is the flattened factor-dimension list
/// (A₀, G₁, A₁, G₂, ... — two entries per layer).
WorkAssignment make_assignment(DistributionStrategy strategy,
                               const std::vector<int64_t>& dims, int workers);

}  // namespace dkfac::kfac
