#include "core/preconditioner.hpp"

#include <cmath>

#include "comm/cost_model.hpp"
#include "comm/symmetric_packer.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"
#include "linalg/batch.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "obs/trace.hpp"

namespace dkfac::kfac {

namespace {

/// Fusion-buffer capacity for the factor allreduce: the explicit option
/// when set, otherwise the backend's own α–β cost model's bandwidth-
/// dominated chunk size for this world size. Validates first — this runs
/// in the member-init list, before the constructor body, so a bad option
/// set must surface as an options error rather than a low-level
/// fusion-buffer failure.
size_t factor_fusion_capacity(const KfacOptions& options,
                              const comm::Communicator& comm) {
  options.validate();
  if (options.fusion_capacity_bytes > 0) return options.fusion_capacity_bytes;
  return comm.cost_model().recommended_fusion_bytes(comm.size());
}

}  // namespace

KfacPreconditioner::KfacPreconditioner(nn::Layer& model, comm::Communicator& comm,
                                       KfacOptions options)
    : model_(model),
      comm_(comm),
      options_(options),
      fusion_(comm_, factor_fusion_capacity(options_, comm_)) {
  // options_ already validated by factor_fusion_capacity in the init list.
  for (nn::KfacCapturable* layer : model_.kfac_layers()) {
    LayerState state;
    state.layer = layer;
    state.a.dim = layer->kfac_a_dim();
    state.g.dim = layer->kfac_g_dim();
    layers_.push_back(std::move(state));
    factor_dims_.push_back(layer->kfac_a_dim());
    factor_dims_.push_back(layer->kfac_g_dim());
  }
  DKFAC_CHECK(!layers_.empty())
      << "model contains no K-FAC-eligible (Linear/Conv2d) layers";
  assignment_ = make_assignment(options_.strategy, factor_dims_, comm_.size());
}

KfacPreconditioner::~KfacPreconditioner() {
  try {
    finish_factor_comm();
  } catch (...) {
    // Destructors must not throw; the executor keeps its error sticky for
    // whoever waits on it next.
  }
}

// Every runtime retune goes through the same validate() as construction, on
// a copy so a rejected value leaves the live options untouched.

void KfacPreconditioner::set_damping(float damping) {
  KfacOptions next = options_;
  next.damping = damping;
  next.validate();
  options_ = next;
}

void KfacPreconditioner::set_lr(float lr) {
  KfacOptions next = options_;
  next.lr = lr;
  next.validate();
  options_ = next;
}

void KfacPreconditioner::set_update_freqs(int factor_update_freq,
                                          int inv_update_freq) {
  KfacOptions next = options_;
  next.factor_update_freq = factor_update_freq;
  next.inv_update_freq = inv_update_freq;
  next.validate();
  options_ = next;
}

void KfacPreconditioner::set_async_executor(comm::AsyncExecutor* executor) {
  finish_factor_comm();
  executor_ = executor;
}

void KfacPreconditioner::step() {
  DKFAC_TRACE_SCOPE("kfac.step");
  report_ = {};

  // Straggler slack: shed this step's due factor + decomposition updates
  // (the paper's update-frequency-decay semantics as a one-shot skip).
  // Preconditioning below continues on the existing decompositions, so the
  // very first step — where none exist yet — must never be shed.
  const bool shed = skip_once_ && iteration_ > 0;
  skip_once_ = false;
  if (shed) {
    DKFAC_TRACE_SCOPE("kfac.factor_step_skipped");
    report_.factor_step_skipped = true;
  }

  if (!shed && iteration_ % options_.factor_update_freq == 0) {
    DKFAC_TRACE_SCOPE("kfac.factor_update");
    const auto start = Clock::now();
    // A factor exchange left in flight by the previous step must fold in
    // before this step's running-average update reads the covariances.
    finish_factor_comm();
    update_factors();
    report_.factors_updated = true;
    report_.factor_seconds = seconds_since(start);
  }

  if (!shed && iteration_ % options_.inv_update_freq == 0) {
    DKFAC_TRACE_SCOPE("kfac.decomposition");
    const auto start = Clock::now();
    finish_factor_comm();  // decomposition consumes the reduced factors
    update_decompositions();
    report_.decompositions_updated = true;
    report_.decomposition_seconds = seconds_since(start);
  }

  {
    DKFAC_TRACE_SCOPE("kfac.precondition");
    const auto start = Clock::now();
    if (options_.strategy == DistributionStrategy::kLayerWise) {
      // K-FAC-lw allgathers preconditioned gradients directly on the
      // communicator, which must not race the background pipeline.
      finish_factor_comm();
      precondition_layer_wise();
    } else {
      // K-FAC-opt preconditions locally — a pending factor exchange keeps
      // overlapping these GEMMs (and the next iteration's compute).
      precondition_factor_wise();
    }
    report_.precondition_seconds = seconds_since(start);
  }

  ++iteration_;
}

void KfacPreconditioner::update_factors() {
  {
    DKFAC_TRACE_SCOPE("kfac.factor_stats");
    // Local factor estimates folded into running averages (Eqs 16–17).
    const float xi = options_.factor_decay;
    for (LayerState& state : layers_) {
      Tensor a_new = state.layer->kfac_a_factor();
      Tensor g_new = state.layer->kfac_g_factor();
      if (!state.a.have_cov) {
        state.a.cov = std::move(a_new);
        state.g.cov = std::move(g_new);
        state.a.have_cov = state.g.have_cov = true;
      } else {
        state.a.cov.lerp_(1.0f - xi, xi, a_new);
        state.g.cov.lerp_(1.0f - xi, xi, g_new);
      }
    }
  }
  DKFAC_TRACE_SCOPE_NAMED(comm_span, "kfac.factor_comm");

  // Allreduce all factors — Algorithm 1 line 8. With symmetric_comm only
  // the upper triangle of each factor is shipped (n(n+1)/2 of n²
  // elements); with a lossy factor_precision the payload is additionally
  // codec-encoded to 16-bit before it enters the pipeline (quantised ONCE
  // on this rank; the collective gathers contributions verbatim and folds
  // in fp32 — see Communicator::allreduce_encoded). With an attached
  // executor and overlap_comm, views are submitted to the background
  // pipeline instead of reduced in place: the exchange overlaps the
  // preconditioning GEMMs and the next iteration's compute, and
  // finish_factor_comm() decodes/folds it in right before the next
  // consumer.
  //
  // Zero-copy transport: every staged representation lives in ONE arena
  // slot. Triangles are packed into it at their packed offsets; a lossy
  // precision then encodes each triangle IN PLACE to its encoded offset —
  // the encoded image of factors 0..f is never longer than their packed
  // image (two 16-bit elements per float), so the encoded prefix can only
  // shrink below the packed data it consumes (codec.hpp spells out the
  // aliasing proof). The per-factor views handed to the collective are
  // back-to-back slices of the slot, so the fusion buffer reduces the slot
  // memory directly — no staging copy — and finish_factor_comm() decodes
  // (descending, expanding backward) and unpacks from the same slot.
  uint64_t dense_bytes = 0;
  for (int64_t d : factor_dims_) {
    dense_bytes += static_cast<uint64_t>(d * d) * sizeof(float);
  }
  const bool async = executor_ != nullptr && options_.overlap_comm;
  const comm::Precision prec = options_.factor_precision;
  const int64_t num_factors = static_cast<int64_t>(factor_dims_.size());

  int64_t packed_elements = 0;
  int64_t encoded_elements = 0;
  uint64_t shipped_bytes = 0;
  for (int64_t f = 0; f < num_factors; ++f) {
    const int64_t count = factor_payload_elements(f);
    packed_elements += count;
    encoded_elements += comm::Codec::encoded_floats(count);
    shipped_bytes += comm::Codec::wire_bytes(count, prec);
  }
  const uint64_t packed_bytes =
      static_cast<uint64_t>(packed_elements) * sizeof(float);

  auto submit_view = [&](const comm::BufferView& view) {
    // Submitting per factor pipelines each view's reduction behind the
    // packing/encoding of the next one.
    if (async) {
      executor_->submit(view, comm::ReduceOp::kAverage);
    } else {
      fusion_.add(view);
    }
  };
  auto launch = [&]() {
    if (async) {
      // The executor's worker resolves the views while this thread keeps
      // computing: pin the arena so a stray reset cannot recycle the slot
      // under the in-flight collective.
      arena_.pin();
      factor_comm_pending_ = true;
    } else {
      fusion_.execute(comm::ReduceOp::kAverage);
      finish_factor_comm();  // shares the decode + unpack path
    }
  };

  if (prec == comm::Precision::kFp32 && !options_.symmetric_comm) {
    // Dense fp32 path: each factor's storage is reduced in place — no slot,
    // no staged representation at all.
    for (int64_t f = 0; f < num_factors; ++f) {
      submit_view(comm::BufferView(factor(f).cov.span()));
    }
    launch();
    report_.factor_comm_bytes = dense_bytes;
  } else {
    // Carve this exchange's slot. Same shape every exchange → the arena
    // rewind hands back the same block, allocation-free once warm.
    arena_.reset();
    const bool lossy = prec != comm::Precision::kFp32;
    // Dense-source lossy (!symmetric_comm) needs only the encoded image;
    // triangle sources need the full packed image (encode shrinks inside).
    const int64_t slot_floats =
        options_.symmetric_comm ? packed_elements : encoded_elements;
    exchange_slot_ = arena_.alloc(static_cast<size_t>(slot_floats), prec,
                                  options_.symmetric_comm
                                      ? comm::BufferLayout::kTrianglePacked
                                      : comm::BufferLayout::kEncoded);
    exchange_packed_ = options_.symmetric_comm;
    exchange_precision_ = prec;
    const std::span<float> slot = exchange_slot_.span();
    int64_t packed_offset = 0;
    int64_t encoded_offset = 0;
    for (int64_t f = 0; f < num_factors; ++f) {
      const int64_t count = factor_payload_elements(f);
      const int64_t enc_count = comm::Codec::encoded_floats(count);
      if (options_.symmetric_comm) {
        const std::span<float> triangle(slot.data() + packed_offset,
                                        static_cast<size_t>(count));
        comm::SymmetricPacker::pack(factor(f).cov, triangle);
        if (lossy) {
          // In-place shrink: encoded offset ≤ packed offset, always.
          comm::Codec::encode(
              triangle,
              slot.subspan(static_cast<size_t>(encoded_offset),
                           static_cast<size_t>(enc_count)),
              prec);
        }
      } else {
        comm::Codec::encode(
            factor(f).cov.span(),
            slot.subspan(static_cast<size_t>(encoded_offset),
                         static_cast<size_t>(enc_count)),
            prec);
      }
      if (lossy) {
        submit_view(exchange_slot_.subview(
            static_cast<size_t>(encoded_offset), static_cast<size_t>(enc_count),
            prec, comm::BufferLayout::kEncoded));
      } else {
        submit_view(exchange_slot_.subview(static_cast<size_t>(packed_offset),
                                           static_cast<size_t>(count)));
      }
      packed_offset += count;
      encoded_offset += enc_count;
    }
    exchange_live_ = true;
    launch();
    report_.factor_comm_bytes = lossy ? shipped_bytes : packed_bytes;
  }

  report_.factor_dense_bytes = dense_bytes;
  report_.factor_packed_bytes = packed_bytes;
  report_.factor_chunks = async ? 0 : fusion_.last_chunk_count();
  report_.factor_comm_async = async;
  comm_.record_factor_volume(dense_bytes, packed_bytes,
                             report_.factor_comm_bytes);
  if (comm_span.active()) {
    // When async, this span covers pack/encode/submit only — the wire time
    // shows up on the comm.worker timeline (comm.async.flush spans).
    comm_span.set_arg("bytes", report_.factor_comm_bytes);
    comm_span.set_arg("async", async ? 1 : 0);
  }
}

int64_t KfacPreconditioner::factor_payload_elements(int64_t f) const {
  const int64_t d = factor_dims_[static_cast<size_t>(f)];
  return options_.symmetric_comm ? comm::SymmetricPacker::packed_size(d)
                                 : d * d;
}

void KfacPreconditioner::finish_factor_comm() {
  if (!factor_comm_pending_ && !exchange_live_) return;
  DKFAC_TRACE_SCOPE("kfac.factor_wait");
  if (factor_comm_pending_) {
    DKFAC_CHECK(executor_ != nullptr)
        << "async factor exchange pending without an executor";
    factor_comm_pending_ = false;
    // Unpin on every exit path: wait() rethrows a sticky pipeline error,
    // and a pinned arena would then refuse the next exchange's reset.
    struct Unpin {
      comm::Arena& arena;
      ~Unpin() { arena.unpin(); }
    } unpin{arena_};
    executor_->wait();
  }
  if (!exchange_live_) return;  // dense fp32 path reduced in place — no slot
  exchange_live_ = false;
  // Fold-in straight from the exchange slot: every staged representation
  // of this exchange lives in that one allocation. Every rank decodes
  // identical bytes, so the covariances stay identical across ranks and
  // backends. The slot is NOT released — the next exchange's reset+alloc
  // of the same shape reuses the block, keeping malloc off the hot path
  // even on skip-heavy schedules.
  const std::span<float> slot = exchange_slot_.span();
  const int64_t num_factors = static_cast<int64_t>(factor_dims_.size());
  if (exchange_precision_ != comm::Precision::kFp32 && exchange_packed_) {
    // Lossy triangles expand IN PLACE from the slot's encoded prefix back
    // to the packed offsets. Decoding factor f writes [P_f, P_f+c_f),
    // reading [E_f, E_f+e_f) with E_f ≤ P_f — walking factors DESCENDING
    // (decode writes backward, see codec.hpp) means every write lands at
    // or above all still-undecoded encoded words.
    int64_t packed_end = 0;
    int64_t encoded_end = 0;
    for (int64_t f = 0; f < num_factors; ++f) {
      packed_end += factor_payload_elements(f);
      encoded_end += comm::Codec::encoded_floats(factor_payload_elements(f));
    }
    for (int64_t f = num_factors - 1; f >= 0; --f) {
      const int64_t count = factor_payload_elements(f);
      const int64_t enc_count = comm::Codec::encoded_floats(count);
      packed_end -= count;
      encoded_end -= enc_count;
      const std::span<float> triangle(slot.data() + packed_end,
                                      static_cast<size_t>(count));
      comm::Codec::decode(
          slot.subspan(static_cast<size_t>(encoded_end),
                       static_cast<size_t>(enc_count)),
          triangle, exchange_precision_);
      comm::SymmetricPacker::unpack(triangle, factor(f).cov);
    }
  } else if (exchange_precision_ != comm::Precision::kFp32) {
    // Lossy dense payloads decode straight into the covariance storage.
    int64_t encoded_offset = 0;
    for (int64_t f = 0; f < num_factors; ++f) {
      Tensor& cov = factor(f).cov;
      const int64_t enc_count =
          comm::Codec::encoded_floats(factor_payload_elements(f));
      comm::Codec::decode(
          slot.subspan(static_cast<size_t>(encoded_offset),
                       static_cast<size_t>(enc_count)),
          cov.span(), exchange_precision_);
      encoded_offset += enc_count;
    }
  } else {
    // fp32 triangles: mirror the reduced upper triangles back out.
    int64_t offset = 0;
    for (int64_t f = 0; f < num_factors; ++f) {
      Tensor& cov = factor(f).cov;
      const int64_t count = factor_payload_elements(f);
      comm::SymmetricPacker::unpack(
          std::span<const float>(slot.data() + offset,
                                 static_cast<size_t>(count)),
          cov);
      offset += count;
    }
  }
}

void KfacPreconditioner::decompose_factor(FactorState& state) const {
  DKFAC_CHECK(state.have_cov) << "decomposition requested before factors exist";
  if (options_.inverse_method == InverseMethod::kEigenDecomposition) {
    linalg::SymEig eig = linalg::sym_eig(state.cov);
    // Factors are PSD up to FP32 rounding; negative noise would make the
    // (υ_G υ_Aᵀ + γ) denominator lose positivity.
    eig.values.clamp_min_(0.0f);
    const int64_t kept = kept_rank(state.dim);
    if (kept < state.dim) {
      // Keep the top-`kept` eigenpairs (sym_eig sorts ascending, so the
      // last columns). Dropped directions behave as zero eigenvalues.
      Tensor q(Shape{state.dim, kept});
      Tensor lam(Shape{kept});
      const int64_t offset = state.dim - kept;
      for (int64_t i = 0; i < state.dim; ++i) {
        for (int64_t j = 0; j < kept; ++j) {
          q.at(i, j) = eig.vectors.at(i, offset + j);
        }
      }
      for (int64_t j = 0; j < kept; ++j) lam[j] = eig.values[offset + j];
      state.q = std::move(q);
      state.lam = std::move(lam);
    } else {
      state.q = std::move(eig.vectors);
      state.lam = std::move(eig.values);
    }
  } else {
    Tensor damped = state.cov;
    float gamma = options_.damping;
    if (options_.pi_damping) {
      // π-split: this factor's share of √γ is proportional to its average
      // eigenvalue (trace/dim). `pi_partner_trace_mean` holds the other
      // factor's trace/dim, stashed by update_decompositions().
      const float own = factor_trace_mean(state.cov);
      const float partner = state.pi_partner_trace_mean;
      DKFAC_CHECK(partner > 0.0f) << "π-damping requires partner trace";
      const float pi = std::sqrt(std::max(own, 1e-12f) / partner);
      gamma = std::sqrt(options_.damping) * pi;
    }
    linalg::add_diagonal(damped, gamma);
    state.q = linalg::spd_inverse(damped);
    state.lam = Tensor(Shape{0});
  }
  state.have_decomp = true;
}

float KfacPreconditioner::factor_trace_mean(const Tensor& cov) {
  const int64_t n = cov.dim(0);
  double trace = 0.0;
  for (int64_t i = 0; i < n; ++i) trace += cov.at(i, i);
  return std::max(static_cast<float>(trace / std::max<int64_t>(n, 1)), 1e-12f);
}

int64_t KfacPreconditioner::kept_rank(int64_t dim) const {
  if (options_.inverse_method != InverseMethod::kEigenDecomposition ||
      options_.eigen_rank_fraction >= 1.0f) {
    return dim;
  }
  const auto kept = static_cast<int64_t>(
      std::ceil(options_.eigen_rank_fraction * static_cast<float>(dim)));
  return std::max<int64_t>(1, std::min(kept, dim));
}

int64_t KfacPreconditioner::decomp_payload(int64_t dim) const {
  if (options_.inverse_method != InverseMethod::kEigenDecomposition) {
    return dim * dim;  // inverse matrix only
  }
  const int64_t kept = kept_rank(dim);
  return dim * kept + kept;  // truncated Q and Λ
}

bool KfacPreconditioner::pack_decompositions() const {
  // The explicit inverse (X+γI)⁻¹ is symmetric, so its allgather payload
  // triangle-packs exactly like the factors themselves. Eigenvector
  // matrices are not symmetric — the eigen path always ships dense.
  return options_.inverse_method == InverseMethod::kExplicitInverse &&
         options_.symmetric_comm;
}

int64_t KfacPreconditioner::shipped_decomp_payload(int64_t dim) const {
  if (pack_decompositions()) return comm::SymmetricPacker::packed_size(dim);
  return decomp_payload(dim);
}

void KfacPreconditioner::update_decompositions() {
  const int rank = comm_.rank();
  if (options_.pi_damping &&
      options_.inverse_method == InverseMethod::kExplicitInverse) {
    // Every rank has both covariances (they are allreduced), so the π
    // split is computable wherever the factor is decomposed.
    for (LayerState& state : layers_) {
      state.a.pi_partner_trace_mean = factor_trace_mean(state.g.cov);
      state.g.pi_partner_trace_mean = factor_trace_mean(state.a.cov);
    }
  }
  // Hand every owned factor to the batched scheduler: large factors keep
  // the machine to themselves (intra-matrix kernels), small ones run
  // concurrently across the team. Results are identical to the plain
  // serial loop for any thread count — only wall-clock changes.
  std::vector<linalg::BatchTask> tasks;
  for (int64_t f = 0; f < static_cast<int64_t>(factor_dims_.size()); ++f) {
    if (assignment_.owner[static_cast<size_t>(f)] == rank) {
      FactorState& state = factor(f);
      tasks.push_back(
          {state.dim, [this, &state] { decompose_factor(state); }});
    }
  }
  const linalg::BatchReport batch = linalg::run_decomposition_batch(tasks);
  report_.decomp_intra_tasks = batch.intra_tasks;
  report_.decomp_inter_tasks = batch.inter_tasks;
  // K-FAC-lw keeps decompositions on the owner and exchanges preconditioned
  // gradients instead (every iteration); K-FAC-opt shares decompositions
  // now so preconditioning is local forever after (Algorithm 1 line 18).
  if (options_.strategy != DistributionStrategy::kLayerWise) {
    exchange_decompositions();
  }
}

void KfacPreconditioner::exchange_decompositions() {
  if (comm_.size() == 1) return;
  DKFAC_TRACE_SCOPE("kfac.decomp_exchange");
  const int rank = comm_.rank();
  const bool packed = pack_decompositions();

  // Pack owned decompositions in ascending factor order. Explicit inverses
  // are symmetric, so with symmetric_comm on they travel as upper
  // triangles — n(n+1)/2 of n² floats per factor (ROADMAP ~2× item).
  std::vector<float> send;
  for (int64_t f : assignment_.owned_by(rank)) {
    const FactorState& state = factor(f);
    DKFAC_CHECK(state.have_decomp);
    if (packed) {
      const size_t offset = send.size();
      const int64_t count = comm::SymmetricPacker::packed_size(state.dim);
      send.resize(offset + static_cast<size_t>(count));
      comm::SymmetricPacker::pack(
          state.q, std::span<float>(send.data() + offset,
                                    static_cast<size_t>(count)));
      continue;
    }
    send.insert(send.end(), state.q.data(), state.q.data() + state.q.numel());
    if (options_.inverse_method == InverseMethod::kEigenDecomposition) {
      send.insert(send.end(), state.lam.data(),
                  state.lam.data() + state.lam.numel());
    }
  }

  const comm::Precision prec = options_.factor_precision;
  std::vector<float> gathered;
  const uint64_t shipped_send_bytes =
      comm::Codec::wire_bytes(static_cast<int64_t>(send.size()), prec);
  if (prec == comm::Precision::kFp32) {
    gathered = comm_.allgather(send);
  } else {
    // Lossy precision: this rank's payload is quantised once, the encoded
    // blocks are gathered verbatim, and every rank decodes every block —
    // its own included, so owners adopt the exact bytes their peers see
    // and the replicas never diverge. The decoded buffer reproduces the
    // fp32 layout, so the unpack loop below is precision-agnostic.
    std::vector<float> encoded_send(static_cast<size_t>(
        comm::Codec::encoded_floats(static_cast<int64_t>(send.size()))));
    comm::Codec::encode(send, encoded_send, prec);
    const std::vector<float> encoded_gathered = comm_.allgather(encoded_send);
    // Per-rank element counts are a pure function of the assignment; size
    // the decoded buffer once instead of reallocating per rank.
    std::vector<int64_t> rank_elements(static_cast<size_t>(comm_.size()), 0);
    int64_t total_elements = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      for (int64_t f : assignment_.owned_by(r)) {
        rank_elements[static_cast<size_t>(r)] +=
            shipped_decomp_payload(factor(f).dim);
      }
      total_elements += rank_elements[static_cast<size_t>(r)];
    }
    gathered.resize(static_cast<size_t>(total_elements));
    size_t encoded_offset = 0;
    size_t decoded_offset = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      const int64_t elements = rank_elements[static_cast<size_t>(r)];
      const auto encoded_count =
          static_cast<size_t>(comm::Codec::encoded_floats(elements));
      DKFAC_CHECK(encoded_offset + encoded_count <= encoded_gathered.size())
          << "encoded decomposition gather underflow";
      comm::Codec::decode(
          std::span<const float>(encoded_gathered.data() + encoded_offset,
                                 encoded_count),
          std::span<float>(gathered.data() + decoded_offset,
                           static_cast<size_t>(elements)),
          prec);
      encoded_offset += encoded_count;
      decoded_offset += static_cast<size_t>(elements);
    }
    DKFAC_CHECK(encoded_offset == encoded_gathered.size())
        << "encoded decomposition gather leftover";
  }

  // Unpack rank by rank; each rank's segment holds its owned factors in
  // ascending order, so the layout is fully determined by the assignment.
  // At fp32 this rank's own segment is skipped (it already holds the exact
  // decomposition it sent); at a lossy precision it is unpacked like any
  // other so all ranks hold the identical quantised decomposition.
  size_t offset = 0;
  for (int r = 0; r < comm_.size(); ++r) {
    for (int64_t f : assignment_.owned_by(r)) {
      FactorState& state = factor(f);
      const int64_t d = state.dim;
      if (r == rank && prec == comm::Precision::kFp32) {
        offset += static_cast<size_t>(shipped_decomp_payload(d));
        continue;  // already have our own
      }
      DKFAC_CHECK(offset + static_cast<size_t>(shipped_decomp_payload(d)) <=
                  gathered.size())
          << "decomposition gather underflow";
      if (packed) {
        const int64_t count = comm::SymmetricPacker::packed_size(d);
        state.q = Tensor(Shape{d, d});
        comm::SymmetricPacker::unpack(
            std::span<const float>(gathered.data() + offset,
                                   static_cast<size_t>(count)),
            state.q);
        offset += static_cast<size_t>(count);
        state.have_decomp = true;
        continue;
      }
      const int64_t kept = kept_rank(d);
      state.q = Tensor(Shape{d, options_.inverse_method ==
                                     InverseMethod::kEigenDecomposition
                                 ? kept
                                 : d});
      std::copy(gathered.data() + offset,
                gathered.data() + offset + state.q.numel(), state.q.data());
      offset += static_cast<size_t>(state.q.numel());
      if (options_.inverse_method == InverseMethod::kEigenDecomposition) {
        state.lam = Tensor(Shape{kept});
        std::copy(gathered.data() + offset, gathered.data() + offset + kept,
                  state.lam.data());
        offset += static_cast<size_t>(kept);
      }
      state.have_decomp = true;
    }
  }
  DKFAC_CHECK(offset == gathered.size()) << "decomposition gather leftover";

  // Dense-equivalent vs actually-shipped bytes for this rank's send — the
  // same per-rank convention allgather_bytes uses, so the shipped bytes
  // (triangle-packed, then codec-encoded at a lossy precision) really are
  // a subset of that counter.
  uint64_t dense_sent = 0;
  for (int64_t f : assignment_.owned_by(rank)) {
    const int64_t d = factor(f).dim;
    dense_sent += static_cast<uint64_t>(decomp_payload(d)) * sizeof(float);
  }
  comm_.record_decomp_volume(dense_sent, shipped_send_bytes);
}

Tensor KfacPreconditioner::precondition_layer(const LayerState& state,
                                              const Tensor& grad) const {
  DKFAC_CHECK(state.a.have_decomp && state.g.have_decomp)
      << state.layer->kfac_name() << ": preconditioning before decompositions";
  using linalg::matmul;
  using linalg::Trans;

  if (options_.inverse_method == InverseMethod::kExplicitInverse) {
    // Eq 12: (G+γI)⁻¹ · ∇L · (A+γI)⁻¹.
    return matmul(matmul(state.g.q, grad), state.a.q);
  }

  // Eqs 13–15. grad is [g_dim, a_dim]; Q matrices may be rank-truncated
  // (columns = kept eigenvectors).
  const float gamma = options_.damping;
  const int64_t kg = state.g.lam.dim(0);
  const int64_t ka = state.a.lam.dim(0);
  Tensor v1 = matmul(matmul(state.g.q, grad, Trans::kYes, Trans::kNo), state.a.q);
  Tensor v2 = v1;
  for (int64_t i = 0; i < kg; ++i) {
    for (int64_t j = 0; j < ka; ++j) {
      v2.at(i, j) /= state.g.lam[i] * state.a.lam[j] + gamma;
    }
  }
  if (kg == state.g.dim && ka == state.a.dim) {
    return matmul(matmul(state.g.q, v2), state.a.q, Trans::kNo, Trans::kYes);
  }
  // Truncated case: dropped eigendirections act as zero eigenvalues, so
  // every (i, j) pair outside the kept block has coefficient 1/γ:
  //   P = grad/γ + Q_G (V2 − V1/γ) Q_Aᵀ.
  Tensor correction = v2;
  correction.axpy_(-1.0f / gamma, v1);
  Tensor p = matmul(matmul(state.g.q, correction), state.a.q, Trans::kNo,
                    Trans::kYes);
  p.axpy_(1.0f / gamma, grad);
  return p;
}

float KfacPreconditioner::grad_scale(const std::vector<Tensor>& preconditioned,
                                     const std::vector<Tensor>& original) const {
  // Eq 18: ν = min(1, sqrt(κ / (α² Σᵢ Gᵢᵀ∇Lᵢ))).
  double vg_sum = 0.0;
  const double lr2 = static_cast<double>(options_.lr) * options_.lr;
  for (size_t i = 0; i < preconditioned.size(); ++i) {
    vg_sum += lr2 * preconditioned[i].dot(original[i]);
  }
  if (vg_sum <= 0.0) return 1.0f;
  return std::min(1.0f, static_cast<float>(std::sqrt(options_.kl_clip / vg_sum)));
}

void KfacPreconditioner::precondition_factor_wise() {
  // Algorithm 1 step 3: every rank preconditions every layer locally.
  std::vector<Tensor> preconditioned;
  std::vector<Tensor> original;
  preconditioned.reserve(layers_.size());
  original.reserve(layers_.size());
  for (LayerState& state : layers_) {
    Tensor grad = state.layer->kfac_grad();
    preconditioned.push_back(precondition_layer(state, grad));
    original.push_back(std::move(grad));
  }
  const float nu = grad_scale(preconditioned, original);
  for (size_t i = 0; i < layers_.size(); ++i) {
    preconditioned[i].scale_(nu);
    layers_[i].layer->set_kfac_grad(preconditioned[i]);
  }
}

void KfacPreconditioner::precondition_layer_wise() {
  // K-FAC-lw: layer owners precondition, then everyone receives the
  // preconditioned gradients — this exchange happens EVERY iteration,
  // which is exactly the communication the factor-wise scheme avoids.
  const int rank = comm_.rank();
  std::vector<Tensor> original;
  original.reserve(layers_.size());
  for (LayerState& state : layers_) {
    original.push_back(state.layer->kfac_grad());
  }

  std::vector<float> send;
  for (size_t l = 0; l < layers_.size(); ++l) {
    // Factor 2l's owner owns the layer (layer-wise assignment pairs both
    // factors on one rank).
    if (assignment_.owner[2 * l] != rank) continue;
    const Tensor p = precondition_layer(layers_[l], original[l]);
    send.insert(send.end(), p.data(), p.data() + p.numel());
  }

  std::vector<Tensor> preconditioned(layers_.size());
  if (comm_.size() == 1) {
    size_t offset = 0;
    for (size_t l = 0; l < layers_.size(); ++l) {
      const int64_t count = layers_[l].g.dim * layers_[l].a.dim;
      preconditioned[l] = Tensor(Shape{layers_[l].g.dim, layers_[l].a.dim});
      std::copy(send.data() + offset, send.data() + offset + count,
                preconditioned[l].data());
      offset += static_cast<size_t>(count);
    }
  } else {
    const std::vector<float> gathered = comm_.allgather(send);
    size_t offset = 0;
    for (int r = 0; r < comm_.size(); ++r) {
      for (size_t l = 0; l < layers_.size(); ++l) {
        if (assignment_.owner[2 * l] != r) continue;
        const int64_t count = layers_[l].g.dim * layers_[l].a.dim;
        DKFAC_CHECK(offset + static_cast<size_t>(count) <= gathered.size())
            << "layer-wise gather underflow";
        preconditioned[l] = Tensor(Shape{layers_[l].g.dim, layers_[l].a.dim});
        std::copy(gathered.data() + offset, gathered.data() + offset + count,
                  preconditioned[l].data());
        offset += static_cast<size_t>(count);
      }
    }
    DKFAC_CHECK(offset == gathered.size()) << "layer-wise gather leftover";
  }

  const float nu = grad_scale(preconditioned, original);
  for (size_t l = 0; l < layers_.size(); ++l) {
    preconditioned[l].scale_(nu);
    layers_[l].layer->set_kfac_grad(preconditioned[l]);
  }
}

}  // namespace dkfac::kfac
