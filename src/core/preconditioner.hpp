// KfacPreconditioner — the paper's contribution (§IV, Algorithm 1).
//
// Acts as a gradient preconditioner between backward() + gradient
// allreduce and the wrapped optimizer's step(), exactly as in the paper's
// Listing 1:
//
//     loss.backward();
//     comm.allreduce(gradients);          // optimizer.synchronize()
//     preconditioner.step(epoch);         // KFAC.step()  <-- this class
//     sgd.step();                         // optimizer.step()
//
// Responsibilities per step (Algorithm 1):
//   1. every `factor_update_freq` iterations: recompute Kronecker factors
//      from the layer hooks, fold into running averages (Eqs 16–17), and
//      allreduce them (one fused buffer, Horovod-style);
//   2. every `inv_update_freq` iterations: eigendecompose (or explicitly
//      invert) the factors this rank owns under the distribution strategy,
//      then allgather the decompositions (K-FAC-opt) — or nothing
//      (K-FAC-lw, which instead exchanges preconditioned gradients each
//      iteration);
//   3. every iteration: precondition gradients (Eqs 13–15 or Eq 11),
//      rescale by ν (Eq 18), and write back into the layer gradients.
//
// In skip iterations K-FAC-opt performs no communication at all — the
// property that drives its scaling advantage (paper §IV-C).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "comm/arena.hpp"
#include "comm/async_executor.hpp"
#include "comm/communicator.hpp"
#include "comm/fusion.hpp"
#include "core/assignment.hpp"
#include "core/options.hpp"
#include "nn/layer.hpp"

namespace dkfac::kfac {

class KfacPreconditioner {
 public:
  /// Discovers K-FAC-eligible layers (Linear, Conv2d) in `model`. Layers
  /// of other types are ignored and updated normally by the wrapped
  /// optimizer. `comm` must outlive the preconditioner.
  KfacPreconditioner(nn::Layer& model, comm::Communicator& comm,
                     KfacOptions options);

  /// Completes any in-flight async factor exchange: the executor's worker
  /// may still be reducing views into this object's staging buffer (e.g.
  /// during exception unwind between steps), so tearing down without
  /// draining would free memory out from under it.
  ~KfacPreconditioner();

  /// Preconditions the current gradients in place. Call once per training
  /// iteration, after gradients are averaged across ranks.
  void step();

  // ---- schedule hooks ----------------------------------------------------

  /// Damping decay (paper §V-C): the trainer lowers γ at fixed epochs.
  void set_damping(float damping);
  /// Keeps ν (Eq 18) consistent when the LR schedule changes the rate.
  void set_lr(float lr);
  /// Update-frequency decay (paper §V-C).
  void set_update_freqs(int factor_update_freq, int inv_update_freq);

  /// True when the NEXT step() is due to recompute and exchange factors —
  /// the steps a straggler would stall the group at.
  bool factor_update_due() const {
    return iteration_ % options_.factor_update_freq == 0;
  }

  /// Skips the next step's factor AND decomposition updates (the paper's
  /// update-frequency-decay semantics applied as one-shot straggler
  /// slack): a late rank's factor contribution is dropped for the step
  /// instead of stalling the collective; preconditioning continues on the
  /// existing decompositions. MUST be called collectively — every rank
  /// skips or none do, or the collective sequences desynchronise. Ignored
  /// on the very first step (no decomposition exists to fall back on).
  void skip_factor_update_once() { skip_once_ = true; }

  /// Attaches the trainer's background communication pipeline. With
  /// options().overlap_comm set, factor allreduces are submitted to
  /// `executor` (overlapping the preconditioning GEMMs and the next
  /// iteration's compute) instead of blocking; the reduced factors are
  /// folded in lazily, right before their next consumer. Pass nullptr to
  /// detach (any in-flight exchange is finished first). `executor` must
  /// outlive the preconditioner or be detached before destruction, and
  /// must wrap the same communicator.
  void set_async_executor(comm::AsyncExecutor* executor);

  // ---- introspection -------------------------------------------------------

  int64_t iteration() const { return iteration_; }
  const KfacOptions& options() const { return options_; }

  /// Combined allocator-traffic counters of this object's comm arenas (the
  /// factor exchange slot + the fusion staging arena).
  comm::ArenaStats arena_stats() const {
    comm::ArenaStats s = arena_.stats();
    s += fusion_.arena_stats();
    return s;
  }
  /// Declares warm-up over: any further comm-path heap growth counts as
  /// steady_state_allocs.
  void mark_steady_state() {
    arena_.mark_steady_state();
    fusion_.mark_steady_state();
  }

  const WorkAssignment& assignment() const { return assignment_; }
  size_t layer_count() const { return layers_.size(); }
  /// Flattened factor dimensions (A₀, G₁, A₁, G₂, ...).
  const std::vector<int64_t>& factor_dims() const { return factor_dims_; }

  struct StepReport {
    bool factors_updated = false;
    bool decompositions_updated = false;
    /// A due factor/decomposition update was shed by
    /// skip_factor_update_once() (straggler slack).
    bool factor_step_skipped = false;
    double factor_seconds = 0.0;
    double decomposition_seconds = 0.0;
    double precondition_seconds = 0.0;
    /// Factor-exchange reduction chain for this step (0 on skip
    /// iterations): bytes a dense n×n FP32 allreduce would ship, bytes
    /// after structural packing (triangles when `symmetric_comm` is on,
    /// else dense), and bytes actually handed to the collective after the
    /// precision codec (16-bit payloads at fp16/bf16, else equal to
    /// packed).
    uint64_t factor_dense_bytes = 0;
    uint64_t factor_packed_bytes = 0;
    uint64_t factor_comm_bytes = 0;
    /// Collectives the fused factor allreduce was split into (0 when the
    /// exchange ran asynchronously — the executor owns the batching).
    size_t factor_chunks = 0;
    /// True when the factor exchange was submitted to the AsyncExecutor
    /// instead of running synchronously.
    bool factor_comm_async = false;
    /// Decomposition-batch split for this step (0 on skip iterations):
    /// owned factors that ran one-at-a-time with intra-matrix kernel
    /// parallelism vs concurrently under serial kernels (see
    /// linalg::run_decomposition_batch).
    int64_t decomp_intra_tasks = 0;
    int64_t decomp_inter_tasks = 0;
  };
  const StepReport& last_report() const { return report_; }

 private:
  struct FactorState {
    int64_t dim = 0;
    Tensor cov;   // running-average Kronecker factor
    Tensor q;     // eigenvectors (eigen path) or (X+γI)⁻¹ (inverse path)
    Tensor lam;   // eigenvalues (eigen path only)
    bool have_cov = false;
    bool have_decomp = false;
    /// Partner factor's trace/dim, for the π-damping split.
    float pi_partner_trace_mean = 0.0f;
  };

  struct LayerState {
    nn::KfacCapturable* layer = nullptr;
    FactorState a;
    FactorState g;
  };

  FactorState& factor(int64_t f) {
    return (f % 2 == 0) ? layers_[static_cast<size_t>(f / 2)].a
                        : layers_[static_cast<size_t>(f / 2)].g;
  }

  void update_factors();
  /// Completes an in-flight asynchronous factor exchange: waits on the
  /// executor, decodes any lossy payload, and mirrors the packed triangles
  /// back into the covariance tensors. No-op when nothing is pending.
  void finish_factor_comm();
  /// FP32 elements factor `f` contributes to the exchange before the
  /// precision codec: its packed triangle with symmetric_comm, the dense
  /// matrix otherwise.
  int64_t factor_payload_elements(int64_t f) const;
  void update_decompositions();
  void decompose_factor(FactorState& state) const;
  /// trace(cov)/dim, floored away from zero (π-damping input).
  static float factor_trace_mean(const Tensor& cov);
  /// Eigenpairs kept for a factor of size `dim` (rank truncation).
  int64_t kept_rank(int64_t dim) const;
  /// Floats needed to publish one factor's decomposition (dense layout).
  int64_t decomp_payload(int64_t dim) const;
  /// Floats actually shipped per decomposition: triangle-packed when the
  /// explicit inverse (symmetric) is exchanged with symmetric_comm on.
  int64_t shipped_decomp_payload(int64_t dim) const;
  /// True when decompositions travel as packed upper triangles.
  bool pack_decompositions() const;
  void exchange_decompositions();
  Tensor precondition_layer(const LayerState& state, const Tensor& grad) const;
  void precondition_factor_wise();
  void precondition_layer_wise();
  /// ν from Eq 18 given per-layer (preconditioned, original) pairs.
  float grad_scale(const std::vector<Tensor>& preconditioned,
                   const std::vector<Tensor>& original) const;

  nn::Layer& model_;
  comm::Communicator& comm_;
  KfacOptions options_;
  /// Capacity-chunked fused allreduce shared by every factor update.
  comm::FusionBuffer fusion_;
  /// Overlapped-communication pipeline (owned by the trainer); nullptr →
  /// synchronous exchange.
  comm::AsyncExecutor* executor_ = nullptr;
  /// Owns the factor-exchange slot: ONE allocation per exchange holding
  /// the whole pipeline in place — triangles are packed into it, the codec
  /// encodes them in place inside it (encoded image at or below the packed
  /// image, see codec.hpp), the collective reduces it directly, and decode
  /// + unpack read it back out. reset() + alloc() of the same shape every
  /// exchange reuses the same block forever: zero steady-state heap
  /// allocations on the factor path.
  comm::Arena arena_;
  /// The slot carved for the current exchange (empty when none is live).
  comm::BufferView exchange_slot_;
  /// exchange_slot_ holds reduced payloads finish_factor_comm() has not
  /// yet folded into the covariances.
  bool exchange_live_ = false;
  /// The live exchange's layout: triangle-packed source (symmetric_comm)?
  bool exchange_packed_ = false;
  /// The live exchange's wire precision (fp32 → no codec stage in slot).
  comm::Precision exchange_precision_ = comm::Precision::kFp32;
  /// An asynchronous factor exchange is in flight (the executor is still
  /// reducing views of exchange_slot_ — the arena is pinned meanwhile).
  bool factor_comm_pending_ = false;
  std::vector<LayerState> layers_;
  std::vector<int64_t> factor_dims_;
  WorkAssignment assignment_;
  int64_t iteration_ = 0;
  /// One-shot straggler slack: the next due factor/decomp update is shed.
  bool skip_once_ = false;
  StepReport report_;
};

}  // namespace dkfac::kfac
