// Shared wall-clock timing helpers (steady, monotonic).
#pragma once

#include <chrono>

namespace dkfac {

using Clock = std::chrono::steady_clock;

inline double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace dkfac
