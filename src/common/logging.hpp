// Minimal leveled logging to stderr. No global state beyond the level;
// intended for examples and benches, not hot loops.
#pragma once

#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

namespace dkfac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel& log_level();

namespace detail {

std::mutex& log_mutex();

class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  ~LogLine() {
    if (level_ >= log_level()) {
      std::lock_guard<std::mutex> lock(log_mutex());
      std::cerr << stream_.str() << "\n";
    }
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace dkfac

#define DKFAC_LOG_DEBUG ::dkfac::detail::LogLine(::dkfac::LogLevel::kDebug, "debug")
#define DKFAC_LOG_INFO ::dkfac::detail::LogLine(::dkfac::LogLevel::kInfo, "info")
#define DKFAC_LOG_WARN ::dkfac::detail::LogLine(::dkfac::LogLevel::kWarn, "warn")
#define DKFAC_LOG_ERROR ::dkfac::detail::LogLine(::dkfac::LogLevel::kError, "error")
