// Minimal leveled logging to stderr. No global state beyond the level;
// intended for examples and benches, not hot loops.
#pragma once

#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace dkfac {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel& log_level();

/// Parses "debug" / "info" / "warn" / "error" (case-sensitive);
/// std::nullopt for anything else so callers can reject bad flags.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Canonical name for a level, matching what parse_log_level accepts.
const char* log_level_name(LogLevel level);

namespace detail {

std::mutex& log_mutex();

class LogLine {
 public:
  // The level gate lives here, not in the destructor: a dropped line must
  // not pay for formatting its operands either.
  LogLine(LogLevel level, const char* tag)
      : active_(level >= log_level()) {
    if (active_) stream_ << "[" << tag << "] ";
  }

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (active_) stream_ << value;
    return *this;
  }

  ~LogLine() {
    if (active_) {
      std::lock_guard<std::mutex> lock(log_mutex());
      std::cerr << stream_.str() << "\n";
    }
  }

 private:
  bool active_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace dkfac

#define DKFAC_LOG_DEBUG ::dkfac::detail::LogLine(::dkfac::LogLevel::kDebug, "debug")
#define DKFAC_LOG_INFO ::dkfac::detail::LogLine(::dkfac::LogLevel::kInfo, "info")
#define DKFAC_LOG_WARN ::dkfac::detail::LogLine(::dkfac::LogLevel::kWarn, "warn")
#define DKFAC_LOG_ERROR ::dkfac::detail::LogLine(::dkfac::LogLevel::kError, "error")
