// Error handling primitives shared by every dkfac library.
//
// All contract violations throw dkfac::Error with a message that includes
// the failing expression and source location; callers that can recover
// catch Error, everything else is allowed to propagate to main().
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dkfac {

/// Exception type thrown on any dkfac contract violation.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

/// Stream-composable message builder used by the DKFAC_CHECK macro.
/// Collects `<<`-ed parts and throws on conversion via fail().
class CheckMessage {
 public:
  CheckMessage(const char* expr, const char* file, int line) {
    stream_ << file << ":" << line << ": check failed: (" << expr << ")";
  }

  template <typename T>
  CheckMessage& operator<<(const T& value) {
    if (!augmented_) {
      stream_ << " — ";
      augmented_ = true;
    }
    stream_ << value;
    return *this;
  }

  [[noreturn]] void fail() const { throw Error(stream_.str()); }

 private:
  std::ostringstream stream_;
  bool augmented_ = false;
};

}  // namespace detail
}  // namespace dkfac

/// Precondition/invariant check: throws dkfac::Error when `cond` is false.
/// Additional context can be streamed:  DKFAC_CHECK(n > 0) << "n=" << n;
#define DKFAC_CHECK(cond)                                                \
  if (cond) {                                                            \
  } else                                                                 \
    ::dkfac::detail::CheckThrower{} =                                    \
        ::dkfac::detail::CheckMessage(#cond, __FILE__, __LINE__)

namespace dkfac::detail {

/// Assignment sink that triggers the throw after the message is complete.
struct CheckThrower {
  [[noreturn]] void operator=(const CheckMessage& msg) const { msg.fail(); }
};

}  // namespace dkfac::detail
