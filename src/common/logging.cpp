#include "common/logging.hpp"

namespace dkfac {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

namespace detail {

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace detail
}  // namespace dkfac
