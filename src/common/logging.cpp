#include "common/logging.hpp"

namespace dkfac {

LogLevel& log_level() {
  static LogLevel level = LogLevel::kInfo;
  return level;
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  return std::nullopt;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "info";
}

namespace detail {

std::mutex& log_mutex() {
  static std::mutex mutex;
  return mutex;
}

}  // namespace detail
}  // namespace dkfac
