// Householder tridiagonalization (stage 1 of sym_eig).
//
// Two paths, selected on kTridiagBlockedMin:
//
//   - unblocked: the EISPACK tred2-style reduction with the Q accumulation
//     fused in — O(n²)-per-step loops parallelized row-wise. Best for
//     small factors where panel machinery costs more than it saves.
//   - blocked compact-WY (dsytrd/dlatrd shape): reduce a kTridiagPanel-wide
//     panel at a time, representing its reflectors as I − V·T·Vᵀ. Within
//     the panel only single columns are updated (Level-2 symmetric matvec
//     plus V/W compensation terms); the trailing submatrix then takes one
//     rank-2·nb update A −= V·Wᵀ + W·Vᵀ through the packed fp64 gemm
//     driver — that is where ~half the 4n³/3 flops land, at Level-3 speed.
//     Q is formed afterwards by applying the panels to the identity in
//     descending order, again as gemms.
//
// Determinism: the matvec/compensation loops give each output element to
// exactly one thread with fixed-order inner sums; everything else is the
// deterministic gemm driver — so results are bitwise invariant to
// OMP_NUM_THREADS.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/eigen_detail.hpp"
#include "linalg/gemm_driver.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg::detail {

namespace {

bool tridiag_parallel(int64_t n) {
  return parallel_kernels_allowed() && n >= 96;
}

// Unblocked Householder reduction with fused Q accumulation (EISPACK tred2
// restructured for row-parallel loops). On exit `v` holds Q, `d` the
// diagonal, `e` the off-diagonal in the clean e[i] = T(i, i+1) layout.
void tridiagonalize_unblocked(double* v, int64_t n, double* d, double* e_out) {
  auto V = [&](int64_t i, int64_t j) -> double& { return v[i * n + j]; };
  const bool par = tridiag_parallel(n);
  // EISPACK layout during the reduction: e[i] = T(i-1, i), e[0] unused.
  std::vector<double> e(static_cast<size_t>(n), 0.0);

  for (int64_t j = 0; j < n; ++j) d[j] = V(n - 1, j);

  for (int64_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (int64_t k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (int64_t j = 0; j < i; ++j) {
        d[j] = V(i - 1, j);
        V(i, j) = 0.0;
        V(j, i) = 0.0;
      }
    } else {
      for (int64_t k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;

      // e = A·d over the still-symmetric leading i×i block, which the
      // reduction keeps valid in the LOWER triangle only: row j left of the
      // diagonal, column j below it. Parallel over j — every e[j] is one
      // thread's fixed ascending-k sum. Also stashes d into column i
      // (V(j,i) = d[j]) as the original interleaved loop did.
#pragma omp parallel for schedule(static) if (par)
      for (int64_t j = 0; j < i; ++j) {
        const double* vrow = &v[static_cast<size_t>(j * n)];
        double sum = 0.0;
        for (int64_t k = 0; k <= j; ++k) sum += vrow[k] * d[k];
        for (int64_t k = j + 1; k < i; ++k) sum += v[k * n + j] * d[k];
        e[static_cast<size_t>(j)] = sum;
        V(j, i) = d[j];
      }
      f = 0.0;
      for (int64_t j = 0; j < i; ++j) {
        e[static_cast<size_t>(j)] /= h;
        f += e[static_cast<size_t>(j)] * d[j];
      }
      const double hh = f / (h + h);
      for (int64_t j = 0; j < i; ++j) e[static_cast<size_t>(j)] -= hh * d[j];
      // Symmetric rank-2 update of the lower triangle: column j is an
      // independent strip, each element written exactly once.
#pragma omp parallel for schedule(static) if (par)
      for (int64_t j = 0; j < i; ++j) {
        const double fj = d[j];
        const double gj = e[static_cast<size_t>(j)];
        for (int64_t k = j; k <= i - 1; ++k) {
          V(k, j) -= (fj * e[static_cast<size_t>(k)] + gj * d[k]);
        }
      }
      for (int64_t j = 0; j < i; ++j) {
        d[j] = V(i - 1, j);
        V(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations (Q back-transform). For each Householder
  // vector (column i+1), every accumulated column j ≤ i is updated
  // independently: g = Σ_k V(k,i+1)·V(k,j) then V(·,j) -= g·d — parallel
  // over j with fixed-order sums.
  for (int64_t i = 0; i < n - 1; ++i) {
    V(n - 1, i) = V(i, i);
    V(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (int64_t k = 0; k <= i; ++k) d[k] = V(k, i + 1) / h;
#pragma omp parallel for schedule(static) if (par && i >= 96)
      for (int64_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (int64_t k = 0; k <= i; ++k) g += V(k, i + 1) * V(k, j);
        for (int64_t k = 0; k <= i; ++k) V(k, j) -= g * d[k];
      }
    }
    for (int64_t k = 0; k <= i; ++k) V(k, i + 1) = 0.0;
  }
  for (int64_t j = 0; j < n; ++j) {
    d[j] = V(n - 1, j);
    V(n - 1, j) = 0.0;
  }
  V(n - 1, n - 1) = 1.0;

  for (int64_t i = 0; i + 1 < n; ++i) e_out[i] = e[static_cast<size_t>(i + 1)];
}

/// Mirrors the upper triangle of the m×m block at `a` (leading dim ld)
/// into its lower triangle, restoring full symmetric storage after an
/// upper-only rank-2nb update.
void mirror_upper_to_lower(double* a, int64_t ld, int64_t m, bool par) {
#pragma omp parallel for schedule(static) if (par && m >= 96)
  for (int64_t i = 1; i < m; ++i) {
    for (int64_t j = 0; j < i; ++j) a[i * ld + j] = a[j * ld + i];
  }
}

// Tile edge for the symmetric matvec: 64×64 doubles = 32 KiB, L1-resident
// while both the row-block and column-block products stream through it.
constexpr int64_t kSymvTile = 64;

// y = A·v for symmetric A (full storage, leading dimension lda) of order
// m. Tiled so each super-diagonal tile is streamed exactly once: it
// contributes T·v to its row block directly and Tᵀ·v into per-tile-row
// scratch (`yt`, nt×m) that folds afterwards in ascending tile order.
// This halves memory traffic versus a dense row sweep — the dominant cost
// of the reduction once the trailing block outgrows cache — and every
// output element keeps a fixed accumulation order (diagonal tile, right
// tiles ascending, transposed partials ascending) for any thread count.
void sym_matvec_tiled(const double* a, int64_t lda, int64_t m,
                      const double* v, double* y, double* yt, bool par) {
  const int64_t nt = (m + kSymvTile - 1) / kSymvTile;
  if (nt > 1) {
    std::memset(yt, 0, static_cast<size_t>(nt * m) * sizeof(double));
  }
#pragma omp parallel for schedule(dynamic, 1) if (par && nt > 2)
  for (int64_t bi = 0; bi < nt; ++bi) {
    const int64_t i0 = bi * kSymvTile;
    const int64_t i1 = std::min(i0 + kSymvTile, m);
    double* yti = yt + bi * m;
    for (int64_t i = i0; i < i1; ++i) {
      const double* arow = a + i * lda;
      double s = 0.0;
#pragma omp simd reduction(+ : s)
      for (int64_t k = i0; k < i1; ++k) s += arow[k] * v[k];
      y[i] = s;
    }
    for (int64_t bj = bi + 1; bj < nt; ++bj) {
      const int64_t j0 = bj * kSymvTile;
      const int64_t j1 = std::min(j0 + kSymvTile, m);
      for (int64_t i = i0; i < i1; ++i) {
        const double* arow = a + i * lda;
        const double vi = v[i];
        double s = 0.0;
#pragma omp simd reduction(+ : s)
        for (int64_t k = j0; k < j1; ++k) {
          const double aik = arow[k];
          s += aik * v[k];
          yti[k] += aik * vi;
        }
        y[i] += s;
      }
    }
  }
#pragma omp parallel for schedule(static) if (par && m >= 192)
  for (int64_t i = 0; i < m; ++i) {
    double acc = y[i];
    for (int64_t b = 0; b < i / kSymvTile; ++b) acc += yt[b * m + i];
    y[i] = acc;
  }
}

// Blocked compact-WY reduction. `a` holds the symmetric matrix in full
// storage on entry and Q on exit; vstore/tau capture the reflectors.
void tridiagonalize_blocked(double* a, int64_t n, double* d, double* e) {
  const int64_t nb_max = kTridiagPanel;
  const bool par = tridiag_parallel(n);
  const int64_t num_panels = (n - 1 + nb_max - 1) / nb_max;

  // Reflectors in panel-blocked row-major layout: panel p's block is
  // n×nb_max at vstore + p·n·nb_max, reflector jj of the panel in column
  // jj (rows j+1..n, unit head stored explicitly). Row-major panels keep
  // the per-row compensation sums over t contiguous — with a flat n×n
  // column layout those loops are stride-n gathers and dominate the whole
  // reduction.
  std::vector<double> vstore(
      static_cast<size_t>(num_panels * n * nb_max), 0.0);
  std::vector<double> tau(static_cast<size_t>(n), 0.0);
  std::vector<double> wpanel(static_cast<size_t>(n * nb_max), 0.0);
  std::vector<double> vcol(static_cast<size_t>(n));
  std::vector<double> wcol(static_cast<size_t>(n));
  std::vector<double> scol(static_cast<size_t>(n));
  const int64_t nt_max = (n - 1 + kSymvTile - 1) / kSymvTile;
  std::vector<double> ytbuf(static_cast<size_t>(nt_max * (n - 1)));
  std::vector<double> tmp1(static_cast<size_t>(nb_max));
  std::vector<double> tmp2(static_cast<size_t>(nb_max));

  for (int64_t k0 = 0; k0 + 1 < n; k0 += nb_max) {
    const int64_t p = k0 / nb_max;
    const int64_t nb = std::min(nb_max, n - 1 - k0);
    double* vpanel = vstore.data() + p * n * nb_max;
    std::memset(wpanel.data(), 0,
                static_cast<size_t>(n * nb_max) * sizeof(double));

    for (int64_t jj = 0; jj < nb; ++jj) {
      const int64_t j = k0 + jj;
      const int64_t m = n - 1 - j;  // reflector length

      // Bring column j (rows j..n) up to date with this panel's previous
      // reflectors: a(i,j) -= Σ_t V(i,t)·W(j,t) + W(i,t)·V(j,t).
      if (jj > 0) {
        const double* vrj = vpanel + j * nb_max;
        const double* wrj = wpanel.data() + j * nb_max;
        for (int64_t i = j; i < n; ++i) {
          const double* vri = vpanel + i * nb_max;
          const double* wri = wpanel.data() + i * nb_max;
          double corr = 0.0;
          for (int64_t t = 0; t < jj; ++t) {
            corr += vri[t] * wrj[t] + wri[t] * vrj[t];
          }
          a[i * n + j] -= corr;
        }
      }
      d[j] = a[j * n + j];

      // Householder vector zeroing a(j+2.., j): x = a(j+1.., j).
      const double* x = a + (j + 1) * n + j;
      double norm2 = 0.0;
      for (int64_t i = 0; i < m; ++i) norm2 += x[i * n] * x[i * n];
      const double alpha = x[0];
      if (norm2 == 0.0) {
        e[j] = 0.0;
        tau[j] = 0.0;
        vpanel[(j + 1) * nb_max + jj] = 1.0;
        continue;
      }
      const double beta = -std::copysign(std::sqrt(norm2), alpha);
      tau[j] = (beta - alpha) / beta;
      const double inv = 1.0 / (alpha - beta);
      vcol[0] = 1.0;
      for (int64_t i = 1; i < m; ++i) vcol[i] = x[i * n] * inv;
      for (int64_t i = 0; i < m; ++i) {
        vpanel[(j + 1 + i) * nb_max + jj] = vcol[i];
      }
      e[j] = beta;

      // w = tau·(A_true·v) − ½tau·(wᵀv)·v, with A_true reconstructed from
      // the stored (stale-within-panel) trailing block plus the V/W
      // compensation terms tmp1 = Wᵀv, tmp2 = Vᵀv.
      for (int64_t t = 0; t < jj; ++t) tmp1[t] = tmp2[t] = 0.0;
      for (int64_t i = 0; i < m; ++i) {
        const double vi = vcol[i];
        const double* wri = wpanel.data() + (j + 1 + i) * nb_max;
        const double* vri = vpanel + (j + 1 + i) * nb_max;
        for (int64_t t = 0; t < jj; ++t) {
          tmp1[t] += wri[t] * vi;
          tmp2[t] += vri[t] * vi;
        }
      }
      sym_matvec_tiled(a + (j + 1) * n + (j + 1), n, m, vcol.data(),
                       scol.data(), ytbuf.data(), par);
#pragma omp parallel for schedule(static) if (par && m >= 96)
      for (int64_t i = 0; i < m; ++i) {
        const double* vri = vpanel + (j + 1 + i) * nb_max;
        const double* wri = wpanel.data() + (j + 1 + i) * nb_max;
        double corr = 0.0;
        for (int64_t t = 0; t < jj; ++t) {
          corr += vri[t] * tmp1[t] + wri[t] * tmp2[t];
        }
        wcol[i] = tau[j] * (scol[i] - corr);
      }
      double wv = 0.0;
      for (int64_t i = 0; i < m; ++i) wv += wcol[i] * vcol[i];
      const double half = 0.5 * tau[j] * wv;
      for (int64_t i = 0; i < m; ++i) {
        wpanel[(j + 1 + i) * nb_max + jj] = wcol[i] - half * vcol[i];
      }
    }

    // Trailing rank-2·nb update A[k1:, k1:] −= V·Wᵀ + W·Vᵀ: two
    // upper-triangle gemms through the packed driver, then a mirror to
    // restore full symmetric storage for the next panel's matvecs.
    const int64_t k1 = k0 + nb;
    const int64_t mt = n - k1;
    if (mt > 0) {
      const OpViewT<double> vsub{vpanel + k1 * nb_max, nb_max, false};
      const OpViewT<double> vsub_t{vpanel + k1 * nb_max, nb_max, true};
      const OpViewT<double> wsub{wpanel.data() + k1 * nb_max, nb_max, false};
      const OpViewT<double> wsub_t{wpanel.data() + k1 * nb_max, nb_max, true};
      double* atrail = a + k1 * n + k1;
      gemm_driver<double>(-1.0, vsub, wsub_t, atrail, n, mt, mt, nb,
                          /*upper_only=*/true);
      gemm_driver<double>(-1.0, wsub, vsub_t, atrail, n, mt, mt, nb,
                          /*upper_only=*/true);
      mirror_upper_to_lower(atrail, n, mt, par);
    }
  }
  d[n - 1] = a[(n - 1) * n + (n - 1)];

  // Form Q = H_0·H_1···H_{n-2} in place: seed the identity, then apply
  // each panel's I − V·T·Vᵀ from the left in descending panel order. A
  // panel only touches rows/columns k0+1..n (columns ≤ k0 are still unit
  // vectors at that point), so the gemms shrink as the sweep ascends.
  std::memset(a, 0, static_cast<size_t>(n * n) * sizeof(double));
  for (int64_t i = 0; i < n; ++i) a[i * n + i] = 1.0;

  std::vector<double> gram(static_cast<size_t>(nb_max * nb_max));
  std::vector<double> twy(static_cast<size_t>(nb_max * nb_max));
  std::vector<double> xbuf(static_cast<size_t>(nb_max * n));
  std::vector<double> ybuf(static_cast<size_t>(nb_max * n));

  for (int64_t p = num_panels - 1; p >= 0; --p) {
    const int64_t k0 = p * nb_max;
    const int64_t nb = std::min(nb_max, n - 1 - k0);
    const int64_t m = n - 1 - k0;  // rows k0+1..n
    const double* vpanel = vstore.data() + p * n * nb_max;

    // T (dlarft forward/columnwise): T(t,t) = tau_t and
    // T(0:t, t) = −tau_t·T(0:t,0:t)·(VᵀV)(0:t, t).
    std::memset(gram.data(), 0,
                static_cast<size_t>(nb * nb) * sizeof(double));
    const OpViewT<double> vsub{vpanel + (k0 + 1) * nb_max, nb_max, false};
    const OpViewT<double> vsub_t{vpanel + (k0 + 1) * nb_max, nb_max, true};
    gemm_driver<double>(1.0, vsub_t, vsub, gram.data(), nb, nb, nb, m,
                        /*upper_only=*/false);
    for (int64_t t = 0; t < nb; ++t) {
      for (int64_t s = 0; s < t; ++s) {
        double acc = 0.0;
        for (int64_t r = s; r < t; ++r) {
          acc += twy[s * nb + r] * gram[r * nb + t];
        }
        twy[s * nb + t] = -tau[k0 + t] * acc;
      }
      twy[t * nb + t] = tau[k0 + t];
      for (int64_t s = t + 1; s < nb; ++s) twy[s * nb + t] = 0.0;
    }

    // Q_sub −= V·(T·(Vᵀ·Q_sub)) over rows/cols k0+1..n.
    double* qsub = a + (k0 + 1) * n + (k0 + 1);
    std::memset(xbuf.data(), 0, static_cast<size_t>(nb * m) * sizeof(double));
    gemm_driver<double>(1.0, vsub_t, OpViewT<double>{qsub, n, false},
                        xbuf.data(), m, nb, m, m, /*upper_only=*/false);
    std::memset(ybuf.data(), 0, static_cast<size_t>(nb * m) * sizeof(double));
    gemm_accum<double>(1.0, twy.data(), nb, false, xbuf.data(), m, false,
                       ybuf.data(), m, nb, m, nb);
    gemm_accum<double>(-1.0, vpanel + (k0 + 1) * nb_max, nb_max, false,
                       ybuf.data(), m, false, qsub, n, m, m, nb);
  }
}

}  // namespace

void tridiagonalize(double* a, int64_t n, double* d, double* e) {
  if (n == 0) return;
  if (n == 1) {
    d[0] = a[0];
    a[0] = 1.0;
    return;
  }
  if (n < kTridiagBlockedMin) {
    tridiagonalize_unblocked(a, n, d, e);
  } else {
    tridiagonalize_blocked(a, n, d, e);
  }
}

}  // namespace dkfac::linalg::detail
