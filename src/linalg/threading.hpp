// Thread-level gating for the linalg kernels' OpenMP parallelism.
//
// The kernels are called from three kinds of threads: the main training
// thread (parallelism wanted), ThreadComm rank threads that already sized
// their OMP team via omp_threads_per_rank (parallelism wanted, team already
// capped), and background workers such as comm::AsyncExecutor's thread that
// run concurrently WITH the main thread's OMP team (parallelism here would
// oversubscribe the machine). Kernels ask parallel_kernels_allowed() before
// opening a parallel region; SerialKernelScope marks the current thread as
// one whose kernels must stay serial.
//
// This is purely a scheduling decision: every kernel accumulates each
// output element in a fixed order, so serial and parallel execution are
// bitwise identical.
#pragma once

namespace dkfac::linalg {

/// True when a linalg kernel on this thread may open an OpenMP parallel
/// region: not inside SerialKernelScope and not already inside an active
/// parallel region (a nested team would oversubscribe, not speed up).
bool parallel_kernels_allowed();

/// RAII marker: while alive, linalg kernels invoked on this thread run
/// serially. Nests safely (restores the previous state on destruction).
class SerialKernelScope {
 public:
  SerialKernelScope();
  ~SerialKernelScope();
  SerialKernelScope(const SerialKernelScope&) = delete;
  SerialKernelScope& operator=(const SerialKernelScope&) = delete;

 private:
  bool previous_;
};

}  // namespace dkfac::linalg
