#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/gemm_driver.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg {

namespace {

void check_square(const Tensor& a, const char* who) {
  DKFAC_CHECK(a.ndim() == 2 && a.dim(0) == a.dim(1))
      << who << " needs a square matrix, got " << a.shape();
}

/// Panel width for the blocked right-looking factorization: wide enough
/// that the O(n²·NB) trailing update dominates, small enough that the
/// serial diagonal-block factor stays negligible.
constexpr int64_t kNB = 64;

// Factors `a` into its lower Cholesky triangle in double precision,
// writing L into the lower triangle of `l` (upper left zeroed). Shared by
// the fp32 cholesky() entry point and spd_inverse, which stays in double
// through the triangular inversion.
void cholesky_f64(const Tensor& a, std::vector<double>& l) {
  const int64_t n = a.dim(0);
  // Factor in double: K-FAC covariance factors can have condition numbers
  // near 1/γ, where FP32 pivots lose positivity. Blocked right-looking
  // algorithm: factor a kNB-wide diagonal block, triangular-solve the panel
  // below it, then apply the panel's rank-kNB (SYRK-shaped) update to the
  // trailing submatrix. The trailing update is the O(n³) term and is
  // parallel over rows — each element is updated by one thread with a fixed
  // ascending-k inner order, so the factor is invariant to the thread count.
  l.assign(static_cast<size_t>(n * n), 0.0);
  std::vector<double> upd;  // scratch for the panel's syrk-shaped update
  auto L = [&](int64_t i, int64_t j) -> double& { return l[i * n + j]; };
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) L(i, j) = a.at(i, j);
  }
  const bool par = parallel_kernels_allowed() && n >= 128;

  for (int64_t j0 = 0; j0 < n; j0 += kNB) {
    const int64_t jb = std::min(kNB, n - j0);
    const int64_t jend = j0 + jb;

    // 1. Unblocked factor of the diagonal block (prior panels' updates have
    //    already been folded in by earlier trailing updates). Serial — the
    //    positivity check must throw from outside any parallel region.
    for (int64_t j = j0; j < jend; ++j) {
      double diag = L(j, j);
      for (int64_t k = j0; k < j; ++k) diag -= L(j, k) * L(j, k);
      DKFAC_CHECK(diag > 0.0) << "matrix not positive definite at pivot " << j
                              << " (value " << diag << ")";
      const double ljj = std::sqrt(diag);
      L(j, j) = ljj;
      for (int64_t i = j + 1; i < jend; ++i) {
        double v = L(i, j);
        for (int64_t k = j0; k < j; ++k) v -= L(i, k) * L(j, k);
        L(i, j) = v / ljj;
      }
    }

    // 2. Panel solve: rows below the block against the block's transpose.
#pragma omp parallel for schedule(static) if (par)
    for (int64_t i = jend; i < n; ++i) {
      for (int64_t j = j0; j < jend; ++j) {
        double v = L(i, j);
        for (int64_t k = j0; k < j; ++k) v -= L(i, k) * L(j, k);
        L(i, j) = v / L(j, j);
      }
    }

    // 3. Trailing update (lower triangle only): A[i, j] -= Σ_k L(i,k)·L(j,k)
    //    over this panel's k — the syrk-shaped O(n²·NB) bulk of the
    //    factorization, routed through the packed gemm driver. The driver
    //    emits the upper triangle of P·Pᵀ into scratch; the subtraction
    //    mirrors it onto the lower-triangle storage (one writer per
    //    element, so the factor stays thread-count invariant).
    const int64_t mt = n - jend;
    if (mt > 0) {
      upd.assign(static_cast<size_t>(mt * mt), 0.0);
      const detail::OpViewT<double> p{&l[static_cast<size_t>(jend * n + j0)],
                                      n, false};
      const detail::OpViewT<double> pt{&l[static_cast<size_t>(jend * n + j0)],
                                       n, true};
      detail::gemm_driver<double>(1.0, p, pt, upd.data(), mt, mt, mt, jb,
                                  /*upper_only=*/true);
#pragma omp parallel for schedule(static) if (par)
      for (int64_t i = 0; i < mt; ++i) {
        double* lrow = &l[static_cast<size_t>((jend + i) * n + jend)];
        for (int64_t j = 0; j <= i; ++j) {
          lrow[j] -= upd[static_cast<size_t>(j * mt + i)];
        }
      }
    }
  }
}

}  // namespace

Tensor cholesky(const Tensor& a) {
  check_square(a, "cholesky");
  const int64_t n = a.dim(0);
  std::vector<double> l;
  cholesky_f64(a, l);
  Tensor out(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      out.at(i, j) = static_cast<float>(l[i * n + j]);
    }
  }
  return out;
}

Tensor solve_lower(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  const float* pl = l.data();
  float* px = x.data();
  // Columns are independent forward substitutions — parallel over c, with
  // the per-column recurrence (and its rounding) unchanged.
  const bool par = parallel_kernels_allowed() && cols >= 8 && n >= 32;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      const float* lrow = pl + i * n;
      double v = px[i * cols + c];
      for (int64_t k = 0; k < i; ++k) {
        v -= static_cast<double>(lrow[k]) * px[k * cols + c];
      }
      px[i * cols + c] = static_cast<float>(v / lrow[i]);
    }
  }
  return x;
}

Tensor solve_lower_transposed(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower_transposed");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  const float* pl = l.data();
  float* px = x.data();
  const bool par = parallel_kernels_allowed() && cols >= 8 && n >= 32;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = px[i * cols + c];
      for (int64_t k = i + 1; k < n; ++k) {
        v -= static_cast<double>(pl[k * n + i]) * px[k * cols + c];
      }
      px[i * cols + c] = static_cast<float>(v / pl[i * n + i]);
    }
  }
  return x;
}

Tensor spd_solve(const Tensor& a, const Tensor& b) {
  const Tensor l = cholesky(a);
  return solve_lower_transposed(l, solve_lower(l, b));
}

Tensor spd_inverse(const Tensor& a) {
  check_square(a, "spd_inverse");
  const int64_t n = a.dim(0);
  // A⁻¹ = L⁻ᵀ·L⁻¹ entirely in double: blocked Cholesky, blocked in-place
  // triangular inversion X = L⁻¹, then the lauum-shaped product XᵀX
  // through the packed gemm driver. Symmetric by construction (the product
  // pass only forms the upper block triangle and mirrors), and bitwise
  // invariant to the thread count because every gemm rides the
  // deterministic driver and the scalar passes are serial.
  std::vector<double> x;
  cholesky_f64(a, x);
  const int64_t nblk = (n + kNB - 1) / kNB;

  // Pass 1: invert every diagonal block in place (dtrti2 shape). Reads of
  // original L entries all happen before the overwriting visit: column j
  // of X is built top-down, and rows only consume L columns not yet
  // reached by the j loop.
  for (int64_t j0 = 0; j0 < n; j0 += kNB) {
    const int64_t jend = std::min(j0 + kNB, n);
    for (int64_t j = j0; j < jend; ++j) {
      x[j * n + j] = 1.0 / x[j * n + j];
      for (int64_t i = j + 1; i < jend; ++i) {
        double s = 0.0;
        for (int64_t k = j; k < i; ++k) s += x[i * n + k] * x[k * n + j];
        x[i * n + j] = -s / x[i * n + i];
      }
    }
  }

  // Pass 2: off-diagonal blocks from X·L = I, i.e.
  // X[I,J] = −(Σ_{J<K≤I} X[I,K]·L[K,J])·X[J,J]. Block columns descending
  // and block rows descending so every X[I,K] read is already inverted
  // while every L[K,J] read is still the untouched factor.
  std::vector<double> tmp(static_cast<size_t>(kNB * kNB));
  for (int64_t bj = nblk - 2; bj >= 0; --bj) {
    const int64_t j0 = bj * kNB;
    const int64_t j1 = std::min(j0 + kNB, n);
    const int64_t jb = j1 - j0;
    for (int64_t bi = nblk - 1; bi > bj; --bi) {
      const int64_t i0 = bi * kNB;
      const int64_t i1 = std::min(i0 + kNB, n);
      const int64_t ib = i1 - i0;
      std::fill(tmp.begin(), tmp.begin() + ib * jb, 0.0);
      detail::gemm_accum<double>(1.0, &x[i0 * n + j1], n, false,
                                 &x[j1 * n + j0], n, false, tmp.data(), jb,
                                 ib, jb, i1 - j1);
      for (int64_t i = i0; i < i1; ++i) {
        std::fill(x.begin() + i * n + j0, x.begin() + i * n + j1, 0.0);
      }
      detail::gemm_accum<double>(-1.0, tmp.data(), jb, false,
                                 &x[j0 * n + j0], n, false, &x[i0 * n + j0],
                                 n, ib, jb, jb);
    }
  }

  // Pass 3: A⁻¹ = XᵀX, upper block triangle only — block (I,J) with I≤J
  // needs rows k ≥ j0 of X because X(k,·) vanishes above the diagonal, so
  // each block product keeps the triangular flop count.
  std::vector<double> c(static_cast<size_t>(n * n), 0.0);
  for (int64_t bj = 0; bj < nblk; ++bj) {
    const int64_t j0 = bj * kNB;
    const int64_t j1 = std::min(j0 + kNB, n);
    const int64_t jb = j1 - j0;
    for (int64_t bi = 0; bi <= bj; ++bi) {
      const int64_t i0 = bi * kNB;
      const int64_t ib = std::min(i0 + kNB, n) - i0;
      detail::gemm_accum<double>(1.0, &x[j0 * n + i0], n, true,
                                 &x[j0 * n + j0], n, false, &c[i0 * n + j0],
                                 n, ib, jb, n - j0);
    }
  }

  Tensor inv(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const float v = static_cast<float>(c[i * n + j]);
      inv.at(i, j) = v;
      inv.at(j, i) = v;
    }
  }
  return inv;
}

}  // namespace dkfac::linalg
