#include "linalg/cholesky.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg {

namespace {

void check_square(const Tensor& a, const char* who) {
  DKFAC_CHECK(a.ndim() == 2 && a.dim(0) == a.dim(1))
      << who << " needs a square matrix, got " << a.shape();
}

/// Panel width for the blocked right-looking factorization: wide enough
/// that the O(n²·NB) trailing update dominates, small enough that the
/// serial diagonal-block factor stays negligible.
constexpr int64_t kNB = 64;

}  // namespace

Tensor cholesky(const Tensor& a) {
  check_square(a, "cholesky");
  const int64_t n = a.dim(0);
  // Factor in double: K-FAC covariance factors can have condition numbers
  // near 1/γ, where FP32 pivots lose positivity. Blocked right-looking
  // algorithm: factor a kNB-wide diagonal block, triangular-solve the panel
  // below it, then apply the panel's rank-kNB (SYRK-shaped) update to the
  // trailing submatrix. The trailing update is the O(n³) term and is
  // parallel over rows — each element is updated by one thread with a fixed
  // ascending-k inner order, so the factor is invariant to the thread count.
  std::vector<double> l(static_cast<size_t>(n * n), 0.0);
  auto L = [&](int64_t i, int64_t j) -> double& { return l[i * n + j]; };
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) L(i, j) = a.at(i, j);
  }
  const bool par = parallel_kernels_allowed() && n >= 128;

  for (int64_t j0 = 0; j0 < n; j0 += kNB) {
    const int64_t jb = std::min(kNB, n - j0);
    const int64_t jend = j0 + jb;

    // 1. Unblocked factor of the diagonal block (prior panels' updates have
    //    already been folded in by earlier trailing updates). Serial — the
    //    positivity check must throw from outside any parallel region.
    for (int64_t j = j0; j < jend; ++j) {
      double diag = L(j, j);
      for (int64_t k = j0; k < j; ++k) diag -= L(j, k) * L(j, k);
      DKFAC_CHECK(diag > 0.0) << "matrix not positive definite at pivot " << j
                              << " (value " << diag << ")";
      const double ljj = std::sqrt(diag);
      L(j, j) = ljj;
      for (int64_t i = j + 1; i < jend; ++i) {
        double v = L(i, j);
        for (int64_t k = j0; k < j; ++k) v -= L(i, k) * L(j, k);
        L(i, j) = v / ljj;
      }
    }

    // 2. Panel solve: rows below the block against the block's transpose.
#pragma omp parallel for schedule(static) if (par)
    for (int64_t i = jend; i < n; ++i) {
      for (int64_t j = j0; j < jend; ++j) {
        double v = L(i, j);
        for (int64_t k = j0; k < j; ++k) v -= L(i, k) * L(j, k);
        L(i, j) = v / L(j, j);
      }
    }

    // 3. Trailing update (lower triangle only): A[i, j] -= Σ_k L(i,k)·L(j,k)
    //    over this panel's k — the syrk-shaped bulk of the factorization.
#pragma omp parallel for schedule(static) if (par)
    for (int64_t i = jend; i < n; ++i) {
      const double* li = &l[static_cast<size_t>(i * n)];
      for (int64_t j = jend; j <= i; ++j) {
        const double* lj = &l[static_cast<size_t>(j * n)];
        double s = 0.0;
#pragma omp simd reduction(+ : s)
        for (int64_t k = j0; k < jend; ++k) s += li[k] * lj[k];
        L(i, j) -= s;
      }
    }
  }

  Tensor out(Shape{n, n});
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j <= i; ++j) {
      out.at(i, j) = static_cast<float>(L(i, j));
    }
  }
  return out;
}

Tensor solve_lower(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  const float* pl = l.data();
  float* px = x.data();
  // Columns are independent forward substitutions — parallel over c, with
  // the per-column recurrence (and its rounding) unchanged.
  const bool par = parallel_kernels_allowed() && cols >= 8 && n >= 32;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      const float* lrow = pl + i * n;
      double v = px[i * cols + c];
      for (int64_t k = 0; k < i; ++k) {
        v -= static_cast<double>(lrow[k]) * px[k * cols + c];
      }
      px[i * cols + c] = static_cast<float>(v / lrow[i]);
    }
  }
  return x;
}

Tensor solve_lower_transposed(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower_transposed");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  const float* pl = l.data();
  float* px = x.data();
  const bool par = parallel_kernels_allowed() && cols >= 8 && n >= 32;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = px[i * cols + c];
      for (int64_t k = i + 1; k < n; ++k) {
        v -= static_cast<double>(pl[k * n + i]) * px[k * cols + c];
      }
      px[i * cols + c] = static_cast<float>(v / pl[i * n + i]);
    }
  }
  return x;
}

Tensor spd_solve(const Tensor& a, const Tensor& b) {
  const Tensor l = cholesky(a);
  return solve_lower_transposed(l, solve_lower(l, b));
}

Tensor spd_inverse(const Tensor& a) {
  check_square(a, "spd_inverse");
  const int64_t n = a.dim(0);
  const Tensor l = cholesky(a);
  Tensor inv = solve_lower_transposed(l, solve_lower(l, Tensor::eye(n)));
  // Enforce symmetry lost to rounding in the two triangular solves.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const float v = 0.5f * (inv.at(i, j) + inv.at(j, i));
      inv.at(i, j) = v;
      inv.at(j, i) = v;
    }
  }
  return inv;
}

}  // namespace dkfac::linalg
