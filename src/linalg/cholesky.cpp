#include "linalg/cholesky.hpp"

#include <cmath>
#include <vector>

#include "common/error.hpp"

namespace dkfac::linalg {

namespace {

void check_square(const Tensor& a, const char* who) {
  DKFAC_CHECK(a.ndim() == 2 && a.dim(0) == a.dim(1))
      << who << " needs a square matrix, got " << a.shape();
}

}  // namespace

Tensor cholesky(const Tensor& a) {
  check_square(a, "cholesky");
  const int64_t n = a.dim(0);
  // Factor in double: K-FAC covariance factors can have condition numbers
  // near 1/γ, where FP32 pivots lose positivity.
  std::vector<double> l(static_cast<size_t>(n * n), 0.0);
  auto L = [&](int64_t i, int64_t j) -> double& { return l[i * n + j]; };

  for (int64_t j = 0; j < n; ++j) {
    double diag = a.at(j, j);
    for (int64_t k = 0; k < j; ++k) diag -= L(j, k) * L(j, k);
    DKFAC_CHECK(diag > 0.0) << "matrix not positive definite at pivot " << j
                            << " (value " << diag << ")";
    const double ljj = std::sqrt(diag);
    L(j, j) = ljj;
    for (int64_t i = j + 1; i < n; ++i) {
      double v = a.at(i, j);
      for (int64_t k = 0; k < j; ++k) v -= L(i, k) * L(j, k);
      L(i, j) = v / ljj;
    }
  }

  Tensor out(Shape{n, n});
  for (int64_t i = 0; i < n * n; ++i) out[i] = static_cast<float>(l[static_cast<size_t>(i)]);
  return out;
}

Tensor solve_lower(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = 0; i < n; ++i) {
      double v = x[i * cols + c];
      for (int64_t k = 0; k < i; ++k) {
        v -= static_cast<double>(l.at(i, k)) * x[k * cols + c];
      }
      x[i * cols + c] = static_cast<float>(v / l.at(i, i));
    }
  }
  return x;
}

Tensor solve_lower_transposed(const Tensor& l, const Tensor& b) {
  check_square(l, "solve_lower_transposed");
  const int64_t n = l.dim(0);
  DKFAC_CHECK(b.ndim() <= 2 && b.dim(0) == n)
      << "rhs shape " << b.shape() << " incompatible with L of size " << n;
  const int64_t cols = b.ndim() == 2 ? b.dim(1) : 1;
  Tensor x = b;
  for (int64_t c = 0; c < cols; ++c) {
    for (int64_t i = n - 1; i >= 0; --i) {
      double v = x[i * cols + c];
      for (int64_t k = i + 1; k < n; ++k) {
        v -= static_cast<double>(l.at(k, i)) * x[k * cols + c];
      }
      x[i * cols + c] = static_cast<float>(v / l.at(i, i));
    }
  }
  return x;
}

Tensor spd_solve(const Tensor& a, const Tensor& b) {
  const Tensor l = cholesky(a);
  return solve_lower_transposed(l, solve_lower(l, b));
}

Tensor spd_inverse(const Tensor& a) {
  check_square(a, "spd_inverse");
  const int64_t n = a.dim(0);
  const Tensor l = cholesky(a);
  Tensor inv = solve_lower_transposed(l, solve_lower(l, Tensor::eye(n)));
  // Enforce symmetry lost to rounding in the two triangular solves.
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const float v = 0.5f * (inv.at(i, j) + inv.at(j, i));
      inv.at(i, j) = v;
      inv.at(j, i) = v;
    }
  }
  return inv;
}

}  // namespace dkfac::linalg
