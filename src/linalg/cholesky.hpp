// Cholesky factorisation and SPD inverse.
//
// This is the *explicit inverse* path of the paper's §IV-A comparison
// (Table I): (A + γI)⁻¹ computed directly, as opposed to the implicit
// eigendecomposition path. The paper shows this path degrades validation
// accuracy at large batch sizes; we keep it to reproduce that comparison.
#pragma once

#include "tensor/tensor.hpp"

namespace dkfac::linalg {

/// Lower-triangular L with A = L·Lᵀ. Throws dkfac::Error when `a` is not
/// positive definite (non-positive pivot).
Tensor cholesky(const Tensor& a);

/// Inverse of an SPD matrix via Cholesky: A⁻¹ = L⁻ᵀ·L⁻¹.
Tensor spd_inverse(const Tensor& a);

/// Solve L·x = b with L lower-triangular (forward substitution).
Tensor solve_lower(const Tensor& l, const Tensor& b);

/// Solve Lᵀ·x = b with L lower-triangular (backward substitution).
Tensor solve_lower_transposed(const Tensor& l, const Tensor& b);

/// Solve A·x = b for SPD A.
Tensor spd_solve(const Tensor& a, const Tensor& b);

}  // namespace dkfac::linalg
