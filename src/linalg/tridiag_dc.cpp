// Tridiagonal eigensolvers (stage 2 of sym_eig).
//
//   - tridiag_eig_ql: implicit-shift QL with eigenvector rotation
//     accumulation (EISPACK tql2). O(n³) but with a small constant — the
//     base case of the divide-and-conquer recursion and the whole solver
//     for small orders.
//   - tridiag_eig_dc: Cuppen divide-and-conquer. T splits as
//     diag(T1~, T2~) + ρ·u·uᵀ; after solving both halves, the merge
//     diagonalizes D + w·wᵀ via the secular equation 1 + Σ w_k²/(δ_k−λ)=0
//     (safeguarded Newton per root, brackets from eigenvalue interlacing),
//     with dlaed2-style deflation first: negligible-coupling entries and
//     Givens-rotated near-equal diagonal pairs drop out of the secular
//     system entirely — on clustered K-FAC spectra most of the merge
//     deflates and the O(K²) secular work collapses. Eigenvector updates
//     (the actual O(n³)) are dense products through the packed fp64 gemm
//     driver. The w vector is recomputed from the solved roots
//     (Gu–Eisenstat) so eigenvectors stay orthogonal even for tightly
//     clustered roots.
//
// Determinism: recursion structure, deflation decisions, and root
// bracketing depend only on the input; per-root/per-vector parallel loops
// give each output to exactly one thread with fixed-order (or fixed-width
// simd) sums; products use the deterministic gemm driver. Results are
// bitwise invariant to OMP_NUM_THREADS.
#include <algorithm>
#include <cfloat>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "linalg/eigen_detail.hpp"
#include "linalg/gemm_driver.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg::detail {

namespace {

double hypot2(double x, double y) { return std::sqrt(x * x + y * y); }

/// Secular root t of f(λ) = 1 + Σ_k w2[k]/(delta[k] − λ), delta strictly
/// ascending, w2 > 0, rho = Σ w2. Root t lies in (delta[t], delta[t+1])
/// — or (delta[K−1], delta[K−1] + rho] for the last one. Returned as an
/// origin index plus offset (λ = delta[origin] + mu) so later differences
/// λ − delta[i] evaluate without cancellation.
struct SecRoot {
  int64_t origin;
  double mu;
};

void secular_eval(const double* delta, const double* w2, int64_t K, int64_t o,
                  double mu, double* f_out, double* df_out) {
  const double d0 = delta[o];
  double f = 1.0;
  double df = 0.0;
#pragma omp simd reduction(+ : f, df)
  for (int64_t k = 0; k < K; ++k) {
    const double diff = (delta[k] - d0) - mu;
    const double t = w2[k] / diff;
    f += t;
    df += t / diff;
  }
  *f_out = f;
  *df_out = df;
}

SecRoot secular_root(const double* delta, const double* w2, int64_t K,
                     double rho, int64_t t) {
  int64_t o;
  double lo;
  double hi;
  if (t < K - 1) {
    // f is increasing across (delta[t], delta[t+1]) with poles at both
    // ends; its sign at the midpoint picks which end the root hugs — that
    // end becomes the shift origin so mu stays well-scaled.
    const double gap = delta[t + 1] - delta[t];
    double f;
    double df;
    secular_eval(delta, w2, K, t, 0.5 * gap, &f, &df);
    if (f >= 0.0) {
      o = t;
      lo = 0.0;
      hi = 0.5 * gap;
    } else {
      o = t + 1;
      lo = -0.5 * gap;
      hi = 0.0;
    }
  } else {
    // Last root: f(delta[K−1] + rho) = 1 + Σ w2/(neg, |·| ≥ rho) ≥ 0.
    o = K - 1;
    lo = 0.0;
    hi = rho;
  }

  double mu = 0.5 * (lo + hi);
  for (int iter = 0; iter < 80; ++iter) {
    double f;
    double df;
    secular_eval(delta, w2, K, o, mu, &f, &df);
    if (f >= 0.0) {
      hi = mu;
    } else {
      lo = mu;
    }
    double next = mu - f / df;  // Newton; f increasing & convex near root
    if (!(next > lo) || !(next < hi)) next = 0.5 * (lo + hi);
    if (std::abs(next - mu) <=
        2.0 * DBL_EPSILON * std::abs(next) + 2.0 * DBL_MIN) {
      mu = next;
      break;
    }
    mu = next;
  }
  if (mu == 0.0) mu = 0.5 * (lo + hi);
  return {o, mu};
}

/// Merge step: the region q (rows×rows at leading dim ldq, rows = n of
/// this subproblem) currently holds diag(Q1, Q2); d holds both halves'
/// eigenvalues; the coupling is rho·u·uᵀ with u = e_{m−1} ± e_m. On
/// return d ascends and q holds the subproblem's eigenvectors.
void dc_merge(double* d, int64_t n, int64_t m, double beta, double* q,
              int64_t ldq) {
  const double rho_raw = std::abs(beta);
  const double zsign = beta >= 0.0 ? 1.0 : -1.0;

  // z = Q̂ᵀu: last row of Q1, ± first row of Q2.
  std::vector<double> z(static_cast<size_t>(n));
  for (int64_t j = 0; j < m; ++j) z[j] = q[(m - 1) * ldq + j];
  for (int64_t j = m; j < n; ++j) z[j] = zsign * q[m * ldq + j];

  double zn2 = 0.0;
  for (int64_t j = 0; j < n; ++j) zn2 += z[j] * z[j];
  double rho = 0.0;
  if (zn2 > 0.0 && rho_raw > 0.0) {
    rho = rho_raw * zn2;  // after z is scaled to unit norm
    const double inv = 1.0 / std::sqrt(zn2);
    for (int64_t j = 0; j < n; ++j) z[j] *= inv;
  }

  double dmax = 0.0;
  double zmax = 0.0;
  for (int64_t j = 0; j < n; ++j) {
    dmax = std::max(dmax, std::abs(d[j]));
    zmax = std::max(zmax, std::abs(z[j]));
  }
  const double tol = 8.0 * DBL_EPSILON * std::max(dmax, rho * zmax);

  // Deflation sweep in ascending-d order (dlaed2): entries with negligible
  // coupling |rho·z| keep their eigenpair as-is; near-equal diagonal pairs
  // are Givens-rotated so one of them decouples. `survivors` feed the
  // secular system.
  std::vector<int64_t> ord(static_cast<size_t>(n));
  for (int64_t j = 0; j < n; ++j) ord[j] = j;
  std::sort(ord.begin(), ord.end(), [&](int64_t x, int64_t y) {
    return d[x] != d[y] ? d[x] < d[y] : x < y;
  });

  std::vector<int64_t> survivors;
  std::vector<int64_t> deflated;
  survivors.reserve(static_cast<size_t>(n));
  deflated.reserve(static_cast<size_t>(n));
  for (int64_t oi = 0; oi < n; ++oi) {
    const int64_t j = ord[oi];
    if (std::abs(rho * z[j]) <= tol) {
      deflated.push_back(j);
      continue;
    }
    if (!survivors.empty()) {
      const int64_t k = survivors.back();
      const double tau = hypot2(z[k], z[j]);
      const double c = z[j] / tau;
      const double s = z[k] / tau;
      if (std::abs(c * s * (d[j] - d[k])) <= tol) {
        // Rotate (k, j) so z_k → 0: z ← Gᵀz, d-block ← GᵀDG (off-diagonal
        // |cs·Δd| ≤ tol is the deflation error), q columns ← qG.
        z[j] = tau;
        z[k] = 0.0;
        const double dk = d[k];
        const double dj = d[j];
        d[k] = c * c * dk + s * s * dj;
        d[j] = s * s * dk + c * c * dj;
        for (int64_t r = 0; r < n; ++r) {
          const double qk = q[r * ldq + k];
          const double qj = q[r * ldq + j];
          q[r * ldq + k] = c * qk - s * qj;
          q[r * ldq + j] = s * qk + c * qj;
        }
        survivors.pop_back();
        deflated.push_back(k);
      }
    }
    survivors.push_back(j);
  }

  const int64_t K = static_cast<int64_t>(survivors.size());
  std::vector<double> lam;
  std::vector<double> qs;
  if (K > 0) {
    // Rotations nudge d values, so re-establish ascending survivor order.
    std::sort(survivors.begin(), survivors.end(), [&](int64_t x, int64_t y) {
      return d[x] != d[y] ? d[x] < d[y] : x < y;
    });
    std::vector<double> delta(static_cast<size_t>(K));
    std::vector<double> w(static_cast<size_t>(K));
    std::vector<double> w2(static_cast<size_t>(K));
    const double sr = std::sqrt(rho);
    double w2sum = 0.0;
    for (int64_t t = 0; t < K; ++t) {
      delta[t] = d[survivors[t]];
      w[t] = sr * z[survivors[t]];  // fold rho into the rank-one vector
      w2[t] = w[t] * w[t];
      w2sum += w2[t];
    }

    const bool par = parallel_kernels_allowed() && K >= 64;
    std::vector<SecRoot> roots(static_cast<size_t>(K));
#pragma omp parallel for schedule(static) if (par)
    for (int64_t t = 0; t < K; ++t) {
      roots[t] = secular_root(delta.data(), w2.data(), K, w2sum, t);
    }
    lam.resize(static_cast<size_t>(K));
    for (int64_t t = 0; t < K; ++t) lam[t] = delta[roots[t].origin] + roots[t].mu;

    // Gu–Eisenstat: recompute ŵ so the solved roots are *exact* for
    // D + ŵŵᵀ — eigenvectors built from ŵ are orthogonal to machine
    // precision even when roots cluster. All factors are positive by
    // interlacing; signs are inherited from w.
    std::vector<double> what(static_cast<size_t>(K));
#pragma omp parallel for schedule(static) if (par)
    for (int64_t i = 0; i < K; ++i) {
      const double di = delta[i];
      double p = (delta[roots[K - 1].origin] - di) + roots[K - 1].mu;
      for (int64_t j = 0; j < i; ++j) {
        p *= ((delta[roots[j].origin] - di) + roots[j].mu) / (delta[j] - di);
      }
      for (int64_t j = i; j < K - 1; ++j) {
        p *= ((delta[roots[j].origin] - di) + roots[j].mu) /
             (delta[j + 1] - di);
      }
      what[i] = std::copysign(std::sqrt(std::abs(p)), w[i]);
    }

    // Normalized eigenvectors of D + ŵŵᵀ, columns of S (K×K):
    // S(i,t) ∝ ŵ_i/(δ_i − λ_t).
    std::vector<double> smat(static_cast<size_t>(K * K));
#pragma omp parallel for schedule(static) if (par)
    for (int64_t t = 0; t < K; ++t) {
      const double d0 = delta[roots[t].origin];
      const double mu = roots[t].mu;
      double norm2 = 0.0;
      for (int64_t i = 0; i < K; ++i) {
        const double v = what[i] / ((delta[i] - d0) - mu);
        smat[i * K + t] = v;
        norm2 += v * v;
      }
      const double inv = 1.0 / std::sqrt(norm2);
      for (int64_t i = 0; i < K; ++i) smat[i * K + t] *= inv;
    }

    // Back-multiply: QS = [q columns of survivors] · S through the packed
    // fp64 driver — the O(n·K²) heavy part of the merge.
    std::vector<double> gmat(static_cast<size_t>(n * K));
    for (int64_t r = 0; r < n; ++r) {
      for (int64_t t = 0; t < K; ++t) {
        gmat[r * K + t] = q[r * ldq + survivors[t]];
      }
    }
    qs.assign(static_cast<size_t>(n * K), 0.0);
    gemm_accum<double>(1.0, gmat.data(), K, false, smat.data(), K, false,
                       qs.data(), K, n, K, K);
  }

  // Assemble: deflated eigenpairs (current q columns) merge-sorted with
  // the K secular ones. Ties break (value, secular-first, index) so the
  // order is a pure function of the input.
  struct Entry {
    double value;
    int64_t kind;  // 0 = secular (index into qs), 1 = deflated (q column)
    int64_t idx;
  };
  std::vector<Entry> entries;
  entries.reserve(static_cast<size_t>(n));
  for (int64_t t = 0; t < K; ++t) entries.push_back({lam[t], 0, t});
  for (int64_t i : deflated) entries.push_back({d[i], 1, i});
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.value != b.value) return a.value < b.value;
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.idx < b.idx;
  });

  std::vector<double> qnew(static_cast<size_t>(n * n));
  for (int64_t pos = 0; pos < n; ++pos) {
    const Entry& en = entries[pos];
    if (en.kind == 0) {
      for (int64_t r = 0; r < n; ++r) qnew[r * n + pos] = qs[r * K + en.idx];
    } else {
      for (int64_t r = 0; r < n; ++r) {
        qnew[r * n + pos] = q[r * ldq + en.idx];
      }
    }
  }
  for (int64_t pos = 0; pos < n; ++pos) d[pos] = entries[pos].value;
  for (int64_t r = 0; r < n; ++r) {
    std::memcpy(q + r * ldq, qnew.data() + r * n,
                static_cast<size_t>(n) * sizeof(double));
  }
}

void dc_solve(double* d, double* e, int64_t n, double* q, int64_t ldq) {
  if (n <= kDcBase) {
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) q[i * ldq + j] = i == j ? 1.0 : 0.0;
    }
    tridiag_eig_ql(d, e, n, q, n, ldq);
    return;
  }

  const int64_t m = n / 2;
  const double beta = e[m - 1];
  // Cuppen split: T = diag(T1~, T2~) + β-signed rank-one coupling; both
  // halves shed |β| from the boundary diagonal entries.
  d[m - 1] -= std::abs(beta);
  d[m] -= std::abs(beta);
  dc_solve(d, e, m, q, ldq);
  dc_solve(d + m, e + m, n - m, q + m * ldq + m, ldq);
  // Children wrote their diagonal blocks; the merge reads full columns.
  for (int64_t i = 0; i < m; ++i) {
    std::memset(q + i * ldq + m, 0, static_cast<size_t>(n - m) * sizeof(double));
  }
  for (int64_t i = m; i < n; ++i) {
    std::memset(q + i * ldq, 0, static_cast<size_t>(m) * sizeof(double));
  }
  dc_merge(d, n, m, beta, q, ldq);
}

}  // namespace

void tridiag_eig_ql(double* d, double* e, int64_t n, double* q, int64_t rows,
                    int64_t ldq) {
  if (n == 0) return;
  auto V = [&](int64_t i, int64_t j) -> double& { return q[i * ldq + j]; };
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::pow(2.0, -52.0);
  for (int64_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    int64_t m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }

    if (m > l) {
      int iter = 0;
      do {
        ++iter;
        DKFAC_CHECK(iter <= 80) << "QL iteration failed to converge";

        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = hypot2(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (int64_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (int64_t i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = hypot2(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);

          // Rotate eigenvector columns i, i+1. At O(rows) per rotation a
          // fork/join costs more than the rotation at any K-FAC factor
          // size — deliberately serial.
          for (int64_t k = 0; k < rows; ++k) {
            const double vk1 = V(k, i + 1);
            const double vk0 = V(k, i);
            V(k, i + 1) = s * vk0 + c * vk1;
            V(k, i) = c * vk0 - s * vk1;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector columns.
  for (int64_t i = 0; i < n - 1; ++i) {
    int64_t k = i;
    double p = d[i];
    for (int64_t j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (int64_t j = 0; j < rows; ++j) std::swap(V(j, i), V(j, k));
    }
  }
}

void tridiag_eig_dc(double* d, double* e, int64_t n, double* q, int64_t ldq) {
  if (n == 0) return;
  dc_solve(d, e, n, q, ldq);
}

}  // namespace dkfac::linalg::detail
