// Panel packing for the Goto-style GEMM in blas.cpp.
//
// The packers copy an MC×KC block of op(A) into kMR-row slivers and a KC×NC
// block of op(B) into kNR-column slivers, normalizing the transpose away:
// after packing, all four Trans combinations feed the micro-kernel the same
// contiguous layout, so transposed operands cost a strided *pack* (O(mk))
// instead of strided reads in the O(mnk) inner loop. Partial slivers at the
// matrix edge are zero-padded — the micro-kernel always runs full kMR×kNR
// tiles and the epilogue discards the padded rows/columns (0·0
// contributions, so padding never perturbs valid elements, including
// NaN/Inf propagation from real data).
#pragma once

#include <algorithm>
#include <cstdint>

#include "linalg/microkernel.hpp"

namespace dkfac::linalg::detail {

/// Read-only view of op(X) for a row-major matrix X with leading dimension
/// `ld`: element (i, j) of the *logical* (post-transpose) operand.
struct OpView {
  const float* data;
  int64_t ld;
  bool trans;

  float at(int64_t i, int64_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

/// Pack rows [i0, i0+mc) × k-slab [k0, k0+kc) of op(A) into `buf`:
/// sliver s (rows i0+s·kMR …) stores kMR consecutive rows k-major, i.e.
/// buf[s·kMR·kc + k·kMR + r] = op(A)(i0 + s·kMR + r, k0 + k).
inline void pack_a(const OpView& a, int64_t i0, int64_t mc, int64_t k0,
                   int64_t kc, float* buf) {
  for (int64_t s0 = 0; s0 < mc; s0 += kMR) {
    const int64_t mr = std::min(kMR, mc - s0);
    float* dst = buf + s0 * kc;
    if (a.trans) {
      // op(A)(i, k) = data[k·ld + i]: each k step is contiguous in i, which
      // is exactly the sliver layout — straight copies.
      for (int64_t k = 0; k < kc; ++k) {
        const float* src = a.data + (k0 + k) * a.ld + i0 + s0;
        float* out = dst + k * kMR;
        for (int64_t r = 0; r < mr; ++r) out[r] = src[r];
        for (int64_t r = mr; r < kMR; ++r) out[r] = 0.0f;
      }
    } else {
      // Row-major rows: read each row contiguously, scatter into the
      // sliver (stride kMR writes stay inside one hot cache block).
      for (int64_t r = 0; r < mr; ++r) {
        const float* src = a.data + (i0 + s0 + r) * a.ld + k0;
        for (int64_t k = 0; k < kc; ++k) dst[k * kMR + r] = src[k];
      }
      for (int64_t r = mr; r < kMR; ++r) {
        for (int64_t k = 0; k < kc; ++k) dst[k * kMR + r] = 0.0f;
      }
    }
  }
}

/// Pack k-slab [k0, k0+kc) × columns [j0, j0+nc) of op(B) into `buf`:
/// sliver t (columns j0+t·kNR …) stores kNR consecutive columns k-major,
/// i.e. buf[t·kNR·kc + k·kNR + c] = op(B)(k0 + k, j0 + t·kNR + c).
inline void pack_b(const OpView& b, int64_t k0, int64_t kc, int64_t j0,
                   int64_t nc, float* buf) {
  for (int64_t t0 = 0; t0 < nc; t0 += kNR) {
    const int64_t nr = std::min(kNR, nc - t0);
    float* dst = buf + t0 * kc;
    if (b.trans) {
      // op(B)(k, j) = data[j·ld + k]: each column j is contiguous in k;
      // read column-wise, scatter into the sliver.
      for (int64_t c = 0; c < nr; ++c) {
        const float* src = b.data + (j0 + t0 + c) * b.ld + k0;
        for (int64_t k = 0; k < kc; ++k) dst[k * kNR + c] = src[k];
      }
      for (int64_t c = nr; c < kNR; ++c) {
        for (int64_t k = 0; k < kc; ++k) dst[k * kNR + c] = 0.0f;
      }
    } else {
      // Row-major rows of B are contiguous in j — straight copies.
      for (int64_t k = 0; k < kc; ++k) {
        const float* src = b.data + (k0 + k) * b.ld + j0 + t0;
        float* out = dst + k * kNR;
        for (int64_t c = 0; c < nr; ++c) out[c] = src[c];
        for (int64_t c = nr; c < kNR; ++c) out[c] = 0.0f;
      }
    }
  }
}

}  // namespace dkfac::linalg::detail
