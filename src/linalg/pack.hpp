// Panel packing for the Goto-style GEMM driver (gemm_driver.hpp).
//
// The packers copy an MC×KC block of op(A) into kMr-row slivers and a KC×NC
// block of op(B) into kNr-column slivers, normalizing the transpose away:
// after packing, all four Trans combinations feed the micro-kernel the same
// contiguous layout, so transposed operands cost a strided *pack* (O(mk))
// instead of strided reads in the O(mnk) inner loop. Partial slivers at the
// matrix edge are zero-padded — the micro-kernel always runs full kMr×kNr
// tiles and the epilogue discards the padded rows/columns (0·0
// contributions, so padding never perturbs valid elements, including
// NaN/Inf propagation from real data).
//
// Everything is templated on the scalar: the fp32 instantiation backs the
// public gemm/syrk kernels, the fp64 one the decomposition internals. The
// sliver widths come from MicroTile<T> (microkernel.hpp).
#pragma once

#include <algorithm>
#include <cstdint>

#include "linalg/microkernel.hpp"

namespace dkfac::linalg::detail {

/// Read-only view of op(X) for a row-major matrix X with leading dimension
/// `ld`: element (i, j) of the *logical* (post-transpose) operand.
template <typename T>
struct OpViewT {
  const T* data;
  int64_t ld;
  bool trans;

  T at(int64_t i, int64_t j) const {
    return trans ? data[j * ld + i] : data[i * ld + j];
  }
};

/// fp32 alias — the name the public kernels and tests use.
using OpView = OpViewT<float>;

/// Pack rows [i0, i0+mc) × k-slab [k0, k0+kc) of op(A) into `buf`:
/// sliver s (rows i0+s·kMr …) stores kMr consecutive rows k-major, i.e.
/// buf[s·kMr·kc + k·kMr + r] = op(A)(i0 + s·kMr + r, k0 + k).
template <typename T>
inline void pack_a(const OpViewT<T>& a, int64_t i0, int64_t mc, int64_t k0,
                   int64_t kc, T* buf) {
  constexpr int64_t mr_tile = MicroTile<T>::kMr;
  for (int64_t s0 = 0; s0 < mc; s0 += mr_tile) {
    const int64_t mr = std::min(mr_tile, mc - s0);
    T* dst = buf + s0 * kc;
    if (a.trans) {
      // op(A)(i, k) = data[k·ld + i]: each k step is contiguous in i, which
      // is exactly the sliver layout — straight copies.
      for (int64_t k = 0; k < kc; ++k) {
        const T* src = a.data + (k0 + k) * a.ld + i0 + s0;
        T* out = dst + k * mr_tile;
        for (int64_t r = 0; r < mr; ++r) out[r] = src[r];
        for (int64_t r = mr; r < mr_tile; ++r) out[r] = T(0);
      }
    } else {
      // Row-major rows: read each row contiguously, scatter into the
      // sliver (stride kMr writes stay inside one hot cache block).
      for (int64_t r = 0; r < mr; ++r) {
        const T* src = a.data + (i0 + s0 + r) * a.ld + k0;
        for (int64_t k = 0; k < kc; ++k) dst[k * mr_tile + r] = src[k];
      }
      for (int64_t r = mr; r < mr_tile; ++r) {
        for (int64_t k = 0; k < kc; ++k) dst[k * mr_tile + r] = T(0);
      }
    }
  }
}

/// Pack k-slab [k0, k0+kc) × columns [j0, j0+nc) of op(B) into `buf`:
/// sliver t (columns j0+t·kNr …) stores kNr consecutive columns k-major,
/// i.e. buf[t·kNr·kc + k·kNr + c] = op(B)(k0 + k, j0 + t·kNr + c).
template <typename T>
inline void pack_b(const OpViewT<T>& b, int64_t k0, int64_t kc, int64_t j0,
                   int64_t nc, T* buf) {
  constexpr int64_t nr_tile = MicroTile<T>::kNr;
  for (int64_t t0 = 0; t0 < nc; t0 += nr_tile) {
    const int64_t nr = std::min(nr_tile, nc - t0);
    T* dst = buf + t0 * kc;
    if (b.trans) {
      // op(B)(k, j) = data[j·ld + k]: each column j is contiguous in k;
      // read column-wise, scatter into the sliver.
      for (int64_t c = 0; c < nr; ++c) {
        const T* src = b.data + (j0 + t0 + c) * b.ld + k0;
        for (int64_t k = 0; k < kc; ++k) dst[k * nr_tile + c] = src[k];
      }
      for (int64_t c = nr; c < nr_tile; ++c) {
        for (int64_t k = 0; k < kc; ++k) dst[k * nr_tile + c] = T(0);
      }
    } else {
      // Row-major rows of B are contiguous in j — straight copies.
      for (int64_t k = 0; k < kc; ++k) {
        const T* src = b.data + (k0 + k) * b.ld + j0 + t0;
        T* out = dst + k * nr_tile;
        for (int64_t c = 0; c < nr; ++c) out[c] = src[c];
        for (int64_t c = nr; c < nr_tile; ++c) out[c] = T(0);
      }
    }
  }
}

}  // namespace dkfac::linalg::detail
