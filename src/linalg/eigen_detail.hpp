// Internal double-precision building blocks of sym_eig / spd_inverse.
//
// sym_eig is staged as
//
//   1. Householder tridiagonalization  A = Q·T·Qᵀ   (householder.cpp)
//   2. tridiagonal eigensolve          T = S·Λ·Sᵀ   (tridiag_dc.cpp)
//   3. back-multiply                   V = Q·S      (fp64 gemm driver)
//
// with two implementations per stage: an unblocked EISPACK-style path for
// small orders (where blocking overhead dominates) and a blocked
// compact-WY / divide-and-conquer path whose O(n³) work runs through the
// packed fp64 micro-kernels. The dispatch thresholds live here so tests
// can pin sizes to a specific path.
//
// Conventions: matrices are row-major doubles; the tridiagonal T is stored
// as d[0..n) (diagonal) and e[0..n-1) (off-diagonal, e[i] = T(i, i+1));
// eigenvectors are columns; eigenvalues ascend.
//
// Every routine is bitwise invariant to OMP_NUM_THREADS: parallel loops
// assign each output element to exactly one thread with fixed-order inner
// sums, and all matrix products go through the deterministic gemm driver.
#pragma once

#include <cstdint>

namespace dkfac::linalg::detail {

/// Orders below this use the unblocked tred2-style reduction; at and above
/// it, the blocked compact-WY reduction (panel width kTridiagPanel).
inline constexpr int64_t kTridiagBlockedMin = 128;
inline constexpr int64_t kTridiagPanel = 32;

/// Orders below this solve the tridiagonal stage with implicit-shift QL
/// directly; at and above, divide-and-conquer with subproblems recursively
/// split until they reach kDcBase (solved by QL).
inline constexpr int64_t kDcMin = 96;
inline constexpr int64_t kDcBase = 48;

/// Reduces the symmetric matrix in `a` (n×n, row-major) to tridiagonal
/// form. On exit `a` holds the orthogonal Q with A = Q·T·Qᵀ, `d`/`e` hold
/// T. Dispatches unblocked vs blocked on kTridiagBlockedMin.
void tridiagonalize(double* a, int64_t n, double* d, double* e);

/// Implicit-shift QL on (d, e), rotating the `rows`×n block at `q`
/// (leading dimension ldq) that the caller pre-seeded — identity for
/// standalone tridiagonal eigenvectors, the Householder Q for a fused
/// full-matrix solve. On return d ascends and q columns are the matching
/// vectors; e is clobbered (needs capacity n).
void tridiag_eig_ql(double* d, double* e, int64_t n, double* q, int64_t rows,
                    int64_t ldq);

/// Divide-and-conquer eigensolver for the tridiagonal (d, e): Cuppen
/// rank-one splits, secular-equation merges with dlaed2-style deflation
/// and Gu–Eisenstat z-recomputation. On return d holds ascending
/// eigenvalues and the n×n block at `q` (leading dimension ldq, contents
/// overwritten) the eigenvectors of T in columns; e is clobbered.
void tridiag_eig_dc(double* d, double* e, int64_t n, double* q, int64_t ldq);

}  // namespace dkfac::linalg::detail
