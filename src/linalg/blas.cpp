#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dkfac::linalg {

namespace {

struct MatView {
  const float* data;
  int64_t rows;
  int64_t cols;
  // Logical element (r, c) after applying the transpose flag.
  float operator()(int64_t r, int64_t c) const { return data[r * cols + c]; }
};

void check_rank2(const Tensor& t, const char* name) {
  DKFAC_CHECK(t.ndim() == 2) << name << " must be rank-2, got " << t.shape();
}

}  // namespace

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  check_rank2(c, "C");
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t k = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  const int64_t kb = trans_b == Trans::kNo ? b.dim(0) : b.dim(1);
  const int64_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  DKFAC_CHECK(k == kb) << "gemm inner dim mismatch: " << k << " vs " << kb;
  DKFAC_CHECK(c.dim(0) == m && c.dim(1) == n)
      << "gemm output shape " << c.shape() << " expected [" << m << ", " << n << "]";

  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = c.data();
  const int64_t lda = a.dim(1);
  const int64_t ldb = b.dim(1);

  if (beta != 1.0f) {
    if (beta == 0.0f) {
      c.zero_();
    } else {
      c.scale_(beta);
    }
  }

  // Row-panel parallel, k-inner loop ordered for contiguous B access in the
  // NN/NT-free cases; transposed operands fall back to strided reads.
  constexpr int64_t kBlock = 64;
#pragma omp parallel for schedule(static)
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const int64_t i1 = std::min(i0 + kBlock, m);
    for (int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const int64_t k1 = std::min(k0 + kBlock, k);
      for (int64_t i = i0; i < i1; ++i) {
        float* crow = pc + i * n;
        for (int64_t kk = k0; kk < k1; ++kk) {
          const float aval =
              alpha * (trans_a == Trans::kNo ? pa[i * lda + kk] : pa[kk * lda + i]);
          if (aval == 0.0f) continue;
          if (trans_b == Trans::kNo) {
            const float* brow = pb + kk * ldb;
            for (int64_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
          } else {
            const float* bcol = pb + kk;  // stride ldb over j
            for (int64_t j = 0; j < n; ++j) crow[j] += aval * bcol[j * ldb];
          }
        }
      }
    }
  }
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a, Trans trans_b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

void gemv(float alpha, const Tensor& a, Trans trans_a, const Tensor& x,
          float beta, Tensor& y) {
  check_rank2(a, "A");
  DKFAC_CHECK(x.ndim() == 1 && y.ndim() == 1) << "gemv needs rank-1 x and y";
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t k = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  DKFAC_CHECK(x.dim(0) == k) << "gemv x length " << x.dim(0) << " expected " << k;
  DKFAC_CHECK(y.dim(0) == m) << "gemv y length " << y.dim(0) << " expected " << m;

  const int64_t lda = a.dim(1);
  for (int64_t i = 0; i < m; ++i) {
    double acc = 0.0;
    for (int64_t j = 0; j < k; ++j) {
      const float aij =
          trans_a == Trans::kNo ? a.data()[i * lda + j] : a.data()[j * lda + i];
      acc += static_cast<double>(aij) * x[j];
    }
    y[i] = alpha * static_cast<float>(acc) + beta * y[i];
  }
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "A");
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out(Shape{n, m});
  constexpr int64_t kBlock = 32;
  for (int64_t i0 = 0; i0 < m; i0 += kBlock) {
    for (int64_t j0 = 0; j0 < n; j0 += kBlock) {
      const int64_t i1 = std::min(i0 + kBlock, m);
      const int64_t j1 = std::min(j0 + kBlock, n);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          out.data()[j * m + i] = a.data()[i * n + j];
        }
      }
    }
  }
  return out;
}

void symmetrize(Tensor& a) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1)) << "symmetrize needs square, got " << a.shape();
  const int64_t n = a.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const float v = 0.5f * (a.at(i, j) + a.at(j, i));
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
}

void add_diagonal(Tensor& a, float gamma) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1)) << "add_diagonal needs square, got " << a.shape();
  const int64_t n = a.dim(0);
  for (int64_t i = 0; i < n; ++i) a.at(i, i) += gamma;
}

float asymmetry(const Tensor& a) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1));
  const int64_t n = a.dim(0);
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      m = std::max(m, std::abs(a.at(i, j) - a.at(j, i)));
    }
  }
  return m;
}

float frobenius_distance(const Tensor& a, const Tensor& b) {
  DKFAC_CHECK(a.shape() == b.shape())
      << "frobenius_distance shapes " << a.shape() << " vs " << b.shape();
  double total = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return static_cast<float>(std::sqrt(total));
}

}  // namespace dkfac::linalg
