#include "linalg/blas.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "linalg/gemm_driver.hpp"
#include "linalg/microkernel.hpp"
#include "linalg/pack.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg {

namespace {

using detail::OpView;

void check_rank2(const Tensor& t, const char* name) {
  DKFAC_CHECK(t.ndim() == 2) << name << " must be rank-2, got " << t.shape();
}

/// Scale C by beta in place: the one pass over C that reads the old value.
/// beta == 0 overwrites (stale garbage / NaN is never read — BLAS rules).
void apply_beta(float beta, float* c, int64_t count) {
  if (beta == 1.0f) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<size_t>(count) * sizeof(float));
    return;
  }
  const bool par = parallel_kernels_allowed() && count >= (1 << 16);
#pragma omp parallel for schedule(static) if (par)
  for (int64_t i = 0; i < count; ++i) c[i] *= beta;
}

}  // namespace

void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  check_rank2(c, "C");
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t k = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  const int64_t kb = trans_b == Trans::kNo ? b.dim(0) : b.dim(1);
  const int64_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  DKFAC_CHECK(k == kb) << "gemm inner dim mismatch: " << k << " vs " << kb;
  DKFAC_CHECK(c.dim(0) == m && c.dim(1) == n)
      << "gemm output shape " << c.shape() << " expected [" << m << ", " << n << "]";

  apply_beta(beta, c.data(), c.numel());
  const OpView av{a.data(), a.dim(1), trans_a == Trans::kYes};
  const OpView bv{b.data(), b.dim(1), trans_b == Trans::kYes};
  detail::gemm_driver(alpha, av, bv, c.data(), n, m, n, k,
                      /*upper_only=*/false);
}

Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a, Trans trans_b) {
  check_rank2(a, "A");
  check_rank2(b, "B");
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  gemm(1.0f, a, trans_a, b, trans_b, 0.0f, c);
  return c;
}

void syrk(float alpha, const Tensor& a, Trans trans, float beta, Tensor& c) {
  check_rank2(a, "A");
  check_rank2(c, "C");
  const int64_t n = trans == Trans::kYes ? a.dim(1) : a.dim(0);
  const int64_t k = trans == Trans::kYes ? a.dim(0) : a.dim(1);
  DKFAC_CHECK(c.dim(0) == n && c.dim(1) == n)
      << "syrk output shape " << c.shape() << " expected [" << n << ", " << n << "]";

  apply_beta(beta, c.data(), c.numel());
  // op1 = op(A) (n×k), op2 = op(A)ᵀ (k×n) — the same views gemm would build
  // for the equivalent call, so the computed triangle matches it bitwise.
  const OpView op1{a.data(), a.dim(1), trans == Trans::kYes};
  const OpView op2{a.data(), a.dim(1), trans == Trans::kNo};
  detail::gemm_driver(alpha, op1, op2, c.data(), n, n, n, k,
                      /*upper_only=*/true);

  // Mirror the computed upper triangle; C comes back exactly symmetric.
  float* pc = c.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) pc[j * n + i] = pc[i * n + j];
  }
}

void gemv(float alpha, const Tensor& a, Trans trans_a, const Tensor& x,
          float beta, Tensor& y) {
  check_rank2(a, "A");
  DKFAC_CHECK(x.ndim() == 1 && y.ndim() == 1) << "gemv needs rank-1 x and y";
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t k = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  DKFAC_CHECK(x.dim(0) == k) << "gemv x length " << x.dim(0) << " expected " << k;
  DKFAC_CHECK(y.dim(0) == m) << "gemv y length " << y.dim(0) << " expected " << m;

  const int64_t lda = a.dim(1);
  const float* pa = a.data();
  const float* px = x.data();
  float* py = y.data();
  const bool par = parallel_kernels_allowed() && m * k >= (1 << 14);

  if (trans_a == Trans::kNo) {
    // One contiguous row per output: SIMD dot product in double.
#pragma omp parallel for schedule(static) if (par)
    for (int64_t i = 0; i < m; ++i) {
      const float* row = pa + i * lda;
      double acc = 0.0;
#pragma omp simd reduction(+ : acc)
      for (int64_t j = 0; j < k; ++j) {
        acc += static_cast<double>(row[j]) * px[j];
      }
      const float ax = alpha * static_cast<float>(acc);
      py[i] = beta == 0.0f ? ax : ax + beta * py[i];
    }
    return;
  }

  // Transposed: y = alpha·Aᵀx. Process output in fixed-width chunks; within
  // a chunk, stream A row-wise (contiguous) and accumulate per-element in
  // ascending-j order — the chunk grid is independent of the thread count,
  // so results are deterministic, and every A read is contiguous.
  constexpr int64_t kChunk = 256;
  const int64_t num_chunks = (m + kChunk - 1) / kChunk;
#pragma omp parallel for schedule(static) if (par)
  for (int64_t ch = 0; ch < num_chunks; ++ch) {
    const int64_t i0 = ch * kChunk;
    const int64_t len = std::min(kChunk, m - i0);
    double acc[kChunk];
    std::memset(acc, 0, static_cast<size_t>(len) * sizeof(double));
    for (int64_t j = 0; j < k; ++j) {
      const float* row = pa + j * lda + i0;
      const double xj = px[j];
#pragma omp simd
      for (int64_t i = 0; i < len; ++i) {
        acc[i] += static_cast<double>(row[i]) * xj;
      }
    }
    for (int64_t i = 0; i < len; ++i) {
      const float ax = alpha * static_cast<float>(acc[i]);
      py[i0 + i] = beta == 0.0f ? ax : ax + beta * py[i0 + i];
    }
  }
}

Tensor transpose(const Tensor& a) {
  check_rank2(a, "A");
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  Tensor out(Shape{n, m});
  const float* src = a.data();
  float* dst = out.data();
  constexpr int64_t kBlock = 32;
  const int64_t iblocks = (m + kBlock - 1) / kBlock;
  const int64_t jblocks = (n + kBlock - 1) / kBlock;
  const bool par = parallel_kernels_allowed() && m * n >= (1 << 16);
#pragma omp parallel for schedule(static) collapse(2) if (par)
  for (int64_t bi = 0; bi < iblocks; ++bi) {
    for (int64_t bj = 0; bj < jblocks; ++bj) {
      const int64_t i0 = bi * kBlock;
      const int64_t j0 = bj * kBlock;
      const int64_t i1 = std::min(i0 + kBlock, m);
      const int64_t j1 = std::min(j0 + kBlock, n);
      for (int64_t i = i0; i < i1; ++i) {
        for (int64_t j = j0; j < j1; ++j) {
          dst[j * m + i] = src[i * n + j];
        }
      }
    }
  }
  return out;
}

void symmetrize(Tensor& a) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1)) << "symmetrize needs square, got " << a.shape();
  const int64_t n = a.dim(0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      const float v = 0.5f * (a.at(i, j) + a.at(j, i));
      a.at(i, j) = v;
      a.at(j, i) = v;
    }
  }
}

void add_diagonal(Tensor& a, float gamma) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1)) << "add_diagonal needs square, got " << a.shape();
  const int64_t n = a.dim(0);
  for (int64_t i = 0; i < n; ++i) a.at(i, i) += gamma;
}

float asymmetry(const Tensor& a) {
  check_rank2(a, "A");
  DKFAC_CHECK(a.dim(0) == a.dim(1));
  const int64_t n = a.dim(0);
  float m = 0.0f;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i + 1; j < n; ++j) {
      m = std::max(m, std::abs(a.at(i, j) - a.at(j, i)));
    }
  }
  return m;
}

float frobenius_distance(const Tensor& a, const Tensor& b) {
  DKFAC_CHECK(a.shape() == b.shape())
      << "frobenius_distance shapes " << a.shape() << " vs " << b.shape();
  double total = 0.0;
  for (int64_t i = 0; i < a.numel(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    total += d * d;
  }
  return static_cast<float>(std::sqrt(total));
}

}  // namespace dkfac::linalg
