#include "linalg/batch.hpp"

#include <omp.h>

#include <algorithm>
#include <exception>

#include "linalg/threading.hpp"
#include "obs/trace.hpp"

namespace dkfac::linalg {

BatchReport run_decomposition_batch(std::vector<BatchTask>& tasks) {
  BatchReport report;
  const int64_t n = static_cast<int64_t>(tasks.size());
  if (n == 0) return report;

  std::vector<std::exception_ptr> errs(static_cast<size_t>(n));
  const bool concurrent_ok =
      parallel_kernels_allowed() && omp_get_max_threads() > 1;

  if (!concurrent_ok) {
    // Already-serialized context (AsyncExecutor worker, nested omp region,
    // explicit SerialKernelScope) or a single-thread machine: a concurrent
    // fan-out could only oversubscribe, so run everything in submission
    // order. Kernels keep whatever parallelism the ambient context allows.
    for (int64_t i = 0; i < n; ++i) {
      DKFAC_TRACE_SCOPE_NAMED(span, "decomp.matrix.intra");
      if (span.active()) {
        span.set_arg("dim", static_cast<uint64_t>(tasks[i].dim));
      }
      try {
        tasks[i].run();
      } catch (...) {
        errs[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    report.intra_tasks = n;
  } else {
    std::vector<int64_t> large;
    std::vector<int64_t> small;
    for (int64_t i = 0; i < n; ++i) {
      (tasks[i].dim >= kInterDimMax ? large : small).push_back(i);
    }

    // Large factors: one at a time in submission order, each fanning out
    // through the parallel kernels.
    for (int64_t i : large) {
      DKFAC_TRACE_SCOPE_NAMED(span, "decomp.matrix.intra");
      if (span.active()) {
        span.set_arg("dim", static_cast<uint64_t>(tasks[i].dim));
      }
      try {
        tasks[i].run();
      } catch (...) {
        errs[static_cast<size_t>(i)] = std::current_exception();
      }
    }

    // Small factors: concurrent across the team, longest-first under
    // dynamic scheduling so a big-ish task doesn't become the tail.
    // SerialKernelScope pins each task to serial kernels — no nested
    // teams. Which thread runs which task varies; what each task computes
    // does not, so the batch output is thread-count invariant.
    std::sort(small.begin(), small.end(), [&](int64_t a, int64_t b) {
      return tasks[a].dim != tasks[b].dim ? tasks[a].dim > tasks[b].dim
                                          : a < b;
    });
    const int64_t ns = static_cast<int64_t>(small.size());
#pragma omp parallel for schedule(dynamic, 1)
    for (int64_t t = 0; t < ns; ++t) {
      const int64_t i = small[static_cast<size_t>(t)];
      SerialKernelScope serial;
      // OMP worker threads each get their own trace ring, so these spans
      // land on distinct timelines — exactly what Perfetto should show.
      DKFAC_TRACE_SCOPE_NAMED(span, "decomp.matrix.inter");
      if (span.active()) {
        span.set_arg("dim", static_cast<uint64_t>(tasks[i].dim));
      }
      try {
        tasks[i].run();
      } catch (...) {
        errs[static_cast<size_t>(i)] = std::current_exception();
      }
    }
    report.intra_tasks = static_cast<int64_t>(large.size());
    report.inter_tasks = ns;
  }

  // Surface the same failure a serial in-order loop would have hit first.
  for (int64_t i = 0; i < n; ++i) {
    if (errs[static_cast<size_t>(i)]) {
      std::rethrow_exception(errs[static_cast<size_t>(i)]);
    }
  }
  return report;
}

}  // namespace dkfac::linalg
