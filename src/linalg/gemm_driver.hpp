// Goto-style GEMM macro-kernel, shared by the fp32 public kernels
// (blas.cpp) and the fp64 decomposition internals (householder.cpp,
// tridiag_dc.cpp, cholesky.cpp).
//
// The driver computes C += alpha·op(A)·op(B) over an arbitrary-leading-
// dimension output (so decomposition code can hit trailing submatrices in
// place), with an `upper_only` mode that skips micro-tiles strictly below
// the diagonal — the SYRK/rank-2k path. The caller owns the beta pass.
//
// Loop nest (jc → pc → ic ∥ → jr → ir): one parallel region wraps the
// whole nest (per-thread A-pack allocated once per call); B-panels are
// packed once per (jc, pc) in a `single` section and shared. Threads
// normally partition row-blocks (ic); when the matrix has a single
// row-block (tall-skinny shapes, m ≤ MC), the A-panel is packed shared and
// threads partition column tiles (jr) instead. Either way every output
// element is accumulated by exactly one thread in ascending-k order, and
// the mode depends only on the shape — so results are bitwise invariant to
// the thread count.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "linalg/microkernel.hpp"
#include "linalg/pack.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg::detail {

/// Writes the valid region of one accumulated micro-tile into C (leading
/// dimension ldc), applying alpha; with `upper_only` it drops elements
/// below the diagonal.
template <typename T>
inline void write_tile(T alpha, const T* acc, T* c, int64_t ldc, int64_t i0,
                       int64_t mr, int64_t j0, int64_t nr, bool upper_only) {
  constexpr int64_t nr_tile = MicroTile<T>::kNr;
  for (int64_t r = 0; r < mr; ++r) {
    T* crow = c + (i0 + r) * ldc;
    const T* arow = acc + r * nr_tile;
    const int64_t c_begin = upper_only ? std::max<int64_t>(0, i0 + r - j0) : 0;
    for (int64_t cc = c_begin; cc < nr; ++cc) {
      crow[j0 + cc] += alpha * arow[cc];
    }
  }
}

/// C(m×n, row-major, leading dimension ldc) += alpha·op(A)·op(B).
/// When `upper_only`, only elements with col ≥ row are written; computed
/// elements follow the exact same accumulation order as the full product,
/// so they match the unrestricted call bitwise.
template <typename T>
inline void gemm_driver(T alpha, const OpViewT<T>& a, const OpViewT<T>& b,
                        T* c, int64_t ldc, int64_t m, int64_t n, int64_t k,
                        bool upper_only) {
  if (m == 0 || n == 0 || k == 0 || alpha == T(0)) return;

  constexpr int64_t mr_tile = MicroTile<T>::kMr;
  constexpr int64_t nr_tile = MicroTile<T>::kNr;
  constexpr int64_t mc_blk = GemmBlocking<T>::kMc;
  constexpr int64_t kc_blk = GemmBlocking<T>::kKc;
  constexpr int64_t nc_blk = GemmBlocking<T>::kNc;
  static_assert(mc_blk % mr_tile == 0, "A-panel height must be a sliver multiple");

  const bool par = parallel_kernels_allowed() && m * n * k >= (1 << 15);
  const int64_t bpack_cols = std::min(n, nc_blk);
  const int64_t bpack_slivers = (bpack_cols + nr_tile - 1) / nr_tile;
  std::vector<T> bpack(
      static_cast<size_t>(bpack_slivers * nr_tile * std::min(k, kc_blk)));
  const int64_t num_iblocks = (m + mc_blk - 1) / mc_blk;
  const bool col_mode = num_iblocks == 1;
  const int64_t apack_elems =
      (col_mode ? (m + mr_tile - 1) / mr_tile * mr_tile : mc_blk) *
      std::min(k, kc_blk);
  std::vector<T> apack_shared(col_mode ? static_cast<size_t>(apack_elems) : 0);

#pragma omp parallel if (par)
  {
    std::vector<T> apack_local(col_mode ? 0
                                        : static_cast<size_t>(apack_elems));
    alignas(32) T acc[mr_tile * nr_tile];

    for (int64_t jc = 0; jc < n; jc += nc_blk) {
      const int64_t nc = std::min(nc_blk, n - jc);
      for (int64_t pc = 0; pc < k; pc += kc_blk) {
        const int64_t kc = std::min(kc_blk, k - pc);
#pragma omp single
        {
          pack_b(b, pc, kc, jc, nc, bpack.data());
          if (col_mode) pack_a(a, 0, m, pc, kc, apack_shared.data());
        }  // implicit barrier: packs are visible before any tile computes

        if (col_mode) {
          const int64_t num_jtiles = (nc + nr_tile - 1) / nr_tile;
#pragma omp for schedule(static)
          for (int64_t jt = 0; jt < num_jtiles; ++jt) {
            const int64_t jr = jt * nr_tile;
            const int64_t nr = std::min(nr_tile, nc - jr);
            const int64_t j0 = jc + jr;
            for (int64_t ir = 0; ir < m; ir += mr_tile) {
              const int64_t mr = std::min(mr_tile, m - ir);
              if (upper_only && ir > j0 + nr - 1) continue;
              std::memset(acc, 0, sizeof(acc));
              microkernel(kc, apack_shared.data() + ir * kc,
                          bpack.data() + jr * kc, acc);
              write_tile(alpha, acc, c, ldc, ir, mr, j0, nr, upper_only);
            }
          }  // implicit barrier before the next slab's pack
        } else {
#pragma omp for schedule(static)
          for (int64_t ib = 0; ib < num_iblocks; ++ib) {
            const int64_t ic = ib * mc_blk;
            const int64_t mc = std::min(mc_blk, m - ic);
            // Row-block entirely below every column of this jc panel: no
            // upper-triangle element lives here.
            if (upper_only && ic > jc + nc - 1) continue;
            pack_a(a, ic, mc, pc, kc, apack_local.data());
            for (int64_t jr = 0; jr < nc; jr += nr_tile) {
              const int64_t nr = std::min(nr_tile, nc - jr);
              for (int64_t ir = 0; ir < mc; ir += mr_tile) {
                const int64_t mr = std::min(mr_tile, mc - ir);
                const int64_t i0 = ic + ir;
                const int64_t j0 = jc + jr;
                if (upper_only && i0 > j0 + nr - 1) continue;
                std::memset(acc, 0, sizeof(acc));
                microkernel(kc, apack_local.data() + ir * kc,
                            bpack.data() + jr * kc, acc);
                write_tile(alpha, acc, c, ldc, i0, mr, j0, nr, upper_only);
              }
            }
          }  // implicit barrier before the next slab's pack
        }
      }
    }
  }
}

/// C(m×n, leading dim ldc) += alpha·op(A)·op(B) — raw-pointer convenience
/// wrapper used by the decomposition internals. `ta`/`tb` flag transposed
/// operands; `lda`/`ldb` are the *storage* leading dimensions.
template <typename T>
inline void gemm_accum(T alpha, const T* a, int64_t lda, bool ta, const T* b,
                       int64_t ldb, bool tb, T* c, int64_t ldc, int64_t m,
                       int64_t n, int64_t k) {
  gemm_driver<T>(alpha, OpViewT<T>{a, lda, ta}, OpViewT<T>{b, ldb, tb}, c,
                 ldc, m, n, k, /*upper_only=*/false);
}

}  // namespace dkfac::linalg::detail
