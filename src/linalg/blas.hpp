// Dense BLAS-like kernels on row-major FP32 matrices.
//
// These are the compute primitives behind factor accumulation (A = aᵀa),
// gradient preconditioning (Eqs 13–15), and the conv/linear layers. GEMM is
// a packed, register-blocked Goto-style kernel (see microkernel.hpp /
// pack.hpp): A- and B-panels are copied into contiguous transpose-normalized
// buffers and driven through an FMA micro-kernel, so all four Trans
// combinations run the same inner loop at the same speed. SYRK computes
// symmetric Gram matrices (the K-FAC factor shape) at ~half the GEMM flops
// by evaluating only the upper triangle and mirroring.
//
// Every kernel accumulates each output element in a fixed order, so results
// are bitwise identical regardless of OMP_NUM_THREADS (threads partition
// output elements, never a reduction). Kernels consult
// linalg::parallel_kernels_allowed() and stay serial on threads where a
// parallel region would oversubscribe (nested OMP, AsyncExecutor worker).
#pragma once

#include "tensor/tensor.hpp"

namespace dkfac::linalg {

enum class Trans { kNo, kYes };

/// C = alpha * op(A) @ op(B) + beta * C.
/// All matrices are rank-2 row-major tensors; shapes are checked.
/// BLAS semantics: beta == 0 overwrites C (stale values, including NaN, are
/// never read); alpha == 0 skips the product entirely. For alpha != 0 the
/// product is fully IEEE — zeros in A propagate NaN/Inf from B.
void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c);

/// Returns op(A) @ op(B) as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo);

/// Symmetric rank-k update, the factor-statistics kernel:
///   trans == kYes:  C = alpha * AᵀA + beta * C   (A is [rows, d], C [d, d])
///   trans == kNo :  C = alpha * AAᵀ + beta * C   (A is [d, cols], C [d, d])
/// Only the upper triangle is computed (~half the GEMM flops); the result is
/// then mirrored so C comes back fully dense and exactly symmetric. The
/// computed triangle is bitwise identical to the corresponding gemm call
/// (same packing, same blocking, same per-element accumulation order).
/// With beta != 0, C is assumed symmetric: the lower triangle of the output
/// is the mirror of the upper, so an asymmetric C's lower input is ignored.
void syrk(float alpha, const Tensor& a, Trans trans, float beta, Tensor& c);

/// y = alpha * op(A) @ x + beta * y, with x, y rank-1. Row-parallel with
/// SIMD double accumulation; beta == 0 overwrites y without reading it.
void gemv(float alpha, const Tensor& a, Trans trans_a, const Tensor& x,
          float beta, Tensor& y);

/// Returns Aᵀ for a rank-2 tensor (cache-blocked, parallel over blocks).
Tensor transpose(const Tensor& a);

/// A := (A + Aᵀ)/2; requires a square rank-2 tensor. Keeps accumulated
/// Kronecker factors exactly symmetric despite FP32 rounding.
void symmetrize(Tensor& a);

/// A := A + gamma * I (Tikhonov damping, Eq 11); requires square rank-2.
void add_diagonal(Tensor& a, float gamma);

/// Max |A - Aᵀ| over all entries; 0 for exactly symmetric matrices.
float asymmetry(const Tensor& a);

/// Frobenius norm of (A - B).
float frobenius_distance(const Tensor& a, const Tensor& b);

}  // namespace dkfac::linalg
