// Dense BLAS-like kernels on row-major FP32 matrices.
//
// These are the compute primitives behind factor accumulation (A = aᵀa),
// gradient preconditioning (Eqs 13–15), and the conv/linear layers. GEMM is
// cache-blocked and OpenMP-parallel over row panels.
#pragma once

#include "tensor/tensor.hpp"

namespace dkfac::linalg {

enum class Trans { kNo, kYes };

/// C = alpha * op(A) @ op(B) + beta * C.
/// All matrices are rank-2 row-major tensors; shapes are checked.
void gemm(float alpha, const Tensor& a, Trans trans_a, const Tensor& b,
          Trans trans_b, float beta, Tensor& c);

/// Returns op(A) @ op(B) as a fresh tensor.
Tensor matmul(const Tensor& a, const Tensor& b, Trans trans_a = Trans::kNo,
              Trans trans_b = Trans::kNo);

/// y = alpha * op(A) @ x + beta * y, with x, y rank-1.
void gemv(float alpha, const Tensor& a, Trans trans_a, const Tensor& x,
          float beta, Tensor& y);

/// Returns Aᵀ for a rank-2 tensor.
Tensor transpose(const Tensor& a);

/// A := (A + Aᵀ)/2; requires a square rank-2 tensor. Keeps accumulated
/// Kronecker factors exactly symmetric despite FP32 rounding.
void symmetrize(Tensor& a);

/// A := A + gamma * I (Tikhonov damping, Eq 11); requires square rank-2.
void add_diagonal(Tensor& a, float gamma);

/// Max |A - Aᵀ| over all entries; 0 for exactly symmetric matrices.
float asymmetry(const Tensor& a);

/// Frobenius norm of (A - B).
float frobenius_distance(const Tensor& a, const Tensor& b);

}  // namespace dkfac::linalg
