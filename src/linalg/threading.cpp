#include "linalg/threading.hpp"

#include <omp.h>

namespace dkfac::linalg {

namespace {
thread_local bool serial_kernels = false;
}  // namespace

bool parallel_kernels_allowed() {
  return !serial_kernels && omp_in_parallel() == 0;
}

SerialKernelScope::SerialKernelScope() : previous_(serial_kernels) {
  serial_kernels = true;
}

SerialKernelScope::~SerialKernelScope() { serial_kernels = previous_; }

}  // namespace dkfac::linalg
