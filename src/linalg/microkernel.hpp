// Register-blocked GEMM micro-kernel (Goto/BLIS-style innermost loop).
//
// The macro-kernel in blas.cpp feeds packed, transpose-normalized panels
// (see pack.hpp) to one of two interchangeable micro-kernels that compute a
// kMR×kNR accumulator tile over a KC-long k-slab:
//
//   - an AVX2/FMA intrinsics kernel (6×16 tile = 12 ymm accumulators, the
//     classic fp32 shape that saturates both FMA ports), compiled when the
//     translation unit is built with -mavx2 -mfma (CMake option
//     DKFAC_NATIVE_ARCH), and
//   - a portable `#pragma omp simd` fallback with the identical accumulation
//     pattern, used on builds without those ISA extensions.
//
// Both kernels accumulate every output element strictly in ascending-k
// order, so a given build produces bitwise-identical results regardless of
// OMP_NUM_THREADS (threads only partition *which* tiles they compute, never
// the per-element reduction order). The two kernels are NOT bitwise
// identical to each other — FMA contracts the multiply-add — which is fine:
// determinism is per build, not across ISAs.
//
// Everything here is `static inline` on purpose: a TU compiled without AVX2
// (e.g. a test exercising the portable path) must get its own portable copy
// rather than linking against the library's AVX2 instance.
#pragma once

#include <cstdint>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define DKFAC_MICROKERNEL_AVX2 1
#endif

namespace dkfac::linalg::detail {

/// Micro-tile rows (broadcast dimension of the packed A sliver).
inline constexpr int64_t kMR = 6;
/// Micro-tile columns (vector dimension of the packed B sliver).
inline constexpr int64_t kNR = 16;

/// Cache blocking: MC×KC A-panels (per thread, ~96 KB → L2) and KC×NC
/// B-panels (~1 MB → L3), KC deep enough to amortize the tile load/store.
inline constexpr int64_t kMC = 96;
inline constexpr int64_t kKC = 256;
inline constexpr int64_t kNC = 1024;

/// acc[r*kNR + c] += Σ_k ap[k*kMR + r] · bp[k*kNR + c], k ascending.
/// `ap` is an A sliver (kMR floats per k step), `bp` a B sliver (kNR floats
/// per k step); both are padded with zeros past the valid rows/columns.
[[maybe_unused]] static inline void microkernel_portable(int64_t kc,
                                                         const float* ap,
                                                         const float* bp,
                                                         float* acc) {
  for (int64_t k = 0; k < kc; ++k) {
    const float* a = ap + k * kMR;
    const float* b = bp + k * kNR;
    for (int64_t r = 0; r < kMR; ++r) {
      const float av = a[r];
      float* row = acc + r * kNR;
#pragma omp simd
      for (int64_t c = 0; c < kNR; ++c) row[c] += av * b[c];
    }
  }
}

#ifdef DKFAC_MICROKERNEL_AVX2
/// AVX2/FMA instance of the same accumulation: 6 broadcast rows × two
/// 8-float vectors = 12 live ymm accumulators + 2 B vectors + 1 broadcast.
[[maybe_unused]] static inline void microkernel_avx2(int64_t kc,
                                                     const float* ap,
                                                     const float* bp,
                                                     float* acc) {
  __m256 c00 = _mm256_loadu_ps(acc + 0 * kNR);
  __m256 c01 = _mm256_loadu_ps(acc + 0 * kNR + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 1 * kNR);
  __m256 c11 = _mm256_loadu_ps(acc + 1 * kNR + 8);
  __m256 c20 = _mm256_loadu_ps(acc + 2 * kNR);
  __m256 c21 = _mm256_loadu_ps(acc + 2 * kNR + 8);
  __m256 c30 = _mm256_loadu_ps(acc + 3 * kNR);
  __m256 c31 = _mm256_loadu_ps(acc + 3 * kNR + 8);
  __m256 c40 = _mm256_loadu_ps(acc + 4 * kNR);
  __m256 c41 = _mm256_loadu_ps(acc + 4 * kNR + 8);
  __m256 c50 = _mm256_loadu_ps(acc + 5 * kNR);
  __m256 c51 = _mm256_loadu_ps(acc + 5 * kNR + 8);
  for (int64_t k = 0; k < kc; ++k) {
    const float* a = ap + k * kMR;
    const float* b = bp + k * kNR;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    __m256 av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_storeu_ps(acc + 0 * kNR, c00);
  _mm256_storeu_ps(acc + 0 * kNR + 8, c01);
  _mm256_storeu_ps(acc + 1 * kNR, c10);
  _mm256_storeu_ps(acc + 1 * kNR + 8, c11);
  _mm256_storeu_ps(acc + 2 * kNR, c20);
  _mm256_storeu_ps(acc + 2 * kNR + 8, c21);
  _mm256_storeu_ps(acc + 3 * kNR, c30);
  _mm256_storeu_ps(acc + 3 * kNR + 8, c31);
  _mm256_storeu_ps(acc + 4 * kNR, c40);
  _mm256_storeu_ps(acc + 4 * kNR + 8, c41);
  _mm256_storeu_ps(acc + 5 * kNR, c50);
  _mm256_storeu_ps(acc + 5 * kNR + 8, c51);
}
#endif  // DKFAC_MICROKERNEL_AVX2

/// The micro-kernel this TU's build flags select.
[[maybe_unused]] static inline void microkernel(int64_t kc, const float* ap,
                                                const float* bp, float* acc) {
#ifdef DKFAC_MICROKERNEL_AVX2
  microkernel_avx2(kc, ap, bp, acc);
#else
  microkernel_portable(kc, ap, bp, acc);
#endif
}

/// True when this TU was compiled with the AVX2/FMA micro-kernel.
[[maybe_unused]] static inline bool microkernel_is_avx2() {
#ifdef DKFAC_MICROKERNEL_AVX2
  return true;
#else
  return false;
#endif
}

}  // namespace dkfac::linalg::detail
