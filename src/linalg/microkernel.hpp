// Register-blocked GEMM micro-kernels (Goto/BLIS-style innermost loop).
//
// The shared macro-kernel in gemm_driver.hpp feeds packed,
// transpose-normalized panels (see pack.hpp) to one of two interchangeable
// micro-kernels per scalar type, each computing an MR×NR accumulator tile
// over a KC-long k-slab:
//
//   - AVX2/FMA intrinsics kernels — fp32 6×16 (12 ymm accumulators, the
//     classic shape that saturates both FMA ports) and fp64 6×8 (the same
//     12-accumulator structure at 4 doubles per ymm) — compiled when the
//     translation unit is built with -mavx2 -mfma (CMake option
//     DKFAC_NATIVE_ARCH), and
//   - a portable `#pragma omp simd` fallback with the identical accumulation
//     pattern, used on builds without those ISA extensions.
//
// The fp32 instance carries the GEMM/SYRK public kernels; the fp64 instance
// carries the decomposition internals (blocked Householder
// tridiagonalization, divide-and-conquer back-multiplication, blocked
// triangular inverse), which run in double for the same reason the original
// EISPACK-style solvers did: K-FAC factors are near-singular FP32
// accumulations.
//
// All kernels accumulate every output element strictly in ascending-k
// order, so a given build produces bitwise-identical results regardless of
// OMP_NUM_THREADS (threads only partition *which* tiles they compute, never
// the per-element reduction order). The intrinsics and portable kernels are
// NOT bitwise identical to each other — FMA contracts the multiply-add —
// which is fine: determinism is per build, not across ISAs.
//
// Everything here is `static inline` on purpose: a TU compiled without AVX2
// (e.g. a test exercising the portable path) must get its own portable copy
// rather than linking against the library's AVX2 instance.
#pragma once

#include <cstdint>
#include <type_traits>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define DKFAC_MICROKERNEL_AVX2 1
#endif

namespace dkfac::linalg::detail {

/// Per-scalar micro-tile shape: kMr broadcast rows × kNr vector columns.
template <typename T>
struct MicroTile;
template <>
struct MicroTile<float> {
  static constexpr int64_t kMr = 6;
  static constexpr int64_t kNr = 16;
};
template <>
struct MicroTile<double> {
  static constexpr int64_t kMr = 6;
  static constexpr int64_t kNr = 8;
};

/// Cache blocking per scalar: MC×KC A-panels (per thread → L2) and KC×NC
/// B-panels (→ L3). The double parameters halve KC/NC so the panel *byte*
/// footprint matches the float configuration.
template <typename T>
struct GemmBlocking;
template <>
struct GemmBlocking<float> {
  static constexpr int64_t kMc = 96;
  static constexpr int64_t kKc = 256;
  static constexpr int64_t kNc = 1024;
};
template <>
struct GemmBlocking<double> {
  static constexpr int64_t kMc = 96;
  static constexpr int64_t kKc = 128;
  static constexpr int64_t kNc = 512;
};

/// fp32 tile shape aliases (the original names; used by the public kernels).
inline constexpr int64_t kMR = MicroTile<float>::kMr;
inline constexpr int64_t kNR = MicroTile<float>::kNr;
inline constexpr int64_t kMC = GemmBlocking<float>::kMc;
inline constexpr int64_t kKC = GemmBlocking<float>::kKc;
inline constexpr int64_t kNC = GemmBlocking<float>::kNc;

/// acc[r*kNr + c] += Σ_k ap[k*kMr + r] · bp[k*kNr + c], k ascending.
/// `ap` is an A sliver (kMr scalars per k step), `bp` a B sliver (kNr
/// scalars per k step); both are padded with zeros past the valid
/// rows/columns.
template <typename T>
[[maybe_unused]] static inline void microkernel_portable(int64_t kc,
                                                         const T* ap,
                                                         const T* bp, T* acc) {
  constexpr int64_t mr = MicroTile<T>::kMr;
  constexpr int64_t nr = MicroTile<T>::kNr;
  for (int64_t k = 0; k < kc; ++k) {
    const T* a = ap + k * mr;
    const T* b = bp + k * nr;
    for (int64_t r = 0; r < mr; ++r) {
      const T av = a[r];
      T* row = acc + r * nr;
#pragma omp simd
      for (int64_t c = 0; c < nr; ++c) row[c] += av * b[c];
    }
  }
}

#ifdef DKFAC_MICROKERNEL_AVX2
/// AVX2/FMA fp32 instance of the same accumulation: 6 broadcast rows × two
/// 8-float vectors = 12 live ymm accumulators + 2 B vectors + 1 broadcast.
[[maybe_unused]] static inline void microkernel_avx2(int64_t kc,
                                                     const float* ap,
                                                     const float* bp,
                                                     float* acc) {
  __m256 c00 = _mm256_loadu_ps(acc + 0 * kNR);
  __m256 c01 = _mm256_loadu_ps(acc + 0 * kNR + 8);
  __m256 c10 = _mm256_loadu_ps(acc + 1 * kNR);
  __m256 c11 = _mm256_loadu_ps(acc + 1 * kNR + 8);
  __m256 c20 = _mm256_loadu_ps(acc + 2 * kNR);
  __m256 c21 = _mm256_loadu_ps(acc + 2 * kNR + 8);
  __m256 c30 = _mm256_loadu_ps(acc + 3 * kNR);
  __m256 c31 = _mm256_loadu_ps(acc + 3 * kNR + 8);
  __m256 c40 = _mm256_loadu_ps(acc + 4 * kNR);
  __m256 c41 = _mm256_loadu_ps(acc + 4 * kNR + 8);
  __m256 c50 = _mm256_loadu_ps(acc + 5 * kNR);
  __m256 c51 = _mm256_loadu_ps(acc + 5 * kNR + 8);
  for (int64_t k = 0; k < kc; ++k) {
    const float* a = ap + k * kMR;
    const float* b = bp + k * kNR;
    const __m256 b0 = _mm256_loadu_ps(b);
    const __m256 b1 = _mm256_loadu_ps(b + 8);
    __m256 av = _mm256_broadcast_ss(a + 0);
    c00 = _mm256_fmadd_ps(av, b0, c00);
    c01 = _mm256_fmadd_ps(av, b1, c01);
    av = _mm256_broadcast_ss(a + 1);
    c10 = _mm256_fmadd_ps(av, b0, c10);
    c11 = _mm256_fmadd_ps(av, b1, c11);
    av = _mm256_broadcast_ss(a + 2);
    c20 = _mm256_fmadd_ps(av, b0, c20);
    c21 = _mm256_fmadd_ps(av, b1, c21);
    av = _mm256_broadcast_ss(a + 3);
    c30 = _mm256_fmadd_ps(av, b0, c30);
    c31 = _mm256_fmadd_ps(av, b1, c31);
    av = _mm256_broadcast_ss(a + 4);
    c40 = _mm256_fmadd_ps(av, b0, c40);
    c41 = _mm256_fmadd_ps(av, b1, c41);
    av = _mm256_broadcast_ss(a + 5);
    c50 = _mm256_fmadd_ps(av, b0, c50);
    c51 = _mm256_fmadd_ps(av, b1, c51);
  }
  _mm256_storeu_ps(acc + 0 * kNR, c00);
  _mm256_storeu_ps(acc + 0 * kNR + 8, c01);
  _mm256_storeu_ps(acc + 1 * kNR, c10);
  _mm256_storeu_ps(acc + 1 * kNR + 8, c11);
  _mm256_storeu_ps(acc + 2 * kNR, c20);
  _mm256_storeu_ps(acc + 2 * kNR + 8, c21);
  _mm256_storeu_ps(acc + 3 * kNR, c30);
  _mm256_storeu_ps(acc + 3 * kNR + 8, c31);
  _mm256_storeu_ps(acc + 4 * kNR, c40);
  _mm256_storeu_ps(acc + 4 * kNR + 8, c41);
  _mm256_storeu_ps(acc + 5 * kNR, c50);
  _mm256_storeu_ps(acc + 5 * kNR + 8, c51);
}

/// AVX2/FMA fp64 instance: the same 12-accumulator structure, 6 broadcast
/// rows × two 4-double vectors covering the 8-column tile.
[[maybe_unused]] static inline void microkernel_avx2_f64(int64_t kc,
                                                         const double* ap,
                                                         const double* bp,
                                                         double* acc) {
  constexpr int64_t mr = MicroTile<double>::kMr;
  constexpr int64_t nr = MicroTile<double>::kNr;
  __m256d c00 = _mm256_loadu_pd(acc + 0 * nr);
  __m256d c01 = _mm256_loadu_pd(acc + 0 * nr + 4);
  __m256d c10 = _mm256_loadu_pd(acc + 1 * nr);
  __m256d c11 = _mm256_loadu_pd(acc + 1 * nr + 4);
  __m256d c20 = _mm256_loadu_pd(acc + 2 * nr);
  __m256d c21 = _mm256_loadu_pd(acc + 2 * nr + 4);
  __m256d c30 = _mm256_loadu_pd(acc + 3 * nr);
  __m256d c31 = _mm256_loadu_pd(acc + 3 * nr + 4);
  __m256d c40 = _mm256_loadu_pd(acc + 4 * nr);
  __m256d c41 = _mm256_loadu_pd(acc + 4 * nr + 4);
  __m256d c50 = _mm256_loadu_pd(acc + 5 * nr);
  __m256d c51 = _mm256_loadu_pd(acc + 5 * nr + 4);
  for (int64_t k = 0; k < kc; ++k) {
    const double* a = ap + k * mr;
    const double* b = bp + k * nr;
    const __m256d b0 = _mm256_loadu_pd(b);
    const __m256d b1 = _mm256_loadu_pd(b + 4);
    __m256d av = _mm256_broadcast_sd(a + 0);
    c00 = _mm256_fmadd_pd(av, b0, c00);
    c01 = _mm256_fmadd_pd(av, b1, c01);
    av = _mm256_broadcast_sd(a + 1);
    c10 = _mm256_fmadd_pd(av, b0, c10);
    c11 = _mm256_fmadd_pd(av, b1, c11);
    av = _mm256_broadcast_sd(a + 2);
    c20 = _mm256_fmadd_pd(av, b0, c20);
    c21 = _mm256_fmadd_pd(av, b1, c21);
    av = _mm256_broadcast_sd(a + 3);
    c30 = _mm256_fmadd_pd(av, b0, c30);
    c31 = _mm256_fmadd_pd(av, b1, c31);
    av = _mm256_broadcast_sd(a + 4);
    c40 = _mm256_fmadd_pd(av, b0, c40);
    c41 = _mm256_fmadd_pd(av, b1, c41);
    av = _mm256_broadcast_sd(a + 5);
    c50 = _mm256_fmadd_pd(av, b0, c50);
    c51 = _mm256_fmadd_pd(av, b1, c51);
  }
  _mm256_storeu_pd(acc + 0 * nr, c00);
  _mm256_storeu_pd(acc + 0 * nr + 4, c01);
  _mm256_storeu_pd(acc + 1 * nr, c10);
  _mm256_storeu_pd(acc + 1 * nr + 4, c11);
  _mm256_storeu_pd(acc + 2 * nr, c20);
  _mm256_storeu_pd(acc + 2 * nr + 4, c21);
  _mm256_storeu_pd(acc + 3 * nr, c30);
  _mm256_storeu_pd(acc + 3 * nr + 4, c31);
  _mm256_storeu_pd(acc + 4 * nr, c40);
  _mm256_storeu_pd(acc + 4 * nr + 4, c41);
  _mm256_storeu_pd(acc + 5 * nr, c50);
  _mm256_storeu_pd(acc + 5 * nr + 4, c51);
}
#endif  // DKFAC_MICROKERNEL_AVX2

/// The micro-kernel this TU's build flags select for scalar type T.
template <typename T>
[[maybe_unused]] static inline void microkernel(int64_t kc, const T* ap,
                                                const T* bp, T* acc) {
#ifdef DKFAC_MICROKERNEL_AVX2
  if constexpr (std::is_same_v<T, float>) {
    microkernel_avx2(kc, ap, bp, acc);
  } else {
    microkernel_avx2_f64(kc, ap, bp, acc);
  }
#else
  microkernel_portable<T>(kc, ap, bp, acc);
#endif
}

/// True when this TU was compiled with the AVX2/FMA micro-kernels.
[[maybe_unused]] static inline bool microkernel_is_avx2() {
#ifdef DKFAC_MICROKERNEL_AVX2
  return true;
#else
  return false;
#endif
}

}  // namespace dkfac::linalg::detail
