#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/eigen_detail.hpp"
#include "linalg/gemm_driver.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg {

namespace {

void check_square(const Tensor& a) {
  DKFAC_CHECK(a.ndim() == 2 && a.dim(0) == a.dim(1))
      << "sym_eig needs a square matrix, got " << a.shape();
}

}  // namespace

SymEig sym_eig(const Tensor& a) {
  check_square(a);
  const int64_t n = a.dim(0);
  SymEig out{Tensor(Shape{n}), Tensor(Shape{n, n})};
  if (n == 0) return out;

  // Symmetrised copy in double.
  std::vector<double> v(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      v[static_cast<size_t>(i * n + j)] =
          0.5 * (static_cast<double>(a.at(i, j)) + a.at(j, i));
    }
  }
  std::vector<double> d(static_cast<size_t>(n));
  std::vector<double> e(static_cast<size_t>(n));

  if (n < detail::kDcMin) {
    // Small factors: unblocked reduction with Q accumulated in `v`, then
    // QL rotates Q's columns straight into full-matrix eigenvectors — no
    // separate back-multiply.
    detail::tridiagonalize(v.data(), n, d.data(), e.data());
    detail::tridiag_eig_ql(d.data(), e.data(), n, v.data(), n, n);
  } else {
    // Large factors: (blocked) Householder Q, divide-and-conquer for the
    // tridiagonal stage, then one dense V = Q·S through the fp64 driver.
    detail::tridiagonalize(v.data(), n, d.data(), e.data());
    std::vector<double> s(static_cast<size_t>(n * n));
    detail::tridiag_eig_dc(d.data(), e.data(), n, s.data(), n);
    std::vector<double> vq(static_cast<size_t>(n * n), 0.0);
    detail::gemm_accum<double>(1.0, v.data(), n, false, s.data(), n, false,
                               vq.data(), n, n, n, n);
    v.swap(vq);
  }

  for (int64_t i = 0; i < n; ++i) out.values[i] = static_cast<float>(d[static_cast<size_t>(i)]);
  for (int64_t i = 0; i < n * n; ++i) out.vectors[i] = static_cast<float>(v[static_cast<size_t>(i)]);
  return out;
}

SymEig sym_eig_jacobi(const Tensor& a, int max_sweeps) {
  check_square(a);
  const int64_t n = a.dim(0);
  SymEig out{Tensor(Shape{n}), Tensor::eye(n)};
  if (n == 0) return out;

  std::vector<double> m(static_cast<size_t>(n * n));
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i * n + i)] = 1.0;
    for (int64_t j = 0; j < n; ++j) {
      m[static_cast<size_t>(i * n + j)] =
          0.5 * (static_cast<double>(a.at(i, j)) + a.at(j, i));
    }
  }
  auto M = [&](int64_t i, int64_t j) -> double& { return m[i * n + j]; };
  auto V = [&](int64_t i, int64_t j) -> double& { return v[i * n + j]; };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += M(p, q) * M(p, q);
    }
    if (off < 1e-24) break;

    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        if (std::abs(M(p, q)) < 1e-300) continue;
        const double theta = (M(q, q) - M(p, p)) / (2.0 * M(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = M(k, p);
          const double mkq = M(k, q);
          M(k, p) = c * mkp - s * mkq;
          M(k, q) = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = M(p, k);
          const double mqk = M(q, k);
          M(p, k) = c * mpk - s * mqk;
          M(q, k) = s * mpk + c * mqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = V(k, p);
          const double vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract diagonal and sort ascending, permuting columns with values.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return M(x, x) < M(y, y); });
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    out.values[j] = static_cast<float>(M(src, src));
    for (int64_t i = 0; i < n; ++i) {
      out.vectors.at(i, j) = static_cast<float>(V(i, src));
    }
  }
  return out;
}

Tensor eig_reconstruct(const SymEig& eig) {
  const int64_t n = eig.values.dim(0);
  // V · diag(w): scale column j by w[j].
  Tensor scaled = eig.vectors;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) scaled.at(i, j) *= eig.values[j];
  }
  return matmul(scaled, eig.vectors, Trans::kNo, Trans::kYes);
}

}  // namespace dkfac::linalg
