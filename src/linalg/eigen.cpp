#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/threading.hpp"

namespace dkfac::linalg {

namespace {

double hypot2(double x, double y) { return std::sqrt(x * x + y * y); }

/// Parallelism gate shared by the eigensolver loops: the O(n²)-per-sweep
/// inner loops only amortize a fork/join above this order.
bool eig_parallel(int64_t n) {
  return parallel_kernels_allowed() && n >= 96;
}

// Householder reduction of a real symmetric matrix to tridiagonal form.
// On entry `v` holds the symmetric matrix (row-major, n×n, double). On exit
// `v` holds the accumulated orthogonal transform, `d` the diagonal and `e`
// the subdiagonal (e[0] unused). Derived from the public-domain EISPACK
// routine tred2, restructured so the O(n³) pieces — the symmetric
// matrix–vector product, the rank-2 update, and the eigenvector
// back-transform — parallelize over independent rows/columns. Each output
// element is produced by exactly one thread with a fixed-order inner sum,
// so the reduction is bitwise invariant to OMP_NUM_THREADS.
void tred2(std::vector<double>& v, std::vector<double>& d,
           std::vector<double>& e, int64_t n) {
  auto V = [&](int64_t i, int64_t j) -> double& { return v[i * n + j]; };
  const bool par = eig_parallel(n);

  for (int64_t j = 0; j < n; ++j) d[j] = V(n - 1, j);

  for (int64_t i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (int64_t k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (int64_t j = 0; j < i; ++j) {
        d[j] = V(i - 1, j);
        V(i, j) = 0.0;
        V(j, i) = 0.0;
      }
    } else {
      for (int64_t k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;

      // e = A·d over the still-symmetric leading i×i block, which EISPACK
      // keeps valid in the LOWER triangle only: row j left of the diagonal,
      // column j below it. Parallel over j — every e[j] is one thread's
      // fixed ascending-k sum. Also stashes d into column i (V(j,i) = d[j])
      // as the original interleaved loop did.
#pragma omp parallel for schedule(static) if (par)
      for (int64_t j = 0; j < i; ++j) {
        const double* vrow = &v[static_cast<size_t>(j * n)];
        double sum = 0.0;
        for (int64_t k = 0; k <= j; ++k) sum += vrow[k] * d[k];
        for (int64_t k = j + 1; k < i; ++k) sum += v[k * n + j] * d[k];
        e[j] = sum;
        V(j, i) = d[j];
      }
      f = 0.0;
      for (int64_t j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (int64_t j = 0; j < i; ++j) e[j] -= hh * d[j];
      // Symmetric rank-2 update of the lower triangle: column j is an
      // independent strip, each element written exactly once.
#pragma omp parallel for schedule(static) if (par)
      for (int64_t j = 0; j < i; ++j) {
        const double fj = d[j];
        const double gj = e[j];
        for (int64_t k = j; k <= i - 1; ++k) V(k, j) -= (fj * e[k] + gj * d[k]);
      }
      for (int64_t j = 0; j < i; ++j) {
        d[j] = V(i - 1, j);
        V(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations (eigenvector back-transform). For each
  // Householder vector (column i+1), every accumulated column j ≤ i is
  // updated independently: g = Σ_k V(k,i+1)·V(k,j) then V(·,j) -= g·d —
  // parallel over j with fixed-order sums.
  for (int64_t i = 0; i < n - 1; ++i) {
    V(n - 1, i) = V(i, i);
    V(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (int64_t k = 0; k <= i; ++k) d[k] = V(k, i + 1) / h;
#pragma omp parallel for schedule(static) if (par && i >= 96)
      for (int64_t j = 0; j <= i; ++j) {
        double g = 0.0;
        for (int64_t k = 0; k <= i; ++k) g += V(k, i + 1) * V(k, j);
        for (int64_t k = 0; k <= i; ++k) V(k, j) -= g * d[k];
      }
    }
    for (int64_t k = 0; k <= i; ++k) V(k, i + 1) = 0.0;
  }
  for (int64_t j = 0; j < n; ++j) {
    d[j] = V(n - 1, j);
    V(n - 1, j) = 0.0;
  }
  V(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal form produced by tred2,
// accumulating eigenvectors into `v`. Translated from EISPACK tql2. The
// per-step Givens rotation of the eigenvector matrix is deliberately NOT
// parallelized: at O(n) work per rotation a fork/join costs more than the
// rotation itself at any K-FAC factor size — the parallel wins live in
// tred2's O(i²)-per-step loops.
void tql2(std::vector<double>& v, std::vector<double>& d,
          std::vector<double>& e, int64_t n) {
  auto V = [&](int64_t i, int64_t j) -> double& { return v[i * n + j]; };

  for (int64_t i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::pow(2.0, -52.0);
  for (int64_t l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    int64_t m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }

    if (m > l) {
      int iter = 0;
      do {
        ++iter;
        DKFAC_CHECK(iter <= 80) << "QL iteration failed to converge";

        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = hypot2(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (int64_t i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (int64_t i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = hypot2(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);

          for (int64_t k = 0; k < n; ++k) {
            const double vk1 = V(k, i + 1);
            const double vk0 = V(k, i);
            V(k, i + 1) = s * vk0 + c * vk1;
            V(k, i) = c * vk0 - s * vk1;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector columns.
  for (int64_t i = 0; i < n - 1; ++i) {
    int64_t k = i;
    double p = d[i];
    for (int64_t j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (int64_t j = 0; j < n; ++j) std::swap(V(j, i), V(j, k));
    }
  }
}

void check_square(const Tensor& a) {
  DKFAC_CHECK(a.ndim() == 2 && a.dim(0) == a.dim(1))
      << "sym_eig needs a square matrix, got " << a.shape();
}

}  // namespace

SymEig sym_eig(const Tensor& a) {
  check_square(a);
  const int64_t n = a.dim(0);
  SymEig out{Tensor(Shape{n}), Tensor(Shape{n, n})};
  if (n == 0) return out;

  // Symmetrised copy in double.
  std::vector<double> v(static_cast<size_t>(n * n));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      v[static_cast<size_t>(i * n + j)] =
          0.5 * (static_cast<double>(a.at(i, j)) + a.at(j, i));
    }
  }
  std::vector<double> d(static_cast<size_t>(n));
  std::vector<double> e(static_cast<size_t>(n));
  tred2(v, d, e, n);
  tql2(v, d, e, n);

  for (int64_t i = 0; i < n; ++i) out.values[i] = static_cast<float>(d[static_cast<size_t>(i)]);
  for (int64_t i = 0; i < n * n; ++i) out.vectors[i] = static_cast<float>(v[static_cast<size_t>(i)]);
  return out;
}

SymEig sym_eig_jacobi(const Tensor& a, int max_sweeps) {
  check_square(a);
  const int64_t n = a.dim(0);
  SymEig out{Tensor(Shape{n}), Tensor::eye(n)};
  if (n == 0) return out;

  std::vector<double> m(static_cast<size_t>(n * n));
  std::vector<double> v(static_cast<size_t>(n * n), 0.0);
  for (int64_t i = 0; i < n; ++i) {
    v[static_cast<size_t>(i * n + i)] = 1.0;
    for (int64_t j = 0; j < n; ++j) {
      m[static_cast<size_t>(i * n + j)] =
          0.5 * (static_cast<double>(a.at(i, j)) + a.at(j, i));
    }
  }
  auto M = [&](int64_t i, int64_t j) -> double& { return m[i * n + j]; };
  auto V = [&](int64_t i, int64_t j) -> double& { return v[i * n + j]; };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) off += M(p, q) * M(p, q);
    }
    if (off < 1e-24) break;

    for (int64_t p = 0; p < n; ++p) {
      for (int64_t q = p + 1; q < n; ++q) {
        if (std::abs(M(p, q)) < 1e-300) continue;
        const double theta = (M(q, q) - M(p, p)) / (2.0 * M(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (int64_t k = 0; k < n; ++k) {
          const double mkp = M(k, p);
          const double mkq = M(k, q);
          M(k, p) = c * mkp - s * mkq;
          M(k, q) = s * mkp + c * mkq;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double mpk = M(p, k);
          const double mqk = M(q, k);
          M(p, k) = c * mpk - s * mqk;
          M(q, k) = s * mpk + c * mqk;
        }
        for (int64_t k = 0; k < n; ++k) {
          const double vkp = V(k, p);
          const double vkq = V(k, q);
          V(k, p) = c * vkp - s * vkq;
          V(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract diagonal and sort ascending, permuting columns with values.
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(),
            [&](int64_t x, int64_t y) { return M(x, x) < M(y, y); });
  for (int64_t j = 0; j < n; ++j) {
    const int64_t src = order[static_cast<size_t>(j)];
    out.values[j] = static_cast<float>(M(src, src));
    for (int64_t i = 0; i < n; ++i) {
      out.vectors.at(i, j) = static_cast<float>(V(i, src));
    }
  }
  return out;
}

Tensor eig_reconstruct(const SymEig& eig) {
  const int64_t n = eig.values.dim(0);
  // V · diag(w): scale column j by w[j].
  Tensor scaled = eig.vectors;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) scaled.at(i, j) *= eig.values[j];
  }
  return matmul(scaled, eig.vectors, Trans::kNo, Trans::kYes);
}

}  // namespace dkfac::linalg
