// Batched decomposition scheduler.
//
// A K-FAC rank owns one A and one G factor per assigned layer — dozens of
// symmetric matrices from a handful of elements up to ~1024². Decomposing
// them strictly one at a time leaves the machine idle on the small ones
// (no intra-matrix parallelism to exploit) while decomposing them all
// concurrently would oversubscribe on the big ones (each already fans out
// through the parallel kernels). run_decomposition_batch splits the
// difference:
//
//   - LARGE tasks (dim ≥ kInterDimMax) run one at a time, in submission
//     order, with intra-matrix kernel parallelism enabled;
//   - SMALL tasks run concurrently across OpenMP threads, each pinned to
//     serial kernels via SerialKernelScope so a task never forks a nested
//     team.
//
// The scheduler composes with the rest of the threading contract: when
// parallel_kernels_allowed() is already false (inside an AsyncExecutor
// worker, an outer omp region, or an explicit SerialKernelScope), the
// whole batch degrades to a plain serial loop instead of oversubscribing.
//
// Determinism: each task is internally bitwise thread-invariant (that is
// the kernel contract), tasks are independent, and the partition into
// large/small depends only on the dims — so the set of results is
// identical for any OMP_NUM_THREADS, and submission order fixes which
// task writes which output.
//
// Exceptions: a throwing task (e.g. cholesky on a non-PD factor) does not
// tear down the batch; every task runs, then the exception of the
// lowest-submission-index failure is rethrown — the same error the serial
// loop would have surfaced first.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace dkfac::linalg {

/// One decomposition task: `dim` is the factor order (drives large/small
/// classification), `run` does the work. `run` must be thread-safe with
/// respect to the other tasks in the batch (disjoint outputs).
struct BatchTask {
  int64_t dim = 0;
  std::function<void()> run;
};

/// Counters reported by run_decomposition_batch (for StepReport and the
/// ablation bench).
struct BatchReport {
  int64_t intra_tasks = 0;  // ran exclusively with parallel kernels
  int64_t inter_tasks = 0;  // ran concurrently under SerialKernelScope
};

/// Factors at or above this order get the whole machine to themselves;
/// below it, inter-matrix concurrency beats intra-matrix kernels.
inline constexpr int64_t kInterDimMax = 256;

/// Runs every task; see file comment for the scheduling contract.
BatchReport run_decomposition_batch(std::vector<BatchTask>& tasks);

}  // namespace dkfac::linalg
