// Symmetric eigendecomposition.
//
// K-FAC's inverse-free preconditioning path (paper §IV-A, Eqs 13–15)
// requires the full eigendecomposition of each Kronecker factor. We
// implement the classic dense pipeline from scratch (eigen_detail.hpp):
//
//   1. Householder reduction to tridiagonal form — unblocked for small
//      factors, blocked compact-WY for large ones so the O(n³) work rides
//      the packed fp64 gemm micro-kernels, and
//   2. a tridiagonal eigensolve — implicit-shift QL below kDcMin,
//      divide-and-conquer (secular-equation merge with deflation) above —
//      followed by a dense Q·S back-multiply on the blocked path.
//
// Internals run in double precision; Kronecker factors are FP32
// accumulations of rank-1 updates and are often near-singular, so the
// extra precision is what keeps (υ_G υ_Aᵀ + λ) divisions stable.
//
// A cyclic Jacobi solver is also provided as an independent oracle for
// property tests (both must agree on random SPD matrices).
#pragma once

#include "tensor/tensor.hpp"

namespace dkfac::linalg {

/// Result of a symmetric eigendecomposition: A = V · diag(values) · Vᵀ.
/// `values` ascending; column j of `vectors` is the eigenvector of values[j].
struct SymEig {
  Tensor values;   // shape [n]
  Tensor vectors;  // shape [n, n], eigenvectors in columns
};

/// Householder + implicit-shift QL. Requires a square symmetric rank-2
/// tensor (asymmetry up to FP32 noise is tolerated; the upper triangle wins).
SymEig sym_eig(const Tensor& a);

/// Cyclic Jacobi rotations — O(n³) per sweep, slow but independently
/// verifiable; used as a numerical oracle in tests.
SymEig sym_eig_jacobi(const Tensor& a, int max_sweeps = 64);

/// Reconstructs V · diag(values) · Vᵀ (for round-trip testing).
Tensor eig_reconstruct(const SymEig& eig);

}  // namespace dkfac::linalg
