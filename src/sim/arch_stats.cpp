#include "sim/arch_stats.hpp"

#include "common/error.hpp"
#include "nn/conv2d.hpp"  // conv_out_size

namespace dkfac::sim {

namespace {

/// Appends a conv layer's shape and advances the spatial tracker.
struct Builder {
  std::vector<LayerShape> layers;
  int64_t channels;
  int64_t res;  // current square spatial resolution

  void conv(const std::string& name, int64_t out, int64_t kernel, int64_t stride,
            int64_t padding) {
    const int64_t out_res = nn::conv_out_size(res, kernel, stride, padding);
    layers.push_back({name, channels * kernel * kernel, out, out_res * out_res});
    channels = out;
    res = out_res;
  }

  void pool(int64_t kernel, int64_t stride, int64_t padding) {
    res = nn::conv_out_size(res, kernel, stride, padding);
  }

  void fc(const std::string& name, int64_t out) {
    layers.push_back({name, channels + 1, out, 1});  // +1: bias column
    channels = out;
  }
};

void basic_block(Builder& b, const std::string& name, int64_t out, int64_t stride) {
  const int64_t in = b.channels;
  const int64_t in_res = b.res;
  b.conv(name + ".conv1", out, 3, stride, 1);
  b.conv(name + ".conv2", out, 3, 1, 1);
  if (stride != 1 || in != out) {
    // Projection shortcut operates on the block input.
    Builder side{{}, in, in_res};
    side.conv(name + ".down", out, 1, stride, 0);
    b.layers.push_back(side.layers[0]);
  }
}

void bottleneck_block(Builder& b, const std::string& name, int64_t mid,
                      int64_t stride) {
  const int64_t in = b.channels;
  const int64_t in_res = b.res;
  const int64_t out = mid * 4;
  b.conv(name + ".conv1", mid, 1, 1, 0);
  b.conv(name + ".conv2", mid, 3, stride, 1);
  b.conv(name + ".conv3", out, 1, 1, 0);
  if (stride != 1 || in != out) {
    Builder side{{}, in, in_res};
    side.conv(name + ".down", out, 1, stride, 0);
    b.layers.push_back(side.layers[0]);
  }
}

}  // namespace

int64_t ArchInfo::total_params() const {
  int64_t total = 0;
  for (const LayerShape& l : layers) total += l.params();
  return total;
}

double ArchInfo::forward_flops_per_sample() const {
  double total = 0.0;
  for (const LayerShape& l : layers) total += l.forward_flops();
  return total;
}

double ArchInfo::factor_flops_per_sample() const {
  double total = 0.0;
  for (const LayerShape& l : layers) total += l.factor_flops();
  return total;
}

std::vector<int64_t> ArchInfo::factor_dims() const {
  std::vector<int64_t> dims;
  dims.reserve(layers.size() * 2);
  for (const LayerShape& l : layers) {
    dims.push_back(l.a_dim);
    dims.push_back(l.g_dim);
  }
  return dims;
}

int64_t ArchInfo::factor_bytes() const {
  int64_t total = 0;
  for (int64_t d : factor_dims()) total += d * d * 4;
  return total;
}

int64_t ArchInfo::eigen_bytes() const {
  int64_t total = 0;
  for (int64_t d : factor_dims()) total += (d * d + d) * 4;
  return total;
}

ArchInfo resnet_imagenet_arch(int depth, int64_t image, int64_t num_classes) {
  std::vector<int> blocks;
  bool bottleneck = false;
  switch (depth) {
    case 18: blocks = {2, 2, 2, 2}; break;
    case 34: blocks = {3, 4, 6, 3}; break;
    case 50: blocks = {3, 4, 6, 3}; bottleneck = true; break;
    case 101: blocks = {3, 4, 23, 3}; bottleneck = true; break;
    case 152: blocks = {3, 8, 36, 3}; bottleneck = true; break;
    default:
      DKFAC_CHECK(false) << "unsupported ImageNet ResNet depth " << depth;
  }

  Builder b{{}, 3, image};
  b.conv("stem", 64, 7, 2, 3);
  b.pool(3, 2, 1);
  for (int stage = 0; stage < 4; ++stage) {
    const int64_t mid = int64_t{64} << stage;
    for (int block = 0; block < blocks[static_cast<size_t>(stage)]; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      const std::string name =
          "s" + std::to_string(stage + 1) + ".b" + std::to_string(block + 1);
      if (bottleneck) {
        bottleneck_block(b, name, mid, stride);
      } else {
        basic_block(b, name, mid, stride);
      }
    }
  }
  b.fc("fc", num_classes);
  return {"resnet" + std::to_string(depth), std::move(b.layers)};
}

ArchInfo resnet_cifar_arch(int depth, int64_t num_classes) {
  DKFAC_CHECK(depth >= 8 && (depth - 2) % 6 == 0)
      << "CIFAR ResNet depth must be 6n+2, got " << depth;
  const int n = (depth - 2) / 6;
  Builder b{{}, 3, 32};
  b.conv("stem", 16, 3, 1, 1);
  for (int stage = 0; stage < 3; ++stage) {
    const int64_t out = int64_t{16} << stage;
    for (int block = 0; block < n; ++block) {
      const int64_t stride = (stage > 0 && block == 0) ? 2 : 1;
      basic_block(b,
                  "s" + std::to_string(stage + 1) + ".b" + std::to_string(block + 1),
                  out, stride);
    }
  }
  b.fc("fc", num_classes);
  return {"resnet" + std::to_string(depth) + "-cifar", std::move(b.layers)};
}

}  // namespace dkfac::sim
