#include "sim/perf_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dkfac::sim {

double ClusterConfig::allreduce_s(int64_t bytes, int ranks) const {
  DKFAC_CHECK(ranks >= 1);
  if (ranks == 1 || bytes == 0) return 0.0;
  const double p = ranks;
  return 2.0 * (p - 1.0) * alpha_s +
         2.0 * (p - 1.0) / p * static_cast<double>(bytes) / bandwidth;
}

double ClusterConfig::allgather_s(int64_t total_bytes, int ranks) const {
  DKFAC_CHECK(ranks >= 1);
  if (ranks == 1 || total_bytes == 0) return 0.0;
  const double p = ranks;
  return (p - 1.0) * alpha_s +
         (p - 1.0) / p * static_cast<double>(total_bytes) / bandwidth;
}

ClusterSim::ClusterSim(ArchInfo arch, ClusterConfig config)
    : arch_(std::move(arch)), config_(config) {
  DKFAC_CHECK(!arch_.layers.empty());
}

double ClusterSim::forward_backward_s() const {
  // Backward ≈ 2× forward (grad w.r.t. weights + grad w.r.t. inputs).
  return 3.0 * arch_.forward_flops_per_sample() *
         static_cast<double>(config_.local_batch) / config_.gemm_tput;
}

double ClusterSim::sgd_iteration_s(int gpus) const {
  return config_.fixed_s + forward_backward_s() +
         config_.allreduce_s(arch_.gradient_bytes(), gpus);
}

std::vector<double> ClusterSim::worker_eig_seconds(
    int gpus, kfac::DistributionStrategy strategy) const {
  const std::vector<int64_t> dims = arch_.factor_dims();
  const kfac::WorkAssignment assignment =
      kfac::make_assignment(strategy, dims, gpus);
  std::vector<double> seconds(static_cast<size_t>(gpus), 0.0);
  for (size_t f = 0; f < dims.size(); ++f) {
    seconds[static_cast<size_t>(assignment.owner[f])] +=
        kfac::eig_cost(dims[f]) / config_.eig_rate + config_.eig_launch_s;
  }
  return seconds;
}

std::vector<int64_t> ClusterSim::worker_param_counts(
    int gpus, kfac::DistributionStrategy strategy) const {
  // The paper counts "the total number of parameters assigned to each
  // worker": every factor a worker decomposes contributes its layer's full
  // parameter count (so a layer whose A and G land on different workers is
  // counted on both — matching the paper's §VI-C4 numbers).
  const std::vector<int64_t> dims = arch_.factor_dims();
  const kfac::WorkAssignment assignment =
      kfac::make_assignment(strategy, dims, gpus);
  std::vector<int64_t> counts(static_cast<size_t>(gpus), 0);
  for (size_t f = 0; f < dims.size(); ++f) {
    counts[static_cast<size_t>(assignment.owner[f])] +=
        arch_.layers[f / 2].params();
  }
  return counts;
}

double ClusterSim::precondition_s(int gpus,
                                  kfac::DistributionStrategy strategy) const {
  // Eqs 13–15 per layer: two [g,g]·[g,a] and two [g,a]·[a,a] GEMMs. The
  // per-iteration bookkeeping congestion term (precond_congestion_s) is
  // charged in kfac_iteration_s — both strategies pay it equally.
  auto layer_flops = [](const LayerShape& l) {
    const double a = static_cast<double>(l.a_dim);
    const double g = static_cast<double>(l.g_dim);
    return 4.0 * g * a * (a + g);
  };

  if (strategy != kfac::DistributionStrategy::kLayerWise) {
    // K-FAC-opt: every rank preconditions every layer locally.
    double total = 0.0;
    for (const LayerShape& l : arch_.layers) total += layer_flops(l);
    return total / config_.precond_tput;
  }

  // K-FAC-lw: owners precondition their own layers; stage time = slowest.
  const std::vector<int64_t> dims = arch_.factor_dims();
  const kfac::WorkAssignment assignment =
      kfac::make_assignment(strategy, dims, gpus);
  std::vector<double> load(static_cast<size_t>(gpus), 0.0);
  for (size_t l = 0; l < arch_.layers.size(); ++l) {
    load[static_cast<size_t>(assignment.owner[2 * l])] +=
        layer_flops(arch_.layers[l]);
  }
  return *std::max_element(load.begin(), load.end()) / config_.precond_tput;
}

KfacStageProfile ClusterSim::kfac_stages(
    int gpus, kfac::DistributionStrategy strategy) const {
  KfacStageProfile profile;
  profile.factor_comp_s = arch_.factor_flops_per_sample() *
                          static_cast<double>(config_.local_batch) /
                          config_.factor_tput;
  profile.factor_comm_s = config_.allreduce_s(arch_.factor_bytes(), gpus);

  const std::vector<double> eig = worker_eig_seconds(gpus, strategy);
  profile.eig_comp_max_s = *std::max_element(eig.begin(), eig.end());
  profile.eig_comp_min_s = *std::min_element(eig.begin(), eig.end());

  profile.precond_s = precondition_s(gpus, strategy);

  if (strategy == kfac::DistributionStrategy::kLayerWise) {
    // Decompositions stay on the owner; instead the preconditioned
    // gradients (same size as the gradients) are exchanged every iteration
    // as one per-layer broadcast from each owner: bandwidth term of a ring
    // allgather plus a per-layer tree-broadcast launch cost.
    profile.eig_comm_s = 0.0;
    double hops = 0.0;
    for (int p = 1; p < gpus; p *= 2) hops += 1.0;
    profile.lw_grad_exchange_s =
        (gpus > 1 ? (gpus - 1.0) / gpus * static_cast<double>(arch_.gradient_bytes()) /
                        config_.bandwidth
                  : 0.0) +
        static_cast<double>(arch_.layers.size()) * hops * config_.lw_op_alpha_s;
  } else {
    profile.eig_comm_s = config_.allgather_s(arch_.eigen_bytes(), gpus);
    profile.lw_grad_exchange_s = 0.0;
  }
  return profile;
}

double ClusterSim::kfac_iteration_s(int gpus,
                                    kfac::DistributionStrategy strategy,
                                    int factor_freq, int inv_freq) const {
  DKFAC_CHECK(factor_freq >= 1 && inv_freq >= 1);
  const KfacStageProfile stages = kfac_stages(gpus, strategy);
  const double amortized_factors =
      (stages.factor_comp_s + stages.factor_comm_s) / factor_freq;
  const double amortized_eig =
      (stages.eig_comp_max_s + stages.eig_comm_s) / inv_freq;
  // Per-iteration K-FAC bookkeeping (hook capture, gradient staging, one
  // launch bundle per eligible layer) — both strategies pay it; see
  // ClusterConfig::precond_congestion_s.
  const double layers = static_cast<double>(arch_.layers.size());
  const double bookkeeping = config_.precond_congestion_s * layers * layers;
  return sgd_iteration_s(gpus) + amortized_factors + amortized_eig +
         stages.precond_s + stages.lw_grad_exchange_s + bookkeeping;
}

double ClusterSim::iterations_per_epoch(int gpus, int64_t samples) const {
  return static_cast<double>(samples) /
         (static_cast<double>(config_.local_batch) * gpus);
}

double ClusterSim::sgd_time_to_solution_s(int gpus, int epochs,
                                          int64_t samples) const {
  return sgd_iteration_s(gpus) * iterations_per_epoch(gpus, samples) * epochs;
}

double ClusterSim::kfac_time_to_solution_s(int gpus,
                                           kfac::DistributionStrategy strategy,
                                           int epochs, int64_t samples,
                                           int factor_freq, int inv_freq) const {
  return kfac_iteration_s(gpus, strategy, factor_freq, inv_freq) *
         iterations_per_epoch(gpus, samples) * epochs;
}

}  // namespace dkfac::sim
