// Calibrated cluster performance model.
//
// Reproduces the paper's at-scale measurements (Figs 7–10, Tables III–VI)
// on hardware we do not have: a Frontera-like GPU cluster (4×V100 per
// node, EDR InfiniBand) at 16–256 GPUs. The model follows the paper's own
// five-stage iteration decomposition (§II-B, Fig 1):
//
//   T_iter = T_io/fixed + T_f + T_e + T_x + T_u
//
// with K-FAC adding (a) factor computation — constant in GPU count, the
// §VI-C4 limitation; (b) eigendecomposition — max over workers of the
// n³-cost of their assigned factors, i.e. load balance is emergent from
// the real factor-size distribution and the assignment policy; and (c)
// collective costs from the α-β ring model.
//
// Constants are calibrated once against Table V (ResNet-50 @16 GPUs) and
// documented in EXPERIMENTS.md; everything that *varies* across the
// paper's tables (models, scales, strategies, frequencies) is derived, not
// fitted.
#pragma once

#include <vector>

#include "core/assignment.hpp"
#include "sim/arch_stats.hpp"

namespace dkfac::sim {

struct ClusterConfig {
  // --- network (effective, includes NCCL/launch + straggler overheads) ---
  double alpha_s = 310e-6;     // per-hop collective latency
  double bandwidth = 6.3e9;    // sustained bytes/s per GPU link share

  // --- compute throughputs (effective FLOP/s on V100 FP32) ---------------
  double gemm_tput = 1.0e13;     // forward/backward conv GEMMs
  double factor_tput = 3.2e13;   // factor covariance GEMMs (overlapped)
  double precond_tput = 2.0e13;  // Eqs 13–15 GEMMs
  double eig_rate = 6.5e10;      // symmetric eigensolve: n³ units / s
  double eig_launch_s = 3e-3;    // per-factor eigensolve launch overhead

  // --- per-layer overheads -------------------------------------------------
  /// Empirical per-iteration K-FAC bookkeeping term: cost grows with
  /// (eligible layer count)² — every layer's hooks, gradient staging and
  /// small-GEMM launches compound as the launch queue congests. Charged to
  /// both K-FAC variants. This is the per-iteration component of the
  /// paper's Te growth with model complexity (§VI-C4); calibrated against
  /// Table III (see EXPERIMENTS.md).
  double precond_congestion_s = 6.0e-6;
  /// Per-layer collective launch cost for K-FAC-lw's per-layer exchange of
  /// preconditioned gradients (one broadcast per layer per iteration).
  double lw_op_alpha_s = 80e-6;

  // --- misc ----------------------------------------------------------------
  double fixed_s = 0.030;      // per-iteration I/O + launch + variable update
  int64_t local_batch = 32;    // paper: batch = 32 × GPUs

  // Collective times (ring allreduce / allgather, binomial broadcast).
  double allreduce_s(int64_t bytes, int ranks) const;
  double allgather_s(int64_t total_bytes, int ranks) const;
};

/// Per-K-FAC-update-step profile — the rows of the paper's Table V.
struct KfacStageProfile {
  double factor_comp_s = 0.0;  // constant in GPU count
  double factor_comm_s = 0.0;  // fused factor allreduce
  double eig_comp_max_s = 0.0;  // slowest worker (stage time)
  double eig_comp_min_s = 0.0;  // fastest worker (Table VI)
  double eig_comm_s = 0.0;      // decomposition allgather (opt) / 0 (lw)
  double precond_s = 0.0;       // per-iteration preconditioning GEMMs
  double lw_grad_exchange_s = 0.0;  // per-iteration, layer-wise only
};

class ClusterSim {
 public:
  ClusterSim(ArchInfo arch, ClusterConfig config = {});

  const ArchInfo& arch() const { return arch_; }
  const ClusterConfig& config() const { return config_; }

  /// Plain synchronous-SGD iteration time at `gpus` ranks.
  double sgd_iteration_s(int gpus) const;

  /// Stage profile for one K-FAC update step under `strategy`.
  KfacStageProfile kfac_stages(int gpus, kfac::DistributionStrategy strategy) const;

  /// Average iteration time with K-FAC amortised over its update
  /// frequencies (factors every `factor_freq`, eigendecompositions every
  /// `inv_freq` iterations).
  double kfac_iteration_s(int gpus, kfac::DistributionStrategy strategy,
                          int factor_freq, int inv_freq) const;

  /// Time-to-solution in seconds for `epochs` epochs over a dataset of
  /// `samples` images (global batch = 32·gpus, the paper's setting).
  double sgd_time_to_solution_s(int gpus, int epochs, int64_t samples) const;
  double kfac_time_to_solution_s(int gpus, kfac::DistributionStrategy strategy,
                                 int epochs, int64_t samples, int factor_freq,
                                 int inv_freq) const;

  /// Per-worker eigendecomposition times under `strategy` (Table VI input).
  std::vector<double> worker_eig_seconds(int gpus,
                                         kfac::DistributionStrategy strategy) const;

  /// Per-worker assigned parameter counts (the §VI-C4 imbalance evidence).
  std::vector<int64_t> worker_param_counts(int gpus,
                                           kfac::DistributionStrategy strategy) const;

  /// The paper's epoch-constant update interval: 2000 @16 GPUs halving to
  /// 125 @256 (32000 / gpus).
  static int update_interval_for_scale(int gpus) { return 32000 / gpus; }

  double iterations_per_epoch(int gpus, int64_t samples) const;

 private:
  double forward_backward_s() const;
  double precondition_s(int gpus, kfac::DistributionStrategy strategy) const;

  ArchInfo arch_;
  ClusterConfig config_;
};

}  // namespace dkfac::sim
