// Architecture shape inventories.
//
// The at-scale experiments (Figs 7–10, Tables IV–VI) are driven by the
// *true* per-layer Kronecker-factor dimensions of ResNet-50/101/152 at
// ImageNet resolution. This module enumerates them by replaying the
// architecture arithmetic — no weights are allocated, so ResNet-152's 60M
// parameters cost nothing to "instantiate" here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dkfac::sim {

/// One K-FAC-eligible layer (conv or fc) of a network.
struct LayerShape {
  std::string name;
  int64_t a_dim = 0;    // C_in·k·k for conv, in_features+1 for fc
  int64_t g_dim = 0;    // C_out / out_features
  int64_t spatial = 0;  // OH·OW at the reference input resolution (1 for fc)

  /// Weight parameter count (the quantity behind the paper's worker-load
  /// imbalance discussion in §VI-C4).
  int64_t params() const { return a_dim * g_dim; }

  /// Forward FLOPs per sample: one GEMM of [spatial, a_dim]·[a_dim, g_dim].
  double forward_flops() const {
    return 2.0 * static_cast<double>(spatial) * static_cast<double>(a_dim) *
           static_cast<double>(g_dim);
  }

  /// FLOPs per sample for both Kronecker factors: A = patchesᵀpatches and
  /// G = gradsᵀgrads over `spatial` rows.
  double factor_flops() const {
    const double rows = static_cast<double>(spatial);
    return 2.0 * rows *
           (static_cast<double>(a_dim) * a_dim + static_cast<double>(g_dim) * g_dim);
  }
};

struct ArchInfo {
  std::string name;
  std::vector<LayerShape> layers;

  int64_t total_params() const;
  double forward_flops_per_sample() const;
  double factor_flops_per_sample() const;

  /// Flattened factor dims (A₀, G₁, A₁, G₂, ...) — the input to the
  /// dkfac::kfac assignment policies.
  std::vector<int64_t> factor_dims() const;

  /// Bytes of one gradient allreduce (FP32).
  int64_t gradient_bytes() const { return total_params() * 4; }

  /// Bytes of one fused factor allreduce (FP32, both factors per layer).
  int64_t factor_bytes() const;

  /// Bytes of one eigendecomposition allgather (Q n² + Λ n per factor).
  int64_t eigen_bytes() const;
};

/// ImageNet-family ResNet (depth ∈ {18, 34, 50, 101, 152}) at the given
/// input resolution (paper: 224).
ArchInfo resnet_imagenet_arch(int depth, int64_t image = 224,
                              int64_t num_classes = 1000);

/// CIFAR-family ResNet (depth = 6n+2) at 32×32.
ArchInfo resnet_cifar_arch(int depth, int64_t num_classes = 10);

}  // namespace dkfac::sim
