#include "obs/export.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dkfac::obs {
namespace {

// Byte sequences bracketing the traceEvents array in our own output;
// merge_chrome_traces splices on these, so writer and merger must agree.
constexpr const char* kHeaderPrefix = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
constexpr const char* kFooter = "\n]}\n";

/// Microseconds (fractional) since the tracer epoch. Events recorded
/// before the epoch was (re)stamped clamp to 0 rather than going huge.
double to_us(Ticks ticks, Ticks epoch) {
  if (ticks < epoch) return 0.0;
  return static_cast<double>(ticks - epoch) * kSecondsPerTick * 1e6;
}

void append_event_json(std::string& out, const Tracer& tracer,
                       const TraceEvent& event, int pid, uint32_t tid,
                       Ticks epoch) {
  char buf[64];
  out += "{\"name\":\"";
  out += json_escape(tracer.name_of(event.name));
  out += "\",\"ph\":\"";
  switch (event.type) {
    case EventType::kBegin:
      out += 'B';
      break;
    case EventType::kEnd:
      out += 'E';
      break;
    case EventType::kInstant:
      out += "i\",\"s\":\"t";  // thread-scoped instant
      break;
    case EventType::kCounter:
      out += 'C';
      break;
  }
  out += "\",\"ts\":";
  std::snprintf(buf, sizeof(buf), "%.3f", to_us(event.ticks, epoch));
  out += buf;
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%u", pid, tid);
  out += buf;
  if (event.type == EventType::kCounter) {
    // Counters carry their value as the single arg, named after the track.
    out += ",\"args\":{\"value\":";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(event.arg1));
    out += buf;
    out += '}';
  } else if (event.arg1_name != 0) {
    out += ",\"args\":{\"";
    out += json_escape(tracer.name_of(event.arg1_name));
    std::snprintf(buf, sizeof(buf), "\":%llu",
                  static_cast<unsigned long long>(event.arg1));
    out += buf;
    if (event.arg2_name != 0) {
      out += ",\"";
      out += json_escape(tracer.name_of(event.arg2_name));
      std::snprintf(buf, sizeof(buf), "\":%llu",
                    static_cast<unsigned long long>(event.arg2));
      out += buf;
    }
    out += '}';
  }
  out += '}';
}

void append_metadata_json(std::string& out, const std::string& kind,
                          const std::string& value, int pid, uint32_t tid) {
  char buf[48];
  out += "{\"name\":\"";
  out += kind;
  out += "\",\"ph\":\"M\",\"ts\":0";
  std::snprintf(buf, sizeof(buf), ",\"pid\":%d,\"tid\":%u", pid, tid);
  out += buf;
  out += ",\"args\":{\"name\":\"";
  out += json_escape(value);
  out += "\"}}";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_chrome_trace(std::ostream& out, const ExportOptions& opts) {
  const Tracer& tracer = Tracer::instance();
  const Ticks epoch = tracer.epoch();
  const auto threads = tracer.snapshot();

  std::vector<std::string> lines;
  const std::string process_name =
      opts.process_name.empty() ? "rank " + std::to_string(opts.pid)
                                : opts.process_name;
  {
    std::string line;
    append_metadata_json(line, "process_name", process_name, opts.pid, 0);
    lines.push_back(std::move(line));
  }
  for (const auto& thread : threads) {
    std::string line;
    append_metadata_json(line, "thread_name", thread.name, opts.pid,
                         thread.tid);
    lines.push_back(std::move(line));
    if (thread.dropped > 0) {
      // Make ring overflow visible in the UI instead of silently gapping.
      std::string note = "{\"name\":\"trace.dropped_events\",\"ph\":\"C\","
                         "\"ts\":0,\"pid\":" + std::to_string(opts.pid) +
                         ",\"tid\":" + std::to_string(thread.tid) +
                         ",\"args\":{\"value\":" +
                         std::to_string(thread.dropped) + "}}";
      lines.push_back(std::move(note));
    }
    for (const auto& event : thread.events) {
      std::string line2;
      append_event_json(line2, tracer, event, opts.pid, thread.tid, epoch);
      lines.push_back(std::move(line2));
    }
  }

  out << kHeaderPrefix;
  for (size_t i = 0; i < lines.size(); ++i) {
    if (i != 0) out << ",\n";
    out << lines[i];
  }
  out << kFooter;
}

void write_chrome_trace_file(const std::string& path,
                             const ExportOptions& opts) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("obs: cannot open trace file for write: " + path);
  write_chrome_trace(out, opts);
  out.flush();
  if (!out) throw Error("obs: write failed for trace file: " + path);
}

void merge_chrome_traces(const std::vector<std::string>& input_paths,
                         const std::string& out_path) {
  if (input_paths.empty()) {
    throw Error("obs: merge_chrome_traces needs at least one input");
  }
  std::string merged = kHeaderPrefix;
  bool first = true;
  for (const auto& path : input_paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("obs: cannot open rank trace: " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    const size_t begin = text.find(kHeaderPrefix);
    const size_t end = text.rfind(kFooter);
    if (begin != 0 || end == std::string::npos ||
        end < std::strlen(kHeaderPrefix)) {
      throw Error("obs: unrecognised trace format in " + path);
    }
    const std::string events =
        text.substr(std::strlen(kHeaderPrefix),
                    end - std::strlen(kHeaderPrefix));
    if (events.empty()) continue;
    if (!first) merged += ",\n";
    merged += events;
    first = false;
  }
  merged += kFooter;

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) throw Error("obs: cannot open merged trace for write: " + out_path);
  out << merged;
  out.flush();
  if (!out) throw Error("obs: write failed for merged trace: " + out_path);
}

std::string rank_trace_path(const std::string& path, int rank) {
  const std::string suffix = ".rank" + std::to_string(rank);
  const size_t slash = path.find_last_of('/');
  const size_t dot = path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace dkfac::obs
