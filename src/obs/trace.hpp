// Low-overhead phase tracing: per-thread ring buffers of timestamped
// events, exported as Chrome trace_event JSON (Perfetto-loadable).
//
// Design contract, in priority order:
//   1. Compiled out (-DDKFAC_TRACE_ENABLED=0): every DKFAC_TRACE_* macro
//      collapses to nothing — zero code, zero data.
//   2. Runtime off (the default): each macro costs one relaxed atomic
//      load and a branch. Nothing else runs — no interning, no clock
//      read, no buffer touch.
//   3. Runtime on: emitting an event is a steady_clock read plus a store
//      into this thread's preallocated ring. The hot path never takes a
//      lock and never allocates once a thread's ring exists and its names
//      are interned (both happen on first use — warm-up, by the same
//      definition the comm arenas use). A full ring overwrites the OLDEST
//      events and counts the drops; recording never blocks the caller.
//
// Event model: scoped spans (begin/end pairs via SpanScope / the
// DKFAC_TRACE_SCOPE macros, up to two u64 args attached at close),
// instant events, and counter samples. Names are interned once into
// stable u32 ids; macro call sites cache the id in a function-local
// static so steady-state emission never looks at the intern table.
//
// Spans also feed per-name duration aggregates (relaxed atomic tick
// sums), so derived metrics — e.g. communication time hidden behind
// backprop — survive ring wrap-around and cost one fetch_add per span.
//
// Threading: emission is wait-free per thread (each thread owns its
// ring). enable()/disable()/clear()/set_epoch_now() and snapshot() are
// control-plane calls: they may race emission without corrupting memory
// (indices are atomic), but a snapshot taken while writers are active can
// observe a partially-written newest event — quiesce writers (the
// trainer drains its executor) before exporting.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#ifndef DKFAC_TRACE_ENABLED
#define DKFAC_TRACE_ENABLED 1
#endif

namespace dkfac::obs {

/// steady_clock ticks (monotonic; on Linux CLOCK_MONOTONIC, shared by all
/// processes on a host — which is what makes the multi-rank merge line up).
using Ticks = uint64_t;

inline Ticks now_ticks() {
  return static_cast<Ticks>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

/// Seconds per steady_clock tick.
constexpr double kSecondsPerTick =
    static_cast<double>(std::chrono::steady_clock::period::num) /
    static_cast<double>(std::chrono::steady_clock::period::den);

enum class EventType : uint8_t {
  kBegin,    ///< span opened
  kEnd,      ///< span closed (carries the span's args)
  kInstant,  ///< point event
  kCounter,  ///< counter sample (value in arg1)
};

struct TraceEvent {
  Ticks ticks = 0;
  uint32_t name = 0;  ///< interned id (see Tracer::intern)
  EventType type = EventType::kInstant;
  uint32_t arg1_name = 0;  ///< 0 = no arg
  uint32_t arg2_name = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};

class Tracer {
 public:
  /// The process-wide tracer. Never destroyed (trivially leaked at exit)
  /// so late-exiting threads can always reach their buffers.
  static Tracer& instance();

  /// Hot-path gate: one relaxed atomic load.
  static bool enabled() {
    return enabled_flag().load(std::memory_order_relaxed);
  }

  /// Starts recording. `ring_capacity` is events per thread; existing
  /// rings are re-sized (call while no thread is emitting). Also stamps
  /// the export epoch to "now" so timestamps start near zero —
  /// set_epoch_now() after a cross-rank barrier refines it for merges.
  void enable(size_t ring_capacity = kDefaultRingCapacity);

  /// Stops recording. Buffers and their contents are retained for export.
  void disable();

  /// Drops all recorded events, aggregates, and drop counters. Interned
  /// names and thread registrations survive (call-site static ids and
  /// thread_local buffer pointers stay valid).
  void clear();

  /// Interns `name`, returning its stable non-zero id. Allocates only on
  /// first sight of a name; later calls are a shared-lock-free map find.
  uint32_t intern(std::string_view name);

  /// The id `name` was interned as, or 0 if never interned.
  uint32_t find_name(std::string_view name) const;

  /// Copy of the interned string for `id` (export-time use).
  std::string name_of(uint32_t id) const;

  /// Rank-synchronised timestamp all exported event times are relative
  /// to. Call immediately after a cross-rank barrier so every rank's
  /// t=0 is the same physical instant.
  void set_epoch_now() { epoch_.store(now_ticks(), std::memory_order_relaxed); }
  void set_epoch(Ticks t) { epoch_.store(t, std::memory_order_relaxed); }
  Ticks epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // ---- emission (hot path) ----------------------------------------------

  void emit(EventType type, uint32_t name, uint32_t arg1_name = 0,
            uint64_t arg1 = 0, uint32_t arg2_name = 0, uint64_t arg2 = 0,
            Ticks ticks = 0);

  void instant(uint32_t name) { emit(EventType::kInstant, name); }
  void counter(uint32_t name, uint64_t value) {
    emit(EventType::kCounter, name, 0, value);
  }

  /// Folds a closed span's duration into its per-name aggregate.
  void add_aggregate(uint32_t name, Ticks duration);

  // ---- aggregates --------------------------------------------------------

  /// Total recorded duration of all closed spans named `name` (0.0 if the
  /// name was never seen). Survives ring wrap-around.
  double aggregate_seconds(std::string_view name) const;
  uint64_t aggregate_count(std::string_view name) const;

  // ---- thread identity ---------------------------------------------------

  /// Labels the calling thread in exported traces ("main", "comm.worker",
  /// ...). Sticky: applies to the thread's buffer whenever it registers,
  /// so it is safe (and allocation-free) to call with tracing disabled.
  static void set_thread_name(std::string_view name);

  // ---- export ------------------------------------------------------------

  struct ThreadSnapshot {
    uint32_t tid = 0;
    std::string name;        ///< thread label ("thread-<tid>" if unnamed)
    uint64_t dropped = 0;    ///< events overwritten by ring wrap-around
    std::vector<TraceEvent> events;  ///< oldest → newest
  };

  /// Copies out every thread's surviving events. Quiesce writers first
  /// (see header comment) for a tear-free snapshot.
  std::vector<ThreadSnapshot> snapshot() const;

  /// Total events overwritten across all threads.
  uint64_t dropped_events() const;

  static constexpr size_t kDefaultRingCapacity = 1 << 16;
  /// Aggregate slots are preallocated so span-close fetch_adds never
  /// resize anything; interning more names than this throws.
  static constexpr size_t kMaxNames = 1024;

 private:
  Tracer();

  struct ThreadBuffer {
    std::vector<TraceEvent> ring;
    std::atomic<uint64_t> head{0};  ///< events ever written
    uint32_t tid = 0;
    std::string name;
  };

  struct Aggregate {
    std::atomic<uint64_t> ticks{0};
    std::atomic<uint64_t> count{0};
  };

  static std::atomic<bool>& enabled_flag();
  static ThreadBuffer*& registered_buffer_slot();
  ThreadBuffer& local_buffer();

  // Heterogeneous lookup so find(string_view) never materialises a
  // std::string — intern() after warm-up must not allocate.
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };

  mutable std::mutex mutex_;  // intern table + buffer registry
  std::unordered_map<std::string, uint32_t, NameHash, std::equal_to<>>
      name_ids_;
  std::vector<std::string> names_;  // index = id - 1
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  size_t ring_capacity_ = kDefaultRingCapacity;
  std::atomic<Ticks> epoch_{0};
  std::unique_ptr<Aggregate[]> aggregates_;  // kMaxNames slots
};

/// RAII span. Construct with an interned name id (0 = inactive no-op —
/// the macros pass 0 whenever tracing is off at entry). The destructor
/// closes the span even if tracing was disabled mid-flight, keeping
/// begin/end pairs balanced in the ring.
class SpanScope {
 public:
  explicit SpanScope(uint32_t name) : name_(name) {
    if (name_ != 0) {
      start_ = now_ticks();
      Tracer::instance().emit(EventType::kBegin, name_, 0, 0, 0, 0, start_);
    }
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  /// Attaches a u64 arg, emitted with the closing event (max two; later
  /// calls overwrite the second slot). `arg_name` is interned on use —
  /// a map find after first sight, nothing when the span is inactive.
  void set_arg(std::string_view arg_name, uint64_t value) {
    if (name_ == 0) return;
    const uint32_t id = Tracer::instance().intern(arg_name);
    if (arg1_name_ == 0 || arg1_name_ == id) {
      arg1_name_ = id;
      arg1_ = value;
    } else {
      arg2_name_ = id;
      arg2_ = value;
    }
  }

  bool active() const { return name_ != 0; }

  ~SpanScope() {
    if (name_ == 0) return;
    const Ticks end = now_ticks();
    Tracer& tracer = Tracer::instance();
    tracer.emit(EventType::kEnd, name_, arg1_name_, arg1_, arg2_name_, arg2_,
                end);
    tracer.add_aggregate(name_, end - start_);
  }

 private:
  uint32_t name_ = 0;
  Ticks start_ = 0;
  uint32_t arg1_name_ = 0;
  uint32_t arg2_name_ = 0;
  uint64_t arg1_ = 0;
  uint64_t arg2_ = 0;
};

/// Compiled-out stand-in for SpanScope so call sites using the _NAMED
/// macro keep compiling with DKFAC_TRACE_ENABLED=0.
struct NullSpan {
  void set_arg(std::string_view, uint64_t) {}
  bool active() const { return false; }
};

}  // namespace dkfac::obs

#define DKFAC_TRACE_CONCAT_IMPL(a, b) a##b
#define DKFAC_TRACE_CONCAT(a, b) DKFAC_TRACE_CONCAT_IMPL(a, b)

#if DKFAC_TRACE_ENABLED

/// Interns a name once per call site (function-local static), then reads
/// the cached id forever after.
#define DKFAC_TRACE_INTERN(str)                              \
  ([]() -> uint32_t {                                        \
    static const uint32_t dkfac_trace_interned_id =          \
        ::dkfac::obs::Tracer::instance().intern(str);        \
    return dkfac_trace_interned_id;                          \
  }())

/// Scoped span covering the rest of the enclosing block.
#define DKFAC_TRACE_SCOPE(str)                                        \
  ::dkfac::obs::SpanScope DKFAC_TRACE_CONCAT(dkfac_trace_scope_,      \
                                             __COUNTER__)(            \
      ::dkfac::obs::Tracer::enabled() ? DKFAC_TRACE_INTERN(str) : 0)

/// Scoped span bound to `var` so args can be attached: var.set_arg(...).
#define DKFAC_TRACE_SCOPE_NAMED(var, str) \
  ::dkfac::obs::SpanScope var(            \
      ::dkfac::obs::Tracer::enabled() ? DKFAC_TRACE_INTERN(str) : 0)

/// Scoped span whose name id is computed by the caller (pick one of
/// several DKFAC_TRACE_INTERN'd names at runtime — e.g. per collective
/// algorithm). `id_expr` must yield 0 when tracing is disabled.
#define DKFAC_TRACE_SCOPE_ID(var, id_expr) ::dkfac::obs::SpanScope var(id_expr)

#define DKFAC_TRACE_INSTANT(str)                                      \
  do {                                                                \
    if (::dkfac::obs::Tracer::enabled())                              \
      ::dkfac::obs::Tracer::instance().instant(DKFAC_TRACE_INTERN(str)); \
  } while (0)

#define DKFAC_TRACE_COUNTER(str, value)                               \
  do {                                                                \
    if (::dkfac::obs::Tracer::enabled())                              \
      ::dkfac::obs::Tracer::instance().counter(                       \
          DKFAC_TRACE_INTERN(str), static_cast<uint64_t>(value));     \
  } while (0)

#else  // DKFAC_TRACE_ENABLED == 0: macros vanish

#define DKFAC_TRACE_INTERN(str) (uint32_t{0})
#define DKFAC_TRACE_SCOPE(str) ((void)0)
#define DKFAC_TRACE_SCOPE_NAMED(var, str) ::dkfac::obs::NullSpan var
#define DKFAC_TRACE_SCOPE_ID(var, id_expr) ::dkfac::obs::NullSpan var
#define DKFAC_TRACE_INSTANT(str) ((void)0)
#define DKFAC_TRACE_COUNTER(str, value) ((void)0)

#endif  // DKFAC_TRACE_ENABLED
