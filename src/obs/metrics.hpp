// Bridges the repo's existing stat structs (comm::CommStats,
// kfac::KfacPreconditioner::StepReport, comm::ArenaStats) into an
// obs::Registry under stable dotted names and streams one JSONL record
// per training step. Also derives the paper's Fig. 4 quantity —
// communication hidden behind backprop vs exposed — from trace-span
// aggregates when tracing is on, falling back to the AsyncCommStats
// timers when it is not.
#pragma once

#include <fstream>
#include <string>

#include "comm/arena.hpp"
#include "comm/communicator.hpp"
#include "core/preconditioner.hpp"
#include "obs/registry.hpp"

namespace dkfac::obs {

/// Per-step scalars the trainer hands the logger (everything not already
/// carried by a stats struct).
struct StepSample {
  uint64_t step = 0;   ///< global step index (monotonic across epochs)
  uint64_t epoch = 0;
  double loss = 0.0;
  double accuracy = 0.0;      ///< running train accuracy this epoch
  double lr = 0.0;
  double step_seconds = 0.0;
  double data_seconds = 0.0;
  double forward_seconds = 0.0;
  double backward_seconds = 0.0;
  double grad_comm_seconds = 0.0;  ///< synchronous grad-comm wall time
  double apply_seconds = 0.0;      ///< optimizer + K-FAC apply
  /// Elastic-training counters (cumulative over the run): group
  /// re-formations survived so far, and K-FAC factor updates shed as
  /// straggler slack. Zero outside elastic runs.
  uint64_t elastic_reformations = 0;
  uint64_t elastic_skipped_factor_steps = 0;
  /// Elastic scale-up: ranks observed joining the group across this
  /// process's re-formations, and whether this process is a respawned
  /// replacement (0/1).
  uint64_t elastic_joins = 0;
  uint64_t elastic_respawns = 0;
};

/// Communication overlap split: hidden = collective time the main thread
/// never blocked for; exposed = time it did.
struct OverlapDerived {
  double hidden_seconds = 0.0;
  double exposed_seconds = 0.0;
};

/// Derives the overlap split. With tracing enabled the numbers come from
/// the "comm.async.flush" / "comm.async.wait" span aggregates (same
/// events the trace shows); otherwise from the AsyncCommStats timers.
/// Both paths implement overlap_won_seconds()'s definition, so they agree
/// up to clock placement.
OverlapDerived derive_overlap(const comm::AsyncCommStats& async);

/// Owns a Registry wired with the full dotted-name schema plus the output
/// stream for `train_cli --metrics <path>`. One record() call per step.
class StepMetricsLogger {
 public:
  /// Opens `path` for truncating write; throws dkfac::Error on failure.
  /// An empty path constructs a disabled logger (record() still updates
  /// the registry — tests read it — but writes nothing).
  explicit StepMetricsLogger(const std::string& path);

  /// Updates every metric from this step's stats and appends one JSONL
  /// line. `report` may be null (K-FAC off); `arena` is the summed
  /// comm-path arena stats.
  void record(const StepSample& sample, const comm::CommStats& comm,
              const kfac::KfacPreconditioner::StepReport* report,
              const comm::ArenaStats& arena);

  Registry& registry() { return registry_; }
  bool writing() const { return out_.is_open(); }

 private:
  Registry registry_;
  std::ofstream out_;
  /// A failed JSONL write has been reported (warn once, not per step —
  /// metrics are observability, so a full disk degrades to a warning
  /// instead of killing the training run).
  bool write_failure_logged_ = false;

  // Counters (cumulative, set from the cumulative CommStats each step).
  Registry::Counter* comm_allreduce_calls_;
  Registry::Counter* comm_allreduce_bytes_;
  Registry::Counter* comm_allgather_calls_;
  Registry::Counter* comm_allgather_bytes_;
  Registry::Counter* comm_broadcast_calls_;
  Registry::Counter* comm_broadcast_bytes_;
  Registry::Counter* comm_wire_sent_bytes_;
  Registry::Counter* comm_wire_recv_bytes_;
  Registry::Counter* factor_dense_bytes_;
  Registry::Counter* factor_packed_bytes_;
  Registry::Counter* factor_encoded_bytes_;
  Registry::Counter* decomp_dense_bytes_;
  Registry::Counter* decomp_packed_bytes_;
  Registry::Counter* arena_bytes_reserved_;
  Registry::Counter* arena_steady_allocs_;
  Registry::Counter* async_submitted_;
  Registry::Counter* async_batches_;
  Registry::Counter* kfac_factor_updates_;
  Registry::Counter* kfac_decomp_updates_;
  Registry::Counter* kfac_decomp_intra_;
  Registry::Counter* kfac_decomp_inter_;
  Registry::Counter* elastic_reformations_;
  Registry::Counter* elastic_skipped_factor_steps_;
  Registry::Counter* elastic_joins_;
  Registry::Counter* elastic_respawns_;
  // faultnet injection counters, read straight from the global faultnet
  // atomics at record() time (zero when no plan is armed).
  Registry::Counter* faultnet_total_;
  Registry::Counter* faultnet_refused_;
  Registry::Counter* faultnet_resets_;
  Registry::Counter* faultnet_stalls_;
  Registry::Counter* faultnet_short_writes_;
  Registry::Counter* faultnet_bitflips_;
  Registry::Counter* faultnet_aborts_;

  // Gauges (this step's values).
  Registry::Gauge* train_loss_;
  Registry::Gauge* train_accuracy_;
  Registry::Gauge* train_lr_;
  Registry::Gauge* train_step_seconds_;
  Registry::Gauge* data_load_seconds_;
  Registry::Gauge* train_forward_seconds_;
  Registry::Gauge* train_backward_seconds_;
  Registry::Gauge* comm_grad_seconds_;
  Registry::Gauge* train_apply_seconds_;
  Registry::Gauge* async_comm_seconds_;
  Registry::Gauge* async_wait_seconds_;
  Registry::Gauge* overlap_hidden_seconds_;
  Registry::Gauge* overlap_exposed_seconds_;
  Registry::Gauge* kfac_factor_seconds_;
  Registry::Gauge* kfac_decomposition_seconds_;
  Registry::Gauge* kfac_precondition_seconds_;
};

}  // namespace dkfac::obs
