// Chrome trace_event JSON exporter for obs::Tracer, plus the multi-rank
// merge used by the socket fork launcher.
//
// Output loads directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
// each rank is a `pid` (named "rank N"), each thread a `tid`, timestamps
// in microseconds relative to the tracer epoch — which every rank stamps
// right after a barrier, so cross-rank stalls line up on one timeline.
//
// merge_chrome_traces() relies on the writer's exact output shape (the
// traceEvents array is bracketed by known byte sequences) so merging is a
// string splice — no JSON parser in the library. Tests round-trip the
// output through a real parser to keep the shape honest.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dkfac::obs {

struct ExportOptions {
  int pid = 0;                  ///< rank id under multi-process runs
  std::string process_name;     ///< "rank 0", ... (empty = "rank <pid>")
};

/// Writes this process's recorded events as Chrome trace_event JSON.
void write_chrome_trace(std::ostream& out, const ExportOptions& opts = {});

/// write_chrome_trace to `path`; throws dkfac::Error on I/O failure.
void write_chrome_trace_file(const std::string& path,
                             const ExportOptions& opts = {});

/// Concatenates the traceEvents of several per-rank trace files (each
/// produced by write_chrome_trace_file) into one merged trace at
/// `out_path`. Ranks must have stamped their epochs at a common barrier
/// for the timelines to align. Throws dkfac::Error on missing/malformed
/// inputs or I/O failure.
void merge_chrome_traces(const std::vector<std::string>& input_paths,
                         const std::string& out_path);

/// "/path/trace.json" + rank 2 -> "/path/trace.rank2.json" (suffix is
/// inserted before the final extension; appended if there is none).
std::string rank_trace_path(const std::string& path, int rank);

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& text);

}  // namespace dkfac::obs
