#include "obs/metrics.hpp"

#include "common/error.hpp"
#include "common/logging.hpp"
#include "comm/net/faultnet.hpp"
#include "obs/trace.hpp"

namespace dkfac::obs {

OverlapDerived derive_overlap(const comm::AsyncCommStats& async) {
  double comm_seconds = async.comm_seconds;
  double wait_seconds = async.wait_seconds;
  if (Tracer::enabled()) {
    const Tracer& tracer = Tracer::instance();
    const double span_comm = tracer.aggregate_seconds("comm.async.flush");
    const double span_wait = tracer.aggregate_seconds("comm.async.wait");
    // Span aggregates only exist once instrumented code ran with tracing
    // on; a zero aggregate alongside nonzero timers means spans were
    // cleared or tracing was enabled late — trust the timers then.
    if (span_comm > 0.0 || async.comm_seconds == 0.0) {
      comm_seconds = span_comm;
      wait_seconds = span_wait;
    }
  }
  OverlapDerived out;
  out.hidden_seconds =
      comm_seconds > wait_seconds ? comm_seconds - wait_seconds : 0.0;
  out.exposed_seconds = comm_seconds - out.hidden_seconds;
  return out;
}

StepMetricsLogger::StepMetricsLogger(const std::string& path) {
  if (!path.empty()) {
    out_.open(path, std::ios::trunc);
    if (!out_) throw Error("obs: cannot open metrics file for write: " + path);
  }

  comm_allreduce_calls_ = &registry_.add_counter("comm.allreduce.calls");
  comm_allreduce_bytes_ = &registry_.add_counter("comm.allreduce.bytes");
  comm_allgather_calls_ = &registry_.add_counter("comm.allgather.calls");
  comm_allgather_bytes_ = &registry_.add_counter("comm.allgather.bytes");
  comm_broadcast_calls_ = &registry_.add_counter("comm.broadcast.calls");
  comm_broadcast_bytes_ = &registry_.add_counter("comm.broadcast.bytes");
  comm_wire_sent_bytes_ = &registry_.add_counter("comm.wire.sent_bytes");
  comm_wire_recv_bytes_ = &registry_.add_counter("comm.wire.recv_bytes");
  factor_dense_bytes_ = &registry_.add_counter("factor.dense_bytes");
  factor_packed_bytes_ = &registry_.add_counter("factor.packed_bytes");
  factor_encoded_bytes_ = &registry_.add_counter("factor.encoded_bytes");
  decomp_dense_bytes_ = &registry_.add_counter("decomp.dense_bytes");
  decomp_packed_bytes_ = &registry_.add_counter("decomp.packed_bytes");
  arena_bytes_reserved_ = &registry_.add_counter("arena.bytes_reserved");
  arena_steady_allocs_ = &registry_.add_counter("arena.steady_allocs");
  async_submitted_ = &registry_.add_counter("comm.async.submitted");
  async_batches_ = &registry_.add_counter("comm.async.batches");
  kfac_factor_updates_ = &registry_.add_counter("kfac.factor_updates");
  kfac_decomp_updates_ = &registry_.add_counter("kfac.decomp_updates");
  kfac_decomp_intra_ = &registry_.add_counter("kfac.decomp_intra_tasks");
  kfac_decomp_inter_ = &registry_.add_counter("kfac.decomp_inter_tasks");
  elastic_reformations_ = &registry_.add_counter("elastic.reformations");
  elastic_skipped_factor_steps_ =
      &registry_.add_counter("elastic.skipped_factor_steps");
  elastic_joins_ = &registry_.add_counter("elastic.joins");
  elastic_respawns_ = &registry_.add_counter("elastic.respawns");
  faultnet_total_ = &registry_.add_counter("faultnet.injected.total");
  faultnet_refused_ = &registry_.add_counter("faultnet.injected.refused");
  faultnet_resets_ = &registry_.add_counter("faultnet.injected.resets");
  faultnet_stalls_ = &registry_.add_counter("faultnet.injected.stalls");
  faultnet_short_writes_ =
      &registry_.add_counter("faultnet.injected.short_writes");
  faultnet_bitflips_ = &registry_.add_counter("faultnet.injected.bitflips");
  faultnet_aborts_ = &registry_.add_counter("faultnet.injected.aborts");

  train_loss_ = &registry_.add_gauge("train.loss");
  train_accuracy_ = &registry_.add_gauge("train.accuracy");
  train_lr_ = &registry_.add_gauge("train.lr");
  train_step_seconds_ = &registry_.add_gauge("train.step_seconds");
  data_load_seconds_ = &registry_.add_gauge("data.load_seconds");
  train_forward_seconds_ = &registry_.add_gauge("train.forward_seconds");
  train_backward_seconds_ = &registry_.add_gauge("train.backward_seconds");
  comm_grad_seconds_ = &registry_.add_gauge("comm.grad.seconds");
  train_apply_seconds_ = &registry_.add_gauge("train.apply_seconds");
  async_comm_seconds_ = &registry_.add_gauge("comm.async.comm_seconds");
  async_wait_seconds_ = &registry_.add_gauge("comm.async.wait_seconds");
  overlap_hidden_seconds_ =
      &registry_.add_gauge("comm.overlap.hidden_seconds");
  overlap_exposed_seconds_ =
      &registry_.add_gauge("comm.overlap.exposed_seconds");
  kfac_factor_seconds_ = &registry_.add_gauge("kfac.factor_seconds");
  kfac_decomposition_seconds_ =
      &registry_.add_gauge("kfac.decomposition_seconds");
  kfac_precondition_seconds_ =
      &registry_.add_gauge("kfac.precondition_seconds");
}

void StepMetricsLogger::record(const StepSample& sample,
                               const comm::CommStats& comm,
                               const kfac::KfacPreconditioner::StepReport* report,
                               const comm::ArenaStats& arena) {
  comm_allreduce_calls_->set(comm.allreduce_calls);
  comm_allreduce_bytes_->set(comm.allreduce_bytes);
  comm_allgather_calls_->set(comm.allgather_calls);
  comm_allgather_bytes_->set(comm.allgather_bytes);
  comm_broadcast_calls_->set(comm.broadcast_calls);
  comm_broadcast_bytes_->set(comm.broadcast_bytes);
  comm_wire_sent_bytes_->set(comm.wire_sent_bytes);
  comm_wire_recv_bytes_->set(comm.wire_recv_bytes);
  factor_dense_bytes_->set(comm.factor_dense_bytes);
  factor_packed_bytes_->set(comm.factor_packed_bytes);
  factor_encoded_bytes_->set(comm.factor_encoded_bytes);
  decomp_dense_bytes_->set(comm.decomp_dense_bytes);
  decomp_packed_bytes_->set(comm.decomp_packed_bytes);
  arena_bytes_reserved_->set(arena.bytes_reserved);
  arena_steady_allocs_->set(arena.steady_state_allocs);
  async_submitted_->set(comm.async.submitted);
  async_batches_->set(comm.async.batches);
  elastic_reformations_->set(sample.elastic_reformations);
  elastic_skipped_factor_steps_->set(sample.elastic_skipped_factor_steps);
  elastic_joins_->set(sample.elastic_joins);
  elastic_respawns_->set(sample.elastic_respawns);
  const comm::net::faultnet::InjectCounts faults =
      comm::net::faultnet::counts();
  faultnet_total_->set(faults.total);
  faultnet_refused_->set(faults.refused);
  faultnet_resets_->set(faults.resets);
  faultnet_stalls_->set(faults.stalls);
  faultnet_short_writes_->set(faults.short_writes);
  faultnet_bitflips_->set(faults.bitflips);
  faultnet_aborts_->set(faults.aborts);

  train_loss_->set(sample.loss);
  train_accuracy_->set(sample.accuracy);
  train_lr_->set(sample.lr);
  train_step_seconds_->set(sample.step_seconds);
  data_load_seconds_->set(sample.data_seconds);
  train_forward_seconds_->set(sample.forward_seconds);
  train_backward_seconds_->set(sample.backward_seconds);
  comm_grad_seconds_->set(sample.grad_comm_seconds);
  train_apply_seconds_->set(sample.apply_seconds);
  async_comm_seconds_->set(comm.async.comm_seconds);
  async_wait_seconds_->set(comm.async.wait_seconds);

  const OverlapDerived overlap = derive_overlap(comm.async);
  overlap_hidden_seconds_->set(overlap.hidden_seconds);
  overlap_exposed_seconds_->set(overlap.exposed_seconds);

  if (report != nullptr) {
    if (report->factors_updated) kfac_factor_updates_->add(1);
    if (report->decompositions_updated) kfac_decomp_updates_->add(1);
    kfac_decomp_intra_->add(
        static_cast<uint64_t>(report->decomp_intra_tasks));
    kfac_decomp_inter_->add(
        static_cast<uint64_t>(report->decomp_inter_tasks));
    kfac_factor_seconds_->set(report->factor_seconds);
    kfac_decomposition_seconds_->set(report->decomposition_seconds);
    kfac_precondition_seconds_->set(report->precondition_seconds);
  }

  if (out_.is_open()) {
    registry_.write_jsonl(out_, sample.step);
    out_.flush();  // keep the file tailable while training runs
    // A full disk (or yanked volume) must not silently truncate the JSONL:
    // metrics are observability, so degrade to one logged warning instead
    // of failing the training step.
    if (!out_ && !write_failure_logged_) {
      write_failure_logged_ = true;
      DKFAC_LOG_WARN << "obs: metrics write failed (disk full?) — "
                        "further step records will be dropped";
    }
  }
}

}  // namespace dkfac::obs
