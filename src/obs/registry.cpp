#include "obs/registry.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace dkfac::obs {

Registry::Counter& Registry::add_counter(const std::string& name) {
  auto [it, inserted] =
      metrics_.emplace(name, Metric{Kind::kCounter, Counter{}, Gauge{}});
  if (!inserted) {
    throw Error("obs::Registry: metric name already registered: " + name);
  }
  return it->second.counter;
}

Registry::Gauge& Registry::add_gauge(const std::string& name) {
  auto [it, inserted] =
      metrics_.emplace(name, Metric{Kind::kGauge, Counter{}, Gauge{}});
  if (!inserted) {
    throw Error("obs::Registry: metric name already registered: " + name);
  }
  return it->second.gauge;
}

Registry::Counter& Registry::counter(const std::string& name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    throw Error("obs::Registry: unknown metric: " + name);
  }
  if (it->second.kind != Kind::kCounter) {
    throw Error("obs::Registry: metric is a gauge, not a counter: " + name);
  }
  return it->second.counter;
}

Registry::Gauge& Registry::gauge(const std::string& name) {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    throw Error("obs::Registry: unknown metric: " + name);
  }
  if (it->second.kind != Kind::kGauge) {
    throw Error("obs::Registry: metric is a counter, not a gauge: " + name);
  }
  return it->second.gauge;
}

void Registry::write_jsonl(std::ostream& out, uint64_t step) const {
  out << "{\"step\":" << step;
  char buf[48];
  for (const auto& [name, metric] : metrics_) {
    out << ",\"" << name << "\":";
    if (metric.kind == Kind::kCounter) {
      out << metric.counter.value();
    } else {
      const double v = metric.gauge.value();
      if (!std::isfinite(v)) {
        out << "null";
      } else {
        // %.17g round-trips doubles but litters the file with noise
        // digits; %.9g keeps float32-sourced values exact and seconds at
        // nanosecond granularity, which is all our gauges carry.
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        out << buf;
      }
    }
  }
  out << "}\n";
}

}  // namespace dkfac::obs
