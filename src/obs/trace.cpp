#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace dkfac::obs {
namespace {

// Thread label storage kept outside Tracer so set_thread_name never
// allocates (safe with tracing disabled): a fixed thread_local char
// array, consumed when the thread's buffer registers.
struct PendingThreadName {
  char text[64] = {0};
};

PendingThreadName& pending_thread_name() {
  static thread_local PendingThreadName name;
  return name;
}

std::atomic<uint32_t>& next_tid() {
  static std::atomic<uint32_t> counter{1};
  return counter;
}

}  // namespace

Tracer::Tracer() : aggregates_(new Aggregate[kMaxNames]) {}

Tracer& Tracer::instance() {
  // Leaked on purpose: emission from detaching threads (and static
  // destructors elsewhere) must never race a dying tracer.
  static Tracer* tracer = new Tracer();
  return *tracer;
}

std::atomic<bool>& Tracer::enabled_flag() {
  static std::atomic<bool> flag{false};
  return flag;
}

void Tracer::enable(size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ring_capacity_ = std::max<size_t>(ring_capacity, 2);
    for (auto& buffer : buffers_) {
      if (buffer->ring.size() != ring_capacity_) {
        buffer->ring.assign(ring_capacity_, TraceEvent{});
        buffer->head.store(0, std::memory_order_relaxed);
      }
    }
  }
  set_epoch_now();
  enabled_flag().store(true, std::memory_order_release);
}

void Tracer::disable() {
  enabled_flag().store(false, std::memory_order_release);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& buffer : buffers_) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < kMaxNames; ++i) {
    aggregates_[i].ticks.store(0, std::memory_order_relaxed);
    aggregates_[i].count.store(0, std::memory_order_relaxed);
  }
}

uint32_t Tracer::intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  if (names_.size() >= kMaxNames) {
    throw Error("obs::Tracer: interned name limit (" +
                std::to_string(kMaxNames) + ") exceeded by \"" +
                std::string(name) + "\"");
  }
  names_.emplace_back(name);
  const uint32_t id = static_cast<uint32_t>(names_.size());  // 1-based
  name_ids_.emplace(names_.back(), id);
  return id;
}

uint32_t Tracer::find_name(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = name_ids_.find(name);
  return it == name_ids_.end() ? 0 : it->second;
}

std::string Tracer::name_of(uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id == 0 || id > names_.size()) return {};
  return names_[id - 1];
}

Tracer::ThreadBuffer*& Tracer::registered_buffer_slot() {
  static thread_local ThreadBuffer* buffer = nullptr;
  return buffer;
}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  ThreadBuffer*& buffer = registered_buffer_slot();
  if (buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    owned->tid = next_tid().fetch_add(1, std::memory_order_relaxed);
    const char* pending = pending_thread_name().text;
    owned->name = pending[0] != '\0'
                      ? std::string(pending)
                      : "thread-" + std::to_string(owned->tid);
    buffer = owned.get();
    std::lock_guard<std::mutex> lock(mutex_);
    owned->ring.assign(ring_capacity_, TraceEvent{});
    buffers_.push_back(std::move(owned));
  }
  return *buffer;
}

void Tracer::emit(EventType type, uint32_t name, uint32_t arg1_name,
                  uint64_t arg1, uint32_t arg2_name, uint64_t arg2,
                  Ticks ticks) {
  if (name == 0) return;
  ThreadBuffer& buffer = local_buffer();
  if (ticks == 0) ticks = now_ticks();
  const uint64_t head = buffer.head.load(std::memory_order_relaxed);
  TraceEvent& slot = buffer.ring[head % buffer.ring.size()];
  slot.ticks = ticks;
  slot.name = name;
  slot.type = type;
  slot.arg1_name = arg1_name;
  slot.arg2_name = arg2_name;
  slot.arg1 = arg1;
  slot.arg2 = arg2;
  // Publish after the slot is fully written so snapshot() (which reads
  // head with acquire) never sees a half-written newest event.
  buffer.head.store(head + 1, std::memory_order_release);
}

void Tracer::add_aggregate(uint32_t name, Ticks duration) {
  if (name == 0 || name > kMaxNames) return;
  Aggregate& agg = aggregates_[name - 1];
  agg.ticks.fetch_add(duration, std::memory_order_relaxed);
  agg.count.fetch_add(1, std::memory_order_relaxed);
}

double Tracer::aggregate_seconds(std::string_view name) const {
  const uint32_t id = find_name(name);
  if (id == 0 || id > kMaxNames) return 0.0;
  return static_cast<double>(
             aggregates_[id - 1].ticks.load(std::memory_order_relaxed)) *
         kSecondsPerTick;
}

uint64_t Tracer::aggregate_count(std::string_view name) const {
  const uint32_t id = find_name(name);
  if (id == 0 || id > kMaxNames) return 0;
  return aggregates_[id - 1].count.load(std::memory_order_relaxed);
}

void Tracer::set_thread_name(std::string_view name) {
  PendingThreadName& pending = pending_thread_name();
  const size_t n = std::min(name.size(), sizeof(pending.text) - 1);
  std::memcpy(pending.text, name.data(), n);
  pending.text[n] = '\0';
  // If this thread already registered a buffer, rename it in place; if
  // not, stay lazy — deliberately NOT local_buffer(), which would allocate
  // a ring for threads that only ever name themselves.
  if (ThreadBuffer* buffer = registered_buffer_slot()) {
    Tracer& tracer = instance();
    std::lock_guard<std::mutex> lock(tracer.mutex_);
    buffer->name.assign(pending.text);
  }
}

std::vector<Tracer::ThreadSnapshot> Tracer::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ThreadSnapshot> out;
  out.reserve(buffers_.size());
  for (const auto& buffer : buffers_) {
    ThreadSnapshot snap;
    snap.tid = buffer->tid;
    snap.name = buffer->name;
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->ring.size();
    const uint64_t kept = std::min(head, capacity);
    snap.dropped = head - kept;
    snap.events.reserve(kept);
    for (uint64_t i = head - kept; i < head; ++i) {
      snap.events.push_back(buffer->ring[i % capacity]);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

uint64_t Tracer::dropped_events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t dropped = 0;
  for (const auto& buffer : buffers_) {
    const uint64_t head = buffer->head.load(std::memory_order_acquire);
    const uint64_t capacity = buffer->ring.size();
    dropped += head > capacity ? head - capacity : 0;
  }
  return dropped;
}

}  // namespace dkfac::obs
