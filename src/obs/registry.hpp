// Unified metrics registry: named counters (u64, monotonic by
// convention) and gauges (double, last-value) behind stable dotted
// names ("comm.wire.sent_bytes", "train.loss", ...). The registry
// replaces ad-hoc struct plumbing for anything that wants to be
// observable: register once, update through the returned handle, and
// write_jsonl() emits one sorted JSON object per step.
//
// Handles are stable for the registry's lifetime (node-based storage);
// registering the same name twice throws — two subsystems silently
// sharing a metric is always a bug.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace dkfac::obs {

class Registry {
 public:
  class Counter {
   public:
    void add(uint64_t delta) { value_ += delta; }
    void set(uint64_t value) { value_ = value; }
    uint64_t value() const { return value_; }

   private:
    uint64_t value_ = 0;
  };

  class Gauge {
   public:
    void set(double value) { value_ = value; }
    double value() const { return value_; }

   private:
    double value_ = 0.0;
  };

  /// Registers a metric under `name`. Throws dkfac::Error if the name is
  /// already taken (by either kind). The reference stays valid as long
  /// as the registry lives.
  Counter& add_counter(const std::string& name);
  Gauge& add_gauge(const std::string& name);

  /// Lookup by name; throws dkfac::Error on unknown name or kind
  /// mismatch. Intended for tests and one-off readers, not hot paths —
  /// hold the handle from add_* instead.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  bool contains(const std::string& name) const {
    return metrics_.count(name) != 0;
  }
  size_t size() const { return metrics_.size(); }

  /// One JSON object on a single line: {"step":N,"a.b":1,...}, keys in
  /// sorted order (std::map iteration), gauges with enough precision to
  /// round-trip, non-finite gauges as null (JSON has no NaN).
  void write_jsonl(std::ostream& out, uint64_t step) const;

 private:
  enum class Kind { kCounter, kGauge };
  struct Metric {
    Kind kind;
    Counter counter;
    Gauge gauge;
  };
  // std::map: node-based (stable handle addresses) and sorted (stable
  // JSONL key order) in one container.
  std::map<std::string, Metric> metrics_;
};

}  // namespace dkfac::obs
