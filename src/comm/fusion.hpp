// Fusion-buffer collectives (Horovod §II-D fidelity).
//
// Horovod accumulates small tensors into a 16–32 MB fusion buffer before
// each allreduce so every collective stays bandwidth-dominated. This
// helper gives dkfac the same behaviour: register any number of tensor
// views, then execute one chunked allreduce over them.
//
// Views may be lossless fp32 payloads or comm::Codec bit-packed fp16/bf16
// payloads (two 16-bit elements per transport float). All capacity and
// chunk accounting is done in BYTES of the transport representation — the
// one unit that stays truthful across element widths — so a half-width
// encoded payload fills exactly half the chunk budget and mixed-width
// registration sequences can never mis-chunk. Each issued collective is
// uniform in precision: a precision change forces a chunk boundary, since
// encoded and lossless payloads take different reduction paths
// (allreduce_encoded vs allreduce).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace dkfac::comm {

class FusionBuffer {
 public:
  /// `capacity_bytes` mirrors Horovod's fusion-buffer knob (default 32 MB).
  explicit FusionBuffer(Communicator& comm, size_t capacity_bytes = 32 << 20);

  /// Registers a tensor view for the next allreduce. Views must stay valid
  /// until execute() returns. `precision` declares the view's wire format:
  /// kFp32 for plain float data, kFp16/kBf16 for a Codec bit-packed
  /// payload (reduced via the encode-once-fold-in-fp32 collective).
  void add(std::span<float> view, Precision precision = Precision::kFp32);
  void add(Tensor& tensor) { add(tensor.span()); }

  /// Allreduces every registered view, packing them into buffer-sized
  /// chunks (each chunk is one collective). Clears the registration list.
  void execute(ReduceOp op);

  /// Frees the staging allocation (it regrows on the next execute). Call
  /// between rare exchanges — e.g. K-FAC factor updates under frequency
  /// decay — so the largest payload ever seen isn't held across thousands
  /// of skip iterations. Hot-path owners (AsyncExecutor) keep it warm.
  void release_staging();

  size_t pending_views() const { return views_.size(); }
  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Collectives issued by the last execute() — the fusion ratio.
  size_t last_chunk_count() const { return last_chunk_count_; }

 private:
  struct View {
    std::span<float> data;
    Precision precision = Precision::kFp32;
  };

  Communicator& comm_;
  size_t capacity_bytes_;
  std::vector<View> views_;
  std::vector<float> staging_;
  size_t last_chunk_count_ = 0;
};

}  // namespace dkfac::comm
