// Fusion-buffer collectives (Horovod §II-D fidelity).
//
// Horovod accumulates small tensors into a 16–32 MB fusion buffer before
// each allreduce so every collective stays bandwidth-dominated. This
// helper gives dkfac the same behaviour: register any number of tensor
// views, then execute one chunked allreduce over them.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace dkfac::comm {

class FusionBuffer {
 public:
  /// `capacity_bytes` mirrors Horovod's fusion-buffer knob (default 32 MB).
  explicit FusionBuffer(Communicator& comm, size_t capacity_bytes = 32 << 20);

  /// Registers a tensor view for the next allreduce. Views must stay valid
  /// until execute() returns.
  void add(std::span<float> view);
  void add(Tensor& tensor) { add(tensor.span()); }

  /// Allreduces every registered view, packing them into buffer-sized
  /// chunks (each chunk is one collective). Clears the registration list.
  void execute(ReduceOp op);

  /// Frees the staging allocation (it regrows on the next execute). Call
  /// between rare exchanges — e.g. K-FAC factor updates under frequency
  /// decay — so the largest payload ever seen isn't held across thousands
  /// of skip iterations. Hot-path owners (AsyncExecutor) keep it warm.
  void release_staging();

  size_t pending_views() const { return views_.size(); }
  size_t capacity_elements() const { return capacity_elements_; }
  /// Collectives issued by the last execute() — the fusion ratio.
  size_t last_chunk_count() const { return last_chunk_count_; }

 private:
  Communicator& comm_;
  size_t capacity_elements_;
  std::vector<std::span<float>> views_;
  std::vector<float> staging_;
  size_t last_chunk_count_ = 0;
};

}  // namespace dkfac::comm
