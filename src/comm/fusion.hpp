// Fusion-buffer collectives (Horovod §II-D fidelity).
//
// Horovod accumulates small tensors into a 16–32 MB fusion buffer before
// each allreduce so every collective stays bandwidth-dominated. This
// helper gives dkfac the same behaviour: register any number of buffer
// views, then execute one chunked allreduce over them.
//
// Views may be lossless fp32 payloads or comm::Codec bit-packed fp16/bf16
// payloads (two 16-bit elements per transport float). All capacity and
// chunk accounting is done in BYTES of the transport representation — the
// one unit that stays truthful across element widths — so a half-width
// encoded payload fills exactly half the chunk budget and mixed-width
// registration sequences can never mis-chunk. Each issued collective is
// uniform in precision: a precision change forces a chunk boundary, since
// encoded and lossless payloads take different reduction paths
// (allreduce_encoded vs allreduce).
//
// Zero-copy: the buffer no longer owns a staging vector. When a chunk's
// placements are contiguous in memory — the common case now that the
// preconditioner packs every factor into one arena slot — the collective
// runs DIRECTLY on that memory: no copy in, no copy out, no allocation.
// Only a chunk assembled from scattered views is staged, through a private
// arena slot whose block is reused forever (bit_ceil-rounded requests, so
// steady-state staging never touches the heap either). Chunk boundaries
// are byte-for-byte identical to the staged path, so results are bitwise
// the same either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/arena.hpp"
#include "comm/communicator.hpp"

namespace dkfac::comm {

class FusionBuffer {
 public:
  /// `capacity_bytes` mirrors Horovod's fusion-buffer knob (default 32 MB).
  explicit FusionBuffer(Communicator& comm, size_t capacity_bytes = 32 << 20);

  /// Registers a view for the next allreduce. The memory must stay valid
  /// until execute() returns; arena-backed views are additionally
  /// epoch-checked at execute time, so a view whose arena was reset fails
  /// there instead of corrupting recycled memory. Views registered for one
  /// execute must not overlap each other (the reduction would double-fold
  /// the shared region) — add() rejects overlaps.
  void add(const BufferView& view);
  /// Span convenience: wraps caller-owned storage. `precision` declares the
  /// wire format: kFp32 for plain float data, kFp16/kBf16 for a Codec
  /// bit-packed payload (reduced via encode-once-fold-in-fp32).
  void add(std::span<float> view, Precision precision = Precision::kFp32);
  void add(Tensor& tensor) { add(tensor.span()); }

  /// Allreduces every registered view, packing them into buffer-sized
  /// chunks (each chunk is one collective). Clears the registration list.
  void execute(ReduceOp op);

  /// No-op. The staging vector this used to free is gone — staging now
  /// lives in an arena block that is retained (and rewound) by design, so
  /// there is nothing to release and no regrow-on-next-execute cost to
  /// dodge. Kept for one release so existing call sites keep compiling.
  [[deprecated("staging lives in a retained arena block; call is a no-op")]]
  void release_staging() {}

  /// Declares warm-up over for the private staging arena: any further
  /// heap growth counts as steady_state_allocs.
  void mark_steady_state() { staging_arena_.mark_steady_state(); }
  ArenaStats arena_stats() const { return staging_arena_.stats(); }

  size_t pending_views() const { return views_.size(); }
  size_t capacity_bytes() const { return capacity_bytes_; }
  /// Collectives issued by the last execute() — the fusion ratio.
  size_t last_chunk_count() const { return last_chunk_count_; }
  /// Chunks of the last execute() that ran directly on registered memory.
  size_t last_inplace_chunks() const { return last_inplace_chunks_; }
  /// Lifetime bytes memcpy'd through the staging fallback (both
  /// directions). Zero on an all-contiguous workload — the number the
  /// zero-copy ablation pins.
  uint64_t staged_copy_bytes() const {
    return staged_copy_bytes_.load(std::memory_order_relaxed);
  }

 private:
  Communicator& comm_;
  size_t capacity_bytes_;
  std::vector<BufferView> views_;
  /// Backs chunks whose placements are scattered in memory. Reused across
  /// executes; requests are bit_ceil-rounded so the block set converges.
  Arena staging_arena_;
  struct Placement {
    size_t view;
    size_t view_offset;
    size_t chunk_offset;
    size_t count;
    float* data;  // resolved (epoch-checked) pointer into the view
  };
  std::vector<Placement> placements_;  // reused; cleared per chunk
  size_t last_chunk_count_ = 0;
  size_t last_inplace_chunks_ = 0;
  std::atomic<uint64_t> staged_copy_bytes_{0};
};

}  // namespace dkfac::comm
