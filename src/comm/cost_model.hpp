// Analytic collective cost model (alpha–beta model on a ring).
//
// Used by dkfac_sim to reproduce the paper's at-scale results (Figs 7–9,
// Tables IV–V). Horovod's allreduce is the bandwidth-optimal ring
// scatter-reduce/allgather (Patarasuk & Yuan), whose cost for message size
// n bytes over p ranks is
//
//   T = 2(p-1)·α + 2·(p-1)/p · n/β
//
// with per-hop latency α and link bandwidth β. Ring allgather moves
// (p-1)/p of the aggregate payload; broadcast is modelled as a binomial
// tree. Defaults approximate EDR InfiniBand (100 Gb/s) with NCCL-like
// launch overheads, the fabric of the paper's Frontera GPU subsystem.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"

namespace dkfac::comm {

struct CostModel {
  double latency_s = 2.0e-5;          // per-hop α (NCCL launch + EDR hop)
  double bandwidth_bytes_per_s = 10.0e9;  // β ≈ 100 Gb/s EDR effective
  /// Fraction of β actually sustained by the collective implementation.
  double efficiency = 0.85;

  // ---- backend presets ----------------------------------------------------
  // Each Communicator backend reports the preset matching its fabric via
  // cost_model(); consumers (AsyncExecutor thresholds, fusion capacities,
  // SocketComm's algorithm choice) derive their tuning from it instead of
  // hard-coding numbers for one backend.

  /// ThreadComm: a collective is a barrier + memcpy. α is a condition-
  /// variable wake, β a memory-bandwidth share.
  static CostModel shared_memory() { return {2.0e-6, 8.0e9, 0.9}; }

  /// SocketComm over loopback TCP: α is syscall + scheduling per frame,
  /// β the loopback stack with checksumming overhead.
  static CostModel loopback_tcp() { return {3.0e-5, 3.0e9, 0.7}; }

  double effective_bandwidth() const { return bandwidth_bytes_per_s * efficiency; }

  /// Ring allreduce of `bytes` across `ranks`.
  double allreduce_time(uint64_t bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks == 1 || bytes == 0) return 0.0;
    const double p = ranks;
    return 2.0 * (p - 1.0) * latency_s +
           2.0 * (p - 1.0) / p * static_cast<double>(bytes) / effective_bandwidth();
  }

  /// Ring allgather where `total_bytes` is the aggregate gathered payload.
  double allgather_time(uint64_t total_bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks == 1 || total_bytes == 0) return 0.0;
    const double p = ranks;
    return (p - 1.0) * latency_s +
           (p - 1.0) / p * static_cast<double>(total_bytes) / effective_bandwidth();
  }

  /// Fusion-buffer capacity that keeps the per-chunk latency term at most
  /// `max_latency_fraction` of the bandwidth term for a ring allreduce:
  /// chunks at least p·α·β_eff / f bytes stay bandwidth-dominated. Clamped
  /// to [1 MB, 64 MB] — Horovod's practical fusion-buffer range.
  uint64_t recommended_fusion_bytes(int ranks,
                                    double max_latency_fraction = 0.05) const {
    DKFAC_CHECK(ranks >= 1);
    DKFAC_CHECK(max_latency_fraction > 0.0 && max_latency_fraction < 1.0);
    constexpr uint64_t kMinBytes = 1ull << 20;
    constexpr uint64_t kMaxBytes = 64ull << 20;
    if (ranks == 1) return kMaxBytes / 2;  // no collectives issued anyway
    const double bytes = static_cast<double>(ranks) * latency_s *
                         effective_bandwidth() / max_latency_fraction;
    if (bytes >= static_cast<double>(kMaxBytes)) return kMaxBytes;
    return std::max(kMinBytes, static_cast<uint64_t>(bytes));
  }

  /// Async-pipeline launch threshold: the payload at which a ring
  /// allreduce's latency term equals its bandwidth term (2(p-1)·α ==
  /// 2(p-1)/p · n/β_eff → n = p·α·β_eff). Below it, fusing more tensors
  /// into the batch is free; above it, the collective is bandwidth-
  /// dominated and holding it back only wastes overlap. Low-latency
  /// fabrics (shared memory) land in the tens of KB, loopback TCP in the
  /// hundreds — which is exactly why this must come from the backend's
  /// cost model rather than a constant tuned for one of them.
  uint64_t recommended_eager_bytes(int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    constexpr uint64_t kMinBytes = 4ull << 10;
    constexpr uint64_t kMaxBytes = 8ull << 20;
    if (ranks == 1) return kMinBytes;  // no collectives issued anyway
    const double bytes =
        static_cast<double>(ranks) * latency_s * effective_bandwidth();
    if (bytes >= static_cast<double>(kMaxBytes)) return kMaxBytes;
    return std::max(kMinBytes, static_cast<uint64_t>(bytes));
  }

  /// Chunk count that minimises a pipelined chain reduce/broadcast of
  /// `bytes` over `ranks`: T(K) = (K + p - 2)(α + (n/K)/β) is minimal at
  /// K* = sqrt((p-2)·n / (α·β_eff)). Clamped so chunks stay ≥ 4 KB (frame
  /// overhead) and K ≤ 256 (bounded header traffic).
  int pipeline_chunk_count(uint64_t bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks <= 2 || bytes == 0) return 1;
    const double ideal = std::sqrt(static_cast<double>(ranks - 2) *
                                   static_cast<double>(bytes) /
                                   (latency_s * effective_bandwidth()));
    const auto by_size = static_cast<int64_t>(bytes / (4ull << 10));
    const int64_t k = std::clamp<int64_t>(static_cast<int64_t>(ideal), 1,
                                          std::max<int64_t>(1, by_size));
    return static_cast<int>(std::min<int64_t>(k, 256));
  }

  /// Pipelined chain reduce + chain broadcast of `bytes` across `ranks`
  /// (the rank-order-preserving allreduce SocketComm uses for large
  /// payloads; see socket_comm.hpp).
  double pipelined_allreduce_time(uint64_t bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks == 1 || bytes == 0) return 0.0;
    const double k = pipeline_chunk_count(bytes, ranks);
    const double hop = latency_s + static_cast<double>(bytes) / k / effective_bandwidth();
    return 2.0 * (k + ranks - 2.0) * hop;
  }

  /// Ring circulation of every rank's full `bytes` payload + local fold
  /// (SocketComm's latency-optimal small-message allreduce): p-1 steps,
  /// each moving the full payload per link.
  double circulating_allreduce_time(uint64_t bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks == 1 || bytes == 0) return 0.0;
    const double p = ranks;
    return (p - 1.0) * (latency_s + static_cast<double>(bytes) / effective_bandwidth());
  }

  /// Binomial-tree broadcast of `bytes` from one root.
  double broadcast_time(uint64_t bytes, int ranks) const {
    DKFAC_CHECK(ranks >= 1);
    if (ranks == 1 || bytes == 0) return 0.0;
    double hops = 0.0;
    for (int p = 1; p < ranks; p *= 2) hops += 1.0;
    return hops * (latency_s + static_cast<double>(bytes) / effective_bandwidth());
  }
};

}  // namespace dkfac::comm
