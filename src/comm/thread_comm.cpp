#include "comm/thread_comm.hpp"

#include <exception>
#include <thread>

#include "common/error.hpp"

namespace dkfac::comm {

void ThreadComm::allreduce(std::span<float> data, ReduceOp op) {
  auto& st = *state_;
  stats_.allreduce_calls++;
  stats_.allreduce_bytes += data.size_bytes();
  if (st.size == 1) return;

  // Publish this rank's buffer, wait for everyone, then every rank reduces
  // all contributions in rank order into a private scratch buffer. Doing
  // the full reduction on every rank (instead of scatter-reduce) costs
  // O(P·n) per rank but is deterministic and identical across ranks, which
  // the reproducibility tests rely on.
  st.send_slots[static_cast<size_t>(rank_)] = data;
  st.barrier.arrive_and_wait();

  // Rank 0's contribution seeds the scratch, so no zero-fill pass is needed
  // and the buffer can be reused allocation-free across calls. The fold
  // itself is the shared fold_contribution/finish_reduce — the definition
  // every backend (and the encoded collective) must match bit for bit.
  reduce_scratch_.resize(data.size());
  std::vector<float>& result = reduce_scratch_;
  for (int r = 0; r < st.size; ++r) {
    const auto src = st.send_slots[static_cast<size_t>(r)];
    DKFAC_CHECK(src.size() == data.size())
        << "allreduce length mismatch: rank " << r << " sent " << src.size()
        << " elements, rank " << rank_ << " sent " << data.size();
    if (r == 0) {
      std::copy(src.begin(), src.end(), result.begin());
    } else {
      fold_contribution(result, src, op);
    }
  }
  finish_reduce(result, op, st.size);

  // All ranks finished reading every slot before anyone overwrites `data`.
  st.barrier.arrive_and_wait();
  std::copy(result.begin(), result.end(), data.begin());
  st.barrier.arrive_and_wait();
}

std::vector<float> ThreadComm::allgather(std::span<const float> send) {
  std::vector<float> out;
  allgather_into(send, out);
  return out;
}

void ThreadComm::allgather_into(std::span<const float> send,
                                std::vector<float>& recv) {
  auto& st = *state_;
  stats_.allgather_calls++;
  stats_.allgather_bytes += send.size_bytes();
  if (st.size == 1) {
    recv.assign(send.begin(), send.end());
    return;
  }

  st.send_slots[static_cast<size_t>(rank_)] = send;
  st.barrier.arrive_and_wait();

  size_t total = 0;
  for (int r = 0; r < st.size; ++r) total += st.send_slots[static_cast<size_t>(r)].size();
  // resize + positional copy (not clear/insert) so a warm caller-owned
  // buffer of the right capacity is refilled without touching the heap.
  recv.resize(total);
  size_t offset = 0;
  for (int r = 0; r < st.size; ++r) {
    const auto src = st.send_slots[static_cast<size_t>(r)];
    std::copy(src.begin(), src.end(), recv.begin() + static_cast<ptrdiff_t>(offset));
    offset += src.size();
  }

  st.barrier.arrive_and_wait();
}

void ThreadComm::broadcast(std::span<float> data, int root) {
  auto& st = *state_;
  DKFAC_CHECK(root >= 0 && root < st.size)
      << "broadcast root " << root << " out of range for size " << st.size;
  stats_.broadcast_calls++;
  // Cross-backend payload convention (see CommStats): the root injected
  // the payload, receiving ranks contributed nothing. Counting on every
  // rank would inflate the group-wide sum p× relative to allreduce and
  // allgather, whose counters already sum to the injected payload.
  if (rank_ == root) stats_.broadcast_bytes += data.size_bytes();
  if (st.size == 1) return;

  if (rank_ == root) {
    st.send_slots[static_cast<size_t>(root)] = data;
  }
  st.barrier.arrive_and_wait();

  if (rank_ != root) {
    const auto src = st.send_slots[static_cast<size_t>(root)];
    DKFAC_CHECK(src.size() == data.size())
        << "broadcast length mismatch: root sent " << src.size()
        << ", rank " << rank_ << " expected " << data.size();
    std::copy(src.begin(), src.end(), data.begin());
  }
  st.barrier.arrive_and_wait();
}

LocalGroup::LocalGroup(int size)
    : state_(std::make_shared<detail::GroupState>(size)) {
  DKFAC_CHECK(size >= 1) << "LocalGroup needs at least one rank";
  comms_.reserve(static_cast<size_t>(size));
  for (int r = 0; r < size; ++r) {
    comms_.emplace_back(new ThreadComm(r, state_));
  }
}

Communicator& LocalGroup::comm(int rank) {
  DKFAC_CHECK(rank >= 0 && rank < size())
      << "rank " << rank << " out of range for group of size " << size();
  return *comms_[static_cast<size_t>(rank)];
}

void LocalGroup::run(const std::function<void(int, Communicator&)>& fn) {
  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<size_t>(size()));
  threads.reserve(static_cast<size_t>(size()));
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &fn, &errors] {
      try {
        fn(r, comm(r));
      } catch (...) {
        errors[static_cast<size_t>(r)] = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

}  // namespace dkfac::comm
