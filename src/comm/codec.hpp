// Mixed-precision wire codec for factor communication.
//
// The paper's scaling argument (§IV-C) is that K-FAC stays competitive only
// while factor-exchange cost is small; SymmetricPacker already halves the
// payload structurally, and this codec halves it again numerically: factor
// triangles and decomposition payloads can travel as IEEE-754 binary16
// (FP16) or bfloat16 (BF16) instead of FP32. All conversions round to
// nearest, ties to even, and are pure integer bit manipulation — every rank
// and every backend produces identical encodings, which the cross-backend
// bitwise-parity contract depends on.
//
// Transport layout: encoded elements are 16-bit words bit-packed two per
// 32-bit float (element 2i in the low half of word i, little-endian within
// the word), so encoded payloads ride the existing float-typed collectives
// unchanged. An odd element count pads the final high half with zero bits
// (+0.0 at any precision), which reduces to zero and re-encodes to zero —
// padding is stable through any reduction and is simply never read back.
// No collective performs arithmetic on the packed floats themselves (pure
// byte transport), so arbitrary bit patterns — including ones that alias
// float NaNs — cross both backends untouched.
//
// Reduction contract ("encode once, reduce in FP32"): a lossy payload is
// quantised exactly once, on the contributing rank. The reduction gathers
// every rank's encoded contribution verbatim, decodes each to FP32, folds
// in rank order — ThreadComm's exact fold — and re-encodes the identical
// result everywhere (Communicator::allreduce_encoded). Thread and socket
// backends therefore remain bitwise identical to EACH OTHER at every
// precision; only the fp32-vs-compressed comparison is approximate.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "common/error.hpp"

namespace dkfac::comm {

/// Wire precision of a lossy-compressible payload.
enum class Precision : uint8_t {
  kFp32 = 0,  ///< identity passthrough — payloads travel untouched
  kFp16 = 1,  ///< IEEE-754 binary16: 5 exponent / 10 mantissa bits
  kBf16 = 2,  ///< bfloat16: FP32's 8 exponent bits, 7 mantissa bits
};

/// "fp32" / "fp16" / "bf16".
const char* precision_name(Precision p);

/// Inverse of precision_name; throws dkfac::Error on anything else.
Precision parse_precision(const std::string& name);

class Codec {
 public:
  // ---- scalar conversions (round to nearest even) -------------------------
  //
  // Totality: every FP32 value has a defined encoding (overflow saturates
  // to ±Inf, NaN stays NaN with a nonzero mantissa) and every 16-bit
  // pattern has an exact FP32 decoding, so decode∘encode is the identity on
  // all 65536 patterns of either format — the property codec_test pins.

  static uint16_t encode_fp16(float value);
  static float decode_fp16(uint16_t bits);
  static uint16_t encode_bf16(float value);
  static float decode_bf16(uint16_t bits);

  static uint16_t encode_scalar(float value, Precision p) {
    return p == Precision::kFp16 ? encode_fp16(value) : encode_bf16(value);
  }
  static float decode_scalar(uint16_t bits, Precision p) {
    return p == Precision::kFp16 ? decode_fp16(bits) : decode_bf16(bits);
  }

  // ---- transport sizing ----------------------------------------------------

  /// Transport floats that carry `elements` encoded values: two 16-bit
  /// words per float, odd tails padded.
  static int64_t encoded_floats(int64_t elements) {
    DKFAC_CHECK(elements >= 0);
    return (elements + 1) / 2;
  }

  /// Bytes per element shipped at `p` — wire_bytes' per-element factor,
  /// before pad rounding.
  static size_t wire_element_bytes(Precision p) {
    return p == Precision::kFp32 ? sizeof(float) : sizeof(uint16_t);
  }

  /// Bytes a payload of `elements` values occupies on the wire at `p`,
  /// padding included (fp32: 4·n; fp16/bf16: 4·⌈n/2⌉ = 2·(n rounded up
  /// to a whole transport float)).
  static uint64_t wire_bytes(int64_t elements, Precision p) {
    const int64_t padded = p == Precision::kFp32
                               ? elements
                               : 2 * encoded_floats(elements);
    return static_cast<uint64_t>(padded) * wire_element_bytes(p);
  }

  // ---- buffer conversions --------------------------------------------------
  //
  // Tight elementwise loops over contiguous storage (no per-element virtual
  // dispatch, no allocation) — the compiler can unroll/vectorise them.
  //
  // In-place aliasing contract (the comm::Arena zero-copy pipeline packs,
  // encodes, and decodes inside ONE allocation): because two 16-bit
  // elements bit-pack into each transport float, the encoded image of a
  // payload is at most as long as its fp32 source — so encoding shrinks
  // forward and decoding expands backward. Overlapping buffers are
  // therefore legal exactly when
  //
  //   encode:  dst begins at or before src (writes forward; word i lands
  //            at dst+i ≤ src+2i, both source elements are read first)
  //   decode:  dst begins at or after  src (writes backward; elements 2i,
  //            2i+1 land at dst+2i ≥ src+i, word i is read before either
  //            write and later-read words sit strictly below)
  //
  // Any other overlap is a caller bug and throws. Results are bitwise
  // identical to the disjoint-buffer case — iteration order never changes
  // what a pure elementwise conversion produces.

  /// Encodes `src` into the bit-packed transport buffer `dst`
  /// (`dst.size() == encoded_floats(src.size())`; pad bits zeroed).
  /// `p` must be a lossy precision — the fp32 passthrough is the caller
  /// simply not invoking the codec. May alias `src` per the contract above.
  static void encode(std::span<const float> src, std::span<float> dst,
                     Precision p);

  /// Decodes `dst.size()` elements from the bit-packed buffer `src`
  /// (`src.size() == encoded_floats(dst.size())`). May alias `src` per the
  /// contract above.
  static void decode(std::span<const float> src, std::span<float> dst,
                     Precision p);
};

}  // namespace dkfac::comm
