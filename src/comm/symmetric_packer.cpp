#include "comm/symmetric_packer.hpp"

#include "common/error.hpp"

namespace dkfac::comm {

namespace {

int64_t checked_dim(const Tensor& m) {
  DKFAC_CHECK(m.ndim() == 2 && m.dim(0) == m.dim(1))
      << "SymmetricPacker needs a square matrix, got " << m.shape();
  return m.dim(0);
}

}  // namespace

int64_t SymmetricPacker::packed_size(int64_t n) {
  DKFAC_CHECK(n >= 0) << "negative matrix dimension " << n;
  return n * (n + 1) / 2;
}

void SymmetricPacker::pack(const Tensor& m, std::span<float> out) {
  const int64_t n = checked_dim(m);
  DKFAC_CHECK(static_cast<int64_t>(out.size()) == packed_size(n))
      << "packed span holds " << out.size() << " elements, need "
      << packed_size(n) << " for a " << n << "×" << n << " matrix";
  const float* row = m.data();
  float* dst = out.data();
  for (int64_t i = 0; i < n; ++i, row += n) {
    for (int64_t j = i; j < n; ++j) *dst++ = row[j];
  }
}

void SymmetricPacker::unpack(std::span<const float> in, Tensor& m) {
  const int64_t n = checked_dim(m);
  DKFAC_CHECK(static_cast<int64_t>(in.size()) == packed_size(n))
      << "packed span holds " << in.size() << " elements, need "
      << packed_size(n) << " for a " << n << "×" << n << " matrix";
  float* data = m.data();
  const float* src = in.data();
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = i; j < n; ++j) {
      const float v = *src++;
      data[i * n + j] = v;
      data[j * n + i] = v;
    }
  }
}

}  // namespace dkfac::comm
