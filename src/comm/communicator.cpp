#include "comm/communicator.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dkfac::comm {

void Communicator::allreduce_encoded(std::span<float> data,
                                     Precision precision, ReduceOp op) {
  DKFAC_CHECK(precision != Precision::kFp32)
      << "fp32 payloads take the lossless allreduce()";
  const int p = size();
  if (p == 1 || data.empty()) {
    stats_.allreduce_calls++;
    stats_.allreduce_bytes += data.size_bytes();
    return;
  }

  // Transport: gather every rank's encoded block through the backend's own
  // allgather — a pure byte copy on every backend, so the quantised
  // contributions arrive verbatim. This is an allreduce to the caller, so
  // the allgather's logical-stat contribution is re-attributed to the
  // allreduce counters (wire counters are untouched: those bytes really
  // moved and really were halved by the encoding).
  const uint64_t gather_calls = stats_.allgather_calls;
  const uint64_t gather_bytes = stats_.allgather_bytes;
  allgather_into(data, encoded_gather_);
  const std::vector<float>& gathered = encoded_gather_;
  stats_.allgather_calls = gather_calls;
  stats_.allgather_bytes = gather_bytes;
  stats_.allreduce_calls++;
  stats_.allreduce_bytes += data.size_bytes();
  DKFAC_CHECK(gathered.size() == data.size() * static_cast<size_t>(p))
      << "encoded allreduce length mismatch across ranks";

  // Decode each contribution once and fold in ascending rank order — the
  // shared fold_contribution/finish_reduce helpers, i.e. the exact fold
  // ThreadComm::allreduce performs — entirely in fp32. Every rank runs
  // this identical local computation on identical bytes, so the
  // re-encoded result is identical everywhere. Padding elements decode to
  // +0.0, fold to 0 (or stay 0 under max against themselves), and
  // re-encode to zero bits: stable, and never read back by the caller.
  const size_t elements = 2 * data.size();  // includes any pad slot
  encoded_fold_result_.resize(elements);
  encoded_fold_scratch_.resize(elements);
  const std::span<float> result(encoded_fold_result_);
  const std::span<float> contribution(encoded_fold_scratch_);
  for (int r = 0; r < p; ++r) {
    const std::span<const float> block(gathered.data() +
                                           static_cast<size_t>(r) * data.size(),
                                       data.size());
    if (r == 0) {
      Codec::decode(block, result, precision);
      continue;
    }
    Codec::decode(block, contribution, precision);
    fold_contribution(result, contribution, op);
  }
  finish_reduce(result, op, p);
  Codec::encode(result, data, precision);
}

}  // namespace dkfac::comm
