// Symmetric-matrix packing for factor communication.
//
// Every Kronecker factor A = E[ããᵀ], G = E[ggᵀ] is symmetric, so a dense
// n×n allreduce ships each off-diagonal entry twice. Packing the upper
// triangle cuts the factor-allreduce payload from n² to n(n+1)/2 floats —
// at most ~55% of dense for the factor sizes real layers produce — which
// directly shrinks the dominant communication term of the paper's factor
// update (Algorithm 1 line 8).
//
// Layout: row-major upper triangle — row i contributes columns i..n-1, so
//   packed = [m(0,0..n-1), m(1,1..n-1), ..., m(n-1,n-1)].
// unpack() mirrors the triangle into both halves, so the round trip also
// re-symmetrises any FP32 asymmetry the factor accumulated.
#pragma once

#include <cstdint>
#include <span>

#include "tensor/tensor.hpp"

namespace dkfac::comm {

class SymmetricPacker {
 public:
  /// Elements needed to pack one n×n symmetric matrix: n(n+1)/2.
  static int64_t packed_size(int64_t n);

  /// Writes the upper triangle of square matrix `m` into `out`
  /// (exactly packed_size(n) elements).
  static void pack(const Tensor& m, std::span<float> out);

  /// Reads a packed upper triangle and mirrors it into square matrix `m`.
  static void unpack(std::span<const float> in, Tensor& m);
};

}  // namespace dkfac::comm
