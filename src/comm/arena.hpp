// Pinned communication arena + precision-tagged buffer views.
//
// The per-step comm path used to be a copy chain — dense factor →
// SymmetricPacker triangle (vector) → Codec 16-bit payload (vector) →
// FusionBuffer staging chunk (vector) — with each hop both a memcpy and,
// on first touch or after release_staging(), a heap allocation. Arena and
// BufferView replace that chain with views over ONE long-lived allocation:
//
//   Arena       cache-line-aligned, thread-safe bump allocator owning the
//               long-lived comm buffers. Blocks are never freed while the
//               arena lives; reset() just rewinds them, so steady-state
//               exchanges of a fixed shape reuse the same bytes forever —
//               zero heap allocations on the hot path (the property
//               ArenaStats::steady_state_allocs pins in CI).
//   BufferView  pointer + length + Precision tag + layout tag. Every
//               pipeline stage (pack, encode, fuse, collective, decode,
//               unpack) reads and writes views in place instead of copying
//               between stage-owned buffers.
//
// Lifetime safety for in-flight views: every alloc() is stamped with the
// arena's current epoch, and reset() bumps the epoch. span() — the ONE
// door to the underlying memory — revalidates the stamp, so a view that
// outlives a reset fails loudly ("arena reset while view live") instead
// of silently aliasing recycled memory. The async overlap pipeline resolves
// views on its worker thread, so a stale view submitted there surfaces as
// the executor's sticky error at the next wait(). pin()/unpin() make the
// inverse ordering safe too: while an exchange is in flight the owner pins
// the arena and reset() throws instead of recycling memory under the
// collective.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/codec.hpp"

namespace dkfac::comm {

/// What a view's bytes mean — the stage of the dense → packed → encoded
/// pipeline the memory currently holds.
enum class BufferLayout : uint8_t {
  kDense = 0,           ///< plain row-major fp32 elements
  kTrianglePacked = 1,  ///< SymmetricPacker upper triangle, row-major
  kEncoded = 2,         ///< Codec 16-bit elements, bit-packed two per float
};

/// "dense" / "triangle" / "encoded".
const char* layout_name(BufferLayout layout);

/// Allocator-traffic counters (summed into CommStats by the trainer).
struct ArenaStats {
  uint64_t bytes_reserved = 0;      ///< capacity of all live blocks
  uint64_t block_allocs = 0;        ///< heap allocations ever made
  uint64_t steady_state_allocs = 0; ///< heap allocations after mark_steady_state()

  ArenaStats& operator+=(const ArenaStats& other) {
    bytes_reserved += other.bytes_reserved;
    block_allocs += other.block_allocs;
    steady_state_allocs += other.steady_state_allocs;
    return *this;
  }
};

class Arena;

/// A typed window into comm memory: pointer + length (transport floats) +
/// wire precision + pipeline layout. Copyable and cheap — views are the
/// currency every stage of the factor pipeline trades in.
class BufferView {
 public:
  BufferView() = default;

  /// Unmanaged view over caller-owned storage (a tensor span, a test
  /// vector): no lifetime validation, the caller guarantees validity.
  explicit BufferView(std::span<float> data,
                      Precision precision = Precision::kFp32,
                      BufferLayout layout = BufferLayout::kDense)
      : data_(data.data()), size_(data.size()), precision_(precision),
        layout_(layout) {}

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }
  size_t size_bytes() const { return size_ * sizeof(float); }
  Precision precision() const { return precision_; }
  BufferLayout layout() const { return layout_; }
  bool arena_backed() const { return arena_ != nullptr; }

  /// The underlying memory. For arena-backed views this revalidates the
  /// epoch stamp and throws dkfac::Error if the arena was reset since the
  /// view was carved — the reset-while-live detection the overlap pipeline
  /// relies on.
  std::span<float> span() const;

  /// Raw pointer WITHOUT lifetime validation — address comparisons only
  /// (overlap rejection, contiguity detection), never dereference.
  const float* address() const { return data_; }

  /// A window into this view; tags default to the parent's.
  BufferView subview(size_t offset, size_t count) const {
    return subview(offset, count, precision_, layout_);
  }
  BufferView subview(size_t offset, size_t count, Precision precision,
                     BufferLayout layout) const;

 private:
  friend class Arena;
  BufferView(float* data, size_t size, Precision precision, BufferLayout layout,
             const Arena* arena, uint64_t epoch)
      : data_(data), size_(size), precision_(precision), layout_(layout),
        arena_(arena), epoch_(epoch) {}

  float* data_ = nullptr;
  size_t size_ = 0;
  Precision precision_ = Precision::kFp32;
  BufferLayout layout_ = BufferLayout::kDense;
  const Arena* arena_ = nullptr;  ///< nullptr → unmanaged (no validation)
  uint64_t epoch_ = 0;
};

/// Cache-line-aligned, thread-safe bump allocator for long-lived comm
/// buffers. alloc()/reset()/pin() may be called from any thread (the
/// trainer thread carves slots while the async worker reads stats); the
/// memory handed out is NOT synchronised by the arena — disjoint views may
/// be used concurrently, overlapping use needs external ordering, exactly
/// like raw buffers.
class Arena {
 public:
  /// Every allocation starts on a cache-line boundary: collectives and
  /// SIMD stages never straddle a line at a view's first element, and
  /// adjacent views in one slot never false-share with views of another.
  static constexpr size_t kAlignBytes = 64;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Carves `floats` transport floats from the arena. Grows by whole
  /// blocks; a block is retained (and rewound by reset()) for the arena's
  /// lifetime, so a repeated alloc/reset cycle of fixed shape touches the
  /// heap exactly once.
  BufferView alloc(size_t floats, Precision precision = Precision::kFp32,
                   BufferLayout layout = BufferLayout::kDense);

  /// Rewinds every block and invalidates all outstanding views (their
  /// span() will throw from now on). Throws while the arena is pinned —
  /// an in-flight exchange still owns the memory.
  void reset();

  /// Marks the arena as owned by an in-flight exchange: reset() throws
  /// until the matching unpin(). Nestable (a counter, not a flag).
  void pin();
  void unpin();
  int pin_count() const { return pins_.load(std::memory_order_acquire); }

  /// Current view-validity generation (bumped by reset()).
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Declares warm-up over: block allocations from here on count as
  /// steady_state_allocs — the counter the trainer asserts stays zero.
  void mark_steady_state();

  ArenaStats stats() const;
  size_t bytes_reserved() const { return stats().bytes_reserved; }

 private:
  struct AlignedDelete {
    void operator()(float* p) const {
      ::operator delete(p, std::align_val_t(kAlignBytes));
    }
  };
  struct Block {
    std::unique_ptr<float[], AlignedDelete> data;
    size_t capacity = 0;  // floats
    size_t used = 0;      // floats, always a multiple of kAlignBytes/4
  };

  mutable std::mutex mutex_;
  std::vector<Block> blocks_;
  std::atomic<uint64_t> epoch_{1};
  std::atomic<int> pins_{0};
  bool steady_ = false;
  ArenaStats stats_;
};

}  // namespace dkfac::comm
