#include "comm/arena.hpp"

#include <new>

#include "common/error.hpp"

namespace dkfac::comm {

namespace {

constexpr size_t kAlignFloats = Arena::kAlignBytes / sizeof(float);

/// Smallest block worth a heap round-trip. Tiny first requests (a barrier
/// token, a test slot) should not trigger a block per alloc.
constexpr size_t kMinBlockFloats = 4096;  // 16 KB

size_t round_up_to_line(size_t floats) {
  return (floats + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
}

}  // namespace

const char* layout_name(BufferLayout layout) {
  switch (layout) {
    case BufferLayout::kDense: return "dense";
    case BufferLayout::kTrianglePacked: return "triangle";
    case BufferLayout::kEncoded: return "encoded";
  }
  DKFAC_CHECK(false) << "unknown buffer layout " << static_cast<int>(layout);
  return "?";
}

std::span<float> BufferView::span() const {
  if (arena_ != nullptr) {
    const uint64_t now = arena_->epoch();
    DKFAC_CHECK(now == epoch_)
        << "arena reset while view live: view carved in epoch " << epoch_
        << " (" << layout_name(layout_) << ", " << size_
        << " floats) resolved in epoch " << now
        << " — its memory has been recycled";
  }
  return {data_, size_};
}

BufferView BufferView::subview(size_t offset, size_t count, Precision precision,
                               BufferLayout layout) const {
  DKFAC_CHECK(offset + count <= size_)
      << "subview [" << offset << ", " << offset + count
      << ") exceeds view of " << size_ << " floats";
  BufferView out = *this;
  out.data_ = data_ + offset;
  out.size_ = count;
  out.precision_ = precision;
  out.layout_ = layout;
  return out;
}

BufferView Arena::alloc(size_t floats, Precision precision,
                        BufferLayout layout) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (floats == 0) {
    return BufferView(nullptr, 0, precision, layout, this, epoch);
  }
  // The bump cursor advances in whole cache lines so the NEXT allocation
  // starts aligned too; the requested view keeps its exact float count.
  const size_t take = round_up_to_line(floats);
  for (Block& block : blocks_) {
    if (block.capacity - block.used >= take) {
      float* p = block.data.get() + block.used;
      block.used += take;
      return BufferView(p, floats, precision, layout, this, epoch);
    }
  }
  // No room: grow by one block. Sizing to at least the total already
  // reserved gives geometric growth, so a warm-up with creeping request
  // sizes settles into O(1) blocks instead of one per distinct size.
  size_t capacity = take;
  if (capacity < kMinBlockFloats) capacity = kMinBlockFloats;
  const size_t reserved_floats =
      static_cast<size_t>(stats_.bytes_reserved) / sizeof(float);
  if (capacity < reserved_floats) capacity = reserved_floats;
  capacity = round_up_to_line(capacity);
  Block block;
  block.data.reset(static_cast<float*>(
      ::operator new(capacity * sizeof(float), std::align_val_t(kAlignBytes))));
  block.capacity = capacity;
  block.used = take;
  float* p = block.data.get();
  blocks_.push_back(std::move(block));
  stats_.bytes_reserved += capacity * sizeof(float);
  stats_.block_allocs++;
  if (steady_) stats_.steady_state_allocs++;
  return BufferView(p, floats, precision, layout, this, epoch);
}

void Arena::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  DKFAC_CHECK(pins_.load(std::memory_order_acquire) == 0)
      << "arena reset while pinned: " << pin_count()
      << " in-flight exchange(s) still own its memory";
  for (Block& block : blocks_) block.used = 0;
  epoch_.fetch_add(1, std::memory_order_acq_rel);
}

void Arena::pin() { pins_.fetch_add(1, std::memory_order_acq_rel); }

void Arena::unpin() {
  const int before = pins_.fetch_sub(1, std::memory_order_acq_rel);
  DKFAC_CHECK(before > 0) << "arena unpin without a matching pin";
}

void Arena::mark_steady_state() {
  std::lock_guard<std::mutex> lock(mutex_);
  steady_ = true;
}

ArenaStats Arena::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dkfac::comm
