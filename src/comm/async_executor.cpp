#include "comm/async_executor.hpp"

#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "linalg/threading.hpp"
#include "obs/trace.hpp"

namespace dkfac::comm {

namespace {
size_t eager_bytes_from(size_t capacity_bytes, size_t eager_bytes) {
  size_t eager = eager_bytes == 0 ? capacity_bytes / 4 : eager_bytes;
  if (eager < 1) eager = 1;
  return eager < capacity_bytes ? eager : capacity_bytes;
}
}  // namespace

AsyncExecutor::AsyncExecutor(Communicator& comm, size_t capacity_bytes,
                             size_t eager_bytes)
    : comm_(comm),
      capacity_bytes_(capacity_bytes),
      eager_bytes_(eager_bytes_from(capacity_bytes_, eager_bytes)),
      fusion_(comm, capacity_bytes) {
  DKFAC_CHECK(capacity_bytes_ >= sizeof(float))
      << "async executor buffer too small";
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncExecutor::~AsyncExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_one();
  worker_.join();
}

void AsyncExecutor::submit(const BufferView& view, ReduceOp op) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Item{view, op, /*flush=*/false, ++next_ticket_});
    ++stats_.submitted;
  }
  work_ready_.notify_one();
}

void AsyncExecutor::wait() {
  // Span brackets the same interval as stats_.wait_seconds, so the trace
  // aggregate and the timer agree (derive_overlap relies on that).
  DKFAC_TRACE_SCOPE("comm.async.wait");
  const auto start = Clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t ticket = ++next_ticket_;
  queue_.push_back(Item{{}, ReduceOp::kSum, /*flush=*/true, ticket});
  work_ready_.notify_one();
  ticket_done_.wait(lock, [&] { return completed_ticket_ >= ticket; });
  stats_.wait_seconds += seconds_since(start);
  if (error_) {
    const std::exception_ptr error = error_;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool AsyncExecutor::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ticket_ < next_ticket_;
}

AsyncExecutor::Stats AsyncExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AsyncExecutor::execute_batch(std::vector<Item>& batch,
                                  size_t& batch_bytes) {
  if (batch.empty()) return;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failed = error_ != nullptr;
  }
  if (!failed) {
    try {
      for (const Item& item : batch) fusion_.add(item.view);
      // Span brackets the same interval as stats_.comm_seconds (see wait()).
      DKFAC_TRACE_SCOPE_NAMED(flush_span, "comm.async.flush");
      if (flush_span.active()) {
        flush_span.set_arg("bytes", batch_bytes);
        flush_span.set_arg("tensors", batch.size());
      }
      const auto start = Clock::now();
      fusion_.execute(batch.front().op);
      const double elapsed = seconds_since(start);
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.comm_seconds += elapsed;
      ++stats_.batches;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    completed_ticket_ = batch.back().ticket;
  }
  ticket_done_.notify_all();
  batch.clear();
  batch_bytes = 0;
}

void AsyncExecutor::worker_loop() {
  obs::Tracer::set_thread_name("comm.worker");
  // This worker runs concurrently with the submitting thread's OMP team: any
  // linalg kernel reached from here (codec folds, backend reductions) must
  // not open a second team on top of it.
  linalg::SerialKernelScope serial_kernels;
  // The batch under construction. Boundaries depend only on the submission
  // sequence (capacity, op change, flush), never on queue timing, so every
  // rank cuts identical batches — the cross-rank collective-matching
  // invariant rendezvous communicators depend on.
  std::vector<Item> batch;
  size_t batch_bytes = 0;

  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop requested and fully drained
      item = queue_.front();
      queue_.pop_front();
    }

    if (item.flush) {
      execute_batch(batch, batch_bytes);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        completed_ticket_ = item.ticket;
      }
      ticket_done_.notify_all();
      continue;
    }

    if (!batch.empty() &&
        (item.op != batch.front().op ||
         item.view.precision() != batch.front().view.precision() ||
         batch_bytes + item.view.size_bytes() > capacity_bytes_)) {
      execute_batch(batch, batch_bytes);
    }
    batch_bytes += item.view.size_bytes();
    batch.push_back(item);
    // Launch at the eager threshold: a ready batch sitting in the queue
    // is overlap thrown away.
    if (batch_bytes >= eager_bytes_) {
      execute_batch(batch, batch_bytes);
    }
  }

  // Shutdown with work still batched: finish it so destruction never loses
  // submitted reductions (symmetric across ranks — every peer drains the
  // same tail).
  execute_batch(batch, batch_bytes);
}

}  // namespace dkfac::comm
