#include "comm/async_executor.hpp"

#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm {

namespace {
size_t eager_elements_from(size_t capacity_elements, size_t eager_bytes) {
  size_t eager = eager_bytes == 0 ? capacity_elements / 4
                                  : eager_bytes / sizeof(float);
  if (eager < 1) eager = 1;
  return eager < capacity_elements ? eager : capacity_elements;
}
}  // namespace

AsyncExecutor::AsyncExecutor(Communicator& comm, size_t capacity_bytes,
                             size_t eager_bytes)
    : comm_(comm),
      capacity_elements_(capacity_bytes / sizeof(float)),
      eager_elements_(eager_elements_from(capacity_elements_, eager_bytes)),
      fusion_(comm, capacity_bytes) {
  DKFAC_CHECK(capacity_elements_ > 0) << "async executor buffer too small";
  worker_ = std::thread([this] { worker_loop(); });
}

AsyncExecutor::~AsyncExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_ready_.notify_one();
  worker_.join();
}

void AsyncExecutor::submit(std::span<float> view, ReduceOp op) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(Item{view, op, /*flush=*/false, ++next_ticket_});
    ++stats_.submitted;
  }
  work_ready_.notify_one();
}

void AsyncExecutor::wait() {
  const auto start = Clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  const uint64_t ticket = ++next_ticket_;
  queue_.push_back(Item{{}, ReduceOp::kSum, /*flush=*/true, ticket});
  work_ready_.notify_one();
  ticket_done_.wait(lock, [&] { return completed_ticket_ >= ticket; });
  stats_.wait_seconds += seconds_since(start);
  if (error_) {
    const std::exception_ptr error = error_;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

bool AsyncExecutor::pending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return completed_ticket_ < next_ticket_;
}

AsyncExecutor::Stats AsyncExecutor::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void AsyncExecutor::execute_batch(std::vector<Item>& batch,
                                  size_t& batch_elements) {
  if (batch.empty()) return;
  bool failed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    failed = error_ != nullptr;
  }
  if (!failed) {
    try {
      for (const Item& item : batch) fusion_.add(item.view);
      const auto start = Clock::now();
      fusion_.execute(batch.front().op);
      const double elapsed = seconds_since(start);
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.comm_seconds += elapsed;
      ++stats_.batches;
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    completed_ticket_ = batch.back().ticket;
  }
  ticket_done_.notify_all();
  batch.clear();
  batch_elements = 0;
}

void AsyncExecutor::worker_loop() {
  // The batch under construction. Boundaries depend only on the submission
  // sequence (capacity, op change, flush), never on queue timing, so every
  // rank cuts identical batches — the cross-rank collective-matching
  // invariant rendezvous communicators depend on.
  std::vector<Item> batch;
  size_t batch_elements = 0;

  for (;;) {
    Item item;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stop requested and fully drained
      item = queue_.front();
      queue_.pop_front();
    }

    if (item.flush) {
      execute_batch(batch, batch_elements);
      {
        std::lock_guard<std::mutex> lock(mutex_);
        completed_ticket_ = item.ticket;
      }
      ticket_done_.notify_all();
      continue;
    }

    if (!batch.empty() &&
        (item.op != batch.front().op ||
         batch_elements + item.view.size() > capacity_elements_)) {
      execute_batch(batch, batch_elements);
    }
    batch_elements += item.view.size();
    batch.push_back(item);
    // Launch at the eager threshold: a ready batch sitting in the queue
    // is overlap thrown away.
    if (batch_elements >= eager_elements_) {
      execute_batch(batch, batch_elements);
    }
  }

  // Shutdown with work still batched: finish it so destruction never loses
  // submitted reductions (symmetric across ranks — every peer drains the
  // same tail).
  execute_batch(batch, batch_elements);
}

}  // namespace dkfac::comm
