// Collective communication interface (the Horovod substitute).
//
// The paper's Algorithm 1 is expressed entirely in terms of three
// collectives — allreduce, allgather, broadcast — plus rank/size queries.
// This interface mirrors that surface. Production Horovod backs these with
// NCCL/MPI rings across nodes; here two interchangeable backends exist:
// the thread-backed LocalGroup/ThreadComm (N ranks as N threads over
// shared memory, see thread_comm.hpp) and the multi-process TCP
// net::SocketComm (ring/tree collectives between separate processes, see
// net/socket_comm.hpp). Both reduce in the same rank order, so training
// results are bitwise identical across backends.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "comm/codec.hpp"
#include "comm/cost_model.hpp"
#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace dkfac::comm {

/// A collective failed because a specific peer died or wedged (connection
/// closed, deadline expired, mesh link down). Subclasses Error so every
/// existing catch site keeps working; elastic callers catch this type to
/// learn WHICH rank failed and trigger re-formation instead of aborting.
class PeerFailure : public Error {
 public:
  PeerFailure(int rank, const std::string& what)
      : Error("peer rank " + std::to_string(rank) + ": " + what),
        rank_(rank) {}

  /// The rank whose connection failed.
  int rank() const { return rank_; }

 private:
  int rank_;
};

/// A cooperative group-change request, not a failure: the elastic
/// supervisor has a joiner parked at the rendezvous that can only be
/// admitted at a generation boundary, so running ranks are asked (via
/// SIGUSR1 → TrainConfig::reform_poll) to tear down their mesh and
/// re-rendezvous. Elastic workers catch it exactly like PeerFailure minus
/// the casualty — the regrown group resumes from the durable checkpoint.
class RegrowRequest : public Error {
 public:
  explicit RegrowRequest(const std::string& what) : Error(what) {}
};

/// Reduction applied by allreduce.
enum class ReduceOp {
  kSum,
  kAverage,  // sum / size — what gradient and factor exchange use
  kMax,
};

// The ONE elementwise fold every allreduce implementation shares. The
// cross-backend bitwise-parity contract says thread, socket, and encoded
// reductions all combine contributions in ascending rank order with
// identical arithmetic; routing them through these two helpers makes that
// parity structural instead of three hand-kept copies.

/// Accumulates rank r's contribution `src` into the running fold `result`.
inline void fold_contribution(std::span<float> result,
                              std::span<const float> src, ReduceOp op) {
  if (op == ReduceOp::kMax) {
    for (size_t i = 0; i < result.size(); ++i) {
      result[i] = std::max(result[i], src[i]);
    }
  } else {
    for (size_t i = 0; i < result.size(); ++i) result[i] += src[i];
  }
}

/// Final step of a completed fold: the kAverage 1/p scale (no-op otherwise).
inline void finish_reduce(std::span<float> result, ReduceOp op, int ranks) {
  if (op != ReduceOp::kAverage) return;
  const float inv = 1.0f / static_cast<float>(ranks);
  for (float& v : result) v *= inv;
}

/// Background-pipeline counters. Shared by AsyncExecutor::stats() and
/// CommStats so the derived "overlap won" metric has a single definition.
struct AsyncCommStats {
  uint64_t submitted = 0;       ///< tensors accepted by submit()
  uint64_t batches = 0;         ///< fused execute() calls on the worker
  double comm_seconds = 0.0;    ///< worker time inside collectives
  double wait_seconds = 0.0;    ///< main-thread time blocked in wait()

  /// Communication hidden behind compute: collective time the main thread
  /// did not spend blocked for.
  double overlap_won_seconds() const {
    return comm_seconds > wait_seconds ? comm_seconds - wait_seconds : 0.0;
  }
};

/// Per-rank communication counters (drives the comm-volume ablation bench).
///
/// The logical byte counters follow one payload-contribution convention,
/// uniform across backends: allreduce counts this rank's buffer, allgather
/// counts this rank's send, broadcast counts the payload at the root only.
/// Summing any counter across ranks therefore gives the unique payload
/// injected into that collective — backends must not re-count forwarded or
/// echoed bytes here. What a backend really moved (headers, forwarding
/// hops, algorithm overhead) is the wire counters' job below.
struct CommStats {
  uint64_t allreduce_calls = 0;
  uint64_t allreduce_bytes = 0;
  uint64_t allgather_calls = 0;
  uint64_t allgather_bytes = 0;
  uint64_t broadcast_calls = 0;
  uint64_t broadcast_bytes = 0;

  // Real bytes on the wire for this rank, frame headers included — filled
  // by network backends (net::SocketComm). Shared-memory backends move no
  // wire bytes and leave these 0. Packing savings (SymmetricPacker) and
  // fusion show up here as actual transport-byte reductions.
  uint64_t wire_sent_bytes = 0;
  uint64_t wire_recv_bytes = 0;

  // Kronecker-factor exchange accounting (filled by KfacPreconditioner) —
  // the full reduction chain dense → packed → encoded: the bytes a dense
  // n×n FP32 factor allreduce would have shipped, the bytes after
  // structural packing (upper triangles when symmetric_comm is on), and
  // the bytes that actually entered the collective after the precision
  // codec (16-bit payloads when factor_precision is fp16/bf16; equal to
  // packed at fp32). factor_encoded_bytes is already included in
  // allreduce_bytes, so dense − encoded is the total reduction won.
  uint64_t factor_dense_bytes = 0;
  uint64_t factor_packed_bytes = 0;
  uint64_t factor_encoded_bytes = 0;

  // Decomposition-allgather accounting: the bytes this rank's dense
  // decomposition send would take vs the bytes it actually sent
  // (triangle-packed explicit inverses when symmetric_comm is on). Same
  // per-rank-send convention as allgather_bytes, which these are part of.
  uint64_t decomp_dense_bytes = 0;
  uint64_t decomp_packed_bytes = 0;

  // Comm-arena allocator traffic, summed by the trainer across every
  // per-step comm-path arena (the preconditioner's factor slot arena and
  // the fusion buffers' staging arenas). steady_state_allocs counts heap
  // allocations after warm-up was declared over — the zero-copy contract
  // says it stays 0, and the trainer integration test asserts it.
  uint64_t arena_bytes_reserved = 0;
  uint64_t steady_state_allocs = 0;

  // Async-overlap accounting, filled by the trainer from AsyncExecutor
  // when overlap_comm is on.
  AsyncCommStats async;

  uint64_t total_bytes() const {
    return allreduce_bytes + allgather_bytes + broadcast_bytes;
  }
};

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// In-place elementwise reduction across all ranks. Deterministic:
  /// contributions are combined in rank order on every rank.
  virtual void allreduce(std::span<float> data, ReduceOp op) = 0;

  /// Concatenation of every rank's contribution in rank order. Sizes may
  /// differ per rank (allgatherv semantics, like Horovod's allgather).
  virtual std::vector<float> allgather(std::span<const float> send) = 0;

  /// allgather into a caller-owned buffer (resized to fit), so repeated
  /// gathers of a fixed shape reuse one allocation instead of returning a
  /// fresh vector per call — the zero-steady-state-allocation contract of
  /// the encoded reduction path. Backends override this as the primary
  /// implementation (allgather() wraps it); the default forwards to
  /// allgather() so minimal Communicator implementations keep working.
  virtual void allgather_into(std::span<const float> send,
                              std::vector<float>& recv) {
    recv = allgather(send);
  }

  /// Copies `data` from `root` to all ranks.
  virtual void broadcast(std::span<float> data, int root) = 0;

  virtual void barrier() = 0;

  /// Allreduce over a codec-encoded (fp16/bf16) payload: `data` holds
  /// 16-bit elements bit-packed two per float (comm::Codec's transport
  /// layout). Semantics are "encode once, reduce in fp32": every rank's
  /// encoded contribution is gathered verbatim (byte-exact transport),
  /// decoded to fp32, folded in rank order — the same fold as
  /// allreduce() — and the identical result is re-encoded on every rank.
  /// One definition over the virtual allgather serves every backend, so
  /// thread and socket runs stay bitwise identical to each other at any
  /// precision. Counted in allreduce_calls/bytes (at the encoded size),
  /// like the lossless collective it replaces.
  ///
  /// Scaling trade-off: encode-once forbids re-quantising partial sums,
  /// so the transport is an allgather of contributions — O((p−1)·n/2)
  /// wire bytes per rank versus a bandwidth-optimal ring allreduce's
  /// ~2·n·(p−1)/p of the fp32 payload. Against SocketComm's rank-order-
  /// preserving algorithms the encoded path ships half the bytes of the
  /// circulating allreduce at every p and beats the pipelined ring up to
  /// p ≈ 4; beyond that the gather term dominates and fp32 can be
  /// cheaper on the wire. Compression is aimed at the small-world /
  /// latency-bound factor exchanges the paper targets, not at large p.
  void allreduce_encoded(std::span<float> data, Precision precision,
                         ReduceOp op);

  /// The α–β model of this backend's fabric. Everything tuned above the
  /// collectives — AsyncExecutor's eager threshold, fusion-buffer
  /// capacities, SocketComm's per-size algorithm choice — derives from
  /// this instead of hard-coding numbers for one backend.
  virtual const CostModel& cost_model() const {
    static const CostModel kDefault{};
    return kDefault;
  }

  const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Records one factor exchange along the full reduction chain:
  /// `dense_bytes` is the dense n×n FP32 payload, `packed_bytes` the
  /// payload after structural packing (equal to dense when packing is
  /// off), `encoded_bytes` what actually entered the collective after the
  /// precision codec (equal to packed at fp32).
  void record_factor_volume(uint64_t dense_bytes, uint64_t packed_bytes,
                            uint64_t encoded_bytes) {
    stats_.factor_dense_bytes += dense_bytes;
    stats_.factor_packed_bytes += packed_bytes;
    stats_.factor_encoded_bytes += encoded_bytes;
  }
  void record_factor_volume(uint64_t dense_bytes, uint64_t packed_bytes) {
    record_factor_volume(dense_bytes, packed_bytes, packed_bytes);
  }

  /// Records one decomposition allgather: `dense_bytes` is the dense
  /// payload, `actual_bytes` what was really gathered (equal when the
  /// decomposition is not symmetry-packable).
  void record_decomp_volume(uint64_t dense_bytes, uint64_t actual_bytes) {
    stats_.decomp_dense_bytes += dense_bytes;
    stats_.decomp_packed_bytes += actual_bytes;
  }

  // ---- tensor conveniences ---------------------------------------------

  void allreduce(Tensor& t, ReduceOp op) { allreduce(t.span(), op); }
  void broadcast(Tensor& t, int root) { broadcast(t.span(), root); }

 protected:
  CommStats stats_;

 private:
  // allreduce_encoded's gather destination and fp32 fold scratch, reused
  // across calls — the encoded reduction runs once per fused chunk, and
  // reallocating chunk-sized buffers there would put megabyte mallocs on
  // the comm worker's hot path (ThreadComm keeps reduce_scratch_ for the
  // same reason). Collectives are single-caller per communicator (see the
  // AsyncExecutor threading contract), so plain members are safe.
  std::vector<float> encoded_gather_;
  std::vector<float> encoded_fold_result_;
  std::vector<float> encoded_fold_scratch_;
};

/// Size-1 communicator: every collective is a no-op (single-process runs).
class SelfComm final : public Communicator {
 public:
  using Communicator::allreduce;
  using Communicator::broadcast;

  int rank() const override { return 0; }
  int size() const override { return 1; }

  const CostModel& cost_model() const override {
    static const CostModel kModel = CostModel::shared_memory();
    return kModel;
  }

  void allreduce(std::span<float> data, ReduceOp op) override {
    stats_.allreduce_calls++;
    stats_.allreduce_bytes += data.size_bytes();
    (void)op;
  }

  std::vector<float> allgather(std::span<const float> send) override {
    std::vector<float> out;
    allgather_into(send, out);
    return out;
  }

  void allgather_into(std::span<const float> send,
                      std::vector<float>& recv) override {
    stats_.allgather_calls++;
    stats_.allgather_bytes += send.size_bytes();
    recv.assign(send.begin(), send.end());
  }

  void broadcast(std::span<float> data, int root) override {
    stats_.broadcast_calls++;
    stats_.broadcast_bytes += data.size_bytes();
    (void)root;
  }

  void barrier() override {}
};

}  // namespace dkfac::comm
