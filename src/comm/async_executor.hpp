// Asynchronous collective pipeline (Horovod §II-D fidelity).
//
// Horovod hides gradient communication behind backprop compute: each
// tensor is submitted to a background thread the moment its gradient is
// ready, the background thread fuses pending tensors into buffer-sized
// batches, and the training thread only blocks at the synchronisation
// point before the optimizer step. AsyncExecutor gives dkfac the same
// machinery over any Communicator:
//
//   main thread                      worker thread
//   -----------                      -------------
//   submit(view, op)  ──ready──▶     pop → pack into FusionBuffer
//   submit(view, op)  ──queue──▶     pop → pack
//   ... keeps computing ...          batch full → allreduce (overlaps!)
//   wait()            ──flush──▶     execute partial batch
//        ◀── all tickets complete ──
//
// Determinism contract: batch boundaries are a pure function of the
// submission sequence (eager/capacity thresholds, op or precision change,
// flush marker) — never of timing — so every rank of an SPMD program that
// submits the same sequence issues byte-identical collectives in the
// same order. Horovod instead negotiates readiness through a coordinator
// rank; the deterministic rule needs no negotiation traffic and keeps
// runs bit-reproducible. The reduction itself is elementwise, so results
// are bitwise identical to a synchronous fused allreduce regardless of
// how batches are cut.
//
// The eager threshold trades fusion against overlap: a batch is launched
// as soon as `eager_bytes` have accumulated (don't sit on ready tensors —
// start hiding them behind compute), while `capacity_bytes` bounds how
// large any one collective can grow. Low-latency fabrics (the thread
// backend) want a small eager threshold; high-latency ones want it near
// the cost model's bandwidth-dominated chunk size.
//
// Threading contract: submit()/wait() are single-caller (the training
// thread). While submissions are pending, the owning thread must not
// issue collectives directly on the same Communicator — call wait()
// first. With a rendezvous-backed communicator (ThreadComm), tear down
// symmetrically across ranks or wait() before destruction; the
// destructor drains pending work.
//
// Error scope: a worker exception is held sticky and rethrown from
// wait(); batches after the failure are discarded. Like every
// rendezvous collective in this codebase (the synchronous path
// included), a failure on ONE rank of a multi-rank group leaves peers
// blocked at the rendezvous — there is no cross-rank cancellation. The
// CTest per-case timeout is the backstop for that; single-rank error
// paths recover cleanly.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <mutex>
#include <span>
#include <thread>

#include "comm/communicator.hpp"
#include "comm/fusion.hpp"

namespace dkfac::comm {

class AsyncExecutor {
 public:
  /// `capacity_bytes` bounds each fused batch, like FusionBuffer's knob.
  /// `eager_bytes` is the launch threshold (0 → capacity_bytes / 4).
  explicit AsyncExecutor(Communicator& comm, size_t capacity_bytes = 32 << 20,
                         size_t eager_bytes = 0);

  /// Drains every pending submission (so late factor traffic still lands),
  /// then joins the worker. After an error, undone work is discarded.
  ~AsyncExecutor();

  AsyncExecutor(const AsyncExecutor&) = delete;
  AsyncExecutor& operator=(const AsyncExecutor&) = delete;

  /// Enqueues one allreduce. The view's memory must stay valid until
  /// wait() (or the destructor) returns; arena-backed views are
  /// epoch-checked when the worker touches them, so a view whose arena was
  /// reset mid-flight surfaces as the sticky error at the next wait().
  /// Cheap: no collective runs on the calling thread. The view's
  /// precision tag declares its wire format (kFp16/kBf16 for a
  /// comm::Codec bit-packed payload); like an op change, a precision
  /// change is a deterministic batch boundary, so each fused collective
  /// stays uniform.
  void submit(const BufferView& view, ReduceOp op);
  void submit(std::span<float> view, ReduceOp op,
              Precision precision = Precision::kFp32) {
    submit(BufferView(view, precision,
                      precision == Precision::kFp32 ? BufferLayout::kDense
                                                    : BufferLayout::kEncoded),
           op);
  }
  void submit(Tensor& t, ReduceOp op) { submit(t.span(), op); }

  /// Blocks until every prior submission has been reduced and written
  /// back. Rethrows the first exception the worker hit (sticky: later
  /// waits rethrow it too). Safe to call with nothing pending.
  void wait();

  /// True while submissions may still be in flight — the owning thread
  /// must wait() before issuing direct collectives on the communicator.
  bool pending() const;

  using Stats = AsyncCommStats;
  Stats stats() const;

  /// Declares warm-up over for the internal fusion staging arena.
  void mark_steady_state() { fusion_.mark_steady_state(); }
  ArenaStats arena_stats() const { return fusion_.arena_stats(); }

 private:
  struct Item {
    BufferView view;
    ReduceOp op = ReduceOp::kSum;
    bool flush = false;
    uint64_t ticket = 0;
  };

  void worker_loop();
  /// Reduces the accumulated batch (one fused execute) and completes its
  /// tickets. Called only from the worker.
  void execute_batch(std::vector<Item>& batch, size_t& batch_bytes);

  Communicator& comm_;
  // Thresholds in bytes of the transport representation — the unit that
  // stays truthful when fp32 and bit-packed 16-bit payloads share the
  // queue (an element count would silently mis-chunk mixed widths).
  const size_t capacity_bytes_;
  const size_t eager_bytes_;
  FusionBuffer fusion_;  // worker-thread only

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::condition_variable ticket_done_;
  std::deque<Item> queue_;
  uint64_t next_ticket_ = 0;
  uint64_t completed_ticket_ = 0;
  bool stop_ = false;
  std::exception_ptr error_;
  Stats stats_;

  std::thread worker_;
};

}  // namespace dkfac::comm
