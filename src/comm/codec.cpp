#include "comm/codec.hpp"

#include <bit>

namespace dkfac::comm {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kFp16: return "fp16";
    case Precision::kBf16: return "bf16";
  }
  DKFAC_CHECK(false) << "unknown precision " << static_cast<int>(p);
  return "?";
}

Precision parse_precision(const std::string& name) {
  if (name == "fp32") return Precision::kFp32;
  if (name == "fp16") return Precision::kFp16;
  if (name == "bf16") return Precision::kBf16;
  DKFAC_CHECK(false) << "unknown precision '" << name
                     << "' (expected fp32, fp16, or bf16)";
  return Precision::kFp32;
}

// All four conversions are branchy only on the exceptional classes
// (NaN/Inf/subnormal); the normal-number path is straight-line integer
// arithmetic. No float arithmetic is ever performed on the value being
// converted, so signalling-NaN payloads cannot be quietened in transit and
// every rank computes byte-identical encodings.

uint16_t Codec::encode_fp16(float value) {
  const uint32_t x = std::bit_cast<uint32_t>(value);
  const uint32_t sign = (x >> 16) & 0x8000u;
  const uint32_t mant = x & 0x007FFFFFu;
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xFFu);

  if (exp == 0xFF) {
    if (mant == 0) return static_cast<uint16_t>(sign | 0x7C00u);  // ±Inf
    // NaN: keep the top 10 payload bits so decode∘encode is the identity on
    // every FP16 NaN pattern (quiet AND signalling); only when all ten are
    // zero (a payload living entirely in the low bits) must a quiet bit be
    // forced to avoid collapsing the NaN into an Inf.
    const uint32_t payload = mant >> 13;
    return static_cast<uint16_t>(sign | 0x7C00u | (payload ? payload : 0x200u));
  }

  const int32_t e = exp - 127 + 15;  // rebias
  if (e >= 0x1F) return static_cast<uint16_t>(sign | 0x7C00u);  // overflow → Inf
  if (e <= 0) {
    // Subnormal (or underflow-to-zero) target. Values below 2^-25 round to
    // zero; at exactly 2^-25 the tie goes to even (also zero).
    if (e < -10) return static_cast<uint16_t>(sign);
    const uint32_t full = mant | 0x00800000u;  // restore the implicit 1
    const uint32_t shift = static_cast<uint32_t>(14 - e);  // in [14, 24]
    const uint32_t out = full >> shift;
    const uint32_t rem = full & ((1u << shift) - 1u);
    const uint32_t half = 1u << (shift - 1u);
    const uint32_t up = (rem > half || (rem == half && (out & 1u))) ? 1u : 0u;
    // A carry out of the subnormal mantissa lands exactly on the smallest
    // normal (exponent field 1) — the bit layout makes that addition free.
    return static_cast<uint16_t>(sign | (out + up));
  }

  uint32_t out = (static_cast<uint32_t>(e) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) {
    ++out;  // may carry into the exponent; all-ones rounds up to Inf, as RNE requires
  }
  return static_cast<uint16_t>(sign | out);
}

float Codec::decode_fp16(uint16_t bits) {
  const uint32_t sign = static_cast<uint32_t>(bits & 0x8000u) << 16;
  const uint32_t exp = (bits >> 10) & 0x1Fu;
  uint32_t mant = bits & 0x3FFu;

  uint32_t out;
  if (exp == 0) {
    if (mant == 0) {
      out = sign;  // ±0
    } else {
      // Subnormal: normalise into an FP32 normal (FP32's range dwarfs
      // FP16's, so every FP16 subnormal is exactly representable).
      int32_t shift = 0;
      while ((mant & 0x400u) == 0) {
        mant <<= 1;
        ++shift;
      }
      mant &= 0x3FFu;
      // 0.mant × 2^-14 normalises to 1.m × 2^(-14 - shift).
      const uint32_t e = static_cast<uint32_t>(127 - 14 - shift);
      out = sign | (e << 23) | (mant << 13);
    }
  } else if (exp == 0x1F) {
    out = sign | 0x7F800000u | (mant << 13);  // ±Inf / NaN, payload preserved
  } else {
    out = sign | ((exp + 127 - 15) << 23) | (mant << 13);
  }
  return std::bit_cast<float>(out);
}

uint16_t Codec::encode_bf16(float value) {
  const uint32_t x = std::bit_cast<uint32_t>(value);
  if ((x & 0x7F800000u) == 0x7F800000u && (x & 0x007FFFFFu) != 0) {
    // NaN: truncate the payload; force a quiet bit only when the surviving
    // mantissa would be zero (which would decode as Inf).
    uint16_t out = static_cast<uint16_t>(x >> 16);
    if ((out & 0x7Fu) == 0) out |= 0x40u;
    return out;
  }
  // RNE on the low 16 bits: add 0x7FFF plus the LSB of the surviving
  // mantissa, so exact halves round toward the even result. Overflow
  // carries cleanly into the exponent (max finite rounds up to Inf).
  const uint32_t rounded = x + 0x7FFFu + ((x >> 16) & 1u);
  return static_cast<uint16_t>(rounded >> 16);
}

float Codec::decode_bf16(uint16_t bits) {
  return std::bit_cast<float>(static_cast<uint32_t>(bits) << 16);
}

namespace {

// Iteration direction carries the in-place contract (see codec.hpp):
// encode walks forward with dst at or below src, decode walks backward
// with dst at or above src. Both loops read each transport word in full
// before writing anything that could alias it.

template <uint16_t (*EncodeOne)(float)>
void encode_buffer(std::span<const float> src, std::span<float> dst) {
  const size_t n = src.size();
  const size_t pairs = n / 2;
  for (size_t i = 0; i < pairs; ++i) {
    const uint32_t lo = EncodeOne(src[2 * i]);
    const uint32_t hi = EncodeOne(src[2 * i + 1]);
    dst[i] = std::bit_cast<float>(lo | (hi << 16));
  }
  if (n & 1) {
    dst[pairs] = std::bit_cast<float>(static_cast<uint32_t>(EncodeOne(src[n - 1])));
  }
}

template <float (*DecodeOne)(uint16_t)>
void decode_buffer(std::span<const float> src, std::span<float> dst) {
  const size_t n = dst.size();
  const size_t pairs = n / 2;
  if (n & 1) {
    // Odd tail first: it sits highest, so expanding it cannot disturb any
    // word a later (lower) iteration still needs.
    const uint32_t word = std::bit_cast<uint32_t>(src[pairs]);
    dst[n - 1] = DecodeOne(static_cast<uint16_t>(word & 0xFFFFu));
  }
  for (size_t i = pairs; i-- > 0;) {
    const uint32_t word = std::bit_cast<uint32_t>(src[i]);
    dst[2 * i] = DecodeOne(static_cast<uint16_t>(word & 0xFFFFu));
    dst[2 * i + 1] = DecodeOne(static_cast<uint16_t>(word >> 16));
  }
}

/// True when [a, a+an) and [b, b+bn) share any float.
bool spans_overlap(const float* a, size_t an, const float* b, size_t bn) {
  const auto lo_a = reinterpret_cast<uintptr_t>(a);
  const auto lo_b = reinterpret_cast<uintptr_t>(b);
  return lo_a < lo_b + bn * sizeof(float) && lo_b < lo_a + an * sizeof(float);
}

}  // namespace

void Codec::encode(std::span<const float> src, std::span<float> dst,
                   Precision p) {
  DKFAC_CHECK(p != Precision::kFp32)
      << "fp32 payloads bypass the codec (identity passthrough)";
  DKFAC_CHECK(static_cast<int64_t>(dst.size()) ==
              encoded_floats(static_cast<int64_t>(src.size())))
      << "encode buffer mismatch: " << src.size() << " elements need "
      << encoded_floats(static_cast<int64_t>(src.size()))
      << " transport floats, got " << dst.size();
  if (spans_overlap(src.data(), src.size(), dst.data(), dst.size())) {
    DKFAC_CHECK(reinterpret_cast<uintptr_t>(dst.data()) <=
                reinterpret_cast<uintptr_t>(src.data()))
        << "in-place encode requires dst at or before src "
           "(encoding shrinks forward)";
  }
  if (p == Precision::kFp16) {
    encode_buffer<&Codec::encode_fp16>(src, dst);
  } else {
    encode_buffer<&Codec::encode_bf16>(src, dst);
  }
}

void Codec::decode(std::span<const float> src, std::span<float> dst,
                   Precision p) {
  DKFAC_CHECK(p != Precision::kFp32)
      << "fp32 payloads bypass the codec (identity passthrough)";
  DKFAC_CHECK(static_cast<int64_t>(src.size()) ==
              encoded_floats(static_cast<int64_t>(dst.size())))
      << "decode buffer mismatch: " << dst.size() << " elements need "
      << encoded_floats(static_cast<int64_t>(dst.size()))
      << " transport floats, got " << src.size();
  if (spans_overlap(src.data(), src.size(), dst.data(), dst.size())) {
    DKFAC_CHECK(reinterpret_cast<uintptr_t>(dst.data()) >=
                reinterpret_cast<uintptr_t>(src.data()))
        << "in-place decode requires dst at or after src "
           "(decoding expands backward)";
  }
  if (p == Precision::kFp16) {
    decode_buffer<&Codec::decode_fp16>(src, dst);
  } else {
    decode_buffer<&Codec::decode_bf16>(src, dst);
  }
}

}  // namespace dkfac::comm
