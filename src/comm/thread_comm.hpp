// Thread-backed collective group: N ranks = N threads over shared memory.
//
// Semantics match an MPI/Horovod communicator: every collective is a
// synchronisation point, contributions are combined in rank order (so runs
// are bit-reproducible regardless of thread scheduling), and each rank owns
// its Communicator object.
#pragma once

#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "comm/communicator.hpp"

namespace dkfac::comm {

namespace detail {

/// Reusable sense-counting barrier for a fixed set of participants.
class Barrier {
 public:
  explicit Barrier(int participants) : participants_(participants) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    const uint64_t my_generation = generation_;
    if (++arrived_ == participants_) {
      arrived_ = 0;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != my_generation; });
    }
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  int participants_;
  int arrived_ = 0;
  uint64_t generation_ = 0;
};

/// State shared by all ranks of one LocalGroup.
struct GroupState {
  explicit GroupState(int size)
      : size(size), barrier(size), send_slots(static_cast<size_t>(size)),
        recv_slots(static_cast<size_t>(size)) {}

  int size;
  Barrier barrier;
  // Published per-rank views for the collective in flight.
  std::vector<std::span<const float>> send_slots;
  std::vector<std::span<float>> recv_slots;
};

}  // namespace detail

class LocalGroup;

/// One rank's endpoint in a LocalGroup.
class ThreadComm final : public Communicator {
 public:
  using Communicator::allreduce;
  using Communicator::broadcast;

  int rank() const override { return rank_; }
  int size() const override { return state_->size; }

  /// Shared-memory fabric: near-zero launch latency, memcpy bandwidth —
  /// the tuning everything above the collectives derives from.
  const CostModel& cost_model() const override {
    static const CostModel kModel = CostModel::shared_memory();
    return kModel;
  }

  void allreduce(std::span<float> data, ReduceOp op) override;
  std::vector<float> allgather(std::span<const float> send) override;
  void allgather_into(std::span<const float> send,
                      std::vector<float>& recv) override;
  void broadcast(std::span<float> data, int root) override;
  void barrier() override { state_->barrier.arrive_and_wait(); }

 private:
  friend class LocalGroup;
  ThreadComm(int rank, std::shared_ptr<detail::GroupState> state)
      : rank_(rank), state_(std::move(state)) {}

  int rank_;
  std::shared_ptr<detail::GroupState> state_;
  /// Reduction scratch reused across allreduce calls — the factor/gradient
  /// exchange hits this path every iteration, so it must not allocate.
  std::vector<float> reduce_scratch_;
};

/// Factory/owner of a fixed-size thread communicator group.
class LocalGroup {
 public:
  explicit LocalGroup(int size);

  int size() const { return state_->size; }

  /// The communicator endpoint for `rank`. Each rank must only be used from
  /// one thread at a time.
  Communicator& comm(int rank);

  /// Convenience SPMD launcher: spawns size() threads, each running
  /// fn(rank, comm-for-rank); rethrows the first exception after joining.
  void run(const std::function<void(int rank, Communicator& comm)>& fn);

 private:
  std::shared_ptr<detail::GroupState> state_;
  std::vector<std::unique_ptr<ThreadComm>> comms_;
};

}  // namespace dkfac::comm
