#include "comm/fusion.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dkfac::comm {

namespace {
// The staging buffer is float-typed because every payload — lossless or
// Codec bit-packed — travels as transport floats. This is the ONE place
// that width appears; all capacity math below stays in bytes.
constexpr size_t kTransportBytes = sizeof(float);
}  // namespace

FusionBuffer::FusionBuffer(Communicator& comm, size_t capacity_bytes)
    : comm_(comm), capacity_bytes_(capacity_bytes) {
  DKFAC_CHECK(capacity_bytes_ >= kTransportBytes) << "fusion buffer too small";
}

void FusionBuffer::add(std::span<float> view, Precision precision) {
  // Zero-length views carry no payload; registering them would only issue
  // empty collectives.
  if (!view.empty()) views_.push_back({view, precision});
}

void FusionBuffer::execute(ReduceOp op) {
  // Registrations are consumed by this call even when a collective throws
  // mid-chunk: leaving stale views (and their dangling spans) behind would
  // corrupt the next execute() after a failed step.
  struct ClearOnExit {
    std::vector<View>& views;
    ~ClearOnExit() { views.clear(); }
  } guard{views_};

  last_chunk_count_ = 0;
  size_t view_index = 0;
  size_t offset_in_view = 0;  // resume point for views larger than a chunk
  // Whole transport floats per chunk (floor): a trailing sub-element byte
  // budget can never be packed, so counting it as capacity would leave
  // room > 0 with take == 0 forever — an infinite packing loop.
  const size_t capacity_floats = capacity_bytes_ / kTransportBytes;

  while (view_index < views_.size()) {
    // Pack up to capacity_floats into the staging buffer. A chunk holds
    // views of ONE precision: encoded and lossless payloads reduce through
    // different collectives, so a precision change ends the chunk exactly
    // like running out of room does.
    const Precision chunk_precision = views_[view_index].precision;
    staging_.clear();
    struct Placement {
      size_t view;
      size_t view_offset;
      size_t staging_offset;
      size_t count;
    };
    std::vector<Placement> placements;
    while (view_index < views_.size() &&
           views_[view_index].precision == chunk_precision &&
           staging_.size() < capacity_floats) {
      const std::span<float> view = views_[view_index].data;
      const size_t room = capacity_floats - staging_.size();
      const size_t take = std::min(room, view.size() - offset_in_view);
      placements.push_back({view_index, offset_in_view, staging_.size(), take});
      staging_.insert(staging_.end(), view.begin() + static_cast<ptrdiff_t>(offset_in_view),
                      view.begin() + static_cast<ptrdiff_t>(offset_in_view + take));
      offset_in_view += take;
      if (offset_in_view == view.size()) {
        ++view_index;
        offset_in_view = 0;
      }
    }

    if (chunk_precision == Precision::kFp32) {
      comm_.allreduce(staging_, op);
    } else {
      // Chunk boundaries sit on transport-float edges — two encoded
      // elements — and the encoded reduction is elementwise, so splitting
      // a payload across chunks changes nothing about the result.
      comm_.allreduce_encoded(staging_, chunk_precision, op);
    }
    ++last_chunk_count_;

    for (const Placement& p : placements) {
      std::copy(staging_.begin() + static_cast<ptrdiff_t>(p.staging_offset),
                staging_.begin() + static_cast<ptrdiff_t>(p.staging_offset + p.count),
                views_[p.view].data.begin() + static_cast<ptrdiff_t>(p.view_offset));
    }
  }
}

void FusionBuffer::release_staging() {
  staging_.clear();
  staging_.shrink_to_fit();
}

}  // namespace dkfac::comm
