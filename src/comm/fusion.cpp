#include "comm/fusion.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dkfac::comm {

FusionBuffer::FusionBuffer(Communicator& comm, size_t capacity_bytes)
    : comm_(comm), capacity_elements_(capacity_bytes / sizeof(float)) {
  DKFAC_CHECK(capacity_elements_ > 0) << "fusion buffer too small";
}

void FusionBuffer::add(std::span<float> view) {
  // Zero-length views carry no payload; registering them would only issue
  // empty collectives.
  if (!view.empty()) views_.push_back(view);
}

void FusionBuffer::execute(ReduceOp op) {
  // Registrations are consumed by this call even when a collective throws
  // mid-chunk: leaving stale views (and their dangling spans) behind would
  // corrupt the next execute() after a failed step.
  struct ClearOnExit {
    std::vector<std::span<float>>& views;
    ~ClearOnExit() { views.clear(); }
  } guard{views_};

  last_chunk_count_ = 0;
  size_t view_index = 0;
  size_t offset_in_view = 0;  // resume point for views larger than a chunk

  while (view_index < views_.size()) {
    // Pack up to capacity_elements_ into the staging buffer.
    staging_.clear();
    struct Placement {
      size_t view;
      size_t view_offset;
      size_t staging_offset;
      size_t count;
    };
    std::vector<Placement> placements;
    while (view_index < views_.size() && staging_.size() < capacity_elements_) {
      const std::span<float> view = views_[view_index];
      const size_t room = capacity_elements_ - staging_.size();
      const size_t take = std::min(room, view.size() - offset_in_view);
      placements.push_back({view_index, offset_in_view, staging_.size(), take});
      staging_.insert(staging_.end(), view.begin() + static_cast<ptrdiff_t>(offset_in_view),
                      view.begin() + static_cast<ptrdiff_t>(offset_in_view + take));
      offset_in_view += take;
      if (offset_in_view == view.size()) {
        ++view_index;
        offset_in_view = 0;
      }
    }

    comm_.allreduce(staging_, op);
    ++last_chunk_count_;

    for (const Placement& p : placements) {
      std::copy(staging_.begin() + static_cast<ptrdiff_t>(p.staging_offset),
                staging_.begin() + static_cast<ptrdiff_t>(p.staging_offset + p.count),
                views_[p.view].begin() + static_cast<ptrdiff_t>(p.view_offset));
    }
  }
}

void FusionBuffer::release_staging() {
  staging_.clear();
  staging_.shrink_to_fit();
}

}  // namespace dkfac::comm
