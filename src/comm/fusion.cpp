#include "comm/fusion.hpp"

#include <algorithm>
#include <bit>

#include "common/error.hpp"

namespace dkfac::comm {

namespace {
// Every payload — lossless or Codec bit-packed — travels as transport
// floats. This is the ONE place that width appears; all capacity math
// below stays in bytes.
constexpr size_t kTransportBytes = sizeof(float);

bool views_overlap(const BufferView& a, const BufferView& b) {
  const auto lo_a = reinterpret_cast<uintptr_t>(a.address());
  const auto lo_b = reinterpret_cast<uintptr_t>(b.address());
  return lo_a < lo_b + b.size_bytes() && lo_b < lo_a + a.size_bytes();
}
}  // namespace

FusionBuffer::FusionBuffer(Communicator& comm, size_t capacity_bytes)
    : comm_(comm), capacity_bytes_(capacity_bytes) {
  DKFAC_CHECK(capacity_bytes_ >= kTransportBytes) << "fusion buffer too small";
}

void FusionBuffer::add(const BufferView& view) {
  // Zero-length views carry no payload; registering them would only issue
  // empty collectives.
  if (view.empty()) return;
  for (const BufferView& pending : views_) {
    DKFAC_CHECK(!views_overlap(pending, view))
        << "fusion views overlap: a " << view.size()
        << "-float registration aliases a pending " << pending.size()
        << "-float view — the reduction would fold the shared region twice";
  }
  views_.push_back(view);
}

void FusionBuffer::add(std::span<float> view, Precision precision) {
  add(BufferView(view, precision,
                 precision == Precision::kFp32 ? BufferLayout::kDense
                                               : BufferLayout::kEncoded));
}

void FusionBuffer::execute(ReduceOp op) {
  // Registrations are consumed by this call even when a collective throws
  // mid-chunk: leaving stale views (and their dangling spans) behind would
  // corrupt the next execute() after a failed step.
  struct ClearOnExit {
    std::vector<BufferView>& views;
    ~ClearOnExit() { views.clear(); }
  } guard{views_};

  last_chunk_count_ = 0;
  last_inplace_chunks_ = 0;
  size_t view_index = 0;
  size_t offset_in_view = 0;  // resume point for views larger than a chunk
  // Whole transport floats per chunk (floor): a trailing sub-element byte
  // budget can never be packed, so counting it as capacity would leave
  // room > 0 with take == 0 forever — an infinite packing loop.
  const size_t capacity_floats = capacity_bytes_ / kTransportBytes;

  while (view_index < views_.size()) {
    // Lay out up to capacity_floats as one chunk. A chunk holds views of
    // ONE precision: encoded and lossless payloads reduce through
    // different collectives, so a precision change ends the chunk exactly
    // like running out of room does.
    const Precision chunk_precision = views_[view_index].precision();
    size_t chunk_fill = 0;
    placements_.clear();
    while (view_index < views_.size() &&
           views_[view_index].precision() == chunk_precision &&
           chunk_fill < capacity_floats) {
      // span() revalidates arena-backed views here, at use time — a view
      // whose arena was reset since registration throws now, before any
      // memory is touched.
      const std::span<float> view = views_[view_index].span();
      const size_t room = capacity_floats - chunk_fill;
      const size_t take = std::min(room, view.size() - offset_in_view);
      placements_.push_back({view_index, offset_in_view, chunk_fill, take,
                             view.data() + offset_in_view});
      chunk_fill += take;
      offset_in_view += take;
      if (offset_in_view == view.size()) {
        ++view_index;
        offset_in_view = 0;
      }
    }

    // A chunk whose placements sit back-to-back in memory (one view, or
    // neighbouring slices of one arena slot) needs no staging at all —
    // the collective mutates the registered memory directly.
    bool contiguous = true;
    for (size_t i = 1; i < placements_.size(); ++i) {
      if (placements_[i - 1].data + placements_[i - 1].count !=
          placements_[i].data) {
        contiguous = false;
        break;
      }
    }

    if (contiguous) {
      const std::span<float> chunk(placements_.front().data, chunk_fill);
      if (chunk_precision == Precision::kFp32) {
        comm_.allreduce(chunk, op);
      } else {
        // Chunk boundaries sit on transport-float edges — two encoded
        // elements — and the encoded reduction is elementwise, so
        // splitting a payload across chunks changes nothing.
        comm_.allreduce_encoded(chunk, chunk_precision, op);
      }
      ++last_inplace_chunks_;
    } else {
      // Scattered placements: assemble through an arena slot. The rewind +
      // bit_ceil-rounded request means the same block serves every chunk
      // once warmed — the fallback copies, but never allocates.
      staging_arena_.reset();
      const BufferView slot =
          staging_arena_.alloc(std::bit_ceil(chunk_fill), chunk_precision);
      const std::span<float> chunk = slot.span().first(chunk_fill);
      for (const Placement& p : placements_) {
        std::copy_n(p.data, p.count, chunk.data() + p.chunk_offset);
      }
      if (chunk_precision == Precision::kFp32) {
        comm_.allreduce(chunk, op);
      } else {
        comm_.allreduce_encoded(chunk, chunk_precision, op);
      }
      for (const Placement& p : placements_) {
        std::copy_n(chunk.data() + p.chunk_offset, p.count, p.data);
      }
      staged_copy_bytes_.fetch_add(2 * chunk_fill * kTransportBytes,
                                   std::memory_order_relaxed);
    }
    ++last_chunk_count_;
  }
}

}  // namespace dkfac::comm
