// Rank rendezvous for the socket collective backend.
//
// One rendezvous server (normally hosted by the process launcher, see
// net/launch.hpp) hands out ranks and the peer address table:
//
//   worker                         server
//   ------                         ------
//   connect(host, port)
//   kHello {version, world_size,
//           requested_rank,
//           data_port}       ──▶   validate version + world size,
//                                  park until all `world_size` workers
//                                  have registered, assign ranks
//   kWelcome {rank, world_size,
//        ◀──  generation,
//             data_port[world_size]}
//
// Rank assignment honours distinct valid `requested_rank`s (the launcher
// passes each child its index so child i is rank i); unrequested slots are
// filled in registration order. Workers then build the data-plane mesh
// among themselves (socket_comm.cpp) — the server is out of the picture
// after the welcome and the launcher can turn to waiting on children.
//
// Registration is poll-driven: the server multiplexes the listener and
// every half-registered connection, so one worker that connects but stalls
// before sending its hello cannot starve the others — it is dropped at its
// per-connection deadline. A malformed hello likewise drops that client
// (logged), never aborting the whole assembly.
//
// Elastic re-formation: the server carries a generation counter. A worker
// that sends world_size == 0 in its hello opts into elastic membership —
// "whatever group the server forms next". serve_generation() assembles a
// group from however many elastic workers an external alive-count says to
// expect, stamps the welcome with the generation, and increments it. A
// shrunk group after a rank death is just the next generation.
//
// Every step runs under a deadline: a worker that never shows up fails
// serve() with a dkfac::Error, a server that never answers fails
// rendezvous_connect() the same way — no hangs, the property the
// multi-process tests pin down.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "comm/net/wire.hpp"
#include "common/clock.hpp"

namespace dkfac::comm::net {

/// A worker's hello asking for elastic membership: the server (not the
/// worker) decides the world size of the group being formed.
constexpr int kElasticWorld = 0;

/// What a worker learns from the rendezvous.
struct RendezvousInfo {
  int rank = 0;
  int world_size = 1;
  /// Which formation of the group this is (0 = first). Elastic workers
  /// embed it in their data-plane hellos so a connection from a previous
  /// generation can never leak into the new mesh.
  int generation = 0;
  /// Data-plane listening port of every rank, indexed by rank (loopback).
  std::vector<uint16_t> peer_ports;
};

class RendezvousServer {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts listening — workers
  /// may begin connecting the moment this returns.
  RendezvousServer() = default;

  uint16_t port() const { return listener_.port(); }

  /// Accepts exactly `world_size` registrations, assigns ranks, and sends
  /// every worker its welcome. Throws dkfac::Error if the full group does
  /// not assemble within `timeout_s`, or if a worker's hello names a
  /// different world size (a config error, not a flaky client).
  void serve(int world_size, double timeout_s);

  /// Elastic assembly: collects registrations until their count reaches
  /// `expected()` (re-evaluated as registrations arrive and clients drop —
  /// the launcher's alive-child count), then forms a generation-stamped
  /// group of exactly that size and bumps the generation. Registrations
  /// parked beyond the formed group stay parked for the next call.
  /// Returns the world size of the group formed. Throws dkfac::Error if
  /// `expected()` is never reached within `timeout_s` or ever drops below
  /// `min_world`.
  int serve_generation(const std::function<int()>& expected, int min_world,
                       double timeout_s);

  int generation() const { return generation_; }

  /// Completed registrations currently parked (hello parsed, waiting for a
  /// group to form). The elastic supervisor reads this to detect a joiner
  /// waiting on a generation boundary: a parked worker while the formed
  /// world sits below target means the running group should be nudged into
  /// re-forming so the joiner can be admitted.
  int parked_complete() const {
    int n = 0;
    for (const Registration& reg : parked_) n += reg.complete ? 1 : 0;
    return n;
  }

  /// Drops the listening socket. Forked children call this so only the
  /// launcher ever accepts on the inherited fd.
  void close() { listener_.close(); }

 private:
  struct Registration {
    Socket sock;
    std::vector<uint8_t> buf;  // hello frame bytes received so far
    /// Absolute per-connection deadline for delivering the hello; survives
    /// across pumped serve calls (registrations persist between them).
    Clock::time_point hello_deadline{};
    int requested_rank = -1;
    uint16_t data_port = 0;
    bool complete = false;     // hello fully parsed
    int rank = -1;
  };

  /// Poll-driven registration pump shared by serve / serve_generation:
  /// accepts, reads hellos incrementally, drops stalled or malformed
  /// clients, and returns once `target()` complete registrations are
  /// parked. `world_for_hello` is the world size hellos must name
  /// (kElasticWorld accepted always); a different nonzero value throws.
  void collect(const std::function<int()>& target, int world_for_hello,
               double timeout_s);
  /// Assigns ranks to the first `world` parked registrations and welcomes
  /// them with `generation`; welcomed registrations leave the parking lot.
  void form_group(int world, int generation, double timeout_s);

  ListenSocket listener_;
  std::vector<Registration> parked_;
  int generation_ = 0;
};

/// Worker side: registers `data_port` with the server, requests
/// `requested_rank` (-1 = any), and blocks until the welcome arrives.
/// Pass `world_size == kElasticWorld` for elastic membership (the server
/// decides the group size; `requested_rank` is then only a hint).
RendezvousInfo rendezvous_connect(const std::string& host, uint16_t port,
                                  int world_size, int requested_rank,
                                  uint16_t data_port, double timeout_s);

}  // namespace dkfac::comm::net
