// Rank rendezvous for the socket collective backend.
//
// One rendezvous server (normally hosted by the process launcher, see
// net/launch.hpp) hands out ranks and the peer address table:
//
//   worker                         server
//   ------                         ------
//   connect(host, port)
//   kHello {version, world_size,
//           requested_rank,
//           data_port}       ──▶   validate version + world size,
//                                  park until all `world_size` workers
//                                  have registered, assign ranks
//   kWelcome {rank, world_size,
//        ◀──  data_port[world_size]}
//
// Rank assignment honours distinct valid `requested_rank`s (the launcher
// passes each child its index so child i is rank i); unrequested slots are
// filled in registration order. Workers then build the data-plane mesh
// among themselves (socket_comm.cpp) — the server is out of the picture
// after the welcome and the launcher can turn to waiting on children.
//
// Every step runs under a deadline: a worker that never shows up fails
// serve() with a dkfac::Error, a server that never answers fails
// rendezvous_connect() the same way — no hangs, the property the
// multi-process tests pin down.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/net/wire.hpp"

namespace dkfac::comm::net {

/// What a worker learns from the rendezvous.
struct RendezvousInfo {
  int rank = 0;
  int world_size = 1;
  /// Data-plane listening port of every rank, indexed by rank (loopback).
  std::vector<uint16_t> peer_ports;
};

class RendezvousServer {
 public:
  /// Binds 127.0.0.1 on an ephemeral port and starts listening — workers
  /// may begin connecting the moment this returns.
  RendezvousServer() = default;

  uint16_t port() const { return listener_.port(); }

  /// Accepts exactly `world_size` registrations, assigns ranks, and sends
  /// every worker its welcome. Throws dkfac::Error if the full group does
  /// not assemble within `timeout_s`.
  void serve(int world_size, double timeout_s);

  /// Drops the listening socket. Forked children call this so only the
  /// launcher ever accepts on the inherited fd.
  void close() { listener_.close(); }

 private:
  ListenSocket listener_;
};

/// Worker side: registers `data_port` with the server, requests
/// `requested_rank` (-1 = any), and blocks until the welcome arrives.
RendezvousInfo rendezvous_connect(const std::string& host, uint16_t port,
                                  int world_size, int requested_rank,
                                  uint16_t data_port, double timeout_s);

}  // namespace dkfac::comm::net
