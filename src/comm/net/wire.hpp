// TCP wire protocol for the socket collective backend.
//
// Every message on a dkfac connection is one length-prefixed frame:
//
//   | magic u32 | version u16 | type u16 | seq u32 | length u32 | crc32 u32 |
//   | payload bytes ... (length of them)                                    |
//
// all little-endian. `seq` is a per-connection, per-direction message
// counter: both ends of a connection agree on how many frames have flowed
// each way, so a desynchronised collective (one rank issuing a different
// collective sequence than its peer) fails loudly at the frame layer
// instead of silently reinterpreting payload bytes. `crc32` covers the
// payload, catching corruption and framing bugs. The first frame on every
// connection is a kHello carrying the protocol version — a peer built
// against a different wire format is rejected before any payload moves.
//
// Socket is a poll-driven non-blocking RAII fd wrapper: every operation
// takes a deadline, so a dead or wedged peer produces a dkfac::Error
// ("timed out" / "closed the connection") instead of a hang — the
// property the multi-process tests and the rendezvous path rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dkfac::comm::net {

constexpr uint32_t kWireMagic = 0x444B4643;  // "DKFC"
constexpr uint16_t kWireVersion = 1;

/// Sanity cap on a single frame's payload. Legitimate payloads top out at
/// the fusion-buffer clamp (64 MB); anything near UINT32_MAX is a corrupt
/// or hostile stream, and the length must be rejected BEFORE the receive
/// path allocates it — the checksum only runs after the payload lands.
constexpr uint32_t kMaxFramePayloadBytes = 256u << 20;

enum class FrameType : uint16_t {
  kHello = 1,    // handshake: rendezvous registration / peer identification
  kWelcome = 2,  // rendezvous reply: rank assignment + peer table
  kData = 3,     // collective payload
  kBarrier = 4,  // barrier token
};

constexpr size_t kFrameHeaderBytes = 20;

struct FrameHeader {
  uint32_t magic = kWireMagic;
  uint16_t version = kWireVersion;
  uint16_t type = 0;
  uint32_t seq = 0;
  uint32_t length = 0;    // payload bytes
  uint32_t checksum = 0;  // crc32 of the payload

  void encode(uint8_t out[kFrameHeaderBytes]) const;
  static FrameHeader decode(const uint8_t in[kFrameHeaderBytes]);
  /// Magic/version sanity — throws dkfac::Error with `context` on mismatch.
  void validate(const char* context) const;
};

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`.
uint32_t crc32(std::span<const uint8_t> data);

// ---- errno classification -------------------------------------------------
//
// The single place transient vs fatal network errnos are told apart; the
// Socket retry loops and the rendezvous registration pump both route
// through these so the two layers can never drift on what "try again"
// means.

/// Connect-phase errnos worth retrying until the deadline: the listener is
/// not accepting yet (rendezvous startup) or the kernel dropped the
/// attempt transiently. Everything else (EADDRNOTAVAIL, ENETUNREACH, ...)
/// is a configuration or routing fault — fail fast.
bool transient_connect_errno(int err);

/// Errnos a non-blocking I/O loop treats as "no progress right now, poll
/// and retry": EAGAIN / EWOULDBLOCK / EINTR.
bool transient_io_errno(int err);

/// Seeded-jittered exponential backoff for connect retries: each next_s()
/// doubles the base delay (capped) and scales it by a deterministic jitter
/// in [0.5, 1.0], so retry storms from simultaneously restarting ranks
/// de-synchronise without losing reproducibility for a fixed seed.
class Backoff {
 public:
  explicit Backoff(uint64_t seed, double base_s = 0.002, double cap_s = 0.25)
      : state_(seed), delay_s_(base_s), cap_s_(cap_s) {}

  /// The next sleep in seconds.
  double next_s();

 private:
  uint64_t state_;
  double delay_s_;
  double cap_s_;
};

/// Non-blocking TCP socket with poll-based deadlines. Move-only RAII.
class Socket {
 public:
  Socket() = default;
  /// Takes ownership of `fd` and switches it to non-blocking mode.
  explicit Socket(int fd);
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Connects to host:port, retrying refused connections until the
  /// deadline (the listener may not be up yet during rendezvous).
  static Socket connect_to(const std::string& host, uint16_t port,
                           double timeout_s);

  /// Disables Nagle batching — collective frames must not sit in the
  /// kernel waiting for a full segment.
  void set_nodelay();

  /// Sends exactly `n` bytes before `deadline` or throws.
  void send_all(const void* data, size_t n, double timeout_s);
  /// Gather-send: exactly `an + bn` bytes from the two regions in order,
  /// via sendmsg/iovec — one syscall (and one TCP segment, under Nagle-off)
  /// where send_all(a) + send_all(b) takes two. This is how a frame header
  /// and its payload leave without first being assembled into a contiguous
  /// scratch buffer.
  void send_vectored(const void* a, size_t an, const void* b, size_t bn,
                     double timeout_s);
  /// Receives exactly `n` bytes before `deadline` or throws; a peer close
  /// mid-message throws "closed the connection".
  void recv_all(void* data, size_t n, double timeout_s);

 private:
  int fd_ = -1;
};

/// Listening TCP socket on 127.0.0.1 with an ephemeral kernel-chosen port.
class ListenSocket {
 public:
  ListenSocket();  // binds + listens immediately
  uint16_t port() const { return port_; }
  bool valid() const { return sock_.valid(); }
  /// Raw fd for callers that multiplex the listener with other sockets in
  /// one poll set (the rendezvous registration pump).
  int fd() const { return sock_.fd(); }
  /// Accepts one connection before the deadline or throws.
  Socket accept(double timeout_s);
  /// Drops the listener (children of a forking launcher close their
  /// inherited copy so only the owner ever accepts).
  void close() { sock_.close(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

// ---- framed I/O -----------------------------------------------------------
//
// All helpers return the wire bytes moved (header + payload) so callers
// can account real bytes-on-wire in CommStats.

/// Sends one frame. `seq` is the caller-maintained per-direction counter.
size_t send_frame(Socket& sock, FrameType type, uint32_t seq,
                  std::span<const uint8_t> payload, double timeout_s);
inline size_t send_frame(Socket& sock, FrameType type, uint32_t seq,
                         std::span<const float> payload, double timeout_s) {
  return send_frame(sock, type, seq,
                    std::span<const uint8_t>(
                        reinterpret_cast<const uint8_t*>(payload.data()),
                        payload.size_bytes()),
                    timeout_s);
}

/// Receives one frame whose payload length must equal `payload.size()`;
/// validates magic, version, type, seq, length, and checksum.
size_t recv_frame_into(Socket& sock, FrameType type, uint32_t seq,
                       std::span<uint8_t> payload, double timeout_s);
inline size_t recv_frame_into(Socket& sock, FrameType type, uint32_t seq,
                              std::span<float> payload, double timeout_s) {
  return recv_frame_into(
      sock, type, seq,
      std::span<uint8_t>(reinterpret_cast<uint8_t*>(payload.data()),
                         payload.size_bytes()),
      timeout_s);
}

/// Receives one frame of unknown payload length (allgatherv blocks);
/// appends the payload to `out` and returns the wire bytes moved.
size_t recv_frame(Socket& sock, FrameType type, uint32_t seq,
                  std::vector<uint8_t>& out, double timeout_s);

/// Full-duplex exchange: sends one frame to `to` while receiving one frame
/// from `from`, making progress on whichever direction is ready. This is
/// the deadlock-free primitive for cyclic ring steps — with blocking I/O a
/// ring where every rank sends before it receives wedges once payloads
/// exceed the kernel socket buffers. The received payload is appended to
/// `in_out`; returns wire bytes moved (both directions).
size_t exchange_frames(Socket& to, FrameType send_type, uint32_t send_seq,
                       std::span<const uint8_t> send_payload, Socket& from,
                       FrameType recv_type, uint32_t recv_seq,
                       std::vector<uint8_t>& in_out, double timeout_s);

/// exchange_frames with a fixed-size receive destination: the incoming
/// payload length must equal `recv_payload.size()` and lands DIRECTLY in
/// it — no intermediate receive buffer, no allocation, no copy-out. The
/// zero-copy primitive for ring steps whose block sizes are known up
/// front (every allreduce ring step, the barrier token).
size_t exchange_frames_into(Socket& to, FrameType send_type, uint32_t send_seq,
                            std::span<const uint8_t> send_payload, Socket& from,
                            FrameType recv_type, uint32_t recv_seq,
                            std::span<uint8_t> recv_payload, double timeout_s);

// ---- little-endian payload builders --------------------------------------

inline void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}
inline void put_u32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}
inline uint16_t get_u16(std::span<const uint8_t> in, size_t offset) {
  DKFAC_CHECK(offset + 2 <= in.size()) << "payload underflow";
  return static_cast<uint16_t>(in[offset] | (in[offset + 1] << 8));
}
inline uint32_t get_u32(std::span<const uint8_t> in, size_t offset) {
  DKFAC_CHECK(offset + 4 <= in.size()) << "payload underflow";
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[offset + i]) << (8 * i);
  return v;
}

}  // namespace dkfac::comm::net
