// Multi-process rank launcher for the socket backend.
//
// run_ranks(n, fn) is the SPMD entry point behind `train_cli --backend
// socket` and the multi-process tests: the calling process binds a
// rendezvous server, forks n children, and each child builds a SocketComm
// through the rendezvous and runs fn(comm). Child i requests rank i, so
// rank == fork index whenever that matters (it never does for
// correctness — ranks are symmetric).
//
//   parent                        child i (fork)
//   ------                        -------------
//   RendezvousServer bind
//   fork × n          ──────▶     close inherited listener
//   serve(n)          ◀─hello──   SocketComm{port, world=n, rank=i}
//                     ──welcome▶    ... peer mesh ...
//   waitpid × n                   exit(fn(comm))
//
// Exit-code contract: run_ranks returns 0 iff every child returned 0.
// A child that throws dkfac::Error exits 1 (message on stderr); a child
// killed by a signal surfaces as 128+signo, mirroring the shell
// convention. If the rendezvous times out (a child died before
// registering), remaining children are SIGKILLed, everything is reaped,
// and the Error propagates — the launcher never leaks processes and never
// hangs on a dead group.
//
// fork() safety: call run_ranks before the process spawns threads (gtest
// cases and CLI mains do). Children may use OpenMP freely — each starts
// with a fresh runtime.
#pragma once

#include <functional>

#include "comm/net/socket_comm.hpp"

namespace dkfac::comm::net {

struct LaunchOptions {
  /// How long the group may take to assemble (covers child fork + CTor).
  double rendezvous_timeout_s = 30.0;
  /// Per-operation network deadline inside the children's SocketComm —
  /// an upper bound on the compute imbalance between ranks at any
  /// collective, not on total runtime.
  double comm_timeout_s = 120.0;
  /// After the first abnormal child exit the survivors get SIGTERM; any
  /// still alive this many seconds later get SIGKILL. Keeps the launcher's
  /// return prompt instead of waiting out every survivor's comm deadline.
  double term_grace_s = 2.0;
  CostModel cost = CostModel::loopback_tcp();
};

/// Forks `nranks` processes, each running `fn` on its own SocketComm
/// endpoint, and returns the aggregated exit status (0 = all succeeded,
/// else the first failing child's code). Throws dkfac::Error if the group
/// never assembles.
int run_ranks(int nranks, const std::function<int(Communicator&)>& fn,
              const LaunchOptions& options = {});

}  // namespace dkfac::comm::net
