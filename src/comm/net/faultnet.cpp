#include "comm/net/faultnet.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <thread>

#include "comm/net/wire.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace dkfac::comm::net::faultnet {

namespace detail {
std::atomic<bool> g_active{false};
}

namespace {

/// Per-rule runtime trigger state, parallel to the installed rule list.
struct RuleState {
  uint64_t matched = 0;
  uint64_t fired = 0;
};

// All mutable plan state behind one mutex: the hooks run from the training
// thread and the async comm executor, and injection frequency is low
// enough (bounded by the plan) that a lock is irrelevant next to a
// syscall. The off path never takes it.
std::mutex g_mu;
Plan g_plan;
std::vector<RuleState> g_state;
int g_rank = -1;
int g_epoch = -1;
int64_t g_step = -1;

std::atomic<uint64_t> g_refused{0};
std::atomic<uint64_t> g_resets{0};
std::atomic<uint64_t> g_stalls{0};
std::atomic<uint64_t> g_short_writes{0};
std::atomic<uint64_t> g_bitflips{0};
std::atomic<uint64_t> g_aborts{0};

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void count(Action action) {
  switch (action) {
    case Action::kRefuse: g_refused.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kReset: g_resets.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kStall: g_stalls.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kShortWrite:
      g_short_writes.fetch_add(1, std::memory_order_relaxed);
      break;
    case Action::kBitflip: g_bitflips.fetch_add(1, std::memory_order_relaxed); break;
    case Action::kAbort: g_aborts.fetch_add(1, std::memory_order_relaxed); break;
  }
  DKFAC_TRACE_INSTANT("faultnet.inject");
}

/// First rule whose trigger matches this occurrence and whose nth/times
/// window admits a firing; advances every matching rule's counter either
/// way. Returns the rule index, or -1.
int match_locked(Op op, Phase phase) {
  int firing = -1;
  for (size_t i = 0; i < g_plan.rules.size(); ++i) {
    const Rule& rule = g_plan.rules[i];
    if (phase == Phase::kNone) {
      if (rule.phase != Phase::kNone) continue;
      if (rule.op != Op::kAny && rule.op != op) continue;
    } else {
      if (rule.phase != phase) continue;
    }
    if (rule.rank >= 0 && rule.rank != g_rank) continue;
    if (rule.epoch >= 0 && rule.epoch != g_epoch) continue;
    if (rule.step >= 0 && rule.step != g_step) continue;
    RuleState& state = g_state[i];
    ++state.matched;
    if (firing < 0 && state.matched >= rule.nth &&
        state.matched < rule.nth + rule.times) {
      ++state.fired;
      firing = static_cast<int>(i);
    }
  }
  return firing;
}

[[noreturn]] void abort_self() {
  DKFAC_LOG_WARN << "faultnet: injected abort — SIGKILLing this process";
  ::kill(::getpid(), SIGKILL);
  _exit(137);  // unreachable; keeps [[noreturn]] honest if SIGKILL races
}

void stall(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

const char* action_name(Action a) {
  switch (a) {
    case Action::kRefuse: return "refuse";
    case Action::kReset: return "reset";
    case Action::kStall: return "stall";
    case Action::kShortWrite: return "short_write";
    case Action::kBitflip: return "bitflip";
    case Action::kAbort: return "abort";
  }
  return "?";
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t end = text.find(sep, start);
    if (end == std::string::npos) {
      parts.push_back(text.substr(start));
      break;
    }
    parts.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return parts;
}

std::string trim(const std::string& s) {
  const size_t a = s.find_first_not_of(" \t\n");
  if (a == std::string::npos) return "";
  const size_t z = s.find_last_not_of(" \t\n");
  return s.substr(a, z - a + 1);
}

uint64_t parse_u64(const std::string& value, const std::string& field) {
  try {
    size_t pos = 0;
    const unsigned long long v = std::stoull(value, &pos);
    DKFAC_CHECK(pos == value.size());
    return static_cast<uint64_t>(v);
  } catch (const std::exception&) {
    throw Error("faultnet: bad number in fault plan field '" + field + "=" +
                value + "'");
  }
}

}  // namespace

Plan parse_plan(const std::string& text) {
  Plan plan;
  for (const std::string& raw_rule : split(text, ';')) {
    const std::string rule_text = trim(raw_rule);
    if (rule_text.empty()) continue;
    Rule rule;
    bool has_action = false;
    bool seed_only = false;
    bool has_op = false;
    for (const std::string& raw_field : split(rule_text, ',')) {
      const std::string field = trim(raw_field);
      const size_t eq = field.find('=');
      DKFAC_CHECK(eq != std::string::npos && eq > 0 && eq + 1 < field.size())
          << "faultnet: fault plan field '" << field << "' is not key=value";
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "seed") {
        plan.seed = parse_u64(value, key);
        seed_only = true;
      } else if (key == "rank") {
        rule.rank = static_cast<int>(parse_u64(value, key));
      } else if (key == "op") {
        has_op = true;
        if (value == "connect") rule.op = Op::kConnect;
        else if (value == "send") rule.op = Op::kSend;
        else if (value == "recv") rule.op = Op::kRecv;
        else if (value == "any") rule.op = Op::kAny;
        else throw Error("faultnet: unknown op '" + value + "' in fault plan");
      } else if (key == "phase") {
        if (value == "step") rule.phase = Phase::kStep;
        else if (value == "forward") rule.phase = Phase::kForward;
        else if (value == "backward") rule.phase = Phase::kBackward;
        else if (value == "grad_comm") rule.phase = Phase::kGradComm;
        else if (value == "apply") rule.phase = Phase::kApply;
        else throw Error("faultnet: unknown phase '" + value + "' in fault plan");
      } else if (key == "epoch") {
        rule.epoch = static_cast<int>(parse_u64(value, key));
      } else if (key == "step") {
        rule.step = static_cast<int64_t>(parse_u64(value, key));
      } else if (key == "nth") {
        rule.nth = parse_u64(value, key);
        DKFAC_CHECK(rule.nth >= 1) << "faultnet: nth is 1-based";
      } else if (key == "times") {
        rule.times = parse_u64(value, key);
        DKFAC_CHECK(rule.times >= 1) << "faultnet: times must be >= 1";
      } else if (key == "action") {
        has_action = true;
        if (value == "refuse") rule.action = Action::kRefuse;
        else if (value == "reset") rule.action = Action::kReset;
        else if (value == "stall") rule.action = Action::kStall;
        else if (value == "short_write") rule.action = Action::kShortWrite;
        else if (value == "bitflip") rule.action = Action::kBitflip;
        else if (value == "abort") rule.action = Action::kAbort;
        else throw Error("faultnet: unknown action '" + value + "' in fault plan");
      } else if (key == "arg") {
        try {
          rule.stall_s = std::stod(value);
        } catch (const std::exception&) {
          throw Error("faultnet: bad arg '" + value + "' in fault plan");
        }
        rule.write_cap = static_cast<uint64_t>(
            std::strtoull(value.c_str(), nullptr, 10));
      } else {
        throw Error("faultnet: unknown fault plan key '" + key + "'");
      }
    }
    if (seed_only && !has_action && !has_op && rule.phase == Phase::kNone) {
      continue;  // a bare "seed=N" rule only configures the plan RNG
    }
    DKFAC_CHECK(has_action)
        << "faultnet: fault plan rule '" << rule_text << "' has no action=";
    if (rule.phase != Phase::kNone) {
      DKFAC_CHECK(!has_op)
          << "faultnet: rule '" << rule_text << "' mixes op= and phase=";
      DKFAC_CHECK(rule.action == Action::kStall || rule.action == Action::kAbort)
          << "faultnet: phase rules support only stall/abort, got "
          << action_name(rule.action);
    }
    if (rule.action == Action::kRefuse) {
      DKFAC_CHECK(rule.op == Op::kConnect)
          << "faultnet: action=refuse requires op=connect";
    }
    if (rule.action == Action::kBitflip || rule.action == Action::kShortWrite) {
      DKFAC_CHECK(rule.op == Op::kSend)
          << "faultnet: action=" << action_name(rule.action)
          << " requires op=send";
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

void install(Plan plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = std::move(plan);
  g_state.assign(g_plan.rules.size(), RuleState{});
  g_rank = -1;
  g_epoch = -1;
  g_step = -1;
  g_refused = g_resets = g_stalls = 0;
  g_short_writes = g_bitflips = g_aborts = 0;
  detail::g_active.store(!g_plan.rules.empty(), std::memory_order_relaxed);
}

void clear() { install(Plan{}); }

void load_from_env() {
  static std::once_flag once;
  std::call_once(once, [] {
    const char* text = std::getenv("DKFAC_FAULT_PLAN");
    if (text == nullptr || *text == '\0') return;
    install(parse_plan(text));
    DKFAC_LOG_INFO << "faultnet: fault plan armed (" << text << ")";
  });
}

void set_rank(int rank) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_rank = rank;
}

void at_phase(Phase phase) {
  Action action;
  double stall_s;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    const int idx = match_locked(Op::kAny, phase);
    if (idx < 0) return;
    action = g_plan.rules[static_cast<size_t>(idx)].action;
    stall_s = g_plan.rules[static_cast<size_t>(idx)].stall_s;
  }
  count(action);
  if (action == Action::kAbort) abort_self();
  stall(stall_s);
}

void set_step(int epoch, int64_t step) {
  {
    std::lock_guard<std::mutex> lock(g_mu);
    g_epoch = epoch;
    g_step = step;
  }
  at_phase(Phase::kStep);
}

bool on_connect_attempt() {
  Action action;
  double stall_s;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    const int idx = match_locked(Op::kConnect, Phase::kNone);
    if (idx < 0) return false;
    action = g_plan.rules[static_cast<size_t>(idx)].action;
    stall_s = g_plan.rules[static_cast<size_t>(idx)].stall_s;
  }
  count(action);
  switch (action) {
    case Action::kAbort:
      abort_self();
    case Action::kStall:
      stall(stall_s);
      return false;
    default:
      // refuse (and reset, which a connect cannot distinguish from): the
      // attempt fails as ECONNREFUSED and rides the normal retry/backoff.
      return true;
  }
}

SendFault on_send(int fd, std::span<const uint8_t> payload,
                  std::vector<uint8_t>& scratch) {
  SendFault fault{payload, std::nullopt};
  int idx;
  Rule rule;
  uint64_t fired;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    idx = match_locked(Op::kSend, Phase::kNone);
    if (idx < 0) return fault;
    rule = g_plan.rules[static_cast<size_t>(idx)];
    fired = g_state[static_cast<size_t>(idx)].fired;
  }
  count(rule.action);
  switch (rule.action) {
    case Action::kAbort:
      abort_self();
    case Action::kStall:
      stall(rule.stall_s);
      return fault;
    case Action::kReset:
      // Both directions die: our pending send fails with EPIPE, the peer's
      // read sees EOF — each side gets its typed "peer closed" error.
      ::shutdown(fd, SHUT_RDWR);
      return fault;
    case Action::kShortWrite: {
      const size_t total = kFrameHeaderBytes + payload.size();
      size_t cap = rule.write_cap > 0
                       ? static_cast<size_t>(rule.write_cap)
                       : total / 2;
      fault.truncate_after = std::min(cap, total > 0 ? total - 1 : 0);
      return fault;
    }
    case Action::kBitflip: {
      if (payload.empty()) return fault;  // nothing to corrupt — header CRC
                                          // already covers length 0
      scratch.assign(payload.begin(), payload.end());
      const uint64_t pick =
          splitmix64(g_plan.seed ^
                     (static_cast<uint64_t>(idx) * 0x100000001B3ull + fired));
      const uint64_t bit = pick % (scratch.size() * 8);
      scratch[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      fault.payload = std::span<const uint8_t>(scratch.data(), scratch.size());
      return fault;
    }
    default:
      return fault;
  }
}

void on_recv(int fd) {
  Action action;
  double stall_s;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    const int idx = match_locked(Op::kRecv, Phase::kNone);
    if (idx < 0) return;
    action = g_plan.rules[static_cast<size_t>(idx)].action;
    stall_s = g_plan.rules[static_cast<size_t>(idx)].stall_s;
  }
  count(action);
  switch (action) {
    case Action::kAbort:
      abort_self();
    case Action::kStall:
      stall(stall_s);
      return;
    default:
      // reset: kill the connection under the pending receive — it fails
      // with a typed "peer closed the connection".
      ::shutdown(fd, SHUT_RDWR);
      return;
  }
}

InjectCounts counts() {
  InjectCounts c;
  c.refused = g_refused.load(std::memory_order_relaxed);
  c.resets = g_resets.load(std::memory_order_relaxed);
  c.stalls = g_stalls.load(std::memory_order_relaxed);
  c.short_writes = g_short_writes.load(std::memory_order_relaxed);
  c.bitflips = g_bitflips.load(std::memory_order_relaxed);
  c.aborts = g_aborts.load(std::memory_order_relaxed);
  c.total = c.refused + c.resets + c.stalls + c.short_writes + c.bitflips +
            c.aborts;
  return c;
}

}  // namespace dkfac::comm::net::faultnet
