#include "comm/net/socket_comm.hpp"

#include <algorithm>
#include <cstring>

#include "comm/net/faultnet.hpp"
#include "comm/net/rendezvous.hpp"
#include "common/error.hpp"
#include "obs/trace.hpp"

namespace dkfac::comm::net {

namespace {

inline std::span<const uint8_t> as_bytes(std::span<const float> s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size_bytes()};
}

/// Chunk boundaries for the pipelined ring: a pure function of (n, K), so
/// every rank cuts identical chunks. The first n % K chunks get one extra
/// element.
std::vector<size_t> chunk_offsets(size_t n, int chunks) {
  std::vector<size_t> offsets(static_cast<size_t>(chunks) + 1, 0);
  const size_t base = n / static_cast<size_t>(chunks);
  const size_t rem = n % static_cast<size_t>(chunks);
  for (int k = 0; k < chunks; ++k) {
    offsets[static_cast<size_t>(k) + 1] =
        offsets[static_cast<size_t>(k)] + base +
        (static_cast<size_t>(k) < rem ? 1 : 0);
  }
  return offsets;
}

}  // namespace

SocketComm::SocketComm(const SocketOptions& options) : options_(options) {
  // Arm a scripted fault plan from DKFAC_FAULT_PLAN if one is set (forked
  // rank processes inherit the variable from the launcher). One relaxed
  // load per process after the first call; no plan → no behavior change.
  faultnet::load_from_env();
  DKFAC_CHECK(options_.elastic || options_.world_size >= 1)
      << "SocketComm needs at least one rank";
  size_ = options_.elastic ? 1 : options_.world_size;
  if (!options_.elastic && size_ == 1 && options_.rendezvous_port == 0) {
    rank_ = 0;  // standalone single rank — no server, no peers
    return;
  }
  DKFAC_CHECK(options_.rendezvous_port != 0)
      << "SocketComm needs a rendezvous port for world size " << size_;

  // The data listener must exist before registration: peers may dial the
  // advertised port the moment the server publishes it.
  ListenSocket listener;
  const double rdv_timeout = options_.rendezvous_timeout_s > 0.0
                                 ? options_.rendezvous_timeout_s
                                 : options_.timeout_s;
  const RendezvousInfo info = rendezvous_connect(
      options_.host, options_.rendezvous_port,
      options_.elastic ? kElasticWorld : options_.world_size,
      options_.requested_rank, listener.port(), rdv_timeout);
  rank_ = info.rank;
  size_ = info.world_size;
  generation_ = info.generation;
  // rank= fault rules target the data-plane rank just assigned; until here
  // only rank-agnostic rules could fire.
  if (faultnet::active()) faultnet::set_rank(rank_);

  peers_.resize(static_cast<size_t>(size_));
  send_seq_.assign(static_cast<size_t>(size_), 0);
  recv_seq_.assign(static_cast<size_t>(size_), 0);

  // Full mesh: dial every lower rank (their listeners predate the welcome,
  // so connects succeed via the backlog even before they accept), then
  // accept every higher one. Each connection opens with a versioned
  // kHello naming the dialer's rank and the rendezvous generation — accept
  // order is scheduling noise, the hello pins the identity, and a stale
  // connection from a previous formation is rejected by its generation.
  std::vector<uint8_t> hello;
  put_u32(hello, static_cast<uint32_t>(rank_));
  put_u32(hello, static_cast<uint32_t>(generation_));
  for (int r = 0; r < rank_; ++r) {
    try {
      Socket sock = Socket::connect_to(
          options_.host, info.peer_ports[static_cast<size_t>(r)],
          options_.timeout_s);
      stats_.wire_sent_bytes += send_frame(
          sock, FrameType::kHello, /*seq=*/0, std::span<const uint8_t>(hello),
          options_.timeout_s);
      send_seq_[static_cast<size_t>(r)] = 1;
      peers_[static_cast<size_t>(r)] = std::move(sock);
    } catch (const Error& e) {
      throw PeerFailure(r, e.what());
    }
  }
  int missing = size_ - rank_ - 1;
  while (missing > 0) {
    Socket sock = listener.accept(options_.timeout_s);
    std::vector<uint8_t> peer_hello;
    stats_.wire_recv_bytes += recv_frame(sock, FrameType::kHello, /*seq=*/0,
                                         peer_hello, options_.timeout_s);
    DKFAC_CHECK(peer_hello.size() == 8) << "malformed peer hello";
    const int r = static_cast<int32_t>(get_u32(peer_hello, 0));
    const int gen = static_cast<int32_t>(get_u32(peer_hello, 4));
    if (gen != generation_) {
      // A dialer from a previous formation raced the re-rendezvous; its
      // mesh is obsolete — drop the connection, keep accepting.
      continue;
    }
    DKFAC_CHECK(r > rank_ && r < size_ &&
                !peers_[static_cast<size_t>(r)].valid())
        << "unexpected peer hello from rank " << r;
    recv_seq_[static_cast<size_t>(r)] = 1;
    peers_[static_cast<size_t>(r)] = std::move(sock);
    --missing;
  }

  // Everyone reaches here only with a complete, verified mesh.
  barrier();
}

Socket& SocketComm::peer(int r) {
  DKFAC_CHECK(r >= 0 && r < size_ && r != rank_)
      << "no peer connection for rank " << r;
  Socket& sock = peers_[static_cast<size_t>(r)];
  DKFAC_CHECK(sock.valid()) << "connection to rank " << r << " is down";
  return sock;
}

void SocketComm::send_to(int r, FrameType type, std::span<const float> payload) {
  try {
    stats_.wire_sent_bytes +=
        send_frame(peer(r), type, send_seq_[static_cast<size_t>(r)]++, payload,
                   options_.timeout_s);
  } catch (const PeerFailure&) {
    throw;
  } catch (const Error& e) {
    throw PeerFailure(r, e.what());
  }
}

void SocketComm::recv_from(int r, FrameType type, std::span<float> payload) {
  try {
    stats_.wire_recv_bytes +=
        recv_frame_into(peer(r), type, recv_seq_[static_cast<size_t>(r)]++,
                        payload, options_.timeout_s);
  } catch (const PeerFailure&) {
    throw;
  } catch (const Error& e) {
    throw PeerFailure(r, e.what());
  }
}

void SocketComm::exchange(int to, std::span<const float> out, int from,
                          std::vector<uint8_t>& in_out) {
  const size_t sent = kFrameHeaderBytes + out.size_bytes();
  try {
    const size_t moved = exchange_frames(
        peer(to), FrameType::kData, send_seq_[static_cast<size_t>(to)]++,
        as_bytes(out), peer(from), FrameType::kData,
        recv_seq_[static_cast<size_t>(from)]++, in_out, options_.timeout_s);
    stats_.wire_sent_bytes += sent;
    stats_.wire_recv_bytes += moved - sent;
  } catch (const PeerFailure&) {
    throw;
  } catch (const Error& e) {
    // The exchange is full-duplex over two links; attribute the failure to
    // the receive side, where a dead peer manifests first.
    throw PeerFailure(from, e.what());
  }
}

void SocketComm::exchange_into(int to, std::span<const float> out, int from,
                               std::span<float> in, FrameType type) {
  const size_t sent = kFrameHeaderBytes + out.size_bytes();
  try {
    const size_t moved = exchange_frames_into(
        peer(to), type, send_seq_[static_cast<size_t>(to)]++, as_bytes(out),
        peer(from), type, recv_seq_[static_cast<size_t>(from)]++,
        std::span<uint8_t>(reinterpret_cast<uint8_t*>(in.data()),
                           in.size_bytes()),
        options_.timeout_s);
    stats_.wire_sent_bytes += sent;
    stats_.wire_recv_bytes += moved - sent;
  } catch (const PeerFailure&) {
    throw;
  } catch (const Error& e) {
    throw PeerFailure(from, e.what());
  }
}

SocketComm::AllreduceAlgo SocketComm::allreduce_algorithm(uint64_t bytes) const {
  // Both algorithms produce the identical rank-order fold, so this choice
  // is pure performance: circulation pays (p-1)·n bandwidth at one round
  // of latency, the pipelined ring ~2·n bandwidth at two chain traversals.
  const double circ = options_.cost.circulating_allreduce_time(bytes, size_);
  const double pipe = options_.cost.pipelined_allreduce_time(bytes, size_);
  return circ <= pipe ? AllreduceAlgo::kRingCirculation
                      : AllreduceAlgo::kPipelinedRing;
}

void SocketComm::allreduce(std::span<float> data, ReduceOp op) {
  stats_.allreduce_calls++;
  stats_.allreduce_bytes += data.size_bytes();
  // Zero-length reductions carry no payload and (unlike ThreadComm, where
  // every collective doubles as a barrier) need no synchronisation.
  if (size_ == 1 || data.empty()) return;
  const bool circulation =
      allreduce_algorithm(data.size_bytes()) == AllreduceAlgo::kRingCirculation;
  // The span is named after the algorithm the cost model picked, so the
  // timeline shows the choice per call, not just the op.
  DKFAC_TRACE_SCOPE_ID(
      span, !obs::Tracer::enabled() ? 0
            : circulation
                ? DKFAC_TRACE_INTERN("socket.allreduce.ring")
                : DKFAC_TRACE_INTERN("socket.allreduce.pipelined_ring"));
  const uint64_t wire_before = stats_.wire_sent_bytes + stats_.wire_recv_bytes;
  if (circulation) {
    ring_circulation_allreduce(data, op);
  } else {
    pipelined_ring_allreduce(data, op);
  }
  if (span.active()) {
    span.set_arg("bytes", data.size_bytes());
    span.set_arg("wire_bytes", stats_.wire_sent_bytes +
                                   stats_.wire_recv_bytes - wire_before);
  }
}

void SocketComm::ring_circulation_allreduce(std::span<float> data, ReduceOp op) {
  // Every rank's contribution circulates the ring (p-1 full-duplex steps),
  // then each rank folds all p blocks locally in rank order — exactly
  // ThreadComm's reduction, so the result is bitwise identical to the
  // thread backend regardless of world size.
  const size_t n = data.size();
  const int p = size_;
  const int next = (rank_ + 1) % p;
  const int prev = (rank_ - 1 + p) % p;

  circ_blocks_.resize(static_cast<size_t>(p) * n);
  std::copy(data.begin(), data.end(),
            circ_blocks_.begin() + static_cast<size_t>(rank_) * n);
  for (int s = 0; s < p - 1; ++s) {
    const auto send_block = static_cast<size_t>((rank_ - s + p) % p);
    const auto recv_block = static_cast<size_t>((rank_ - s - 1 + p) % p);
    // Every rank's block is the same n floats, so the incoming block lands
    // directly in its circulation slot — no intermediate receive buffer,
    // no memcpy (a size-mismatched peer fails inside the exchange).
    exchange_into(next,
                  std::span<const float>(circ_blocks_.data() + send_block * n, n),
                  prev,
                  std::span<float>(circ_blocks_.data() + recv_block * n, n),
                  FrameType::kData);
  }

  // Rank-order fold — the shared helpers ThreadComm's allreduce uses, so
  // cross-backend bitwise parity is structural.
  std::copy(circ_blocks_.begin(), circ_blocks_.begin() + static_cast<ptrdiff_t>(n),
            data.begin());
  for (int r = 1; r < p; ++r) {
    fold_contribution(
        data,
        std::span<const float>(circ_blocks_.data() + static_cast<size_t>(r) * n,
                               n),
        op);
  }
  finish_reduce(data, op, p);
}

void SocketComm::pipelined_ring_allreduce(std::span<float> data, ReduceOp op) {
  // Reduce phase: chunks stream down the chain 0 → 1 → ... → p-1, each
  // rank folding its contribution onto the incoming partial — the fold
  // stays anchored at rank 0, preserving ThreadComm's rank order (a
  // classic ring reduce-scatter would rotate it per chunk and break
  // cross-backend bitwise parity). Allgather phase: the reduced chunks
  // stream back around the ring p-1 → 0 → ... → p-2. Both phases are
  // acyclic chains, so plain blocking frame I/O cannot deadlock however
  // large the payload.
  const size_t n = data.size();
  const int p = size_;
  const int chunks = options_.cost.pipeline_chunk_count(data.size_bytes(), p);
  const std::vector<size_t> offsets = chunk_offsets(n, chunks);
  auto chunk = [&](std::span<float> buf, int k) {
    return buf.subspan(offsets[static_cast<size_t>(k)],
                       offsets[static_cast<size_t>(k) + 1] -
                           offsets[static_cast<size_t>(k)]);
  };

  if (rank_ == 0) {
    for (int k = 0; k < chunks; ++k) send_to(1, FrameType::kData, chunk(data, k));
  } else {
    for (int k = 0; k < chunks; ++k) {
      const std::span<float> own = chunk(data, k);
      chain_scratch_.resize(own.size());
      const std::span<float> partial(chain_scratch_.data(), own.size());
      recv_from(rank_ - 1, FrameType::kData, partial);
      // The incoming partial already folds ranks 0..rank-1 in order;
      // appending this rank keeps the shared fold's rank-order semantics.
      fold_contribution(partial, own, op);
      if (rank_ < p - 1) {
        send_to(rank_ + 1, FrameType::kData, partial);
      } else {
        finish_reduce(partial, op, p);
        std::copy(partial.begin(), partial.end(), own.begin());
      }
    }
  }

  // Distribution chain p-1 → 0 → 1 → ... → p-2; rank p-2 is the sink.
  if (rank_ == p - 1) {
    for (int k = 0; k < chunks; ++k) send_to(0, FrameType::kData, chunk(data, k));
  } else {
    const int source = rank_ == 0 ? p - 1 : rank_ - 1;
    for (int k = 0; k < chunks; ++k) {
      recv_from(source, FrameType::kData, chunk(data, k));
      if (rank_ <= p - 3) send_to(rank_ + 1, FrameType::kData, chunk(data, k));
    }
  }
}

std::vector<float> SocketComm::allgather(std::span<const float> send) {
  std::vector<float> out;
  allgather_into(send, out);
  return out;
}

void SocketComm::allgather_into(std::span<const float> send,
                                std::vector<float>& recv) {
  stats_.allgather_calls++;
  stats_.allgather_bytes += send.size_bytes();
  if (size_ == 1) {
    recv.assign(send.begin(), send.end());
    return;
  }
  DKFAC_TRACE_SCOPE_NAMED(span, "socket.allgather.ring");
  const uint64_t wire_before = stats_.wire_sent_bytes + stats_.wire_recv_bytes;

  // Ring circulation with variable block sizes — the frame length prefix
  // carries each block's size, so no separate size exchange is needed, but
  // it also means receive sizes are unknown up front: this is the one ring
  // that keeps a variable-length landing buffer (recv_buf_) instead of
  // exchange_into. gather_blocks_ and recv_buf_ are members so
  // steady-state iterations (same per-rank sizes every exchange) reuse
  // their capacities — no allocation once warm.
  const int p = size_;
  const int next = (rank_ + 1) % p;
  const int prev = (rank_ - 1 + p) % p;
  gather_blocks_.resize(static_cast<size_t>(p));
  gather_blocks_[static_cast<size_t>(rank_)].assign(send.begin(), send.end());
  for (int s = 0; s < p - 1; ++s) {
    const auto send_block = static_cast<size_t>((rank_ - s + p) % p);
    const auto recv_block = static_cast<size_t>((rank_ - s - 1 + p) % p);
    recv_buf_.clear();
    exchange(next, gather_blocks_[send_block], prev, recv_buf_);
    DKFAC_CHECK(recv_buf_.size() % sizeof(float) == 0)
        << "allgather block not float-aligned";
    gather_blocks_[recv_block].resize(recv_buf_.size() / sizeof(float));
    std::memcpy(gather_blocks_[recv_block].data(), recv_buf_.data(),
                recv_buf_.size());
  }

  size_t total = 0;
  for (const auto& b : gather_blocks_) total += b.size();
  // resize + positional copy so a warm caller-owned buffer is refilled
  // without touching the heap.
  recv.resize(total);
  size_t offset = 0;
  for (const auto& b : gather_blocks_) {
    std::copy(b.begin(), b.end(), recv.begin() + static_cast<ptrdiff_t>(offset));
    offset += b.size();
  }
  if (span.active()) {
    span.set_arg("bytes", send.size_bytes());
    span.set_arg("wire_bytes", stats_.wire_sent_bytes +
                                   stats_.wire_recv_bytes - wire_before);
  }
}

void SocketComm::broadcast(std::span<float> data, int root) {
  DKFAC_CHECK(root >= 0 && root < size_)
      << "broadcast root " << root << " out of range for size " << size_;
  stats_.broadcast_calls++;
  // Cross-backend payload convention: the root injected the payload, the
  // other ranks contributed nothing (see CommStats).
  if (rank_ == root) stats_.broadcast_bytes += data.size_bytes();
  if (size_ == 1) return;
  DKFAC_TRACE_SCOPE_NAMED(span, "socket.broadcast.tree");
  const uint64_t wire_before = stats_.wire_sent_bytes + stats_.wire_recv_bytes;

  // Binomial tree over virtual ranks (vrank 0 = root).
  const int p = size_;
  const int vrank = (rank_ - root + p) % p;
  unsigned mask = 1;
  while (mask < static_cast<unsigned>(p)) {
    if (vrank & static_cast<int>(mask)) {
      const int src = (vrank - static_cast<int>(mask) + root) % p;
      recv_from(src, FrameType::kData, data);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + static_cast<int>(mask) < p) {
      const int dst = (vrank + static_cast<int>(mask) + root) % p;
      send_to(dst, FrameType::kData, data);
    }
    mask >>= 1;
  }
  if (span.active()) {
    span.set_arg("bytes", data.size_bytes());
    span.set_arg("wire_bytes", stats_.wire_sent_bytes +
                                   stats_.wire_recv_bytes - wire_before);
  }
}

void SocketComm::barrier() {
  if (size_ == 1) return;
  DKFAC_TRACE_SCOPE("socket.barrier");
  // Dissemination barrier: ⌈log₂ p⌉ full-duplex rounds; after round k every
  // rank has transitively heard from all ranks within distance 2^(k+1).
  const int p = size_;
  for (int d = 1; d < p; d <<= 1) {
    const int to = (rank_ + d) % p;
    const int from = (rank_ - d + p) % p;
    const float token = static_cast<float>(d);
    float got = 0.0f;
    exchange_into(to, std::span<const float>(&token, 1), from,
                  std::span<float>(&got, 1), FrameType::kBarrier);
    DKFAC_CHECK(got == token)
        << "barrier round mismatch: expected " << token << ", got " << got
        << " (collective sequence desync?)";
  }
}

}  // namespace dkfac::comm::net
