// Multi-process TCP collective backend.
//
// SocketComm implements the full Communicator surface (allreduce /
// allgather / broadcast / barrier) between genuinely separate processes
// over localhost TCP — the backend that turns this reproduction from a
// simulation of distribution (N ranks as N threads) into an actually
// distributed system. Construction rendezvouses through a
// net::RendezvousServer (rank assignment + peer table, see
// net/rendezvous.hpp), then builds a full peer mesh: rank r dials every
// lower rank and accepts from every higher one, each connection opening
// with a versioned kHello so a mismatched build is rejected up front.
//
// Algorithms — all chosen per message size via the backend's CostModel,
// and all reducing in EXACTLY ThreadComm's order (a left fold over ranks
// 0..p-1), so results are bitwise identical across backends and the
// algorithm switch can never change numerics:
//
//   allreduce, small payloads   ring circulation: p-1 full-duplex ring
//                               steps gather every rank's contribution,
//                               then each rank folds locally in rank
//                               order — ThreadComm's reduction verbatim,
//                               at one latency per step.
//   allreduce, large payloads   pipelined ring: chunks stream down the
//                               ring 0 → 1 → ... → p-1, each rank adding
//                               its contribution (reduce phase: the rank-
//                               order fold), then the reduced chunks
//                               stream back around p-1 → 0 → ... → p-2
//                               (allgather phase). A classic ring
//                               reduce-scatter folds each chunk in a
//                               ROTATED rank order — cheap, but not
//                               bitwise-reproducible against the thread
//                               backend — so the reduce phase keeps the
//                               fold anchored at rank 0 and pipelines
//                               chunks to recover the bandwidth. Both
//                               phases are acyclic chains, hence
//                               deadlock-free under blocking I/O at any
//                               payload size.
//   allgather                   ring circulation (variable block sizes —
//                               the frame length prefix carries each
//                               block's size), concatenated in rank order.
//   broadcast                   binomial tree rooted at `root`.
//   barrier                     dissemination (⌈log₂ p⌉ rounds).
//
// Cyclic communication steps (circulation, dissemination) use the
// full-duplex exchange_frames primitive so they cannot deadlock when a
// payload outgrows the kernel socket buffers; chain phases use plain
// framed sends. Every operation runs under Options::timeout_s — a dead
// peer or a desynchronised collective surfaces as a dkfac::Error, never
// a hang.
//
// CommStats: the logical counters follow the cross-backend payload
// convention (see communicator.hpp); wire_sent_bytes / wire_recv_bytes
// additionally account every byte this rank really put on / took off the
// wire, frame headers included — so packing savings (SymmetricPacker) and
// fusion show up in real transport bytes, not just in modelled ones.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/cost_model.hpp"
#include "comm/net/wire.hpp"

namespace dkfac::comm::net {

struct SocketOptions {
  /// Rendezvous server address (the launcher's, normally loopback).
  std::string host = "127.0.0.1";
  uint16_t rendezvous_port = 0;
  int world_size = 1;
  /// Rank to request from the rendezvous (-1 → server assigns).
  int requested_rank = -1;
  /// Elastic membership: the rendezvous server (not this worker) decides
  /// the world size of the group being formed — `world_size` is ignored
  /// and `requested_rank` becomes a hint. The welcome's generation counter
  /// is embedded in every peer hello so a connection from a previous
  /// formation can never leak into the new mesh.
  bool elastic = false;
  /// Deadline for every blocking network operation (rendezvous, peer
  /// dial-up, and each collective's sends/receives).
  double timeout_s = 60.0;
  /// Separate deadline for the rendezvous wait alone (0 → timeout_s).
  /// Elastic workers set it LONGER than the collective deadline: a
  /// re-registration must outwait every survivor's in-flight collective
  /// timing out before the shrunk group can assemble.
  double rendezvous_timeout_s = 0.0;
  /// Fabric model driving algorithm selection and (via cost_model())
  /// the fusion/eager tuning of everything layered above.
  CostModel cost = CostModel::loopback_tcp();
};

class SocketComm final : public Communicator {
 public:
  using Communicator::allreduce;
  using Communicator::broadcast;

  /// Rendezvouses and builds the peer mesh; returns only once every
  /// connection is up and verified (the constructor ends with a barrier).
  explicit SocketComm(const SocketOptions& options);

  int rank() const override { return rank_; }
  int size() const override { return size_; }
  /// Rendezvous generation this mesh was formed in (0 for non-elastic).
  int generation() const { return generation_; }
  const CostModel& cost_model() const override { return options_.cost; }

  void allreduce(std::span<float> data, ReduceOp op) override;
  std::vector<float> allgather(std::span<const float> send) override;
  void allgather_into(std::span<const float> send,
                      std::vector<float>& recv) override;
  void broadcast(std::span<float> data, int root) override;
  void barrier() override;

  enum class AllreduceAlgo { kRingCirculation, kPipelinedRing };
  /// The algorithm allreduce() will pick for a payload of `bytes` — a pure
  /// function of (bytes, world size, cost model), identical on all ranks.
  AllreduceAlgo allreduce_algorithm(uint64_t bytes) const;

 private:
  Socket& peer(int r);
  /// Framed send/recv to a specific rank, maintaining per-peer sequence
  /// counters and the wire-byte accounting. Any transport failure on a
  /// peer link rethrows as PeerFailure naming that rank — the typed signal
  /// elastic callers use to trigger re-formation.
  void send_to(int r, FrameType type, std::span<const float> payload);
  void recv_from(int r, FrameType type, std::span<float> payload);
  /// Full-duplex ring step (see exchange_frames): send to `to` while
  /// receiving a variable-length block from `from` into `in_out`.
  void exchange(int to, std::span<const float> out, int from,
                std::vector<uint8_t>& in_out);
  /// Full-duplex ring step with a known receive size: the incoming block
  /// lands DIRECTLY in `in` (see exchange_frames_into) — the zero-copy
  /// step the fixed-size rings (allreduce circulation, barrier) use.
  void exchange_into(int to, std::span<const float> out, int from,
                     std::span<float> in, FrameType type);

  void ring_circulation_allreduce(std::span<float> data, ReduceOp op);
  void pipelined_ring_allreduce(std::span<float> data, ReduceOp op);

  SocketOptions options_;
  int rank_ = 0;
  int size_ = 1;
  int generation_ = 0;
  std::vector<Socket> peers_;        // by rank; the self slot stays invalid
  std::vector<uint32_t> send_seq_;   // per-peer frames sent
  std::vector<uint32_t> recv_seq_;   // per-peer frames received
  // Scratch reused across collectives — the gradient/factor exchange hits
  // these paths every iteration, so steady state must not allocate (the
  // buffers converge to the largest payload seen and stay there).
  std::vector<float> circ_blocks_;   // p·n circulation blocks (small path)
  std::vector<float> chain_scratch_; // one chunk's running partial
  std::vector<uint8_t> recv_buf_;    // variable-length exchange() landing area
  std::vector<std::vector<float>> gather_blocks_;  // allgather, by rank
};

}  // namespace dkfac::comm::net
