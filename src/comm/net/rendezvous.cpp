#include "comm/net/rendezvous.hpp"

#include <algorithm>

#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {

namespace {

// Hello payload: u32 world_size | u32 requested_rank (as int32) | u16 port.
constexpr size_t kHelloBytes = 10;

std::vector<uint8_t> encode_hello(int world_size, int requested_rank,
                                  uint16_t data_port) {
  std::vector<uint8_t> payload;
  payload.reserve(kHelloBytes);
  put_u32(payload, static_cast<uint32_t>(world_size));
  put_u32(payload, static_cast<uint32_t>(requested_rank));
  put_u16(payload, data_port);
  return payload;
}

}  // namespace

void RendezvousServer::serve(int world_size, double timeout_s) {
  DKFAC_CHECK(world_size >= 1) << "rendezvous needs at least one worker";
  const auto start = Clock::now();
  auto remaining = [&] {
    const double left = timeout_s - seconds_since(start);
    if (left <= 0.0) {
      throw Error("rendezvous: timed out waiting for workers");
    }
    return left;
  };

  struct Registration {
    Socket sock;
    int requested_rank = -1;
    uint16_t data_port = 0;
    int rank = -1;
  };
  std::vector<Registration> workers;
  workers.reserve(static_cast<size_t>(world_size));

  while (static_cast<int>(workers.size()) < world_size) {
    Socket sock = listener_.accept(remaining());
    std::vector<uint8_t> hello;
    recv_frame(sock, FrameType::kHello, /*seq=*/0, hello, remaining());
    DKFAC_CHECK(hello.size() == kHelloBytes)
        << "rendezvous: malformed hello (" << hello.size() << " bytes)";
    const int worker_world = static_cast<int>(get_u32(hello, 0));
    DKFAC_CHECK(worker_world == world_size)
        << "rendezvous: worker expects world size " << worker_world
        << ", server is assembling " << world_size;
    Registration reg;
    reg.sock = std::move(sock);
    reg.requested_rank = static_cast<int32_t>(get_u32(hello, 4));
    reg.data_port = get_u16(hello, 8);
    workers.push_back(std::move(reg));
  }

  // Rank assignment: honour distinct valid requests first, then fill the
  // free slots in registration order.
  std::vector<bool> taken(static_cast<size_t>(world_size), false);
  for (Registration& reg : workers) {
    const int want = reg.requested_rank;
    if (want >= 0 && want < world_size && !taken[static_cast<size_t>(want)]) {
      reg.rank = want;
      taken[static_cast<size_t>(want)] = true;
    }
  }
  int next_free = 0;
  for (Registration& reg : workers) {
    if (reg.rank >= 0) continue;
    while (taken[static_cast<size_t>(next_free)]) ++next_free;
    reg.rank = next_free;
    taken[static_cast<size_t>(next_free)] = true;
  }

  std::vector<uint16_t> ports(static_cast<size_t>(world_size), 0);
  for (const Registration& reg : workers) {
    ports[static_cast<size_t>(reg.rank)] = reg.data_port;
  }

  // Welcome payload: u32 rank | u32 world_size | u16 port per rank.
  for (Registration& reg : workers) {
    std::vector<uint8_t> payload;
    payload.reserve(8 + 2 * static_cast<size_t>(world_size));
    put_u32(payload, static_cast<uint32_t>(reg.rank));
    put_u32(payload, static_cast<uint32_t>(world_size));
    for (uint16_t p : ports) put_u16(payload, p);
    send_frame(reg.sock, FrameType::kWelcome, /*seq=*/0,
               std::span<const uint8_t>(payload), remaining());
  }
}

RendezvousInfo rendezvous_connect(const std::string& host, uint16_t port,
                                  int world_size, int requested_rank,
                                  uint16_t data_port, double timeout_s) {
  DKFAC_CHECK(world_size >= 1) << "world size must be positive";
  const auto start = Clock::now();
  auto remaining = [&] {
    const double left = timeout_s - seconds_since(start);
    if (left <= 0.0) throw Error("rendezvous: timed out waiting for welcome");
    return left;
  };

  Socket sock = Socket::connect_to(host, port, remaining());
  const std::vector<uint8_t> hello =
      encode_hello(world_size, requested_rank, data_port);
  send_frame(sock, FrameType::kHello, /*seq=*/0,
             std::span<const uint8_t>(hello), remaining());

  std::vector<uint8_t> welcome;
  recv_frame(sock, FrameType::kWelcome, /*seq=*/0, welcome, remaining());
  DKFAC_CHECK(welcome.size() == 8 + 2 * static_cast<size_t>(world_size))
      << "rendezvous: malformed welcome (" << welcome.size() << " bytes)";

  RendezvousInfo info;
  info.rank = static_cast<int32_t>(get_u32(welcome, 0));
  info.world_size = static_cast<int>(get_u32(welcome, 4));
  DKFAC_CHECK(info.world_size == world_size)
      << "rendezvous: server assembled world size " << info.world_size
      << ", worker expected " << world_size;
  DKFAC_CHECK(info.rank >= 0 && info.rank < world_size)
      << "rendezvous: server assigned out-of-range rank " << info.rank;
  info.peer_ports.resize(static_cast<size_t>(world_size));
  for (int r = 0; r < world_size; ++r) {
    info.peer_ports[static_cast<size_t>(r)] =
        get_u16(welcome, 8 + 2 * static_cast<size_t>(r));
  }
  return info;
}

}  // namespace dkfac::comm::net
