#include "comm/net/rendezvous.hpp"

#include <errno.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "common/logging.hpp"

namespace dkfac::comm::net {

namespace {

// Hello payload: u32 world_size | u32 requested_rank (as int32) | u16 port.
constexpr size_t kHelloBytes = 10;
constexpr size_t kHelloFrameBytes = kFrameHeaderBytes + kHelloBytes;

// How long a connected client gets to deliver its complete hello. A client
// that connects and stalls is dropped at this deadline instead of starving
// every later registration (the old serial accept loop's failure mode).
constexpr double kHelloGraceSeconds = 2.0;

std::vector<uint8_t> encode_hello(int world_size, int requested_rank,
                                  uint16_t data_port) {
  std::vector<uint8_t> payload;
  payload.reserve(kHelloBytes);
  put_u32(payload, static_cast<uint32_t>(world_size));
  put_u32(payload, static_cast<uint32_t>(requested_rank));
  put_u16(payload, data_port);
  return payload;
}

}  // namespace

void RendezvousServer::collect(const std::function<int()>& target,
                               int world_for_hello, double timeout_s) {
  const auto start = Clock::now();

  auto complete_count = [&] {
    int n = 0;
    for (const Registration& reg : parked_) n += reg.complete ? 1 : 0;
    return n;
  };

  // Pumps one half-registered connection: reads whatever hello bytes are
  // ready, parses once the frame is whole. Returns false when the client
  // must be dropped (EOF, malformed frame, bad checksum, stray world).
  // A hello naming a DIFFERENT fixed world size throws — two launchers
  // misconfigured against each other is a config error, not a flaky
  // client, and the fixed-mode tests pin that down.
  auto pump = [&](Registration& reg) -> bool {
    while (reg.buf.size() < kHelloFrameBytes) {
      uint8_t tmp[kHelloFrameBytes];
      const size_t want = kHelloFrameBytes - reg.buf.size();
      const ssize_t n = ::recv(reg.sock.fd(), tmp, want, 0);
      if (n == 0) {
        DKFAC_LOG_WARN << "rendezvous: client closed before finishing hello";
        return false;
      }
      if (n < 0) {
        if (transient_io_errno(errno)) {
          return true;  // not complete yet — keep waiting
        }
        DKFAC_LOG_WARN << "rendezvous: client recv error, dropping";
        return false;
      }
      reg.buf.insert(reg.buf.end(), tmp, tmp + n);
      if (reg.buf.size() >= kFrameHeaderBytes && !reg.complete) {
        // Validate the header as soon as it is whole so garbage is
        // rejected before we wait for a payload that will never come.
        try {
          const FrameHeader header = FrameHeader::decode(reg.buf.data());
          header.validate("rendezvous hello");
          if (header.type != static_cast<uint16_t>(FrameType::kHello) ||
              header.seq != 0 || header.length != kHelloBytes) {
            DKFAC_LOG_WARN << "rendezvous: malformed hello frame, dropping";
            return false;
          }
        } catch (const Error& e) {
          DKFAC_LOG_WARN << "rendezvous: bad hello header (" << e.what()
                         << "), dropping";
          return false;
        }
      }
    }
    const std::span<const uint8_t> payload(reg.buf.data() + kFrameHeaderBytes,
                                           kHelloBytes);
    const FrameHeader header = FrameHeader::decode(reg.buf.data());
    if (crc32(payload) != header.checksum) {
      DKFAC_LOG_WARN << "rendezvous: hello checksum mismatch, dropping";
      return false;
    }
    const int worker_world = static_cast<int>(get_u32(payload, 0));
    if (world_for_hello == kElasticWorld) {
      if (worker_world != kElasticWorld) {
        DKFAC_LOG_WARN << "rendezvous: fixed-world hello (" << worker_world
                       << ") sent to elastic server, dropping";
        return false;
      }
    } else if (worker_world != world_for_hello) {
      reg.sock.close();  // fail the worker fast (EOF) instead of timing out
      throw Error("rendezvous: worker expects world size " +
                  std::to_string(worker_world) + ", server is assembling " +
                  std::to_string(world_for_hello));
    }
    reg.requested_rank = static_cast<int32_t>(get_u32(payload, 4));
    reg.data_port = get_u16(payload, 8);
    reg.complete = true;
    return true;
  };

  while (true) {
    const int tgt = target();
    if (tgt >= 1 && complete_count() >= tgt) return;

    const double elapsed = seconds_since(start);
    if (elapsed >= timeout_s) {
      throw Error("rendezvous: timed out waiting for workers (have " +
                  std::to_string(complete_count()) + " of " +
                  std::to_string(tgt) + ")");
    }

    // Drop connections that stalled past their hello grace.
    const auto now = Clock::now();
    parked_.erase(
        std::remove_if(parked_.begin(), parked_.end(),
                       [&](const Registration& reg) {
                         if (reg.complete || now < reg.hello_deadline) {
                           return false;
                         }
                         DKFAC_LOG_WARN
                             << "rendezvous: client stalled mid-hello, "
                                "dropping";
                         return true;
                       }),
        parked_.end());

    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const Registration& reg : parked_) {
      // Complete registrations are watched too: POLLIN on them means EOF
      // (a parked worker died while the group assembled) or protocol
      // noise — either way the registration is stale.
      fds.push_back({reg.sock.fd(), POLLIN, 0});
    }

    const double left = std::min(timeout_s - elapsed, 0.1);
    const int timeout_ms = std::max(1, static_cast<int>(left * 1000.0));
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw Error("rendezvous: poll failed");
    }
    if (ready == 0) continue;

    // Service existing connections first (indices shift on erase, so walk
    // a copy of the revents keyed by fd order captured above).
    std::vector<size_t> drop;
    for (size_t i = 0; i < parked_.size(); ++i) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Registration& reg = parked_[i];
      if (!reg.complete) {
        if (!pump(reg)) drop.push_back(i);
        continue;
      }
      uint8_t probe = 0;
      const ssize_t n = ::recv(reg.sock.fd(), &probe, 1, 0);
      if (n < 0 && transient_io_errno(errno)) continue;
      DKFAC_LOG_WARN << "rendezvous: parked worker "
                     << (n == 0 ? "died" : "sent unexpected data")
                     << ", dropping its registration";
      drop.push_back(i);
    }
    for (auto it = drop.rbegin(); it != drop.rend(); ++it) {
      parked_.erase(parked_.begin() + static_cast<ptrdiff_t>(*it));
    }

    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener_.fd(), nullptr, nullptr);
      if (fd >= 0) {
        Registration reg;
        reg.sock = Socket(fd);
        reg.hello_deadline =
            Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(
                                   kHelloGraceSeconds));
        parked_.push_back(std::move(reg));
      }
    }
  }
}

void RendezvousServer::form_group(int world, int generation,
                                  double timeout_s) {
  // The chosen group: the first `world` complete registrations, in
  // registration order (matching the old serial server's semantics).
  std::vector<Registration> group;
  group.reserve(static_cast<size_t>(world));
  parked_.erase(std::remove_if(parked_.begin(), parked_.end(),
                               [&](Registration& reg) {
                                 if (!reg.complete ||
                                     static_cast<int>(group.size()) >= world) {
                                   return false;
                                 }
                                 group.push_back(std::move(reg));
                                 return true;
                               }),
                parked_.end());
  DKFAC_CHECK(static_cast<int>(group.size()) == world)
      << "rendezvous: lost registrations before forming the group";

  // Rank assignment: honour distinct valid requests first, then fill the
  // free slots in registration order.
  std::vector<bool> taken(static_cast<size_t>(world), false);
  for (Registration& reg : group) {
    const int want = reg.requested_rank;
    if (want >= 0 && want < world && !taken[static_cast<size_t>(want)]) {
      reg.rank = want;
      taken[static_cast<size_t>(want)] = true;
    }
  }
  int next_free = 0;
  for (Registration& reg : group) {
    if (reg.rank >= 0) continue;
    while (taken[static_cast<size_t>(next_free)]) ++next_free;
    reg.rank = next_free;
    taken[static_cast<size_t>(next_free)] = true;
  }

  std::vector<uint16_t> ports(static_cast<size_t>(world), 0);
  for (const Registration& reg : group) {
    ports[static_cast<size_t>(reg.rank)] = reg.data_port;
  }

  // Welcome payload: u32 rank | u32 world | u32 generation | u16 ports.
  for (Registration& reg : group) {
    std::vector<uint8_t> payload;
    payload.reserve(12 + 2 * static_cast<size_t>(world));
    put_u32(payload, static_cast<uint32_t>(reg.rank));
    put_u32(payload, static_cast<uint32_t>(world));
    put_u32(payload, static_cast<uint32_t>(generation));
    for (uint16_t p : ports) put_u16(payload, p);
    send_frame(reg.sock, FrameType::kWelcome, /*seq=*/0,
               std::span<const uint8_t>(payload), timeout_s);
  }
}

void RendezvousServer::serve(int world_size, double timeout_s) {
  DKFAC_CHECK(world_size >= 1) << "rendezvous needs at least one worker";
  const auto start = Clock::now();
  collect([world_size] { return world_size; }, world_size, timeout_s);
  const int generation = generation_++;
  form_group(world_size, generation,
             std::max(0.1, timeout_s - seconds_since(start)));
}

int RendezvousServer::serve_generation(const std::function<int()>& expected,
                                       int min_world, double timeout_s) {
  DKFAC_CHECK(min_world >= 1) << "rendezvous needs at least one worker";
  const auto start = Clock::now();
  auto target = [&] {
    const int e = expected();
    if (e < min_world) {
      throw Error("rendezvous: only " + std::to_string(e) +
                  " workers remain, need at least " +
                  std::to_string(min_world));
    }
    return e;
  };
  collect(target, kElasticWorld, timeout_s);
  int complete = 0;
  for (const Registration& reg : parked_) complete += reg.complete ? 1 : 0;
  const int world = std::min(target(), complete);
  if (world < min_world) {
    throw Error("rendezvous: only " + std::to_string(world) +
                " workers registered, need at least " +
                std::to_string(min_world));
  }
  const int generation = generation_++;
  form_group(world, generation,
             std::max(0.1, timeout_s - seconds_since(start)));
  return world;
}

RendezvousInfo rendezvous_connect(const std::string& host, uint16_t port,
                                  int world_size, int requested_rank,
                                  uint16_t data_port, double timeout_s) {
  DKFAC_CHECK(world_size >= 1 || world_size == kElasticWorld)
      << "world size must be positive (or kElasticWorld)";
  const auto start = Clock::now();
  auto remaining = [&] {
    const double left = timeout_s - seconds_since(start);
    if (left <= 0.0) throw Error("rendezvous: timed out waiting for welcome");
    return left;
  };

  Socket sock = Socket::connect_to(host, port, remaining());
  const std::vector<uint8_t> hello =
      encode_hello(world_size, requested_rank, data_port);
  send_frame(sock, FrameType::kHello, /*seq=*/0,
             std::span<const uint8_t>(hello), remaining());

  std::vector<uint8_t> welcome;
  recv_frame(sock, FrameType::kWelcome, /*seq=*/0, welcome, remaining());
  DKFAC_CHECK(welcome.size() >= 12)
      << "rendezvous: malformed welcome (" << welcome.size() << " bytes)";

  RendezvousInfo info;
  info.rank = static_cast<int32_t>(get_u32(welcome, 0));
  info.world_size = static_cast<int>(get_u32(welcome, 4));
  info.generation = static_cast<int>(get_u32(welcome, 8));
  DKFAC_CHECK(welcome.size() ==
              12 + 2 * static_cast<size_t>(info.world_size))
      << "rendezvous: malformed welcome (" << welcome.size() << " bytes for "
      << "world " << info.world_size << ")";
  if (world_size != kElasticWorld) {
    DKFAC_CHECK(info.world_size == world_size)
        << "rendezvous: server assembled world size " << info.world_size
        << ", worker expected " << world_size;
  }
  DKFAC_CHECK(info.rank >= 0 && info.rank < info.world_size)
      << "rendezvous: server assigned out-of-range rank " << info.rank;
  info.peer_ports.resize(static_cast<size_t>(info.world_size));
  for (int r = 0; r < info.world_size; ++r) {
    info.peer_ports[static_cast<size_t>(r)] =
        get_u16(welcome, 12 + 2 * static_cast<size_t>(r));
  }
  return info;
}

}  // namespace dkfac::comm::net
