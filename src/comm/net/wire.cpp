#include "comm/net/wire.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <thread>

#include "comm/net/faultnet.hpp"
#include "common/clock.hpp"

namespace dkfac::comm::net {

namespace {

// Slicing-by-8 CRC-32 tables: table[k][b] advances the register by k+1
// bytes at once, so the hot loop folds 8 payload bytes per iteration —
// every collective payload is checksummed at every hop, so a bytewise
// CRC would sit on the critical path next to the loopback copy itself.
constexpr std::array<std::array<uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kCrcTables = make_crc_tables();

[[noreturn]] void throw_errno(const char* what) {
  throw Error(std::string(what) + ": " + std::strerror(errno));
}

/// Remaining milliseconds before `deadline`, clamped to [0, ...]; throws
/// when already past it so every poll loop fails instead of spinning.
int remaining_ms(Clock::time_point deadline, const char* what) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) {
    throw Error(std::string(what) + ": timed out");
  }
  // Round up so a sub-millisecond remainder still polls once with 1 ms.
  return static_cast<int>(left.count()) + 1;
}

void wait_ready(int fd, short events, Clock::time_point deadline,
                const char* what) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline, what));
    if (rc > 0) return;
    if (rc < 0 && errno != EINTR) throw_errno(what);
  }
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  DKFAC_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0)
      << "fcntl(O_NONBLOCK) failed: " << std::strerror(errno);
}

sockaddr_in local_addr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  DKFAC_CHECK(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1)
      << "invalid IPv4 address '" << host << "'";
  return addr;
}

}  // namespace

bool transient_connect_errno(int err) {
  // The listener is not up or not accepting yet (rendezvous startup), or
  // the kernel shed the attempt under churn — worth retrying until the
  // deadline. Anything else is a configuration/routing fault.
  return err == ECONNREFUSED || err == ECONNRESET || err == ECONNABORTED ||
         err == ETIMEDOUT || err == EAGAIN || err == EINTR;
}

bool transient_io_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EINTR;
}

double Backoff::next_s() {
  // splitmix64 step — cheap, stateless-quality jitter per draw.
  state_ += 0x9E3779B97F4A7C15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  z ^= z >> 31;
  const double unit = static_cast<double>(z >> 11) * 0x1.0p-53;  // [0, 1)
  const double delay = delay_s_ * (0.5 + 0.5 * unit);
  delay_s_ = std::min(delay_s_ * 2.0, cap_s_);
  return delay;
}

uint32_t crc32(std::span<const uint8_t> data) {
  const auto& t = kCrcTables;
  uint32_t c = 0xFFFFFFFFu;
  const uint8_t* p = data.data();
  size_t n = data.size();
  while (n >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, p, 4);      // little-endian layout, like the wire
    std::memcpy(&hi, p + 4, 4);
    lo ^= c;
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^ t[5][(lo >> 16) & 0xFFu] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
        t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    c = t[0][(c ^ *p++) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void FrameHeader::encode(uint8_t out[kFrameHeaderBytes]) const {
  auto put32 = [&out](size_t off, uint32_t v) {
    for (int i = 0; i < 4; ++i) out[off + i] = static_cast<uint8_t>(v >> (8 * i));
  };
  put32(0, magic);
  out[4] = static_cast<uint8_t>(version);
  out[5] = static_cast<uint8_t>(version >> 8);
  out[6] = static_cast<uint8_t>(type);
  out[7] = static_cast<uint8_t>(type >> 8);
  put32(8, seq);
  put32(12, length);
  put32(16, checksum);
}

FrameHeader FrameHeader::decode(const uint8_t in[kFrameHeaderBytes]) {
  auto get32 = [&in](size_t off) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(in[off + i]) << (8 * i);
    return v;
  };
  FrameHeader h;
  h.magic = get32(0);
  h.version = static_cast<uint16_t>(in[4] | (in[5] << 8));
  h.type = static_cast<uint16_t>(in[6] | (in[7] << 8));
  h.seq = get32(8);
  h.length = get32(12);
  h.checksum = get32(16);
  return h;
}

void FrameHeader::validate(const char* context) const {
  DKFAC_CHECK(magic == kWireMagic)
      << context << ": bad frame magic 0x" << std::hex << magic
      << " (not a dkfac peer?)";
  DKFAC_CHECK(version == kWireVersion)
      << context << ": wire version mismatch — peer speaks v" << version
      << ", this build speaks v" << kWireVersion;
}

// ---- Socket ---------------------------------------------------------------

Socket::Socket(int fd) : fd_(fd) {
  DKFAC_CHECK(fd_ >= 0) << "Socket given invalid fd";
  set_nonblocking(fd_);
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nodelay() {
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Socket Socket::connect_to(const std::string& host, uint16_t port,
                          double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  const sockaddr_in addr = local_addr(host, port);
  // Seeded-jittered exponential backoff between transient failures:
  // restarting ranks that all dial the same listener de-synchronise their
  // retries instead of hammering it in lockstep, and the seed (port ⊕ pid)
  // keeps each process's retry schedule reproducible.
  Backoff backoff(static_cast<uint64_t>(port) * 0x9E3779B9ull ^
                  static_cast<uint64_t>(::getpid()));
  for (;;) {
    // faultnet refused-connect injection replaces the real attempt and
    // rides the same transient retry path a genuine ECONNREFUSED takes.
    if (!(faultnet::active() && faultnet::on_connect_attempt())) {
      const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) throw_errno("socket()");
      Socket sock(fd);  // non-blocking from here on
      const int rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                               sizeof(addr));
      int err = rc == 0 ? 0 : errno;
      if (err == EINPROGRESS) {
        wait_ready(fd, POLLOUT, deadline, "connect");
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
      }
      if (err == 0) {
        sock.set_nodelay();
        return sock;
      }
      // The listener may not be accepting yet (rendezvous startup): retry
      // transient failures until the deadline.
      if (!transient_connect_errno(err)) {
        errno = err;
        throw_errno("connect");
      }
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      throw Error("connect to " + host + ":" + std::to_string(port) +
                  ": timed out (connection refused)");
    }
    const double left = std::chrono::duration<double>(deadline - now).count();
    std::this_thread::sleep_for(std::chrono::duration<double>(
        std::min(backoff.next_s(), std::max(left, 0.0))));
  }
}

void Socket::send_all(const void* data, size_t n, double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  const auto* p = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE → Error, not SIGPIPE.
    const ssize_t rc = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, deadline, "send");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw Error("send: peer closed the connection");
    }
    throw_errno("send");
  }
}

void Socket::send_vectored(const void* a, size_t an, const void* b, size_t bn,
                           double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  const auto* pa = static_cast<const uint8_t*>(a);
  const auto* pb = static_cast<const uint8_t*>(b);
  const size_t total = an + bn;
  size_t sent = 0;
  while (sent < total) {
    // Rebuild the iovec from the running offset each round: a partial send
    // may have ended anywhere, including mid-first-region.
    iovec iov[2];
    int iovcnt = 0;
    if (sent < an) {
      iov[iovcnt++] = {const_cast<uint8_t*>(pa + sent), an - sent};
      if (bn > 0) iov[iovcnt++] = {const_cast<uint8_t*>(pb), bn};
    } else {
      iov[iovcnt++] = {const_cast<uint8_t*>(pb + (sent - an)), total - sent};
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t rc = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      wait_ready(fd_, POLLOUT, deadline, "send");
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      throw Error("send: peer closed the connection");
    }
    throw_errno("send");
  }
}

void Socket::recv_all(void* data, size_t n, double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  auto* p = static_cast<uint8_t*>(data);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) throw Error("recv: peer closed the connection");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(fd_, POLLIN, deadline, "recv");
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) throw Error("recv: peer closed the connection");
    throw_errno("recv");
  }
}

// ---- ListenSocket ---------------------------------------------------------

ListenSocket::ListenSocket() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket()");
  sock_ = Socket(fd);
  sockaddr_in addr = local_addr("127.0.0.1", 0);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw_errno("bind");
  }
  if (::listen(fd, 64) != 0) throw_errno("listen");
  socklen_t len = sizeof(addr);
  DKFAC_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
      << "getsockname failed: " << std::strerror(errno);
  port_ = ntohs(addr.sin_port);
}

Socket ListenSocket::accept(double timeout_s) {
  DKFAC_CHECK(sock_.valid()) << "accept on closed listener";
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket peer(fd);
      peer.set_nodelay();
      return peer;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      wait_ready(sock_.fd(), POLLIN, deadline, "accept");
      continue;
    }
    if (errno == EINTR) continue;
    throw_errno("accept");
  }
}

// ---- framed I/O -----------------------------------------------------------

size_t send_frame(Socket& sock, FrameType type, uint32_t seq,
                  std::span<const uint8_t> payload, double timeout_s) {
  FrameHeader header;
  header.type = static_cast<uint16_t>(type);
  header.seq = seq;
  header.length = static_cast<uint32_t>(payload.size());
  DKFAC_CHECK(payload.size() == header.length) << "frame payload too large";
  header.checksum = crc32(payload);
  uint8_t raw[kFrameHeaderBytes];
  header.encode(raw);
  if (faultnet::active()) {
    // The hook runs AFTER the checksum above, so an injected bitflip ships
    // under the original CRC and the receiver converts it to a typed error.
    thread_local std::vector<uint8_t> fault_scratch;
    const faultnet::SendFault fault =
        faultnet::on_send(sock.fd(), payload, fault_scratch);
    if (fault.truncate_after) {
      const size_t cap = *fault.truncate_after;
      const size_t head = std::min(cap, kFrameHeaderBytes);
      sock.send_all(raw, head, timeout_s);
      if (cap > head) {
        sock.send_all(fault.payload.data(), cap - head, timeout_s);
      }
      ::shutdown(sock.fd(), SHUT_RDWR);
      throw Error("send: faultnet injected short write (" +
                  std::to_string(cap) + " of " +
                  std::to_string(kFrameHeaderBytes + payload.size()) +
                  " bytes)");
    }
    sock.send_vectored(raw, kFrameHeaderBytes, fault.payload.data(),
                       fault.payload.size(), timeout_s);
    return kFrameHeaderBytes + payload.size();
  }
  // Gather-send header + payload in one syscall: the payload is read
  // straight from the caller's (arena) memory, never assembled into a
  // contiguous frame buffer first.
  sock.send_vectored(raw, kFrameHeaderBytes, payload.data(), payload.size(),
                     timeout_s);
  return kFrameHeaderBytes + payload.size();
}

namespace {

FrameHeader recv_validated_header(Socket& sock, FrameType type, uint32_t seq,
                                  double timeout_s) {
  if (faultnet::active()) faultnet::on_recv(sock.fd());
  uint8_t raw[kFrameHeaderBytes];
  sock.recv_all(raw, kFrameHeaderBytes, timeout_s);
  const FrameHeader header = FrameHeader::decode(raw);
  header.validate("recv_frame");
  DKFAC_CHECK(header.length <= kMaxFramePayloadBytes)
      << "frame payload length " << header.length
      << " exceeds the protocol cap (corrupt stream?)";
  DKFAC_CHECK(header.type == static_cast<uint16_t>(type))
      << "frame type mismatch: expected " << static_cast<int>(type) << ", got "
      << header.type << " (collective sequence desync?)";
  DKFAC_CHECK(header.seq == seq)
      << "frame sequence mismatch: expected " << seq << ", got " << header.seq
      << " (collective sequence desync?)";
  return header;
}

void check_payload_crc(const FrameHeader& header,
                       std::span<const uint8_t> payload) {
  const uint32_t actual = crc32(payload);
  DKFAC_CHECK(actual == header.checksum)
      << "frame checksum mismatch: payload corrupted in transit (expected 0x"
      << std::hex << header.checksum << ", got 0x" << actual << ")";
}

}  // namespace

size_t recv_frame_into(Socket& sock, FrameType type, uint32_t seq,
                       std::span<uint8_t> payload, double timeout_s) {
  const FrameHeader header = recv_validated_header(sock, type, seq, timeout_s);
  DKFAC_CHECK(header.length == payload.size())
      << "frame length mismatch: peer sent " << header.length
      << " bytes, expected " << payload.size();
  if (!payload.empty()) sock.recv_all(payload.data(), payload.size(), timeout_s);
  check_payload_crc(header, payload);
  return kFrameHeaderBytes + payload.size();
}

size_t recv_frame(Socket& sock, FrameType type, uint32_t seq,
                  std::vector<uint8_t>& out, double timeout_s) {
  const FrameHeader header = recv_validated_header(sock, type, seq, timeout_s);
  const size_t base = out.size();
  out.resize(base + header.length);
  if (header.length > 0) sock.recv_all(out.data() + base, header.length, timeout_s);
  check_payload_crc(header,
                    std::span<const uint8_t>(out.data() + base, header.length));
  return kFrameHeaderBytes + header.length;
}

namespace {

/// Shared full-duplex engine for both exchange variants. `resolve_dst`
/// maps the validated incoming payload length to the destination pointer
/// — appending to a vector or checking a fixed span — and is called
/// exactly once, the moment the header has fully landed.
template <typename ResolveDst>
size_t exchange_frames_impl(Socket& to, FrameType send_type, uint32_t send_seq,
                            std::span<const uint8_t> send_payload, Socket& from,
                            FrameType recv_type, uint32_t recv_seq,
                            ResolveDst&& resolve_dst, double timeout_s) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(timeout_s));

  // Send state: header bytes then payload bytes, tracked by a single offset.
  FrameHeader send_header;
  send_header.type = static_cast<uint16_t>(send_type);
  send_header.seq = send_seq;
  send_header.length = static_cast<uint32_t>(send_payload.size());
  send_header.checksum = crc32(send_payload);
  uint8_t send_raw[kFrameHeaderBytes];
  send_header.encode(send_raw);
  std::vector<uint8_t> fault_scratch;
  if (faultnet::active()) {
    // After the checksum: an injected bitflip ships under the original CRC
    // (typed error at the receiver), a short write truncates the frame.
    const faultnet::SendFault fault =
        faultnet::on_send(to.fd(), send_payload, fault_scratch);
    if (fault.truncate_after) {
      const size_t cap = *fault.truncate_after;
      const size_t head = std::min(cap, kFrameHeaderBytes);
      to.send_all(send_raw, head, timeout_s);
      if (cap > head) to.send_all(fault.payload.data(), cap - head, timeout_s);
      ::shutdown(to.fd(), SHUT_RDWR);
      throw Error("exchange: faultnet injected short write");
    }
    send_payload = fault.payload;
    faultnet::on_recv(from.fd());
  }
  size_t send_pos = 0;
  const size_t send_total = kFrameHeaderBytes + send_payload.size();

  // Receive state: header first, then payload straight into resolve_dst's
  // destination — the payload is never staged in an intermediate buffer.
  uint8_t recv_raw[kFrameHeaderBytes];
  size_t recv_pos = 0;
  FrameHeader recv_header;
  bool have_header = false;
  uint8_t* recv_dst = nullptr;
  size_t recv_total = kFrameHeaderBytes;  // grows once the header is parsed

  auto pump_send = [&]() {
    while (send_pos < send_total) {
      // Gather header + payload into one sendmsg: the payload leaves from
      // the caller's memory without frame assembly. The iovec is rebuilt
      // from the running offset each round — a partial send may have
      // stopped anywhere, including mid-header.
      iovec iov[2];
      int iovcnt = 0;
      if (send_pos < kFrameHeaderBytes) {
        iov[iovcnt++] = {send_raw + send_pos, kFrameHeaderBytes - send_pos};
        if (!send_payload.empty()) {
          iov[iovcnt++] = {const_cast<uint8_t*>(send_payload.data()),
                           send_payload.size()};
        }
      } else {
        iov[iovcnt++] = {
            const_cast<uint8_t*>(send_payload.data()) +
                (send_pos - kFrameHeaderBytes),
            send_total - send_pos};
      }
      msghdr msg{};
      msg.msg_iov = iov;
      msg.msg_iovlen = static_cast<size_t>(iovcnt);
      const ssize_t rc = ::sendmsg(to.fd(), &msg, MSG_NOSIGNAL);
      if (rc > 0) {
        send_pos += static_cast<size_t>(rc);
        continue;
      }
      if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (rc < 0 && errno == EINTR) continue;
      if (rc < 0 && (errno == EPIPE || errno == ECONNRESET)) {
        throw Error("exchange: peer closed the connection");
      }
      throw_errno("exchange send");
    }
  };

  auto pump_recv = [&]() {
    for (;;) {
      uint8_t* dst;
      size_t left;
      if (recv_pos < kFrameHeaderBytes) {
        dst = recv_raw + recv_pos;
        left = kFrameHeaderBytes - recv_pos;
      } else {
        if (!have_header) {
          recv_header = FrameHeader::decode(recv_raw);
          recv_header.validate("exchange");
          DKFAC_CHECK(recv_header.length <= kMaxFramePayloadBytes)
              << "exchange frame payload length " << recv_header.length
              << " exceeds the protocol cap (corrupt stream?)";
          DKFAC_CHECK(recv_header.type == static_cast<uint16_t>(recv_type))
              << "exchange frame type mismatch: expected "
              << static_cast<int>(recv_type) << ", got " << recv_header.type;
          DKFAC_CHECK(recv_header.seq == recv_seq)
              << "exchange frame sequence mismatch: expected " << recv_seq
              << ", got " << recv_header.seq;
          recv_dst = resolve_dst(recv_header.length);
          recv_total = kFrameHeaderBytes + recv_header.length;
          have_header = true;
        }
        if (recv_pos >= recv_total) return;
        dst = recv_dst + (recv_pos - kFrameHeaderBytes);
        left = recv_total - recv_pos;
      }
      const ssize_t rc = ::recv(from.fd(), dst, left, 0);
      if (rc > 0) {
        recv_pos += static_cast<size_t>(rc);
        if (recv_pos == recv_total && have_header) return;
        continue;
      }
      if (rc == 0) throw Error("exchange: peer closed the connection");
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) throw Error("exchange: peer closed the connection");
      throw_errno("exchange recv");
    }
  };

  auto recv_done = [&] { return have_header && recv_pos >= recv_total; };
  // Parse the header as soon as it lands even if no more bytes follow yet
  // (zero-length frames complete without another recv()).
  while (send_pos < send_total || !recv_done()) {
    pump_send();
    pump_recv();
    if (send_pos >= send_total && recv_done()) break;
    pollfd pfds[2];
    nfds_t nfds = 0;
    if (send_pos < send_total) pfds[nfds++] = {to.fd(), POLLOUT, 0};
    if (!recv_done()) pfds[nfds++] = {from.fd(), POLLIN, 0};
    const int rc = ::poll(pfds, nfds, remaining_ms(deadline, "exchange"));
    if (rc < 0 && errno != EINTR) throw_errno("exchange poll");
  }

  check_payload_crc(recv_header,
                    std::span<const uint8_t>(recv_dst, recv_header.length));
  return send_total + recv_total;
}

}  // namespace

size_t exchange_frames(Socket& to, FrameType send_type, uint32_t send_seq,
                       std::span<const uint8_t> send_payload, Socket& from,
                       FrameType recv_type, uint32_t recv_seq,
                       std::vector<uint8_t>& in_out, double timeout_s) {
  const size_t recv_base = in_out.size();
  return exchange_frames_impl(
      to, send_type, send_seq, send_payload, from, recv_type, recv_seq,
      [&](uint32_t length) {
        in_out.resize(recv_base + length);
        return in_out.data() + recv_base;
      },
      timeout_s);
}

size_t exchange_frames_into(Socket& to, FrameType send_type, uint32_t send_seq,
                            std::span<const uint8_t> send_payload, Socket& from,
                            FrameType recv_type, uint32_t recv_seq,
                            std::span<uint8_t> recv_payload, double timeout_s) {
  return exchange_frames_impl(
      to, send_type, send_seq, send_payload, from, recv_type, recv_seq,
      [&](uint32_t length) {
        DKFAC_CHECK(length == recv_payload.size())
            << "exchange frame length mismatch: peer sent " << length
            << " bytes, expected " << recv_payload.size();
        return recv_payload.data();
      },
      timeout_s);
}

}  // namespace dkfac::comm::net
