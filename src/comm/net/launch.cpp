#include "comm/net/launch.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <optional>
#include <vector>

#include "comm/net/rendezvous.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {

namespace {

/// Runs one rank inside the freshly forked child. Never returns.
[[noreturn]] void child_main(int rank, int nranks, uint16_t rendezvous_port,
                             const LaunchOptions& options,
                             const std::function<int(Communicator&)>& fn) {
  int code = 1;
  try {
    SocketOptions sopts;
    sopts.rendezvous_port = rendezvous_port;
    sopts.world_size = nranks;
    sopts.requested_rank = rank;
    sopts.timeout_s = options.comm_timeout_s;
    sopts.cost = options.cost;
    SocketComm comm(sopts);
    code = fn(comm);
  } catch (const Error& e) {
    std::fprintf(stderr, "[rank %d] error: %s\n", rank, e.what());
    code = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] error: %s\n", rank, e.what());
    code = 1;
  }
  // Flush inherited stdio, then leave without running atexit handlers —
  // the parent's (gtest's, the CLI's) teardown belongs to the parent.
  std::fflush(stdout);
  std::fflush(stderr);
  _exit(code);
}

}  // namespace

int run_ranks(int nranks, const std::function<int(Communicator&)>& fn,
              const LaunchOptions& options) {
  DKFAC_CHECK(nranks >= 1) << "run_ranks needs at least one rank";

  RendezvousServer server;
  std::vector<pid_t> children;
  children.reserve(static_cast<size_t>(nranks));

  // Parent-side stdio must be flushed before forking, or every child
  // inherits (and later flushes) the same buffered bytes.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int i = 0; i < nranks; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t child : children) ::kill(child, SIGKILL);
      for (pid_t child : children) ::waitpid(child, nullptr, 0);
      throw Error("run_ranks: fork failed");
    }
    if (pid == 0) {
      server.close();  // only the launcher accepts rendezvous connections
      child_main(i, nranks, server.port(), options, fn);
    }
    children.push_back(pid);
  }

  try {
    server.serve(nranks, options.rendezvous_timeout_s);
  } catch (...) {
    // The group never assembled (a child died or wedged before
    // registering). Kill and reap everything so no rank outlives the
    // launcher, then let the rendezvous error explain what happened.
    for (pid_t child : children) ::kill(child, SIGKILL);
    for (pid_t child : children) ::waitpid(child, nullptr, 0);
    throw;
  }

  // Reap with WNOHANG polling instead of blocking in rank order: a crashed
  // rank 3 must not leave ranks 0–2 reap-blocked until their comm deadline
  // expires. The first ABNORMAL exit records the failure code and SIGTERMs
  // the survivors (SIGKILL after the grace period), so the launcher
  // returns promptly with the real failure, not a cascade of timeouts.
  int first_failure = 0;
  std::vector<pid_t> alive = children;
  bool terminated = false;
  bool killed = false;
  std::optional<Clock::time_point> term_at;
  while (!alive.empty()) {
    bool progressed = false;
    for (auto it = alive.begin(); it != alive.end();) {
      int status = 0;
      const pid_t r = ::waitpid(*it, &status, WNOHANG);
      if (r == 0) {
        ++it;
        continue;
      }
      progressed = true;
      int code = 1;  // waitpid error: the child is unaccountably gone
      if (r > 0) {
        code = 0;
        if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          code = 128 + WTERMSIG(status);
        }
      }
      if (code != 0 && first_failure == 0) first_failure = code;
      it = alive.erase(it);
    }
    if (alive.empty()) break;
    if (first_failure != 0) {
      if (!terminated) {
        for (pid_t child : alive) ::kill(child, SIGTERM);
        terminated = true;
        term_at = Clock::now();
      } else if (!killed && seconds_since(*term_at) > options.term_grace_s) {
        for (pid_t child : alive) ::kill(child, SIGKILL);
        killed = true;
      }
    }
    if (!progressed) ::usleep(10000);  // 10 ms between reap sweeps
  }
  return first_failure;
}

}  // namespace dkfac::comm::net
