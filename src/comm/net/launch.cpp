#include "comm/net/launch.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <vector>

#include "comm/net/rendezvous.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {

namespace {

/// Runs one rank inside the freshly forked child. Never returns.
[[noreturn]] void child_main(int rank, int nranks, uint16_t rendezvous_port,
                             const LaunchOptions& options,
                             const std::function<int(Communicator&)>& fn) {
  int code = 1;
  try {
    SocketOptions sopts;
    sopts.rendezvous_port = rendezvous_port;
    sopts.world_size = nranks;
    sopts.requested_rank = rank;
    sopts.timeout_s = options.comm_timeout_s;
    sopts.cost = options.cost;
    SocketComm comm(sopts);
    code = fn(comm);
  } catch (const Error& e) {
    std::fprintf(stderr, "[rank %d] error: %s\n", rank, e.what());
    code = 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[rank %d] error: %s\n", rank, e.what());
    code = 1;
  }
  // Flush inherited stdio, then leave without running atexit handlers —
  // the parent's (gtest's, the CLI's) teardown belongs to the parent.
  std::fflush(stdout);
  std::fflush(stderr);
  _exit(code);
}

}  // namespace

int run_ranks(int nranks, const std::function<int(Communicator&)>& fn,
              const LaunchOptions& options) {
  DKFAC_CHECK(nranks >= 1) << "run_ranks needs at least one rank";

  RendezvousServer server;
  std::vector<pid_t> children;
  children.reserve(static_cast<size_t>(nranks));

  // Parent-side stdio must be flushed before forking, or every child
  // inherits (and later flushes) the same buffered bytes.
  std::fflush(stdout);
  std::fflush(stderr);
  for (int i = 0; i < nranks; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      for (pid_t child : children) ::kill(child, SIGKILL);
      for (pid_t child : children) ::waitpid(child, nullptr, 0);
      throw Error("run_ranks: fork failed");
    }
    if (pid == 0) {
      server.close();  // only the launcher accepts rendezvous connections
      child_main(i, nranks, server.port(), options, fn);
    }
    children.push_back(pid);
  }

  try {
    server.serve(nranks, options.rendezvous_timeout_s);
  } catch (...) {
    // The group never assembled (a child died or wedged before
    // registering). Kill and reap everything so no rank outlives the
    // launcher, then let the rendezvous error explain what happened.
    for (pid_t child : children) ::kill(child, SIGKILL);
    for (pid_t child : children) ::waitpid(child, nullptr, 0);
    throw;
  }

  int first_failure = 0;
  for (pid_t child : children) {
    int status = 0;
    if (::waitpid(child, &status, 0) < 0) {
      if (first_failure == 0) first_failure = 1;
      continue;
    }
    int code = 0;
    if (WIFEXITED(status)) {
      code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      code = 128 + WTERMSIG(status);
    }
    if (code != 0 && first_failure == 0) first_failure = code;
  }
  return first_failure;
}

}  // namespace dkfac::comm::net
