// faultnet — deterministic, scripted fault injection for the socket/wire
// layer.
//
// A *fault plan* is a seeded script of rules, each naming a trigger (which
// rank, which wire operation or trainer phase, which epoch/step, the Nth
// matching occurrence) and an action:
//
//   refuse       a connect attempt fails as if ECONNREFUSED
//   reset        the connection is shut down mid-operation (both ends see
//                a typed "peer closed" error)
//   stall        the operation sleeps, driving the peer into its deadline
//                (typed "timed out" error — never a hang)
//   short_write  only a prefix of the frame leaves before the connection
//                is shut down
//   bitflip      one seeded payload bit is flipped AFTER the CRC is
//                computed, so the receiver's checksum check converts the
//                corruption into a typed dkfac::Error
//   abort        the process SIGKILLs itself (supervisor-visible death)
//
// Plans are parsed from `--fault-plan` / the DKFAC_FAULT_PLAN environment
// variable (grammar below) and execute deterministically: rule matching
// counts operations in program order and the bitflip position comes from a
// seeded splitmix64 stream, so the same plan reproduces the same fault at
// the same byte on every run.
//
// Grammar (semicolon-separated rules of comma-separated key=value fields):
//
//   plan   := rule (';' rule)*
//   rule   := field (',' field)*         e.g. "rank=2,op=send,nth=3,action=bitflip"
//   fields:
//     seed=N       (alone in a rule) seeds the plan's RNG (default 1)
//     rank=R       only this data-plane rank (default: any rank)
//     op=connect|send|recv|any          wire operation trigger
//     phase=step|forward|backward|grad_comm|apply   trainer-phase trigger
//                  (mutually exclusive with op=; supports stall and abort)
//     epoch=E      only while the rank's trainer is in epoch E
//     step=S       only while the rank's trainer is in step S of the epoch
//     nth=N        fire on the Nth matching occurrence (1-based, default 1)
//     times=K      keep firing for K consecutive matches (default 1)
//     action=refuse|reset|stall|short_write|bitflip|abort   (required)
//     arg=X        action argument: stall seconds (float, default 0.05) or
//                  short_write byte cap (default: half the frame)
//
// When no plan is installed every hook reduces to one relaxed atomic load
// (`active()`), taken on the false branch — zero overhead and byte-
// identical wire traffic, which the socket/thread parity tests pin down.
// Every injection increments a `faultnet.injected.*` counter (surfaced in
// the metrics registry) and emits a `faultnet.inject` trace instant.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dkfac::comm::net::faultnet {

enum class Op : uint8_t { kAny = 0, kConnect, kSend, kRecv };

enum class Phase : uint8_t {
  kNone = 0,  // not a phase-triggered rule
  kStep,
  kForward,
  kBackward,
  kGradComm,
  kApply,
};

enum class Action : uint8_t {
  kRefuse,
  kReset,
  kStall,
  kShortWrite,
  kBitflip,
  kAbort,
};

struct Rule {
  int rank = -1;           // -1 = any rank
  Op op = Op::kAny;        // wire-operation trigger (unless phase is set)
  Phase phase = Phase::kNone;
  int epoch = -1;          // -1 = any epoch
  int64_t step = -1;       // -1 = any step
  uint64_t nth = 1;        // fire on the Nth matching occurrence (1-based)
  uint64_t times = 1;      // consecutive matches to keep firing for
  Action action = Action::kReset;
  double stall_s = 0.05;   // action=stall sleep
  uint64_t write_cap = 0;  // action=short_write byte cap (0 = half frame)
};

struct Plan {
  uint64_t seed = 1;
  std::vector<Rule> rules;
};

/// Cumulative injections by action since the plan was installed.
struct InjectCounts {
  uint64_t refused = 0;
  uint64_t resets = 0;
  uint64_t stalls = 0;
  uint64_t short_writes = 0;
  uint64_t bitflips = 0;
  uint64_t aborts = 0;
  uint64_t total = 0;
};

/// Parses the plan grammar above; throws dkfac::Error naming the offending
/// field on any malformed rule.
Plan parse_plan(const std::string& text);

/// Installs `plan` process-wide (resetting all rule state and counters)
/// and flips active() on. An empty rule list flips it off.
void install(Plan plan);

/// Uninstalls any plan: active() turns false, hooks become no-ops.
void clear();

/// One-time pickup of DKFAC_FAULT_PLAN for this process (cheap no-op when
/// already attempted). A malformed env plan throws — a chaos experiment
/// silently running faultless would defeat its purpose.
void load_from_env();

namespace detail {
extern std::atomic<bool> g_active;
}

/// The single branch every wire hook sits behind. No plan → one relaxed
/// atomic load, false, and byte-identical traffic.
inline bool active() {
  return detail::g_active.load(std::memory_order_relaxed);
}

/// Data-plane rank of this process, for rank= rule matching. Set by
/// SocketComm after the rendezvous welcome; -1 (no rank-targeted rule
/// fires) until then.
void set_rank(int rank);

/// Training context for epoch=/step= rule matching, called by the trainer
/// at the top of every step. Also fires phase=step rules.
void set_step(int epoch, int64_t step);

/// Fires phase-triggered rules (stall or abort) at a trainer phase
/// boundary. Call only when active().
void at_phase(Phase phase);

/// Connect-attempt hook: true = this attempt must fail as ECONNREFUSED.
bool on_connect_attempt();

/// What the send path must do for the frame about to leave on `fd`.
/// Evaluated once per frame, AFTER the CRC is computed over `payload`.
struct SendFault {
  /// Payload to put on the wire — `payload` itself, or a scratch copy with
  /// one seeded bit flipped (the CRC in the header still covers the
  /// original, so the receiver detects the corruption).
  std::span<const uint8_t> payload;
  /// When set: send only this many bytes of header+payload, then shut the
  /// connection down and throw a typed error (injected short write).
  std::optional<size_t> truncate_after;
};

/// Send hook: may sleep (stall), shut `fd` down (reset), or SIGKILL the
/// process (abort) before returning. `scratch` backs a corrupted copy when
/// a bitflip rule fires. Call only when active().
SendFault on_send(int fd, std::span<const uint8_t> payload,
                  std::vector<uint8_t>& scratch);

/// Receive hook: may sleep, shut `fd` down, or SIGKILL the process before
/// the receive starts. Call only when active().
void on_recv(int fd);

/// Snapshot of the injection counters (atomics; safe from any thread).
InjectCounts counts();

}  // namespace dkfac::comm::net::faultnet
