// Backend parity, end to end: a multi-process SocketComm training run must
// produce bitwise-identical model weights to the same run on thread-backed
// ranks — with and without the overlapped communication pipeline, with and
// without K-FAC. Verified through checkpoint files: every variant saves
// rank 0's trained model and the files must match byte for byte (the
// checkpoint format is deterministic, so file equality == weight
// equality, BatchNorm running stats included).
//
// Ordering note: ALL forked socket variants run before ANY thread-backed
// variant — fork() is only safe before this process has spawned OpenMP
// teams (libgomp's pool does not survive into children), and the
// thread-backed runs spawn them. That is why every variant lives in one
// TEST: per-variant cases would break the invariant from the second case
// on whenever the binary runs them in a single process (e.g. invoked
// directly rather than through ctest's one-process-per-case discovery).
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "comm/net/launch.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "train/trainer.hpp"

namespace dkfac::train {
namespace {

constexpr int kWorld = 4;

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 128;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig tiny_config(bool overlap, bool use_kfac) {
  TrainConfig config;
  config.local_batch = 8;
  config.epochs = 2;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 16;
  config.overlap_comm = overlap;
  config.use_kfac = use_kfac;
  if (use_kfac) {
    config.kfac.damping = 0.01f;
    config.kfac.with_update_freq(2);
  }
  return config;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing checkpoint " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Trains on `kWorld` forked socket ranks; rank 0 checkpoints to `path`.
void train_socket_to(const TrainConfig& base, const std::string& path) {
  TrainConfig config = base;
  config.on_trained_model = [&path](nn::Layer& model) {
    nn::save_checkpoint(model, path);
  };
  comm::net::LaunchOptions options;
  options.rendezvous_timeout_s = 20.0;
  options.comm_timeout_s = 60.0;
  const int status = comm::net::run_ranks(
      kWorld,
      [&config](comm::Communicator& comm) {
        omp_set_num_threads(omp_threads_per_rank(kWorld));
        (void)train_with_comm(tiny_cnn_factory(), tiny_spec(), config, comm);
        return 0;
      },
      options);
  ASSERT_EQ(status, 0) << "socket training run failed";
}

/// Trains on `kWorld` thread ranks; rank 0 checkpoints to `path`.
void train_thread_to(const TrainConfig& base, const std::string& path) {
  TrainConfig config = base;
  config.on_trained_model = [&path](nn::Layer& model) {
    nn::save_checkpoint(model, path);
  };
  (void)train_distributed(tiny_cnn_factory(), tiny_spec(), config, kWorld);
}

struct Variant {
  bool overlap;
  bool use_kfac;
  const char* tag;
};

constexpr Variant kVariants[] = {
    {false, false, "sync_sgd"},
    {true, false, "overlap_sgd"},
    {false, true, "sync_kfac"},
    {true, true, "overlap_kfac"},
};

TEST(SocketTrainParity, WeightsBitwiseIdenticalAcrossBackends) {
  const std::string dir = ::testing::TempDir();
  auto ckpt = [&dir](const char* backend, const char* tag) {
    return dir + "dkfac_" + backend + "_" + tag + ".ckpt";
  };

  // Phase 1: every forked socket run, while this process is still
  // OpenMP-free.
  for (const Variant& v : kVariants) {
    SCOPED_TRACE(v.tag);
    train_socket_to(tiny_config(v.overlap, v.use_kfac), ckpt("socket", v.tag));
  }
  // Phase 2: the thread-backed references (these spawn OpenMP teams).
  for (const Variant& v : kVariants) {
    train_thread_to(tiny_config(v.overlap, v.use_kfac), ckpt("thread", v.tag));
  }

  for (const Variant& v : kVariants) {
    const std::vector<char> socket_bytes = read_file(ckpt("socket", v.tag));
    const std::vector<char> thread_bytes = read_file(ckpt("thread", v.tag));
    ASSERT_FALSE(socket_bytes.empty()) << v.tag;
    EXPECT_TRUE(socket_bytes == thread_bytes)
        << v.tag
        << ": socket-trained weights differ from thread-trained weights";
  }
}

}  // namespace
}  // namespace dkfac::train
