// Cross-module integration tests: full distributed training runs through
// data → nn → comm → core → optim, checking the paper's qualitative
// claims end to end.
#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "train/trainer.hpp"

namespace dkfac::train {
namespace {

data::SyntheticSpec spec_for_tests() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 256;
  spec.val_size = 64;
  spec.noise = 1.2f;
  spec.seed = 55;
  return spec;
}

ModelFactory factory_for_tests() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig config_for_tests(bool use_kfac, int epochs = 4) {
  TrainConfig config;
  config.local_batch = 16;
  config.epochs = epochs;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 0.5f};
  config.momentum = 0.9f;
  config.use_kfac = use_kfac;
  if (use_kfac) {
    config.kfac.damping = 0.01f;
    config.kfac.with_update_freq(4);
  }
  return config;
}

class StrategyEndToEnd
    : public ::testing::TestWithParam<kfac::DistributionStrategy> {};

TEST_P(StrategyEndToEnd, DistributedTrainingConverges) {
  TrainConfig config = config_for_tests(true);
  config.kfac.strategy = GetParam();
  TrainResult result =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 3);
  EXPECT_GT(result.final_val_accuracy, 0.5f);
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

TEST_P(StrategyEndToEnd, StrategiesAgreeOnFinalAccuracy) {
  // Same math, different placement: final accuracy must agree closely with
  // the factor-wise reference (small FP drift allowed).
  TrainConfig config = config_for_tests(true, 3);
  config.kfac.strategy = kfac::DistributionStrategy::kFactorWise;
  const TrainResult reference =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  config.kfac.strategy = GetParam();
  const TrainResult result =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  EXPECT_NEAR(result.final_val_accuracy, reference.final_val_accuracy, 0.08f);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, StrategyEndToEnd,
    ::testing::Values(kfac::DistributionStrategy::kFactorWise,
                      kfac::DistributionStrategy::kLayerWise,
                      kfac::DistributionStrategy::kSizeBalanced));

TEST(EndToEnd, ExplicitInverseAlsoTrains) {
  TrainConfig config = config_for_tests(true);
  config.kfac.inverse_method = kfac::InverseMethod::kExplicitInverse;
  TrainResult result =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  EXPECT_GT(result.final_val_accuracy, 0.4f);
}

TEST(EndToEnd, KfacNotWorseThanSgdAtEqualEpochs) {
  // The paper's core convergence claim, scaled down: with the same epoch
  // budget K-FAC's validation accuracy is at least in SGD's neighbourhood
  // (typically above it on ill-conditioned synthetic data).
  const TrainResult sgd = train_distributed(factory_for_tests(), spec_for_tests(),
                                            config_for_tests(false, 5), 2);
  const TrainResult kfac = train_distributed(factory_for_tests(), spec_for_tests(),
                                             config_for_tests(true, 5), 2);
  EXPECT_GE(kfac.best_val_accuracy, sgd.best_val_accuracy - 0.05f);
}

TEST(EndToEnd, UpdateFrequencyTradesCommForAccuracyGracefully) {
  // Large update intervals must still train (stale decompositions are the
  // whole point of §IV-C); accuracy may dip slightly but not collapse.
  TrainConfig frequent = config_for_tests(true, 4);
  frequent.kfac.with_update_freq(1);
  TrainConfig stale = config_for_tests(true, 4);
  stale.kfac.with_update_freq(16);
  const TrainResult r_freq =
      train_distributed(factory_for_tests(), spec_for_tests(), frequent, 2);
  const TrainResult r_stale =
      train_distributed(factory_for_tests(), spec_for_tests(), stale, 2);
  EXPECT_GT(r_stale.final_val_accuracy, 0.4f);
  EXPECT_GT(r_freq.final_val_accuracy, 0.4f);
  // And staleness must reduce communication.
  EXPECT_LT(r_stale.comm_stats.total_bytes(), r_freq.comm_stats.total_bytes());
}

TEST(EndToEnd, WorldSizeSweepIsConsistent) {
  // Same global batch (32) split across 1, 2, 4 ranks: final accuracies
  // must agree (deterministic collectives, identical replicas).
  std::vector<float> finals;
  for (int world : {1, 2, 4}) {
    TrainConfig config = config_for_tests(true, 3);
    config.local_batch = 32 / world;
    finals.push_back(
        train_distributed(factory_for_tests(), spec_for_tests(), config, world)
            .final_val_accuracy);
  }
  EXPECT_NEAR(finals[1], finals[0], 0.08f);
  EXPECT_NEAR(finals[2], finals[0], 0.08f);
}

class OptimizerComposition : public ::testing::TestWithParam<OptimizerKind> {};

TEST_P(OptimizerComposition, KfacComposesWithAnyInnerOptimizer) {
  // Paper §IV: "K-FAC can be used in-place with any standard optimizer,
  // such as Adam, LARS, or SGD". Each inner optimizer must train with the
  // preconditioner enabled.
  TrainConfig config = config_for_tests(true, 5);
  config.optimizer = GetParam();
  if (GetParam() == OptimizerKind::kAdam) config.lr.base_lr = 3e-3f;
  if (GetParam() == OptimizerKind::kLars) config.lr.base_lr = 4.0f;
  TrainResult result =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  EXPECT_GT(result.final_val_accuracy, 0.4f)
      << "optimizer kind " << static_cast<int>(GetParam());
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
}

INSTANTIATE_TEST_SUITE_P(Kinds, OptimizerComposition,
                         ::testing::Values(OptimizerKind::kSgd,
                                           OptimizerKind::kAdam,
                                           OptimizerKind::kLars));

TEST(EndToEnd, RankTruncatedKfacTrains) {
  TrainConfig config = config_for_tests(true, 4);
  config.kfac.eigen_rank_fraction = 0.5f;
  TrainResult result =
      train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  EXPECT_GT(result.final_val_accuracy, 0.4f);
}

TEST(EndToEnd, TrainedModelHookFires) {
  TrainConfig config = config_for_tests(false, 2);
  bool fired = false;
  config.on_trained_model = [&](nn::Layer& model) {
    fired = true;
    EXPECT_GT(model.parameter_count(), 0);
  };
  train_distributed(factory_for_tests(), spec_for_tests(), config, 2);
  EXPECT_TRUE(fired);
}

TEST(EndToEnd, ResnetWithKfacSmoke) {
  // Depth-faithful ResNet through the whole stack (residual topology,
  // BatchNorm, projection shortcuts) with K-FAC on 2 ranks.
  TrainConfig config = config_for_tests(true, 3);
  ModelFactory resnet = [](Rng& rng) { return nn::resnet_cifar(8, 4, rng, 4); };
  TrainResult result = train_distributed(resnet, spec_for_tests(), config, 2);
  EXPECT_GT(result.final_val_accuracy, 0.4f);
}

}  // namespace
}  // namespace dkfac::train
