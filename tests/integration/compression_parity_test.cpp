// Lossy factor compression, end to end.
//
// 1. The cross-backend bitwise contract must SURVIVE compression: a
//    4-rank socket K-FAC run at fp16/bf16 must produce checkpoint files
//    byte-identical to the same run on thread ranks — the encode-once,
//    reduce-in-fp32 collective keeps both backends on the identical fold
//    even though the payloads themselves are lossy.
// 2. Compression must actually SHRINK the wire: the bf16 socket run's
//    rank-0 wire_sent_bytes must be measurably below the fp32 run's, and
//    the CommStats reduction chain (dense ≥ packed ≥ encoded) must hold
//    with the encoded bytes reflected in allreduce_bytes.
// 3. Accuracy must not collapse: a 30-step synthetic K-FAC run at bf16
//    must land within a pinned tolerance of the fp32 run's final loss.
//
// Ordering note: ALL forked socket variants run before ANY thread-backed
// variant — fork() is only safe before this process has spawned OpenMP
// teams (libgomp's pool does not survive into children). Both phases
// therefore live in ONE test; the fork-free convergence regression runs
// as its own case.
#include <gtest/gtest.h>
#include <omp.h>

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "comm/codec.hpp"
#include "comm/net/launch.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "train/trainer.hpp"

namespace dkfac::train {
namespace {

constexpr int kWorld = 4;

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 128;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig tiny_config(comm::Precision precision, bool overlap) {
  TrainConfig config;
  config.local_batch = 8;
  config.epochs = 2;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 16;
  config.overlap_comm = overlap;
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(2);
  config.kfac.factor_precision = precision;
  return config;
}

std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing checkpoint " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

/// Rank-0 communication counters a forked socket run leaves behind for the
/// parent process to assert on.
struct RunStats {
  uint64_t wire_sent = 0;
  uint64_t allreduce = 0;
  uint64_t factor_dense = 0;
  uint64_t factor_packed = 0;
  uint64_t factor_encoded = 0;
};

void write_stats(const comm::CommStats& stats, const std::string& path) {
  std::ofstream out(path);
  out << stats.wire_sent_bytes << ' ' << stats.allreduce_bytes << ' '
      << stats.factor_dense_bytes << ' ' << stats.factor_packed_bytes << ' '
      << stats.factor_encoded_bytes << '\n';
}

RunStats read_stats(const std::string& path) {
  std::ifstream in(path);
  RunStats s;
  EXPECT_TRUE(in >> s.wire_sent >> s.allreduce >> s.factor_dense >>
              s.factor_packed >> s.factor_encoded)
      << "missing stats file " << path;
  return s;
}

/// Trains on `kWorld` forked socket ranks; rank 0 checkpoints to `ckpt`
/// and dumps its CommStats to `stats_path`.
void train_socket_to(const TrainConfig& base, const std::string& ckpt,
                     const std::string& stats_path) {
  TrainConfig config = base;
  config.on_trained_model = [&ckpt](nn::Layer& model) {
    nn::save_checkpoint(model, ckpt);
  };
  comm::net::LaunchOptions options;
  options.rendezvous_timeout_s = 20.0;
  options.comm_timeout_s = 60.0;
  const int status = comm::net::run_ranks(
      kWorld,
      [&config, &stats_path](comm::Communicator& comm) {
        omp_set_num_threads(omp_threads_per_rank(kWorld));
        const TrainResult result =
            train_with_comm(tiny_cnn_factory(), tiny_spec(), config, comm);
        if (comm.rank() == 0) write_stats(result.comm_stats, stats_path);
        return 0;
      },
      options);
  ASSERT_EQ(status, 0) << "socket training run failed";
}

void train_thread_to(const TrainConfig& base, const std::string& ckpt) {
  TrainConfig config = base;
  config.on_trained_model = [&ckpt](nn::Layer& model) {
    nn::save_checkpoint(model, ckpt);
  };
  (void)train_distributed(tiny_cnn_factory(), tiny_spec(), config, kWorld);
}

struct Variant {
  comm::Precision precision;
  bool overlap;
  const char* tag;
};

// fp32 rides along as the wire-bytes baseline; its bitwise parity is
// already covered by socket_train_parity_test.
constexpr Variant kVariants[] = {
    {comm::Precision::kFp32, false, "fp32_sync"},
    {comm::Precision::kFp16, false, "fp16_sync"},
    {comm::Precision::kBf16, false, "bf16_sync"},
    {comm::Precision::kBf16, true, "bf16_overlap"},
};

TEST(CompressionParity, BitwiseBackendParityAndWireShrink) {
  const std::string dir = ::testing::TempDir();
  auto ckpt = [&dir](const char* backend, const char* tag) {
    return dir + "dkfac_comp_" + backend + "_" + tag + ".ckpt";
  };
  auto stats_file = [&dir](const char* tag) {
    return dir + "dkfac_comp_stats_" + tag + ".txt";
  };

  // Phase 1: every forked socket run, while this process is still
  // OpenMP-free.
  for (const Variant& v : kVariants) {
    SCOPED_TRACE(v.tag);
    train_socket_to(tiny_config(v.precision, v.overlap),
                    ckpt("socket", v.tag), stats_file(v.tag));
  }
  // Phase 2: the thread-backed references (these spawn OpenMP teams).
  for (const Variant& v : kVariants) {
    train_thread_to(tiny_config(v.precision, v.overlap), ckpt("thread", v.tag));
  }

  // The bitwise cross-backend contract must survive compression at every
  // precision, sync and overlapped.
  for (const Variant& v : kVariants) {
    const std::vector<char> socket_bytes = read_file(ckpt("socket", v.tag));
    const std::vector<char> thread_bytes = read_file(ckpt("thread", v.tag));
    ASSERT_FALSE(socket_bytes.empty()) << v.tag;
    EXPECT_TRUE(socket_bytes == thread_bytes)
        << v.tag
        << ": socket-trained weights differ from thread-trained weights";
  }

  // Compression must also CHANGE the weights relative to fp32 (it is
  // lossy) — otherwise the codec silently never engaged.
  EXPECT_FALSE(read_file(ckpt("socket", "bf16_sync")) ==
               read_file(ckpt("socket", "fp32_sync")))
      << "bf16 run produced fp32-identical weights — codec not engaged?";

  const RunStats fp32 = read_stats(stats_file("fp32_sync"));
  for (const char* tag : {"fp16_sync", "bf16_sync"}) {
    SCOPED_TRACE(tag);
    const RunStats lossy = read_stats(stats_file(tag));
    // Reduction chain: dense ≥ packed ≥ encoded, strictly at 16 bit.
    EXPECT_GE(lossy.factor_dense, lossy.factor_packed);
    EXPECT_GT(lossy.factor_packed, lossy.factor_encoded);
    // Identical schedule → identical dense/packed equivalents.
    EXPECT_EQ(lossy.factor_dense, fp32.factor_dense);
    EXPECT_EQ(lossy.factor_packed, fp32.factor_packed);
    // The encoded bytes are what actually entered the collectives: the
    // whole allreduce-counter gap between runs is the codec's saving.
    EXPECT_EQ(fp32.allreduce - lossy.allreduce,
              lossy.factor_packed - lossy.factor_encoded);
    // And the real TCP traffic shrinks accordingly — the acceptance
    // criterion. The factor exchange is only part of total traffic, so
    // demand at least half the logical saving to show up on the wire
    // (in practice the allgather transport saves more than the logical
    // delta; headers are the only overhead).
    EXPECT_LT(lossy.wire_sent +
                  (lossy.factor_packed - lossy.factor_encoded) / 2,
              fp32.wire_sent)
        << "compressed run did not measurably shrink wire traffic";
  }
  // fp32 passthrough: the encoded counter degenerates to the packed one.
  EXPECT_EQ(fp32.factor_packed, fp32.factor_encoded);
}

TEST(CompressionParity, Bf16ConvergenceMatchesFp32WithinTolerance) {
  // 30 synthetic K-FAC steps, single rank (quantisation still active:
  // contributions are encoded/decoded even when there is no peer). The
  // bf16 loss must land within a pinned tolerance of fp32's — the
  // convergence-ablation guardrail for the lossy default-off toggle.
  data::SyntheticSpec spec = tiny_spec();
  spec.train_size = 240;  // 240 / batch 8 = 30 iterations in one epoch
  auto run = [&spec](comm::Precision precision) {
    TrainConfig config = tiny_config(precision, /*overlap=*/false);
    config.epochs = 1;
    return train_single(tiny_cnn_factory(), spec, config);
  };
  const TrainResult fp32 = run(comm::Precision::kFp32);
  const TrainResult bf16 = run(comm::Precision::kBf16);
  ASSERT_EQ(fp32.iterations, 30);
  ASSERT_EQ(bf16.iterations, 30);
  // Both must have actually trained...
  EXPECT_LT(fp32.epochs.back().train_loss, 1.45f);
  // ...and agree to within the pinned tolerance (empirically the gap is
  // ~1e-3 here; 0.05 leaves an order of magnitude of slack without ever
  // accepting a diverged run).
  EXPECT_NEAR(fp32.epochs.back().train_loss, bf16.epochs.back().train_loss,
              0.05f);
}

}  // namespace
}  // namespace dkfac::train
