#include "optim/sgd.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/linear.hpp"

namespace dkfac::optim {
namespace {

nn::Parameter make_param(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  nn::Parameter p("p", Tensor(Shape{n}, std::move(values)));
  return p;
}

TEST(Sgd, PlainStep) {
  nn::Parameter p = make_param({1.0f, 2.0f});
  p.grad = Tensor(Shape{2}, {0.5f, -1.0f});
  Sgd sgd({&p}, {.lr = 0.1f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p.value[1], 2.0f + 0.1f);
}

TEST(Sgd, WeightDecayAddsL2Pull) {
  nn::Parameter p = make_param({10.0f});
  p.grad = Tensor(Shape{1}, {0.0f});
  Sgd sgd({&p}, {.lr = 0.1f, .weight_decay = 0.5f});
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], 10.0f - 0.1f * 0.5f * 10.0f);
}

TEST(Sgd, MomentumAccumulates) {
  nn::Parameter p = make_param({0.0f});
  Sgd sgd({&p}, {.lr = 1.0f, .momentum = 0.9f});
  p.grad = Tensor(Shape{1}, {1.0f});
  sgd.step();  // v=1, p = -1
  EXPECT_FLOAT_EQ(p.value[0], -1.0f);
  sgd.step();  // v = 0.9 + 1 = 1.9, p = -2.9
  EXPECT_FLOAT_EQ(p.value[0], -2.9f);
}

TEST(Sgd, NesterovLookahead) {
  nn::Parameter p = make_param({0.0f});
  Sgd sgd({&p}, {.lr = 1.0f, .momentum = 0.5f, .nesterov = true});
  p.grad = Tensor(Shape{1}, {1.0f});
  sgd.step();  // v=1, update = g + m·v = 1.5
  EXPECT_FLOAT_EQ(p.value[0], -1.5f);
}

TEST(Sgd, LrMutableBetweenSteps) {
  nn::Parameter p = make_param({0.0f});
  Sgd sgd({&p}, {.lr = 1.0f});
  p.grad = Tensor(Shape{1}, {1.0f});
  sgd.step();
  sgd.set_lr(0.1f);
  sgd.step();
  EXPECT_FLOAT_EQ(p.value[0], -1.1f);
}

TEST(Sgd, InvalidOptionsThrow) {
  nn::Parameter p = make_param({0.0f});
  EXPECT_THROW(Sgd({&p}, {.lr = 0.0f}), Error);
  EXPECT_THROW(Sgd({&p}, {.lr = 0.1f, .momentum = 1.0f}), Error);
  EXPECT_THROW(Sgd({&p}, {.lr = 0.1f, .momentum = 0.0f, .nesterov = true}), Error);
}

TEST(Sgd, MultipleParameterBuffersIndependent) {
  nn::Parameter a = make_param({0.0f});
  nn::Parameter b = make_param({0.0f});
  Sgd sgd({&a, &b}, {.lr = 1.0f, .momentum = 0.9f});
  a.grad = Tensor(Shape{1}, {1.0f});
  b.grad = Tensor(Shape{1}, {0.0f});
  sgd.step();
  EXPECT_FLOAT_EQ(a.value[0], -1.0f);
  EXPECT_FLOAT_EQ(b.value[0], 0.0f);  // b's velocity untouched by a's
}

}  // namespace
}  // namespace dkfac::optim
