#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/resnet.hpp"
#include "optim/adam.hpp"
#include "optim/lars.hpp"

namespace dkfac::optim {
namespace {

nn::Parameter make_param(std::vector<float> values) {
  const int64_t n = static_cast<int64_t>(values.size());
  return nn::Parameter("p", Tensor(Shape{n}, std::move(values)));
}

TEST(Adam, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ≈ lr·sign(g).
  nn::Parameter p = make_param({0.0f, 0.0f});
  p.grad = Tensor(Shape{2}, {0.3f, -7.0f});
  Adam adam({&p}, {.lr = 0.01f});
  adam.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-5f);
  EXPECT_NEAR(p.value[1], 0.01f, 1e-5f);
}

TEST(Adam, OscillatingGradientsStayBounded) {
  // Alternating ±1 gradients: the first moment averages toward zero while
  // the second stays near one, so total displacement over many steps is a
  // small fraction of the lr·steps an SGD-like rule would rack up.
  nn::Parameter p = make_param({0.0f});
  Adam adam({&p}, {.lr = 0.1f});
  for (int i = 0; i < 40; ++i) {
    p.grad = Tensor(Shape{1}, {i % 2 == 0 ? 1.0f : -1.0f});
    adam.step();
  }
  EXPECT_LT(std::abs(p.value[0]), 0.25f * 40 * 0.1f);
}

TEST(Adam, WeightDecayPullsTowardZero) {
  nn::Parameter p = make_param({10.0f});
  p.grad = Tensor(Shape{1}, {0.0f});
  Adam adam({&p}, {.lr = 0.1f, .weight_decay = 1.0f});
  adam.step();
  EXPECT_LT(p.value[0], 10.0f);
}

TEST(Adam, StepCounterAndValidation) {
  nn::Parameter p = make_param({0.0f});
  Adam adam({&p}, {.lr = 0.1f});
  EXPECT_EQ(adam.step_count(), 0);
  adam.step();
  EXPECT_EQ(adam.step_count(), 1);
  EXPECT_THROW(Adam({&p}, {.lr = 0.0f}), Error);
  EXPECT_THROW(Adam({&p}, {.lr = 0.1f, .beta1 = 1.0f}), Error);
}

TEST(Adam, TrainsSmallNetwork) {
  Rng rng(1);
  nn::LayerPtr model = nn::mlp(4, 8, 2, rng);
  Adam adam(model->parameters(), {.lr = 3e-3f});
  Tensor x = Tensor::randn(Shape{16, 4}, rng);
  std::vector<int64_t> labels(16);
  for (int64_t i = 0; i < 16; ++i) labels[static_cast<size_t>(i)] = i % 2;

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int it = 0; it < 200; ++it) {
    model->zero_grad();
    nn::LossResult loss = nn::softmax_cross_entropy(model->forward(x), labels);
    model->backward(loss.grad);
    adam.step();
    if (it == 0) first_loss = loss.loss;
    last_loss = loss.loss;
  }
  EXPECT_LT(last_loss, 0.5f * first_loss);
}

TEST(Lars, RatioScalesWithWeightNorm) {
  // Two tensors, same gradient, different weight norm: the bigger-weight
  // tensor gets the bigger effective step.
  nn::Parameter small = make_param({0.1f});
  nn::Parameter big = make_param({10.0f});
  small.grad = Tensor(Shape{1}, {1.0f});
  big.grad = Tensor(Shape{1}, {1.0f});
  Lars lars({&small, &big}, {.lr = 1.0f, .momentum = 0.0f, .trust = 0.01f});
  lars.step();
  EXPECT_GT(lars.last_ratio(1), lars.last_ratio(0));
  EXPECT_NEAR(lars.last_ratio(0), 0.01f * 0.1f / 1.0f, 1e-5f);
}

TEST(Lars, ZeroWeightFallsBackToPlainUpdate) {
  nn::Parameter p = make_param({0.0f});
  p.grad = Tensor(Shape{1}, {1.0f});
  Lars lars({&p}, {.lr = 0.5f, .momentum = 0.0f});
  lars.step();
  EXPECT_FLOAT_EQ(p.value[0], -0.5f);  // ratio = 1
  EXPECT_FLOAT_EQ(lars.last_ratio(0), 1.0f);
}

TEST(Lars, MomentumAccumulates) {
  nn::Parameter p = make_param({0.0f});
  Lars lars({&p}, {.lr = 1.0f, .momentum = 0.5f});
  p.grad = Tensor(Shape{1}, {1.0f});
  lars.step();  // ratio 1 (zero weight), v = 1, p = -1
  const float after_one = p.value[0];
  lars.step();
  EXPECT_LT(p.value[0], after_one);  // momentum keeps pushing
}

TEST(Lars, WeightDecayEntersTrustRatio) {
  nn::Parameter p = make_param({2.0f});
  p.grad = Tensor(Shape{1}, {0.0f});
  Lars lars({&p}, {.lr = 1.0f, .momentum = 0.0f, .weight_decay = 0.5f,
                   .trust = 0.1f});
  lars.step();
  // u = λw = 1.0; ratio = 0.1·2/1 = 0.2; step = lr·ratio·u = 0.2.
  EXPECT_NEAR(p.value[0], 1.8f, 1e-5f);
}

TEST(Lars, InvalidOptionsThrow) {
  nn::Parameter p = make_param({0.0f});
  EXPECT_THROW(Lars({&p}, {.lr = -1.0f}), Error);
  EXPECT_THROW(Lars({&p}, {.lr = 0.1f, .momentum = 0.9f, .weight_decay = 0.0f,
                           .trust = 0.0f}),
               Error);
}

}  // namespace
}  // namespace dkfac::optim
