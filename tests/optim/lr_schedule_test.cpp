#include "optim/lr_schedule.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dkfac::optim {
namespace {

TEST(LrSchedule, ConstantWithoutWarmupOrDecay) {
  LrSchedule s({.base_lr = 0.2f});
  EXPECT_FLOAT_EQ(s.lr_at(0.0f), 0.2f);
  EXPECT_FLOAT_EQ(s.lr_at(50.0f), 0.2f);
}

TEST(LrSchedule, LinearWarmupRampsToBase) {
  // The paper warms up linearly over the first 5 epochs.
  LrSchedule s({.base_lr = 1.0f, .warmup_epochs = 5.0f, .warmup_start_factor = 0.2f});
  EXPECT_FLOAT_EQ(s.lr_at(0.0f), 0.2f);
  EXPECT_FLOAT_EQ(s.lr_at(2.5f), 0.6f);
  EXPECT_FLOAT_EQ(s.lr_at(5.0f), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(10.0f), 1.0f);
}

TEST(LrSchedule, MultiStepDecay) {
  // The paper's CIFAR K-FAC schedule: ×0.1 at epochs 35, 75, 90.
  LrSchedule s({.base_lr = 1.0f, .decay_epochs = {35, 75, 90}, .decay_factor = 0.1f});
  EXPECT_FLOAT_EQ(s.lr_at(34.9f), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(35.0f), 0.1f);
  EXPECT_FLOAT_EQ(s.lr_at(80.0f), 0.01f);
  EXPECT_NEAR(s.lr_at(95.0f), 0.001f, 1e-9f);
}

TEST(LrSchedule, WarmupThenDecayCompose) {
  LrSchedule s({.base_lr = 2.0f,
                .warmup_epochs = 5.0f,
                .warmup_start_factor = 0.5f,
                .decay_epochs = {10.0f},
                .decay_factor = 0.1f});
  EXPECT_FLOAT_EQ(s.lr_at(0.0f), 1.0f);
  EXPECT_FLOAT_EQ(s.lr_at(7.0f), 2.0f);
  EXPECT_FLOAT_EQ(s.lr_at(12.0f), 0.2f);
}

TEST(LrSchedule, InvalidOptionsThrow) {
  EXPECT_THROW(LrSchedule({.base_lr = 0.0f}), Error);
  EXPECT_THROW(LrSchedule({.base_lr = 1.0f, .decay_epochs = {10, 5}}), Error);
  LrSchedule ok({.base_lr = 1.0f});
  EXPECT_THROW(ok.lr_at(-1.0f), Error);
}

TEST(UpdateFreqSchedule, ConstantByDefault) {
  UpdateFreqSchedule s({.base_interval = 500});
  EXPECT_EQ(s.interval_at(0.0f), 500);
  EXPECT_EQ(s.interval_at(54.0f), 500);
}

TEST(UpdateFreqSchedule, DecaysAtEpochs) {
  // §V-C: kfac-update-freq decreased by a scalar at fixed epochs.
  UpdateFreqSchedule s({.base_interval = 100,
                        .decay_epochs = {20.0f, 40.0f},
                        .decay_factor = 0.5f});
  EXPECT_EQ(s.interval_at(10.0f), 100);
  EXPECT_EQ(s.interval_at(25.0f), 50);
  EXPECT_EQ(s.interval_at(45.0f), 25);
}

TEST(UpdateFreqSchedule, ClampsAtMinInterval) {
  UpdateFreqSchedule s({.base_interval = 4,
                        .decay_epochs = {1.0f, 2.0f, 3.0f},
                        .decay_factor = 0.25f,
                        .min_interval = 2});
  EXPECT_EQ(s.interval_at(5.0f), 2);
}

}  // namespace
}  // namespace dkfac::optim
