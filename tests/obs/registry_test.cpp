// obs::Registry + StepMetricsLogger + derive_overlap contracts:
// registration returns stable handles and rejects duplicate names,
// lookups type-check, write_jsonl emits one parseable sorted object per
// step (non-finite gauges as null), the logger maps every legacy
// CommStats/StepReport field to its dotted name, and the overlap
// derivation matches AsyncCommStats::overlap_won_seconds() from both the
// timer path and the trace-aggregate path.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "json_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dkfac::obs {
namespace {

using testing::JsonValue;
using testing::parse_json;

TEST(Registry, CountersAndGaugesHoldValues) {
  Registry registry;
  Registry::Counter& c = registry.add_counter("a.calls");
  Registry::Gauge& g = registry.add_gauge("a.seconds");
  c.add(3);
  c.add(4);
  g.set(1.5);
  EXPECT_EQ(c.value(), 7u);
  EXPECT_EQ(g.value(), 1.5);
  c.set(100);
  EXPECT_EQ(registry.counter("a.calls").value(), 100u);
  EXPECT_EQ(registry.gauge("a.seconds").value(), 1.5);
  EXPECT_TRUE(registry.contains("a.calls"));
  EXPECT_FALSE(registry.contains("a.missing"));
  EXPECT_EQ(registry.size(), 2u);
}

TEST(Registry, DuplicateNamesThrowAcrossKinds) {
  Registry registry;
  registry.add_counter("dup.metric");
  EXPECT_THROW(registry.add_counter("dup.metric"), Error);
  EXPECT_THROW(registry.add_gauge("dup.metric"), Error);
}

TEST(Registry, LookupsTypeCheckAndRejectUnknown) {
  Registry registry;
  registry.add_counter("k.counter");
  registry.add_gauge("k.gauge");
  EXPECT_THROW(registry.counter("k.gauge"), Error);
  EXPECT_THROW(registry.gauge("k.counter"), Error);
  EXPECT_THROW(registry.counter("k.unknown"), Error);
}

TEST(Registry, JsonlLineParsesWithSortedKeysAndNullNonFinite) {
  Registry registry;
  registry.add_counter("z.last").set(9);
  registry.add_gauge("a.first").set(0.125);
  registry.add_gauge("m.nan").set(std::numeric_limits<double>::quiet_NaN());
  std::ostringstream out;
  registry.write_jsonl(out, 42);
  const std::string line = out.str();
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  const JsonValue root = parse_json(line);
  EXPECT_EQ(root.at("step").number(), 42.0);
  EXPECT_EQ(root.at("a.first").number(), 0.125);
  EXPECT_EQ(root.at("z.last").number(), 9.0);
  EXPECT_TRUE(root.at("m.nan").is_null());
  // Sorted emission: "a.first" appears before "m.nan" before "z.last".
  EXPECT_LT(line.find("a.first"), line.find("m.nan"));
  EXPECT_LT(line.find("m.nan"), line.find("z.last"));
}

// ---- derive_overlap --------------------------------------------------------

TEST(DeriveOverlap, TimerPathMatchesOverlapWonCounter) {
  Tracer::instance().disable();
  comm::AsyncCommStats async;
  async.comm_seconds = 2.0;
  async.wait_seconds = 0.5;
  const OverlapDerived d = derive_overlap(async);
  EXPECT_DOUBLE_EQ(d.hidden_seconds, async.overlap_won_seconds());
  EXPECT_DOUBLE_EQ(d.hidden_seconds, 1.5);
  EXPECT_DOUBLE_EQ(d.exposed_seconds, 0.5);

  // Fully exposed: waited longer than the collectives ran.
  async.wait_seconds = 3.0;
  const OverlapDerived e = derive_overlap(async);
  EXPECT_DOUBLE_EQ(e.hidden_seconds, 0.0);
  EXPECT_DOUBLE_EQ(e.exposed_seconds, 2.0);
}

TEST(DeriveOverlap, TraceAggregatePathUsesSpanTotals) {
  Tracer& tracer = Tracer::instance();
  tracer.disable();
  tracer.enable();
  tracer.clear();
  const Ticks second = static_cast<Ticks>(1.0 / kSecondsPerTick);
  tracer.add_aggregate(tracer.intern("comm.async.flush"), 4 * second);
  tracer.add_aggregate(tracer.intern("comm.async.wait"), 1 * second);

  comm::AsyncCommStats async;  // timers deliberately different from spans
  async.comm_seconds = 10.0;
  async.wait_seconds = 9.0;
  const OverlapDerived d = derive_overlap(async);
  EXPECT_NEAR(d.hidden_seconds, 3.0, 1e-6);  // tick-to-seconds rounding
  EXPECT_NEAR(d.exposed_seconds, 1.0, 1e-6);

  // Enabled-but-empty aggregates (tracing switched on late): trust timers.
  tracer.clear();
  const OverlapDerived f = derive_overlap(async);
  EXPECT_DOUBLE_EQ(f.hidden_seconds, 1.0);
  EXPECT_DOUBLE_EQ(f.exposed_seconds, 9.0);
  tracer.disable();
}

// ---- StepMetricsLogger -----------------------------------------------------

TEST(StepMetricsLogger, MapsLegacyStatsToDottedNamesAndWritesJsonl) {
  const std::string path = ::testing::TempDir() + "dkfac_metrics_test.jsonl";
  Tracer::instance().disable();
  StepMetricsLogger logger(path);
  ASSERT_TRUE(logger.writing());

  StepSample sample;
  sample.step = 1;
  sample.epoch = 0;
  sample.loss = 2.25;
  sample.accuracy = 0.5;
  sample.lr = 0.05;
  sample.step_seconds = 0.25;

  comm::CommStats stats;
  stats.allreduce_calls = 3;
  stats.allreduce_bytes = 1024;
  stats.wire_sent_bytes = 555;
  stats.async.comm_seconds = 0.2;
  stats.async.wait_seconds = 0.05;

  kfac::KfacPreconditioner::StepReport report;
  report.factors_updated = 4;
  report.decompositions_updated = 2;
  report.decomp_intra_tasks = 1;
  report.decomp_inter_tasks = 1;
  report.factor_seconds = 0.01;

  comm::ArenaStats arena;
  arena.bytes_reserved = 8192;
  arena.steady_state_allocs = 0;

  logger.record(sample, stats, &report, arena);
  sample.step = 2;
  sample.loss = 2.0;
  logger.record(sample, stats, &report, arena);

  // Registry reflects the legacy structs under the documented names.
  Registry& reg = logger.registry();
  EXPECT_EQ(reg.counter("comm.allreduce.calls").value(), 3u);
  EXPECT_EQ(reg.counter("comm.allreduce.bytes").value(), 1024u);
  EXPECT_EQ(reg.counter("comm.wire.sent_bytes").value(), 555u);
  // factor/decomp update counters tick once per step that updated, not by
  // the per-step factor count.
  EXPECT_EQ(reg.counter("kfac.factor_updates").value(), 2u);
  EXPECT_EQ(reg.counter("kfac.decomp_updates").value(), 2u);
  EXPECT_EQ(reg.counter("arena.bytes_reserved").value(), 8192u);
  EXPECT_EQ(reg.gauge("train.loss").value(), 2.0);
  EXPECT_EQ(reg.gauge("comm.async.comm_seconds").value(), 0.2);
  EXPECT_DOUBLE_EQ(reg.gauge("comm.overlap.hidden_seconds").value(), 0.15);
  EXPECT_DOUBLE_EQ(reg.gauge("comm.overlap.exposed_seconds").value(), 0.05);

  // The file holds one parseable object per record() call.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    const JsonValue root = parse_json(line);
    ++lines;
    EXPECT_EQ(root.at("step").number(), static_cast<double>(lines));
    EXPECT_TRUE(root.has("train.loss"));
    EXPECT_TRUE(root.has("comm.overlap.hidden_seconds"));
    EXPECT_TRUE(root.has("kfac.factor_seconds"));
  }
  EXPECT_EQ(lines, 2);
}

TEST(StepMetricsLogger, EmptyPathDisablesWritingButKeepsRegistry) {
  StepMetricsLogger logger("");
  EXPECT_FALSE(logger.writing());
  StepSample sample;
  sample.loss = 1.0;
  logger.record(sample, comm::CommStats{}, nullptr, comm::ArenaStats{});
  EXPECT_EQ(logger.registry().gauge("train.loss").value(), 1.0);
}

TEST(StepMetricsLogger, UnwritablePathThrows) {
  EXPECT_THROW(StepMetricsLogger("/nonexistent-dir.v9/m.jsonl"), Error);
}

}  // namespace
}  // namespace dkfac::obs
