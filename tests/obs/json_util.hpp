// Minimal strict JSON parser for test-side validation. The exporter and
// the JSONL metrics writer both build their output by hand (no JSON
// library in the tree), so the tests round-trip everything through this
// independent recursive-descent parser to keep the emitters honest.
//
// Deliberately small: full JSON syntax, numbers as double, \uXXXX decoded
// only for ASCII (the emitters never produce anything else). Throws
// std::runtime_error with a byte offset on any malformed input.
#pragma once

#include <cstdlib>
#include <map>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

namespace dkfac::obs::testing {

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray,
               JsonObject>
      value{nullptr};

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value); }
  bool is_number() const { return std::holds_alternative<double>(value); }
  bool is_string() const { return std::holds_alternative<std::string>(value); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value); }

  double number() const { return std::get<double>(value); }
  const std::string& str() const { return std::get<std::string>(value); }
  const JsonArray& array() const { return std::get<JsonArray>(value); }
  const JsonObject& object() const { return std::get<JsonObject>(value); }

  bool has(const std::string& key) const {
    return is_object() && object().count(key) != 0;
  }
  const JsonValue& at(const std::string& key) const {
    return object().at(key);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue{parse_string()};
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue{true};
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue{false};
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{nullptr};
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(obj)};
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{std::move(obj)};
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(arr)};
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{std::move(arr)};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // Emitters only ever \u-escape control characters (ASCII).
          if (code > 0x7f) fail("non-ASCII \\u escape unsupported by test parser");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           ((text_[pos_] >= '0' && text_[pos_] <= '9') || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    return JsonValue{v};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

inline JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse();
}

}  // namespace dkfac::obs::testing
