// End-to-end observability contracts on a real (tiny) training run:
// tracing ON produces bitwise-identical training to tracing OFF
// (checkpoint bytes and per-epoch metrics), every trainer phase records
// spans, the derived overlap split agrees with the executor's
// overlap-won counter, and --metrics-style JSONL carries one parseable
// record per step.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "json_util.hpp"
#include "nn/resnet.hpp"
#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "train/trainer.hpp"

namespace dkfac::obs {
namespace {

using testing::JsonValue;
using testing::parse_json;

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 128;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

train::ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

train::TrainConfig tiny_config(int epochs) {
  train::TrainConfig config;
  config.local_batch = 16;
  config.epochs = epochs;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 64;
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(4);
  config.overlap_comm = true;  // exercise the async executor spans
  return config;
}

std::vector<char> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(in),
                           std::istreambuf_iterator<char>());
}

struct RunOutput {
  train::TrainResult result;
  std::vector<char> checkpoint;
};

RunOutput run_tiny(bool tracing, const std::string& tag,
                   const std::string& metrics_path = "") {
  Tracer& tracer = Tracer::instance();
  if (tracing) {
    tracer.enable();
    tracer.clear();
  } else {
    tracer.disable();
  }
  const std::string ckpt =
      ::testing::TempDir() + "dkfac_trace_parity_" + tag + ".ckpt";
  train::TrainConfig config = tiny_config(2);
  config.metrics_path = metrics_path;
  config.on_trained_model = [&ckpt](nn::Layer& model) {
    nn::save_checkpoint(model, ckpt);
  };
  RunOutput out;
  out.result =
      train::train_distributed(tiny_cnn_factory(), tiny_spec(), config, 2);
  out.checkpoint = file_bytes(ckpt);
  tracer.disable();
  return out;
}

TEST(TraceTrain, TrainingIsBitwiseIdenticalTraceOnVsOff) {
  const std::string metrics =
      ::testing::TempDir() + "dkfac_trace_parity_metrics.jsonl";
  const RunOutput off = run_tiny(false, "off");
  const RunOutput on = run_tiny(true, "on", metrics);

  // Checkpoints byte-for-byte equal: instrumentation is observation only.
  ASSERT_FALSE(off.checkpoint.empty());
  EXPECT_EQ(off.checkpoint, on.checkpoint);

  // Per-epoch numbers exactly equal too (float ==, no tolerance).
  ASSERT_EQ(off.result.epochs.size(), on.result.epochs.size());
  for (size_t e = 0; e < off.result.epochs.size(); ++e) {
    EXPECT_EQ(off.result.epochs[e].train_loss, on.result.epochs[e].train_loss);
    EXPECT_EQ(off.result.epochs[e].val_accuracy,
              on.result.epochs[e].val_accuracy);
  }
}

TEST(TraceTrain, EveryTrainerPhaseRecordsSpans) {
  const RunOutput on = run_tiny(true, "phases");
  Tracer& tracer = Tracer::instance();
  const uint64_t steps = static_cast<uint64_t>(on.result.iterations);
  ASSERT_GT(steps, 0u);
  for (const char* phase : {"train.step", "train.forward", "train.backward",
                            "train.grad_comm", "train.apply", "data.load"}) {
    EXPECT_EQ(tracer.aggregate_count(phase), 2u * steps)  // 2 thread ranks
        << phase;
  }
  for (const char* phase :
       {"train.epoch", "train.eval", "kfac.step", "kfac.factor_update",
        "kfac.factor_stats", "kfac.factor_comm", "kfac.precondition",
        "kfac.decomposition", "comm.async.flush", "comm.async.wait"}) {
    EXPECT_GT(tracer.aggregate_count(phase), 0u) << phase;
  }
  // Decomposition matrices route intra (serialized/large) or inter
  // (concurrent small) depending on dims and machine; together they must
  // cover every decomposed factor.
  EXPECT_GT(tracer.aggregate_count("decomp.matrix.intra") +
                tracer.aggregate_count("decomp.matrix.inter"),
            0u);
}

TEST(TraceTrain, DerivedOverlapAgreesWithOverlapWonCounter) {
  const RunOutput on = run_tiny(true, "overlap");
  Tracer& tracer = Tracer::instance();
  tracer.enable();  // re-enable: derive from the run's surviving aggregates
  const comm::AsyncCommStats& async = on.result.comm_stats.async;
  ASSERT_GT(async.comm_seconds, 0.0);
  const OverlapDerived derived = derive_overlap(async);
  tracer.disable();

  // Spans bracket the same intervals as the stats timers; clock placement
  // differs by microseconds per event, so agreement is near, not exact.
  const double tolerance = 0.25 * async.comm_seconds + 0.02;
  EXPECT_NEAR(derived.hidden_seconds, async.overlap_won_seconds(), tolerance);
  EXPECT_NEAR(derived.hidden_seconds + derived.exposed_seconds,
              async.comm_seconds, tolerance);
  EXPECT_GE(derived.hidden_seconds, 0.0);
  EXPECT_GE(derived.exposed_seconds, 0.0);
}

TEST(TraceTrain, MetricsJsonlHasOneRecordPerStep) {
  const std::string metrics =
      ::testing::TempDir() + "dkfac_trace_train_metrics.jsonl";
  const RunOutput on = run_tiny(true, "jsonl", metrics);
  std::ifstream in(metrics);
  ASSERT_TRUE(in.good());
  std::string line;
  uint64_t step = 0;
  while (std::getline(in, line)) {
    const JsonValue root = parse_json(line);
    ++step;
    EXPECT_EQ(root.at("step").number(), static_cast<double>(step));
    for (const char* key :
         {"train.loss", "train.lr", "train.step_seconds",
          "comm.allreduce.bytes", "comm.async.submitted",
          "comm.overlap.hidden_seconds", "kfac.factor_updates",
          "arena.steady_allocs"}) {
      EXPECT_TRUE(root.has(key)) << key << " missing at step " << step;
    }
    EXPECT_GT(root.at("train.loss").number(), 0.0);
  }
  EXPECT_EQ(step, static_cast<uint64_t>(on.result.iterations));
}

}  // namespace
}  // namespace dkfac::obs
