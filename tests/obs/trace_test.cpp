// obs::Tracer + Chrome trace exporter contracts:
//   (1) span nesting and begin/end pairing, per-thread rings, thread
//       labels; (2) ring wrap-around overwrites the oldest events and
//       counts the drops; (3) exported JSON round-trips through an
//       independent parser and carries names/args/pids; (4) the
//       multi-rank merge splices per-rank files onto one epoch-aligned
//       timeline and rejects malformed inputs; (5) steady-state emission
//       performs zero heap allocations — the same contract the comm
//       arenas pin — and disabled macros cost nothing.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "json_util.hpp"
#include "obs/export.hpp"

// ---- global allocation counter ---------------------------------------------
// Replacing global operator new in this test binary lets the steady-state
// tests assert "zero allocations" directly instead of inferring it.
namespace {
std::atomic<uint64_t> g_new_calls{0};
}  // namespace

void* operator new(std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_new_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace dkfac::obs {
namespace {

using testing::JsonValue;
using testing::parse_json;

// The tracer is a process-wide singleton shared by every test in this
// binary: reset recording state (events, aggregates, drop counters)
// without invalidating interned ids or thread registrations.
void reset_tracer(size_t ring_capacity = Tracer::kDefaultRingCapacity) {
  Tracer& tracer = Tracer::instance();
  tracer.disable();
  tracer.enable(ring_capacity);
  tracer.clear();
}

// This thread's snapshot, located by its (per-test unique) label.
Tracer::ThreadSnapshot find_thread(const std::string& name) {
  for (auto& snap : Tracer::instance().snapshot()) {
    if (snap.name == name) return snap;
  }
  ADD_FAILURE() << "no thread buffer named " << name;
  return {};
}

// ---- spans and rings -------------------------------------------------------

TEST(Trace, SpanNestingEmitsBalancedPairs) {
  reset_tracer();
  Tracer::set_thread_name("t.nesting");
  {
    DKFAC_TRACE_SCOPE("nest.outer");
    DKFAC_TRACE_SCOPE("nest.inner");
  }
  const auto snap = find_thread("t.nesting");
  ASSERT_EQ(snap.events.size(), 4u);
  Tracer& tracer = Tracer::instance();
  EXPECT_EQ(snap.events[0].type, EventType::kBegin);
  EXPECT_EQ(tracer.name_of(snap.events[0].name), "nest.outer");
  EXPECT_EQ(snap.events[1].type, EventType::kBegin);
  EXPECT_EQ(tracer.name_of(snap.events[1].name), "nest.inner");
  // Destructors close inner-first, so the pairs nest like parentheses.
  EXPECT_EQ(snap.events[2].type, EventType::kEnd);
  EXPECT_EQ(tracer.name_of(snap.events[2].name), "nest.inner");
  EXPECT_EQ(snap.events[3].type, EventType::kEnd);
  EXPECT_EQ(tracer.name_of(snap.events[3].name), "nest.outer");
  for (size_t i = 1; i < snap.events.size(); ++i) {
    EXPECT_GE(snap.events[i].ticks, snap.events[i - 1].ticks);
  }
  // Aggregates: one closed span each, outer at least as long as inner.
  EXPECT_EQ(tracer.aggregate_count("nest.outer"), 1u);
  EXPECT_EQ(tracer.aggregate_count("nest.inner"), 1u);
  EXPECT_GE(tracer.aggregate_seconds("nest.outer"),
            tracer.aggregate_seconds("nest.inner"));
}

TEST(Trace, SpanArgsRideTheCloseEvent) {
  reset_tracer();
  Tracer::set_thread_name("t.args");
  {
    DKFAC_TRACE_SCOPE_NAMED(span, "args.span");
    ASSERT_TRUE(span.active());
    span.set_arg("bytes", 123);
    span.set_arg("count", 7);
    span.set_arg("count_v2", 9);  // third arg overwrites the second slot
  }
  const auto snap = find_thread("t.args");
  ASSERT_EQ(snap.events.size(), 2u);
  const TraceEvent& end = snap.events[1];
  Tracer& tracer = Tracer::instance();
  ASSERT_EQ(end.type, EventType::kEnd);
  EXPECT_EQ(snap.events[0].arg1_name, 0u);  // begin carries no args
  EXPECT_EQ(tracer.name_of(end.arg1_name), "bytes");
  EXPECT_EQ(end.arg1, 123u);
  EXPECT_EQ(tracer.name_of(end.arg2_name), "count_v2");
  EXPECT_EQ(end.arg2, 9u);
}

TEST(Trace, ThreadsRecordIntoTheirOwnRings) {
  reset_tracer();
  constexpr int kSpans = 50;
  auto work = [](const char* name) {
    Tracer::set_thread_name(name);
    for (int i = 0; i < kSpans; ++i) {
      DKFAC_TRACE_SCOPE("threads.work");
    }
  };
  std::thread a(work, "t.worker.a");
  std::thread b(work, "t.worker.b");
  a.join();
  b.join();
  const auto snap_a = find_thread("t.worker.a");
  const auto snap_b = find_thread("t.worker.b");
  EXPECT_EQ(snap_a.events.size(), 2u * kSpans);
  EXPECT_EQ(snap_b.events.size(), 2u * kSpans);
  EXPECT_NE(snap_a.tid, snap_b.tid);
  EXPECT_EQ(Tracer::instance().aggregate_count("threads.work"), 2u * kSpans);
}

TEST(Trace, RingWrapDropsOldestAndCountsIt) {
  reset_tracer(/*ring_capacity=*/8);
  Tracer::set_thread_name("t.wrap");
  for (int i = 0; i < 20; ++i) {
    DKFAC_TRACE_COUNTER("wrap.counter", i);
  }
  const auto snap = find_thread("t.wrap");
  ASSERT_EQ(snap.events.size(), 8u);
  EXPECT_EQ(snap.dropped, 12u);
  EXPECT_GE(Tracer::instance().dropped_events(), 12u);
  // Survivors are the NEWEST 8 samples, oldest-first.
  for (size_t i = 0; i < snap.events.size(); ++i) {
    EXPECT_EQ(snap.events[i].type, EventType::kCounter);
    EXPECT_EQ(snap.events[i].arg1, 12u + i);
  }
}

TEST(Trace, AggregatesSurviveRingWrap) {
  reset_tracer(/*ring_capacity=*/4);
  Tracer::set_thread_name("t.agg");
  constexpr int kSpans = 100;
  for (int i = 0; i < kSpans; ++i) {
    DKFAC_TRACE_SCOPE("agg.wrapped");
  }
  const auto snap = find_thread("t.agg");
  EXPECT_LE(snap.events.size(), 4u);
  EXPECT_EQ(Tracer::instance().aggregate_count("agg.wrapped"),
            static_cast<uint64_t>(kSpans));
  EXPECT_GT(Tracer::instance().aggregate_seconds("agg.wrapped"), 0.0);
}

TEST(Trace, ClearKeepsInternedIdsAndThreads) {
  reset_tracer();
  Tracer::set_thread_name("t.clear");
  Tracer& tracer = Tracer::instance();
  const uint32_t id = tracer.intern("clear.sticky");
  {
    DKFAC_TRACE_SCOPE("clear.sticky");
  }
  tracer.clear();
  EXPECT_EQ(tracer.intern("clear.sticky"), id);  // call-site statics stay valid
  EXPECT_EQ(tracer.aggregate_count("clear.sticky"), 0u);
  EXPECT_EQ(find_thread("t.clear").events.size(), 0u);
}

TEST(Trace, DisabledMacrosEmitNothing) {
  reset_tracer();
  Tracer::set_thread_name("t.disabled");
  {
    DKFAC_TRACE_SCOPE("disabled.warm");  // warm the call-site statics
  }
  Tracer::instance().clear();
  Tracer::instance().disable();
  {
    DKFAC_TRACE_SCOPE("disabled.warm");
    DKFAC_TRACE_SCOPE_NAMED(span, "disabled.named");
    EXPECT_FALSE(span.active());
    span.set_arg("ignored", 1);
    DKFAC_TRACE_INSTANT("disabled.instant");
    DKFAC_TRACE_COUNTER("disabled.counter", 42);
  }
  Tracer::instance().enable();  // re-enable so snapshot reflects the ring
  EXPECT_EQ(find_thread("t.disabled").events.size(), 0u);
  EXPECT_EQ(Tracer::instance().aggregate_count("disabled.warm"), 0u);
}

// ---- exporter --------------------------------------------------------------

TEST(TraceExport, JsonRoundTripsThroughIndependentParser) {
  reset_tracer();
  Tracer::set_thread_name("t.export");
  Tracer& tracer = Tracer::instance();
  {
    DKFAC_TRACE_SCOPE_NAMED(span, "export.span \"quoted\"");
    span.set_arg("bytes", 4096);
    span.set_arg("route", 2);
  }
  DKFAC_TRACE_INSTANT("export.instant");
  DKFAC_TRACE_COUNTER("export.counter", 99);

  std::ostringstream out;
  ExportOptions opts;
  opts.pid = 3;
  opts.process_name = "rank 3";
  write_chrome_trace(out, opts);

  const JsonValue root = parse_json(out.str());
  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("displayTimeUnit").str(), "ms");
  ASSERT_TRUE(root.at("traceEvents").is_array());
  const auto& events = root.at("traceEvents").array();

  bool saw_process = false, saw_thread = false, saw_begin = false,
       saw_end = false, saw_instant = false, saw_counter = false;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.is_object());
    EXPECT_EQ(static_cast<int>(e.at("pid").number()), 3);
    const std::string& ph = e.at("ph").str();
    const std::string& name = e.at("name").str();
    if (ph == "M" && name == "process_name") {
      saw_process = e.at("args").at("name").str() == "rank 3";
    }
    if (ph == "M" && name == "thread_name" &&
        e.at("args").at("name").str() == "t.export") {
      saw_thread = true;
    }
    if (name == "export.span \"quoted\"") {
      EXPECT_GE(e.at("ts").number(), 0.0);
      if (ph == "B") {
        saw_begin = true;
        EXPECT_FALSE(e.has("args"));
      } else if (ph == "E") {
        saw_end = true;
        EXPECT_EQ(e.at("args").at("bytes").number(), 4096.0);
        EXPECT_EQ(e.at("args").at("route").number(), 2.0);
      }
    }
    if (name == "export.instant") {
      EXPECT_EQ(ph, "i");
      EXPECT_EQ(e.at("s").str(), "t");
      saw_instant = true;
    }
    if (name == "export.counter") {
      EXPECT_EQ(ph, "C");
      EXPECT_EQ(e.at("args").at("value").number(), 99.0);
      saw_counter = true;
    }
  }
  EXPECT_TRUE(saw_process);
  EXPECT_TRUE(saw_thread);
  EXPECT_TRUE(saw_begin);
  EXPECT_TRUE(saw_end);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
  (void)tracer;
}

TEST(TraceExport, DroppedEventsSurfaceAsCounter) {
  reset_tracer(/*ring_capacity=*/4);
  Tracer::set_thread_name("t.dropnote");
  for (int i = 0; i < 10; ++i) {
    DKFAC_TRACE_INSTANT("dropnote.instant");
  }
  std::ostringstream out;
  write_chrome_trace(out);
  const JsonValue root = parse_json(out.str());
  bool found = false;
  for (const JsonValue& e : root.at("traceEvents").array()) {
    if (e.at("name").str() == "trace.dropped_events") {
      EXPECT_EQ(e.at("ph").str(), "C");
      EXPECT_GE(e.at("args").at("value").number(), 6.0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

// ---- multi-rank merge ------------------------------------------------------

TEST(TraceMerge, RankTracePathInsertsBeforeExtension) {
  EXPECT_EQ(rank_trace_path("trace.json", 2), "trace.rank2.json");
  EXPECT_EQ(rank_trace_path("/out/run.v1/trace.json", 0),
            "/out/run.v1/trace.rank0.json");
  EXPECT_EQ(rank_trace_path("trace", 1), "trace.rank1");
  // A dot in a directory name is not an extension.
  EXPECT_EQ(rank_trace_path("/out/run.v1/trace", 3), "/out/run.v1/trace.rank3");
}

TEST(TraceMerge, MergesRanksOntoOneEpochAlignedTimeline) {
  reset_tracer();
  Tracer::set_thread_name("t.merge");
  Tracer& tracer = Tracer::instance();
  const uint32_t id = tracer.intern("merge.mark");
  const Ticks tick = now_ticks();
  tracer.emit(EventType::kInstant, id, 0, 0, 0, 0, tick);

  const std::string dir = ::testing::TempDir();
  const std::string base = dir + "dkfac_merge_trace.json";
  const std::string path0 = rank_trace_path(base, 0);
  const std::string path1 = rank_trace_path(base, 1);

  // Simulate two ranks observing the same physical instant with their own
  // barrier-stamped epochs: exported ts must be tick-minus-epoch for each.
  const Ticks delta0 = 1000000;
  const Ticks delta1 = 2500000;
  const double expected0 = static_cast<double>(delta0) * kSecondsPerTick * 1e6;
  const double expected1 = static_cast<double>(delta1) * kSecondsPerTick * 1e6;
  tracer.set_epoch(tick - delta0);
  ExportOptions opts0;
  opts0.pid = 0;
  write_chrome_trace_file(path0, opts0);
  tracer.set_epoch(tick - delta1);
  ExportOptions opts1;
  opts1.pid = 1;
  write_chrome_trace_file(path1, opts1);

  merge_chrome_traces({path0, path1}, base);

  std::ifstream in(base);
  std::ostringstream buf;
  buf << in.rdbuf();
  const JsonValue root = parse_json(buf.str());
  double ts0 = -1.0, ts1 = -1.0;
  for (const JsonValue& e : root.at("traceEvents").array()) {
    if (e.at("name").str() != "merge.mark") continue;
    if (static_cast<int>(e.at("pid").number()) == 0) ts0 = e.at("ts").number();
    if (static_cast<int>(e.at("pid").number()) == 1) ts1 = e.at("ts").number();
  }
  EXPECT_NEAR(ts0, expected0, 0.01);
  EXPECT_NEAR(ts1, expected1, 0.01);
}

TEST(TraceMerge, RejectsMalformedInput) {
  const std::string bad = ::testing::TempDir() + "dkfac_bad_trace.json";
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "{\"traceEvents\": \"not ours\"}\n";
  }
  const std::string merged = ::testing::TempDir() + "dkfac_bad_merged.json";
  EXPECT_THROW(merge_chrome_traces({bad}, merged), Error);
  EXPECT_THROW(merge_chrome_traces({}, merged), Error);
  EXPECT_THROW(
      merge_chrome_traces({::testing::TempDir() + "does_not_exist.json"},
                          merged),
      Error);
}

// ---- allocation contract ---------------------------------------------------

TEST(TraceAlloc, SteadyStateEmissionAllocatesNothing) {
  reset_tracer();
  Tracer::set_thread_name("t.alloc");
  // Warm-up: register this thread's ring and intern every name (all longer
  // than SSO so a hidden std::string copy would show up as an allocation).
  for (int i = 0; i < 4; ++i) {
    DKFAC_TRACE_SCOPE_NAMED(span, "alloc.steady_state.span.long_name");
    span.set_arg("alloc.steady_state.bytes_arg", i);
    DKFAC_TRACE_INSTANT("alloc.steady_state.instant.long_name");
    DKFAC_TRACE_COUNTER("alloc.steady_state.counter.long_name", i);
  }

  const uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {  // far past the ring: wrap included
    DKFAC_TRACE_SCOPE_NAMED(span, "alloc.steady_state.span.long_name");
    span.set_arg("alloc.steady_state.bytes_arg", static_cast<uint64_t>(i));
    DKFAC_TRACE_INSTANT("alloc.steady_state.instant.long_name");
    DKFAC_TRACE_COUNTER("alloc.steady_state.counter.long_name", i);
  }
  const uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "tracing hot path allocated " << (after - before) << " times";
}

TEST(TraceAlloc, DisabledMacrosAllocateNothing) {
  reset_tracer();
  {
    DKFAC_TRACE_SCOPE("alloc.disabled.warmed_site");  // init call-site static
  }
  Tracer::instance().disable();
  const uint64_t before = g_new_calls.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    DKFAC_TRACE_SCOPE("alloc.disabled.warmed_site");
    DKFAC_TRACE_SCOPE_NAMED(span, "alloc.disabled.named_site");
    span.set_arg("alloc.disabled.arg_name_long", 1);
    DKFAC_TRACE_INSTANT("alloc.disabled.instant_site");
    DKFAC_TRACE_COUNTER("alloc.disabled.counter_site", i);
  }
  const uint64_t after = g_new_calls.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace dkfac::obs
