// Elastic fault tolerance, end to end.
//
// The chaos case is the headline: a 4-rank socket-backend training run in
// which rank 2 SIGKILLs itself mid-epoch. The job must detect the death
// (typed PeerFailure within one comm deadline), re-form as a 3-rank group
// through the persistent rendezvous, resume from the last durable
// epoch-tagged checkpoint, and still converge — final loss within 0.05 of
// an undisturbed 4-rank baseline — with the recovery visible in the
// elastic.* metrics counters.
//
// Ordering note: the forked chaos case MUST run before any case that
// spawns OpenMP teams in this process (thread-backed training, or even a
// model forward), for the same fork()-safety reason documented in
// socket_train_parity_test.cpp. Keep it first in this file.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "train/elastic.hpp"
#include "train/trainer.hpp"

namespace dkfac::train {
namespace {

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 128;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig tiny_config() {
  TrainConfig config;
  config.local_batch = 8;
  config.epochs = 3;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 16;
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(2);
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ElasticTrain, SurvivesRankDeathMidRunAndConverges) {
  const std::string dir = ::testing::TempDir();
  const TrainConfig config = tiny_config();

  elastic::ElasticOptions opts;
  opts.initial_ranks = 4;
  opts.min_ranks = 2;
  opts.comm_timeout_s = 10.0;
  opts.rendezvous_timeout_s = 20.0;

  // Undisturbed 4-rank baseline (also the elastic happy path: generation 0
  // runs to completion with zero re-formations). Checkpoints resume — a
  // stale one from an earlier ctest invocation would skip training
  // entirely — so start every run from a clean slate.
  opts.checkpoint_path = dir + "dkfac_elastic_baseline.ckpt";
  std::remove(opts.checkpoint_path.c_str());
  const elastic::ElasticResult baseline =
      elastic::run_elastic(tiny_cnn_factory(), tiny_spec(), config, opts);
  ASSERT_TRUE(baseline.completed) << "exit code " << baseline.exit_code;
  EXPECT_EQ(baseline.reformations, 0);
  EXPECT_EQ(baseline.final_world, 4);

  // Chaos: rank 2 SIGKILLs itself at the top of (epoch 1, step 1) — after
  // the epoch-0 checkpoint is durable, before epoch 1 finishes. Survivors
  // must re-form as a 3-rank generation 1 and resume from epoch 1.
  TrainConfig chaos_config = config;
  chaos_config.metrics_path = dir + "dkfac_elastic_chaos_metrics.jsonl";
  elastic::ElasticOptions chaos_opts = opts;
  chaos_opts.checkpoint_path = dir + "dkfac_elastic_chaos.ckpt";
  std::remove(chaos_opts.checkpoint_path.c_str());
  std::remove(chaos_config.metrics_path.c_str());
  chaos_opts.kill = elastic::KillSpec{/*rank=*/2, /*epoch=*/1, /*step=*/1};
  const elastic::ElasticResult chaos = elastic::run_elastic(
      tiny_cnn_factory(), tiny_spec(), chaos_config, chaos_opts);
  ASSERT_TRUE(chaos.completed) << "exit code " << chaos.exit_code;
  EXPECT_GE(chaos.reformations, 1);
  EXPECT_EQ(chaos.final_world, 3);
  EXPECT_NEAR(chaos.final_train_loss, baseline.final_train_loss, 0.05);

  // The surviving group kept checkpointing: the durable tag reached the
  // final epoch.
  EXPECT_EQ(
      elastic::read_elastic_epoch_tag(chaos_opts.checkpoint_path).value_or(-1),
      config.epochs - 1);

  // Recovery is observable: the metrics stream carries the elastic
  // counters, and the final records (written by generation ≥ 1's rank 0)
  // show at least one re-formation.
  const std::string metrics = slurp(chaos_config.metrics_path);
  ASSERT_FALSE(metrics.empty());
  EXPECT_NE(metrics.find("\"elastic.reformations\""), std::string::npos);
  EXPECT_NE(metrics.find("\"elastic.skipped_factor_steps\""),
            std::string::npos);
  EXPECT_NE(metrics.find("\"elastic.reformations\":1"), std::string::npos);
}

TEST(ElasticTrain, FailsCleanlyBelowMinRanks) {
  // Killing a rank out of a 2-rank group with min_ranks=2 is unsurvivable:
  // the supervisor must terminate the job and report a failure, not hang.
  const std::string dir = ::testing::TempDir();
  TrainConfig config = tiny_config();
  config.epochs = 2;
  elastic::ElasticOptions opts;
  opts.initial_ranks = 2;
  opts.min_ranks = 2;
  opts.comm_timeout_s = 5.0;
  opts.rendezvous_timeout_s = 15.0;
  opts.checkpoint_path = dir + "dkfac_elastic_unsurvivable.ckpt";
  std::remove(opts.checkpoint_path.c_str());
  opts.kill = elastic::KillSpec{/*rank=*/1, /*epoch=*/0, /*step=*/2};
  const elastic::ElasticResult result =
      elastic::run_elastic(tiny_cnn_factory(), tiny_spec(), config, opts);
  EXPECT_FALSE(result.completed);
  EXPECT_NE(result.exit_code, 0);
}

TEST(ElasticRegrow, KilledRankIsReplacedAndWorldGrowsBack) {
  // Scale-up headline (forked — keep before the OpenMP cases): rank 2
  // SIGKILLs itself mid-epoch, and with a respawn budget the supervisor
  // forks a replacement that joins at the next generation boundary —
  // shrink, recover, regrow to the initial world, and still converge to
  // within 0.05 of the undisturbed baseline.
  const std::string dir = ::testing::TempDir();
  TrainConfig config = tiny_config();
  // One epoch more than the shrink case: the restarted epoch rebuilds
  // momentum and K-FAC factor state from scratch, and the extra epoch lets
  // both runs settle back to the same attractor for the 0.05 loss check.
  config.epochs = 4;

  elastic::ElasticOptions opts;
  opts.initial_ranks = 4;
  opts.min_ranks = 2;
  opts.comm_timeout_s = 10.0;
  opts.rendezvous_timeout_s = 20.0;

  opts.checkpoint_path = dir + "dkfac_regrow_baseline.ckpt";
  std::remove(opts.checkpoint_path.c_str());
  const elastic::ElasticResult baseline =
      elastic::run_elastic(tiny_cnn_factory(), tiny_spec(), config, opts);
  ASSERT_TRUE(baseline.completed) << "exit code " << baseline.exit_code;
  EXPECT_EQ(baseline.respawns, 0);
  EXPECT_EQ(baseline.joins, 0);

  TrainConfig chaos_config = config;
  chaos_config.metrics_path = dir + "dkfac_regrow_metrics.jsonl";
  elastic::ElasticOptions chaos_opts = opts;
  chaos_opts.checkpoint_path = dir + "dkfac_regrow_chaos.ckpt";
  chaos_opts.respawns_per_rank = 1;  // max_ranks defaults to initial_ranks
  std::remove(chaos_opts.checkpoint_path.c_str());
  std::remove(chaos_config.metrics_path.c_str());
  chaos_opts.kill = elastic::KillSpec{/*rank=*/2, /*epoch=*/1, /*step=*/1};
  const elastic::ElasticResult chaos = elastic::run_elastic(
      tiny_cnn_factory(), tiny_spec(), chaos_config, chaos_opts);
  ASSERT_TRUE(chaos.completed) << "exit code " << chaos.exit_code;
  EXPECT_GE(chaos.reformations, 1);
  EXPECT_EQ(chaos.final_world, 4) << "the world did not grow back";
  EXPECT_GE(chaos.respawns, 1);
  EXPECT_GE(chaos.joins, 1);
  EXPECT_NEAR(chaos.final_train_loss, baseline.final_train_loss, 0.05);

  // The regrow is observable: rank 0's metrics stream carries the scale-up
  // counters, with the join recorded in the final generation's records.
  const std::string metrics = slurp(chaos_config.metrics_path);
  ASSERT_FALSE(metrics.empty());
  EXPECT_NE(metrics.find("\"elastic.joins\""), std::string::npos);
  EXPECT_NE(metrics.find("\"elastic.respawns\""), std::string::npos);
  EXPECT_NE(metrics.find("\"elastic.joins\":1"), std::string::npos);
}

TEST(ElasticRegrow, LateJoinerIsAdmittedViaRegrowNudge) {
  // Forked — keep before the OpenMP cases. A long respawn backoff makes
  // the survivors re-form WITHOUT the replacement; when it finally parks
  // at the rendezvous the supervisor must nudge the running group
  // (SIGUSR1 → RegrowRequest at the next step) into re-forming so the
  // joiner is admitted — the generation-boundary path, not the
  // form-together path. Steps are slowed so the shrunk group is still
  // training when the joiner arrives.
  const std::string dir = ::testing::TempDir();
  TrainConfig config = tiny_config();
  config.epochs = 4;
  config.step_probe = [](int, int64_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  };

  elastic::ElasticOptions opts;
  opts.initial_ranks = 4;
  opts.min_ranks = 2;
  opts.comm_timeout_s = 10.0;
  opts.rendezvous_timeout_s = 20.0;
  opts.respawns_per_rank = 1;
  opts.respawn_backoff_s = 1.5;  // survivors re-form well before this
  opts.checkpoint_path = dir + "dkfac_regrow_nudge.ckpt";
  std::remove(opts.checkpoint_path.c_str());
  opts.kill = elastic::KillSpec{/*rank=*/2, /*epoch=*/1, /*step=*/1};

  const elastic::ElasticResult result =
      elastic::run_elastic(tiny_cnn_factory(), tiny_spec(), config, opts);
  ASSERT_TRUE(result.completed) << "exit code " << result.exit_code;
  EXPECT_EQ(result.final_world, 4) << "the late joiner was never admitted";
  EXPECT_EQ(result.respawns, 1);
  EXPECT_GE(result.joins, 1);
  // At least two boundaries: the shrink re-formation and the regrow.
  EXPECT_GE(result.reformations, 2);
}

TEST(ElasticStraggler, SlowRankShedsFactorUpdatesForAllRanks) {
  // Thread-backed (spawns OpenMP — keep after the forked cases): rank 3
  // reports 200 ms of simulated lag into every straggler vote, far past
  // the 50 ms slack, so every sheddable factor-update step is shed. The
  // decision is collective — the run completing at all proves all ranks
  // agreed on every vote (a split decision desynchronises the collective
  // sequence and deadlocks).
  TrainConfig config = tiny_config();
  config.epochs = 2;
  config.straggler_slack_s = 0.05;
  config.straggler_lag_hook = [](int rank, int64_t) {
    return rank == 3 ? 0.2 : 0.0;
  };
  const TrainResult slacked =
      train_distributed(tiny_cnn_factory(), tiny_spec(), config, 4);
  // 8 steps, factor updates due every step (with_update_freq(2) puts the
  // factor interval at max(1, 2/10) = 1), step 0 never sheddable: 7 shed.
  EXPECT_EQ(slacked.skipped_factor_steps, 7u);
  EXPECT_GT(slacked.epochs.back().train_accuracy, 0.25f);

  // Slack off (the default): identical run, nothing shed.
  config.straggler_slack_s = 0.0;
  const TrainResult plain =
      train_distributed(tiny_cnn_factory(), tiny_spec(), config, 4);
  EXPECT_EQ(plain.skipped_factor_steps, 0u);
}

TEST(ElasticCheckpoint, EpochTagRoundTrips) {
  Rng rng_a(21), rng_b(22);
  nn::LayerPtr original = nn::simple_cnn(3, 4, rng_a, 4);
  nn::LayerPtr restored = nn::simple_cnn(3, 4, rng_b, 4);
  const std::string path = ::testing::TempDir() + "dkfac_elastic_tag.ckpt";

  elastic::save_elastic_checkpoint(*original, 7, path);
  EXPECT_EQ(elastic::read_elastic_epoch_tag(path).value_or(-1), 7);
  EXPECT_EQ(elastic::load_elastic_checkpoint(*restored, path), 7);

  auto pa = original->parameters();
  auto pb = restored->parameters();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(pa[i]->value == pb[i]->value) << pa[i]->name;
  }
}

TEST(ElasticCheckpoint, MissingOrGarbageFilesAreNotCheckpoints) {
  const std::string dir = ::testing::TempDir();
  EXPECT_EQ(elastic::read_elastic_epoch_tag(dir + "does_not_exist.ckpt"),
            std::nullopt);
  EXPECT_EQ(elastic::resolve_elastic_checkpoint(dir + "does_not_exist.ckpt"),
            std::nullopt);

  const std::string garbage = dir + "dkfac_elastic_garbage.ckpt";
  {
    std::ofstream out(garbage, std::ios::binary | std::ios::trunc);
    out << "this is not a checkpoint";
  }
  EXPECT_EQ(elastic::read_elastic_epoch_tag(garbage), std::nullopt);

  Rng rng(23);
  nn::LayerPtr model = nn::simple_cnn(3, 4, rng, 4);
  EXPECT_THROW(elastic::load_elastic_checkpoint(*model, garbage), Error);
}

TEST(ElasticCheckpoint, TruncatedNewestFallsBackToPreviousEpoch) {
  // Regression for the torn-write rejoin: each save rotates the prior file
  // to `.prev`, and a newest entry whose tail is truncated (the classic
  // crash-mid-write shape) must fail its CRC footer and resolve to the
  // previous intact epoch — never be half-loaded, never a hang or crash.
  Rng rng(31);
  nn::LayerPtr model = nn::simple_cnn(3, 4, rng, 4);
  const std::string path =
      ::testing::TempDir() + "dkfac_elastic_fallback.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  elastic::save_elastic_checkpoint(*model, 1, path);
  elastic::save_elastic_checkpoint(*model, 2, path);

  // Intact: the newest epoch wins, no fallback.
  auto resolved = elastic::resolve_elastic_checkpoint(path);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(resolved->epoch, 2);
  EXPECT_FALSE(resolved->fell_back);

  // Truncate the tail of the newest entry.
  const std::string full = slurp(path);
  ASSERT_GT(full.size(), 16u);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(), static_cast<std::streamsize>(full.size() - 9));
  }
  EXPECT_EQ(elastic::read_elastic_epoch_tag(path), std::nullopt);
  resolved = elastic::resolve_elastic_checkpoint(path);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_TRUE(resolved->fell_back);
  EXPECT_EQ(resolved->epoch, 1);
  Rng rng2(32);
  nn::LayerPtr restored = nn::simple_cnn(3, 4, rng2, 4);
  EXPECT_EQ(elastic::load_elastic_checkpoint(*restored, resolved->file), 1);

  // A flipped payload byte (bit rot) takes the same fallback.
  {
    std::string corrupt = full;
    corrupt[corrupt.size() / 2] ^= 0x20;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  }
  resolved = elastic::resolve_elastic_checkpoint(path);
  ASSERT_TRUE(resolved.has_value());
  EXPECT_TRUE(resolved->fell_back);
  EXPECT_EQ(resolved->epoch, 1);
}

TEST(ElasticCheckpoint, CorruptionWithoutIntactPreviousIsTypedError) {
  Rng rng(33);
  nn::LayerPtr model = nn::simple_cnn(3, 4, rng, 4);
  const std::string path =
      ::testing::TempDir() + "dkfac_elastic_no_fallback.ckpt";
  std::remove(path.c_str());
  std::remove((path + ".prev").c_str());

  // First save: no `.prev` exists yet. Corrupting the only copy must be a
  // typed Error — restarting silently from random weights would be worse
  // than failing.
  elastic::save_elastic_checkpoint(*model, 1, path);
  std::string bytes = slurp(path);
  bytes[bytes.size() / 2] ^= 0x01;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_THROW((void)elastic::resolve_elastic_checkpoint(path), Error);

  // A missing newest with only a stale `.prev` is a fresh start, not a
  // resurrection of an old epoch.
  elastic::save_elastic_checkpoint(*model, 1, path);
  elastic::save_elastic_checkpoint(*model, 2, path);
  std::remove(path.c_str());
  EXPECT_EQ(elastic::resolve_elastic_checkpoint(path), std::nullopt);
}

}  // namespace
}  // namespace dkfac::train
