// CommStats invariants of the lossy factor-compression path.
//
// After a compressed training run the byte-accounting chain must be
// internally consistent: dense ≥ packed ≥ encoded for the factor
// reduction, the encoded bytes (not the fp32-equivalent) are what the
// allreduce counter carries, and the decomposition allgather shrinks the
// same way. Runs are deterministic, so every relation is asserted
// exactly — no tolerances.
#include <gtest/gtest.h>

#include <cstdint>

#include "comm/codec.hpp"
#include "data/synthetic.hpp"
#include "nn/resnet.hpp"
#include "train/trainer.hpp"

namespace dkfac::train {
namespace {

data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 64;
  spec.val_size = 32;
  spec.noise = 0.6f;
  spec.seed = 99;
  return spec;
}

TrainResult run(comm::Precision precision, bool symmetric, bool overlap) {
  TrainConfig config;
  config.local_batch = 8;
  config.epochs = 1;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.eval_batch = 16;
  config.overlap_comm = overlap;
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(2);
  config.kfac.symmetric_comm = symmetric;
  config.kfac.factor_precision = precision;
  return train_distributed(
      [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); }, tiny_spec(),
      config, /*world_size=*/2);
}

TEST(CompressionStats, ReductionChainHoldsAtEveryPrecision) {
  const TrainResult fp32 = run(comm::Precision::kFp32, true, false);
  const TrainResult fp16 = run(comm::Precision::kFp16, true, false);
  const TrainResult bf16 = run(comm::Precision::kBf16, true, false);

  // fp32 passthrough: encoding degenerates to the packed payload.
  EXPECT_GT(fp32.comm_stats.factor_dense_bytes,
            fp32.comm_stats.factor_packed_bytes);
  EXPECT_EQ(fp32.comm_stats.factor_packed_bytes,
            fp32.comm_stats.factor_encoded_bytes);

  for (const TrainResult* lossy : {&fp16, &bf16}) {
    const comm::CommStats& st = lossy->comm_stats;
    // dense ≥ packed ≥ encoded, strictly at a 16-bit precision.
    EXPECT_GT(st.factor_dense_bytes, st.factor_packed_bytes);
    EXPECT_GT(st.factor_packed_bytes, st.factor_encoded_bytes);
    // Identical schedule → identical structural payloads.
    EXPECT_EQ(st.factor_dense_bytes, fp32.comm_stats.factor_dense_bytes);
    EXPECT_EQ(st.factor_packed_bytes, fp32.comm_stats.factor_packed_bytes);
    // Encoded elements are 2 bytes + at most one pad slot per factor, so
    // the encoded payload is never more than half the packed one plus the
    // per-exchange padding, and never less than half.
    EXPECT_GE(st.factor_encoded_bytes, st.factor_packed_bytes / 2);
    // The encoded bytes are what the collectives actually carried: the
    // run-to-run allreduce gap is exactly the codec saving (gradient and
    // epoch-metric traffic are identical).
    EXPECT_EQ(fp32.comm_stats.allreduce_bytes - st.allreduce_bytes,
              st.factor_packed_bytes - st.factor_encoded_bytes);
    EXPECT_EQ(st.allreduce_calls, fp32.comm_stats.allreduce_calls);
    // The decomposition allgather is codec-encoded too.
    EXPECT_GT(fp32.comm_stats.decomp_packed_bytes, st.decomp_packed_bytes);
    EXPECT_EQ(st.decomp_dense_bytes, fp32.comm_stats.decomp_dense_bytes);
    EXPECT_EQ(fp32.comm_stats.allgather_bytes - st.allgather_bytes,
              fp32.comm_stats.decomp_packed_bytes - st.decomp_packed_bytes);
  }
}

TEST(CompressionStats, DensePathEncodesTooWhenPackingIsOff) {
  // symmetric_comm off: packed degenerates to dense, but a lossy precision
  // still halves what the collective carries.
  const TrainResult dense32 = run(comm::Precision::kFp32, false, false);
  const TrainResult dense16 = run(comm::Precision::kFp16, false, false);
  EXPECT_EQ(dense32.comm_stats.factor_dense_bytes,
            dense32.comm_stats.factor_packed_bytes);
  EXPECT_EQ(dense32.comm_stats.factor_packed_bytes,
            dense32.comm_stats.factor_encoded_bytes);
  EXPECT_EQ(dense16.comm_stats.factor_dense_bytes,
            dense16.comm_stats.factor_packed_bytes);
  EXPECT_GT(dense16.comm_stats.factor_packed_bytes,
            dense16.comm_stats.factor_encoded_bytes);
}

TEST(CompressionStats, OverlapAndSyncAgreeBitwiseAndByteForByte) {
  // The async pipeline must ship exactly the same encoded bytes as the
  // synchronous path and land on bitwise-identical training results —
  // batching must not change a lossy reduction any more than a lossless
  // one.
  const TrainResult sync = run(comm::Precision::kBf16, true, false);
  const TrainResult overlap = run(comm::Precision::kBf16, true, true);
  EXPECT_EQ(sync.comm_stats.factor_encoded_bytes,
            overlap.comm_stats.factor_encoded_bytes);
  EXPECT_EQ(sync.comm_stats.allreduce_bytes, overlap.comm_stats.allreduce_bytes);
  ASSERT_EQ(sync.epochs.size(), overlap.epochs.size());
  EXPECT_EQ(sync.epochs.back().train_loss, overlap.epochs.back().train_loss);
  EXPECT_EQ(sync.final_val_accuracy, overlap.final_val_accuracy);
}

TEST(CompressionStats, LossyRunsDivergeFromFp32ButStayDeterministic) {
  const TrainResult a = run(comm::Precision::kBf16, true, false);
  const TrainResult b = run(comm::Precision::kBf16, true, false);
  const TrainResult fp32 = run(comm::Precision::kFp32, true, false);
  // Determinism: the identical lossy run reproduces bit for bit.
  EXPECT_EQ(a.epochs.back().train_loss, b.epochs.back().train_loss);
  EXPECT_EQ(a.final_val_accuracy, b.final_val_accuracy);
  // Lossiness: the compressed run is NOT the fp32 run (codec engaged).
  EXPECT_NE(a.epochs.back().train_loss, fp32.epochs.back().train_loss);
}

}  // namespace
}  // namespace dkfac::train
