#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "comm/codec.hpp"
#include "common/error.hpp"
#include "nn/resnet.hpp"

namespace dkfac::train {
namespace {

// Tiny-but-real setup: 8×8 images, 4 classes, small MLP-free CNN path.
data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 256;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig tiny_config(int epochs = 3) {
  TrainConfig config;
  config.local_batch = 32;
  config.epochs = epochs;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 64;
  return config;
}

TEST(Trainer, SgdLearnsTinyProblem) {
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), tiny_config(6));
  ASSERT_EQ(result.epochs.size(), 6u);
  // Loss decreases and accuracy clears chance (0.25) comfortably.
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
  EXPECT_GT(result.final_val_accuracy, 0.5f);
  EXPECT_EQ(result.iterations, 6 * (256 / 32));
}

TEST(Trainer, KfacRunsAndLearns) {
  TrainConfig config = tiny_config(6);
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(10);
  TrainResult result =
      train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_GT(result.final_val_accuracy, 0.5f);
}

TEST(Trainer, DistributedMatchesSingleRankGlobalBatch) {
  // 2 ranks × batch 16 must equal 1 rank × batch 32 (same global batch,
  // deterministic collectives) — the bitwise data-parallel equivalence the
  // design doc promises (§ Key design decisions, determinism).
  TrainConfig single = tiny_config(2);
  single.local_batch = 32;
  TrainConfig dist = single;
  dist.local_batch = 16;

  TrainResult r1 = train_single(tiny_cnn_factory(), tiny_spec(), single);
  TrainResult r2 = train_distributed(tiny_cnn_factory(), tiny_spec(), dist, 2);

  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_NEAR(r1.epochs[e].val_accuracy, r2.epochs[e].val_accuracy, 0.08f)
        << "epoch " << e;
  }
  EXPECT_NEAR(r1.final_val_accuracy, r2.final_val_accuracy, 0.08f);
}

TEST(Trainer, DistributedKfacConvergesAcrossRanks) {
  TrainConfig config = tiny_config(3);
  config.local_batch = 16;
  config.use_kfac = true;
  config.kfac.with_update_freq(5);
  TrainResult result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), config, 2);
  EXPECT_EQ(result.iterations, 3 * (256 / 32));
  EXPECT_GT(result.final_val_accuracy, 0.3f);
}

TEST(Trainer, CommStatsTrackKfacSavings) {
  // With a large update interval, total bytes must be dominated by the
  // per-iteration gradient allreduce, not K-FAC traffic.
  TrainConfig frequent = tiny_config(2);
  frequent.local_batch = 16;
  frequent.use_kfac = true;
  frequent.kfac.factor_update_freq = 1;
  frequent.kfac.inv_update_freq = 1;

  TrainConfig rare = frequent;
  rare.kfac.factor_update_freq = 8;
  rare.kfac.inv_update_freq = 8;

  TrainResult r_frequent =
      train_distributed(tiny_cnn_factory(), tiny_spec(), frequent, 2);
  TrainResult r_rare = train_distributed(tiny_cnn_factory(), tiny_spec(), rare, 2);
  EXPECT_LT(r_rare.comm_stats.total_bytes(), r_frequent.comm_stats.total_bytes());
}

TEST(Trainer, EpochsToReach) {
  TrainResult result;
  result.epochs = {{1, 0, 0, 0.3f, 0}, {2, 0, 0, 0.6f, 0}, {3, 0, 0, 0.7f, 0}};
  EXPECT_EQ(result.epochs_to_reach(0.5f), 2);
  EXPECT_EQ(result.epochs_to_reach(0.9f), -1);
}

TEST(Trainer, DampingDecayScheduleRuns) {
  TrainConfig config = tiny_config(3);
  config.use_kfac = true;
  config.kfac.damping = 0.1f;
  config.damping_decay_epochs = {1.0f, 2.0f};
  config.damping_decay_factor = 0.5f;
  // Smoke: runs to completion with the decay path exercised.
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_EQ(result.epochs.size(), 3u);
}

TEST(Trainer, UpdateFreqDecayScheduleRuns) {
  TrainConfig config = tiny_config(3);
  config.use_kfac = true;
  config.kfac.with_update_freq(8);
  config.freq_decay_epochs = {1.0f, 2.0f};
  config.freq_decay_factor = 0.5f;
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_EQ(result.epochs.size(), 3u);
  EXPECT_GT(result.final_val_accuracy, 0.25f);
}

TEST(Trainer, InvalidWorldSizeThrows) {
  EXPECT_THROW(
      train_distributed(tiny_cnn_factory(), tiny_spec(), tiny_config(1), 0),
      Error);
}

TEST(Trainer, DecayedDampingAppliesOncePerThreshold) {
  TrainConfig config = tiny_config();
  config.kfac.damping = 0.1f;
  config.damping_decay_epochs = {2.0f, 4.0f};
  config.damping_decay_factor = 0.5f;
  // Recomputed from the base each epoch: each threshold contributes its
  // factor exactly once, no matter how many epochs sit past it.
  EXPECT_FLOAT_EQ(decayed_damping(config, 0), 0.1f);
  EXPECT_FLOAT_EQ(decayed_damping(config, 1), 0.1f);
  EXPECT_FLOAT_EQ(decayed_damping(config, 2), 0.05f);
  EXPECT_FLOAT_EQ(decayed_damping(config, 3), 0.05f);
  EXPECT_FLOAT_EQ(decayed_damping(config, 4), 0.025f);
  EXPECT_FLOAT_EQ(decayed_damping(config, 9), 0.025f);
}

TEST(Trainer, DecayedUpdateFreqsKeepDivisibilityContract) {
  TrainConfig config = tiny_config();
  config.kfac.with_update_freq(100);
  config.freq_decay_epochs = {1.0f, 2.0f, 3.0f};
  config.freq_decay_factor = 0.5f;
  for (int epoch = 0; epoch < 6; ++epoch) {
    const UpdateFreqs freqs = decayed_update_freqs(config, epoch);
    EXPECT_GE(freqs.factor_update_freq, 1) << "epoch " << epoch;
    EXPECT_GE(freqs.inv_update_freq, 1) << "epoch " << epoch;
    EXPECT_EQ(freqs.inv_update_freq % freqs.factor_update_freq, 0)
        << "epoch " << epoch;
    // Must survive the same validation the preconditioner setters run.
    kfac::KfacOptions opts = config.kfac;
    opts.factor_update_freq = freqs.factor_update_freq;
    opts.inv_update_freq = freqs.inv_update_freq;
    EXPECT_NO_THROW(opts.validate()) << "epoch " << epoch;
  }
  EXPECT_EQ(decayed_update_freqs(config, 0).inv_update_freq, 100);
  EXPECT_EQ(decayed_update_freqs(config, 1).inv_update_freq, 50);
  EXPECT_EQ(decayed_update_freqs(config, 2).inv_update_freq, 25);
  // 25/2 rounds to 13, fac snaps to 1 to keep inv % fac == 0.
  EXPECT_EQ(decayed_update_freqs(config, 3).inv_update_freq, 13);
  EXPECT_EQ(decayed_update_freqs(config, 3).factor_update_freq, 1);
  // Decay floors at 1, never 0.
  config.freq_decay_factor = 0.01f;
  EXPECT_EQ(decayed_update_freqs(config, 5).inv_update_freq, 1);
  EXPECT_EQ(decayed_update_freqs(config, 5).factor_update_freq, 1);
}

TEST(Trainer, OverlapCommMatchesSynchronousBitwise) {
  // The overlapped pipeline reorders WHEN communication happens, never
  // WHAT is reduced: per-epoch metrics must match the synchronous path
  // exactly (deterministic collectives + elementwise reductions).
  TrainConfig sync_config = tiny_config(2);
  sync_config.local_batch = 16;
  sync_config.use_kfac = true;
  sync_config.kfac.with_update_freq(4);
  TrainConfig overlap_config = sync_config;
  overlap_config.overlap_comm = true;

  TrainResult sync_result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), sync_config, 2);
  TrainResult overlap_result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), overlap_config, 2);

  ASSERT_EQ(sync_result.epochs.size(), overlap_result.epochs.size());
  for (size_t e = 0; e < sync_result.epochs.size(); ++e) {
    EXPECT_EQ(sync_result.epochs[e].train_loss,
              overlap_result.epochs[e].train_loss)
        << "epoch " << e;
    EXPECT_EQ(sync_result.epochs[e].train_accuracy,
              overlap_result.epochs[e].train_accuracy)
        << "epoch " << e;
    EXPECT_EQ(sync_result.epochs[e].val_accuracy,
              overlap_result.epochs[e].val_accuracy)
        << "epoch " << e;
  }
  EXPECT_EQ(sync_result.final_val_accuracy, overlap_result.final_val_accuracy);

  // The pipeline really ran: per-layer gradients + factor exchanges.
  EXPECT_GT(overlap_result.comm_stats.async.submitted, 0u);
  EXPECT_GT(overlap_result.comm_stats.async.batches, 0u);
  EXPECT_EQ(sync_result.comm_stats.async.submitted, 0u);
}

TEST(Trainer, OverlapCommWithoutKfacAlsoMatches) {
  TrainConfig sync_config = tiny_config(2);
  sync_config.local_batch = 16;
  TrainConfig overlap_config = sync_config;
  overlap_config.overlap_comm = true;

  TrainResult sync_result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), sync_config, 2);
  TrainResult overlap_result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), overlap_config, 2);
  ASSERT_EQ(sync_result.epochs.size(), overlap_result.epochs.size());
  for (size_t e = 0; e < sync_result.epochs.size(); ++e) {
    EXPECT_EQ(sync_result.epochs[e].val_accuracy,
              overlap_result.epochs[e].val_accuracy)
        << "epoch " << e;
  }
}

TEST(Trainer, SteadyStateCommPathNeverTouchesHeap) {
  // The zero-copy transport contract: after the first full iteration every
  // comm-path arena (factor exchange slot, fusion staging) has seen its
  // peak payload, so the rest of training must not grow a single block —
  // under both the synchronous and the overlapped pipeline.
  for (const bool overlap : {false, true}) {
    TrainConfig config = tiny_config(2);
    config.local_batch = 16;
    config.use_kfac = true;
    config.kfac.factor_precision = comm::Precision::kBf16;
    config.kfac.with_update_freq(2);
    config.overlap_comm = overlap;
    TrainResult result =
        train_distributed(tiny_cnn_factory(), tiny_spec(), config, 2);
    EXPECT_GT(result.comm_stats.arena_bytes_reserved, 0u)
        << (overlap ? "overlap" : "sync");
    EXPECT_EQ(result.comm_stats.steady_state_allocs, 0u)
        << (overlap ? "overlap" : "sync");
  }
}

TEST(Trainer, OverlapCommSingleRankRuns) {
  // World size 1: no peers to talk to, but the toggle must still work.
  TrainConfig config = tiny_config(2);
  config.overlap_comm = true;
  config.use_kfac = true;
  config.kfac.with_update_freq(4);
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_EQ(result.epochs.size(), 2u);
  EXPECT_GT(result.final_val_accuracy, 0.25f);
}

}  // namespace
}  // namespace dkfac::train
