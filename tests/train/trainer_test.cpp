#include "train/trainer.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "nn/resnet.hpp"

namespace dkfac::train {
namespace {

// Tiny-but-real setup: 8×8 images, 4 classes, small MLP-free CNN path.
data::SyntheticSpec tiny_spec() {
  data::SyntheticSpec spec;
  spec.num_classes = 4;
  spec.channels = 3;
  spec.height = spec.width = 8;
  spec.grid = 2;
  spec.train_size = 256;
  spec.val_size = 64;
  spec.noise = 0.6f;
  spec.seed = 77;
  return spec;
}

ModelFactory tiny_cnn_factory() {
  return [](Rng& rng) { return nn::simple_cnn(3, 4, rng, 4); };
}

TrainConfig tiny_config(int epochs = 3) {
  TrainConfig config;
  config.local_batch = 32;
  config.epochs = epochs;
  config.lr = {.base_lr = 0.05f, .warmup_epochs = 1.0f};
  config.momentum = 0.9f;
  config.eval_batch = 64;
  return config;
}

TEST(Trainer, SgdLearnsTinyProblem) {
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), tiny_config(6));
  ASSERT_EQ(result.epochs.size(), 6u);
  // Loss decreases and accuracy clears chance (0.25) comfortably.
  EXPECT_LT(result.epochs.back().train_loss, result.epochs.front().train_loss);
  EXPECT_GT(result.final_val_accuracy, 0.5f);
  EXPECT_EQ(result.iterations, 6 * (256 / 32));
}

TEST(Trainer, KfacRunsAndLearns) {
  TrainConfig config = tiny_config(6);
  config.use_kfac = true;
  config.kfac.damping = 0.01f;
  config.kfac.with_update_freq(10);
  TrainResult result =
      train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_GT(result.final_val_accuracy, 0.5f);
}

TEST(Trainer, DistributedMatchesSingleRankGlobalBatch) {
  // 2 ranks × batch 16 must equal 1 rank × batch 32 (same global batch,
  // deterministic collectives) — the bitwise data-parallel equivalence the
  // design doc promises (§ Key design decisions, determinism).
  TrainConfig single = tiny_config(2);
  single.local_batch = 32;
  TrainConfig dist = single;
  dist.local_batch = 16;

  TrainResult r1 = train_single(tiny_cnn_factory(), tiny_spec(), single);
  TrainResult r2 = train_distributed(tiny_cnn_factory(), tiny_spec(), dist, 2);

  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_NEAR(r1.epochs[e].val_accuracy, r2.epochs[e].val_accuracy, 0.08f)
        << "epoch " << e;
  }
  EXPECT_NEAR(r1.final_val_accuracy, r2.final_val_accuracy, 0.08f);
}

TEST(Trainer, DistributedKfacConvergesAcrossRanks) {
  TrainConfig config = tiny_config(3);
  config.local_batch = 16;
  config.use_kfac = true;
  config.kfac.with_update_freq(5);
  TrainResult result =
      train_distributed(tiny_cnn_factory(), tiny_spec(), config, 2);
  EXPECT_EQ(result.iterations, 3 * (256 / 32));
  EXPECT_GT(result.final_val_accuracy, 0.3f);
}

TEST(Trainer, CommStatsTrackKfacSavings) {
  // With a large update interval, total bytes must be dominated by the
  // per-iteration gradient allreduce, not K-FAC traffic.
  TrainConfig frequent = tiny_config(2);
  frequent.local_batch = 16;
  frequent.use_kfac = true;
  frequent.kfac.factor_update_freq = 1;
  frequent.kfac.inv_update_freq = 1;

  TrainConfig rare = frequent;
  rare.kfac.factor_update_freq = 8;
  rare.kfac.inv_update_freq = 8;

  TrainResult r_frequent =
      train_distributed(tiny_cnn_factory(), tiny_spec(), frequent, 2);
  TrainResult r_rare = train_distributed(tiny_cnn_factory(), tiny_spec(), rare, 2);
  EXPECT_LT(r_rare.comm_stats.total_bytes(), r_frequent.comm_stats.total_bytes());
}

TEST(Trainer, EpochsToReach) {
  TrainResult result;
  result.epochs = {{1, 0, 0, 0.3f, 0}, {2, 0, 0, 0.6f, 0}, {3, 0, 0, 0.7f, 0}};
  EXPECT_EQ(result.epochs_to_reach(0.5f), 2);
  EXPECT_EQ(result.epochs_to_reach(0.9f), -1);
}

TEST(Trainer, DampingDecayScheduleRuns) {
  TrainConfig config = tiny_config(3);
  config.use_kfac = true;
  config.kfac.damping = 0.1f;
  config.damping_decay_epochs = {1.0f, 2.0f};
  config.damping_decay_factor = 0.5f;
  // Smoke: runs to completion with the decay path exercised.
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_EQ(result.epochs.size(), 3u);
}

TEST(Trainer, UpdateFreqDecayScheduleRuns) {
  TrainConfig config = tiny_config(3);
  config.use_kfac = true;
  config.kfac.with_update_freq(8);
  config.freq_decay_epochs = {1.0f, 2.0f};
  config.freq_decay_factor = 0.5f;
  TrainResult result = train_single(tiny_cnn_factory(), tiny_spec(), config);
  EXPECT_EQ(result.epochs.size(), 3u);
  EXPECT_GT(result.final_val_accuracy, 0.25f);
}

TEST(Trainer, InvalidWorldSizeThrows) {
  EXPECT_THROW(
      train_distributed(tiny_cnn_factory(), tiny_spec(), tiny_config(1), 0),
      Error);
}

}  // namespace
}  // namespace dkfac::train
