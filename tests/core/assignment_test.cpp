#include "core/assignment.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace dkfac::kfac {
namespace {

TEST(RoundRobin, CyclesThroughWorkers) {
  WorkAssignment a = assign_round_robin({4, 4, 4, 4, 4, 4}, 3);
  EXPECT_EQ(a.owner, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(RoundRobin, SingleWorkerOwnsAll) {
  WorkAssignment a = assign_round_robin({2, 3, 4}, 1);
  for (int o : a.owner) EXPECT_EQ(o, 0);
}

TEST(RoundRobin, MoreWorkersThanFactorsLeavesIdle) {
  // The §IV motivation: workers beyond the factor count get nothing.
  WorkAssignment a = assign_round_robin({4, 4}, 8);
  EXPECT_EQ(a.owned_by(0).size(), 1u);
  EXPECT_EQ(a.owned_by(1).size(), 1u);
  for (int r = 2; r < 8; ++r) EXPECT_TRUE(a.owned_by(r).empty());
}

TEST(LayerWise, PairsFactorsOnOneWorker) {
  // Factors (A₀,G₁) of layer 0 → rank 0; (A₁,G₂) of layer 1 → rank 1; ...
  WorkAssignment a = assign_layer_wise({4, 8, 4, 8, 4, 8}, 2);
  EXPECT_EQ(a.owner, (std::vector<int>{0, 0, 1, 1, 0, 0}));
}

TEST(LayerWise, OddFactorCountThrows) {
  EXPECT_THROW(assign_layer_wise({4, 4, 4}, 2), Error);
}

TEST(SizeBalanced, BalancesSkewedSizes) {
  // One huge factor plus many small ones: round-robin stacks smalls onto
  // the big factor's worker; size-balanced does not.
  std::vector<int64_t> dims{100, 2, 2, 2, 2, 2, 2, 2};
  WorkAssignment rr = assign_round_robin(dims, 2);
  WorkAssignment sb = assign_size_balanced(dims, 2);
  EXPECT_LE(sb.imbalance(dims), rr.imbalance(dims));
  // The huge factor's owner gets nothing else under size-balancing.
  const int big_owner = sb.owner[0];
  EXPECT_EQ(sb.owned_by(big_owner).size(), 1u);
}

TEST(SizeBalanced, EveryFactorAssignedExactlyOnce) {
  std::vector<int64_t> dims{7, 3, 9, 1, 5, 5, 2, 8, 8, 4};
  WorkAssignment a = assign_size_balanced(dims, 3);
  ASSERT_EQ(a.owner.size(), dims.size());
  for (int o : a.owner) {
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 3);
  }
  // owned_by partitions the factor set.
  std::set<int64_t> seen;
  for (int r = 0; r < 3; ++r) {
    for (int64_t f : a.owned_by(r)) {
      EXPECT_TRUE(seen.insert(f).second) << "factor " << f << " assigned twice";
    }
  }
  EXPECT_EQ(seen.size(), dims.size());
}

TEST(SizeBalanced, UniformSizesNearPerfectBalance) {
  std::vector<int64_t> dims(12, 10);
  WorkAssignment a = assign_size_balanced(dims, 4);
  EXPECT_DOUBLE_EQ(a.imbalance(dims), 1.0);
}

TEST(Imbalance, DefinitionSanity) {
  // 2 workers, loads 8³ vs 0 → imbalance = max/mean = 2.
  WorkAssignment a;
  a.workers = 2;
  a.owner = {0, 0};
  EXPECT_DOUBLE_EQ(a.imbalance({8, 8}), 2.0);
}

TEST(EigCost, IsCubic) {
  EXPECT_DOUBLE_EQ(eig_cost(10), 1000.0);
  EXPECT_DOUBLE_EQ(eig_cost(0), 0.0);
}

TEST(MakeAssignment, DispatchesOnStrategy) {
  std::vector<int64_t> dims{6, 4, 6, 4};
  EXPECT_EQ(make_assignment(DistributionStrategy::kFactorWise, dims, 2).owner,
            (std::vector<int>{0, 1, 0, 1}));
  EXPECT_EQ(make_assignment(DistributionStrategy::kLayerWise, dims, 2).owner,
            (std::vector<int>{0, 0, 1, 1}));
  const auto sb = make_assignment(DistributionStrategy::kSizeBalanced, dims, 2);
  EXPECT_EQ(sb.owner.size(), 4u);
}

TEST(Assignment, DeterministicAcrossCalls) {
  std::vector<int64_t> dims{13, 7, 25, 1, 9, 9, 30, 2};
  for (auto strategy : {DistributionStrategy::kFactorWise,
                        DistributionStrategy::kLayerWise,
                        DistributionStrategy::kSizeBalanced}) {
    const auto a = make_assignment(strategy, dims, 4);
    const auto b = make_assignment(strategy, dims, 4);
    EXPECT_EQ(a.owner, b.owner);
  }
}

}  // namespace
}  // namespace dkfac::kfac
