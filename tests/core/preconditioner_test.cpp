#include "core/preconditioner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <mutex>

#include "common/error.hpp"
#include "comm/thread_comm.hpp"
#include "linalg/blas.hpp"
#include "nn/activation.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/resnet.hpp"
#include "nn/sequential.hpp"

namespace dkfac::kfac {
namespace {

using linalg::matmul;

/// Runs one forward/backward on a fixed synthetic batch so the K-FAC hooks
/// capture activations and output gradients.
void run_batch(nn::Layer& model, int64_t batch, int64_t in_dim, int64_t classes,
               uint64_t seed) {
  Rng rng(seed);
  Tensor x = Tensor::randn(Shape{batch, in_dim}, rng);
  std::vector<int64_t> labels(static_cast<size_t>(batch));
  for (int64_t i = 0; i < batch; ++i) {
    labels[static_cast<size_t>(i)] = i % classes;
  }
  model.zero_grad();
  Tensor logits = model.forward(x);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, labels);
  model.backward(loss.grad);
}

KfacOptions base_options() {
  KfacOptions opts;
  opts.lr = 0.1f;
  opts.damping = 0.01f;
  opts.kl_clip = 1e6f;  // effectively disable ν so tests see raw preconditioning
  opts.factor_update_freq = 1;
  opts.inv_update_freq = 1;
  return opts;
}

TEST(KfacOptions, ValidationRules) {
  KfacOptions opts;
  EXPECT_NO_THROW(opts.validate());
  opts.damping = 0.0f;
  EXPECT_THROW(opts.validate(), Error);
  opts = {};
  opts.factor_update_freq = 3;
  opts.inv_update_freq = 10;  // not a multiple
  EXPECT_THROW(opts.validate(), Error);
  opts = {};
  opts.with_update_freq(100);
  EXPECT_EQ(opts.inv_update_freq, 100);
  EXPECT_EQ(opts.factor_update_freq, 10);
  opts.with_update_freq(5);
  EXPECT_EQ(opts.factor_update_freq, 1);
}

TEST(Kfac, RejectsModelWithoutEligibleLayers) {
  nn::Sequential empty;
  empty.emplace<nn::ReLU>("r");
  comm::SelfComm comm;
  EXPECT_THROW(KfacPreconditioner(empty, comm, base_options()), Error);
}

TEST(Kfac, DiscoversEligibleLayersAndDims) {
  Rng rng(100);
  nn::LayerPtr model = nn::mlp(6, 4, 3, rng);
  comm::SelfComm comm;
  KfacPreconditioner kfac(*model, comm, base_options());
  EXPECT_EQ(kfac.layer_count(), 3u);
  // fc1: A=7 (6+bias), G=4; fc2: A=5, G=4; fc3: A=5, G=3.
  EXPECT_EQ(kfac.factor_dims(), (std::vector<int64_t>{7, 4, 5, 4, 5, 3}));
}

// The defining invariant of the eigendecomposition path (Eqs 13–15):
// the preconditioned gradient P satisfies G·P·A + γ·P = ∇L.
TEST(Kfac, EigenPathSolvesDampedKroneckerSystem) {
  Rng rng(101);
  nn::Sequential model("m");
  model.emplace<nn::Linear>(5, 4, false, rng, "fc");
  auto* fc = dynamic_cast<nn::Linear*>(model.children()[0]);
  ASSERT_NE(fc, nullptr);

  run_batch(model, 16, 5, 4, 7);
  Tensor grad_before = fc->kfac_grad();
  Tensor a = fc->kfac_a_factor();
  Tensor g = fc->kfac_g_factor();

  comm::SelfComm comm;
  KfacOptions opts = base_options();
  KfacPreconditioner kfac(model, comm, opts);
  kfac.step();
  Tensor p = fc->kfac_grad();

  // G·P·A + γP ≈ ∇.
  Tensor reconstructed = matmul(matmul(g, p), a);
  reconstructed.axpy_(opts.damping, p);
  EXPECT_LT(linalg::frobenius_distance(reconstructed, grad_before),
            2e-2f * grad_before.norm() + 1e-4f);
}

// Explicit-inverse invariant (Eq 12): (G+γI)·P·(A+γI) = ∇L.
TEST(Kfac, InversePathSolvesFactorDampedSystem) {
  Rng rng(102);
  nn::Sequential model("m");
  model.emplace<nn::Linear>(4, 3, false, rng, "fc");
  auto* fc = dynamic_cast<nn::Linear*>(model.children()[0]);

  run_batch(model, 16, 4, 3, 8);
  Tensor grad_before = fc->kfac_grad();
  Tensor a = fc->kfac_a_factor();
  Tensor g = fc->kfac_g_factor();

  comm::SelfComm comm;
  KfacOptions opts = base_options();
  opts.inverse_method = InverseMethod::kExplicitInverse;
  KfacPreconditioner kfac(model, comm, opts);
  kfac.step();
  Tensor p = fc->kfac_grad();

  linalg::add_diagonal(a, opts.damping);
  linalg::add_diagonal(g, opts.damping);
  Tensor reconstructed = matmul(matmul(g, p), a);
  EXPECT_LT(linalg::frobenius_distance(reconstructed, grad_before),
            2e-2f * grad_before.norm() + 1e-4f);
}

TEST(Kfac, LargeDampingApproachesScaledIdentityPreconditioner) {
  // As γ → ∞, (F̂+γI)⁻¹ → I/γ: the preconditioned gradient aligns with the
  // original gradient and shrinks by γ.
  Rng rng(103);
  nn::Sequential model("m");
  model.emplace<nn::Linear>(6, 4, false, rng, "fc");
  auto* fc = dynamic_cast<nn::Linear*>(model.children()[0]);
  run_batch(model, 8, 6, 4, 9);
  Tensor grad = fc->kfac_grad();

  comm::SelfComm comm;
  KfacOptions opts = base_options();
  opts.damping = 1e6f;
  KfacPreconditioner kfac(model, comm, opts);
  kfac.step();
  Tensor p = fc->kfac_grad();
  p.scale_(opts.damping);
  EXPECT_LT(linalg::frobenius_distance(p, grad), 1e-2f * grad.norm() + 1e-5f);
}

TEST(Kfac, KlClipShrinksLargeUpdates) {
  Rng rng(104);
  nn::LayerPtr model = nn::mlp(6, 8, 3, rng);
  run_batch(*model, 8, 6, 3, 10);

  comm::SelfComm comm;
  KfacOptions opts = base_options();
  opts.kl_clip = 1e-9f;  // force ν « 1
  KfacPreconditioner kfac(*model, comm, opts);

  float norm_before = 0.0f;
  for (nn::KfacCapturable* l : model->kfac_layers()) {
    norm_before += l->kfac_grad().norm();
  }
  kfac.step();
  float norm_after = 0.0f;
  for (nn::KfacCapturable* l : model->kfac_layers()) {
    norm_after += l->kfac_grad().norm();
  }
  EXPECT_LT(norm_after, 0.1f * norm_before);
}

TEST(Kfac, StaleDecompositionsReused) {
  // With inv_update_freq=4, iterations 1..3 must not recompute or
  // re-communicate decompositions (paper §IV-C: skip lines 5–18).
  comm::LocalGroup group(2);
  group.run([&](int, comm::Communicator& comm) {
    Rng rng(105);
    nn::LayerPtr model = nn::mlp(4, 6, 3, rng);
    KfacOptions opts = base_options();
    opts.factor_update_freq = 2;
    opts.inv_update_freq = 4;
    KfacPreconditioner kfac(*model, comm, opts);

    run_batch(*model, 8, 4, 3, 11);
    kfac.step();  // iteration 0: factors + decomps
    EXPECT_TRUE(kfac.last_report().factors_updated);
    EXPECT_TRUE(kfac.last_report().decompositions_updated);
    const auto stats_after_first = comm.stats();

    run_batch(*model, 8, 4, 3, 12);
    kfac.step();  // iteration 1: fully local
    EXPECT_FALSE(kfac.last_report().factors_updated);
    EXPECT_FALSE(kfac.last_report().decompositions_updated);
    EXPECT_EQ(comm.stats().allreduce_calls, stats_after_first.allreduce_calls);
    EXPECT_EQ(comm.stats().allgather_calls, stats_after_first.allgather_calls);

    run_batch(*model, 8, 4, 3, 13);
    kfac.step();  // iteration 2: factors only
    EXPECT_TRUE(kfac.last_report().factors_updated);
    EXPECT_FALSE(kfac.last_report().decompositions_updated);
    EXPECT_GT(comm.stats().allreduce_calls, stats_after_first.allreduce_calls);
    EXPECT_EQ(comm.stats().allgather_calls, stats_after_first.allgather_calls);

    run_batch(*model, 8, 4, 3, 14);
    kfac.step();  // iteration 3: local again
    run_batch(*model, 8, 4, 3, 15);
    kfac.step();  // iteration 4: full refresh
    EXPECT_TRUE(kfac.last_report().decompositions_updated);
    EXPECT_GT(comm.stats().allgather_calls, stats_after_first.allgather_calls);
  });
}

TEST(Kfac, LayerWiseCommunicatesEveryIteration) {
  comm::LocalGroup group(2);
  group.run([&](int, comm::Communicator& comm) {
    Rng rng(106);
    nn::LayerPtr model = nn::mlp(4, 6, 3, rng);
    KfacOptions opts = base_options();
    opts.strategy = DistributionStrategy::kLayerWise;
    opts.factor_update_freq = 2;
    opts.inv_update_freq = 4;
    KfacPreconditioner kfac(*model, comm, opts);

    run_batch(*model, 8, 4, 3, 11);
    kfac.step();
    const uint64_t gathers_after_first = comm.stats().allgather_calls;

    run_batch(*model, 8, 4, 3, 12);
    kfac.step();  // skip iteration — but lw still gathers preconditioned grads
    EXPECT_GT(comm.stats().allgather_calls, gathers_after_first);
  });
}

class KfacStrategyEquivalence
    : public ::testing::TestWithParam<DistributionStrategy> {};

TEST_P(KfacStrategyEquivalence, MatchesSingleRankResult) {
  // All strategies compute the same math — only placement and
  // communication differ. A 3-rank run must produce the same
  // preconditioned gradients as a 1-rank run on the same global batch.
  const DistributionStrategy strategy = GetParam();

  auto build_and_capture = [](nn::Layer& model, int rank, int world) {
    // Global batch of 12 samples; each rank takes a contiguous quarter.
    Rng rng(107);
    const int64_t global = 12;
    Tensor x = Tensor::randn(Shape{global, 5}, rng);
    std::vector<int64_t> labels(static_cast<size_t>(global));
    for (int64_t i = 0; i < global; ++i) labels[static_cast<size_t>(i)] = i % 3;

    const int64_t local = global / world;
    Tensor x_local(Shape{local, 5});
    std::vector<int64_t> labels_local(static_cast<size_t>(local));
    for (int64_t i = 0; i < local; ++i) {
      const int64_t src = rank * local + i;
      for (int64_t j = 0; j < 5; ++j) x_local.at(i, j) = x.at(src, j);
      labels_local[static_cast<size_t>(i)] = labels[static_cast<size_t>(src)];
    }
    model.zero_grad();
    Tensor logits = model.forward(x_local);
    nn::LossResult loss = nn::softmax_cross_entropy(logits, labels_local);
    model.backward(loss.grad);
  };

  auto gradient_allreduce = [](nn::Layer& model, comm::Communicator& comm) {
    for (nn::Parameter* p : model.parameters()) {
      comm.allreduce(p->grad, comm::ReduceOp::kAverage);
    }
  };

  // Reference: single rank, full batch.
  Rng ref_rng(42);
  nn::LayerPtr ref_model = nn::mlp(5, 6, 3, ref_rng);
  comm::SelfComm self;
  KfacOptions opts = base_options();
  opts.strategy = strategy;
  KfacPreconditioner ref_kfac(*ref_model, self, opts);
  build_and_capture(*ref_model, 0, 1);
  ref_kfac.step();
  std::vector<Tensor> reference;
  for (nn::KfacCapturable* l : ref_model->kfac_layers()) {
    reference.push_back(l->kfac_grad());
  }

  // Distributed: 3 ranks, same global batch.
  comm::LocalGroup group(3);
  group.run([&](int rank, comm::Communicator& comm) {
    Rng rng(42);
    nn::LayerPtr model = nn::mlp(5, 6, 3, rng);
    KfacPreconditioner kfac(*model, comm, opts);
    build_and_capture(*model, rank, 3);
    gradient_allreduce(*model, comm);
    kfac.step();
    auto layers = model->kfac_layers();
    for (size_t i = 0; i < layers.size(); ++i) {
      EXPECT_TRUE(allclose(layers[i]->kfac_grad(), reference[i], 5e-3f, 5e-4f))
          << "layer " << i << " diverged on rank " << rank;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Strategies, KfacStrategyEquivalence,
                         ::testing::Values(DistributionStrategy::kFactorWise,
                                           DistributionStrategy::kLayerWise,
                                           DistributionStrategy::kSizeBalanced));

TEST(Kfac, WorksWithConvNetworks) {
  Rng rng(108);
  nn::LayerPtr model = nn::simple_cnn(2, 4, rng, 4);
  comm::SelfComm comm;
  KfacPreconditioner kfac(*model, comm, base_options());

  Tensor x = Tensor::randn(Shape{4, 2, 8, 8}, rng);
  model->zero_grad();
  Tensor logits = model->forward(x);
  nn::LossResult loss = nn::softmax_cross_entropy(logits, {0, 1, 2, 3});
  model->backward(loss.grad);

  std::vector<Tensor> before;
  for (nn::KfacCapturable* l : model->kfac_layers()) before.push_back(l->kfac_grad());
  kfac.step();
  // Preconditioning must change the gradient (γ is small) but keep it finite.
  auto layers = model->kfac_layers();
  for (size_t i = 0; i < layers.size(); ++i) {
    Tensor after = layers[i]->kfac_grad();
    EXPECT_FALSE(allclose(after, before[i], 1e-3f, 1e-5f)) << "layer " << i;
    for (int64_t j = 0; j < after.numel(); ++j) {
      ASSERT_TRUE(std::isfinite(after[j]));
    }
  }
}

TEST(Kfac, DampingScheduleAffectsNextDecomposition) {
  Rng rng(109);
  nn::Sequential model("m");
  model.emplace<nn::Linear>(4, 3, false, rng, "fc");
  auto* fc = dynamic_cast<nn::Linear*>(model.children()[0]);
  comm::SelfComm comm;
  KfacOptions opts = base_options();
  KfacPreconditioner kfac(model, comm, opts);

  run_batch(model, 8, 4, 3, 20);
  Tensor grad = fc->kfac_grad();
  kfac.step();
  Tensor p_small_damping = fc->kfac_grad();

  // Restore the gradient, raise damping, step again on the same captures.
  fc->set_kfac_grad(grad);
  kfac.set_damping(10.0f);
  run_batch(model, 8, 4, 3, 20);
  fc->set_kfac_grad(grad);
  kfac.step();
  Tensor p_large_damping = fc->kfac_grad();
  EXPECT_LT(p_large_damping.norm(), p_small_damping.norm());
}

TEST(Kfac, SetLrValidation) {
  Rng rng(110);
  nn::LayerPtr model = nn::mlp(3, 4, 2, rng);
  comm::SelfComm comm;
  KfacPreconditioner kfac(*model, comm, base_options());
  EXPECT_THROW(kfac.set_lr(0.0f), Error);
  EXPECT_THROW(kfac.set_damping(-1.0f), Error);
  EXPECT_NO_THROW(kfac.set_update_freqs(2, 10));
  EXPECT_THROW(kfac.set_update_freqs(3, 10), Error);
}

TEST(Kfac, FullRankFractionMatchesDefaultPath) {
  // eigen_rank_fraction = 1.0 must be bit-identical to the default.
  Rng rng(120);
  nn::LayerPtr model_a = nn::mlp(5, 6, 3, rng);
  Rng rng2(120);
  nn::LayerPtr model_b = nn::mlp(5, 6, 3, rng2);
  comm::SelfComm comm;
  KfacOptions opts = base_options();
  KfacPreconditioner kfac_a(*model_a, comm, opts);
  opts.eigen_rank_fraction = 1.0f;
  KfacPreconditioner kfac_b(*model_b, comm, opts);

  run_batch(*model_a, 8, 5, 3, 30);
  run_batch(*model_b, 8, 5, 3, 30);
  kfac_a.step();
  kfac_b.step();
  auto la = model_a->kfac_layers();
  auto lb = model_b->kfac_layers();
  for (size_t i = 0; i < la.size(); ++i) {
    EXPECT_TRUE(la[i]->kfac_grad() == lb[i]->kfac_grad()) << "layer " << i;
  }
}

TEST(Kfac, TruncatedRankApproximatesFullPreconditioner) {
  // With most of the spectrum kept, the truncated preconditioned gradient
  // stays close to the exact one; the error grows as rank drops.
  Rng rng(121);
  auto make_model = [] {
    Rng r(121);
    return nn::mlp(8, 10, 4, r);
  };
  comm::SelfComm comm;

  auto precond_with = [&](float fraction) {
    nn::LayerPtr model = make_model();
    KfacOptions opts = base_options();
    opts.eigen_rank_fraction = fraction;
    KfacPreconditioner kfac(*model, comm, opts);
    run_batch(*model, 16, 8, 4, 31);
    kfac.step();
    std::vector<Tensor> grads;
    for (nn::KfacCapturable* l : model->kfac_layers()) {
      grads.push_back(l->kfac_grad());
    }
    return grads;
  };

  const auto exact = precond_with(1.0f);
  const auto high = precond_with(0.8f);
  const auto low = precond_with(0.3f);
  double err_high = 0.0, err_low = 0.0, norm = 0.0;
  for (size_t i = 0; i < exact.size(); ++i) {
    err_high += linalg::frobenius_distance(high[i], exact[i]);
    err_low += linalg::frobenius_distance(low[i], exact[i]);
    norm += exact[i].norm();
  }
  EXPECT_LT(err_high, err_low);
  EXPECT_LT(err_high, 0.6 * norm);  // 80% of the spectrum captures the bulk
}

TEST(Kfac, TruncatedRankReducesGatherBytes) {
  comm::LocalGroup group(2);
  std::vector<uint64_t> bytes(2);
  for (int variant = 0; variant < 2; ++variant) {
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(122);
      nn::LayerPtr model = nn::mlp(8, 12, 4, rng);
      KfacOptions opts = base_options();
      opts.eigen_rank_fraction = variant == 0 ? 1.0f : 0.25f;
      comm.reset_stats();
      KfacPreconditioner kfac(*model, comm, opts);
      run_batch(*model, 8, 8, 4, 32);
      kfac.step();
      if (rank == 0) bytes[static_cast<size_t>(variant)] = comm.stats().allgather_bytes;
    });
  }
  EXPECT_LT(bytes[1], bytes[0] / 2);
}

TEST(Kfac, TruncatedRankTrainsDistributed) {
  comm::LocalGroup group(2);
  group.run([&](int, comm::Communicator& comm) {
    Rng rng(123);
    nn::LayerPtr model = nn::mlp(6, 8, 3, rng);
    KfacOptions opts = base_options();
    opts.eigen_rank_fraction = 0.5f;
    KfacPreconditioner kfac(*model, comm, opts);
    for (int it = 0; it < 3; ++it) {
      run_batch(*model, 8, 6, 3, 40 + static_cast<uint64_t>(it));
      for (nn::Parameter* p : model->parameters()) {
        comm.allreduce(p->grad, comm::ReduceOp::kAverage);
      }
      kfac.step();
      for (nn::KfacCapturable* l : model->kfac_layers()) {
        Tensor g = l->kfac_grad();
        for (int64_t i = 0; i < g.numel(); ++i) ASSERT_TRUE(std::isfinite(g[i]));
      }
    }
  });
}

TEST(Kfac, PiDampingSolvesSplitDampedSystem) {
  // With the π split, the explicit-inverse path solves
  // (G + √γ/π·I)·P·(A + π√γ·I) = ∇ where π = sqrt(mean-eig(A)/mean-eig(G)).
  Rng rng(130);
  nn::Sequential model("m");
  model.emplace<nn::Linear>(5, 4, false, rng, "fc");
  auto* fc = dynamic_cast<nn::Linear*>(model.children()[0]);
  run_batch(model, 16, 5, 4, 131);
  Tensor grad = fc->kfac_grad();
  Tensor a = fc->kfac_a_factor();
  Tensor g = fc->kfac_g_factor();

  comm::SelfComm comm;
  KfacOptions opts = base_options();
  opts.inverse_method = InverseMethod::kExplicitInverse;
  opts.pi_damping = true;
  KfacPreconditioner kfac(model, comm, opts);
  kfac.step();
  Tensor p = fc->kfac_grad();

  auto trace_mean = [](const Tensor& m) {
    double t = 0.0;
    for (int64_t i = 0; i < m.dim(0); ++i) t += m.at(i, i);
    return static_cast<float>(t / m.dim(0));
  };
  const float pi = std::sqrt(trace_mean(a) / trace_mean(g));
  Tensor a_damped = a;
  Tensor g_damped = g;
  linalg::add_diagonal(a_damped, std::sqrt(opts.damping) * pi);
  linalg::add_diagonal(g_damped, std::sqrt(opts.damping) / pi);
  Tensor reconstructed = matmul(matmul(g_damped, p), a_damped);
  EXPECT_LT(linalg::frobenius_distance(reconstructed, grad),
            3e-2f * grad.norm() + 1e-4f);
}

TEST(Kfac, PiDampingWorksDistributed) {
  comm::LocalGroup group(2);
  group.run([&](int, comm::Communicator& comm) {
    Rng rng(132);
    nn::LayerPtr model = nn::mlp(4, 6, 3, rng);
    KfacOptions opts = base_options();
    opts.inverse_method = InverseMethod::kExplicitInverse;
    opts.pi_damping = true;
    KfacPreconditioner kfac(*model, comm, opts);
    run_batch(*model, 8, 4, 3, 133);
    for (nn::Parameter* p : model->parameters()) {
      comm.allreduce(p->grad, comm::ReduceOp::kAverage);
    }
    kfac.step();
    for (nn::KfacCapturable* l : model->kfac_layers()) {
      Tensor g = l->kfac_grad();
      for (int64_t i = 0; i < g.numel(); ++i) ASSERT_TRUE(std::isfinite(g[i]));
    }
  });
}

TEST(Kfac, InvalidFusionCapacityRejectedAsOptionsError) {
  KfacOptions opts;
  opts.fusion_capacity_bytes = 3;  // smaller than one float
  EXPECT_THROW(opts.validate(), Error);
  opts.fusion_capacity_bytes = 0;  // auto: derive from the cost model
  EXPECT_NO_THROW(opts.validate());

  // Construction must surface the same options error, not a low-level
  // fusion-buffer failure from the member-init list.
  Rng rng(180);
  nn::LayerPtr model = nn::mlp(3, 4, 2, rng);
  comm::SelfComm comm;
  KfacOptions bad = base_options();
  bad.fusion_capacity_bytes = 2;
  EXPECT_THROW(KfacPreconditioner(*model, comm, bad), Error);
  KfacOptions tiny = base_options();
  tiny.fusion_capacity_bytes = sizeof(float);  // legal 1-element buffer
  EXPECT_NO_THROW(KfacPreconditioner(*model, comm, tiny));
}

TEST(Kfac, InvalidRankFractionThrows) {
  KfacOptions opts;
  opts.eigen_rank_fraction = 0.0f;
  EXPECT_THROW(opts.validate(), Error);
  opts.eigen_rank_fraction = 1.5f;
  EXPECT_THROW(opts.validate(), Error);
}

TEST(Kfac, SymmetricCommMatchesDensePath) {
  // Triangle-packed factor communication must produce the same
  // preconditioned gradients as dense factor communication.
  auto run_with = [](bool symmetric) {
    std::vector<Tensor> grads;
    comm::LocalGroup group(2);
    std::mutex mu;
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(140);
      nn::LayerPtr model = nn::mlp(6, 8, 3, rng);
      KfacOptions opts = base_options();
      opts.symmetric_comm = symmetric;
      KfacPreconditioner kfac(*model, comm, opts);
      for (int it = 0; it < 3; ++it) {
        run_batch(*model, 8, 6, 3, 141 + static_cast<uint64_t>(it) +
                                       static_cast<uint64_t>(rank));
        for (nn::Parameter* p : model->parameters()) {
          comm.allreduce(p->grad, comm::ReduceOp::kAverage);
        }
        kfac.step();
      }
      if (rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        for (nn::KfacCapturable* l : model->kfac_layers()) {
          grads.push_back(l->kfac_grad());
        }
      }
    });
    return grads;
  };

  const std::vector<Tensor> dense = run_with(false);
  const std::vector<Tensor> packed = run_with(true);
  ASSERT_EQ(dense.size(), packed.size());
  for (size_t i = 0; i < dense.size(); ++i) {
    EXPECT_TRUE(allclose(packed[i], dense[i], 1e-4f, 1e-5f)) << "layer " << i;
  }
}

TEST(Kfac, SymmetricCommShipsFewerFactorBytes) {
  comm::LocalGroup group(2);
  std::vector<uint64_t> shipped(2);
  std::vector<uint64_t> dense_equiv(2);
  for (int variant = 0; variant < 2; ++variant) {
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(150);
      nn::LayerPtr model = nn::mlp(8, 12, 4, rng);
      KfacOptions opts = base_options();
      opts.symmetric_comm = variant == 1;
      comm.reset_stats();
      KfacPreconditioner kfac(*model, comm, opts);
      run_batch(*model, 8, 8, 4, 151);
      kfac.step();
      if (rank == 0) {
        shipped[static_cast<size_t>(variant)] = comm.stats().factor_packed_bytes;
        dense_equiv[static_cast<size_t>(variant)] = comm.stats().factor_dense_bytes;
      }
    });
  }
  // Dense path: shipped == dense equivalent. Packed path: strictly less,
  // and bounded by the worst per-factor ratio (n+1)/2n ≤ (1+1)/2 → use 60%
  // as a generous ceiling for these small test factors.
  EXPECT_EQ(shipped[0], dense_equiv[0]);
  EXPECT_EQ(dense_equiv[1], dense_equiv[0]);
  EXPECT_LT(shipped[1], (dense_equiv[1] * 6) / 10);
}

TEST(Kfac, StepReportSurfacesFactorCommBytes) {
  Rng rng(160);
  nn::LayerPtr model = nn::mlp(5, 6, 3, rng);
  comm::SelfComm comm;
  KfacOptions opts = base_options();
  opts.factor_update_freq = 2;
  opts.inv_update_freq = 2;
  KfacPreconditioner kfac(*model, comm, opts);

  uint64_t expected_dense = 0;
  uint64_t expected_packed = 0;
  for (int64_t d : kfac.factor_dims()) {
    expected_dense += static_cast<uint64_t>(d * d) * sizeof(float);
    expected_packed += static_cast<uint64_t>(d * (d + 1) / 2) * sizeof(float);
  }

  run_batch(*model, 8, 5, 3, 161);
  kfac.step();  // iteration 0: factor update
  EXPECT_EQ(kfac.last_report().factor_dense_bytes, expected_dense);
  EXPECT_EQ(kfac.last_report().factor_comm_bytes, expected_packed);
  EXPECT_GE(kfac.last_report().factor_chunks, 1u);
  EXPECT_EQ(comm.stats().factor_dense_bytes, expected_dense);
  EXPECT_EQ(comm.stats().factor_packed_bytes, expected_packed);

  run_batch(*model, 8, 5, 3, 162);
  kfac.step();  // iteration 1: skip — no factor communication at all
  EXPECT_EQ(kfac.last_report().factor_dense_bytes, 0u);
  EXPECT_EQ(kfac.last_report().factor_comm_bytes, 0u);
  EXPECT_EQ(kfac.last_report().factor_chunks, 0u);
  EXPECT_EQ(comm.stats().factor_dense_bytes, expected_dense);
}

TEST(Kfac, SetterValidationRoutesThroughOptionsValidate) {
  Rng rng(170);
  nn::LayerPtr model = nn::mlp(3, 4, 2, rng);
  comm::SelfComm comm;
  KfacPreconditioner kfac(*model, comm, base_options());
  // A rejected retune must leave the live options untouched.
  EXPECT_THROW(kfac.set_damping(0.0f), Error);
  EXPECT_FLOAT_EQ(kfac.options().damping, base_options().damping);
  EXPECT_THROW(kfac.set_lr(-0.5f), Error);
  EXPECT_FLOAT_EQ(kfac.options().lr, base_options().lr);
  EXPECT_THROW(kfac.set_update_freqs(0, 1), Error);
  EXPECT_EQ(kfac.options().factor_update_freq, 1);
  EXPECT_NO_THROW(kfac.set_damping(0.5f));
  EXPECT_FLOAT_EQ(kfac.options().damping, 0.5f);
}

TEST(Kfac, LayerWiseAndFactorWiseProduceIdenticalGradients) {
  // Layer-wise and factor-wise place the same math on different ranks:
  // with identical batches and a fixed seed the preconditioned gradients
  // must match bitwise, not just to tolerance (deterministic collectives,
  // same GEMM code on whatever rank runs it).
  auto run_with = [](DistributionStrategy strategy) {
    std::vector<Tensor> grads;
    std::mutex mu;
    comm::LocalGroup group(2);
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(200);
      nn::LayerPtr model = nn::mlp(6, 8, 3, rng);
      KfacOptions opts = base_options();
      opts.strategy = strategy;
      KfacPreconditioner kfac(*model, comm, opts);
      for (int it = 0; it < 3; ++it) {
        run_batch(*model, 8, 6, 3, 201 + static_cast<uint64_t>(it) +
                                       static_cast<uint64_t>(rank));
        for (nn::Parameter* p : model->parameters()) {
          comm.allreduce(p->grad, comm::ReduceOp::kAverage);
        }
        kfac.step();
      }
      if (rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        for (nn::KfacCapturable* l : model->kfac_layers()) {
          grads.push_back(l->kfac_grad());
        }
      }
    });
    return grads;
  };

  const std::vector<Tensor> layer_wise = run_with(DistributionStrategy::kLayerWise);
  const std::vector<Tensor> factor_wise = run_with(DistributionStrategy::kFactorWise);
  ASSERT_EQ(layer_wise.size(), factor_wise.size());
  for (size_t i = 0; i < layer_wise.size(); ++i) {
    EXPECT_TRUE(layer_wise[i] == factor_wise[i]) << "layer " << i;
  }
}

TEST(Kfac, ExplicitInverseExchangeIsSymmetryPacked) {
  // (X+γI)⁻¹ is symmetric, so the decomposition allgather triangle-packs
  // like the factors themselves: fewer gathered bytes, same gradients.
  auto run_with = [](bool symmetric) {
    struct Result {
      std::vector<Tensor> grads;
      comm::CommStats stats;
    } result;
    std::mutex mu;
    comm::LocalGroup group(2);
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(210);
      nn::LayerPtr model = nn::mlp(8, 12, 4, rng);
      KfacOptions opts = base_options();
      opts.inverse_method = InverseMethod::kExplicitInverse;
      opts.symmetric_comm = symmetric;
      comm.reset_stats();
      KfacPreconditioner kfac(*model, comm, opts);
      run_batch(*model, 8, 8, 4, 211);
      for (nn::Parameter* p : model->parameters()) {
        comm.allreduce(p->grad, comm::ReduceOp::kAverage);
      }
      kfac.step();
      if (rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        for (nn::KfacCapturable* l : model->kfac_layers()) {
          result.grads.push_back(l->kfac_grad());
        }
        result.stats = comm.stats();
      }
    });
    return result;
  };

  const auto dense = run_with(false);
  const auto packed = run_with(true);

  // Volume: the packed gather ships n(n+1)/2 of n² per inverse.
  EXPECT_LT(packed.stats.allgather_bytes, dense.stats.allgather_bytes);
  EXPECT_EQ(dense.stats.decomp_packed_bytes, dense.stats.decomp_dense_bytes);
  EXPECT_EQ(packed.stats.decomp_dense_bytes, dense.stats.decomp_dense_bytes);
  EXPECT_LT(packed.stats.decomp_packed_bytes,
            (packed.stats.decomp_dense_bytes * 6) / 10);

  // Parity: unpack mirrors the triangle, so any FP32 asymmetry in the
  // computed inverse is re-symmetrised — allow float-level tolerance.
  ASSERT_EQ(dense.grads.size(), packed.grads.size());
  for (size_t i = 0; i < dense.grads.size(); ++i) {
    EXPECT_TRUE(allclose(packed.grads[i], dense.grads[i], 1e-4f, 1e-5f))
        << "layer " << i;
  }
}

TEST(Kfac, EigenPathRecordsDenseDecompVolume) {
  // Eigenvector matrices are not symmetric — no packing, dense == shipped.
  comm::LocalGroup group(2);
  group.run([&](int rank, comm::Communicator& comm) {
    Rng rng(220);
    nn::LayerPtr model = nn::mlp(5, 6, 3, rng);
    KfacPreconditioner kfac(*model, comm, base_options());
    run_batch(*model, 8, 5, 3, 221);
    kfac.step();
    if (rank == 0) {
      EXPECT_GT(comm.stats().decomp_dense_bytes, 0u);
      EXPECT_EQ(comm.stats().decomp_packed_bytes,
                comm.stats().decomp_dense_bytes);
    }
  });
}

TEST(Kfac, AsyncFactorExchangeMatchesSynchronous) {
  // With an AsyncExecutor attached and overlap_comm on, factor allreduces
  // ride the background pipeline and fold in lazily — the preconditioned
  // gradients must still match the synchronous path bitwise.
  auto run_with = [](bool overlap) {
    std::vector<Tensor> grads;
    std::mutex mu;
    comm::LocalGroup group(2);
    group.run([&](int rank, comm::Communicator& comm) {
      Rng rng(230);
      nn::LayerPtr model = nn::mlp(6, 8, 3, rng);
      KfacOptions opts = base_options();
      opts.factor_update_freq = 1;
      opts.inv_update_freq = 2;
      opts.overlap_comm = overlap;
      KfacPreconditioner kfac(*model, comm, opts);
      std::optional<comm::AsyncExecutor> executor;
      if (overlap) {
        executor.emplace(comm);
        kfac.set_async_executor(&*executor);
      }
      for (int it = 0; it < 4; ++it) {
        run_batch(*model, 8, 6, 3, 231 + static_cast<uint64_t>(it) +
                                       static_cast<uint64_t>(rank));
        // Protocol: drain the pipeline before direct collectives.
        if (executor) executor->wait();
        for (nn::Parameter* p : model->parameters()) {
          comm.allreduce(p->grad, comm::ReduceOp::kAverage);
        }
        kfac.step();
        if (overlap) {
          EXPECT_TRUE(kfac.last_report().factor_comm_async);
        }
      }
      if (executor) executor->wait();
      if (rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        for (nn::KfacCapturable* l : model->kfac_layers()) {
          grads.push_back(l->kfac_grad());
        }
      }
      // Detach before the executor leaves scope.
      kfac.set_async_executor(nullptr);
    });
    return grads;
  };

  const std::vector<Tensor> sync_grads = run_with(false);
  const std::vector<Tensor> async_grads = run_with(true);
  ASSERT_EQ(sync_grads.size(), async_grads.size());
  for (size_t i = 0; i < sync_grads.size(); ++i) {
    EXPECT_TRUE(sync_grads[i] == async_grads[i]) << "layer " << i;
  }
}

TEST(Kfac, IterationCounterAdvances) {
  Rng rng(111);
  nn::LayerPtr model = nn::mlp(3, 4, 2, rng);
  comm::SelfComm comm;
  KfacPreconditioner kfac(*model, comm, base_options());
  EXPECT_EQ(kfac.iteration(), 0);
  run_batch(*model, 4, 3, 2, 21);
  kfac.step();
  EXPECT_EQ(kfac.iteration(), 1);
}

}  // namespace
}  // namespace dkfac::kfac
