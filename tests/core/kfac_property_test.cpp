// Property tests on K-FAC preconditioning invariants, swept over layer
// shapes, damping values, and batch sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "comm/communicator.hpp"
#include "core/preconditioner.hpp"
#include "linalg/blas.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/sequential.hpp"

namespace dkfac::kfac {
namespace {

using linalg::matmul;

struct Fixture {
  nn::Sequential model{"m"};
  nn::Linear* fc = nullptr;

  Fixture(int64_t in, int64_t out, bool bias, uint64_t seed) {
    Rng rng(seed);
    model.emplace<nn::Linear>(in, out, bias, rng, "fc");
    fc = dynamic_cast<nn::Linear*>(model.children()[0]);
  }

  void run_batch(int64_t batch, uint64_t seed) {
    Rng rng(seed);
    Tensor x = Tensor::randn(Shape{batch, fc->in_features()}, rng);
    std::vector<int64_t> labels(static_cast<size_t>(batch));
    for (int64_t i = 0; i < batch; ++i) {
      labels[static_cast<size_t>(i)] = i % fc->out_features();
    }
    model.zero_grad();
    nn::LossResult loss = nn::softmax_cross_entropy(model.forward(x), labels);
    model.backward(loss.grad);
  }
};

using Case = std::tuple<int64_t /*in*/, int64_t /*out*/, bool /*bias*/,
                        float /*damping*/, int64_t /*batch*/>;

class KfacInvariantSweep : public ::testing::TestWithParam<Case> {};

TEST_P(KfacInvariantSweep, EigenPathSolvesDampedSystem) {
  const auto [in, out, bias, damping, batch] = GetParam();
  Fixture f(in, out, bias, 500);
  f.run_batch(batch, 501);

  Tensor grad = f.fc->kfac_grad();
  Tensor a = f.fc->kfac_a_factor();
  Tensor g = f.fc->kfac_g_factor();

  comm::SelfComm comm;
  KfacOptions opts;
  opts.damping = damping;
  opts.kl_clip = 1e9f;  // disable ν
  opts.factor_update_freq = opts.inv_update_freq = 1;
  KfacPreconditioner kfac(f.model, comm, opts);
  kfac.step();
  Tensor p = f.fc->kfac_grad();

  Tensor reconstructed = matmul(matmul(g, p), a);
  reconstructed.axpy_(damping, p);
  EXPECT_LT(linalg::frobenius_distance(reconstructed, grad),
            5e-2f * grad.norm() + 1e-4f)
      << "in=" << in << " out=" << out << " bias=" << bias
      << " damping=" << damping << " batch=" << batch;
}

TEST_P(KfacInvariantSweep, PreconditionedGradientIsDescentDirection) {
  // (F̂+γI)⁻¹ is positive definite, so <P, grad> > 0: the preconditioned
  // gradient never flips into an ascent direction.
  const auto [in, out, bias, damping, batch] = GetParam();
  Fixture f(in, out, bias, 502);
  f.run_batch(batch, 503);
  Tensor grad = f.fc->kfac_grad();

  comm::SelfComm comm;
  KfacOptions opts;
  opts.damping = damping;
  opts.kl_clip = 1e9f;
  KfacPreconditioner kfac(f.model, comm, opts);
  kfac.step();
  EXPECT_GT(f.fc->kfac_grad().dot(grad), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KfacInvariantSweep,
    ::testing::Values(Case{4, 3, false, 1e-3f, 8}, Case{4, 3, true, 1e-3f, 8},
                      Case{16, 4, false, 1e-2f, 32},
                      Case{16, 4, true, 1e-1f, 32},
                      Case{7, 11, false, 1e-2f, 16},
                      Case{32, 8, true, 1e-3f, 64},
                      Case{3, 2, true, 1.0f, 4}));

TEST(KfacProperty, NuScalesMonotonicallyWithKlClip) {
  // Larger κ → larger (less clipped) updates, saturating at ν = 1.
  Fixture f(8, 4, true, 600);
  comm::SelfComm comm;
  float previous_norm = 0.0f;
  for (float kl_clip : {1e-6f, 1e-4f, 1e-2f, 1e2f}) {
    f.run_batch(16, 601);
    KfacOptions opts;
    opts.damping = 1e-2f;
    opts.kl_clip = kl_clip;
    KfacPreconditioner kfac(f.model, comm, opts);
    kfac.step();
    const float norm = f.fc->kfac_grad().norm();
    EXPECT_GE(norm, previous_norm * 0.999f) << "kl_clip " << kl_clip;
    previous_norm = norm;
  }
}

TEST(KfacProperty, DampingMonotonicallyShrinksUpdate) {
  Fixture f(8, 4, false, 602);
  comm::SelfComm comm;
  float previous_norm = 1e30f;
  for (float damping : {1e-3f, 1e-2f, 1e-1f, 1.0f, 10.0f}) {
    f.run_batch(16, 603);
    KfacOptions opts;
    opts.damping = damping;
    opts.kl_clip = 1e9f;
    KfacPreconditioner kfac(f.model, comm, opts);
    kfac.step();
    const float norm = f.fc->kfac_grad().norm();
    EXPECT_LT(norm, previous_norm) << "damping " << damping;
    previous_norm = norm;
  }
}

TEST(KfacProperty, RunningAverageConvergesOnStationaryData) {
  // Feeding the identical batch repeatedly: the factor running average
  // must converge to that batch's factor.
  Fixture f(6, 3, false, 604);
  comm::SelfComm comm;
  KfacOptions opts;
  opts.factor_decay = 0.5f;
  opts.factor_update_freq = opts.inv_update_freq = 1;
  KfacPreconditioner kfac(f.model, comm, opts);

  Tensor target;
  for (int it = 0; it < 12; ++it) {
    f.run_batch(16, 605);  // same seed → identical batch
    target = f.fc->kfac_a_factor();
    kfac.step();
  }
  // After 12 halvings the average is within 2^-12 of the fixed point; use
  // the invariant indirectly: one more step must barely change gradients.
  f.run_batch(16, 605);
  Tensor before = f.fc->kfac_grad();
  kfac.step();
  Tensor after_precond = f.fc->kfac_grad();
  f.run_batch(16, 605);
  kfac.step();
  EXPECT_LT(linalg::frobenius_distance(f.fc->kfac_grad(), after_precond),
            1e-3f * after_precond.norm() + 1e-6f);
  (void)before;
  (void)target;
}

}  // namespace
}  // namespace dkfac::kfac
