#include "data/synthetic.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dkfac::data {
namespace {

using Split = SyntheticImageDataset::Split;

TEST(SyntheticSpec, PresetsValid) {
  EXPECT_NO_THROW(cifar10_like().validate());
  EXPECT_NO_THROW(imagenet_like().validate());
  EXPECT_EQ(cifar10_like().num_classes, 10);
  EXPECT_EQ(imagenet_like().num_classes, 100);
}

TEST(SyntheticSpec, InvalidSpecsThrow) {
  SyntheticSpec spec = cifar10_like();
  spec.num_classes = 1;
  EXPECT_THROW(spec.validate(), Error);
  spec = cifar10_like();
  spec.grid = 64;  // larger than image
  EXPECT_THROW(spec.validate(), Error);
  spec = cifar10_like();
  spec.noise = -1.0f;
  EXPECT_THROW(spec.validate(), Error);
}

TEST(Synthetic, DeterministicSampleGeneration) {
  SyntheticSpec spec = cifar10_like();
  SyntheticImageDataset a(spec, Split::kTrain);
  SyntheticImageDataset b(spec, Split::kTrain);
  Batch ba = a.get({0, 17, 101});
  Batch bb = b.get({0, 17, 101});
  EXPECT_TRUE(ba.images == bb.images);
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(Synthetic, LabelsAreBalanced) {
  SyntheticSpec spec = cifar10_like();
  SyntheticImageDataset ds(spec, Split::kTrain);
  std::vector<int64_t> indices(100);
  for (int64_t i = 0; i < 100; ++i) indices[static_cast<size_t>(i)] = i;
  Batch batch = ds.get(indices);
  std::vector<int> counts(10, 0);
  for (int64_t label : batch.labels) counts[static_cast<size_t>(label)]++;
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(Synthetic, TrainAndValNoiseDiffer) {
  SyntheticSpec spec = cifar10_like();
  SyntheticImageDataset train(spec, Split::kTrain);
  SyntheticImageDataset val(spec, Split::kVal);
  Batch bt = train.get({0});
  Batch bv = val.get({0});
  EXPECT_EQ(bt.labels, bv.labels);        // same balanced labelling
  EXPECT_FALSE(bt.images == bv.images);   // different noise draws
}

TEST(Synthetic, SameClassSharesPrototype) {
  // Two same-class samples correlate strongly; cross-class much less.
  SyntheticSpec spec = cifar10_like();
  spec.noise = 0.3f;
  SyntheticImageDataset ds(spec, Split::kTrain);
  // Labels are index % 10: indices 0 and 10 are class 0; 1 is class 1.
  Batch batch = ds.get({0, 10, 1});
  const int64_t n = spec.channels * spec.height * spec.width;
  auto corr = [&](int64_t i, int64_t j) {
    double dot = 0.0, ni = 0.0, nj = 0.0;
    for (int64_t k = 0; k < n; ++k) {
      const float a = batch.images[i * n + k];
      const float b = batch.images[j * n + k];
      dot += static_cast<double>(a) * b;
      ni += static_cast<double>(a) * a;
      nj += static_cast<double>(b) * b;
    }
    return dot / std::sqrt(ni * nj);
  };
  EXPECT_GT(corr(0, 1), 0.5);   // same class
  EXPECT_LT(std::abs(corr(0, 2)), 0.5);  // different class
}

TEST(Synthetic, NeighbouringPixelsCorrelated) {
  // The bilinear upsampling must produce spatial correlation (the property
  // that makes input covariances ill-conditioned; see DESIGN.md).
  SyntheticSpec spec = cifar10_like();
  spec.noise = 0.0f;  // prototypes only
  SyntheticImageDataset ds(spec, Split::kTrain);
  Batch batch = ds.get({0});
  double corr_num = 0.0, corr_den = 0.0;
  for (int64_t y = 0; y < spec.height; ++y) {
    for (int64_t x = 0; x + 1 < spec.width; ++x) {
      const float a = batch.images.at(0, 0, y, x);
      const float b = batch.images.at(0, 0, y, x + 1);
      corr_num += static_cast<double>(a) * b;
      corr_den += static_cast<double>(a) * a;
    }
  }
  EXPECT_GT(corr_num / corr_den, 0.8);
}

TEST(Synthetic, SplitSizes) {
  SyntheticSpec spec = cifar10_like();
  EXPECT_EQ(SyntheticImageDataset(spec, Split::kTrain).size(), spec.train_size);
  EXPECT_EQ(SyntheticImageDataset(spec, Split::kVal).size(), spec.val_size);
}

TEST(Synthetic, OutOfRangeIndexThrows) {
  SyntheticImageDataset ds(cifar10_like(), Split::kVal);
  EXPECT_THROW(ds.get({ds.size()}), Error);
  EXPECT_THROW(ds.get({-1}), Error);
}

TEST(Synthetic, BatchShape) {
  SyntheticSpec spec = cifar10_like();
  SyntheticImageDataset ds(spec, Split::kTrain);
  Batch batch = ds.get({1, 2, 3, 4});
  EXPECT_EQ(batch.images.shape(), Shape({4, 3, 32, 32}));
  EXPECT_EQ(batch.size(), 4);
}

}  // namespace
}  // namespace dkfac::data
