#include "data/loader.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/error.hpp"

namespace dkfac::data {
namespace {

using Split = SyntheticImageDataset::Split;

SyntheticSpec small_spec() {
  SyntheticSpec spec = cifar10_like();
  spec.train_size = 320;
  spec.val_size = 40;
  spec.height = spec.width = 8;
  spec.grid = 2;
  return spec;
}

TEST(Loader, BatchesPerEpoch) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  ShardedLoader loader(ds, /*local_batch=*/16, /*rank=*/0, /*world=*/4);
  // 320 samples / (16·4) = 5 global batches.
  EXPECT_EQ(loader.batches_per_epoch(), 5);
  EXPECT_EQ(loader.global_batch(), 64);
}

TEST(Loader, TooLargeGlobalBatchThrows) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  EXPECT_THROW(ShardedLoader(ds, 400, 0, 1), Error);
}

TEST(Loader, ShardsAreDisjointAndCoverGlobalBatch) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  const int world = 4;
  // Collect every rank's samples for one epoch; no sample may repeat
  // within an epoch, and the union must be world·batches·local samples.
  std::set<std::vector<float>> seen;
  int64_t total = 0;
  for (int rank = 0; rank < world; ++rank) {
    ShardedLoader loader(ds, 8, rank, world);
    for (int64_t b = 0; b < loader.batches_per_epoch(); ++b) {
      Batch batch = loader.batch(/*epoch=*/0, b);
      const int64_t stride = batch.images.numel() / batch.size();
      for (int64_t i = 0; i < batch.size(); ++i) {
        std::vector<float> key(batch.images.data() + i * stride,
                               batch.images.data() + (i + 1) * stride);
        EXPECT_TRUE(seen.insert(std::move(key)).second)
            << "duplicate sample in epoch (rank " << rank << ")";
        ++total;
      }
    }
  }
  EXPECT_EQ(total, 4 * 10 * 8);  // world × batches × local
}

TEST(Loader, EpochsReshuffle) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  ShardedLoader loader(ds, 16, 0, 1);
  Batch e0 = loader.batch(0, 0);
  Batch e1 = loader.batch(1, 0);
  EXPECT_FALSE(e0.images == e1.images);
}

TEST(Loader, DeterministicAcrossInstances) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  ShardedLoader a(ds, 16, 1, 2);
  ShardedLoader b(ds, 16, 1, 2);
  Batch ba = a.batch(3, 1);
  Batch bb = b.batch(3, 1);
  EXPECT_TRUE(ba.images == bb.images);
  EXPECT_EQ(ba.labels, bb.labels);
}

TEST(Loader, InvalidArgsThrow) {
  SyntheticImageDataset ds(small_spec(), Split::kTrain);
  EXPECT_THROW(ShardedLoader(ds, 0, 0, 1), Error);
  EXPECT_THROW(ShardedLoader(ds, 16, 2, 2), Error);
  ShardedLoader loader(ds, 16, 0, 1);
  EXPECT_THROW(loader.batch(0, loader.batches_per_epoch()), Error);
}

TEST(Loader, SequentialBatchesCoverDataset) {
  SyntheticImageDataset ds(small_spec(), Split::kVal);
  auto batches = ShardedLoader::sequential_batches(ds, 16);
  ASSERT_EQ(batches.size(), 3u);  // 40 = 16 + 16 + 8
  EXPECT_EQ(batches[0].size(), 16);
  EXPECT_EQ(batches[2].size(), 8);
  int64_t total = 0;
  for (const Batch& b : batches) total += b.size();
  EXPECT_EQ(total, ds.size());
}

}  // namespace
}  // namespace dkfac::data
