#include "tensor/shape.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dkfac {
namespace {

TEST(Shape, DefaultIsEmptyRank0) {
  Shape s;
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);  // rank-0 scalar convention
}

TEST(Shape, InitializerListConstruction) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_EQ(s.dim(1), 3);
  EXPECT_EQ(s.dim(2), 4);
  EXPECT_EQ(s.numel(), 24);
}

TEST(Shape, NegativeIndexCountsFromEnd) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.dim(-2), 3);
  EXPECT_EQ(s.dim(-3), 2);
}

TEST(Shape, OutOfRangeDimThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s.dim(2), Error);
  EXPECT_THROW(s.dim(-3), Error);
}

TEST(Shape, NegativeDimensionThrows) {
  EXPECT_THROW(Shape({2, -1}), Error);
}

TEST(Shape, ZeroDimensionGivesZeroNumel) {
  Shape s{4, 0, 3};
  EXPECT_EQ(s.numel(), 0);
}

TEST(Shape, RowMajorStrides) {
  Shape s{2, 3, 4};
  const auto strides = s.strides();
  ASSERT_EQ(strides.size(), 3u);
  EXPECT_EQ(strides[0], 12);
  EXPECT_EQ(strides[1], 4);
  EXPECT_EQ(strides[2], 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_NE(Shape({2, 3}), Shape({2, 3, 1}));
}

TEST(Shape, ToString) {
  EXPECT_EQ(Shape({2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

}  // namespace
}  // namespace dkfac
