#include "tensor/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.hpp"

namespace dkfac {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(7, 0);
  Rng b(7, 1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next_u64() == b.next_u64());
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 2.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 2.0f);
  }
}

TEST(Rng, UniformIntBoundsAndCoverage) {
  Rng rng(17);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.uniform_int(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 1000 draws
  EXPECT_THROW(rng.uniform_int(0), Error);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(31);
  const int n = 50000;
  double sum = 0.0;
  double sumsq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalMeanStddevShifted) {
  Rng rng(77);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0f, 0.5f);
  EXPECT_NEAR(sum / n, 5.0, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(2024);
  std::vector<int64_t> v(100);
  for (int64_t i = 0; i < 100; ++i) v[static_cast<size_t>(i)] = i;
  std::vector<int64_t> orig = v;
  rng.shuffle(v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, ShuffleDeterministicPerSeed) {
  std::vector<int64_t> a(50), b(50);
  for (int64_t i = 0; i < 50; ++i) a[static_cast<size_t>(i)] = b[static_cast<size_t>(i)] = i;
  Rng r1(9), r2(9);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, FillNormalFillsEverything) {
  Rng rng(4);
  std::vector<float> buf(1000, -123.0f);
  rng.fill_normal(buf);
  int untouched = 0;
  for (float v : buf) untouched += (v == -123.0f);
  EXPECT_EQ(untouched, 0);
}

// Chi-squared uniformity check over 16 buckets.
TEST(Rng, UniformChiSquared) {
  Rng rng(1234);
  const int buckets = 16;
  const int n = 64000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i) {
    counts[static_cast<size_t>(rng.uniform() * buckets)]++;
  }
  const double expected = static_cast<double>(n) / buckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 15 dof: 99.9th percentile ≈ 37.7.
  EXPECT_LT(chi2, 37.7);
}

}  // namespace
}  // namespace dkfac
