#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dkfac {
namespace {

TEST(Tensor, ZeroInitialised) {
  Tensor t(Shape{3, 4});
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FromValuesChecksCount) {
  EXPECT_NO_THROW(Tensor(Shape{2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor(Shape{2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, FullAndOnes) {
  Tensor t = Tensor::full(Shape{5}, 2.5f);
  for (int64_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 2.5f);
  Tensor o = Tensor::ones(Shape{2, 2});
  EXPECT_EQ(o.sum(), 4.0f);
}

TEST(Tensor, EyeHasUnitDiagonal) {
  Tensor i3 = Tensor::eye(3);
  for (int64_t r = 0; r < 3; ++r) {
    for (int64_t c = 0; c < 3; ++c) {
      EXPECT_EQ(i3.at(r, c), r == c ? 1.0f : 0.0f);
    }
  }
}

TEST(Tensor, ReshapePreservesDataAndChecksNumel) {
  Tensor t(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.at(0, 0), 1.0f);
  EXPECT_EQ(r.at(2, 1), 6.0f);
  EXPECT_THROW(t.reshaped(Shape{4, 2}), Error);
}

TEST(Tensor, At2dBoundsChecked) {
  Tensor t(Shape{2, 3});
  EXPECT_THROW(t.at(2, 0), Error);
  EXPECT_THROW(t.at(0, 3), Error);
  EXPECT_THROW(t.at(-1, 0), Error);
}

TEST(Tensor, At4dMatchesNchwLayout) {
  Tensor t(Shape{2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
  EXPECT_THROW(t.at(0, 0, 4, 0), Error);
}

TEST(Tensor, Axpy) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {10, 20, 30});
  a.axpy_(0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 6.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
}

TEST(Tensor, AxpyShapeMismatchThrows) {
  Tensor a(Shape{3});
  Tensor b(Shape{4});
  EXPECT_THROW(a.axpy_(1.0f, b), Error);
}

TEST(Tensor, MulElementwise) {
  Tensor a(Shape{3}, {1, 2, 3});
  Tensor b(Shape{3}, {4, 5, 6});
  a.mul_(b);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
  EXPECT_FLOAT_EQ(a[1], 10.0f);
  EXPECT_FLOAT_EQ(a[2], 18.0f);
}

TEST(Tensor, LerpMatchesRunningAverage) {
  // Eq 16: A_k = ξ·A_new + (1-ξ)·A_{k-1}, with lerp_(1-ξ, ξ, A_new) on A.
  Tensor prev(Shape{2}, {1.0f, 2.0f});
  Tensor next(Shape{2}, {3.0f, 4.0f});
  const float xi = 0.9f;
  prev.lerp_(1.0f - xi, xi, next);
  EXPECT_NEAR(prev[0], 0.1f * 1.0f + 0.9f * 3.0f, 1e-6f);
  EXPECT_NEAR(prev[1], 0.1f * 2.0f + 0.9f * 4.0f, 1e-6f);
}

TEST(Tensor, ScaleAndAddScalar) {
  Tensor t(Shape{2}, {1, -2});
  t.scale_(2.0f).add_scalar_(1.0f);
  EXPECT_FLOAT_EQ(t[0], 3.0f);
  EXPECT_FLOAT_EQ(t[1], -3.0f);
}

TEST(Tensor, ClampMin) {
  Tensor t(Shape{3}, {-1.0f, 0.5f, 2.0f});
  t.clamp_min_(0.0f);
  EXPECT_FLOAT_EQ(t[0], 0.0f);
  EXPECT_FLOAT_EQ(t[1], 0.5f);
}

TEST(Tensor, Reductions) {
  Tensor t(Shape{4}, {1, -2, 3, -4});
  EXPECT_FLOAT_EQ(t.sum(), -2.0f);
  EXPECT_FLOAT_EQ(t.mean(), -0.5f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -4.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 4.0f);
  EXPECT_FLOAT_EQ(t.norm(), std::sqrt(30.0f));
}

TEST(Tensor, DotIsFrobeniusInnerProduct) {
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  EXPECT_FLOAT_EQ(a.dot(b), 5 + 12 + 21 + 32);
}

TEST(Tensor, KahanSumStaysAccurateForManySmallValues) {
  const int64_t n = 1 << 20;
  Tensor t = Tensor::full(Shape{n}, 0.1f);
  // Naive FP32 accumulation drifts by ~1e2 here; Kahan stays within 0.5 of
  // n * fp32(0.1), whose rounding already differs from 0.1 by ~1.5e-9·n.
  const double expected = static_cast<double>(n) * static_cast<double>(0.1f);
  EXPECT_NEAR(t.sum(), expected, 0.5);
}

TEST(Tensor, ValueSemanticsDeepCopy) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b = a;
  b[0] = 99.0f;
  EXPECT_FLOAT_EQ(a[0], 1.0f);
}

TEST(Tensor, OperatorArithmetic) {
  Tensor a(Shape{2}, {1, 2});
  Tensor b(Shape{2}, {3, 4});
  Tensor c = a + b;
  Tensor d = b - a;
  Tensor e = a * 3.0f;
  EXPECT_FLOAT_EQ(c[0], 4.0f);
  EXPECT_FLOAT_EQ(d[1], 2.0f);
  EXPECT_FLOAT_EQ(e[1], 6.0f);
}

TEST(Tensor, AllcloseRespectsTolerance) {
  Tensor a(Shape{2}, {1.0f, 2.0f});
  Tensor b(Shape{2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(allclose(a, b));
  Tensor c(Shape{2}, {1.1f, 2.0f});
  EXPECT_FALSE(allclose(a, c));
  Tensor d(Shape{2, 1}, {1.0f, 2.0f});
  EXPECT_FALSE(allclose(a, d));  // shape mismatch
}

TEST(Tensor, RandnStats) {
  Rng rng(42);
  Tensor t = Tensor::randn(Shape{20000}, rng);
  EXPECT_NEAR(t.mean(), 0.0f, 0.05f);
  // Var ≈ 1: E[x²] with mean≈0.
  EXPECT_NEAR(t.dot(t) / static_cast<float>(t.numel()), 1.0f, 0.05f);
}

TEST(Tensor, MeanOfEmptyThrows) {
  Tensor t(Shape{0});
  EXPECT_THROW(t.mean(), Error);
}

}  // namespace
}  // namespace dkfac
