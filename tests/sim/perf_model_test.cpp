#include "sim/perf_model.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"

namespace dkfac::sim {
namespace {

using kfac::DistributionStrategy;

ClusterSim make_sim(int depth = 50) {
  return ClusterSim(resnet_imagenet_arch(depth));
}

TEST(PerfModel, SgdIterationTimeRoughlyConstantPerScale) {
  // Fixed local batch: compute is scale-free, only collective latency grows.
  ClusterSim sim = make_sim();
  const double t16 = sim.sgd_iteration_s(16);
  const double t256 = sim.sgd_iteration_s(256);
  EXPECT_GT(t256, t16);
  EXPECT_LT(t256, 3.0 * t16);
}

TEST(PerfModel, SgdScalingEfficiencyDegrades) {
  // Paper: SGD scaling efficiency ≈ 68.6% at 128 GPUs, < 50% at 256.
  ClusterSim sim = make_sim();
  const int64_t samples = 1'281'167;
  const double t16 = sim.sgd_time_to_solution_s(16, 90, samples);
  const double t128 = sim.sgd_time_to_solution_s(128, 90, samples);
  const double t256 = sim.sgd_time_to_solution_s(256, 90, samples);
  const double eff128 = (t16 / 8.0) / t128;
  const double eff256 = (t16 / 16.0) / t256;
  EXPECT_GT(eff128, 0.55);
  EXPECT_LT(eff128, 0.85);
  EXPECT_LT(eff256, 0.62);
  EXPECT_GT(eff256, 0.35);
}

TEST(PerfModel, FactorComputationConstantAcrossScales) {
  // Table V: factor Tcomp is flat in GPU count — the §VI-C4 limitation.
  ClusterSim sim = make_sim();
  const auto p16 = sim.kfac_stages(16, DistributionStrategy::kFactorWise);
  const auto p64 = sim.kfac_stages(64, DistributionStrategy::kFactorWise);
  EXPECT_DOUBLE_EQ(p16.factor_comp_s, p64.factor_comp_s);
}

TEST(PerfModel, EigStageShrinksSubLinearly) {
  // Table V/VI: doubling workers does NOT halve the eigendecomposition
  // stage because factor sizes are imbalanced.
  ClusterSim sim = make_sim();
  const auto p16 = sim.kfac_stages(16, DistributionStrategy::kFactorWise);
  const auto p64 = sim.kfac_stages(64, DistributionStrategy::kFactorWise);
  EXPECT_LT(p64.eig_comp_max_s, p16.eig_comp_max_s);
  // Far from the ideal 4× reduction.
  EXPECT_GT(p64.eig_comp_max_s, 0.4 * p16.eig_comp_max_s);
}

TEST(PerfModel, WorkerImbalanceMatchesTableVIShape) {
  // Fastest workers speed up far more than the slowest (Table VI: 6.2–8.3×
  // vs 1.3–1.9× from 16→64 GPUs).
  for (int depth : {50, 101, 152}) {
    ClusterSim sim = make_sim(depth);
    const auto w16 = sim.worker_eig_seconds(16, DistributionStrategy::kFactorWise);
    const auto w64 = sim.worker_eig_seconds(64, DistributionStrategy::kFactorWise);
    const double min16 = *std::min_element(w16.begin(), w16.end());
    const double max16 = *std::max_element(w16.begin(), w16.end());
    const double min64 = *std::min_element(w64.begin(), w64.end());
    const double max64 = *std::max_element(w64.begin(), w64.end());
    const double fast_speedup = min16 / min64;
    const double slow_speedup = max16 / max64;
    EXPECT_GT(fast_speedup, 3.0) << "depth " << depth;
    EXPECT_LT(slow_speedup, 3.0) << "depth " << depth;
    EXPECT_GT(slow_speedup, 0.99) << "depth " << depth;
  }
}

TEST(PerfModel, SizeBalancedReducesEigStage) {
  // The paper's proposed fix (§VI-C4) must beat round-robin at scale.
  ClusterSim sim = make_sim();
  const auto rr = sim.kfac_stages(64, DistributionStrategy::kFactorWise);
  const auto sb = sim.kfac_stages(64, DistributionStrategy::kSizeBalanced);
  EXPECT_LE(sb.eig_comp_max_s, rr.eig_comp_max_s);
}

TEST(PerfModel, LayerWiseExchangesGradientsEveryIteration) {
  ClusterSim sim = make_sim();
  const auto lw = sim.kfac_stages(64, DistributionStrategy::kLayerWise);
  const auto fw = sim.kfac_stages(64, DistributionStrategy::kFactorWise);
  EXPECT_GT(lw.lw_grad_exchange_s, 0.0);
  EXPECT_DOUBLE_EQ(fw.lw_grad_exchange_s, 0.0);
  EXPECT_GT(fw.eig_comm_s, 0.0);
  EXPECT_DOUBLE_EQ(lw.eig_comm_s, 0.0);
}

TEST(PerfModel, HigherUpdateFreqLowersIterationTime) {
  ClusterSim sim = make_sim();
  const double t100 = sim.kfac_iteration_s(64, DistributionStrategy::kFactorWise,
                                           10, 100);
  const double t500 = sim.kfac_iteration_s(64, DistributionStrategy::kFactorWise,
                                           50, 500);
  const double t1000 = sim.kfac_iteration_s(64, DistributionStrategy::kFactorWise,
                                            100, 1000);
  EXPECT_GT(t100, t500);
  EXPECT_GT(t500, t1000);
}

TEST(PerfModel, KfacOptBeatsSgdOnResnet50) {
  // The headline result: with 55 vs 90 epochs, K-FAC-opt is 18–25% faster
  // across scales (Table IV row 1).
  ClusterSim sim = make_sim(50);
  const int64_t samples = 1'281'167;
  for (int gpus : {16, 32, 64, 128, 256}) {
    const int interval = ClusterSim::update_interval_for_scale(gpus);
    const double sgd = sim.sgd_time_to_solution_s(gpus, 90, samples);
    const double kfac = sim.kfac_time_to_solution_s(
        gpus, DistributionStrategy::kFactorWise, 55, samples,
        std::max(1, interval / 10), interval);
    const double improvement = (sgd - kfac) / sgd;
    EXPECT_GT(improvement, 0.10) << gpus << " GPUs";
    EXPECT_LT(improvement, 0.35) << gpus << " GPUs";
  }
}

TEST(PerfModel, KfacAdvantageShrinksWithModelSize) {
  // Table IV column trend: ResNet-152 gains less than ResNet-50 (factor
  // computation does not scale with workers).
  const int64_t samples = 1'281'167;
  const int gpus = 64;
  const int interval = ClusterSim::update_interval_for_scale(gpus);
  auto improvement = [&](int depth) {
    ClusterSim sim = make_sim(depth);
    const double sgd = sim.sgd_time_to_solution_s(gpus, 90, samples);
    const double kfac = sim.kfac_time_to_solution_s(
        gpus, DistributionStrategy::kFactorWise, 55, samples,
        std::max(1, interval / 10), interval);
    return (sgd - kfac) / sgd;
  };
  EXPECT_GT(improvement(50), improvement(152));
}

TEST(PerfModel, UpdateIntervalScalesInverselyWithGpus) {
  EXPECT_EQ(ClusterSim::update_interval_for_scale(16), 2000);
  EXPECT_EQ(ClusterSim::update_interval_for_scale(32), 1000);
  EXPECT_EQ(ClusterSim::update_interval_for_scale(64), 500);
  EXPECT_EQ(ClusterSim::update_interval_for_scale(128), 250);
  EXPECT_EQ(ClusterSim::update_interval_for_scale(256), 125);
}

TEST(PerfModel, IterationsPerEpoch) {
  ClusterSim sim = make_sim();
  EXPECT_NEAR(sim.iterations_per_epoch(64, 1'281'167), 625.57, 0.1);
}

TEST(PerfModel, InvalidInputsThrow) {
  ClusterSim sim = make_sim();
  EXPECT_THROW(sim.kfac_iteration_s(16, DistributionStrategy::kFactorWise, 0, 10),
               Error);
  ClusterConfig config;
  EXPECT_THROW(config.allreduce_s(100, 0), Error);
}

}  // namespace
}  // namespace dkfac::sim
