#include "sim/arch_stats.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "nn/resnet.hpp"

namespace dkfac::sim {
namespace {

TEST(ArchStats, Resnet50ParamCount) {
  // Torchvision ResNet-50 has 25.56M params; our inventory counts only
  // conv + fc weights (no BN affine, biases folded into the fc a_dim), so
  // it should land slightly below that.
  ArchInfo arch = resnet_imagenet_arch(50);
  EXPECT_GT(arch.total_params(), 23'000'000);
  EXPECT_LT(arch.total_params(), 26'000'000);
}

TEST(ArchStats, Resnet101And152Larger) {
  const int64_t p50 = resnet_imagenet_arch(50).total_params();
  const int64_t p101 = resnet_imagenet_arch(101).total_params();
  const int64_t p152 = resnet_imagenet_arch(152).total_params();
  EXPECT_LT(p50, p101);
  EXPECT_LT(p101, p152);
  // Paper quotes ≈25.6M / 44.5M / 60.2M.
  EXPECT_GT(p101, 40'000'000);
  EXPECT_LT(p101, 45'000'000);
  EXPECT_GT(p152, 55'000'000);
  EXPECT_LT(p152, 61'000'000);
}

TEST(ArchStats, Resnet50LayerCount) {
  // 1 stem + 48 block convs + 4 projections + 1 fc = 54 eligible layers.
  EXPECT_EQ(resnet_imagenet_arch(50).layers.size(), 54u);
}

TEST(ArchStats, Resnet50FactorDims) {
  ArchInfo arch = resnet_imagenet_arch(50);
  const auto dims = arch.factor_dims();
  EXPECT_EQ(dims.size(), 108u);  // two factors per layer
  // Largest A factor: stage-4 3×3 conv with 512 input channels → 4608.
  int64_t max_dim = 0;
  for (int64_t d : dims) max_dim = std::max(max_dim, d);
  EXPECT_EQ(max_dim, 4608);
  // Stem: A = 3·7·7 = 147, G = 64.
  EXPECT_EQ(arch.layers[0].a_dim, 147);
  EXPECT_EQ(arch.layers[0].g_dim, 64);
  EXPECT_EQ(arch.layers[0].spatial, 112 * 112);
  // Classifier: A = 2048+1, G = 1000.
  EXPECT_EQ(arch.layers.back().a_dim, 2049);
  EXPECT_EQ(arch.layers.back().g_dim, 1000);
}

TEST(ArchStats, SpatialResolutionTracksStrides) {
  ArchInfo arch = resnet_imagenet_arch(18);
  // Stage-1 convs run at 56², stage-4 at 7².
  bool found_56 = false, found_7 = false;
  for (const LayerShape& l : arch.layers) {
    if (l.name == "s1.b1.conv1") {
      EXPECT_EQ(l.spatial, 56 * 56);
      found_56 = true;
    }
    if (l.name == "s4.b2.conv2") {
      EXPECT_EQ(l.spatial, 7 * 7);
      found_7 = true;
    }
  }
  EXPECT_TRUE(found_56);
  EXPECT_TRUE(found_7);
}

TEST(ArchStats, FactorFlopsSuperLinearInParams) {
  // Figure 10's premise: factor computation grows super-linearly with
  // model complexity.
  const ArchInfo r50 = resnet_imagenet_arch(50);
  const ArchInfo r101 = resnet_imagenet_arch(101);
  const ArchInfo r152 = resnet_imagenet_arch(152);
  const double param_ratio =
      static_cast<double>(r152.total_params()) / r50.total_params();
  const double flop_ratio =
      r152.factor_flops_per_sample() / r50.factor_flops_per_sample();
  EXPECT_GT(flop_ratio, param_ratio);
  EXPECT_GT(r101.factor_flops_per_sample(), r50.factor_flops_per_sample());
}

TEST(ArchStats, CifarResnet32Inventory) {
  ArchInfo arch = resnet_cifar_arch(32);
  // n=5: stem + 30 block convs + 2 projections + fc = 34 layers.
  EXPECT_EQ(arch.layers.size(), 34u);
  // ~0.46M params for standard ResNet-32.
  EXPECT_GT(arch.total_params(), 400'000);
  EXPECT_LT(arch.total_params(), 500'000);
}

TEST(ArchStats, GradientBytesMatchParams) {
  ArchInfo arch = resnet_imagenet_arch(50);
  EXPECT_EQ(arch.gradient_bytes(), arch.total_params() * 4);
  EXPECT_GT(arch.eigen_bytes(), arch.factor_bytes());  // Λ adds n per factor
}

TEST(ArchStats, UnsupportedDepthThrows) {
  EXPECT_THROW(resnet_imagenet_arch(77), Error);
  EXPECT_THROW(resnet_cifar_arch(9), Error);
}

TEST(ArchStats, MatchesNnFactoryShapes) {
  // The shape inventory must agree with the actual nn:: builder: compare
  // eligible-layer counts for CIFAR ResNet-20.
  ArchInfo arch = resnet_cifar_arch(20);
  Rng rng(1);
  auto net = nn::resnet_cifar(20, 10, rng, 16);
  EXPECT_EQ(arch.layers.size(), net->kfac_layers().size());
}

}  // namespace
}  // namespace dkfac::sim
