#include "comm/net/wire.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.hpp"
#include "common/error.hpp"
#include "tensor/random.hpp"

namespace dkfac::comm::net {
namespace {

/// Connected AF_UNIX stream pair — the in-process stand-in for a TCP
/// connection (same stream semantics, no ports to allocate).
std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

std::vector<float> test_payload(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.5f * static_cast<float>(i) - 3.25f;
  return v;
}

TEST(Wire, Crc32KnownVector) {
  // The canonical IEEE CRC-32 check value.
  const char* data = "123456789";
  EXPECT_EQ(crc32({reinterpret_cast<const uint8_t*>(data), 9}), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(Wire, HeaderEncodeDecodeRoundTrip) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kData);
  h.seq = 0xDEADBEEFu;
  h.length = 1234;
  h.checksum = 0x12345678u;
  uint8_t raw[kFrameHeaderBytes];
  h.encode(raw);
  const FrameHeader d = FrameHeader::decode(raw);
  EXPECT_EQ(d.magic, kWireMagic);
  EXPECT_EQ(d.version, kWireVersion);
  EXPECT_EQ(d.type, h.type);
  EXPECT_EQ(d.seq, h.seq);
  EXPECT_EQ(d.length, h.length);
  EXPECT_EQ(d.checksum, h.checksum);
}

TEST(Wire, FrameRoundTrip) {
  auto [a, b] = socket_pair();
  const std::vector<float> sent = test_payload(257);
  const size_t wire_out = send_frame(a, FrameType::kData, /*seq=*/7,
                                     std::span<const float>(sent), 1.0);
  EXPECT_EQ(wire_out, kFrameHeaderBytes + sent.size() * sizeof(float));

  std::vector<float> got(sent.size(), 0.0f);
  const size_t wire_in =
      recv_frame_into(b, FrameType::kData, /*seq=*/7, std::span<float>(got), 1.0);
  EXPECT_EQ(wire_in, wire_out);
  EXPECT_EQ(got, sent);
}

TEST(Wire, ZeroLengthFrame) {
  auto [a, b] = socket_pair();
  send_frame(a, FrameType::kBarrier, /*seq=*/0, std::span<const float>{}, 1.0);
  std::vector<uint8_t> out;
  EXPECT_EQ(recv_frame(b, FrameType::kBarrier, /*seq=*/0, out, 1.0),
            kFrameHeaderBytes);
  EXPECT_TRUE(out.empty());
}

TEST(Wire, VariableLengthFrameAppends) {
  auto [a, b] = socket_pair();
  const std::vector<float> sent = test_payload(10);
  send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(sent), 1.0);
  std::vector<uint8_t> out{0xAB};  // pre-existing content must survive
  recv_frame(b, FrameType::kData, /*seq=*/0, out, 1.0);
  ASSERT_EQ(out.size(), 1 + sent.size() * sizeof(float));
  EXPECT_EQ(out[0], 0xAB);
  std::vector<float> got(sent.size());
  std::memcpy(got.data(), out.data() + 1, sent.size() * sizeof(float));
  EXPECT_EQ(got, sent);
}

TEST(Wire, ChecksumMismatchThrows) {
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(16);
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kData);
  h.length = static_cast<uint32_t>(payload.size() * sizeof(float));
  h.checksum = 0x0BADF00Du;  // wrong on purpose
  uint8_t raw[kFrameHeaderBytes];
  h.encode(raw);
  a.send_all(raw, kFrameHeaderBytes, 1.0);
  a.send_all(payload.data(), payload.size() * sizeof(float), 1.0);
  std::vector<float> got(payload.size());
  try {
    recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0);
    FAIL() << "corrupted frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(Wire, VersionMismatchThrows) {
  auto [a, b] = socket_pair();
  FrameHeader h;
  h.version = kWireVersion + 1;
  h.type = static_cast<uint16_t>(FrameType::kHello);
  uint8_t raw[kFrameHeaderBytes];
  h.encode(raw);
  a.send_all(raw, kFrameHeaderBytes, 1.0);
  std::vector<uint8_t> out;
  try {
    recv_frame(b, FrameType::kHello, /*seq=*/0, out, 1.0);
    FAIL() << "future-versioned frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
  }
}

TEST(Wire, BadMagicThrows) {
  auto [a, b] = socket_pair();
  FrameHeader h;
  h.magic = 0x12345678;
  uint8_t raw[kFrameHeaderBytes];
  h.encode(raw);
  a.send_all(raw, kFrameHeaderBytes, 1.0);
  std::vector<uint8_t> out;
  EXPECT_THROW(recv_frame(b, FrameType::kHello, /*seq=*/0, out, 1.0), Error);
}

TEST(Wire, SequenceMismatchThrows) {
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(4);
  send_frame(a, FrameType::kData, /*seq=*/5, std::span<const float>(payload), 1.0);
  std::vector<float> got(payload.size());
  try {
    recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0);
    FAIL() << "desynchronised frame accepted";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("sequence"), std::string::npos);
  }
}

TEST(Wire, TypeMismatchThrows) {
  auto [a, b] = socket_pair();
  send_frame(a, FrameType::kBarrier, /*seq=*/0, std::span<const float>{}, 1.0);
  std::vector<uint8_t> out;
  EXPECT_THROW(recv_frame(b, FrameType::kData, /*seq=*/0, out, 1.0), Error);
}

TEST(Wire, LengthMismatchThrows) {
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(8);
  send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(payload), 1.0);
  std::vector<float> got(4);  // expects half of what the peer sent
  EXPECT_THROW(
      recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0),
      Error);
}

TEST(Wire, RecvTimeoutThrowsQuickly) {
  auto [a, b] = socket_pair();
  (void)a;  // never sends
  std::vector<float> got(4);
  const auto start = Clock::now();
  try {
    recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 0.2);
    FAIL() << "recv on a silent peer returned";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos);
  }
  EXPECT_LT(seconds_since(start), 2.0);  // a timeout, not a hang
}

TEST(Wire, PeerCloseThrows) {
  auto [a, b] = socket_pair();
  a.close();
  std::vector<float> got(4);
  try {
    recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0);
    FAIL() << "recv from a dead peer returned";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("closed"), std::string::npos);
  }
}

TEST(Wire, SendToClosedPeerThrowsNotSigpipe) {
  auto [a, b] = socket_pair();
  b.close();
  const std::vector<float> payload = test_payload(1 << 16);
  // The first sends may land in the kernel buffer; keep writing until the
  // reset surfaces. MSG_NOSIGNAL must turn SIGPIPE into an Error.
  EXPECT_THROW(
      {
        for (int i = 0; i < 64; ++i) {
          send_frame(a, FrameType::kData, static_cast<uint32_t>(i),
                     std::span<const float>(payload), 1.0);
        }
      },
      Error);
}

TEST(Wire, ExchangeFullDuplexSingleThreaded) {
  // One endpoint pre-loads a frame, then exchange() on the other side must
  // send and receive concurrently without a second thread.
  auto [a, b] = socket_pair();
  const std::vector<float> from_b = test_payload(33);
  send_frame(b, FrameType::kData, /*seq=*/0, std::span<const float>(from_b), 1.0);

  const std::vector<float> from_a = test_payload(77);
  std::vector<uint8_t> got;
  const size_t moved = exchange_frames(
      a, FrameType::kData, /*send_seq=*/0,
      {reinterpret_cast<const uint8_t*>(from_a.data()), from_a.size() * sizeof(float)},
      a, FrameType::kData, /*recv_seq=*/0, got, 1.0);
  EXPECT_EQ(moved, 2 * kFrameHeaderBytes + (33 + 77) * sizeof(float));
  ASSERT_EQ(got.size(), from_b.size() * sizeof(float));
  EXPECT_EQ(std::memcmp(got.data(), from_b.data(), got.size()), 0);

  std::vector<float> b_got(from_a.size());
  recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(b_got), 1.0);
  EXPECT_EQ(b_got, from_a);
}

// ---- frame fuzzing --------------------------------------------------------
//
// Hardening sweep: no mutation of a valid frame — truncation, a bit flip
// anywhere in header/payload/CRC, or an oversized length field — may ever
// be ACCEPTED, HANG the receiver, or escape as anything but a typed
// dkfac::Error. The PRNG is seeded deterministically, so a failure
// reproduces exactly; CRC-collision flakes are impossible for single-bit
// flips (CRC-32 detects all of them) and the truncation/oversize paths
// never reach the checksum.

/// One canonical valid frame (header + payload bytes) as it appears on the
/// stream.
std::vector<uint8_t> canonical_frame(std::span<const float> payload,
                                     uint32_t seq) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(FrameType::kData);
  h.seq = seq;
  h.length = static_cast<uint32_t>(payload.size_bytes());
  h.checksum = crc32({reinterpret_cast<const uint8_t*>(payload.data()),
                      payload.size_bytes()});
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size_bytes());
  h.encode(frame.data());
  std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
              payload.size_bytes());
  return frame;
}

/// Writes `stream` to a fresh connection, closes the sender, and expects
/// the frame receive to surface a typed dkfac::Error — never success, a
/// hang, or a foreign exception (which would propagate and fail the test).
void expect_typed_rejection(const std::vector<uint8_t>& stream,
                            const std::string& what) {
  auto [sender, receiver] = socket_pair();
  if (!stream.empty()) sender.send_all(stream.data(), stream.size(), 2.0);
  // Closing the sender turns every "waiting for more bytes" state into an
  // immediate peer-close error instead of a timeout wait.
  sender.close();
  std::vector<uint8_t> out;
  const auto start = Clock::now();
  try {
    recv_frame(receiver, FrameType::kData, /*seq=*/9, out, 2.0);
    FAIL() << what << ": mutated frame was accepted";
  } catch (const Error&) {
    // Typed rejection — exactly what the contract demands.
  }
  EXPECT_LT(seconds_since(start), 2.5) << what << ": rejection was not prompt";
}

TEST(WireFuzz, TruncatedFramesAlwaysRejectTyped) {
  const std::vector<float> payload = test_payload(37);
  const std::vector<uint8_t> frame = canonical_frame(payload, /*seq=*/9);
  Rng rng(0xF422);
  // Every header-boundary truncation plus a random sample of the rest.
  for (size_t cut = 0; cut <= kFrameHeaderBytes; ++cut) {
    expect_typed_rejection({frame.begin(), frame.begin() + static_cast<ptrdiff_t>(cut)},
                           "truncate@" + std::to_string(cut));
  }
  for (int i = 0; i < 64; ++i) {
    const size_t cut = rng.uniform_int(frame.size());  // in [0, size)
    expect_typed_rejection({frame.begin(), frame.begin() + static_cast<ptrdiff_t>(cut)},
                           "truncate@" + std::to_string(cut));
  }
}

TEST(WireFuzz, BitFlipsAnywhereAlwaysRejectTyped) {
  const std::vector<float> payload = test_payload(37);
  const std::vector<uint8_t> frame = canonical_frame(payload, /*seq=*/9);
  Rng rng(0xB17F11B);
  // Every bit of the header (magic, version, type, seq, length, CRC) plus
  // a random sample of payload bits.
  for (size_t bit = 0; bit < kFrameHeaderBytes * 8; ++bit) {
    std::vector<uint8_t> mutated = frame;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    expect_typed_rejection(mutated, "headerflip@" + std::to_string(bit));
  }
  for (int i = 0; i < 128; ++i) {
    const size_t bit =
        kFrameHeaderBytes * 8 + rng.uniform_int((frame.size() - kFrameHeaderBytes) * 8);
    std::vector<uint8_t> mutated = frame;
    mutated[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    expect_typed_rejection(mutated, "payloadflip@" + std::to_string(bit));
  }
}

TEST(WireFuzz, OversizedLengthFieldsRejectBeforeAllocation) {
  const std::vector<float> payload = test_payload(8);
  Rng rng(0x0DDF00D);
  for (int i = 0; i < 32; ++i) {
    std::vector<uint8_t> frame = canonical_frame(payload, /*seq=*/9);
    // Length field lives at bytes 12..15. Patch in a value beyond the
    // protocol cap — the receiver must reject it BEFORE allocating or
    // waiting for a payload that will never arrive.
    const uint32_t huge =
        kMaxFramePayloadBytes + 1u +
        static_cast<uint32_t>(rng.uniform_int(0x7FFFFFFFu - kMaxFramePayloadBytes));
    for (int b = 0; b < 4; ++b) {
      frame[12 + static_cast<size_t>(b)] = static_cast<uint8_t>(huge >> (8 * b));
    }
    expect_typed_rejection(frame, "hugelen=" + std::to_string(huge));
  }
}

TEST(WireFuzz, RandomGarbageStreamsRejectTyped) {
  Rng rng(0x6A42BA6E);
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> garbage(rng.uniform_int(256));
    for (uint8_t& b : garbage) {
      b = static_cast<uint8_t>(rng.uniform_int(256));
    }
    expect_typed_rejection(garbage, "garbage#" + std::to_string(i));
  }
}

TEST(Wire, ExchangeLargePayloadsDoNotDeadlock) {
  // Both sides send 8 MB at once — far beyond any socket buffer. Blocking
  // send-then-recv would wedge here; the full-duplex pump must not.
  auto [a, b] = socket_pair();
  const std::vector<float> big_a = test_payload(2 << 20);
  const std::vector<float> big_b = test_payload(2 << 20);

  std::thread other([&] {
    std::vector<uint8_t> got;
    exchange_frames(b, FrameType::kData, /*send_seq=*/0,
                    {reinterpret_cast<const uint8_t*>(big_b.data()),
                     big_b.size() * sizeof(float)},
                    b, FrameType::kData, /*recv_seq=*/0, got, 30.0);
    EXPECT_EQ(got.size(), big_a.size() * sizeof(float));
    EXPECT_EQ(std::memcmp(got.data(), big_a.data(), got.size()), 0);
  });

  std::vector<uint8_t> got;
  exchange_frames(a, FrameType::kData, /*send_seq=*/0,
                  {reinterpret_cast<const uint8_t*>(big_a.data()),
                   big_a.size() * sizeof(float)},
                  a, FrameType::kData, /*recv_seq=*/0, got, 30.0);
  other.join();
  EXPECT_EQ(got.size(), big_b.size() * sizeof(float));
  EXPECT_EQ(std::memcmp(got.data(), big_b.data(), got.size()), 0);
}

}  // namespace
}  // namespace dkfac::comm::net
