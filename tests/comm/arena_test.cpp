// comm::Arena / comm::BufferView — the zero-copy transport substrate.
//
// Pins the four contracts the factor pipeline builds on: (1) allocation
// behaviour — alignment, block reuse across reset(), the steady-state
// counter; (2) lifetime safety — span() after reset throws, reset while
// pinned throws, a stale view submitted to the overlap pipeline surfaces
// as the executor's sticky error; (3) FusionBuffer's zero-copy path —
// contiguous arena chunks reduce in place (no staged bytes), overlapping
// registrations are rejected; (4) numerics — the in-place pack→encode→
// reduce→decode→unpack pipeline is bitwise identical to the legacy
// vector-per-stage copy chain it replaced.
#include "comm/arena.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "comm/async_executor.hpp"
#include "comm/codec.hpp"
#include "comm/fusion.hpp"
#include "comm/symmetric_packer.hpp"
#include "comm/thread_comm.hpp"
#include "common/error.hpp"
#include "tensor/tensor.hpp"

namespace dkfac::comm {
namespace {

// ---- allocation behaviour ---------------------------------------------------

TEST(Arena, AllocationsAreCacheLineAligned) {
  Arena arena;
  for (size_t floats : {1u, 3u, 17u, 100u, 4097u}) {
    const BufferView view = arena.alloc(floats);
    ASSERT_EQ(view.size(), floats);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(view.span().data()) %
                  Arena::kAlignBytes,
              0u)
        << "alloc of " << floats << " floats not cache-line aligned";
  }
}

TEST(Arena, ZeroFloatAllocIsEmpty) {
  Arena arena;
  const BufferView view = arena.alloc(0);
  EXPECT_TRUE(view.empty());
  EXPECT_EQ(arena.stats().block_allocs, 0u);
}

TEST(Arena, ResetAllocCycleOfFixedShapeReusesOneBlock) {
  Arena arena;
  const BufferView first = arena.alloc(1000);
  const float* base = first.span().data();
  for (int cycle = 0; cycle < 10; ++cycle) {
    arena.reset();
    const BufferView again = arena.alloc(1000);
    EXPECT_EQ(again.span().data(), base) << "cycle " << cycle;
  }
  EXPECT_EQ(arena.stats().block_allocs, 1u);
}

TEST(Arena, SteadyStateCounterCountsLateGrowth) {
  Arena arena;
  arena.alloc(100);
  arena.mark_steady_state();
  EXPECT_EQ(arena.stats().steady_state_allocs, 0u);
  arena.reset();
  arena.alloc(100);  // same shape — reuses the warm block
  EXPECT_EQ(arena.stats().steady_state_allocs, 0u);
  arena.alloc(1 << 20);  // forces a new block after warm-up
  EXPECT_EQ(arena.stats().steady_state_allocs, 1u);
  EXPECT_GT(arena.stats().bytes_reserved, (1u << 20) * sizeof(float));
}

TEST(Arena, StatsSumAcrossInstances) {
  Arena a;
  Arena b;
  a.alloc(10);
  b.alloc(10);
  ArenaStats total = a.stats();
  total += b.stats();
  EXPECT_EQ(total.block_allocs, 2u);
  EXPECT_EQ(total.bytes_reserved, a.stats().bytes_reserved * 2);
}

// ---- lifetime safety --------------------------------------------------------

TEST(Arena, SpanThrowsAfterReset) {
  Arena arena;
  const BufferView view = arena.alloc(16);
  EXPECT_NO_THROW(view.span());
  arena.reset();
  EXPECT_THROW(view.span(), Error);
  // A view carved after the reset is valid again.
  const BufferView fresh = arena.alloc(16);
  EXPECT_NO_THROW(fresh.span());
  EXPECT_THROW(view.span(), Error);  // the stale one stays dead
}

TEST(Arena, SubviewInheritsEpochValidation) {
  Arena arena;
  const BufferView view = arena.alloc(32);
  const BufferView sub = view.subview(8, 16);
  EXPECT_EQ(sub.span().size(), 16u);
  arena.reset();
  EXPECT_THROW(sub.span(), Error);
}

TEST(Arena, SubviewOutOfBoundsThrows) {
  Arena arena;
  const BufferView view = arena.alloc(8);
  EXPECT_THROW(view.subview(4, 8), Error);
}

TEST(Arena, ResetWhilePinnedThrows) {
  Arena arena;
  arena.alloc(8);
  arena.pin();
  EXPECT_THROW(arena.reset(), Error);
  arena.pin();  // nestable
  arena.unpin();
  EXPECT_THROW(arena.reset(), Error);
  arena.unpin();
  EXPECT_NO_THROW(arena.reset());
}

TEST(Arena, UnmanagedViewNeedsNoArena) {
  std::vector<float> storage(8, 1.0f);
  const BufferView view{std::span<float>(storage)};
  EXPECT_FALSE(view.arena_backed());
  EXPECT_EQ(view.span().data(), storage.data());
}

TEST(Arena, StaleViewSubmittedToOverlapPipelineSurfacesAtWait) {
  // The trainer-side hazard: an exchange's views are submitted to the
  // background executor, then the arena is reset before the worker ran the
  // collective. The epoch check must turn that into the executor's sticky
  // error — never a silent reduction over recycled memory.
  SelfComm comm;
  Arena arena;
  const BufferView view = arena.alloc(64);
  arena.reset();  // view is now stale
  AsyncExecutor executor(comm, 1 << 20);
  executor.submit(view, ReduceOp::kSum);
  EXPECT_THROW(executor.wait(), Error);
  EXPECT_THROW(executor.wait(), Error);  // sticky
}

// ---- FusionBuffer zero-copy path -------------------------------------------

TEST(Arena, FusionRejectsOverlappingViews) {
  SelfComm comm;
  Arena arena;
  const BufferView slot = arena.alloc(100);
  FusionBuffer fusion(comm);
  fusion.add(slot.subview(0, 60));
  EXPECT_THROW(fusion.add(slot.subview(50, 40)), Error);  // overlaps [50,60)
  EXPECT_NO_THROW(fusion.add(slot.subview(60, 40)));      // adjacent is fine
}

TEST(Arena, ContiguousArenaViewsReduceInPlaceWithoutStaging) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    Arena arena;
    const BufferView slot = arena.alloc(96);
    for (float& v : slot.span()) v = static_cast<float>(rank + 1);
    FusionBuffer fusion(comm, 1 << 20);
    // Back-to-back subviews of one slot — the chunk is contiguous, so the
    // collective must run directly on the arena memory.
    fusion.add(slot.subview(0, 32));
    fusion.add(slot.subview(32, 64));
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    EXPECT_EQ(fusion.last_inplace_chunks(), 1u);
    EXPECT_EQ(fusion.staged_copy_bytes(), 0u);
    EXPECT_EQ(fusion.arena_stats().block_allocs, 0u);  // staging never used
    for (float v : slot.span()) EXPECT_FLOAT_EQ(v, 3.0f);
  });
}

TEST(Arena, ScatteredViewsFallBackToStagingWithSameResult) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> a(16, static_cast<float>(rank + 1));
    std::vector<float> b(16, static_cast<float>(2 * (rank + 1)));
    FusionBuffer fusion(comm, 1 << 20);
    fusion.add(a);
    fusion.add(b);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_inplace_chunks(), 0u);
    // 32 floats in + 32 floats out through the staging slot.
    EXPECT_EQ(fusion.staged_copy_bytes(), 2u * 32u * sizeof(float));
    for (float v : a) EXPECT_FLOAT_EQ(v, 3.0f);
    for (float v : b) EXPECT_FLOAT_EQ(v, 6.0f);
  });
}

TEST(Arena, ExecuteOnResetViewThrowsBeforeReducing) {
  SelfComm comm;
  Arena arena;
  const BufferView view = arena.alloc(8);
  FusionBuffer fusion(comm);
  fusion.add(view);
  arena.reset();
  EXPECT_THROW(fusion.execute(ReduceOp::kSum), Error);
  EXPECT_EQ(fusion.pending_views(), 0u);  // failed execute still clears
}

// ---- bitwise parity with the legacy copy chain ------------------------------

/// The pre-arena pipeline, stage-owned vector per hop: pack each symmetric
/// matrix into a packed vector, encode into a second vector, reduce THAT,
/// decode back into the packed vector, unpack. The reference the in-place
/// pipeline must match bit for bit.
std::vector<Tensor> legacy_copy_chain(const std::vector<Tensor>& factors,
                                      Precision prec, Communicator& comm) {
  std::vector<Tensor> out = factors;
  int64_t packed_total = 0;
  int64_t encoded_total = 0;
  for (const Tensor& f : out) {
    packed_total += SymmetricPacker::packed_size(f.dim(0));
    encoded_total +=
        Codec::encoded_floats(SymmetricPacker::packed_size(f.dim(0)));
  }
  std::vector<float> packed(static_cast<size_t>(packed_total));
  std::vector<float> encoded(static_cast<size_t>(encoded_total));
  int64_t p = 0;
  int64_t e = 0;
  FusionBuffer fusion(comm, 1 << 20);
  for (const Tensor& f : out) {
    const int64_t c = SymmetricPacker::packed_size(f.dim(0));
    const int64_t ec = Codec::encoded_floats(c);
    const std::span<float> tri(packed.data() + p, static_cast<size_t>(c));
    SymmetricPacker::pack(f, tri);
    const std::span<float> enc(encoded.data() + e, static_cast<size_t>(ec));
    Codec::encode(tri, enc, prec);
    fusion.add(enc, prec);
    p += c;
    e += ec;
  }
  fusion.execute(ReduceOp::kAverage);
  p = 0;
  e = 0;
  for (Tensor& f : out) {
    const int64_t c = SymmetricPacker::packed_size(f.dim(0));
    const int64_t ec = Codec::encoded_floats(c);
    Codec::decode(
        std::span<const float>(encoded.data() + e, static_cast<size_t>(ec)),
        std::span<float>(packed.data() + p, static_cast<size_t>(c)), prec);
    SymmetricPacker::unpack(
        std::span<const float>(packed.data() + p, static_cast<size_t>(c)), f);
    p += c;
    e += ec;
  }
  return out;
}

/// The arena pipeline: ONE slot holds pack + in-place encode; the
/// collective reduces slot subviews; decode expands back in place
/// (descending) and unpacks.
std::vector<Tensor> arena_pipeline(const std::vector<Tensor>& factors,
                                   Precision prec, Communicator& comm) {
  std::vector<Tensor> out = factors;
  int64_t packed_total = 0;
  for (const Tensor& f : out) {
    packed_total += SymmetricPacker::packed_size(f.dim(0));
  }
  Arena arena;
  const BufferView slot = arena.alloc(static_cast<size_t>(packed_total), prec,
                                      BufferLayout::kTrianglePacked);
  const std::span<float> mem = slot.span();
  FusionBuffer fusion(comm, 1 << 20);
  int64_t p = 0;
  int64_t e = 0;
  for (const Tensor& f : out) {
    const int64_t c = SymmetricPacker::packed_size(f.dim(0));
    const int64_t ec = Codec::encoded_floats(c);
    SymmetricPacker::pack(
        f, std::span<float>(mem.data() + p, static_cast<size_t>(c)));
    Codec::encode(std::span<const float>(mem.data() + p, static_cast<size_t>(c)),
                  mem.subspan(static_cast<size_t>(e), static_cast<size_t>(ec)),
                  prec);
    fusion.add(slot.subview(static_cast<size_t>(e), static_cast<size_t>(ec),
                            prec, BufferLayout::kEncoded));
    p += c;
    e += ec;
  }
  fusion.execute(ReduceOp::kAverage);
  // The encoded views are back-to-back in one slot: the reduction must have
  // run on the slot itself.
  EXPECT_EQ(fusion.staged_copy_bytes(), 0u);
  for (int64_t f = static_cast<int64_t>(out.size()) - 1; f >= 0; --f) {
    const int64_t c = SymmetricPacker::packed_size(out[static_cast<size_t>(f)].dim(0));
    const int64_t ec = Codec::encoded_floats(c);
    p -= c;
    e -= ec;
    const std::span<float> tri(mem.data() + p, static_cast<size_t>(c));
    Codec::decode(mem.subspan(static_cast<size_t>(e), static_cast<size_t>(ec)),
                  tri, prec);
    SymmetricPacker::unpack(tri, out[static_cast<size_t>(f)]);
  }
  return out;
}

std::vector<Tensor> make_rank_factors(int rank) {
  // Ragged sizes (odd triangles) so encode padding and unaligned interior
  // offsets are all in play.
  std::vector<Tensor> factors;
  for (int64_t n : {5, 8, 3}) {
    Tensor f(Shape{n, n});
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = i; j < n; ++j) {
        const float v = 0.03f * static_cast<float>(i * n + j) -
                        0.7f * static_cast<float>(rank + 1);
        f.at(i, j) = v;
        f.at(j, i) = v;
      }
    }
    factors.push_back(std::move(f));
  }
  return factors;
}

TEST(Arena, InPlacePipelineMatchesLegacyCopyChainBitwise) {
  for (Precision prec : {Precision::kFp16, Precision::kBf16}) {
    // Legacy reference, reduced across the same 3-rank group.
    std::vector<std::vector<Tensor>> legacy(3);
    {
      LocalGroup group(3);
      group.run([&](int rank, Communicator& comm) {
        legacy[static_cast<size_t>(rank)] =
            legacy_copy_chain(make_rank_factors(rank), prec, comm);
      });
    }
    std::vector<std::vector<Tensor>> inplace(3);
    {
      LocalGroup group(3);
      group.run([&](int rank, Communicator& comm) {
        inplace[static_cast<size_t>(rank)] =
            arena_pipeline(make_rank_factors(rank), prec, comm);
      });
    }
    for (int rank = 0; rank < 3; ++rank) {
      const auto& a = legacy[static_cast<size_t>(rank)];
      const auto& b = inplace[static_cast<size_t>(rank)];
      ASSERT_EQ(a.size(), b.size());
      for (size_t f = 0; f < a.size(); ++f) {
        ASSERT_EQ(a[f].numel(), b[f].numel());
        for (int64_t i = 0; i < a[f].numel(); ++i) {
          ASSERT_EQ(std::bit_cast<uint32_t>(a[f][i]),
                    std::bit_cast<uint32_t>(b[f][i]))
              << precision_name(prec) << " rank " << rank << " factor " << f
              << " element " << i;
        }
      }
    }
  }
}

TEST(Arena, InPlaceEncodeMatchesDisjointEncodeBitwise) {
  // The aliasing contract in isolation: encoding a payload into its own
  // prefix produces the same bits as encoding into a disjoint buffer, and
  // decoding expands it back exactly.
  for (Precision prec : {Precision::kFp16, Precision::kBf16}) {
    for (size_t n : {1u, 2u, 7u, 64u, 101u}) {
      std::vector<float> source(n);
      for (size_t i = 0; i < n; ++i) {
        source[i] = 0.21f * static_cast<float>(i) - 3.0f;
      }
      std::vector<float> disjoint(
          static_cast<size_t>(Codec::encoded_floats(static_cast<int64_t>(n))));
      Codec::encode(source, disjoint, prec);

      std::vector<float> inplace(source);
      const std::span<float> enc(inplace.data(), disjoint.size());
      Codec::encode(std::span<const float>(inplace.data(), n), enc, prec);
      for (size_t i = 0; i < disjoint.size(); ++i) {
        ASSERT_EQ(std::bit_cast<uint32_t>(disjoint[i]),
                  std::bit_cast<uint32_t>(inplace[i]))
            << precision_name(prec) << " n=" << n << " word " << i;
      }

      // Expand back in place (decode writes backward): src is the prefix,
      // dst the full extent of the same storage.
      std::vector<float> roundtrip(inplace);
      Codec::decode(std::span<const float>(roundtrip.data(), disjoint.size()),
                    std::span<float>(roundtrip.data(), n), prec);
      for (size_t i = 0; i < n; ++i) {
        const float expected =
            Codec::decode_scalar(Codec::encode_scalar(source[i], prec), prec);
        ASSERT_EQ(std::bit_cast<uint32_t>(expected),
                  std::bit_cast<uint32_t>(roundtrip[i]))
            << precision_name(prec) << " n=" << n << " element " << i;
      }
    }
  }
}

TEST(Arena, CodecRejectsWrongDirectionOverlap) {
  std::vector<float> buf(32, 0.5f);
  // encode with dst AFTER src inside the same storage: illegal direction.
  EXPECT_THROW(Codec::encode(std::span<const float>(buf.data(), 16),
                             std::span<float>(buf.data() + 8, 8),
                             Precision::kFp16),
               Error);
  // decode with dst BEFORE src: illegal direction.
  EXPECT_THROW(Codec::decode(std::span<const float>(buf.data() + 8, 8),
                             std::span<float>(buf.data(), 16),
                             Precision::kFp16),
               Error);
}

}  // namespace
}  // namespace dkfac::comm
