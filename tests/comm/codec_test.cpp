// comm::Codec — exhaustive FP16/BF16 conversion properties.
//
// The cross-backend parity contract rides on these conversions being pure,
// total integer functions: every rank must produce byte-identical
// encodings for identical inputs, and decode∘encode must be the identity
// on every 16-bit pattern so re-encoding a reduced payload never drifts.
#include "comm/codec.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "tensor/random.hpp"

namespace dkfac::comm {
namespace {

TEST(Codec, PrecisionNamesRoundTrip) {
  for (Precision p : {Precision::kFp32, Precision::kFp16, Precision::kBf16}) {
    EXPECT_EQ(parse_precision(precision_name(p)), p);
  }
  EXPECT_THROW(parse_precision("fp8"), Error);
  EXPECT_THROW(parse_precision(""), Error);
}

TEST(Codec, TransportSizing) {
  EXPECT_EQ(Codec::encoded_floats(0), 0);
  EXPECT_EQ(Codec::encoded_floats(1), 1);
  EXPECT_EQ(Codec::encoded_floats(2), 1);
  EXPECT_EQ(Codec::encoded_floats(3), 2);
  EXPECT_EQ(Codec::encoded_floats(1001), 501);
  EXPECT_EQ(Codec::wire_element_bytes(Precision::kFp32), 4u);
  EXPECT_EQ(Codec::wire_element_bytes(Precision::kFp16), 2u);
  EXPECT_EQ(Codec::wire_element_bytes(Precision::kBf16), 2u);
  EXPECT_EQ(Codec::wire_bytes(10, Precision::kFp32), 40u);
  EXPECT_EQ(Codec::wire_bytes(10, Precision::kFp16), 20u);
  EXPECT_EQ(Codec::wire_bytes(11, Precision::kBf16), 24u);  // pad slot counted
}

// ---- FP16 ------------------------------------------------------------------

TEST(Codec, Fp16KnownDecodings) {
  EXPECT_EQ(Codec::decode_fp16(0x0000), 0.0f);
  EXPECT_TRUE(std::signbit(Codec::decode_fp16(0x8000)));
  EXPECT_EQ(Codec::decode_fp16(0x8000), -0.0f);
  EXPECT_EQ(Codec::decode_fp16(0x3C00), 1.0f);
  EXPECT_EQ(Codec::decode_fp16(0xC000), -2.0f);
  EXPECT_EQ(Codec::decode_fp16(0x7BFF), 65504.0f);  // max finite
  EXPECT_EQ(Codec::decode_fp16(0x0400), std::ldexp(1.0f, -14));  // min normal
  EXPECT_EQ(Codec::decode_fp16(0x0001), std::ldexp(1.0f, -24));  // min subnormal
  EXPECT_EQ(Codec::decode_fp16(0x03FF),
            std::ldexp(1.0f, -24) * 1023.0f);  // max subnormal
  EXPECT_EQ(Codec::decode_fp16(0x7C00), std::numeric_limits<float>::infinity());
  EXPECT_EQ(Codec::decode_fp16(0xFC00), -std::numeric_limits<float>::infinity());
  EXPECT_TRUE(std::isnan(Codec::decode_fp16(0x7E00)));  // quiet NaN
  EXPECT_TRUE(std::isnan(Codec::decode_fp16(0x7C01)));  // signalling NaN
}

TEST(Codec, Fp16KnownEncodings) {
  EXPECT_EQ(Codec::encode_fp16(0.0f), 0x0000);
  EXPECT_EQ(Codec::encode_fp16(-0.0f), 0x8000);
  EXPECT_EQ(Codec::encode_fp16(1.0f), 0x3C00);
  EXPECT_EQ(Codec::encode_fp16(-2.0f), 0xC000);
  EXPECT_EQ(Codec::encode_fp16(65504.0f), 0x7BFF);
  // Beyond max finite: 65520 is the exact midpoint to the next (absent)
  // step — RNE rounds the all-ones mantissa up, overflowing to infinity.
  EXPECT_EQ(Codec::encode_fp16(65520.0f), 0x7C00);
  EXPECT_EQ(Codec::encode_fp16(1.0e6f), 0x7C00);
  EXPECT_EQ(Codec::encode_fp16(-1.0e6f), 0xFC00);
  EXPECT_EQ(Codec::encode_fp16(std::numeric_limits<float>::infinity()), 0x7C00);
  // Subnormal targets.
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(1.0f, -24)), 0x0001);
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(1.0f, -14)), 0x0400);
  // 2^-25 is the midpoint between 0 and the smallest subnormal: tie to
  // even → zero. Anything above it rounds up to 0x0001.
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(1.0f, -25)), 0x0000);
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(1.5f, -25)), 0x0001);
  // 3·2^-25 is the midpoint between subnormals 1 and 2: tie to even → 2.
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(3.0f, -25)), 0x0002);
  // Below the halfway-to-smallest-subnormal everything flushes to ±0.
  EXPECT_EQ(Codec::encode_fp16(std::ldexp(1.0f, -26)), 0x0000);
  EXPECT_EQ(Codec::encode_fp16(-std::ldexp(1.0f, -26)), 0x8000);
}

TEST(Codec, Fp16RoundToNearestEvenTies) {
  // 1 + 2^-11 sits exactly between 1.0 (even mantissa) and 1 + 2^-10:
  // tie goes to the even neighbour, 1.0.
  EXPECT_EQ(Codec::encode_fp16(1.0f + std::ldexp(1.0f, -11)), 0x3C00);
  // 1 + 3·2^-11 sits between 1 + 2^-10 (odd) and 1 + 2^-9 (even): up.
  EXPECT_EQ(Codec::encode_fp16(1.0f + std::ldexp(3.0f, -11)), 0x3C02);
  // Non-ties round to nearest regardless of parity.
  EXPECT_EQ(Codec::encode_fp16(1.0f + std::ldexp(1.0f, -11) +
                               std::ldexp(1.0f, -18)),
            0x3C01);
  // 1024.5: ulp is 1 here, midpoint between 1024 (even) and 1025 → down.
  EXPECT_EQ(Codec::encode_fp16(1024.5f), 0x6400);
  // 1025.5: midpoint between 1025 (odd) and 1026 (even) → up.
  EXPECT_EQ(Codec::encode_fp16(1025.5f), 0x6402);
}

TEST(Codec, Fp16AllPatternsRoundTripExactly) {
  // decode∘encode must be the identity on every one of the 65536 bit
  // patterns — zeros, subnormals, normals, infinities, and every NaN
  // payload (quiet and signalling) included.
  for (uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto h = static_cast<uint16_t>(bits);
    const float f = Codec::decode_fp16(h);
    ASSERT_EQ(Codec::encode_fp16(f), h)
        << "pattern 0x" << std::hex << bits << " decoded to " << f
        << " but re-encoded differently";
  }
}

TEST(Codec, Fp16NanPayloadsSurvive) {
  // A float NaN whose payload lives only in the low mantissa bits would
  // truncate to an Inf pattern; the encoder must keep it a NaN.
  const float low_payload_nan = std::bit_cast<float>(0x7F800001u);
  const uint16_t encoded = Codec::encode_fp16(low_payload_nan);
  EXPECT_EQ(encoded & 0x7C00u, 0x7C00u);
  EXPECT_NE(encoded & 0x03FFu, 0u) << "NaN collapsed into Inf";
  EXPECT_TRUE(std::isnan(Codec::decode_fp16(encoded)));
  // Sign is preserved through the NaN path.
  EXPECT_NE(Codec::encode_fp16(std::bit_cast<float>(0xFF800001u)) & 0x8000u, 0u);
}

TEST(Codec, Fp16EncodeMatchesNearestRepresentable) {
  // Property check against a reference: for a sweep of random finite
  // floats within FP16 range, the encoded value must be one of the two
  // bracketing representables, and never farther than half an ulp + 1 bit.
  Rng rng(0xC0DEC);
  for (int i = 0; i < 20000; ++i) {
    const float x = (rng.uniform() * 2.0f - 1.0f) * 60000.0f;
    const float back = Codec::decode_fp16(Codec::encode_fp16(x));
    const float ulp = std::ldexp(1.0f, std::max(-24, std::ilogb(std::fabs(x) +
                                                                1e-30f) -
                                                         10));
    ASSERT_LE(std::fabs(back - x), 0.5f * ulp + 1e-30f)
        << "x=" << x << " decoded back to " << back;
  }
}

// ---- BF16 ------------------------------------------------------------------

TEST(Codec, Bf16KnownConversions) {
  EXPECT_EQ(Codec::decode_bf16(0x3F80), 1.0f);
  EXPECT_EQ(Codec::decode_bf16(0xC000), -2.0f);
  EXPECT_EQ(Codec::encode_bf16(1.0f), 0x3F80);
  EXPECT_EQ(Codec::encode_bf16(-2.0f), 0xC000);
  EXPECT_EQ(Codec::encode_bf16(0.0f), 0x0000);
  EXPECT_EQ(Codec::encode_bf16(-0.0f), 0x8000);
  EXPECT_EQ(Codec::encode_bf16(std::numeric_limits<float>::infinity()), 0x7F80);
  // Max finite float rounds up to bf16 infinity (RNE overflow).
  EXPECT_EQ(Codec::encode_bf16(std::numeric_limits<float>::max()), 0x7F80);
  // RNE tie: 1 + 2^-8 is midway between 1.0 (even) and 1 + 2^-7 → 1.0.
  EXPECT_EQ(Codec::encode_bf16(1.0f + std::ldexp(1.0f, -8)), 0x3F80);
  // 1 + 3·2^-8 is midway between 1+2^-7 (odd) and 1+2^-6 (even) → up.
  EXPECT_EQ(Codec::encode_bf16(1.0f + std::ldexp(3.0f, -8)), 0x3F82);
}

TEST(Codec, Bf16AllPatternsRoundTripExactly) {
  for (uint32_t bits = 0; bits <= 0xFFFFu; ++bits) {
    const auto h = static_cast<uint16_t>(bits);
    ASSERT_EQ(Codec::encode_bf16(Codec::decode_bf16(h)), h)
        << "pattern 0x" << std::hex << bits;
  }
}

TEST(Codec, Bf16NanPayloadsSurvive) {
  const float low_payload_nan = std::bit_cast<float>(0x7F800001u);
  const uint16_t encoded = Codec::encode_bf16(low_payload_nan);
  EXPECT_EQ(encoded & 0x7F80u, 0x7F80u);
  EXPECT_NE(encoded & 0x007Fu, 0u) << "NaN collapsed into Inf";
  const float negative_nan = std::bit_cast<float>(0xFF800001u);
  EXPECT_NE(Codec::encode_bf16(negative_nan) & 0x8000u, 0u);
}

TEST(Codec, Bf16RandomMatrixRoundTripWithinTolerance) {
  // BF16 keeps FP32's exponent, so the round-trip error is purely a
  // 7-bit-mantissa rounding: |x - rt(x)| ≤ 2^-8 · |x| for every normal x.
  Rng rng(0xBF16);
  std::vector<float> m(64 * 64);
  for (float& v : m) v = (rng.uniform() * 2.0f - 1.0f) * 1.0e3f;
  std::vector<float> enc(static_cast<size_t>(
      Codec::encoded_floats(static_cast<int64_t>(m.size()))));
  std::vector<float> back(m.size());
  Codec::encode(m, enc, Precision::kBf16);
  Codec::decode(enc, back, Precision::kBf16);
  for (size_t i = 0; i < m.size(); ++i) {
    ASSERT_LE(std::fabs(back[i] - m[i]), std::ldexp(1.0f, -8) * std::fabs(m[i]))
        << "index " << i << ": " << m[i] << " -> " << back[i];
  }
}

// ---- buffer transport ------------------------------------------------------

TEST(Codec, BufferRoundTripOddCountPadsWithZeroBits) {
  const std::vector<float> src = {1.0f, -2.5f, 0.25f, 1.0e-3f, -7.0f};
  std::vector<float> enc(static_cast<size_t>(
      Codec::encoded_floats(static_cast<int64_t>(src.size()))));
  ASSERT_EQ(enc.size(), 3u);
  for (Precision p : {Precision::kFp16, Precision::kBf16}) {
    Codec::encode(src, enc, p);
    // The pad half-word of the final transport float must be zero bits —
    // it rides reductions as +0.0 and must re-encode stably.
    EXPECT_EQ(std::bit_cast<uint32_t>(enc.back()) >> 16, 0u);
    std::vector<float> back(src.size());
    Codec::decode(enc, back, p);
    for (size_t i = 0; i < src.size(); ++i) {
      EXPECT_EQ(back[i], Codec::decode_scalar(Codec::encode_scalar(src[i], p), p));
    }
  }
}

TEST(Codec, BufferElementOrderIsLittleEndianWithinWord) {
  const std::vector<float> src = {1.0f, -2.0f};
  std::vector<float> enc(1);
  Codec::encode(src, enc, Precision::kFp16);
  const uint32_t word = std::bit_cast<uint32_t>(enc[0]);
  EXPECT_EQ(static_cast<uint16_t>(word & 0xFFFFu), 0x3C00);  // element 0 low
  EXPECT_EQ(static_cast<uint16_t>(word >> 16), 0xC000);      // element 1 high
}

TEST(Codec, BufferSizeMismatchThrows) {
  std::vector<float> src(5);
  std::vector<float> wrong(2);  // needs 3
  EXPECT_THROW(Codec::encode(src, wrong, Precision::kFp16), Error);
  EXPECT_THROW(Codec::decode(wrong, src, Precision::kBf16), Error);
}

TEST(Codec, Fp32IsAnIdentityPassthroughNotACodecCall) {
  std::vector<float> src(4), dst(2);
  EXPECT_THROW(Codec::encode(src, dst, Precision::kFp32), Error);
  EXPECT_THROW(Codec::decode(dst, src, Precision::kFp32), Error);
}

TEST(Codec, ReencodingDecodedBufferIsStable) {
  // Idempotence on buffers: once a payload has been quantised, another
  // encode/decode trip must not change a single bit — the property the
  // reduce-side re-encode in allreduce_encoded depends on.
  Rng rng(42);
  std::vector<float> src(1001);
  for (float& v : src) v = (rng.uniform() * 2.0f - 1.0f) * 100.0f;
  for (Precision p : {Precision::kFp16, Precision::kBf16}) {
    std::vector<float> enc(static_cast<size_t>(
        Codec::encoded_floats(static_cast<int64_t>(src.size()))));
    std::vector<float> decoded(src.size());
    Codec::encode(src, enc, p);
    Codec::decode(enc, decoded, p);
    std::vector<float> enc2(enc.size());
    Codec::encode(decoded, enc2, p);
    for (size_t i = 0; i < enc.size(); ++i) {
      ASSERT_EQ(std::bit_cast<uint32_t>(enc[i]), std::bit_cast<uint32_t>(enc2[i]))
          << precision_name(p) << " word " << i;
    }
  }
}

}  // namespace
}  // namespace dkfac::comm
