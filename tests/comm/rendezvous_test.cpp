// Rendezvous server robustness: the poll-driven registration pump must
// tolerate clients that connect and stall, clients that send garbage, and
// clients that die while parked — dropping exactly the offender, never
// starving or failing the well-behaved rest. Plus the elastic surface:
// generation-stamped groups, parked registrations surviving across pumped
// serve calls, and the min-world failure path.
//
// (The happy-path fixed-world rendezvous contracts — rank assignment,
// world-size mismatch, timeouts — live in socket_comm_test.cpp.)
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <thread>
#include <vector>

#include "comm/net/rendezvous.hpp"
#include "comm/net/wire.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {
namespace {

TEST(Rendezvous, StalledClientCannotStarveTheGroup) {
  // A client that connects first but never sends its hello must not block
  // the two real workers behind it — the old serial accept loop's failure
  // mode.
  RendezvousServer server;
  Socket stalled = Socket::connect_to("127.0.0.1", server.port(), 2.0);

  std::vector<std::thread> workers;
  std::atomic<int> welcomed{0};
  for (int i = 0; i < 2; ++i) {
    workers.emplace_back([&, i] {
      const RendezvousInfo info = rendezvous_connect(
          "127.0.0.1", server.port(), /*world=*/2, i, 1000 + i, 5.0);
      EXPECT_EQ(info.world_size, 2);
      welcomed.fetch_add(1);
    });
  }
  const auto start = Clock::now();
  server.serve(/*world_size=*/2, /*timeout_s=*/5.0);
  EXPECT_LT(seconds_since(start), 4.0);
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(welcomed.load(), 2);
}

TEST(Rendezvous, StalledClientIsDroppedAtItsHelloDeadline) {
  RendezvousServer server;
  Socket stalled = Socket::connect_to("127.0.0.1", server.port(), 2.0);

  // A real worker shows up only after the stalled client's ~2 s hello
  // grace has expired, so the server must have dropped the staller (not
  // timed out the assembly) for this group of one to form.
  std::thread worker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2600));
    const RendezvousInfo info = rendezvous_connect(
        "127.0.0.1", server.port(), /*world=*/1, -1, 1234, 8.0);
    EXPECT_EQ(info.rank, 0);
  });
  server.serve(/*world_size=*/1, /*timeout_s=*/10.0);
  worker.join();

  // The drop is visible from the staller's side as EOF.
  uint8_t probe = 0;
  EXPECT_EQ(::recv(stalled.fd(), &probe, 1, 0), 0);
}

TEST(Rendezvous, GarbageHelloDropsOnlyThatClient) {
  RendezvousServer server;

  // Evil client 1: 30 bytes of garbage where a framed hello belongs.
  Socket garbage = Socket::connect_to("127.0.0.1", server.port(), 2.0);
  std::vector<uint8_t> noise(30, 0xAB);
  garbage.send_all(noise.data(), noise.size(), 2.0);

  // Evil client 2: a well-formed frame of the WRONG type.
  Socket wrong_type = Socket::connect_to("127.0.0.1", server.port(), 2.0);
  std::vector<uint8_t> payload(10, 0);
  send_frame(wrong_type, FrameType::kData, /*seq=*/0,
             std::span<const uint8_t>(payload), 2.0);

  std::thread worker([&] {
    const RendezvousInfo info = rendezvous_connect(
        "127.0.0.1", server.port(), /*world=*/1, -1, 4321, 5.0);
    EXPECT_EQ(info.rank, 0);
    EXPECT_EQ(info.peer_ports.at(0), 4321);
  });
  const auto start = Clock::now();
  server.serve(/*world_size=*/1, /*timeout_s=*/5.0);
  EXPECT_LT(seconds_since(start), 4.0);
  worker.join();
}

TEST(Rendezvous, ElasticGenerationsStampWelcomesAndIncrement) {
  RendezvousServer server;
  for (int expected_gen = 0; expected_gen < 2; ++expected_gen) {
    std::vector<std::thread> workers;
    for (int i = 0; i < 2; ++i) {
      workers.emplace_back([&, i] {
        const RendezvousInfo info =
            rendezvous_connect("127.0.0.1", server.port(), kElasticWorld, i,
                               2000 + i, 5.0);
        EXPECT_EQ(info.world_size, 2);
        EXPECT_EQ(info.generation, expected_gen);
      });
    }
    const int world = server.serve_generation([] { return 2; },
                                              /*min_world=*/1, 5.0);
    EXPECT_EQ(world, 2);
    for (std::thread& t : workers) t.join();
  }
  EXPECT_EQ(server.generation(), 2);
}

TEST(Rendezvous, ParkedRegistrationsSurviveAcrossPumpedServeCalls) {
  // The supervisor pump pattern: short serve_generation calls that time
  // out must not lose half-assembled groups — the first worker's
  // registration stays parked until the second arrives.
  RendezvousServer server;
  std::thread early([&] {
    const RendezvousInfo info = rendezvous_connect(
        "127.0.0.1", server.port(), kElasticWorld, -1, 3000, 10.0);
    EXPECT_EQ(info.world_size, 2);
  });
  EXPECT_THROW(server.serve_generation([] { return 2; }, 1, /*timeout_s=*/0.5),
               Error);

  std::thread late([&] {
    const RendezvousInfo info = rendezvous_connect(
        "127.0.0.1", server.port(), kElasticWorld, -1, 3001, 10.0);
    EXPECT_EQ(info.world_size, 2);
  });
  const int world = server.serve_generation([] { return 2; }, 1, 5.0);
  EXPECT_EQ(world, 2);
  early.join();
  late.join();
}

TEST(Rendezvous, ServeGenerationFailsFastBelowMinWorld) {
  RendezvousServer server;
  const auto start = Clock::now();
  EXPECT_THROW(server.serve_generation([] { return 1; }, /*min_world=*/2, 5.0),
               Error);
  EXPECT_LT(seconds_since(start), 1.0);
}

}  // namespace
}  // namespace dkfac::comm::net
