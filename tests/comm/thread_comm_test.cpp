#include "comm/thread_comm.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <numeric>
#include <vector>

#include "comm/codec.hpp"
#include "common/error.hpp"

namespace dkfac::comm {
namespace {

class ThreadCommSizes : public ::testing::TestWithParam<int> {};

TEST_P(ThreadCommSizes, AllreduceSum) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> data{static_cast<float>(rank + 1), 10.0f * (rank + 1)};
    comm.allreduce(data, ReduceOp::kSum);
    const float expected1 = p * (p + 1) / 2.0f;
    EXPECT_FLOAT_EQ(data[0], expected1);
    EXPECT_FLOAT_EQ(data[1], 10.0f * expected1);
  });
}

TEST_P(ThreadCommSizes, AllreduceAverage) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> data{static_cast<float>(rank)};
    comm.allreduce(data, ReduceOp::kAverage);
    EXPECT_FLOAT_EQ(data[0], (p - 1) / 2.0f);
  });
}

TEST_P(ThreadCommSizes, AllreduceMax) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> data{static_cast<float>(rank), -static_cast<float>(rank)};
    comm.allreduce(data, ReduceOp::kMax);
    EXPECT_FLOAT_EQ(data[0], static_cast<float>(p - 1));
    EXPECT_FLOAT_EQ(data[1], 0.0f);
  });
}

TEST_P(ThreadCommSizes, AllgatherUniformSizes) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> send{static_cast<float>(rank), static_cast<float>(rank) + 0.5f};
    std::vector<float> got = comm.allgather(send);
    ASSERT_EQ(got.size(), static_cast<size_t>(2 * p));
    for (int r = 0; r < p; ++r) {
      EXPECT_FLOAT_EQ(got[static_cast<size_t>(2 * r)], static_cast<float>(r));
      EXPECT_FLOAT_EQ(got[static_cast<size_t>(2 * r + 1)], static_cast<float>(r) + 0.5f);
    }
  });
}

TEST_P(ThreadCommSizes, AllgatherVariableSizes) {
  // Rank r contributes r+1 elements — the K-FAC eigendecomposition gather
  // has exactly this ragged structure (factors differ in size).
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> send(static_cast<size_t>(rank + 1),
                            static_cast<float>(rank));
    std::vector<float> got = comm.allgather(send);
    size_t expected_total = 0;
    for (int r = 0; r < p; ++r) expected_total += static_cast<size_t>(r + 1);
    ASSERT_EQ(got.size(), expected_total);
    size_t off = 0;
    for (int r = 0; r < p; ++r) {
      for (int i = 0; i <= r; ++i) {
        EXPECT_FLOAT_EQ(got[off++], static_cast<float>(r));
      }
    }
  });
}

TEST_P(ThreadCommSizes, BroadcastFromEachRoot) {
  const int p = GetParam();
  for (int root = 0; root < p; ++root) {
    LocalGroup group(p);
    group.run([&](int rank, Communicator& comm) {
      std::vector<float> data(4, rank == root ? 42.0f : -1.0f);
      comm.broadcast(data, root);
      for (float v : data) EXPECT_FLOAT_EQ(v, 42.0f);
    });
  }
}

TEST_P(ThreadCommSizes, RepeatedCollectivesStayConsistent) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    for (int iter = 0; iter < 50; ++iter) {
      std::vector<float> data{static_cast<float>(rank + iter)};
      comm.allreduce(data, ReduceOp::kSum);
      float expected = 0.0f;
      for (int r = 0; r < p; ++r) expected += static_cast<float>(r + iter);
      ASSERT_FLOAT_EQ(data[0], expected) << "iteration " << iter;
    }
  });
}

TEST_P(ThreadCommSizes, MixedCollectiveSequence) {
  const int p = GetParam();
  LocalGroup group(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> g{static_cast<float>(rank)};
    comm.allreduce(g, ReduceOp::kAverage);
    std::vector<float> gathered = comm.allgather(g);
    ASSERT_EQ(gathered.size(), static_cast<size_t>(p));
    // Every rank contributed the identical averaged value.
    for (float v : gathered) EXPECT_FLOAT_EQ(v, g[0]);
    comm.broadcast(g, 0);
    comm.barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, ThreadCommSizes,
                         ::testing::Values(1, 2, 3, 4, 8));

TEST(ThreadComm, DeterministicReductionAcrossRanks) {
  // All ranks must compute bit-identical reductions (rank-ordered sums).
  const int p = 4;
  LocalGroup group(p);
  std::vector<std::vector<float>> results(p);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> data{0.1f * (rank + 1), 0.3f * (rank + 1), -0.7f * (rank + 1)};
    comm.allreduce(data, ReduceOp::kAverage);
    results[static_cast<size_t>(rank)] = data;
  });
  for (int r = 1; r < p; ++r) {
    EXPECT_EQ(results[static_cast<size_t>(r)], results[0]);
  }
}

TEST(ThreadComm, StatsAccumulate) {
  LocalGroup group(2);
  group.run([&](int, Communicator& comm) {
    std::vector<float> data(100, 1.0f);
    comm.allreduce(data, ReduceOp::kSum);
    comm.allreduce(data, ReduceOp::kSum);
    auto gathered = comm.allgather(std::span<const float>(data.data(), 10));
    EXPECT_EQ(comm.stats().allreduce_calls, 2u);
    EXPECT_EQ(comm.stats().allreduce_bytes, 2u * 100u * sizeof(float));
    EXPECT_EQ(comm.stats().allgather_calls, 1u);
    EXPECT_EQ(comm.stats().allgather_bytes, 10u * sizeof(float));
    EXPECT_GT(comm.stats().total_bytes(), 0u);
  });
}

TEST(ThreadComm, ByteAccountingExactAcrossRepeatedAllreduces) {
  // Regression for the scratch-buffer reuse in allreduce: varying payload
  // sizes (grow, shrink, regrow) must reduce correctly and every call must
  // add exactly size_bytes() to the counter.
  LocalGroup group(3);
  group.run([&](int rank, Communicator& comm) {
    const std::vector<size_t> sizes{100, 7, 512, 1, 64};
    uint64_t expected_bytes = 0;
    uint64_t expected_calls = 0;
    for (size_t n : sizes) {
      std::vector<float> data(n, static_cast<float>(rank + 1));
      comm.allreduce(data, ReduceOp::kSum);
      expected_bytes += n * sizeof(float);
      ++expected_calls;
      // Sum over ranks 1+2+3 — stale scratch contents must never leak in.
      for (float v : data) ASSERT_FLOAT_EQ(v, 6.0f) << "payload size " << n;
      EXPECT_EQ(comm.stats().allreduce_bytes, expected_bytes);
      EXPECT_EQ(comm.stats().allreduce_calls, expected_calls);
    }
  });
}

TEST(ThreadComm, FactorVolumeCountersAccumulate) {
  SelfComm comm;
  EXPECT_EQ(comm.stats().factor_dense_bytes, 0u);
  // Two-argument form: no precision codec — encoded degenerates to packed.
  comm.record_factor_volume(100, 55);
  comm.record_factor_volume(100, 55);
  EXPECT_EQ(comm.stats().factor_dense_bytes, 200u);
  EXPECT_EQ(comm.stats().factor_packed_bytes, 110u);
  EXPECT_EQ(comm.stats().factor_encoded_bytes, 110u);
  // Full chain: dense → packed → encoded.
  comm.record_factor_volume(100, 55, 28);
  EXPECT_EQ(comm.stats().factor_dense_bytes, 300u);
  EXPECT_EQ(comm.stats().factor_packed_bytes, 165u);
  EXPECT_EQ(comm.stats().factor_encoded_bytes, 138u);
  comm.reset_stats();
  EXPECT_EQ(comm.stats().factor_dense_bytes, 0u);
  EXPECT_EQ(comm.stats().factor_packed_bytes, 0u);
  EXPECT_EQ(comm.stats().factor_encoded_bytes, 0u);
}

TEST(ThreadComm, EncodedAllreduceMatchesScalarRankOrderFold) {
  // The encode-once-reduce-in-fp32 collective must equal the hand-rolled
  // fold: decode every rank's quantised contribution, sum in rank order,
  // average, re-encode — bit for bit, on every rank.
  constexpr int kWorld = 3;
  constexpr size_t kElems = 9;  // odd → pad slot exercised
  auto value = [](int rank, size_t i) {
    return 0.713f * static_cast<float>(i + 1) -
           0.41f * static_cast<float>(rank + 1);
  };
  std::vector<float> expected_sum(kElems, 0.0f);
  for (int r = 0; r < kWorld; ++r) {
    for (size_t i = 0; i < kElems; ++i) {
      expected_sum[i] += Codec::decode_scalar(
          Codec::encode_scalar(value(r, i), Precision::kFp16), Precision::kFp16);
    }
  }
  for (float& v : expected_sum) v /= static_cast<float>(kWorld);
  std::vector<float> expected_enc(static_cast<size_t>(
      Codec::encoded_floats(static_cast<int64_t>(kElems))));
  Codec::encode(expected_sum, expected_enc, Precision::kFp16);

  LocalGroup group(kWorld);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> mine(kElems);
    for (size_t i = 0; i < kElems; ++i) mine[i] = value(rank, i);
    std::vector<float> enc(expected_enc.size());
    Codec::encode(mine, enc, Precision::kFp16);
    comm.allreduce_encoded(enc, Precision::kFp16, ReduceOp::kAverage);
    for (size_t i = 0; i < enc.size(); ++i) {
      ASSERT_EQ(std::bit_cast<uint32_t>(enc[i]),
                std::bit_cast<uint32_t>(expected_enc[i]))
          << "rank " << rank << " word " << i;
    }
    // Counted as an allreduce at the ENCODED size; the internal allgather
    // transport must not leak into the allgather counters.
    EXPECT_EQ(comm.stats().allreduce_calls, 1u);
    EXPECT_EQ(comm.stats().allreduce_bytes, enc.size() * sizeof(float));
    EXPECT_EQ(comm.stats().allgather_calls, 0u);
    EXPECT_EQ(comm.stats().allgather_bytes, 0u);
  });
}

TEST(ThreadComm, EncodedAllreduceMaxFoldsDecodedValues) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    // rank 0 holds {-1, 5}, rank 1 holds {2, -3} → max {2, 5}.
    std::vector<float> mine = rank == 0 ? std::vector<float>{-1.0f, 5.0f}
                                        : std::vector<float>{2.0f, -3.0f};
    std::vector<float> enc(1);
    Codec::encode(mine, enc, Precision::kBf16);
    comm.allreduce_encoded(enc, Precision::kBf16, ReduceOp::kMax);
    std::vector<float> out(2);
    Codec::decode(enc, out, Precision::kBf16);
    EXPECT_EQ(out[0], 2.0f);
    EXPECT_EQ(out[1], 5.0f);
  });
}

TEST(ThreadComm, EncodedAllreduceSelfCommIsIdentity) {
  SelfComm comm;
  std::vector<float> src = {1.5f, -2.25f, 0.125f};
  std::vector<float> enc(2);
  Codec::encode(src, enc, Precision::kFp16);
  const std::vector<float> before = enc;
  comm.allreduce_encoded(enc, Precision::kFp16, ReduceOp::kAverage);
  for (size_t i = 0; i < enc.size(); ++i) {
    EXPECT_EQ(std::bit_cast<uint32_t>(enc[i]),
              std::bit_cast<uint32_t>(before[i]));
  }
  EXPECT_EQ(comm.stats().allreduce_calls, 1u);
  EXPECT_EQ(comm.stats().allreduce_bytes, enc.size() * sizeof(float));
}

TEST(ThreadComm, EncodedAllreduceRejectsFp32) {
  SelfComm comm;
  std::vector<float> data(4, 1.0f);
  EXPECT_THROW(comm.allreduce_encoded(data, Precision::kFp32, ReduceOp::kSum),
               Error);
}

TEST(ThreadComm, ResetStats) {
  SelfComm comm;
  std::vector<float> data(8, 1.0f);
  comm.allreduce(data, ReduceOp::kSum);
  EXPECT_GT(comm.stats().total_bytes(), 0u);
  comm.reset_stats();
  EXPECT_EQ(comm.stats().total_bytes(), 0u);
}

TEST(ThreadComm, LengthMismatchThrows) {
  LocalGroup group(2);
  EXPECT_THROW(
      group.run([&](int rank, Communicator& comm) {
        std::vector<float> data(static_cast<size_t>(rank == 0 ? 3 : 5), 1.0f);
        comm.allreduce(data, ReduceOp::kSum);
      }),
      Error);
}

TEST(ThreadComm, RunPropagatesExceptions) {
  LocalGroup group(2);
  EXPECT_THROW(group.run([&](int rank, Communicator& comm) {
                 comm.barrier();
                 if (rank == 1) throw Error("worker failure");
               }),
               Error);
}

TEST(ThreadComm, InvalidRankThrows) {
  LocalGroup group(2);
  EXPECT_THROW(group.comm(2), Error);
  EXPECT_THROW(group.comm(-1), Error);
  EXPECT_THROW(LocalGroup(0), Error);
}

TEST(ThreadComm, BroadcastInvalidRootThrows) {
  SelfComm comm;
  std::vector<float> data(1);
  // SelfComm has no root check beyond its own semantics; LocalGroup does.
  LocalGroup group(2);
  EXPECT_THROW(group.run([&](int, Communicator& c) {
                 std::vector<float> d(1);
                 c.broadcast(d, 5);
               }),
               Error);
}

TEST(SelfComm, CollectivesAreIdentity) {
  SelfComm comm;
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  std::vector<float> data{1.0f, 2.0f};
  comm.allreduce(data, ReduceOp::kAverage);
  EXPECT_FLOAT_EQ(data[0], 1.0f);
  auto gathered = comm.allgather(data);
  EXPECT_EQ(gathered, data);
  comm.broadcast(data, 0);
  EXPECT_FLOAT_EQ(data[1], 2.0f);
}

TEST(ThreadComm, TensorConvenienceOverloads) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    Tensor t = Tensor::full(Shape{4}, static_cast<float>(rank + 1));
    comm.allreduce(t, ReduceOp::kSum);
    EXPECT_FLOAT_EQ(t[0], 3.0f);
  });
}

}  // namespace
}  // namespace dkfac::comm
