#include "comm/cost_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace dkfac::comm {
namespace {

TEST(CostModel, SingleRankIsFree) {
  CostModel m;
  EXPECT_EQ(m.allreduce_time(1 << 20, 1), 0.0);
  EXPECT_EQ(m.allgather_time(1 << 20, 1), 0.0);
  EXPECT_EQ(m.broadcast_time(1 << 20, 1), 0.0);
}

TEST(CostModel, ZeroBytesIsFree) {
  CostModel m;
  EXPECT_EQ(m.allreduce_time(0, 64), 0.0);
}

TEST(CostModel, AllreduceBandwidthTermSaturates) {
  // As p → ∞ the bandwidth term approaches 2·n/β: doubling ranks must not
  // double large-message allreduce time.
  CostModel m;
  const uint64_t bytes = 100ull << 20;
  const double t64 = m.allreduce_time(bytes, 64);
  const double t128 = m.allreduce_time(bytes, 128);
  // Bandwidth term saturates; only the latency term (≈5 ms at p=128) grows.
  EXPECT_LT(t128, 1.15 * t64);
}

TEST(CostModel, LatencyTermGrowsLinearly) {
  CostModel m;
  m.bandwidth_bytes_per_s = 1e18;  // make bandwidth negligible
  const double t8 = m.allreduce_time(4, 8);
  const double t16 = m.allreduce_time(4, 16);
  EXPECT_NEAR(t16 / t8, 15.0 / 7.0, 1e-9);
}

TEST(CostModel, MoreBytesTakeLonger) {
  CostModel m;
  EXPECT_LT(m.allreduce_time(1 << 10, 16), m.allreduce_time(1 << 24, 16));
  EXPECT_LT(m.allgather_time(1 << 10, 16), m.allgather_time(1 << 24, 16));
}

TEST(CostModel, BroadcastLogarithmicHops) {
  CostModel m;
  m.bandwidth_bytes_per_s = 1e18;
  const double t2 = m.broadcast_time(4, 2);    // 1 hop
  const double t16 = m.broadcast_time(4, 16);  // 4 hops
  EXPECT_NEAR(t16 / t2, 4.0, 1e-9);
}

TEST(CostModel, EffectiveBandwidthAppliesEfficiency) {
  CostModel m;
  m.bandwidth_bytes_per_s = 10e9;
  m.efficiency = 0.5;
  EXPECT_DOUBLE_EQ(m.effective_bandwidth(), 5e9);
}

TEST(CostModel, InvalidRanksThrow) {
  CostModel m;
  EXPECT_THROW(m.allreduce_time(8, 0), Error);
  EXPECT_THROW(m.allgather_time(8, -1), Error);
}

TEST(CostModel, RecommendedFusionBytesWithinClampAndMonotonic) {
  CostModel m;
  constexpr uint64_t kMin = 1ull << 20;
  constexpr uint64_t kMax = 64ull << 20;
  uint64_t prev = 0;
  for (int ranks : {2, 4, 16, 64, 512}) {
    const uint64_t bytes = m.recommended_fusion_bytes(ranks);
    EXPECT_GE(bytes, kMin) << ranks;
    EXPECT_LE(bytes, kMax) << ranks;
    // Higher rank counts pay more launch latency per chunk, so the
    // recommended chunk grows (until the clamp).
    EXPECT_GE(bytes, prev) << ranks;
    prev = bytes;
  }
}

TEST(CostModel, RecommendedFusionBytesTracksLatencyBandwidthProduct) {
  CostModel fast_net;
  CostModel slow_launch = fast_net;
  slow_launch.latency_s = 10.0 * fast_net.latency_s;
  // Costlier launches demand bigger chunks to stay bandwidth-dominated.
  EXPECT_GE(slow_launch.recommended_fusion_bytes(8),
            fast_net.recommended_fusion_bytes(8));
  EXPECT_THROW(fast_net.recommended_fusion_bytes(0), Error);
  EXPECT_THROW(fast_net.recommended_fusion_bytes(8, 0.0), Error);
}

TEST(CostModel, AllgatherCheaperThanAllreduceSameBytes) {
  // Ring allgather moves half the data of ring allreduce.
  CostModel m;
  EXPECT_LT(m.allgather_time(1 << 24, 32), m.allreduce_time(1 << 24, 32));
}

TEST(CostModel, EagerBytesScaleWithFabricLatency) {
  // The launch threshold is the payload where latency and bandwidth terms
  // balance: a low-latency fabric (shared memory) must launch far earlier
  // than loopback TCP — the reason the trainer derives it per backend.
  const uint64_t thread_eager = CostModel::shared_memory().recommended_eager_bytes(4);
  const uint64_t socket_eager = CostModel::loopback_tcp().recommended_eager_bytes(4);
  EXPECT_LT(thread_eager, socket_eager);
  // Shared memory at 4 ranks lands in the tens of KB — the regime the old
  // hard-coded 32 KB threshold was tuned for.
  EXPECT_GE(thread_eager, 4ull << 10);
  EXPECT_LE(thread_eager, 128ull << 10);
  EXPECT_LE(socket_eager, 8ull << 20);  // clamp
  EXPECT_EQ(CostModel{}.recommended_eager_bytes(1), 4ull << 10);
  EXPECT_THROW(CostModel{}.recommended_eager_bytes(0), Error);
}

TEST(CostModel, PipelineChunkCountBoundsAndGrowth) {
  const CostModel m = CostModel::loopback_tcp();
  EXPECT_EQ(m.pipeline_chunk_count(1 << 20, 1), 1);
  EXPECT_EQ(m.pipeline_chunk_count(1 << 20, 2), 1);  // chain of 2: no pipeline
  EXPECT_EQ(m.pipeline_chunk_count(0, 8), 1);
  // More bytes → more chunks, up to the caps.
  const int small = m.pipeline_chunk_count(64 << 10, 4);
  const int large = m.pipeline_chunk_count(64 << 20, 4);
  EXPECT_LE(small, large);
  EXPECT_GE(small, 1);
  EXPECT_LE(large, 256);
  // Chunks never shrink below the 4 KB frame-amortisation floor.
  EXPECT_EQ(m.pipeline_chunk_count(6 << 10, 64), 1);
}

TEST(CostModel, AllreduceAlgorithmCrossoverIsSizeMonotonic) {
  // Circulation wins on latency for small payloads, the pipelined ring on
  // bandwidth for large ones; between them there is one crossover.
  const CostModel m = CostModel::loopback_tcp();
  const int ranks = 8;
  EXPECT_LT(m.circulating_allreduce_time(1 << 10, ranks),
            m.pipelined_allreduce_time(1 << 10, ranks));
  EXPECT_GT(m.circulating_allreduce_time(16 << 20, ranks),
            m.pipelined_allreduce_time(16 << 20, ranks));
}

}  // namespace
}  // namespace dkfac::comm
