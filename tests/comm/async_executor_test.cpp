#include "comm/async_executor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <thread>
#include <vector>

#include "comm/codec.hpp"
#include "comm/fusion.hpp"
#include "comm/thread_comm.hpp"
#include "common/error.hpp"

namespace dkfac::comm {
namespace {

std::vector<float> iota(size_t n, float start) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = start + static_cast<float>(i);
  return v;
}

TEST(AsyncExecutor, AveragesAcrossRanks) {
  LocalGroup group(3);
  group.run([](int rank, Communicator& comm) {
    std::vector<float> a = iota(5, static_cast<float>(rank));
    std::vector<float> b = iota(7, static_cast<float>(10 * rank));
    AsyncExecutor executor(comm);
    executor.submit(a, ReduceOp::kAverage);
    executor.submit(b, ReduceOp::kAverage);
    executor.wait();
    // Average of {rank, 10*rank} over ranks 0..2 is {1, 10}.
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_FLOAT_EQ(a[i], 1.0f + static_cast<float>(i));
    }
    for (size_t i = 0; i < b.size(); ++i) {
      EXPECT_FLOAT_EQ(b[i], 10.0f + static_cast<float>(i));
    }
  });
}

TEST(AsyncExecutor, OutOfOrderLayerReadiness) {
  // Layers finish backprop output-to-input, so tensors arrive in reverse
  // registration order — and with interleaved waits mid-stream. All ranks
  // submit the same sequence, which is all the executor requires.
  LocalGroup group(2);
  group.run([](int rank, Communicator& comm) {
    std::vector<std::vector<float>> layers;
    for (int l = 0; l < 5; ++l) {
      layers.push_back(iota(static_cast<size_t>(3 + l),
                            static_cast<float>(rank * (l + 1))));
    }
    AsyncExecutor executor(comm);
    const int order[] = {4, 2, 3, 0, 1};
    for (int i = 0; i < 5; ++i) {
      executor.submit(layers[static_cast<size_t>(order[i])], ReduceOp::kAverage);
      if (i == 2) executor.wait();  // a mid-backprop sync point is legal
    }
    executor.wait();
    // Average over ranks {0,1} of rank*(l+1)+i is (l+1)/2 + i.
    for (int l = 0; l < 5; ++l) {
      for (size_t i = 0; i < layers[static_cast<size_t>(l)].size(); ++i) {
        EXPECT_FLOAT_EQ(layers[static_cast<size_t>(l)][i],
                        static_cast<float>(l + 1) / 2.0f + static_cast<float>(i))
            << "layer " << l << " elem " << i;
      }
    }
  });
}

TEST(AsyncExecutor, MatchesSynchronousFusedAllreduceBitwise) {
  // The determinism contract: chunking freedom must never change values.
  constexpr size_t kTensors = 9;
  constexpr size_t kElems = 13;
  auto fill = [](int rank, size_t t) {
    return iota(kElems, 0.123f * static_cast<float>(rank + 1) *
                            static_cast<float>(t + 1));
  };

  std::vector<std::vector<float>> sync_result(kTensors);
  {
    LocalGroup group(2);
    group.run([&](int rank, Communicator& comm) {
      std::vector<std::vector<float>> tensors;
      for (size_t t = 0; t < kTensors; ++t) tensors.push_back(fill(rank, t));
      FusionBuffer fusion(comm, /*capacity_bytes=*/64);
      for (auto& t : tensors) fusion.add(t);
      fusion.execute(ReduceOp::kAverage);
      if (rank == 0) sync_result = tensors;
    });
  }

  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<std::vector<float>> tensors;
    for (size_t t = 0; t < kTensors; ++t) tensors.push_back(fill(rank, t));
    AsyncExecutor executor(comm, /*capacity_bytes=*/64);  // forces many batches
    for (auto& t : tensors) executor.submit(t, ReduceOp::kAverage);
    executor.wait();
    if (rank == 0) {
      for (size_t t = 0; t < kTensors; ++t) {
        for (size_t i = 0; i < kElems; ++i) {
          EXPECT_EQ(tensors[t][i], sync_result[t][i]) << "t=" << t << " i=" << i;
        }
      }
    }
  });
}

TEST(AsyncExecutor, MixedPrecisionSubmissionsMatchSyncFusionBitwise) {
  // The overlap pipeline interleaves fp32 gradient views with codec-encoded
  // factor views (the compressed K-FAC pattern). Precision changes must cut
  // deterministic batch boundaries and the result must match the
  // synchronous FusionBuffer path bit for bit, however the eager threshold
  // slices the stream.
  constexpr size_t kElems = 13;
  auto fill = [](int rank, size_t t) {
    return iota(kElems, 0.123f * static_cast<float>(rank + 1) *
                            static_cast<float>(t + 1));
  };
  auto encode = [](const std::vector<float>& v) {
    std::vector<float> enc(static_cast<size_t>(
        Codec::encoded_floats(static_cast<int64_t>(v.size()))));
    Codec::encode(v, enc, Precision::kBf16);
    return enc;
  };

  // sequence: grad, grad, factor, factor, grad, factor — per test round.
  std::vector<std::vector<float>> sync_grads(3);
  std::vector<std::vector<float>> sync_factors(3);
  {
    LocalGroup group(2);
    group.run([&](int rank, Communicator& comm) {
      std::vector<std::vector<float>> grads{fill(rank, 0), fill(rank, 1),
                                            fill(rank, 4)};
      std::vector<std::vector<float>> factors{
          encode(fill(rank, 2)), encode(fill(rank, 3)), encode(fill(rank, 5))};
      FusionBuffer fusion(comm, /*capacity_bytes=*/64);
      fusion.add(grads[0]);
      fusion.add(grads[1]);
      fusion.add(factors[0], Precision::kBf16);
      fusion.add(factors[1], Precision::kBf16);
      fusion.add(grads[2]);
      fusion.add(factors[2], Precision::kBf16);
      fusion.execute(ReduceOp::kAverage);
      if (rank == 0) {
        sync_grads = grads;
        sync_factors = factors;
      }
    });
  }

  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<std::vector<float>> grads{fill(rank, 0), fill(rank, 1),
                                          fill(rank, 4)};
    std::vector<std::vector<float>> factors{
        encode(fill(rank, 2)), encode(fill(rank, 3)), encode(fill(rank, 5))};
    AsyncExecutor executor(comm, /*capacity_bytes=*/64, /*eager_bytes=*/32);
    executor.submit(grads[0], ReduceOp::kAverage);
    executor.submit(grads[1], ReduceOp::kAverage);
    executor.submit(factors[0], ReduceOp::kAverage, Precision::kBf16);
    executor.submit(factors[1], ReduceOp::kAverage, Precision::kBf16);
    executor.submit(grads[2], ReduceOp::kAverage);
    executor.submit(factors[2], ReduceOp::kAverage, Precision::kBf16);
    executor.wait();
    if (rank == 0) {
      for (size_t t = 0; t < 3; ++t) {
        for (size_t i = 0; i < kElems; ++i) {
          EXPECT_EQ(grads[t][i], sync_grads[t][i]) << "grad " << t << " i=" << i;
        }
        for (size_t i = 0; i < factors[t].size(); ++i) {
          ASSERT_EQ(std::bit_cast<uint32_t>(factors[t][i]),
                    std::bit_cast<uint32_t>(sync_factors[t][i]))
              << "factor " << t << " word " << i;
        }
      }
    }
  });
}

TEST(AsyncExecutor, MixedReduceOpsFlushBetweenBatches) {
  LocalGroup group(2);
  group.run([](int rank, Communicator& comm) {
    std::vector<float> sum{static_cast<float>(rank + 1)};
    std::vector<float> max{static_cast<float>(rank * 10)};
    AsyncExecutor executor(comm);
    executor.submit(sum, ReduceOp::kSum);
    executor.submit(max, ReduceOp::kMax);
    executor.wait();
    EXPECT_FLOAT_EQ(sum[0], 3.0f);
    EXPECT_FLOAT_EQ(max[0], 10.0f);
  });
}

TEST(AsyncExecutor, CleanShutdownWithPendingSubmissions) {
  // Destruction without wait() must drain everything that was submitted —
  // on every rank — and join cleanly (no hang, no lost reductions).
  LocalGroup group(2);
  std::vector<std::vector<float>> results(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<std::vector<float>> tensors;
    for (int t = 0; t < 6; ++t) {
      tensors.push_back(iota(4, static_cast<float>(rank + t)));
    }
    {
      AsyncExecutor executor(comm, /*capacity_bytes=*/32);
      for (auto& t : tensors) executor.submit(t, ReduceOp::kAverage);
      // No wait(): the destructor drains the queue.
    }
    // Average over ranks {0,1} of rank+t+i is t+i+0.5.
    for (int t = 0; t < 6; ++t) {
      for (size_t i = 0; i < 4; ++i) {
        EXPECT_FLOAT_EQ(tensors[static_cast<size_t>(t)][i],
                        static_cast<float>(t) + static_cast<float>(i) + 0.5f);
      }
    }
    results[static_cast<size_t>(rank)] = tensors[0];
  });
  EXPECT_EQ(results[0], results[1]);
}

TEST(AsyncExecutor, WaitWithNothingPendingReturnsImmediately) {
  SelfComm comm;
  AsyncExecutor executor(comm);
  EXPECT_NO_THROW(executor.wait());
  EXPECT_NO_THROW(executor.wait());
  EXPECT_FALSE(executor.pending());
}

TEST(AsyncExecutor, StatsCountSubmissionsAndBatches) {
  SelfComm comm;
  std::vector<float> a = iota(8, 1.0f);
  std::vector<float> b = iota(8, 2.0f);
  AsyncExecutor executor(comm, /*capacity_bytes=*/8 * sizeof(float));
  executor.submit(a, ReduceOp::kAverage);
  executor.submit(b, ReduceOp::kAverage);
  executor.wait();
  const AsyncExecutor::Stats stats = executor.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.batches, 2u);  // capacity = one tensor → one batch each
  EXPECT_GE(stats.comm_seconds, 0.0);
  EXPECT_GE(stats.wait_seconds, 0.0);
  EXPECT_GE(stats.overlap_won_seconds(), 0.0);
}

/// Communicator whose allreduce fails after a configurable number of
/// successes — exercises worker-thread exception propagation.
class FailingComm final : public Communicator {
 public:
  explicit FailingComm(int successes_before_failure)
      : remaining_(successes_before_failure) {}

  int rank() const override { return 0; }
  int size() const override { return 1; }

  void allreduce(std::span<float> data, ReduceOp op) override {
    (void)data;
    (void)op;
    if (remaining_-- <= 0) {
      DKFAC_CHECK(false) << "injected collective failure";
    }
  }

  std::vector<float> allgather(std::span<const float> send) override {
    return {send.begin(), send.end()};
  }
  void broadcast(std::span<float>, int) override {}
  void barrier() override {}

 private:
  int remaining_;
};

TEST(AsyncExecutor, PropagatesWorkerExceptionOnWait) {
  FailingComm comm(/*successes_before_failure=*/0);
  std::vector<float> payload = iota(4, 0.0f);
  AsyncExecutor executor(comm);
  executor.submit(payload, ReduceOp::kAverage);
  EXPECT_THROW(executor.wait(), Error);
  // The error is sticky: later waits see it too, and shutdown is clean.
  EXPECT_THROW(executor.wait(), Error);
}

TEST(AsyncExecutor, ErrorDoesNotWedgeLaterSubmissions) {
  FailingComm comm(/*successes_before_failure=*/1);
  std::vector<float> a = iota(4, 0.0f);
  std::vector<float> b = iota(4, 1.0f);
  std::vector<float> c = iota(4, 2.0f);
  AsyncExecutor executor(comm, /*capacity_bytes=*/4 * sizeof(float));
  executor.submit(a, ReduceOp::kAverage);
  executor.wait();  // first batch succeeds
  executor.submit(b, ReduceOp::kAverage);
  EXPECT_THROW(executor.wait(), Error);
  // Submissions after the failure are discarded, not deadlocked.
  executor.submit(c, ReduceOp::kAverage);
  EXPECT_THROW(executor.wait(), Error);
}

TEST(AsyncExecutor, OverlapsCommunicationWithMainThreadCompute) {
  /// Communicator with a slow allreduce: if the pipeline really runs in
  /// the background, main-thread work proceeds while the collective
  /// sleeps, and wait() blocks for (almost) nothing afterwards.
  class SlowComm final : public Communicator {
   public:
    int rank() const override { return 0; }
    int size() const override { return 1; }
    void allreduce(std::span<float>, ReduceOp) override {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::vector<float> allgather(std::span<const float> send) override {
      return {send.begin(), send.end()};
    }
    void broadcast(std::span<float>, int) override {}
    void barrier() override {}
  };

  SlowComm comm;
  std::vector<float> payload = iota(16, 0.0f);
  AsyncExecutor executor(comm, /*capacity_bytes=*/32 << 20,
                         /*eager_bytes=*/sizeof(float));
  executor.submit(payload, ReduceOp::kAverage);
  // Simulate backprop continuing while the 50 ms collective runs.
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  executor.wait();
  const AsyncExecutor::Stats stats = executor.stats();
  EXPECT_GE(stats.comm_seconds, 0.045);
  // The collective finished during the "compute": the win is most of it.
  EXPECT_GT(stats.overlap_won_seconds(), 0.025);
}

}  // namespace
}  // namespace dkfac::comm
