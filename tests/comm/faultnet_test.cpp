// faultnet contract tests: the plan grammar rejects malformed scripts with
// typed errors, every injected fault surfaces as a typed dkfac::Error on
// the wire (never a hang, never silent acceptance), injections are
// deterministic for a fixed seed, and with no plan installed the hooks are
// inert (the byte-identical-traffic side is pinned down by the existing
// socket/thread parity test).
#include "comm/net/faultnet.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "comm/net/wire.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {
namespace {

/// Connected AF_UNIX stream pair — the in-process stand-in for a TCP
/// connection (same stream semantics, no ports to allocate).
std::pair<Socket, Socket> socket_pair() {
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  return {Socket(fds[0]), Socket(fds[1])};
}

std::vector<float> test_payload(size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 0.25f * static_cast<float>(i) - 1.5f;
  return v;
}

/// Every test leaves the process-global plan uninstalled, whatever path it
/// exits through — faultnet state outliving a test would poison the next.
class Faultnet : public ::testing::Test {
 protected:
  void SetUp() override { faultnet::clear(); }
  void TearDown() override { faultnet::clear(); }
};

using FaultnetPlan = Faultnet;

TEST_F(FaultnetPlan, GrammarParsesEveryField) {
  const faultnet::Plan plan = faultnet::parse_plan(
      "seed=99; rank=2,op=send,epoch=1,step=7,nth=3,times=2,action=bitflip; "
      "op=connect,action=refuse; phase=backward,action=stall,arg=0.01; "
      "op=send,action=short_write,arg=24");
  EXPECT_EQ(plan.seed, 99u);
  ASSERT_EQ(plan.rules.size(), 4u);

  const faultnet::Rule& flip = plan.rules[0];
  EXPECT_EQ(flip.rank, 2);
  EXPECT_EQ(flip.op, faultnet::Op::kSend);
  EXPECT_EQ(flip.epoch, 1);
  EXPECT_EQ(flip.step, 7);
  EXPECT_EQ(flip.nth, 3u);
  EXPECT_EQ(flip.times, 2u);
  EXPECT_EQ(flip.action, faultnet::Action::kBitflip);

  EXPECT_EQ(plan.rules[1].op, faultnet::Op::kConnect);
  EXPECT_EQ(plan.rules[1].action, faultnet::Action::kRefuse);

  EXPECT_EQ(plan.rules[2].phase, faultnet::Phase::kBackward);
  EXPECT_EQ(plan.rules[2].action, faultnet::Action::kStall);
  EXPECT_NEAR(plan.rules[2].stall_s, 0.01, 1e-9);

  EXPECT_EQ(plan.rules[3].action, faultnet::Action::kShortWrite);
  EXPECT_EQ(plan.rules[3].write_cap, 24u);
}

TEST_F(FaultnetPlan, MalformedPlansThrowTyped) {
  const char* bad[] = {
      "nonsense",                         // not key=value
      "op=send",                          // no action
      "action=explode",                   // unknown action
      "op=teleport,action=reset",         // unknown op
      "phase=lunch,action=stall",         // unknown phase
      "rank=two,action=reset",            // non-numeric value
      "nth=0,op=send,action=reset",       // nth is 1-based
      "times=0,op=send,action=reset",     // times >= 1
      "op=send,action=refuse",            // refuse needs op=connect
      "op=recv,action=bitflip",           // bitflip needs op=send
      "op=connect,action=short_write",    // short_write needs op=send
      "phase=forward,op=send,action=stall",  // op and phase are exclusive
      "phase=forward,action=bitflip",     // phase rules: stall/abort only
      "flavor=spicy,action=reset",        // unknown key
  };
  for (const char* text : bad) {
    EXPECT_THROW((void)faultnet::parse_plan(text), Error) << text;
  }
  // An empty plan and a bare seed are fine — they just arm nothing.
  EXPECT_TRUE(faultnet::parse_plan("").rules.empty());
  EXPECT_TRUE(faultnet::parse_plan("seed=5").rules.empty());
}

TEST_F(Faultnet, InactiveByDefault) {
  EXPECT_FALSE(faultnet::active());
  EXPECT_EQ(faultnet::counts().total, 0u);
  faultnet::install(faultnet::parse_plan("op=send,action=reset"));
  EXPECT_TRUE(faultnet::active());
  faultnet::clear();
  EXPECT_FALSE(faultnet::active());
}

TEST_F(Faultnet, BitflipYieldsTypedChecksumErrorDeterministically) {
  const std::vector<float> payload = test_payload(64);
  // The corrupted frame must be REJECTED by the receiver's CRC as a typed
  // error, and the same seed must flip the same bit on every run.
  std::vector<std::string> errors;
  for (int run = 0; run < 2; ++run) {
    faultnet::install(
        faultnet::parse_plan("seed=1234; op=send,action=bitflip"));
    auto [a, b] = socket_pair();
    send_frame(a, FrameType::kData, /*seq=*/0,
               std::span<const float>(payload), 1.0);
    std::vector<float> got(payload.size());
    try {
      recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got),
                      1.0);
      FAIL() << "bit-flipped frame was accepted";
    } catch (const Error& e) {
      errors.emplace_back(e.what());
      EXPECT_NE(errors.back().find("checksum"), std::string::npos)
          << errors.back();
    }
    EXPECT_EQ(faultnet::counts().bitflips, 1u);
    EXPECT_EQ(faultnet::counts().total, 1u);
  }
  // The checksum error names the computed CRC; identical text across runs
  // means the identical bit flipped.
  ASSERT_EQ(errors.size(), 2u);
  EXPECT_EQ(errors[0], errors[1]);
}

TEST_F(Faultnet, ResetOnSendIsTypedOnBothEnds) {
  faultnet::install(faultnet::parse_plan("op=send,action=reset"));
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(256);
  EXPECT_THROW(send_frame(a, FrameType::kData, /*seq=*/0,
                          std::span<const float>(payload), 1.0),
               Error);
  EXPECT_EQ(faultnet::counts().resets, 1u);
  // The peer's read sees the shutdown as a prompt typed error, not a hang.
  faultnet::clear();
  std::vector<float> got(payload.size());
  const auto start = Clock::now();
  EXPECT_THROW(recv_frame_into(b, FrameType::kData, /*seq=*/0,
                               std::span<float>(got), 1.0),
               Error);
  EXPECT_LT(seconds_since(start), 2.0);
}

TEST_F(Faultnet, ResetOnRecvIsTyped) {
  // The reset lands before any bytes arrive (data already buffered in the
  // kernel survives a shutdown — as on a real TCP reset, only in-flight
  // and future traffic is lost): the receive sees a prompt typed
  // "connection closed", not a timeout and not a hang.
  auto [a, b] = socket_pair();
  (void)a;  // live but silent peer
  faultnet::install(faultnet::parse_plan("op=recv,action=reset"));
  std::vector<float> got(16);
  const auto start = Clock::now();
  EXPECT_THROW(recv_frame_into(b, FrameType::kData, /*seq=*/0,
                               std::span<float>(got), 5.0),
               Error);
  EXPECT_LT(seconds_since(start), 2.0);
  EXPECT_EQ(faultnet::counts().resets, 1u);
}

TEST_F(Faultnet, ShortWriteIsTypedOnBothEnds) {
  faultnet::install(faultnet::parse_plan("op=send,action=short_write"));
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(128);
  try {
    send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(payload),
               1.0);
    FAIL() << "injected short write reported success";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("short write"), std::string::npos)
        << e.what();
  }
  EXPECT_EQ(faultnet::counts().short_writes, 1u);
  // The receiver sees a truncated stream ending in a shutdown — a typed
  // rejection within its deadline, never an accepted frame.
  faultnet::clear();
  std::vector<float> got(payload.size());
  const auto start = Clock::now();
  EXPECT_THROW(recv_frame_into(b, FrameType::kData, /*seq=*/0,
                               std::span<float>(got), 2.0),
               Error);
  EXPECT_LT(seconds_since(start), 2.5);
}

TEST_F(Faultnet, StallDelaysButNeverHangs) {
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(8);
  send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(payload),
             1.0);
  faultnet::install(
      faultnet::parse_plan("op=recv,action=stall,arg=0.3,times=100"));
  // The frame is already queued: the stall only delays its delivery.
  std::vector<float> got(payload.size());
  auto start = Clock::now();
  recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 5.0);
  EXPECT_GE(seconds_since(start), 0.25);
  EXPECT_EQ(got, payload);
  EXPECT_GE(faultnet::counts().stalls, 1u);
  // A stalled receive against a silent peer still resolves as a typed
  // timeout within its deadline + stall — a delay, never a hang.
  start = Clock::now();
  EXPECT_THROW(recv_frame_into(b, FrameType::kData, /*seq=*/1,
                               std::span<float>(got), 0.2),
               Error);
  EXPECT_LT(seconds_since(start), 2.0);
}

TEST_F(Faultnet, RefusedConnectsRideTheRetryBackoff) {
  ListenSocket listener;
  // The first two attempts are refused; the third goes through — the
  // connect loop's seeded backoff keeps retrying within the deadline.
  faultnet::install(
      faultnet::parse_plan("op=connect,action=refuse,nth=1,times=2"));
  Socket sock = Socket::connect_to("127.0.0.1", listener.port(), 5.0);
  EXPECT_TRUE(sock.valid());
  EXPECT_EQ(faultnet::counts().refused, 2u);

  // All attempts refused: a typed deadline error, promptly.
  faultnet::install(
      faultnet::parse_plan("op=connect,action=refuse,times=1000000"));
  const auto start = Clock::now();
  EXPECT_THROW(
      (void)Socket::connect_to("127.0.0.1", listener.port(), 0.3), Error);
  EXPECT_LT(seconds_since(start), 2.0);
  EXPECT_GE(faultnet::counts().refused, 1u);
}

TEST_F(Faultnet, RulesGateOnRankAndTrainingContext) {
  faultnet::install(faultnet::parse_plan(
      "rank=2,op=send,action=reset; op=send,epoch=1,step=3,action=reset"));
  // Wrong rank AND wrong (epoch, step): neither rule fires.
  faultnet::set_rank(0);
  faultnet::set_step(/*epoch=*/0, /*step=*/3);
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(8);
  send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(payload),
             1.0);
  std::vector<float> got(payload.size());
  recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(faultnet::counts().total, 0u);

  // Matching (epoch, step): the context-gated rule fires.
  faultnet::set_step(/*epoch=*/1, /*step=*/3);
  EXPECT_THROW(send_frame(a, FrameType::kData, /*seq=*/1,
                          std::span<const float>(payload), 1.0),
               Error);
  EXPECT_EQ(faultnet::counts().resets, 1u);
}

TEST_F(Faultnet, PhaseRulesFireAtPhaseBoundaries) {
  faultnet::install(faultnet::parse_plan(
      "phase=backward,nth=2,action=stall,arg=0.05"));
  const auto start = Clock::now();
  faultnet::at_phase(faultnet::Phase::kBackward);  // 1st: below nth
  EXPECT_EQ(faultnet::counts().stalls, 0u);
  faultnet::at_phase(faultnet::Phase::kForward);   // other phase: no match
  faultnet::at_phase(faultnet::Phase::kBackward);  // 2nd: fires
  EXPECT_EQ(faultnet::counts().stalls, 1u);
  faultnet::at_phase(faultnet::Phase::kBackward);  // 3rd: window closed
  EXPECT_EQ(faultnet::counts().stalls, 1u);
  EXPECT_GE(seconds_since(start), 0.04);
}

TEST_F(Faultnet, NthSelectsTheExactOccurrence) {
  faultnet::install(faultnet::parse_plan("op=send,nth=3,action=reset"));
  auto [a, b] = socket_pair();
  const std::vector<float> payload = test_payload(4);
  // Sends 1 and 2 pass untouched; send 3 hits the reset.
  send_frame(a, FrameType::kData, /*seq=*/0, std::span<const float>(payload),
             1.0);
  send_frame(a, FrameType::kData, /*seq=*/1, std::span<const float>(payload),
             1.0);
  EXPECT_EQ(faultnet::counts().total, 0u);
  EXPECT_THROW(send_frame(a, FrameType::kData, /*seq=*/2,
                          std::span<const float>(payload), 1.0),
               Error);
  EXPECT_EQ(faultnet::counts().resets, 1u);
  std::vector<float> got(payload.size());
  recv_frame_into(b, FrameType::kData, /*seq=*/0, std::span<float>(got), 1.0);
  EXPECT_EQ(got, payload);
}

}  // namespace
}  // namespace dkfac::comm::net
