#include "comm/fusion.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "comm/codec.hpp"
#include "comm/thread_comm.hpp"
#include "common/error.hpp"

namespace dkfac::comm {
namespace {

TEST(FusionBuffer, SingleChunkMatchesDirectAllreduce) {
  LocalGroup group(3);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> a(10, static_cast<float>(rank));
    std::vector<float> b(20, static_cast<float>(rank * 2));
    FusionBuffer fusion(comm, 1 << 20);
    fusion.add(a);
    fusion.add(b);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float v : a) EXPECT_FLOAT_EQ(v, 0 + 1 + 2);
    for (float v : b) EXPECT_FLOAT_EQ(v, 0 + 2 + 4);
  });
}

TEST(FusionBuffer, ChunksWhenOverCapacity) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    // 3 views of 100 floats with a 128-float buffer → multiple chunks.
    std::vector<std::vector<float>> views(3);
    for (auto& v : views) v.assign(100, static_cast<float>(rank + 1));
    FusionBuffer fusion(comm, 128 * sizeof(float));
    for (auto& v : views) fusion.add(v);
    fusion.execute(ReduceOp::kAverage);
    EXPECT_GE(fusion.last_chunk_count(), 3u);
    for (auto& v : views) {
      for (float x : v) EXPECT_FLOAT_EQ(x, 1.5f);
    }
  });
}

TEST(FusionBuffer, ViewLargerThanBufferIsSplit) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> big(1000);
    for (size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<float>(i) + rank;
    }
    FusionBuffer fusion(comm, 256 * sizeof(float));
    fusion.add(big);
    fusion.execute(ReduceOp::kAverage);
    EXPECT_EQ(fusion.last_chunk_count(), 4u);  // ceil(1000/256)
    for (size_t i = 0; i < big.size(); ++i) {
      ASSERT_FLOAT_EQ(big[i], static_cast<float>(i) + 0.5f) << "index " << i;
    }
  });
}

TEST(FusionBuffer, RegistrationsClearAfterExecute) {
  SelfComm comm;
  FusionBuffer fusion(comm);
  std::vector<float> v(4, 1.0f);
  fusion.add(v);
  EXPECT_EQ(fusion.pending_views(), 1u);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.pending_views(), 0u);
}

TEST(FusionBuffer, EmptyExecuteIsNoop) {
  SelfComm comm;
  FusionBuffer fusion(comm);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.last_chunk_count(), 0u);
}

TEST(FusionBuffer, TinyCapacityThrows) {
  SelfComm comm;
  EXPECT_THROW(FusionBuffer(comm, 0), Error);
}

TEST(FusionBuffer, NonMultipleOfFourCapacityFloorsToWholeElements) {
  // Regression: a capacity with a sub-element remainder (6 bytes = one
  // float + 2 dead bytes) must floor to whole transport floats. Counting
  // the remainder as room made take == 0 with room > 0 — an infinite
  // packing loop.
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> v(5, static_cast<float>(rank + 1));
    FusionBuffer fusion(comm, 6);
    fusion.add(v);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 5u);  // one float per chunk
    for (float x : v) EXPECT_FLOAT_EQ(x, 3.0f);
  });
}

TEST(FusionBuffer, ExactFitViewUsesSingleChunk) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    // View exactly equal to the buffer capacity — must not spill into a
    // second (empty) chunk.
    std::vector<float> v(256, static_cast<float>(rank + 1));
    FusionBuffer fusion(comm, 256 * sizeof(float));
    fusion.add(v);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float x : v) EXPECT_FLOAT_EQ(x, 3.0f);
  });
}

TEST(FusionBuffer, EmptyViewsAreIgnored) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> empty;
    std::vector<float> v(8, static_cast<float>(rank));
    FusionBuffer fusion(comm, 1 << 10);
    fusion.add(empty);
    EXPECT_EQ(fusion.pending_views(), 0u);
    fusion.add(v);
    fusion.add(std::span<float>{});
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float x : v) EXPECT_FLOAT_EQ(x, 1.0f);
  });
}

/// Size-1 communicator that throws on the first allreduce, then acts as
/// the identity (SelfComm is final, so this reimplements its surface).
class FlakyComm final : public Communicator {
 public:
  using Communicator::allreduce;
  using Communicator::broadcast;

  int rank() const override { return 0; }
  int size() const override { return 1; }

  void allreduce(std::span<float> data, ReduceOp op) override {
    if (!failed_once_) {
      failed_once_ = true;
      throw Error("injected allreduce failure");
    }
    stats_.allreduce_calls++;
    stats_.allreduce_bytes += data.size_bytes();
    (void)op;
  }

  std::vector<float> allgather(std::span<const float> send) override {
    return {send.begin(), send.end()};
  }

  void broadcast(std::span<float>, int) override {}
  void barrier() override {}

 private:
  bool failed_once_ = false;
};

TEST(FusionBuffer, ThrowingCollectiveClearsRegistrations) {
  FlakyComm comm;
  FusionBuffer fusion(comm, 4 * sizeof(float));
  std::vector<float> a(4, 1.0f);
  std::vector<float> b(4, 2.0f);
  fusion.add(a);
  fusion.add(b);
  EXPECT_THROW(fusion.execute(ReduceOp::kSum), Error);
  // A failed step must not leave stale views behind to corrupt the next one.
  EXPECT_EQ(fusion.pending_views(), 0u);

  std::vector<float> c(2, 5.0f);
  fusion.add(c);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.last_chunk_count(), 1u);
  EXPECT_FLOAT_EQ(c[0], 5.0f);  // SelfComm allreduce is identity
}

// ---- codec-encoded payloads -----------------------------------------------

/// Reference for the encode-once-reduce-in-fp32 contract: quantise each
/// rank's values, fold the decoded contributions in rank order, average,
/// re-encode. What every backend must produce, bit for bit.
std::vector<float> encoded_average_reference(
    const std::vector<std::vector<float>>& per_rank, Precision p) {
  const size_t n = per_rank.front().size();
  std::vector<float> sum(n, 0.0f);
  for (const std::vector<float>& src : per_rank) {
    for (size_t i = 0; i < n; ++i) {
      sum[i] += Codec::decode_scalar(Codec::encode_scalar(src[i], p), p);
    }
  }
  for (float& v : sum) v /= static_cast<float>(per_rank.size());
  std::vector<float> enc(static_cast<size_t>(
      Codec::encoded_floats(static_cast<int64_t>(n))));
  Codec::encode(sum, enc, p);
  return enc;
}

TEST(FusionBuffer, EncodedViewsReduceEncodeOnceFoldInFp32) {
  for (Precision p : {Precision::kFp16, Precision::kBf16}) {
    std::vector<std::vector<float>> per_rank(3);
    for (int r = 0; r < 3; ++r) {
      per_rank[static_cast<size_t>(r)].resize(11);  // odd → pad slot in play
      for (size_t i = 0; i < 11; ++i) {
        per_rank[static_cast<size_t>(r)][i] =
            0.37f * static_cast<float>(i) - 1.3f * static_cast<float>(r + 1);
      }
    }
    const std::vector<float> expected = encoded_average_reference(per_rank, p);

    LocalGroup group(3);
    group.run([&](int rank, Communicator& comm) {
      std::vector<float> enc(expected.size());
      Codec::encode(per_rank[static_cast<size_t>(rank)], enc, p);
      FusionBuffer fusion(comm, 1 << 20);
      fusion.add(enc, p);
      fusion.execute(ReduceOp::kAverage);
      EXPECT_EQ(fusion.last_chunk_count(), 1u);
      for (size_t i = 0; i < enc.size(); ++i) {
        ASSERT_EQ(std::bit_cast<uint32_t>(enc[i]),
                  std::bit_cast<uint32_t>(expected[i]))
            << precision_name(p) << " word " << i << " on rank " << rank;
      }
    });
  }
}

TEST(FusionBuffer, PrecisionChangeForcesChunkBoundary) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> plain(8, static_cast<float>(rank + 1));
    std::vector<float> source(8, static_cast<float>(rank + 1));
    std::vector<float> enc(4);
    Codec::encode(source, enc, Precision::kFp16);
    // Both fit one chunk by size, but mixed wire formats must split.
    FusionBuffer fusion(comm, 1 << 20);
    fusion.add(plain);
    fusion.add(enc, Precision::kFp16);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 2u);
    for (float v : plain) EXPECT_FLOAT_EQ(v, 3.0f);
    std::vector<float> decoded(8);
    Codec::decode(enc, decoded, Precision::kFp16);
    for (float v : decoded) EXPECT_FLOAT_EQ(v, 3.0f);  // 1+2 exact in fp16
  });
}

TEST(FusionBuffer, SplitEncodedViewMatchesUnsplitBitwise) {
  // Chunk boundaries fall on transport floats (= element pairs) and the
  // encoded reduction is elementwise, so capacity-splitting a payload must
  // not change a single bit of the result.
  std::vector<float> source(101);
  for (size_t i = 0; i < source.size(); ++i) {
    source[i] = 0.013f * static_cast<float>(i) - 0.6f;
  }
  std::vector<std::vector<float>> results(2);
  for (int variant = 0; variant < 2; ++variant) {
    const size_t capacity = variant == 0 ? (1u << 20) : 8 * sizeof(float);
    LocalGroup group(2);
    group.run([&](int rank, Communicator& comm) {
      std::vector<float> mine(source);
      for (float& v : mine) v *= static_cast<float>(rank + 1);
      std::vector<float> enc(51);
      Codec::encode(mine, enc, Precision::kBf16);
      FusionBuffer fusion(comm, capacity);
      fusion.add(enc, Precision::kBf16);
      fusion.execute(ReduceOp::kAverage);
      if (variant == 1) EXPECT_GT(fusion.last_chunk_count(), 1u);
      if (rank == 0) results[static_cast<size_t>(variant)] = enc;
    });
  }
  ASSERT_EQ(results[0].size(), results[1].size());
  for (size_t i = 0; i < results[0].size(); ++i) {
    ASSERT_EQ(std::bit_cast<uint32_t>(results[0][i]),
              std::bit_cast<uint32_t>(results[1][i]))
        << "word " << i;
  }
}

TEST(FusionBuffer, TensorOverload) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    Tensor t = Tensor::full(Shape{8}, static_cast<float>(rank));
    FusionBuffer fusion(comm);
    fusion.add(t);
    fusion.execute(ReduceOp::kSum);
    EXPECT_FLOAT_EQ(t[0], 1.0f);
  });
}

}  // namespace
}  // namespace dkfac::comm
