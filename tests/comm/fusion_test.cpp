#include "comm/fusion.hpp"

#include <gtest/gtest.h>

#include "comm/thread_comm.hpp"
#include "common/error.hpp"

namespace dkfac::comm {
namespace {

TEST(FusionBuffer, SingleChunkMatchesDirectAllreduce) {
  LocalGroup group(3);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> a(10, static_cast<float>(rank));
    std::vector<float> b(20, static_cast<float>(rank * 2));
    FusionBuffer fusion(comm, 1 << 20);
    fusion.add(a);
    fusion.add(b);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float v : a) EXPECT_FLOAT_EQ(v, 0 + 1 + 2);
    for (float v : b) EXPECT_FLOAT_EQ(v, 0 + 2 + 4);
  });
}

TEST(FusionBuffer, ChunksWhenOverCapacity) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    // 3 views of 100 floats with a 128-float buffer → multiple chunks.
    std::vector<std::vector<float>> views(3);
    for (auto& v : views) v.assign(100, static_cast<float>(rank + 1));
    FusionBuffer fusion(comm, 128 * sizeof(float));
    for (auto& v : views) fusion.add(v);
    fusion.execute(ReduceOp::kAverage);
    EXPECT_GE(fusion.last_chunk_count(), 3u);
    for (auto& v : views) {
      for (float x : v) EXPECT_FLOAT_EQ(x, 1.5f);
    }
  });
}

TEST(FusionBuffer, ViewLargerThanBufferIsSplit) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> big(1000);
    for (size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<float>(i) + rank;
    }
    FusionBuffer fusion(comm, 256 * sizeof(float));
    fusion.add(big);
    fusion.execute(ReduceOp::kAverage);
    EXPECT_EQ(fusion.last_chunk_count(), 4u);  // ceil(1000/256)
    for (size_t i = 0; i < big.size(); ++i) {
      ASSERT_FLOAT_EQ(big[i], static_cast<float>(i) + 0.5f) << "index " << i;
    }
  });
}

TEST(FusionBuffer, RegistrationsClearAfterExecute) {
  SelfComm comm;
  FusionBuffer fusion(comm);
  std::vector<float> v(4, 1.0f);
  fusion.add(v);
  EXPECT_EQ(fusion.pending_views(), 1u);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.pending_views(), 0u);
}

TEST(FusionBuffer, EmptyExecuteIsNoop) {
  SelfComm comm;
  FusionBuffer fusion(comm);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.last_chunk_count(), 0u);
}

TEST(FusionBuffer, TinyCapacityThrows) {
  SelfComm comm;
  EXPECT_THROW(FusionBuffer(comm, 0), Error);
}

TEST(FusionBuffer, ExactFitViewUsesSingleChunk) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    // View exactly equal to the buffer capacity — must not spill into a
    // second (empty) chunk.
    std::vector<float> v(256, static_cast<float>(rank + 1));
    FusionBuffer fusion(comm, 256 * sizeof(float));
    fusion.add(v);
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float x : v) EXPECT_FLOAT_EQ(x, 3.0f);
  });
}

TEST(FusionBuffer, EmptyViewsAreIgnored) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    std::vector<float> empty;
    std::vector<float> v(8, static_cast<float>(rank));
    FusionBuffer fusion(comm, 1 << 10);
    fusion.add(empty);
    EXPECT_EQ(fusion.pending_views(), 0u);
    fusion.add(v);
    fusion.add(std::span<float>{});
    fusion.execute(ReduceOp::kSum);
    EXPECT_EQ(fusion.last_chunk_count(), 1u);
    for (float x : v) EXPECT_FLOAT_EQ(x, 1.0f);
  });
}

/// Size-1 communicator that throws on the first allreduce, then acts as
/// the identity (SelfComm is final, so this reimplements its surface).
class FlakyComm final : public Communicator {
 public:
  using Communicator::allreduce;
  using Communicator::broadcast;

  int rank() const override { return 0; }
  int size() const override { return 1; }

  void allreduce(std::span<float> data, ReduceOp op) override {
    if (!failed_once_) {
      failed_once_ = true;
      throw Error("injected allreduce failure");
    }
    stats_.allreduce_calls++;
    stats_.allreduce_bytes += data.size_bytes();
    (void)op;
  }

  std::vector<float> allgather(std::span<const float> send) override {
    return {send.begin(), send.end()};
  }

  void broadcast(std::span<float>, int) override {}
  void barrier() override {}

 private:
  bool failed_once_ = false;
};

TEST(FusionBuffer, ThrowingCollectiveClearsRegistrations) {
  FlakyComm comm;
  FusionBuffer fusion(comm, 4 * sizeof(float));
  std::vector<float> a(4, 1.0f);
  std::vector<float> b(4, 2.0f);
  fusion.add(a);
  fusion.add(b);
  EXPECT_THROW(fusion.execute(ReduceOp::kSum), Error);
  // A failed step must not leave stale views behind to corrupt the next one.
  EXPECT_EQ(fusion.pending_views(), 0u);

  std::vector<float> c(2, 5.0f);
  fusion.add(c);
  fusion.execute(ReduceOp::kSum);
  EXPECT_EQ(fusion.last_chunk_count(), 1u);
  EXPECT_FLOAT_EQ(c[0], 5.0f);  // SelfComm allreduce is identity
}

TEST(FusionBuffer, TensorOverload) {
  LocalGroup group(2);
  group.run([&](int rank, Communicator& comm) {
    Tensor t = Tensor::full(Shape{8}, static_cast<float>(rank));
    FusionBuffer fusion(comm);
    fusion.add(t);
    fusion.execute(ReduceOp::kSum);
    EXPECT_FLOAT_EQ(t[0], 1.0f);
  });
}

}  // namespace
}  // namespace dkfac::comm
