// Multi-process SocketComm tests: every collective runs between genuinely
// separate forked processes over localhost TCP (net::run_ranks).
//
// Verification pattern: children assert with normal gtest macros (failures
// print on the shared stderr and flip the child's exit code via
// HasFailure()), and the parent asserts the aggregated exit status. The
// bitwise-parity cases check collectives against golden_* reference folds
// that replicate ThreadComm's reduction order verbatim — and one case pins
// ThreadComm itself to the same references, so agreement is transitive
// bitwise parity between the two backends.
#include "comm/net/socket_comm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "comm/net/launch.hpp"
#include "comm/net/rendezvous.hpp"
#include "comm/thread_comm.hpp"
#include "common/clock.hpp"
#include "common/error.hpp"

namespace dkfac::comm::net {
namespace {

LaunchOptions fast_launch() {
  LaunchOptions options;
  options.rendezvous_timeout_s = 15.0;
  options.comm_timeout_s = 30.0;
  return options;
}

/// Runs `fn` on `n` forked ranks; a child exits nonzero iff it recorded a
/// gtest failure (visible on stderr) or returned nonzero itself.
int run_ranks_checked(int n, const std::function<void(Communicator&)>& fn) {
  return run_ranks(
      n,
      [&fn](Communicator& comm) {
        fn(comm);
        return ::testing::Test::HasFailure() ? 1 : 0;
      },
      fast_launch());
}

/// Awkward, rounding-sensitive per-rank contribution: any fold-order
/// change shows up bitwise.
std::vector<float> contribution(int rank, size_t n) {
  std::vector<float> v(n);
  for (size_t i = 0; i < n; ++i) {
    v[i] = std::sin(0.7f * static_cast<float>(i % 9973) +
                    1.3f * static_cast<float>(rank + 1)) *
               1e3f +
           static_cast<float>(rank);
  }
  return v;
}

/// ThreadComm::allreduce's reduction, verbatim: seed with rank 0, fold
/// ranks 1..p-1 in order, scale last for kAverage.
std::vector<float> golden_allreduce(int p, size_t n, ReduceOp op) {
  std::vector<float> result = contribution(0, n);
  for (int r = 1; r < p; ++r) {
    const std::vector<float> src = contribution(r, n);
    for (size_t i = 0; i < n; ++i) {
      result[i] = op == ReduceOp::kMax ? std::max(result[i], src[i])
                                       : result[i] + src[i];
    }
  }
  if (op == ReduceOp::kAverage) {
    const float inv = 1.0f / static_cast<float>(p);
    for (float& v : result) v *= inv;
  }
  return result;
}

void expect_bitwise_equal(std::span<const float> got,
                          std::span<const float> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(float)), 0)
      << what << ": payload differs bitwise";
}

TEST(SocketComm, ThreadCommMatchesGoldenFold) {
  // Pins the reference: the golden fold IS ThreadComm's reduction. The
  // socket cases below assert against the same golden values, so matching
  // them means matching ThreadComm bit for bit.
  const int p = 4;
  const size_t n = 1000;
  for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage, ReduceOp::kMax}) {
    LocalGroup group(p);
    const std::vector<float> want = golden_allreduce(p, n, op);
    group.run([&](int rank, Communicator& comm) {
      std::vector<float> data = contribution(rank, n);
      comm.allreduce(data, op);
      expect_bitwise_equal(data, want, "thread allreduce");
    });
  }
}

TEST(SocketComm, AllreduceBitwiseMatchesThreadCommFold) {
  const int p = 4;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    for (const size_t n : {size_t{1}, size_t{7}, size_t{4096}}) {
      for (ReduceOp op : {ReduceOp::kSum, ReduceOp::kAverage, ReduceOp::kMax}) {
        std::vector<float> data = contribution(comm.rank(), n);
        comm.allreduce(data, op);
        expect_bitwise_equal(data, golden_allreduce(p, n, op),
                             "socket allreduce (small)");
      }
    }
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, PipelinedRingAllreduceBitwiseMatches) {
  // 6 MB payload: the cost model must pick the pipelined ring, and the
  // chain fold must still reproduce ThreadComm's rank order bit for bit.
  const int p = 4;
  const size_t n = 1536 * 1024;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    auto& sock = dynamic_cast<SocketComm&>(comm);
    EXPECT_EQ(sock.allreduce_algorithm(n * sizeof(float)),
              SocketComm::AllreduceAlgo::kPipelinedRing);
    EXPECT_EQ(sock.allreduce_algorithm(1024),
              SocketComm::AllreduceAlgo::kRingCirculation);
    std::vector<float> data = contribution(comm.rank(), n);
    comm.allreduce(data, ReduceOp::kAverage);
    expect_bitwise_equal(data, golden_allreduce(p, n, ReduceOp::kAverage),
                         "socket allreduce (pipelined)");
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, AllgatherVariableSizesMatchesThreadOrder) {
  // Rank r contributes r+1 elements — the ragged decomposition-gather
  // shape. Output must concatenate in rank order, like ThreadComm.
  const int p = 4;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    const std::vector<float> send =
        contribution(comm.rank(), static_cast<size_t>(comm.rank()) + 1);
    const std::vector<float> got = comm.allgather(send);
    std::vector<float> want;
    for (int r = 0; r < p; ++r) {
      const std::vector<float> block =
          contribution(r, static_cast<size_t>(r) + 1);
      want.insert(want.end(), block.begin(), block.end());
    }
    expect_bitwise_equal(got, want, "socket allgather");
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, BroadcastFromEachRoot) {
  const int p = 4;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    for (int root = 0; root < p; ++root) {
      std::vector<float> data = comm.rank() == root
                                    ? contribution(root, 129)
                                    : std::vector<float>(129, -1.0f);
      comm.broadcast(data, root);
      expect_bitwise_equal(data, contribution(root, 129), "socket broadcast");
    }
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, MixedCollectiveSequence) {
  const int p = 4;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    for (int iter = 0; iter < 20; ++iter) {
      std::vector<float> g{static_cast<float>(comm.rank() + iter)};
      comm.allreduce(g, ReduceOp::kAverage);
      const std::vector<float> gathered = comm.allgather(g);
      ASSERT_EQ(gathered.size(), static_cast<size_t>(p));
      for (float v : gathered) EXPECT_EQ(v, g[0]);
      comm.broadcast(g, iter % p);
      comm.barrier();
    }
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, StatsFollowPayloadAndWireConventions) {
  const int p = 2;
  const int status = run_ranks_checked(p, [&](Communicator& comm) {
    comm.reset_stats();
    std::vector<float> data(100, 1.0f);
    comm.allreduce(data, ReduceOp::kSum);
    const std::vector<float> gathered =
        comm.allgather(std::span<const float>(data.data(), 10));
    comm.broadcast(data, /*root=*/0);
    const CommStats& stats = comm.stats();
    EXPECT_EQ(stats.allreduce_calls, 1u);
    EXPECT_EQ(stats.allreduce_bytes, 100u * sizeof(float));
    EXPECT_EQ(stats.allgather_bytes, 10u * sizeof(float));
    // Broadcast payload is counted at the root only (the cross-backend
    // payload-contribution convention).
    EXPECT_EQ(stats.broadcast_bytes,
              comm.rank() == 0 ? 100u * sizeof(float) : 0u);
    // Real wire traffic includes frame headers, so it strictly exceeds
    // the payload this rank shipped.
    EXPECT_GT(stats.wire_sent_bytes, stats.allreduce_bytes);
    EXPECT_GT(stats.wire_recv_bytes, 0u);
  });
  EXPECT_EQ(status, 0);
}

TEST(SocketComm, RendezvousHonoursRequestedRanks) {
  // In-process rendezvous: two clients request each other's "natural"
  // order swapped; the server must honour the explicit requests.
  RendezvousServer server;
  std::thread serving([&] { server.serve(2, 5.0); });
  RendezvousInfo a;
  std::thread client_a([&] {
    a = rendezvous_connect("127.0.0.1", server.port(), 2, /*requested_rank=*/1,
                           /*data_port=*/1111, 5.0);
  });
  const RendezvousInfo b = rendezvous_connect("127.0.0.1", server.port(), 2,
                                              /*requested_rank=*/0,
                                              /*data_port=*/2222, 5.0);
  client_a.join();
  serving.join();
  EXPECT_EQ(a.rank, 1);
  EXPECT_EQ(b.rank, 0);
  ASSERT_EQ(a.peer_ports.size(), 2u);
  EXPECT_EQ(a.peer_ports[0], 2222);
  EXPECT_EQ(a.peer_ports[1], 1111);
  EXPECT_EQ(b.peer_ports, a.peer_ports);
}

TEST(SocketComm, RendezvousWorldSizeMismatchRejected) {
  RendezvousServer server;
  std::thread client([&] {
    EXPECT_THROW(rendezvous_connect("127.0.0.1", server.port(), /*world=*/3,
                                    -1, 1234, 5.0),
                 Error);
  });
  EXPECT_THROW(server.serve(/*world_size=*/2, 5.0), Error);
  client.join();
}

TEST(SocketComm, RendezvousTimeoutFailsFastNotHangs) {
  RendezvousServer server;
  const auto start = Clock::now();
  EXPECT_THROW(server.serve(/*world_size=*/2, /*timeout_s=*/0.3), Error);
  EXPECT_LT(seconds_since(start), 3.0);
}

TEST(SocketComm, WorkerTimeoutWhenGroupIncomplete) {
  // One worker of an expected pair shows up: the server times out, and the
  // worker's wait for its welcome times out — both as clean errors.
  RendezvousServer server;
  std::thread serving([&] {
    EXPECT_THROW(server.serve(/*world_size=*/2, /*timeout_s=*/1.0), Error);
  });
  const auto start = Clock::now();
  SocketOptions options;
  options.rendezvous_port = server.port();
  options.world_size = 2;
  options.timeout_s = 0.5;
  EXPECT_THROW(SocketComm comm(options), Error);
  EXPECT_LT(seconds_since(start), 3.0);
  serving.join();
}

TEST(SocketComm, ConnectToDeadServerFailsFast) {
  // Grab an ephemeral port, then close the listener: connecting must fail
  // within the deadline, not hang.
  uint16_t dead_port;
  {
    ListenSocket probe;
    dead_port = probe.port();
  }
  SocketOptions options;
  options.rendezvous_port = dead_port;
  options.world_size = 2;
  options.timeout_s = 0.4;
  const auto start = Clock::now();
  EXPECT_THROW(SocketComm comm(options), Error);
  EXPECT_LT(seconds_since(start), 3.0);
}

TEST(SocketComm, PeerDeathProducesCleanErrorNotHang) {
  // Rank 1 exits mid-run; rank 0's next collective must throw a dkfac
  // Error (EOF / reset on the wire), not wedge or die on SIGPIPE.
  const auto start = Clock::now();
  const int status = run_ranks(
      2,
      [](Communicator& comm) {
        if (comm.rank() == 1) return 0;  // dies: sockets close on return
        std::vector<float> data(256, 1.0f);
        try {
          // Peer teardown races the collective; a second round guarantees
          // the death is observed even if the first exchange slipped by.
          comm.allreduce(data, ReduceOp::kSum);
          comm.allreduce(data, ReduceOp::kSum);
        } catch (const Error&) {
          return 0;  // clean, typed failure — exactly what we want
        }
        return 7;  // both collectives succeeded against a dead peer
      },
      fast_launch());
  EXPECT_EQ(status, 0);
  EXPECT_LT(seconds_since(start), 20.0);
}

TEST(SocketComm, ChildExitCodePropagates) {
  const int status = run_ranks(
      2, [](Communicator& comm) { return comm.rank() == 1 ? 3 : 0; },
      fast_launch());
  EXPECT_EQ(status, 3);
}

TEST(SocketComm, SingleRankShortCircuitsWithoutServer) {
  SocketOptions options;
  options.world_size = 1;
  SocketComm comm(options);
  EXPECT_EQ(comm.rank(), 0);
  EXPECT_EQ(comm.size(), 1);
  std::vector<float> data{1.0f, 2.0f};
  comm.allreduce(data, ReduceOp::kAverage);
  EXPECT_EQ(data[0], 1.0f);
  const std::vector<float> gathered = comm.allgather(data);
  EXPECT_EQ(gathered, data);
  comm.broadcast(data, 0);
  comm.barrier();
  EXPECT_EQ(comm.stats().wire_sent_bytes, 0u);
}

}  // namespace
}  // namespace dkfac::comm::net
