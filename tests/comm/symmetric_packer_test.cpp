#include "comm/symmetric_packer.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "comm/thread_comm.hpp"
#include "common/error.hpp"
#include "linalg/blas.hpp"

namespace dkfac::comm {
namespace {

Tensor random_symmetric(int64_t n, uint64_t seed) {
  Rng rng(seed);
  Tensor m = Tensor::randn(Shape{n, n}, rng);
  linalg::symmetrize(m);
  return m;
}

TEST(SymmetricPacker, PackedSizeFormula) {
  EXPECT_EQ(SymmetricPacker::packed_size(0), 0);
  EXPECT_EQ(SymmetricPacker::packed_size(1), 1);
  EXPECT_EQ(SymmetricPacker::packed_size(2), 3);
  EXPECT_EQ(SymmetricPacker::packed_size(10), 55);
  EXPECT_THROW(SymmetricPacker::packed_size(-1), Error);
}

TEST(SymmetricPacker, RoundTrip1x1) {
  Tensor m(Shape{1, 1});
  m.at(0, 0) = 3.5f;
  std::vector<float> packed(1);
  SymmetricPacker::pack(m, packed);
  EXPECT_FLOAT_EQ(packed[0], 3.5f);

  Tensor out(Shape{1, 1});
  SymmetricPacker::unpack(packed, out);
  EXPECT_FLOAT_EQ(out.at(0, 0), 3.5f);
}

TEST(SymmetricPacker, RoundTripIsExactForSymmetricMatrices) {
  for (int64_t n : {2, 3, 7, 16, 33}) {
    Tensor m = random_symmetric(n, 500 + static_cast<uint64_t>(n));
    std::vector<float> packed(
        static_cast<size_t>(SymmetricPacker::packed_size(n)));
    SymmetricPacker::pack(m, packed);
    Tensor out(Shape{n, n});
    SymmetricPacker::unpack(packed, out);
    EXPECT_TRUE(out == m) << "round trip not bit-exact for n=" << n;
  }
}

TEST(SymmetricPacker, PackLayoutIsRowMajorUpperTriangle) {
  Tensor m(Shape{3, 3});
  // [0 1 2; 1 4 5; 2 5 8] — symmetric with distinct upper entries.
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) m.at(i, j) = static_cast<float>(i * 3 + j);
  }
  linalg::symmetrize(m);
  std::vector<float> packed(6);
  SymmetricPacker::pack(m, packed);
  const std::vector<float> expected{0.0f, 2.0f, 4.0f, 4.0f, 6.0f, 8.0f};
  EXPECT_EQ(packed, expected);
}

TEST(SymmetricPacker, UnpackMirrorsUpperTriangle) {
  // An asymmetric matrix round-trips to its upper-mirrored version: the
  // packed path re-symmetrises FP32 drift for free.
  Tensor m(Shape{2, 2});
  m.at(0, 0) = 1.0f;
  m.at(0, 1) = 2.0f;
  m.at(1, 0) = 99.0f;  // stale lower triangle
  m.at(1, 1) = 4.0f;
  std::vector<float> packed(3);
  SymmetricPacker::pack(m, packed);
  SymmetricPacker::unpack(packed, m);
  EXPECT_FLOAT_EQ(m.at(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(linalg::asymmetry(m), 0.0f);
}

TEST(SymmetricPacker, RejectsBadShapes) {
  Tensor rect(Shape{2, 3});
  std::vector<float> buf(16);
  EXPECT_THROW(SymmetricPacker::pack(rect, buf), Error);
  EXPECT_THROW(SymmetricPacker::unpack(buf, rect), Error);

  Tensor square(Shape{3, 3});
  std::vector<float> wrong_size(5);  // needs 6
  EXPECT_THROW(SymmetricPacker::pack(square, wrong_size), Error);
  EXPECT_THROW(SymmetricPacker::unpack(wrong_size, square), Error);
}

TEST(SymmetricPacker, PackedAllreduceMatchesDenseAllreduce) {
  // End-to-end: allreducing packed triangles must equal allreducing the
  // dense matrices, for every rank.
  const int64_t n = 5;
  LocalGroup group(3);
  group.run([&](int rank, Communicator& comm) {
    Tensor dense = random_symmetric(n, 600 + static_cast<uint64_t>(rank));
    Tensor packed_view = dense;  // same per-rank contribution

    comm.allreduce(dense, ReduceOp::kAverage);

    std::vector<float> packed(
        static_cast<size_t>(SymmetricPacker::packed_size(n)));
    SymmetricPacker::pack(packed_view, packed);
    comm.allreduce(packed, ReduceOp::kAverage);
    Tensor unpacked(Shape{n, n});
    SymmetricPacker::unpack(packed, unpacked);

    EXPECT_TRUE(allclose(unpacked, dense, 1e-6f, 1e-7f)) << "rank " << rank;
  });
}

}  // namespace
}  // namespace dkfac::comm
