#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "tensor/random.hpp"

namespace dkfac::linalg {
namespace {

TEST(Gemm, SmallKnownProduct) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 154.0f);
}

TEST(Gemm, IdentityIsNeutral) {
  Rng rng(1);
  Tensor a = Tensor::randn(Shape{7, 7}, rng);
  EXPECT_TRUE(allclose(matmul(a, Tensor::eye(7)), a));
  EXPECT_TRUE(allclose(matmul(Tensor::eye(7), a), a));
}

TEST(Gemm, TransposeFlagsMatchExplicitTranspose) {
  Rng rng(2);
  Tensor a = Tensor::randn(Shape{4, 6}, rng);
  Tensor b = Tensor::randn(Shape{4, 5}, rng);
  // AᵀB via flag vs via materialised transpose.
  Tensor via_flag = matmul(a, b, Trans::kYes, Trans::kNo);
  Tensor via_mat = matmul(transpose(a), b);
  EXPECT_TRUE(allclose(via_flag, via_mat, 1e-4f, 1e-5f));

  Tensor c = Tensor::randn(Shape{5, 6}, rng);
  // A Cᵀ
  Tensor via_flag2 = matmul(a, c, Trans::kNo, Trans::kYes);
  Tensor via_mat2 = matmul(a, transpose(c));
  EXPECT_TRUE(allclose(via_flag2, via_mat2, 1e-4f, 1e-5f));

  // Aᵀ·Dᵀ with D 5×4 gives 6×5.
  Tensor d = Tensor::randn(Shape{5, 4}, rng);
  Tensor via_flag3 = matmul(a, d, Trans::kYes, Trans::kYes);
  Tensor via_mat3 = matmul(transpose(a), transpose(d));
  EXPECT_TRUE(allclose(via_flag3, via_mat3, 1e-4f, 1e-5f));
}

TEST(Gemm, AlphaBetaAccumulation) {
  Tensor a(Shape{2, 2}, {1, 0, 0, 1});
  Tensor b(Shape{2, 2}, {1, 2, 3, 4});
  Tensor c = Tensor::full(Shape{2, 2}, 10.0f);
  gemm(2.0f, a, Trans::kNo, b, Trans::kNo, 0.5f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 2.0f * 1.0f + 0.5f * 10.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 2.0f * 4.0f + 0.5f * 10.0f);
}

TEST(Gemm, InnerDimMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), Error);
}

TEST(Gemm, OutputShapeMismatchThrows) {
  Tensor a(Shape{2, 3});
  Tensor b(Shape{3, 4});
  Tensor c(Shape{2, 5});
  EXPECT_THROW(gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c), Error);
}

TEST(Gemm, AssociativityProperty) {
  Rng rng(3);
  Tensor a = Tensor::randn(Shape{5, 6}, rng);
  Tensor b = Tensor::randn(Shape{6, 7}, rng);
  Tensor c = Tensor::randn(Shape{7, 4}, rng);
  Tensor left = matmul(matmul(a, b), c);
  Tensor right = matmul(a, matmul(b, c));
  EXPECT_TRUE(allclose(left, right, 1e-3f, 1e-4f));
}

TEST(Gemm, LargerSizesAgainstNaiveReference) {
  Rng rng(4);
  const int64_t m = 97, k = 113, n = 89;  // awkward non-block-multiple sizes
  Tensor a = Tensor::randn(Shape{m, k}, rng);
  Tensor b = Tensor::randn(Shape{k, n}, rng);
  Tensor c = matmul(a, b);
  // Naive reference in double.
  for (int64_t i = 0; i < m; i += 13) {
    for (int64_t j = 0; j < n; j += 11) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(a.at(i, kk)) * b.at(kk, j);
      }
      EXPECT_NEAR(c.at(i, j), acc, 1e-3);
    }
  }
}

TEST(Gemv, MatchesGemm) {
  Rng rng(5);
  Tensor a = Tensor::randn(Shape{6, 4}, rng);
  Tensor x = Tensor::randn(Shape{4}, rng);
  Tensor y(Shape{6});
  gemv(1.0f, a, Trans::kNo, x, 0.0f, y);
  Tensor y_ref = matmul(a, x.reshaped(Shape{4, 1}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], y_ref[i], 1e-4f);

  Tensor z(Shape{4});
  gemv(1.0f, a, Trans::kYes, Tensor::randn(Shape{6}, rng), 0.0f, z);
  EXPECT_EQ(z.dim(0), 4);
}

TEST(Transpose, RoundTrip) {
  Rng rng(6);
  Tensor a = Tensor::randn(Shape{9, 13}, rng);
  EXPECT_TRUE(allclose(transpose(transpose(a)), a));
}

TEST(Transpose, Values) {
  Tensor a(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor t = transpose(a);
  EXPECT_EQ(t.shape(), Shape({3, 2}));
  EXPECT_FLOAT_EQ(t.at(0, 1), 4.0f);
  EXPECT_FLOAT_EQ(t.at(2, 0), 3.0f);
}

TEST(Symmetrize, MakesExactlySymmetric) {
  Rng rng(7);
  Tensor a = Tensor::randn(Shape{8, 8}, rng);
  EXPECT_GT(asymmetry(a), 0.1f);
  symmetrize(a);
  EXPECT_EQ(asymmetry(a), 0.0f);
}

TEST(AddDiagonal, AddsGammaOnly) {
  Tensor a = Tensor::zeros(Shape{3, 3});
  add_diagonal(a, 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(a.at(1, 1), 0.5f);
  EXPECT_FLOAT_EQ(a.at(0, 1), 0.0f);
}

TEST(FrobeniusDistance, ZeroForIdentical) {
  Rng rng(8);
  Tensor a = Tensor::randn(Shape{4, 4}, rng);
  EXPECT_FLOAT_EQ(frobenius_distance(a, a), 0.0f);
  Tensor b = a;
  b.at(1, 1) += 3.0f;
  EXPECT_NEAR(frobenius_distance(a, b), 3.0f, 1e-5f);
}

TEST(Gemm, RankOneOuterProductIsFactorShape) {
  // A Kronecker factor is an outer product aaᵀ — the basic building block.
  Tensor a(Shape{3, 1}, {1, 2, 3});
  Tensor f = matmul(a, a, Trans::kNo, Trans::kYes);
  EXPECT_EQ(f.shape(), Shape({3, 3}));
  EXPECT_FLOAT_EQ(f.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(f.at(1, 2), 6.0f);
  EXPECT_EQ(asymmetry(f), 0.0f);
}

}  // namespace
}  // namespace dkfac::linalg
