// Property tests for the packed micro-kernel linalg rewrite: gemm/syrk vs a
// naive double-precision reference across all four transpose combinations
// and awkward (odd/prime) sizes, alpha/beta edge cases, IEEE NaN/Inf
// propagation (the legacy `aval == 0 → skip` fast-path regression), bitwise
// syrk ≡ gemm agreement, and bitwise invariance of every kernel to
// OMP_NUM_THREADS. This TU is compiled WITHOUT the native-arch flags, so
// including microkernel.hpp/pack.hpp here also exercises the portable
// fallback micro-kernel in CI even when the library itself uses AVX2.
#include <omp.h>

#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen.hpp"
#include "linalg/microkernel.hpp"
#include "linalg/pack.hpp"
#include "linalg/threading.hpp"
#include "tensor/random.hpp"

namespace dkfac::linalg {
namespace {

// ---- reference implementations -------------------------------------------

float op_at(const Tensor& t, Trans trans, int64_t i, int64_t j) {
  return trans == Trans::kNo ? t.at(i, j) : t.at(j, i);
}

/// Naive triple loop in double; `c` must already hold the beta·C term.
Tensor reference_gemm(float alpha, const Tensor& a, Trans trans_a,
                      const Tensor& b, Trans trans_b, float beta,
                      const Tensor& c_in) {
  const int64_t m = trans_a == Trans::kNo ? a.dim(0) : a.dim(1);
  const int64_t k = trans_a == Trans::kNo ? a.dim(1) : a.dim(0);
  const int64_t n = trans_b == Trans::kNo ? b.dim(1) : b.dim(0);
  Tensor c(Shape{m, n});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += static_cast<double>(op_at(a, trans_a, i, kk)) *
               op_at(b, trans_b, kk, j);
      }
      const double base = beta == 0.0f ? 0.0 : beta * static_cast<double>(c_in.at(i, j));
      c.at(i, j) = static_cast<float>(alpha * acc + base);
    }
  }
  return c;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<size_t>(a.numel()) * sizeof(float)) == 0;
}

/// Relative tolerance scaled by the reduction depth: the packed kernel
/// accumulates in fp32 (blocked order), the reference in double.
void expect_close(const Tensor& got, const Tensor& want, int64_t k) {
  ASSERT_EQ(got.shape(), want.shape());
  const float tol = 1e-5f * static_cast<float>(std::max<int64_t>(k, 1));
  for (int64_t i = 0; i < got.numel(); ++i) {
    const float scale = std::max(1.0f, std::abs(want[i]));
    ASSERT_NEAR(got[i], want[i], tol * scale) << "element " << i;
  }
}

/// Runs `fn` under OMP_NUM_THREADS = t for each t, asserting the outputs
/// are bitwise identical to the single-thread run.
template <typename Fn>
void expect_thread_invariant(Fn&& fn, const char* what) {
  const int original = omp_get_max_threads();
  omp_set_num_threads(1);
  const Tensor baseline = fn();
  for (int threads : {2, 8}) {
    omp_set_num_threads(threads);
    const Tensor run = fn();
    EXPECT_TRUE(bitwise_equal(run, baseline))
        << what << " differs between 1 and " << threads << " threads";
  }
  omp_set_num_threads(original);
}

// ---- gemm vs reference ----------------------------------------------------

struct GemmCase {
  int64_t m, k, n;
};

class GemmAllTrans : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAllTrans, MatchesNaiveReferenceForAllTransCombos) {
  const auto [m, k, n] = GetParam();
  Rng rng(static_cast<uint64_t>(m * 10007 + k * 101 + n));
  for (Trans ta : {Trans::kNo, Trans::kYes}) {
    for (Trans tb : {Trans::kNo, Trans::kYes}) {
      const Tensor a = ta == Trans::kNo ? Tensor::randn(Shape{m, k}, rng)
                                        : Tensor::randn(Shape{k, m}, rng);
      const Tensor b = tb == Trans::kNo ? Tensor::randn(Shape{k, n}, rng)
                                        : Tensor::randn(Shape{n, k}, rng);
      for (const auto [alpha, beta] :
           {std::pair{1.0f, 0.0f}, {1.0f, 1.0f}, {-1.0f, 0.5f}, {0.5f, -1.0f},
            {0.0f, 0.5f}}) {
        Tensor c = Tensor::randn(Shape{m, n}, rng);
        const Tensor want = reference_gemm(alpha, a, ta, b, tb, beta, c);
        gemm(alpha, a, ta, b, tb, beta, c);
        expect_close(c, want, k);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddPrimeSizes, GemmAllTrans,
    ::testing::Values(GemmCase{1, 1, 1}, GemmCase{2, 3, 5}, GemmCase{7, 1, 13},
                      GemmCase{6, 16, 17},   // exactly one micro-tile + 1
                      GemmCase{17, 31, 19},  // primes straddling kMR/kNR
                      GemmCase{97, 113, 89},
                      GemmCase{64, 300, 1},  // gemv-shaped degenerate n
                      GemmCase{1, 257, 33},  // k crosses the KC=256 boundary
                      GemmCase{130, 270, 110}));

TEST(GemmEdges, BetaZeroOverwritesStaleNaN) {
  // BLAS rule: beta == 0 must not read C — stale NaN may never leak through.
  Tensor a(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b(Shape{2, 2}, {5, 6, 7, 8});
  Tensor c(Shape{2, 2});
  c.fill_(std::numeric_limits<float>::quiet_NaN());
  gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FALSE(std::isnan(c[i]));
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
}

TEST(GemmEdges, AlphaZeroSkipsProductEntirely) {
  // alpha == 0: A and B are not referenced (BLAS), even if they hold NaN.
  Tensor a(Shape{2, 2});
  a.fill_(std::numeric_limits<float>::quiet_NaN());
  Tensor b = a;
  Tensor c(Shape{2, 2}, {1, 2, 3, 4});
  gemm(0.0f, a, Trans::kNo, b, Trans::kNo, 0.5f, c);
  EXPECT_FLOAT_EQ(c.at(0, 0), 0.5f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 2.0f);
}

// Regression for the legacy `if (aval == 0.0f) continue;` fast-path, which
// silently dropped NaN/Inf propagation from B wherever A held a zero.
TEST(GemmEdges, ZeroTimesNaNPropagates) {
  Tensor a = Tensor::zeros(Shape{3, 3});
  Tensor b(Shape{3, 3});
  b.fill_(std::numeric_limits<float>::quiet_NaN());
  Tensor c(Shape{3, 3});
  gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  for (int64_t i = 0; i < c.numel(); ++i) {
    EXPECT_TRUE(std::isnan(c[i])) << "0·NaN must be NaN, element " << i;
  }
}

TEST(GemmEdges, ZeroTimesInfPropagatesAsNaN) {
  // One zero row in A against an Inf column in B: 0·Inf = NaN by IEEE.
  Tensor a(Shape{2, 2}, {0, 0, 1, 1});
  Tensor b(Shape{2, 2}, {std::numeric_limits<float>::infinity(), 1, 2, 3});
  Tensor c(Shape{2, 2});
  gemm(1.0f, a, Trans::kNo, b, Trans::kNo, 0.0f, c);
  EXPECT_TRUE(std::isnan(c.at(0, 0)));
  EXPECT_TRUE(std::isinf(c.at(1, 0)));
  EXPECT_FLOAT_EQ(c.at(0, 1), 0.0f);
}

// ---- syrk -----------------------------------------------------------------

TEST(Syrk, BitwiseMatchesGemmTransposedGram) {
  // syrk(αAᵀA) must equal gemm(α, Aᵀ, A) bit for bit: same packing, same
  // blocking, same per-element accumulation order, and the mirrored lower
  // triangle matches because fp multiply/FMA commute bitwise.
  for (auto [rows, d] : {std::pair<int64_t, int64_t>{5, 3},
                         {64, 17}, {300, 33}, {257, 96}}) {
    Rng rng(static_cast<uint64_t>(rows * 131 + d));
    Tensor a = Tensor::randn(Shape{rows, d}, rng);
    Tensor via_gemm(Shape{d, d});
    gemm(1.0f / rows, a, Trans::kYes, a, Trans::kNo, 0.0f, via_gemm);
    Tensor via_syrk(Shape{d, d});
    syrk(1.0f / rows, a, Trans::kYes, 0.0f, via_syrk);
    EXPECT_TRUE(bitwise_equal(via_syrk, via_gemm))
        << "syrk != gemm for [" << rows << ", " << d << "]";
  }
}

TEST(Syrk, BitwiseMatchesGemmNoTransGram) {
  // The AAᵀ orientation.
  for (auto [d, cols] : {std::pair<int64_t, int64_t>{7, 29}, {33, 128}}) {
    Rng rng(static_cast<uint64_t>(d * 7 + cols));
    Tensor a = Tensor::randn(Shape{d, cols}, rng);
    Tensor via_gemm(Shape{d, d});
    gemm(2.0f, a, Trans::kNo, a, Trans::kYes, 0.0f, via_gemm);
    Tensor via_syrk(Shape{d, d});
    syrk(2.0f, a, Trans::kNo, 0.0f, via_syrk);
    EXPECT_TRUE(bitwise_equal(via_syrk, via_gemm));
  }
}

TEST(Syrk, OutputIsExactlySymmetric) {
  Rng rng(42);
  Tensor a = Tensor::randn(Shape{111, 37}, rng);
  Tensor c(Shape{37, 37});
  syrk(1.0f, a, Trans::kYes, 0.0f, c);
  EXPECT_EQ(asymmetry(c), 0.0f);
}

TEST(Syrk, AlphaBetaEdgeCases) {
  Rng rng(43);
  Tensor a = Tensor::randn(Shape{29, 11}, rng);
  // Symmetric C so the documented beta convention (lower = mirror of upper)
  // agrees with plain elementwise beta·C.
  Tensor m = Tensor::randn(Shape{11, 11}, rng);
  Tensor c0(Shape{11, 11});
  syrk(1.0f, m, Trans::kYes, 0.0f, c0);  // SPD-ish symmetric base

  for (const auto [alpha, beta] :
       {std::pair{1.0f, 1.0f}, {-1.0f, 0.5f}, {0.0f, -1.0f}, {0.5f, 0.0f}}) {
    Tensor c = c0;
    const Tensor want = reference_gemm(alpha, a, Trans::kYes, a, Trans::kNo,
                                       beta, c0);
    syrk(alpha, a, Trans::kYes, beta, c);
    expect_close(c, want, a.dim(0));
    EXPECT_EQ(asymmetry(c), 0.0f);
  }
}

TEST(Syrk, BetaZeroOverwritesStaleNaN) {
  Rng rng(44);
  Tensor a = Tensor::randn(Shape{13, 7}, rng);
  Tensor c(Shape{7, 7});
  c.fill_(std::numeric_limits<float>::quiet_NaN());
  syrk(1.0f, a, Trans::kYes, 0.0f, c);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_FALSE(std::isnan(c[i]));
}

TEST(Syrk, ShapeMismatchThrows) {
  Tensor a(Shape{5, 3});
  Tensor bad(Shape{5, 5});
  EXPECT_THROW(syrk(1.0f, a, Trans::kYes, 0.0f, bad), Error);  // wants 3×3
  Tensor good(Shape{3, 3});
  EXPECT_NO_THROW(syrk(1.0f, a, Trans::kYes, 0.0f, good));
  EXPECT_THROW(syrk(1.0f, a, Trans::kNo, 0.0f, good), Error);  // wants 5×5
}

// ---- gemv / transpose -----------------------------------------------------

TEST(GemvKernel, MatchesReferenceBothOrientations) {
  Rng rng(45);
  for (auto [m, k] : {std::pair<int64_t, int64_t>{3, 5}, {97, 113}, {300, 41}}) {
    Tensor a = Tensor::randn(Shape{m, k}, rng);
    Tensor x = Tensor::randn(Shape{k}, rng);
    Tensor xt = Tensor::randn(Shape{m}, rng);
    Tensor y = Tensor::randn(Shape{m}, rng);
    Tensor yt = Tensor::randn(Shape{k}, rng);
    const Tensor y0 = y;
    const Tensor yt0 = yt;

    gemv(2.0f, a, Trans::kNo, x, 0.5f, y);
    gemv(-1.0f, a, Trans::kYes, xt, 1.0f, yt);
    for (int64_t i = 0; i < m; ++i) {
      double acc = 0.0;
      for (int64_t j = 0; j < k; ++j) acc += static_cast<double>(a.at(i, j)) * x[j];
      EXPECT_NEAR(y[i], 2.0f * acc + 0.5f * y0[i], 1e-4 * (1.0 + std::abs(acc)));
    }
    for (int64_t j = 0; j < k; ++j) {
      double acc = 0.0;
      for (int64_t i = 0; i < m; ++i) acc += static_cast<double>(a.at(i, j)) * xt[i];
      EXPECT_NEAR(yt[j], -acc + yt0[j], 1e-4 * (1.0 + std::abs(acc)));
    }
  }
}

TEST(GemvKernel, BetaZeroOverwritesStaleNaN) {
  Rng rng(46);
  Tensor a = Tensor::randn(Shape{4, 3}, rng);
  Tensor x = Tensor::randn(Shape{3}, rng);
  Tensor y(Shape{4});
  y.fill_(std::numeric_limits<float>::quiet_NaN());
  gemv(1.0f, a, Trans::kNo, x, 0.0f, y);
  for (int64_t i = 0; i < 4; ++i) EXPECT_FALSE(std::isnan(y[i]));
  Tensor yt(Shape{3});
  yt.fill_(std::numeric_limits<float>::quiet_NaN());
  gemv(1.0f, a, Trans::kYes, Tensor::randn(Shape{4}, rng), 0.0f, yt);
  for (int64_t i = 0; i < 3; ++i) EXPECT_FALSE(std::isnan(yt[i]));
}

// ---- portable micro-kernel (fallback path in CI) --------------------------

TEST(PortableMicrokernel, PackAndAccumulateMatchReference) {
  // This TU is normally built without -mavx2/-mfma, so detail::microkernel
  // here IS the portable fallback — packing + accumulation are validated
  // against a naive dot product even when the library runs the AVX2
  // instance. Global flags (e.g. CMAKE_CXX_FLAGS=-march=native) can make
  // this TU compile the AVX2 kernel instead; then there is no portable
  // instance in the build to test.
  if (detail::microkernel_is_avx2()) {
    GTEST_SKIP() << "test TU compiled with AVX2 — portable path not present";
  }
  using detail::kMR;
  using detail::kNR;
  const int64_t m = 5, n = 13, k = 37;  // partial tiles in both directions
  Rng rng(47);
  Tensor a = Tensor::randn(Shape{k, m}, rng);  // packed as op(A) = Aᵀ
  Tensor b = Tensor::randn(Shape{k, n}, rng);

  const detail::OpView av{a.data(), a.dim(1), /*trans=*/true};
  const detail::OpView bv{b.data(), b.dim(1), /*trans=*/false};
  std::vector<float> apack(static_cast<size_t>(kMR * k));
  std::vector<float> bpack(static_cast<size_t>(kNR * k));
  detail::pack_a(av, 0, m, 0, k, apack.data());
  detail::pack_b(bv, 0, k, 0, n, bpack.data());

  float acc[kMR * kNR] = {};
  detail::microkernel(k, apack.data(), bpack.data(), acc);

  for (int64_t r = 0; r < m; ++r) {
    for (int64_t c = 0; c < n; ++c) {
      double want = 0.0;
      for (int64_t kk = 0; kk < k; ++kk) {
        want += static_cast<double>(a.at(kk, r)) * b.at(kk, c);
      }
      EXPECT_NEAR(acc[r * kNR + c], want, 1e-4 * (1.0 + std::abs(want)));
    }
  }
  // Padded rows/columns must stay exactly zero (0·0 contributions only).
  for (int64_t r = m; r < kMR; ++r) {
    for (int64_t c = 0; c < kNR; ++c) EXPECT_EQ(acc[r * kNR + c], 0.0f);
  }
  for (int64_t r = 0; r < kMR; ++r) {
    for (int64_t c = n; c < kNR; ++c) EXPECT_EQ(acc[r * kNR + c], 0.0f);
  }
}

// ---- bitwise determinism across thread counts -----------------------------

TEST(ThreadInvariance, GemmAllTransCombos) {
  Rng rng(48);
  const Tensor a = Tensor::randn(Shape{130, 97}, rng);
  const Tensor b = Tensor::randn(Shape{97, 110}, rng);
  const Tensor at = transpose(a);
  const Tensor bt = transpose(b);
  expect_thread_invariant([&] { return matmul(a, b); }, "gemm NN");
  expect_thread_invariant([&] { return matmul(at, b, Trans::kYes, Trans::kNo); },
                          "gemm TN");
  expect_thread_invariant([&] { return matmul(a, bt, Trans::kNo, Trans::kYes); },
                          "gemm NT");
  expect_thread_invariant(
      [&] { return matmul(at, bt, Trans::kYes, Trans::kYes); }, "gemm TT");
}

TEST(ThreadInvariance, SyrkGemvTranspose) {
  Rng rng(49);
  const Tensor a = Tensor::randn(Shape{301, 65}, rng);
  const Tensor x = Tensor::randn(Shape{65}, rng);
  const Tensor xt = Tensor::randn(Shape{301}, rng);
  expect_thread_invariant(
      [&] {
        Tensor c(Shape{65, 65});
        syrk(1.0f / 301, a, Trans::kYes, 0.0f, c);
        return c;
      },
      "syrk");
  expect_thread_invariant(
      [&] {
        Tensor y(Shape{301});
        gemv(1.0f, a, Trans::kNo, x, 0.0f, y);
        return y;
      },
      "gemv N");
  expect_thread_invariant(
      [&] {
        Tensor y(Shape{65});
        gemv(1.0f, a, Trans::kYes, xt, 0.0f, y);
        return y;
      },
      "gemv T");
  expect_thread_invariant([&] { return transpose(a); }, "transpose");
}

TEST(ThreadInvariance, CholeskyAndSolves) {
  Rng rng(50);
  const int64_t n = 160;  // above the kernels' parallel thresholds
  Tensor m = Tensor::randn(Shape{n, n}, rng);
  Tensor spd(Shape{n, n});
  syrk(1.0f, m, Trans::kYes, 0.0f, spd);
  add_diagonal(spd, 0.5f);
  expect_thread_invariant([&] { return cholesky(spd); }, "cholesky");
  expect_thread_invariant([&] { return spd_inverse(spd); }, "spd_inverse");
}

TEST(ThreadInvariance, SymmetricEigensolve) {
  Rng rng(51);
  const int64_t n = 200;  // engages tred2 and tql2 parallel paths
  Tensor a = Tensor::randn(Shape{n, n}, rng);
  symmetrize(a);
  expect_thread_invariant(
      [&] {
        SymEig e = sym_eig(a);
        Tensor packed(Shape{n + n * n});
        std::memcpy(packed.data(), e.values.data(),
                    static_cast<size_t>(n) * sizeof(float));
        std::memcpy(packed.data() + n, e.vectors.data(),
                    static_cast<size_t>(n * n) * sizeof(float));
        return packed;
      },
      "sym_eig");
}

TEST(ThreadInvariance, SerialKernelScopeMatchesParallel) {
  // The AsyncExecutor worker runs kernels under SerialKernelScope; results
  // must be bitwise identical to the parallel path.
  Rng rng(52);
  const Tensor a = Tensor::randn(Shape{140, 90}, rng);
  const Tensor b = Tensor::randn(Shape{90, 120}, rng);
  const Tensor parallel = matmul(a, b);
  ASSERT_TRUE(parallel_kernels_allowed());
  {
    SerialKernelScope scope;
    EXPECT_FALSE(parallel_kernels_allowed());
    const Tensor serial = matmul(a, b);
    EXPECT_TRUE(bitwise_equal(serial, parallel));
  }
  EXPECT_TRUE(parallel_kernels_allowed());
}

}  // namespace
}  // namespace dkfac::linalg
